package relaxedbvc_test

// Parity tests: every deprecated Run* wrapper must produce bit-for-bit
// the same outcome as Run(ctx, Spec{...}) on identical inputs. Each case
// runs both paths with caching disabled first (independent solves), then
// re-runs the Spec path with caching on to confirm cache hits replay the
// same bits.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	bvc "relaxedbvc"
)

func parityInputs(t *testing.T, seed int64, n, d int) []bvc.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]bvc.Vector, n)
	for i := range inputs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 3
		}
		inputs[i] = bvc.NewVector(v...)
	}
	return inputs
}

func sameVec(a, b bvc.Vector) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func checkVecs(t *testing.T, name string, old, new []bvc.Vector) {
	t.Helper()
	if len(old) != len(new) {
		t.Fatalf("%s: %d vs %d outputs", name, len(old), len(new))
	}
	for i := range old {
		if !sameVec(old[i], new[i]) {
			t.Errorf("%s: output %d differs: %v vs %v", name, i, old[i], new[i])
		}
	}
}

func checkFloats(t *testing.T, name string, old, new []float64) {
	t.Helper()
	if len(old) != len(new) {
		t.Fatalf("%s: %d vs %d values", name, len(old), len(new))
	}
	for i := range old {
		if math.Float64bits(old[i]) != math.Float64bits(new[i]) {
			t.Errorf("%s: value %d differs: %v vs %v", name, i, old[i], new[i])
		}
	}
}

// runBoth executes spec through Run three ways — uncached, cached-cold,
// cached-warm — and checks all three agree before returning the first.
func runBoth(t *testing.T, spec bvc.Spec) *bvc.Result {
	t.Helper()
	bvc.SetCaching(false)
	raw, err := bvc.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run (uncached): %v", err)
	}
	bvc.SetCaching(true)
	bvc.ResetCaches()
	for pass := 0; pass < 2; pass++ {
		cached, err := bvc.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("Run (cached pass %d): %v", pass, err)
		}
		checkVecs(t, "cached outputs", raw.Outputs, cached.Outputs)
		checkFloats(t, "cached delta", raw.Delta, cached.Delta)
	}
	return raw
}

func TestParityExact(t *testing.T) {
	inputs := parityInputs(t, 1, 5, 2)
	cfg := &bvc.SyncConfig{N: 5, F: 1, D: 2, Inputs: inputs}
	old, err := bvc.RunExactBVC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolExact, N: 5, F: 1, D: 2, Inputs: inputs})
	checkVecs(t, "exact", old.Outputs, res.Outputs)
	if old.Rounds != res.Rounds || old.Messages != res.Messages {
		t.Errorf("stats differ: %d/%d vs %d/%d", old.Rounds, old.Messages, res.Rounds, res.Messages)
	}
}

func TestParityKRelaxed(t *testing.T) {
	inputs := parityInputs(t, 2, 4, 2)
	cfg := &bvc.SyncConfig{N: 4, F: 1, D: 2, Inputs: inputs}
	old, err := bvc.RunKRelaxedBVC(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolKRelaxed, N: 4, F: 1, D: 2, K: 1, Inputs: inputs})
	checkVecs(t, "k-relaxed", old.Outputs, res.Outputs)
}

func TestParityDeltaRelaxed(t *testing.T) {
	for _, p := range []float64{1, 2, bvc.LInf} {
		inputs := parityInputs(t, 3, 4, 3)
		cfg := &bvc.SyncConfig{N: 4, F: 1, D: 3, Inputs: inputs}
		old, err := bvc.RunDeltaRelaxedBVC(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolDeltaRelaxed, N: 4, F: 1, D: 3, NormP: p, Inputs: inputs})
		checkVecs(t, "delta-relaxed", old.Outputs, res.Outputs)
		checkFloats(t, "delta-relaxed delta", old.Delta, res.Delta)
	}
}

func TestParityDeltaRelaxedDefaultNorm(t *testing.T) {
	// Spec.NormP = 0 must mean p = 2.
	inputs := parityInputs(t, 4, 4, 2)
	old, err := bvc.RunDeltaRelaxedBVC(&bvc.SyncConfig{N: 4, F: 1, D: 2, Inputs: inputs}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{N: 4, F: 1, D: 2, Inputs: inputs}) // all defaults
	checkVecs(t, "default norm", old.Outputs, res.Outputs)
	checkFloats(t, "default norm delta", old.Delta, res.Delta)
}

func TestParityScalar(t *testing.T) {
	inputs := parityInputs(t, 5, 4, 1)
	old, err := bvc.RunScalarConsensus(&bvc.SyncConfig{N: 4, F: 1, D: 1, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolScalar, N: 4, F: 1, D: 1, Inputs: inputs})
	checkVecs(t, "scalar", old.Outputs, res.Outputs)
}

func TestParityConvex(t *testing.T) {
	inputs := parityInputs(t, 6, 5, 2)
	old, err := bvc.RunConvexHullConsensus(&bvc.SyncConfig{N: 5, F: 1, D: 2, Inputs: inputs}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolConvex, N: 5, F: 1, D: 2, Directions: 8, Inputs: inputs})
	if len(old.Vertices) != len(res.Vertices) {
		t.Fatalf("vertex sets: %d vs %d", len(old.Vertices), len(res.Vertices))
	}
	for i := range old.Vertices {
		checkVecs(t, "convex vertices", old.Vertices[i], res.Vertices[i])
	}
}

func TestParityIterative(t *testing.T) {
	inputs := parityInputs(t, 7, 5, 1)
	old, err := bvc.RunIterativeBVC(&bvc.IterConfig{N: 5, F: 1, D: 1, Inputs: inputs, Rounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolIterative, N: 5, F: 1, D: 1, Rounds: 12, Inputs: inputs})
	checkVecs(t, "iterative", old.Outputs, res.Outputs)
	checkFloats(t, "iterative range", old.RangeHistory, res.RangeHistory)
}

func TestParityAsync(t *testing.T) {
	inputs := parityInputs(t, 8, 4, 2)
	old, err := bvc.RunAsyncBVC(&bvc.AsyncConfig{N: 4, F: 1, D: 2, Inputs: inputs, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolAsync, N: 4, F: 1, D: 2, Rounds: 3, Inputs: inputs})
	checkVecs(t, "async", old.Outputs, res.Outputs)
	checkFloats(t, "async delta", old.Delta, res.Delta)
	checkFloats(t, "async spread", old.RoundSpread, res.RoundSpread)
	if old.Steps != res.Steps || old.Messages != res.Messages {
		t.Errorf("stats differ: %d/%d vs %d/%d", old.Steps, old.Messages, res.Steps, res.Messages)
	}
}

func TestParityK1Async(t *testing.T) {
	inputs := parityInputs(t, 9, 4, 3)
	old, err := bvc.RunK1AsyncBVC(&bvc.AsyncConfig{N: 4, F: 1, D: 3, Inputs: inputs, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{Protocol: bvc.ProtocolK1Async, N: 4, F: 1, D: 3, Rounds: 3, Inputs: inputs})
	checkVecs(t, "k1-async", old.Outputs, res.Outputs)
}

func TestParityWithByzantine(t *testing.T) {
	inputs := parityInputs(t, 10, 5, 2)
	byz := map[int]bvc.ByzantineBehavior{0: bvc.Equivocator(bvc.NewVector(9, 9), bvc.NewVector(-9, -9))}
	old, err := bvc.RunDeltaRelaxedBVC(&bvc.SyncConfig{N: 5, F: 1, D: 2, Inputs: inputs, Byzantine: byz}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, bvc.Spec{N: 5, F: 1, D: 2, Inputs: inputs, Byzantine: byz})
	checkVecs(t, "byzantine", old.Outputs, res.Outputs)
	checkFloats(t, "byzantine delta", old.Delta, res.Delta)
}

func TestParityDeltaStar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []float64{1, 2, 3, bvc.LInf} {
		pts := make([]bvc.Vector, 6)
		for i := range pts {
			pts[i] = bvc.NewVector(rng.NormFloat64(), rng.NormFloat64())
		}
		s := bvc.NewPointSet(pts...)
		oldD, oldPt := bvc.DeltaStar(s, 1, p)
		newD, newPt, err := bvc.ComputeDeltaStar(s, 1, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if math.Float64bits(oldD) != math.Float64bits(newD) || !sameVec(oldPt, newPt) {
			t.Errorf("p=%v: (%v, %v) vs (%v, %v)", p, oldD, oldPt, newD, newPt)
		}
	}
}

func TestComputeDeltaStarErrors(t *testing.T) {
	s := bvc.NewPointSet(bvc.NewVector(0, 0), bvc.NewVector(1, 1), bvc.NewVector(2, 0))
	if _, _, err := bvc.ComputeDeltaStar(nil, 1, 2); err == nil {
		t.Error("nil set: want error")
	}
	if _, _, err := bvc.ComputeDeltaStar(s, 3, 2); err == nil {
		t.Error("f = |S|: want error")
	}
	if _, _, err := bvc.ComputeDeltaStar(s, 1, 0.5); err == nil {
		t.Error("p < 1: want error")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	_, err := bvc.Run(context.Background(), bvc.Spec{Protocol: bvc.Protocol(99)})
	if err == nil {
		t.Fatal("want ErrUnknownProtocol")
	}
}

func TestRunBatchParity(t *testing.T) {
	// A batch of mixed specs must return, at each index, exactly what a
	// sequential Run of the same spec returns.
	specs := []bvc.Spec{
		{Protocol: bvc.ProtocolDeltaRelaxed, N: 4, F: 1, D: 2, Inputs: parityInputs(t, 20, 4, 2)},
		{Protocol: bvc.ProtocolExact, N: 5, F: 1, D: 2, Inputs: parityInputs(t, 21, 5, 2)},
		{Protocol: bvc.ProtocolScalar, N: 4, F: 1, D: 1, Inputs: parityInputs(t, 22, 4, 1)},
		{Protocol: bvc.ProtocolAsync, N: 4, F: 1, D: 2, Rounds: 3, Inputs: parityInputs(t, 23, 4, 2)},
	}
	bvc.SetCaching(true)
	bvc.ResetCaches()
	sequential := make([]*bvc.Result, len(specs))
	for i, spec := range specs {
		r, err := bvc.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("sequential %d: %v", i, err)
		}
		sequential[i] = r
	}
	batched := bvc.RunBatch(context.Background(), bvc.BatchOptions{Workers: 4}, specs)
	if err := bvc.FirstBatchErr(batched); err != nil {
		t.Fatal(err)
	}
	for i, b := range batched {
		if b.Index != i {
			t.Fatalf("result %d has index %d", i, b.Index)
		}
		checkVecs(t, "batch outputs", sequential[i].Outputs, b.Result.Outputs)
		checkFloats(t, "batch delta", sequential[i].Delta, b.Result.Delta)
	}
}
