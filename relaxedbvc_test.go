package relaxedbvc

import (
	"math"
	"testing"
)

// The root package is a facade; these tests pin the re-exported API
// end-to-end the way a downstream user would exercise it.

func TestFacadeSyncALGO(t *testing.T) {
	// f = 1, d = 3, n = d+1: below the exact bound, ALGO succeeds.
	inputs := []Vector{
		NewVector(0, 0, 0),
		NewVector(1, 0.2, 0),
		NewVector(0, 1, 0.3),
		NewVector(0.1, 0, 1),
	}
	cfg := &SyncConfig{
		N: 4, F: 1, D: 3,
		Inputs:    inputs,
		Byzantine: map[int]ByzantineBehavior{3: Equivocator(NewVector(9, 9, 9), NewVector(-9, -9, -9))},
	}
	res, err := RunDeltaRelaxedBVC(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if AgreementError(res.Outputs, honest) != 0 {
		t.Fatal("agreement violated")
	}
	delta := res.Delta[honest[0]]
	nf := cfg.NonFaultyInputs()
	for _, i := range honest {
		if !CheckDeltaValidity(res.Outputs[i], nf, delta, 2, 1e-6) {
			t.Fatal("delta validity violated")
		}
	}
	if bound := Theorem9Bound(nf, 4); delta >= bound {
		t.Fatalf("Theorem 9 violated: %v >= %v", delta, bound)
	}
}

func TestFacadeExactAndKRelaxed(t *testing.T) {
	inputs := []Vector{
		NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1), NewVector(0.5, 0.5),
	}
	cfg := &SyncConfig{N: 5, F: 1, D: 2, Inputs: inputs, Byzantine: map[int]ByzantineBehavior{4: Silent()}}
	if res, err := RunExactBVC(cfg); err != nil {
		t.Fatal(err)
	} else if !CheckExactValidity(res.Outputs[0], cfg.NonFaultyInputs(), 1e-6) {
		t.Fatal("exact validity violated")
	}
	if res, err := RunKRelaxedBVC(cfg, 1); err != nil {
		t.Fatal(err)
	} else if !CheckKValidity(res.Outputs[0], cfg.NonFaultyInputs(), 1, 1e-6) {
		t.Fatal("1-relaxed validity violated")
	}
	if _, err := RunScalarConsensus(&SyncConfig{
		N: 4, F: 1, D: 1,
		Inputs: []Vector{NewVector(1), NewVector(2), NewVector(3), NewVector(4)},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAsync(t *testing.T) {
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 3,
		Inputs: []Vector{
			NewVector(0, 0, 0), NewVector(1, 0, 0), NewVector(0, 1, 0), NewVector(0, 0, 1),
		},
		Rounds: 8,
		Mode:   ModeRelaxed,
		Byzantine: map[int]*AsyncByzantine{
			3: {Input: NewVector(2, 2, 2), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave},
		},
	}
	res, err := RunAsyncBVC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eps := AgreementError(res.Outputs, cfg.HonestIDs()); eps > 0.1 {
		t.Fatalf("epsilon = %v", eps)
	}
}

func TestFacadeGeometry(t *testing.T) {
	s := NewPointSet(NewVector(0, 0), NewVector(1, 0), NewVector(0, 1))
	if !InHull(NewVector(0.2, 0.2), s) || InHull(NewVector(1, 1), s) {
		t.Fatal("InHull wrong")
	}
	if !InRelaxedHull(NewVector(1, 1), s, 0.8, 2) {
		t.Fatal("InRelaxedHull wrong")
	}
	if !InKRelaxedHull(NewVector(1, 1), NewPointSet(NewVector(0, 1), NewVector(1, 0)), 1) {
		t.Fatal("InKRelaxedHull wrong")
	}
	d, nearest := DistToHull(NewVector(1, 1), s, 2)
	if math.Abs(d-math.Sqrt2/2) > 1e-7 || !InHull(nearest, s) {
		t.Fatalf("DistToHull = %v, %v", d, nearest)
	}
	if _, ok := GammaPoint(s, 1); ok {
		t.Fatal("Gamma of a triangle with f=1 should be empty")
	}
	dstar, pt := DeltaStar(s, 1, 2)
	if dstar <= 0 || pt.Dim() != 2 {
		t.Fatalf("DeltaStar = %v, %v", dstar, pt)
	}
	// delta* of a triangle with f=1 is its inradius.
	want := (2 - math.Sqrt2) / 2 // inradius of right isoceles with legs 1
	if math.Abs(dstar-want) > 1e-9 {
		t.Fatalf("delta* = %v, want %v", dstar, want)
	}
	if _, _, ok := TverbergPartition(NewPointSet(NewVector(0, 0), NewVector(2, 0), NewVector(0, 2), NewVector(0.5, 0.5)), 1); !ok {
		t.Fatal("Radon partition not found")
	}
}

func TestFacadeBounds(t *testing.T) {
	s := NewPointSet(NewVector(0, 0, 0), NewVector(3, 0, 0), NewVector(0, 4, 0))
	if got := Theorem9Bound(s, 4); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Theorem9Bound = %v", got)
	}
	if got := Theorem12Bound(s, 3); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Theorem12Bound = %v", got)
	}
	if got := Conjecture1Bound(s, 7, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("Conjecture1Bound = %v", got)
	}
	if got := HolderScale(4, LInf); math.Abs(got-2) > 1e-12 {
		t.Errorf("HolderScale = %v", got)
	}
}

func TestFacadeDeltaStarPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DeltaStar(NewPointSet(NewVector(0), NewVector(1)), 1, 0.5)
}

func TestFacadeDeltaStarGeneralP(t *testing.T) {
	s := NewPointSet(NewVector(0, 0), NewVector(1, 0), NewVector(0, 1))
	d2, _ := DeltaStar(s, 1, 2)
	d3, _ := DeltaStar(s, 1, 3)
	dInf, _ := DeltaStar(s, 1, LInf)
	// Monotone in p: delta*_inf <= delta*_3 <= delta*_2 (solver tolerance).
	if dInf > d3+5e-3 || d3 > d2+5e-3 {
		t.Fatalf("delta* ordering violated: inf=%v 3=%v 2=%v", dInf, d3, d2)
	}
}

func TestFacadeByzantineConstructors(t *testing.T) {
	for name, b := range map[string]ByzantineBehavior{
		"silent":   Silent(),
		"fixed":    FixedVector(NewVector(1)),
		"perrecip": PerRecipient(map[int]Vector{0: NewVector(1)}),
		"random":   RandomLiar(1, 2, 1),
	} {
		if b == nil {
			t.Errorf("%s is nil", name)
		}
	}
}

func TestFacadeSignedBroadcastAndSchedules(t *testing.T) {
	// Footnote-3 configuration through the public API, with a trace.
	rec := NewTraceRecorder(0)
	cfg := &SyncConfig{
		N: 3, F: 1, D: 2,
		Inputs:          []Vector{NewVector(1, 1), NewVector(1, 1), NewVector(0, 0)},
		SignedBroadcast: true,
		ByzantineSigned: map[int]SignedByzantineBehavior{
			2: SignedEquivocator(map[int]Vector{0: NewVector(1, 1), 1: NewVector(0, 0)}),
		},
		Trace: rec.Hook(),
	}
	res, err := RunDeltaRelaxedBVC(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if AgreementError(res.Outputs, cfg.HonestIDs()) != 0 {
		t.Fatal("signed broadcast failed to give agreement at n=3")
	}
	if rec.Total() == 0 || rec.Total() != res.Messages {
		t.Fatalf("trace total %d vs messages %d", rec.Total(), res.Messages)
	}
	// Schedules construct and run.
	for _, sch := range []Schedule{FIFOSchedule(), LIFOSchedule(), RandomSchedule(3), StarveSchedule(0)} {
		acfg := &AsyncConfig{
			N: 4, F: 1, D: 2,
			Inputs:   []Vector{NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1)},
			Rounds:   4,
			Mode:     ModeRelaxed,
			Schedule: sch,
		}
		if _, err := RunAsyncBVC(acfg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeIterativeAndK1Async(t *testing.T) {
	icfg := &IterConfig{
		N: 5, F: 1, D: 2,
		Inputs: []Vector{NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1), NewVector(2, 2)},
		Rounds: 6,
		Byzantine: map[int]IterByzantine{4: IterByzantineFunc(func(round, to int, _ Vector) Vector {
			return NewVector(float64(round*to), -5)
		})},
	}
	ires, err := RunIterativeBVC(icfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := ires.RangeHistory; h[len(h)-1] > h[0]*0.1 {
		t.Fatalf("no contraction: %v", h)
	}
	k1 := &AsyncConfig{
		N: 4, F: 1, D: 4,
		Inputs: []Vector{
			NewVector(0, 0, 0, 0), NewVector(1, 0, 1, 0), NewVector(0, 1, 0, 1), NewVector(1, 1, 1, 1),
		},
		Rounds: 6,
	}
	kres, err := RunK1AsyncBVC(k1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range k1.HonestIDs() {
		if !CheckKValidity(kres.Outputs[i], k1.NonFaultyInputs(), 1, 1e-6) {
			t.Fatal("k=1 validity violated")
		}
	}
}
