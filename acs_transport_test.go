package relaxedbvc

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
)

// Streaming-parity contract: the ACS decision stream — every sealed
// epoch's agreed subset, the subset's values, and the decided vector —
// is bit-for-bit identical across the simulation, the mesh and a real
// loopback-TCP cluster of the same Spec, with a scripted equivocator in
// the mix and (on the sim) within-model link faults.

// acsParitySpec is the canonical 4-node streaming instance: three
// epochs of proposals, node 3 equivocating per recipient.
func acsParitySpec() Spec {
	return Spec{
		Protocol: ProtocolACS, N: 4, F: 1, D: 2,
		Proposals: [][]Vector{
			{NewVector(0, 0), NewVector(4, 0), NewVector(0, 4), NewVector(3, 3)},
			{NewVector(1, 1), NewVector(5, 1), NewVector(1, 5), NewVector(-2, 2)},
			{NewVector(2, -1), NewVector(0, 3), NewVector(-3, 0), NewVector(6, 6)},
		},
		ACSByzantine: map[int]ACSBehavior{3: ACSEquivocate},
	}
}

// requireACSStream checks one node's stream against the sim reference.
func requireACSStream(t *testing.T, want, got *Result, i int) {
	t.Helper()
	if ACSFingerprint(got.ACS[i]) != ACSFingerprint(want.ACS[i]) {
		t.Errorf("node %d decision stream diverges from sim:\n got %+v\n sim %+v", i, got.ACS[i], want.ACS[i])
	}
	if fingerprint(got.Outputs[i]) != fingerprint(want.Outputs[i]) {
		t.Errorf("node %d output: got %v, sim %v", i, got.Outputs[i], want.Outputs[i])
	}
	if got.Delta[i] != want.Delta[i] {
		t.Errorf("node %d delta: got %v, sim %v", i, got.Delta[i], want.Delta[i])
	}
}

// runACSSim executes the reference simulation and sanity-checks the
// stream shape before any parity comparison.
func runACSSim(t *testing.T, spec Spec) *Result {
	t.Helper()
	sim, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	epochs := len(spec.Proposals)
	for i := 0; i < spec.N; i++ {
		if _, byz := spec.ACSByzantine[i]; byz {
			continue
		}
		if len(sim.ACS[i]) != epochs {
			t.Fatalf("sim node %d sealed %d epochs, want %d", i, len(sim.ACS[i]), epochs)
		}
		for e, ep := range sim.ACS[i] {
			if len(ep.Subset) < spec.N-spec.F {
				t.Fatalf("sim node %d epoch %d subset %v below n-f", i, e, ep.Subset)
			}
			for _, s := range ep.Subset {
				if _, byz := spec.ACSByzantine[s]; byz {
					t.Fatalf("sim epoch %d accepted the adversary's slot: %v", e, ep.Subset)
				}
			}
		}
	}
	return sim
}

func TestACSMeshStreamMatchesSim(t *testing.T) {
	spec := acsParitySpec()
	sim := runACSSim(t, spec)
	mesh, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportMesh}))
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	for i := 0; i < spec.N; i++ {
		requireACSStream(t, sim, mesh, i)
	}
	if mesh.Rounds != sim.Rounds {
		t.Errorf("rounds: mesh %d, sim %d", mesh.Rounds, sim.Rounds)
	}
	if mesh.Metrics.ACSEpochs != sim.Metrics.ACSEpochs {
		t.Errorf("acs epochs: mesh %d, sim %d", mesh.Metrics.ACSEpochs, sim.Metrics.ACSEpochs)
	}
	if mesh.Metrics.Transport != "mesh" {
		t.Errorf("metrics transport label = %q, want mesh", mesh.Metrics.Transport)
	}
}

// TestACSTCPStreamMatchesSim is the streaming acceptance pin: a 4-node
// loopback-TCP cluster with one scripted equivocator decides the same
// multi-epoch slot sequence as the simulation, fingerprint-equal.
func TestACSTCPStreamMatchesSim(t *testing.T) {
	spec := acsParitySpec()
	sim := runACSSim(t, spec)

	listeners := make([]net.Listener, spec.N)
	peers := make(map[int]string, spec.N)
	for i := 0; i < spec.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}

	results := make([]*Result, spec.N)
	errs := make([]error, spec.N)
	var wg sync.WaitGroup
	for i := 0; i < spec.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(context.Background(), spec, WithTransport(Transport{
				Kind: TransportTCP, Self: i, Peers: peers, Listener: listeners[i],
			}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
	}
	for i, res := range results {
		// Each TCP Run fills only its own slot.
		requireACSStream(t, sim, res, i)
		if res.Metrics.Transport != "tcp" {
			t.Errorf("node %d metrics transport label = %q, want tcp", i, res.Metrics.Transport)
		}
	}
}

func TestACSSimWithinModelFaultsMatchClean(t *testing.T) {
	// Pure duplication is within the lockstep delivery model, so the
	// decision stream must not move; the sim remains the fingerprint
	// reference for fault-free transports.
	spec := acsParitySpec()
	clean := runACSSim(t, spec)

	faulty := spec
	faulty.Faults = &LinkFaults{Seed: 4242, LinkProfile: LinkProfile{DupProb: 0.5}}
	res, err := Run(context.Background(), faulty)
	if err != nil {
		t.Fatalf("faulty sim: %v", err)
	}
	for i := 0; i < spec.N; i++ {
		requireACSStream(t, clean, res, i)
	}
	if res.Metrics.LinkDuplicates == 0 {
		t.Fatal("fault policy injected no duplicates; the run exercised nothing")
	}
}

func TestACSMuteStream(t *testing.T) {
	spec := acsParitySpec()
	spec.ACSByzantine = map[int]ACSBehavior{1: ACSMute}
	sim := runACSSim(t, spec)
	mesh, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportMesh}))
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	for i := 0; i < spec.N; i++ {
		if i == 1 {
			continue // the mute node seals nothing on either backend
		}
		requireACSStream(t, sim, mesh, i)
	}
}

func TestACSSingleEpochFromInputs(t *testing.T) {
	// Proposals == nil falls back to one epoch proposing Spec.Inputs.
	spec := Spec{
		Protocol: ProtocolACS, N: 4, F: 1, D: 2,
		Inputs: []Vector{NewVector(0, 0), NewVector(4, 0), NewVector(0, 4), NewVector(3, 3)},
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.N; i++ {
		if len(res.ACS[i]) != 1 {
			t.Fatalf("node %d sealed %d epochs, want 1", i, len(res.ACS[i]))
		}
		if len(res.Outputs[i]) != spec.D {
			t.Fatalf("node %d output %v not mirrored from the epoch", i, res.Outputs[i])
		}
	}
}

func TestACSTransportRejectsLinkFaults(t *testing.T) {
	spec := acsParitySpec()
	spec.Faults = &LinkFaults{Seed: 1, LinkProfile: LinkProfile{DupProb: 0.2}}
	_, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportMesh}))
	if !errors.Is(err, ErrUnsupportedTransport) {
		t.Fatalf("err = %v, want ErrUnsupportedTransport", err)
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v does not chain ErrTransport", err)
	}
}

func TestACSSpecValidation(t *testing.T) {
	cases := map[string]struct {
		mutate func(*Spec)
		want   error
	}{
		"too few processes": {func(s *Spec) { s.N = 3 }, ErrTooFewProcesses},
		"zero faults":       {func(s *Spec) { s.F = 0 }, ErrTooManyFaults},
		"too many scripted": {
			func(s *Spec) {
				s.ACSByzantine = map[int]ACSBehavior{2: ACSMute, 3: ACSMute}
			},
			ErrTooManyFaults,
		},
		"no proposals":  {func(s *Spec) { s.Proposals, s.Inputs = nil, nil }, ErrBadInputs},
		"ragged epoch":  {func(s *Spec) { s.Proposals[1] = s.Proposals[1][:3] }, ErrBadInputs},
		"wrong dim":     {func(s *Spec) { s.Proposals[0][2] = NewVector(1) }, ErrBadInputs},
		"bad dimension": {func(s *Spec) { s.D = 0 }, ErrBadDimension},
		"bad norm":      {func(s *Spec) { s.NormP = 0.5 }, ErrBadNorm},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			spec := acsParitySpec()
			tc.mutate(&spec)
			_, err := Run(context.Background(), spec)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}
