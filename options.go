package relaxedbvc

// Functional options for Run and the message-plane (transport)
// selection. The default backend is the deterministic simulation —
// bit-for-bit replayable, fault-injectable, and the substrate of every
// fuzz and parity test. The alternative backends run one consensus
// process per goroutine (mesh) or per OS process/machine (TCP) over
// internal/transport's lockstep runner, which reproduces the
// simulation's delivery semantics exactly; a cluster therefore decides
// the same vectors as the simulation of the same Spec.

import (
	"context"
	"fmt"
	"net"
	"sync"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/transport"
)

// Transport-level error sentinels, re-exported so errors.Is works
// across the API boundary.
var (
	// ErrTransport is the root sentinel of all message-plane failures
	// on the mesh and TCP backends (dial/write failures, malformed or
	// oversized frames, sends after close). The simulation backend
	// never returns it.
	ErrTransport = transport.ErrTransport
	// ErrUnsupportedTransport: the Spec asks for a feature only the
	// simulation backend provides (an asynchronous or iterative
	// protocol, signed broadcast, seeded link faults) on a non-sim
	// transport. It chains ErrTransport.
	ErrUnsupportedTransport = transport.ErrUnsupported
)

// TransportKind selects the message-plane backend of a Run.
type TransportKind int

const (
	// TransportSim is the deterministic in-process simulation (default):
	// every protocol, scripted adversaries, seeded link faults,
	// bit-for-bit replay.
	TransportSim TransportKind = iota
	// TransportMesh runs one goroutine per process over an in-process
	// channel mesh — real concurrency (race-detector friendly), same
	// decisions as the simulation. Synchronous oral-message protocols
	// only.
	TransportMesh
	// TransportTCP runs THIS process's node over real TCP sockets
	// against a peer set; each peer runs its own Run (or cmd/bvcnode).
	// Synchronous oral-message protocols only.
	TransportTCP
)

// String returns the kind's canonical name.
func (k TransportKind) String() string {
	switch k {
	case TransportSim:
		return "sim"
	case TransportMesh:
		return "mesh"
	case TransportTCP:
		return "tcp"
	}
	return fmt.Sprintf("transport(%d)", int(k))
}

// Transport configures the message plane of a Run (see WithTransport).
// The zero value selects the simulation.
type Transport struct {
	// Kind selects the backend.
	Kind TransportKind
	// Self is this process's node id (TransportTCP only; the mesh runs
	// all n nodes in-process).
	Self int
	// Peers maps every node id 0..n-1 (Self included) to its host:port
	// address (TransportTCP only).
	Peers map[int]string
	// Listener optionally supplies a pre-bound listener for
	// Peers[Self], letting tests bind ":0" first (TransportTCP only).
	Listener net.Listener
	// MaxFrame bounds frame sizes on the wire (0 = 1 MiB default;
	// TransportTCP only).
	MaxFrame int
}

// runOptions collects the effects of Run's functional options.
type runOptions struct {
	transport     Transport
	sink          func(*RunMetrics)
	kernelWorkers int
	setWorkers    bool
}

// Option customizes one Run call; build them with the With* helpers.
type Option func(*runOptions)

// WithTransport selects the message-plane backend (default: the
// deterministic simulation). Non-sim backends support the synchronous
// oral-message protocols (ProtocolDeltaRelaxed, ProtocolExact,
// ProtocolKRelaxed, ProtocolScalar) and the streaming ProtocolACS;
// anything else fails with ErrUnsupportedTransport. A Spec.Trace hook runs concurrently from
// every node's goroutine on non-sim backends and must be safe for
// concurrent use there.
func WithTransport(t Transport) Option {
	return func(o *runOptions) { o.transport = t }
}

// WithMetricsSink registers a callback that receives the run's final
// RunMetrics snapshot (the same object as Result.Metrics) after the
// run completes successfully. Use it to stream per-run observability
// into a collector without threading the Result around.
func WithMetricsSink(fn func(*RunMetrics)) Option {
	return func(o *runOptions) { o.sink = fn }
}

// WithKernelWorkers scopes a kernel worker budget (see
// SetKernelWorkers) to this Run call: the previous setting is restored
// when the run returns. The budget is process-wide while the run is in
// flight, so concurrent runs with different budgets race on the knob —
// prefer one setting per process, or this option on isolated runs.
func WithKernelWorkers(w int) Option {
	return func(o *runOptions) { o.kernelWorkers = w; o.setWorkers = true }
}

// syncChooser maps a Spec to the Step-2 choice function shared by the
// simulated and distributed paths, rejecting protocols that require
// the simulation backend.
func syncChooser(spec *Spec, cfg *consensus.SyncConfig) (consensus.Chooser, error) {
	switch spec.Protocol {
	case ProtocolDeltaRelaxed:
		return consensus.DeltaRelaxedChooser(cfg, spec.norm())
	case ProtocolExact:
		return consensus.ExactChooser(cfg), nil
	case ProtocolKRelaxed:
		return consensus.KRelaxedChooser(cfg, spec.K)
	case ProtocolScalar:
		return consensus.ScalarChooser(cfg)
	}
	return nil, fmt.Errorf("%w: protocol %s runs only on the simulation backend", ErrUnsupportedTransport, spec.Protocol)
}

// addTransportStats copies an endpoint's traffic counters into the
// run's metrics (summing across endpoints on the mesh).
func addTransportStats(m *RunMetrics, t transport.Transport) {
	if inst, ok := t.(transport.Instrumented); ok {
		st := inst.Stats()
		m.TransportFramesSent += st.FramesSent
		m.TransportFramesReceived += st.FramesReceived
		m.TransportReconnects += st.Reconnects
	}
}

// runMesh executes all n nodes of the instance concurrently over an
// in-process channel mesh and assembles the same Result shape as the
// simulation (identical Outputs/Delta/AgreedSet/Rounds/Messages for
// the same Spec).
func runMesh(ctx context.Context, spec *Spec) (*Result, error) {
	if spec.Protocol == ProtocolACS {
		return runMeshACS(ctx, spec)
	}
	cfg := spec.syncConfig()
	choose, err := syncChooser(spec, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mesh := transport.NewMesh(spec.N)
	nodes := make([]*consensus.NodeResult, spec.N)
	errs := make([]error, spec.N)
	var wg sync.WaitGroup
	for i := 0; i < spec.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = consensus.RunSyncNode(ctx, mesh.Node(i), cfg, choose)
			if errs[i] != nil {
				cancel() // unblock peers stuck at the round barrier
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < spec.N; i++ {
		mesh.Node(i).Close() //nolint:errcheck // mesh close cannot fail
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mesh node %d: %w", i, err)
		}
	}
	res := &Result{
		Protocol:  spec.Protocol,
		Outputs:   make([]Vector, spec.N),
		Delta:     make([]float64, spec.N),
		AgreedSet: make([]*PointSet, spec.N),
		Metrics:   &RunMetrics{},
	}
	for i, nr := range nodes {
		res.Outputs[i] = nr.Output
		res.Delta[i] = nr.Delta
		res.AgreedSet[i] = nr.AgreedSet
		res.Rounds = nr.Rounds
		res.Messages += nr.Delivered
		res.Metrics.ByzantineDrops += nr.Drops
		res.Metrics.EIGTreeNodes += nr.TreeNodes
		addTransportStats(res.Metrics, mesh.Node(i))
	}
	return res, nil
}

// runTCP executes THIS process's node over real sockets. Only the
// local slices of the Result are filled (Outputs[Self], Delta[Self],
// AgreedSet[Self]); the peers each produce their own.
func runTCP(ctx context.Context, spec *Spec, tc *Transport) (*Result, error) {
	if spec.Protocol == ProtocolACS {
		return runTCPACS(ctx, spec, tc)
	}
	cfg := spec.syncConfig()
	choose, err := syncChooser(spec, cfg)
	if err != nil {
		return nil, err
	}
	if len(tc.Peers) != spec.N {
		return nil, fmt.Errorf("%w: %d peers for n=%d", ErrBadInputs, len(tc.Peers), spec.N)
	}
	tr, err := transport.DialTCP(transport.TCPConfig{
		Self:     tc.Self,
		Peers:    tc.Peers,
		Listener: tc.Listener,
		MaxFrame: tc.MaxFrame,
	})
	if err != nil {
		return nil, err
	}
	nr, runErr := consensus.RunSyncNode(ctx, tr, cfg, choose)
	closeErr := tr.Close()
	if runErr != nil {
		return nil, fmt.Errorf("tcp node %d: %w", tc.Self, runErr)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("tcp node %d: close: %w", tc.Self, closeErr)
	}
	res := &Result{
		Protocol:  spec.Protocol,
		Outputs:   make([]Vector, spec.N),
		Delta:     make([]float64, spec.N),
		AgreedSet: make([]*PointSet, spec.N),
		Rounds:    nr.Rounds,
		Messages:  nr.Delivered,
		Metrics:   &RunMetrics{ByzantineDrops: nr.Drops, EIGTreeNodes: nr.TreeNodes},
	}
	res.Outputs[tc.Self] = nr.Output
	res.Delta[tc.Self] = nr.Delta
	res.AgreedSet[tc.Self] = nr.AgreedSet
	addTransportStats(res.Metrics, tr)
	return res, nil
}
