package relaxedbvc_test

// Filtered-predicate / warm-start parity property tests: every
// engine-visible kernel decision must be bit-identical with the
// certified float screens and the LP warm start enabled (the default,
// fast path) and disabled (the exact-everything PR-5 path). The screens
// only decide with exactly-verified certificates and the warm path only
// short-circuits certified infeasibility, so any divergence here is a
// soundness bug, not a tolerance choice. Named TestKernelParity* so the
// CI "Kernel parity under -race" step (-run KernelParity -race -count=2)
// covers them automatically.

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// setupFilterParity is setupKernelParity plus a guaranteed restore of
// the filtered-predicate and warm-start toggles.
func setupFilterParity(t *testing.T) {
	t.Helper()
	setupKernelParity(t)
	t.Cleanup(func() {
		geom.SetFilteredPredicates(true)
		lp.SetWarmStart(true)
	})
}

// withFilters runs fn under both toggle settings and hands it the
// setting, so each case computes its fast and exact answers back to
// back on identical inputs.
func withFilters(on bool) {
	geom.SetFilteredPredicates(on)
	lp.SetWarmStart(on)
}

// TestKernelParityFilteredPartition: the Tverberg partition scan —
// whose per-candidate Intersect calls run the bbox, witness and
// separation screens and warm-start the joint LP — must return the
// same blocks, point and feasibility bit with everything disabled.
// Checked at 1 worker and at the parallel setting: the screens keep
// per-worker scratch, so both composition orders are pinned.
func TestKernelParityFilteredPartition(t *testing.T) {
	setupFilterParity(t)
	cases := []struct{ n, d, f int }{
		{7, 2, 2}, // feasible regime
		{8, 3, 2}, // infeasible regime: full scan, screens fire constantly
	}
	for seed := int64(0); seed < 3; seed++ {
		for _, c := range cases {
			rng := rand.New(rand.NewSource(400 + seed))
			y := paritySet(rng, c.n, c.d)
			for _, w := range []int{1, parityWorkers()} {
				par.SetKernelWorkers(w)
				withFilters(true)
				blocksF, ptF, okF := tverberg.Partition(y, c.f)
				withFilters(false)
				blocksX, ptX, okX := tverberg.Partition(y, c.f)
				if okF != okX {
					t.Fatalf("seed %d n=%d d=%d f=%d w=%d: ok filtered=%v exact=%v",
						seed, c.n, c.d, c.f, w, okF, okX)
				}
				if !okF {
					continue
				}
				if !sameBlocks(blocksF, blocksX) {
					t.Errorf("seed %d n=%d d=%d f=%d w=%d: blocks differ:\n  filtered: %v\n  exact: %v",
						seed, c.n, c.d, c.f, w, blocksF, blocksX)
				}
				if !sameBits(ptF, ptX) {
					t.Errorf("seed %d n=%d d=%d f=%d w=%d: points differ: %v vs %v",
						seed, c.n, c.d, c.f, w, ptF, ptX)
				}
			}
		}
	}
}

// TestKernelParityFilteredInHull: the screened hull-membership
// predicate (Wolfe min-norm certificate, exact LP fallback) must agree
// with the pure-LP answer on members, non-members and near-boundary
// queries alike.
func TestKernelParityFilteredInHull(t *testing.T) {
	setupFilterParity(t)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		for _, d := range []int{2, 3, 5} {
			s := paritySet(rng, d+4, d)
			center := vec.Mean(s.Points())
			queries := []vec.V{
				center,
				s.At(0).Clone(),                  // vertex: boundary case
				vec.Lerp(center, s.At(1), 0.999), // just inside a chord
				vec.Lerp(center, farPoint(center), 0.02),
				farPoint(center), // far outside: reject-certificate path
				paritySet(rng, 1, d).At(0),
			}
			for qi, q := range queries {
				geom.SetFilteredPredicates(true)
				inF := geom.InHull(q, s)
				geom.SetFilteredPredicates(false)
				inX := geom.InHull(q, s)
				if inF != inX {
					t.Errorf("seed %d d=%d query %d: filtered InHull=%v, exact=%v",
						seed, d, qi, inF, inX)
				}
			}
		}
	}
}

// TestKernelParityFilteredIntersect: the relaxed-hull intersection
// decision and witness point must survive toggling the separation
// screen and the warm-started LP, across worker counts and both
// polyhedral norms.
func TestKernelParityFilteredIntersect(t *testing.T) {
	setupFilterParity(t)
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		y := paritySet(rng, 7, 2)
		family := relax.DroppedSubsets(y, 2)
		for _, p := range []float64{1, math.Inf(1)} {
			for _, delta := range []float64{0.01, 0.5, 4} {
				for _, w := range []int{1, parityWorkers()} {
					par.SetKernelWorkers(w)
					withFilters(true)
					ptF, okF := relax.IntersectRelaxedHulls(family, delta, p)
					withFilters(false)
					ptX, okX := relax.IntersectRelaxedHulls(family, delta, p)
					if okF != okX {
						t.Fatalf("seed %d p=%v delta=%v w=%d: ok filtered=%v exact=%v",
							seed, p, delta, w, okF, okX)
					}
					if okF && !sameBits(ptF, ptX) {
						t.Errorf("seed %d p=%v delta=%v w=%d: points differ: %v vs %v",
							seed, p, delta, w, ptF, ptX)
					}
				}
			}
		}
	}
}

// TestKernelParityFilteredDeltaStarP: the minimax descent consumes
// thousands of screened distance evaluations; its (δ, point) output
// must not move by a bit when the screens and warm start are off.
func TestKernelParityFilteredDeltaStarP(t *testing.T) {
	if testing.Short() {
		t.Skip("minimax descent is slow under -race; skipped in -short")
	}
	setupFilterParity(t)
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		s := paritySet(rng, 7, 2)
		for _, p := range []float64{1, math.Inf(1)} {
			withFilters(true)
			rF := minimax.DeltaStarP(s, 2, p)
			withFilters(false)
			rX := minimax.DeltaStarP(s, 2, p)
			if math.Float64bits(rF.Delta) != math.Float64bits(rX.Delta) {
				t.Errorf("seed %d p=%v: filtered delta %v, exact %v", seed, p, rF.Delta, rX.Delta)
			}
			if !sameBits(rF.Point, rX.Point) {
				t.Errorf("seed %d p=%v: points differ: %v vs %v", seed, p, rF.Point, rX.Point)
			}
		}
	}
}
