package relaxedbvc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"relaxedbvc/internal/broadcast"
)

// The transport parity contract: a cluster of nodes running over the
// mesh or TCP backends decides bit-for-bit the same vectors as the
// deterministic simulation of the same Spec. These tests pin that
// equality on fingerprints of the outputs (exact binary encodings, no
// tolerance).

// fingerprint encodes a vector exactly (bit-level, no rounding).
func fingerprint(v Vector) string {
	if v == nil {
		return "<nil>"
	}
	return string(broadcast.EncodeVec(v))
}

// setFingerprint encodes a whole multiset exactly.
func setFingerprint(s *PointSet) string {
	if s == nil {
		return "<nil>"
	}
	var out string
	for _, p := range s.Points() {
		out += fingerprint(p)
	}
	return out
}

// parity specs covering every protocol the non-sim backends support,
// with and without a Byzantine adversary.
func paritySpecs() map[string]Spec {
	in4 := []Vector{
		NewVector(0, 0), NewVector(4, 0), NewVector(0, 4), NewVector(3, 3),
	}
	return map[string]Spec{
		"delta-relaxed-p2": {
			Protocol: ProtocolDeltaRelaxed, N: 4, F: 1, D: 2, Inputs: in4,
		},
		"delta-relaxed-p1-byz": {
			Protocol: ProtocolDeltaRelaxed, N: 4, F: 1, D: 2, NormP: 1, Inputs: in4,
			Byzantine: map[int]ByzantineBehavior{3: Equivocator(NewVector(50, 50), NewVector(-50, -50))},
		},
		"exact": {
			Protocol: ProtocolExact, N: 4, F: 1, D: 2, Inputs: in4,
		},
		"k-relaxed-byz": {
			Protocol: ProtocolKRelaxed, N: 4, F: 1, D: 2, K: 2, Inputs: in4,
			Byzantine: map[int]ByzantineBehavior{2: FixedVector(NewVector(99, -99))},
		},
		"scalar-byz": {
			Protocol: ProtocolScalar, N: 4, F: 1, D: 1,
			Inputs:    []Vector{NewVector(1), NewVector(2), NewVector(7), NewVector(4)},
			Byzantine: map[int]ByzantineBehavior{1: Silent()},
		},
		"n7-f2-delta": {
			Protocol: ProtocolDeltaRelaxed, N: 7, F: 2, D: 3,
			Inputs: []Vector{
				NewVector(0, 0, 0), NewVector(1, 0, 0), NewVector(0, 1, 0),
				NewVector(0, 0, 1), NewVector(1, 1, 0), NewVector(1, 0, 1),
				NewVector(2, 2, 2),
			},
			Byzantine: map[int]ByzantineBehavior{
				5: Equivocator(NewVector(9, 9, 9), NewVector(-9, -9, -9)),
				6: RandomLiar(7, 3, 10),
			},
		},
	}
}

// requireParity checks that got matches the simulation result want on
// every decision-relevant field, node by node for the ids in ids.
func requireParity(t *testing.T, want, got *Result, ids []int) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("rounds: got %d, sim %d", got.Rounds, want.Rounds)
	}
	for _, i := range ids {
		if fingerprint(got.Outputs[i]) != fingerprint(want.Outputs[i]) {
			t.Errorf("node %d output: got %v, sim %v", i, got.Outputs[i], want.Outputs[i])
		}
		if got.Delta[i] != want.Delta[i] {
			t.Errorf("node %d delta: got %v, sim %v", i, got.Delta[i], want.Delta[i])
		}
		if setFingerprint(got.AgreedSet[i]) != setFingerprint(want.AgreedSet[i]) {
			t.Errorf("node %d agreed set diverges from sim", i)
		}
	}
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestMeshClusterMatchesSim(t *testing.T) {
	for name, spec := range paritySpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sim, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			mesh, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportMesh}))
			if err != nil {
				t.Fatalf("mesh: %v", err)
			}
			requireParity(t, sim, mesh, allIDs(spec.N))
			if mesh.Messages != sim.Messages {
				t.Errorf("messages: mesh %d, sim %d", mesh.Messages, sim.Messages)
			}
			if mesh.Metrics.Transport != "mesh" {
				t.Errorf("metrics transport label = %q, want mesh", mesh.Metrics.Transport)
			}
			if mesh.Metrics.TransportFramesSent == 0 {
				t.Error("mesh run reported zero frames sent")
			}
		})
	}
}

// TestTCPClusterMatchesSim is the acceptance pin: a 4-node loopback-TCP
// cluster (one Run per node, real sockets) decides the same vectors as
// the simulation of the same Spec, fingerprint-equal.
func TestTCPClusterMatchesSim(t *testing.T) {
	spec := paritySpecs()["delta-relaxed-p1-byz"]
	sim, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	// Bind every node's listener on :0 first so the peer map is complete
	// before any node dials.
	listeners := make([]net.Listener, spec.N)
	peers := make(map[int]string, spec.N)
	for i := 0; i < spec.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}

	results := make([]*Result, spec.N)
	errs := make([]error, spec.N)
	var wg sync.WaitGroup
	for i := 0; i < spec.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(context.Background(), spec, WithTransport(Transport{
				Kind: TransportTCP, Self: i, Peers: peers, Listener: listeners[i],
			}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
	}
	for i, res := range results {
		// Each TCP Run fills only its own slot.
		requireParity(t, sim, res, []int{i})
		if res.Metrics.Transport != "tcp" {
			t.Errorf("node %d metrics transport label = %q, want tcp", i, res.Metrics.Transport)
		}
	}
}

func TestNonSimTransportRejectsSimOnlyFeatures(t *testing.T) {
	base := Spec{
		Protocol: ProtocolDeltaRelaxed, N: 4, F: 1, D: 2,
		Inputs: []Vector{NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1)},
	}
	cases := map[string]Spec{
		"async-protocol":   func() Spec { s := base; s.Protocol = ProtocolAsync; s.Rounds = 3; return s }(),
		"convex-protocol":  func() Spec { s := base; s.Protocol = ProtocolConvex; return s }(),
		"iterative":        func() Spec { s := base; s.Protocol = ProtocolIterative; s.Rounds = 3; return s }(),
		"signed-broadcast": func() Spec { s := base; s.SignedBroadcast = true; return s }(),
		"link-faults": func() Spec {
			s := base
			s.Faults = &LinkFaults{Seed: 1, LinkProfile: LinkProfile{DropProb: 0.1}}
			return s
		}(),
	}
	for name, spec := range cases {
		spec := spec
		t.Run(name, func(t *testing.T) {
			_, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportMesh}))
			if !errors.Is(err, ErrUnsupportedTransport) {
				t.Fatalf("err = %v, want ErrUnsupportedTransport", err)
			}
			if !errors.Is(err, ErrTransport) {
				t.Fatalf("err = %v does not chain ErrTransport", err)
			}
		})
	}
}

func TestRunOptions(t *testing.T) {
	spec := Spec{
		Protocol: ProtocolDeltaRelaxed, N: 4, F: 1, D: 2,
		Inputs: []Vector{NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1)},
	}
	t.Run("metrics sink", func(t *testing.T) {
		var sunk *RunMetrics
		res, err := Run(context.Background(), spec, WithMetricsSink(func(m *RunMetrics) { sunk = m }))
		if err != nil {
			t.Fatal(err)
		}
		if sunk == nil || sunk != res.Metrics {
			t.Fatalf("sink received %p, want result metrics %p", sunk, res.Metrics)
		}
		if sunk.Transport != "sim" {
			t.Errorf("transport label = %q, want sim", sunk.Transport)
		}
	})
	t.Run("kernel workers scoped", func(t *testing.T) {
		prev := KernelWorkers()
		if _, err := Run(context.Background(), spec, WithKernelWorkers(1)); err != nil {
			t.Fatal(err)
		}
		if got := KernelWorkers(); got != prev {
			t.Fatalf("kernel workers not restored: got %d, want %d", got, prev)
		}
	})
	t.Run("same result with one worker", func(t *testing.T) {
		a, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(context.Background(), spec, WithKernelWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		requireParity(t, a, b, allIDs(spec.N))
	})
	t.Run("unknown transport kind", func(t *testing.T) {
		_, err := Run(context.Background(), spec, WithTransport(Transport{Kind: TransportKind(42)}))
		if !errors.Is(err, ErrUnsupportedTransport) {
			t.Fatalf("err = %v, want ErrUnsupportedTransport", err)
		}
	})
}

// TestTCPPeerValidation pins the config-level error paths of the TCP
// backend through the facade.
func TestTCPPeerValidation(t *testing.T) {
	spec := Spec{
		Protocol: ProtocolDeltaRelaxed, N: 4, F: 1, D: 2,
		Inputs: []Vector{NewVector(0, 0), NewVector(1, 0), NewVector(0, 1), NewVector(1, 1)},
	}
	_, err := Run(context.Background(), spec, WithTransport(Transport{
		Kind: TransportTCP, Self: 0,
		Peers: map[int]string{0: "127.0.0.1:1", 1: "127.0.0.1:2"}, // wrong size
	}))
	if !errors.Is(err, ErrBadInputs) {
		t.Fatalf("err = %v, want ErrBadInputs", err)
	}
	_, err = Run(context.Background(), spec, WithTransport(Transport{
		Kind: TransportTCP, Self: 9,
		Peers: map[int]string{0: "a", 1: "b", 2: "c", 3: "d"},
	}))
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	if fmt.Sprint(err) == "" {
		t.Fatal("empty error text")
	}
}
