// Hull region agreement: the two protocol families beyond point-valued
// consensus.
//
// Scenario: five controllers must agree on a safe operating REGION (not
// just a single setpoint) for a 2-D actuator, derived from their locally
// measured safe boxes' corners, with one controller compromised.
//
//  1. Convex hull consensus ([15, 16], the generalization the paper
//     cites): all honest controllers agree on an identical polytope —
//     an inner approximation of Gamma(S) — guaranteed to lie within the
//     hull of the honest measurements.
//  2. Iterative approximate consensus (the [18] family): when only a
//     single setpoint is needed but no broadcast primitive is available,
//     per-round value exchange with safe-area updates converges
//     geometrically to agreement inside the honest hull.
//
// The demo prints the agreed region's vertices and area, then the
// iterative convergence trace under a two-faced adversary.
package main

import (
	"context"
	"fmt"
	"log"

	"relaxedbvc"
	"relaxedbvc/internal/geom"
)

func main() {
	// Honest safe-region measurements (2-D): noisy corners around a
	// common safe zone. Controller 4 is compromised.
	inputs := []relaxedbvc.Vector{
		relaxedbvc.NewVector(1.0, 1.0),
		relaxedbvc.NewVector(3.0, 1.2),
		relaxedbvc.NewVector(2.8, 3.1),
		relaxedbvc.NewVector(1.1, 2.9),
		relaxedbvc.NewVector(0, 0), // compromised; ignored
	}
	spec := relaxedbvc.Spec{
		Protocol: relaxedbvc.ProtocolConvex,
		N:        5, F: 1, D: 2,
		Inputs:     inputs,
		Directions: 16,
		Byzantine: map[int]relaxedbvc.ByzantineBehavior{
			4: relaxedbvc.Equivocator(
				relaxedbvc.NewVector(100, 100),
				relaxedbvc.NewVector(-100, -100),
			),
		},
	}

	// --- Part 1: agree on a region ---
	res, err := relaxedbvc.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	honest := spec.HonestIDs()
	verts := res.Vertices[honest[0]]
	hull := geom.Hull2D(verts)
	fmt.Println("agreed safe region (convex hull consensus):")
	for _, v := range hull {
		fmt.Printf("  vertex: %v\n", v)
	}
	fmt.Printf("  area: %.4f\n", geom.PolygonArea(hull))
	fmt.Printf("  identical at all %d honest controllers: %v\n", len(honest), func() bool {
		for _, i := range honest[1:] {
			for k := range verts {
				if !res.Vertices[i][k].Equal(verts[k]) {
					return false
				}
			}
		}
		return true
	}())
	fmt.Printf("  region inside honest measurements' hull: %v\n\n",
		relaxedbvc.CheckConvexValidity(verts, spec.NonFaultyInputs(), 1e-6))

	// --- Part 2: iterate to a single setpoint without broadcast ---
	iter := relaxedbvc.Spec{
		Protocol: relaxedbvc.ProtocolIterative,
		N:        5, F: 1, D: 2,
		Inputs: inputs,
		Rounds: 10,
		IterByzantine: map[int]relaxedbvc.IterByzantine{
			4: relaxedbvc.IterByzantineFunc(func(round, to int, _ relaxedbvc.Vector) relaxedbvc.Vector {
				// A fresh lie to every controller every round.
				return relaxedbvc.NewVector(
					float64((to*13+round*7)%9)*30-120,
					float64((to*5+round*11)%9)*30-120,
				)
			}),
		},
	}
	ires, err := relaxedbvc.Run(context.Background(), iter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("iterative setpoint agreement (no broadcast primitive):")
	fmt.Printf("  %-7s %s\n", "round", "honest range (Linf)")
	for r, v := range ires.RangeHistory {
		fmt.Printf("  %-7d %.3g\n", r, v)
	}
	fmt.Printf("  final setpoint (controller 0): %v\n", ires.Outputs[0])
	fmt.Printf("  inside honest hull: %v\n",
		relaxedbvc.CheckExactValidity(ires.Outputs[0], spec.NonFaultyInputs(), 1e-6))
}
