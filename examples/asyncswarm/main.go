// Async swarm rendezvous: asynchronous relaxed consensus in action.
//
// A swarm of autonomous vehicles must converge on a common 3-D rendezvous
// point. The network is asynchronous (messages arrive in adversarial
// order, members can be arbitrarily slow) and one member may be
// compromised. Exact-validity approximate consensus needs
// n >= (d+2)f+1 = 6 vehicles for d = 3; the paper's Relaxed Verified
// Averaging algorithm (Section 10) needs only n = 4, tolerating a
// compromised member that lies about its position — the verification
// discipline forces it to either follow the averaging rule or be ignored.
//
// The demo runs the swarm under three delivery schedules and plots the
// epsilon-agreement decay against the number of averaging rounds.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"relaxedbvc"
	"relaxedbvc/internal/sched"
)

func main() {
	const (
		d = 3
		n = 4 // d+1 — below the exact-validity asynchronous bound d+3
		f = 1
	)
	positions := []relaxedbvc.Vector{
		relaxedbvc.NewVector(0.0, 0.0, 10.0),
		relaxedbvc.NewVector(5.0, 1.0, 10.5),
		relaxedbvc.NewVector(2.0, 6.0, 9.0),
		relaxedbvc.NewVector(0, 0, 0), // compromised member; real input ignored
	}
	liar := &relaxedbvc.AsyncByzantine{
		Input:       relaxedbvc.NewVector(400, -400, 0), // tries to drag the swarm away
		SilentFrom:  relaxedbvc.NeverMisbehave,
		CorruptFrom: relaxedbvc.NeverMisbehave,
	}

	schedules := []struct {
		name string
		mk   func() sched.Schedule
	}{
		{"random delivery", func() sched.Schedule {
			return &sched.RandomSchedule{Rng: rand.New(rand.NewSource(7))}
		}},
		{"adversarial LIFO", func() sched.Schedule { return sched.LIFOSchedule{} }},
		{"vehicle 0 starved", func() sched.Schedule {
			return &sched.DelayTargetSchedule{Slow: map[int]bool{0: true}}
		}},
	}

	for _, s := range schedules {
		fmt.Printf("schedule: %s\n", s.name)
		fmt.Printf("  %-7s %-12s %s\n", "rounds", "epsilon", "rendezvous (vehicle 0)")
		for _, rounds := range []int{2, 4, 8, 14} {
			spec := relaxedbvc.Spec{
				Protocol: relaxedbvc.ProtocolAsync,
				N:        n, F: f, D: d,
				Inputs:         positions,
				Rounds:         rounds,
				Mode:           relaxedbvc.ModeRelaxed,
				AsyncByzantine: map[int]*relaxedbvc.AsyncByzantine{3: liar},
				Schedule:       s.mk(),
			}
			res, err := relaxedbvc.Run(context.Background(), spec)
			if err != nil {
				log.Fatal(err)
			}
			honest := spec.HonestIDs()
			eps := relaxedbvc.AgreementError(res.Outputs, honest)
			fmt.Printf("  %-7d %-12.3g %v\n", rounds, eps, res.Outputs[honest[0]])
		}
		fmt.Println()
	}

	fmt.Println("epsilon shrinks geometrically with rounds under every schedule;")
	fmt.Println("the rendezvous stays near the honest vehicles despite the liar,")
	fmt.Println("because round-0 choices respect the (delta,2)-relaxed hull of the")
	fmt.Println("witnessed positions and later rounds only average verified values.")
}
