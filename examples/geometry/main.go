// Geometry tour: the library as a standalone computational-geometry
// toolkit, independent of any protocol run.
//
// Walks through the objects the paper's analysis is built from:
// convex hull membership and distances in several norms, the adversary-
// safe region Gamma(S) and its support points, Tverberg partitions, the
// relaxation radius delta* with its Table 1 bounds, and an SVG rendering
// of the 2-D picture.
package main

import (
	"fmt"
	"log"
	"os"

	"relaxedbvc"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/viz"
)

func main() {
	// Five sensor readings in the plane; suppose any one may be faulty.
	pts := []relaxedbvc.Vector{
		relaxedbvc.NewVector(0, 0),
		relaxedbvc.NewVector(4, 0),
		relaxedbvc.NewVector(4, 3),
		relaxedbvc.NewVector(0, 3),
		relaxedbvc.NewVector(2, 1.5),
	}
	s := relaxedbvc.NewPointSet(pts...)

	fmt.Println("-- hulls and distances --")
	q := relaxedbvc.NewVector(5, 4)
	fmt.Printf("q = %v in hull: %v\n", q, relaxedbvc.InHull(q, s))
	for _, p := range []float64{1, 2, relaxedbvc.LInf} {
		d, nearest := relaxedbvc.DistToHull(q, s, p)
		fmt.Printf("  L%-3v distance %.4f (nearest %v)\n", p, d, nearest)
	}

	fmt.Println("\n-- Gamma(S): the f-safe region --")
	g, ok := relaxedbvc.GammaPoint(s, 1)
	fmt.Printf("Gamma point (f=1): %v (nonempty=%v)\n", g, ok)
	fam := relax.DroppedSubsets(s, 1)
	for _, dir := range []relaxedbvc.Vector{
		relaxedbvc.NewVector(1, 0), relaxedbvc.NewVector(-1, 0),
		relaxedbvc.NewVector(0, 1), relaxedbvc.NewVector(0, -1),
	} {
		sp, _ := relax.SupportPoint(fam, dir)
		fmt.Printf("  support in %v: %v\n", dir, sp)
	}

	fmt.Println("\n-- Tverberg partition --")
	blocks, point, ok := relaxedbvc.TverbergPartition(s, 1)
	fmt.Printf("partition %v with common point %v (found=%v)\n", blocks, point, ok)

	fmt.Println("\n-- delta* and its bounds --")
	// Drop to n = d+1 = 3 points, where Gamma is empty and delta* > 0.
	tri := relaxedbvc.NewPointSet(pts[0], pts[1], pts[3])
	for _, p := range []float64{1, 2, relaxedbvc.LInf} {
		dstar, at, err := relaxedbvc.ComputeDeltaStar(tri, 1, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  delta*_%-3v = %.4f at %v\n", p, dstar, at)
	}
	d2, center, err := relaxedbvc.ComputeDeltaStar(tri, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 9 bound (any faulty): %.4f > delta*_2 = %.4f\n",
		relaxedbvc.Theorem9Bound(relaxedbvc.NewPointSet(pts[0], pts[1]), 3), d2)

	// Render the triangle scene.
	f, err := os.Create("geometry.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	err = viz.RenderConsensus(f, viz.ConsensusScene{
		HonestInputs: tri.Points(),
		Output:       center,
		Delta:        d2,
		Title:        "delta* disk = inscribed circle (Lemma 13)",
	}, 480, 480)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote geometry.svg (the delta* disk is the inscribed circle)")
	fmt.Printf("2-D hull vertices: %v\n", geom.Hull2D(tri.Points()))
}
