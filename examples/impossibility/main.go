// Impossibility tour: watching the paper's lower-bound constructions bite.
//
// Three demonstrations, each an executable rendition of a proof:
//
//  1. Theorem 3's adversarial matrix makes the feasible output region
//     Psi_k(Y) of k-relaxed exact consensus empty at n = d+1 for every
//     k >= 2 (while k = 1 stays feasible) — the k-relaxation does not
//     buy any processes.
//  2. Theorem 5's scaled-axis inputs make Gamma_(delta,inf)(S) empty as
//     soon as the scale x exceeds 2*d*delta — a constant delta does not
//     buy any processes either.
//  3. Lemma 10 / Figure 1: with n = 3 <= 3f the two honest processes'
//     views can be split by an equivocator (run live on the simulated
//     network), while the same attack fails at n = 4.
package main

import (
	"context"
	"fmt"
	"log"

	"relaxedbvc"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

func main() {
	part1Theorem3()
	part2Theorem5()
	part3Lemma10()
}

func part1Theorem3() {
	fmt.Println("--- Part 1: Theorem 3's matrix empties Psi_k for k >= 2 ---")
	for d := 3; d <= 5; d++ {
		cols := workload.Theorem3Matrix(d, 1.0, 0.5)
		y := vec.NewSet(cols...)
		fmt.Printf("d=%d, n=d+1=%d inputs (gamma=1, eps=0.5):\n", d, d+1)
		for k := 1; k <= d; k++ {
			_, feasible := relax.PsiKPoint(y, 1, k)
			verdict := "EMPTY  (consensus impossible)"
			if feasible {
				verdict = "nonempty"
			}
			fmt.Printf("  Psi_%d(Y): %s\n", k, verdict)
		}
		// One extra process rescues it.
		y2 := y.Clone()
		y2.Append(vec.New(d))
		_, ok := relax.PsiKPoint(y2, 1, 2)
		fmt.Printf("  with n=d+2: Psi_2 nonempty = %v\n\n", ok)
	}
}

func part2Theorem5() {
	fmt.Println("--- Part 2: Theorem 5's inputs defeat any constant delta ---")
	const delta = 0.5
	for d := 2; d <= 4; d++ {
		bound := 2 * float64(d) * delta
		for _, x := range []float64{bound * 0.5, bound * 1.25} {
			s := vec.NewSet(workload.Theorem5Matrix(d, x)...)
			dstar, _ := relax.DeltaStarPoly(s, 1, relaxedbvc.LInf)
			feasible := dstar <= delta
			fmt.Printf("  d=%d x=%.2f (2d*delta=%.1f): delta*_inf=%.4f -> (%.1f,inf)-consensus %v\n",
				d, x, bound, dstar, delta, map[bool]string{true: "feasible", false: "IMPOSSIBLE"}[feasible])
		}
	}
	fmt.Println()
}

func part3Lemma10() {
	fmt.Println("--- Part 3: Lemma 10 / Figure 1 at n = 3 <= 3f ---")
	one := relaxedbvc.NewVector(1, 1)
	zero := relaxedbvc.NewVector(0, 0)

	// Scenario B: honest p, q with input 1; Byzantine r tells p "1" and
	// q "0" (its scenario-A ring roles), also corrupting relays.
	spec3 := relaxedbvc.Spec{
		Protocol: relaxedbvc.ProtocolDeltaRelaxed,
		N:        3, F: 1, D: 2,
		Inputs: []relaxedbvc.Vector{one, one, zero},
		Byzantine: map[int]relaxedbvc.ByzantineBehavior{
			2: relaxedbvc.PerRecipient(map[int]relaxedbvc.Vector{0: one, 1: zero}),
		},
	}
	res, err := relaxedbvc.Run(context.Background(), spec3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("n=3: agreed multisets after Byzantine broadcast:")
	for _, i := range []int{0, 1} {
		fmt.Printf("  honest process %d sees: %v\n", i, res.AgreedSet[i])
	}
	fmt.Printf("  outputs: p=%v q=%v  -> agreement broken: %v\n\n",
		res.Outputs[0], res.Outputs[1],
		!res.Outputs[0].ApproxEqual(res.Outputs[1], 1e-9))

	// Control at n = 4: the equivocator is powerless.
	spec4 := relaxedbvc.Spec{
		Protocol: relaxedbvc.ProtocolDeltaRelaxed,
		N:        4, F: 1, D: 2,
		Inputs: []relaxedbvc.Vector{one, one, one, zero},
		Byzantine: map[int]relaxedbvc.ByzantineBehavior{
			3: relaxedbvc.PerRecipient(map[int]relaxedbvc.Vector{0: one, 1: zero, 2: one}),
		},
	}
	res4, err := relaxedbvc.Run(context.Background(), spec4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=4 control: agreement error = %v (attack defeated)\n",
		relaxedbvc.AgreementError(res4.Outputs, spec4.HonestIDs()))
}
