// Sensor fusion: the motivating workload from the paper's introduction.
//
// A replicated state estimator fuses d-dimensional state vectors
// (position, velocity, temperature...) from n redundant sensor nodes, up
// to f of which may be compromised. Exact Byzantine vector consensus
// needs n >= (d+1)f+1 — for a 6-dimensional state and f = 1 that is 8
// sensors. The input-dependent (delta,2)-relaxation lets 7 = d+1 sensors
// suffice, and because honest sensors observe the same physical state
// (their readings are close together), the Theorem 9 bound
// min(minEdge/2, maxEdge/(n-2)) keeps the fused estimate within a small,
// input-proportional distance of the honest readings' hull.
//
// The demo fuses a 6-dimensional state with 7 sensors across three
// attack patterns, printing the fused estimate, the achieved delta and
// its guaranteed bound, and the estimation error versus ground truth.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"relaxedbvc"
)

const (
	d = 6 // state dimension: (x, y, z, vx, vy, vz)
	n = 7 // d+1 sensors — one fewer than exact consensus would need
	f = 1
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Ground truth state and noisy honest readings.
	truth := relaxedbvc.NewVector(12.0, -3.0, 7.5, 0.8, -0.2, 0.05)
	inputs := make([]relaxedbvc.Vector, n)
	for i := range inputs {
		r := truth.Clone()
		for j := range r {
			r[j] += rng.NormFloat64() * 0.05 // sensor noise
		}
		inputs[i] = r
	}

	attacks := map[string]relaxedbvc.ByzantineBehavior{
		"spoofed position (fixed far vector)": relaxedbvc.FixedVector(
			relaxedbvc.NewVector(999, 999, 999, 9, 9, 9)),
		"two-faced (different lies per peer)": relaxedbvc.Equivocator(
			relaxedbvc.NewVector(100, 0, 0, 0, 0, 0),
			relaxedbvc.NewVector(0, 100, 0, 0, 0, 0)),
		"dead sensor (silent)": relaxedbvc.Silent(),
	}

	for name, behavior := range attacks {
		spec := relaxedbvc.Spec{
			Protocol: relaxedbvc.ProtocolDeltaRelaxed,
			N:        n, F: f, D: d,
			Inputs:    inputs,
			Byzantine: map[int]relaxedbvc.ByzantineBehavior{n - 1: behavior},
		}
		res, err := relaxedbvc.Run(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		honest := spec.HonestIDs()
		fused := res.Outputs[honest[0]]
		delta := res.Delta[honest[0]]
		nonFaulty := spec.NonFaultyInputs()

		fmt.Printf("attack: %s\n", name)
		fmt.Printf("  fused estimate : %v\n", fused)
		fmt.Printf("  error vs truth : %.4f (L2)\n", fused.Dist2(truth))
		fmt.Printf("  achieved delta : %.6f\n", delta)
		fmt.Printf("  Theorem 9 bound: %.6f (scales with honest sensor spread)\n",
			relaxedbvc.Theorem9Bound(nonFaulty, n))
		fmt.Printf("  all %d honest nodes agree exactly: %v\n",
			len(honest), relaxedbvc.AgreementError(res.Outputs, honest) == 0)
		fmt.Printf("  (delta,2)-valid: %v\n\n",
			relaxedbvc.CheckDeltaValidity(fused, nonFaulty, delta, 2, 1e-9))
	}

	fmt.Println("key property: because honest readings sit within ~0.2 of each")
	fmt.Println("other, the relaxation radius delta is bounded by ~0.1 no matter")
	fmt.Println("what the compromised sensor transmits — the attacker cannot")
	fmt.Println("drag the fused state away from the honest readings.")
}
