// Quickstart: the smallest end-to-end use of the relaxedbvc public API.
//
// Four processes (one Byzantine) hold 3-dimensional input vectors. Exact
// Byzantine vector consensus would need (d+1)f+1 = 5 processes; the
// paper's Algorithm ALGO instead achieves (delta,2)-relaxed consensus
// with only n = 4, with the achieved delta provably below the Theorem 9
// bound computed from the non-faulty inputs.
package main

import (
	"context"
	"fmt"
	"log"

	"relaxedbvc"
)

func main() {
	inputs := []relaxedbvc.Vector{
		relaxedbvc.NewVector(0.0, 0.0, 0.0),
		relaxedbvc.NewVector(1.0, 0.1, 0.0),
		relaxedbvc.NewVector(0.0, 1.0, 0.2),
		relaxedbvc.NewVector(0.1, 0.0, 1.0), // process 3 is Byzantine; this is ignored
	}
	spec := relaxedbvc.Spec{
		Protocol: relaxedbvc.ProtocolDeltaRelaxed,
		N:        4, F: 1, D: 3,
		Inputs: inputs,
		Byzantine: map[int]relaxedbvc.ByzantineBehavior{
			3: relaxedbvc.Equivocator(
				relaxedbvc.NewVector(50, 50, 50),
				relaxedbvc.NewVector(-50, -50, -50),
			),
		},
	}

	res, err := relaxedbvc.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	honest := spec.HonestIDs()
	fmt.Println("honest process outputs (identical by Agreement):")
	for _, i := range honest {
		fmt.Printf("  process %d: %v\n", i, res.Outputs[i])
	}

	delta := res.Delta[honest[0]]
	nonFaulty := spec.NonFaultyInputs()
	fmt.Printf("\nachieved delta:            %.6f\n", delta)
	fmt.Printf("Theorem 9 upper bound:     %.6f\n", relaxedbvc.Theorem9Bound(nonFaulty, spec.N))
	fmt.Printf("agreement error:           %v\n", relaxedbvc.AgreementError(res.Outputs, honest))
	fmt.Printf("(delta,2)-relaxed valid:   %v\n",
		relaxedbvc.CheckDeltaValidity(res.Outputs[honest[0]], nonFaulty, delta, 2, 1e-9))

	// Contrast: exact validity (delta = 0) is impossible with these n, f, d
	// when the inputs are affinely independent — Gamma(S) is empty.
	exact := spec
	exact.Protocol = relaxedbvc.ProtocolExact
	if _, err := relaxedbvc.Run(context.Background(), exact); err != nil {
		fmt.Printf("\nexact BVC at n=4 fails as the theory predicts: %v\n", err)
	}
}
