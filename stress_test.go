package relaxedbvc_test

// Race-stress of the batch engine with fault-injecting specs: many
// copies of the same seeded instance run concurrently, and every copy
// must produce a byte-identical trace transcript and per-run metrics
// snapshot. Run under -race (CI does), this pins both the determinism
// of the fault layer and the data-race freedom of the engines.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	bvc "relaxedbvc"
)

// stressSpec returns one fault-injecting instance; each call gets its
// own trace recorder so concurrent copies do not share state.
func stressSpec(proto bvc.Protocol) (bvc.Spec, *bvc.TraceRecorder) {
	rec := bvc.NewTraceRecorder(1 << 16)
	spec := bvc.Spec{
		Protocol: proto,
		N:        4, F: 1, D: 3,
		Inputs: []bvc.Vector{
			bvc.NewVector(0, 0, 0), bvc.NewVector(1, 0.2, 0),
			bvc.NewVector(0, 1, 0.3), bvc.NewVector(0.1, 0, 1),
		},
		Rounds: 5,
		Trace:  rec.Hook(),
	}
	switch proto {
	case bvc.ProtocolAsync:
		spec.Faults = &bvc.LinkFaults{
			Seed:        7,
			LinkProfile: bvc.LinkProfile{DropProb: 0.2, DupProb: 0.25, DelayMax: 2},
			Partitions:  []bvc.Partition{{Start: 1, End: 5, Group: []int{1}}},
		}
	default:
		// Lockstep protocols tolerate only duplication.
		spec.Faults = &bvc.LinkFaults{Seed: 7, LinkProfile: bvc.LinkProfile{DupProb: 0.5}}
	}
	return spec, rec
}

// fingerprintRun renders one batch result into a comparable string.
func fingerprintRun(t *testing.T, br bvc.BatchResult, rec *bvc.TraceRecorder) string {
	t.Helper()
	if br.Err != nil {
		t.Fatalf("trial %d failed: %v", br.Index, br.Err)
	}
	var b strings.Builder
	m := *br.Result.Metrics
	m.WallNanos = 0
	j, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(j)
	b.WriteString("\noutputs=")
	for _, o := range br.Result.Outputs {
		b.WriteString(o.String())
		b.WriteByte(';')
	}
	b.WriteString("\ntranscript:\n")
	rec.Dump(&b, 0)
	return b.String()
}

func TestRunBatchFaultInjectionRaceStress(t *testing.T) {
	const copies = 16
	for _, proto := range []bvc.Protocol{bvc.ProtocolAsync, bvc.ProtocolDeltaRelaxed} {
		specs := make([]bvc.Spec, copies)
		recs := make([]*bvc.TraceRecorder, copies)
		for i := range specs {
			specs[i], recs[i] = stressSpec(proto)
		}
		results := bvc.RunBatch(context.Background(), bvc.BatchOptions{Workers: 8}, specs)
		want := fingerprintRun(t, results[0], recs[0])
		if !strings.Contains(want, "transcript:\n#") {
			t.Fatalf("%s: no messages traced:\n%s", proto, want)
		}
		for i := 1; i < copies; i++ {
			if got := fingerprintRun(t, results[i], recs[i]); got != want {
				t.Fatalf("%s: trial %d diverged from trial 0 under identical seeds:\n--- want ---\n%s\n--- got ---\n%s",
					proto, i, want, got)
			}
		}
	}
}
