package relaxedbvc

// ProtocolACS execution on the three transport backends. The ACS node
// is a deterministic lockstep state machine (internal/acs), so the
// simulation runs it on sched.SyncEngine while the mesh and TCP
// backends drive the identical machine through transport.RunSync —
// the decision stream is bit-for-bit the same on every backend, and
// ACSFingerprint is the parity predicate the selfchecks compare.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"relaxedbvc/internal/acs"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/transport"
)

// ACSBehavior scripts one ACS node's adversary (Spec.ACSByzantine).
type ACSBehavior int

const (
	// ACSEquivocate proposes different values to different peers each
	// epoch; Bracha's echo quorum refuses to deliver the slot.
	ACSEquivocate ACSBehavior = iota
	// ACSMute crashes at start and never sends a message.
	ACSMute
)

// ACSEpoch is one sealed epoch of a process's decision stream.
type ACSEpoch struct {
	// Epoch is the epoch index; decisions commit strictly in order.
	Epoch int
	// Subset holds the agreed slot ids, ascending (at least N-F).
	Subset []int
	// Values are the subset's reliably-delivered proposals, in Subset
	// order.
	Values []Vector
	// Output and Delta are the epoch decision: the delta*_p minimizer
	// over Values with fault bound F.
	Output Vector
	Delta  float64
}

// ACSFingerprint digests a process's decision stream into a stable hex
// string; equal fingerprints mean bit-identical streams. Use it to
// compare runs across transports (the bvcnode -stream selfcheck does).
func ACSFingerprint(decisions []ACSEpoch) string {
	conv := make([]acs.EpochDecision, len(decisions))
	for i, d := range decisions {
		conv[i] = acs.EpochDecision{
			Epoch: d.Epoch, Subset: d.Subset, Values: d.Values,
			Output: d.Output, Delta: d.Delta,
		}
	}
	return acs.Fingerprint(conv)
}

// acsProposals resolves the proposal matrix: Spec.Proposals, or one
// epoch of Spec.Inputs.
func (s *Spec) acsProposals() [][]Vector {
	if len(s.Proposals) > 0 {
		return s.Proposals
	}
	if len(s.Inputs) > 0 {
		return [][]Vector{s.Inputs}
	}
	return nil
}

// validateACS checks the ACS instance shape with typed sentinels.
func validateACS(spec *Spec) ([][]Vector, error) {
	if spec.F < 1 {
		return nil, fmt.Errorf("%w: ACS needs f >= 1, got f=%d", ErrTooManyFaults, spec.F)
	}
	if spec.N < 3*spec.F+1 {
		return nil, fmt.Errorf("%w: ACS requires n >= 3f+1 (n=%d, f=%d)", ErrTooFewProcesses, spec.N, spec.F)
	}
	if spec.D < 1 {
		return nil, fmt.Errorf("%w: need d >= 1, got d=%d", ErrBadDimension, spec.D)
	}
	if len(spec.ACSByzantine) > spec.F {
		return nil, fmt.Errorf("%w: %d scripted ACS adversaries with f=%d", ErrTooManyFaults, len(spec.ACSByzantine), spec.F)
	}
	if p := spec.norm(); p < 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("%w: p=%v (need p >= 1)", ErrBadNorm, p)
	}
	props := spec.acsProposals()
	if len(props) == 0 {
		return nil, fmt.Errorf("%w: no proposals (set Spec.Proposals or Spec.Inputs)", ErrBadInputs)
	}
	for e, row := range props {
		if len(row) != spec.N {
			return nil, fmt.Errorf("%w: epoch %d has %d proposals for n=%d", ErrBadInputs, e, len(row), spec.N)
		}
		// A nil entry means "proposed by another process" — legal on the
		// TCP backend, where each node knows only its own column; the node
		// constructor rejects a nil in the column it actually executes.
		for i, v := range row {
			if v != nil && len(v) != spec.D {
				return nil, fmt.Errorf("%w: epoch %d proposal %d has dimension %d, want %d", ErrBadInputs, e, i, len(v), spec.D)
			}
		}
	}
	return props, nil
}

// acsNode builds process i's state machine.
func acsNode(spec *Spec, props [][]Vector, i int) (*acs.Node, error) {
	own := make([]Vector, len(props))
	for e := range props {
		own[e] = props[e][i]
	}
	behavior := acs.Honest
	if b, bad := spec.ACSByzantine[i]; bad {
		switch b {
		case ACSMute:
			behavior = acs.Mute
		default:
			behavior = acs.Equivocate
		}
	}
	return acs.NewNode(acs.Config{
		N: spec.N, F: spec.F, Self: i, D: spec.D,
		NormP:     spec.norm(),
		Proposals: own,
		Behavior:  behavior,
		Default:   spec.Default,
	})
}

// acsResultShell allocates the Result skeleton for an ACS run.
func acsResultShell(spec *Spec) *Result {
	return &Result{
		Protocol: ProtocolACS,
		Outputs:  make([]Vector, spec.N),
		Delta:    make([]float64, spec.N),
		ACS:      make([][]ACSEpoch, spec.N),
		Metrics:  &RunMetrics{},
	}
}

// fillACSNode copies one node's sealed stream into the Result.
func fillACSNode(res *Result, i int, node *acs.Node) {
	decs := node.Decisions()
	out := make([]ACSEpoch, len(decs))
	for e, d := range decs {
		out[e] = ACSEpoch{
			Epoch: d.Epoch, Subset: d.Subset, Values: d.Values,
			Output: d.Output, Delta: d.Delta,
		}
	}
	res.ACS[i] = out
	if len(decs) > 0 {
		last := decs[len(decs)-1]
		res.Outputs[i] = last.Output
		res.Delta[i] = last.Delta
	}
}

// fillACSStats publishes the first filled node's protocol counters.
func fillACSStats(res *Result, spec *Spec, nodes map[int]*acs.Node) {
	for _, i := range spec.HonestIDs() {
		node := nodes[i]
		if node == nil {
			continue
		}
		st := node.Stats()
		res.Metrics.ACSEpochs = st.Epochs
		res.Metrics.ACSSlots = st.Slots
		res.Metrics.ABARounds = st.ABARounds
		return
	}
}

// runSimACS executes the stream on the deterministic lockstep engine.
func runSimACS(ctx context.Context, spec *Spec) (*Result, error) {
	props, err := validateACS(spec)
	if err != nil {
		return nil, err
	}
	nodes := make([]*acs.Node, spec.N)
	procs := make([]sched.SyncProcess, spec.N)
	for i := 0; i < spec.N; i++ {
		if nodes[i], err = acsNode(spec, props, i); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInputs, err)
		}
		procs[i] = nodes[i]
	}
	eng := sched.NewSyncEngine(procs)
	eng.Faults = spec.Faults
	eng.TraceFn = spec.Trace
	eng.StopFn = func() error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: %w", consensus.ErrCanceled, cerr)
		}
		return nil
	}
	rounds, runErr := eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	res := acsResultShell(spec)
	res.Rounds = rounds
	res.Messages = eng.Messages
	fillFaultMetrics(res.Metrics, eng.FaultStats)
	byID := make(map[int]*acs.Node, spec.N)
	for i, node := range nodes {
		fillACSNode(res, i, node)
		byID[i] = node
	}
	fillACSStats(res, spec, byID)
	return res, nil
}

// acsTransportGuard rejects Spec features only the simulation provides.
func acsTransportGuard(spec *Spec) error {
	if spec.Faults != nil {
		return fmt.Errorf("%w: seeded link faults run only on the simulation backend", ErrUnsupportedTransport)
	}
	return nil
}

// runMeshACS executes all n stream nodes concurrently over the
// in-process channel mesh.
func runMeshACS(ctx context.Context, spec *Spec) (*Result, error) {
	props, err := validateACS(spec)
	if err != nil {
		return nil, err
	}
	if err := acsTransportGuard(spec); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mesh := transport.NewMesh(spec.N)
	nodes := make([]*acs.Node, spec.N)
	stats := make([]*transport.SyncNodeStats, spec.N)
	errs := make([]error, spec.N)
	for i := 0; i < spec.N; i++ {
		if nodes[i], err = acsNode(spec, props, i); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInputs, err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < spec.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = transport.RunSync(ctx, mesh.Node(i), nodes[i], 0, spec.Trace)
			if errs[i] != nil {
				cancel() // unblock peers stuck at the round barrier
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < spec.N; i++ {
		mesh.Node(i).Close() //nolint:errcheck // mesh close cannot fail
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mesh node %d: %w", i, err)
		}
	}
	res := acsResultShell(spec)
	byID := make(map[int]*acs.Node, spec.N)
	for i, node := range nodes {
		fillACSNode(res, i, node)
		byID[i] = node
		res.Rounds = stats[i].Rounds
		res.Messages += stats[i].Delivered
		addTransportStats(res.Metrics, mesh.Node(i))
	}
	fillACSStats(res, spec, byID)
	return res, nil
}

// runTCPACS executes THIS process's stream node over real sockets;
// only the Self slices of the Result are filled.
func runTCPACS(ctx context.Context, spec *Spec, tc *Transport) (*Result, error) {
	props, err := validateACS(spec)
	if err != nil {
		return nil, err
	}
	if err := acsTransportGuard(spec); err != nil {
		return nil, err
	}
	if len(tc.Peers) != spec.N {
		return nil, fmt.Errorf("%w: %d peers for n=%d", ErrBadInputs, len(tc.Peers), spec.N)
	}
	node, err := acsNode(spec, props, tc.Self)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInputs, err)
	}
	tr, err := transport.DialTCP(transport.TCPConfig{
		Self:     tc.Self,
		Peers:    tc.Peers,
		Listener: tc.Listener,
		MaxFrame: tc.MaxFrame,
	})
	if err != nil {
		return nil, err
	}
	stats, runErr := transport.RunSync(ctx, tr, node, 0, spec.Trace)
	closeErr := tr.Close()
	if runErr != nil {
		return nil, fmt.Errorf("tcp node %d: %w", tc.Self, runErr)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("tcp node %d: close: %w", tc.Self, closeErr)
	}
	res := acsResultShell(spec)
	res.Rounds = stats.Rounds
	res.Messages = stats.Delivered
	fillACSNode(res, tc.Self, node)
	fillACSStats(res, spec, map[int]*acs.Node{tc.Self: node})
	addTransportStats(res.Metrics, tr)
	return res, nil
}
