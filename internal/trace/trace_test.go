package trace

import (
	"context"

	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

func TestRecorderBasics(t *testing.T) {
	r := New(3)
	hook := r.Hook()
	for i := 0; i < 5; i++ {
		hook(sched.Message{From: i % 2, To: 1, Tag: "x", Data: make([]byte, 10), SentRound: i})
	}
	if r.Total() != 5 || r.TotalBytes() != 50 {
		t.Fatalf("total=%d bytes=%d", r.Total(), r.TotalBytes())
	}
	if len(r.Events()) != 3 {
		t.Fatalf("retained = %d, want 3 (cap)", len(r.Events()))
	}
	if r.PerTag()["x"] != 5 {
		t.Errorf("per-tag = %v", r.PerTag())
	}
	if r.PerSender()[0] != 3 || r.PerSender()[1] != 2 {
		t.Errorf("per-sender = %v", r.PerSender())
	}
}

// TestZeroValueRecorder checks a plain &Recorder{} (no New) records and
// reports correctly with the default cap.
func TestZeroValueRecorder(t *testing.T) {
	var r Recorder
	hook := r.Hook()
	for i := 0; i < 7; i++ {
		hook(sched.Message{From: i % 3, To: 0, Tag: "z", Data: make([]byte, 4), SentRound: i})
	}
	if r.Total() != 7 || r.TotalBytes() != 28 {
		t.Fatalf("total=%d bytes=%d", r.Total(), r.TotalBytes())
	}
	if len(r.Events()) != 7 {
		t.Fatalf("retained = %d", len(r.Events()))
	}
	if r.PerTag()["z"] != 7 {
		t.Errorf("per-tag = %v", r.PerTag())
	}
	var sum bytes.Buffer
	r.Summary(&sum)
	if !strings.Contains(sum.String(), "7 messages") {
		t.Errorf("summary: %s", sum.String())
	}
}

// TestConcurrentHooks hammers one recorder from many goroutines — the
// shape batch trials sharing a recorder produce — and checks the counts
// survive. Run with -race.
func TestConcurrentHooks(t *testing.T) {
	var r Recorder
	hook := r.Hook()
	const goroutines, each = 8, 600
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				hook(sched.Message{From: g, To: 0, Tag: "c", Data: []byte{1}, SentRound: i})
				if i%100 == 0 {
					// Read concurrently with writes.
					_ = r.Total()
					_ = r.PerTag()
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != goroutines*each {
		t.Fatalf("total = %d, want %d", r.Total(), goroutines*each)
	}
	if r.TotalBytes() != goroutines*each {
		t.Fatalf("bytes = %d", r.TotalBytes())
	}
	per := r.PerSender()
	for g := 0; g < goroutines; g++ {
		if per[g] != each {
			t.Fatalf("sender %d count = %d, want %d", g, per[g], each)
		}
	}
	if len(r.Events()) != 4096 {
		t.Fatalf("retained = %d, want default cap 4096", len(r.Events()))
	}
}

// TestEventsReturnsCopy checks mutating the returned slice cannot
// corrupt the recorder's state.
func TestEventsReturnsCopy(t *testing.T) {
	var r Recorder
	hook := r.Hook()
	hook(sched.Message{From: 1, To: 2, Tag: "orig"})
	ev := r.Events()
	ev[0].Tag = "mutated"
	if r.Events()[0].Tag != "orig" {
		t.Fatal("Events exposed internal storage")
	}
	pt := r.PerTag()
	pt["orig"] = 99
	if r.PerTag()["orig"] != 1 {
		t.Fatal("PerTag exposed internal map")
	}
}

func TestRecorderDefaultLimit(t *testing.T) {
	r := New(0)
	hook := r.Hook()
	for i := 0; i < 5000; i++ {
		hook(sched.Message{Tag: "y"})
	}
	if len(r.Events()) != 4096 {
		t.Fatalf("retained = %d", len(r.Events()))
	}
}

func TestSummaryAndDump(t *testing.T) {
	r := New(10)
	hook := r.Hook()
	hook(sched.Message{From: 0, To: 1, Tag: "eig", Data: []byte{1, 2}, SentRound: 0})
	hook(sched.Message{From: 1, To: 0, Tag: "rbc", Data: []byte{3}, SentRound: 1})
	var sum bytes.Buffer
	r.Summary(&sum)
	out := sum.String()
	for _, want := range []string{"2 messages", "3 payload bytes", "tag eig", "tag rbc", "from 0", "from 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	var dump bytes.Buffer
	r.Dump(&dump, 0)
	if lines := strings.Count(dump.String(), "\n"); lines != 2 {
		t.Errorf("dump lines = %d:\n%s", lines, dump.String())
	}
	var capped bytes.Buffer
	r.Dump(&capped, 1)
	if !strings.Contains(capped.String(), "more retained") {
		t.Errorf("capped dump missing continuation note:\n%s", capped.String())
	}
}

// End-to-end: trace a real protocol run and check the counts line up
// with the engine's own statistics.
func TestRecorderOnProtocolRun(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inputs := make([]vec.V, 4)
	for i := range inputs {
		inputs[i] = vec.Of(rng.NormFloat64(), rng.NormFloat64())
	}
	r := New(1 << 16)
	cfg := &consensus.SyncConfig{
		N: 4, F: 1, D: 2, Inputs: inputs,
		Trace: r.Hook(),
	}
	res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != res.Messages {
		t.Fatalf("trace total %d != engine messages %d", r.Total(), res.Messages)
	}
	if r.PerTag()["eig"] != res.Messages {
		t.Fatalf("all Step-1 messages should be eig-tagged: %v", r.PerTag())
	}
	// Every process sent something.
	for i := 0; i < 4; i++ {
		if r.PerSender()[i] == 0 {
			t.Fatalf("process %d sent nothing", i)
		}
	}
}

func TestRecorderOnAsyncRun(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inputs := make([]vec.V, 4)
	for i := range inputs {
		inputs[i] = vec.Of(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	r := New(1 << 18)
	cfg := &consensus.AsyncConfig{
		N: 4, F: 1, D: 3, Inputs: inputs, Rounds: 4,
		Mode:  consensus.ModeRelaxed,
		Trace: r.Hook(),
	}
	res, err := consensus.RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != res.Messages {
		t.Fatalf("trace total %d != delivered %d", r.Total(), res.Messages)
	}
	if r.PerTag()["rbc"] != r.Total() {
		t.Fatalf("async messages should all be rbc: %v", r.PerTag())
	}
}
