// Package trace records message-level transcripts of protocol runs for
// debugging and analysis: every delivered message's endpoints, tag and
// size, with per-tag and per-sender summaries and a bounded dump. Wire a
// Recorder into any engine-backed run via the configs' Trace hooks (see
// consensus.SyncConfig.Trace and friends) or sched's TraceFn directly.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"relaxedbvc/internal/sched"
)

// Event is one delivered message.
type Event struct {
	Seq      int
	From, To int
	Tag      string
	Bytes    int
	// Round is the synchronous round (or async step index) the message
	// was sent in.
	Round int
}

// Recorder accumulates events up to a cap (older events are kept; excess
// events only bump the counters). The zero value is ready to use with
// the default cap; New configures the cap explicitly.
//
// A Recorder is safe for concurrent use: the Hook may be installed in
// runs executing on different goroutines (e.g. trials of one batch
// sharing a recorder), and the accessors may be called while a run is in
// flight. Events from concurrent runs interleave in arrival order.
type Recorder struct {
	mu      sync.Mutex
	limit   int
	events  []Event
	total   int
	bytes   int
	perTag  map[string]int
	perFrom map[int]int
}

// New returns a Recorder retaining at most limit events (0 means 4096).
func New(limit int) *Recorder {
	r := &Recorder{}
	if limit > 0 {
		r.limit = limit
	}
	return r
}

// cap returns the event retention limit (callers hold mu).
func (r *Recorder) cap() int {
	if r.limit <= 0 {
		return 4096
	}
	return r.limit
}

// record registers one delivered message.
func (r *Recorder) record(m sched.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < r.cap() {
		r.events = append(r.events, Event{
			Seq: r.total, From: m.From, To: m.To, Tag: m.Tag,
			Bytes: len(m.Data), Round: m.SentRound,
		})
	}
	r.total++
	r.bytes += len(m.Data)
	if r.perTag == nil {
		r.perTag = map[string]int{}
		r.perFrom = map[int]int{}
	}
	r.perTag[m.Tag]++
	r.perFrom[m.From]++
}

// Hook returns the function to install as an engine TraceFn or a config
// Trace field.
func (r *Recorder) Hook() func(sched.Message) {
	return r.record
}

// Total returns the number of messages observed.
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TotalBytes returns the cumulative payload size observed.
func (r *Recorder) TotalBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Events returns a copy of the retained events (oldest first).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// PerTag returns a copy of the message counts by tag.
func (r *Recorder) PerTag() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.perTag))
	for k, v := range r.perTag {
		out[k] = v
	}
	return out
}

// PerSender returns a copy of the message counts by sending process.
func (r *Recorder) PerSender() map[int]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]int, len(r.perFrom))
	for k, v := range r.perFrom {
		out[k] = v
	}
	return out
}

// Summary writes an aggregate view: totals, per-tag and per-sender
// breakdowns.
func (r *Recorder) Summary(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(w, "trace: %d messages, %d payload bytes\n", r.total, r.bytes)
	tags := make([]string, 0, len(r.perTag))
	for t := range r.perTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, t := range tags {
		fmt.Fprintf(w, "  tag %-8s %d\n", t, r.perTag[t])
	}
	senders := make([]int, 0, len(r.perFrom))
	for s := range r.perFrom {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	for _, s := range senders {
		fmt.Fprintf(w, "  from %-6d %d\n", s, r.perFrom[s])
	}
}

// Dump writes up to max retained events, oldest first (all if max <= 0).
func (r *Recorder) Dump(w io.Writer, max int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev := r.events
	if max > 0 && len(ev) > max {
		ev = ev[:max]
	}
	for _, e := range ev {
		fmt.Fprintf(w, "#%-5d r%-4d %2d -> %2d  %-8s %4dB\n", e.Seq, e.Round, e.From, e.To, e.Tag, e.Bytes)
	}
	if max > 0 && len(r.events) > max {
		fmt.Fprintf(w, "... (%d more retained, %d total)\n", len(r.events)-max, r.total)
	}
}
