// Package trace records message-level transcripts of protocol runs for
// debugging and analysis: every delivered message's endpoints, tag and
// size, with per-tag and per-sender summaries and a bounded dump. Wire a
// Recorder into any engine-backed run via the configs' Trace hooks (see
// consensus.SyncConfig.Trace and friends) or sched's TraceFn directly.
package trace

import (
	"fmt"
	"io"
	"sort"

	"relaxedbvc/internal/sched"
)

// Event is one delivered message.
type Event struct {
	Seq      int
	From, To int
	Tag      string
	Bytes    int
	// Round is the synchronous round (or async step index) the message
	// was sent in.
	Round int
}

// Recorder accumulates events up to a cap (older events are kept; excess
// events only bump the counters). The zero value is unusable; use New.
type Recorder struct {
	limit   int
	events  []Event
	total   int
	bytes   int
	perTag  map[string]int
	perFrom map[int]int
}

// New returns a Recorder retaining at most limit events (0 means 4096).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 4096
	}
	return &Recorder{limit: limit, perTag: map[string]int{}, perFrom: map[int]int{}}
}

// Hook returns the function to install as an engine TraceFn or a config
// Trace field.
func (r *Recorder) Hook() func(sched.Message) {
	return func(m sched.Message) {
		if len(r.events) < r.limit {
			r.events = append(r.events, Event{
				Seq: r.total, From: m.From, To: m.To, Tag: m.Tag,
				Bytes: len(m.Data), Round: m.SentRound,
			})
		}
		r.total++
		r.bytes += len(m.Data)
		r.perTag[m.Tag]++
		r.perFrom[m.From]++
	}
}

// Total returns the number of messages observed.
func (r *Recorder) Total() int { return r.total }

// TotalBytes returns the cumulative payload size observed.
func (r *Recorder) TotalBytes() int { return r.bytes }

// Events returns the retained events (oldest first).
func (r *Recorder) Events() []Event { return r.events }

// PerTag returns message counts by tag.
func (r *Recorder) PerTag() map[string]int { return r.perTag }

// PerSender returns message counts by sending process.
func (r *Recorder) PerSender() map[int]int { return r.perFrom }

// Summary writes an aggregate view: totals, per-tag and per-sender
// breakdowns.
func (r *Recorder) Summary(w io.Writer) {
	fmt.Fprintf(w, "trace: %d messages, %d payload bytes\n", r.total, r.bytes)
	tags := make([]string, 0, len(r.perTag))
	for t := range r.perTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, t := range tags {
		fmt.Fprintf(w, "  tag %-8s %d\n", t, r.perTag[t])
	}
	senders := make([]int, 0, len(r.perFrom))
	for s := range r.perFrom {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	for _, s := range senders {
		fmt.Fprintf(w, "  from %-6d %d\n", s, r.perFrom[s])
	}
}

// Dump writes up to max retained events, oldest first (all if max <= 0).
func (r *Recorder) Dump(w io.Writer, max int) {
	ev := r.events
	if max > 0 && len(ev) > max {
		ev = ev[:max]
	}
	for _, e := range ev {
		fmt.Fprintf(w, "#%-5d r%-4d %2d -> %2d  %-8s %4dB\n", e.Seq, e.Round, e.From, e.To, e.Tag, e.Bytes)
	}
	if max > 0 && len(r.events) > max {
		fmt.Fprintf(w, "... (%d more retained, %d total)\n", len(r.events)-max, r.total)
	}
}
