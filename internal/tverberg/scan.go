package tverberg

import (
	"sync"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/vec"
)

// Scan observability: candidates handed to the intersection test and
// chunks dispatched to the kernel workers. With multiple workers the
// candidate count may undercount the sequential scan's (a chunk stops
// at its first hit), so these are throughput gauges, not parity data.
var (
	scanCandidates = metrics.DefaultCounter("tverberg_scan_candidates_total")
	scanChunks     = metrics.DefaultCounter("tverberg_scan_chunks_total")
)

// candidatesPerWorker sizes the enumeration chunks of the parallel
// partition scan: the restricted-growth enumerator fills a chunk of
// candidatesPerWorker*workers candidates, the workers evaluate it, and
// the scan stops at the first chunk containing a feasible partition.
// Large enough to amortize the goroutine hand-off over many LP solves,
// small enough that the tail chunk wastes little work after a hit.
const candidatesPerWorker = 32

// searchPartition scans the set partitions of {0..n-1} into parts
// blocks, in restricted-growth (sequential-scan) order, for the first
// candidate whose blocks have intersecting hulls under it. The scan is
// chunked over the kernel workers with lowest-index-wins semantics:
// within a chunk every candidate below the best hit so far is
// evaluated, so the returned partition is exactly the sequential scan's
// first hit for any worker count, bit for bit.
func searchPartition(y *vec.Set, f int, it relax.Intersector) (blocks [][]int, point vec.V, ok bool) {
	n := y.Len()
	parts := f + 1
	if parts > n {
		return nil, nil, false
	}
	if parts > 255 {
		// The uint8 block encoding would overflow; unreachable in
		// practice — the enumeration is super-exponential in n long
		// before this.
		panic("tverberg: more than 255 blocks")
	}
	sc := newPartitionScan(y, parts, par.KernelWorkers(), it)
	defer sc.release()
	found := false
	vec.Partitions(n, parts, func(bl [][]int) bool {
		sc.push(bl)
		if sc.count == sc.chunk {
			if sc.flush() {
				found = true
				return false
			}
		}
		return true
	})
	if !found && sc.count > 0 {
		found = sc.flush()
	}
	if !found {
		return nil, nil, false
	}
	return sc.bestBlocks, sc.bestPoint, true
}

// partitionScan is the state of one chunked first-hit scan.
type partitionScan struct {
	y              *vec.Set
	n, parts       int
	workers, chunk int
	it             relax.Intersector
	assign         []uint8 // chunk rows of n block assignments
	count          int     // candidates buffered in assign
	scratch        []*scanScratch
	mu             sync.Mutex
	bestBlocks     [][]int
	bestPoint      vec.V
}

// scanScratch is one worker's reusable decode state: block index
// buffers and Set headers rebuilt in place per candidate (the points
// themselves are shared with y, never copied), plus the LP scratch.
type scanScratch struct {
	blocks [][]int
	sets   []*vec.Set
	isc    *relax.IntersectScratch
}

func newPartitionScan(y *vec.Set, parts, workers int, it relax.Intersector) *partitionScan {
	n := y.Len()
	sc := &partitionScan{
		y: y, n: n, parts: parts,
		workers: workers, chunk: candidatesPerWorker * workers,
		it:      it,
		scratch: make([]*scanScratch, workers),
	}
	sc.assign = make([]uint8, sc.chunk*n)
	for w := range sc.scratch {
		ws := &scanScratch{
			blocks: make([][]int, parts),
			sets:   make([]*vec.Set, parts),
			isc:    relax.GetIntersectScratch(),
		}
		// A pooled scratch may carry the warm-start basis of whatever sweep
		// released it; this scan's candidates share no structure with that,
		// so start the warm chain fresh (correctness never depends on it —
		// SolveWarm repairs or discards any stale basis).
		ws.isc.ResetWarm()
		for b := 0; b < parts; b++ {
			ws.blocks[b] = make([]int, 0, n)
			ws.sets[b] = new(vec.Set)
		}
		sc.scratch[w] = ws
	}
	return sc
}

func (sc *partitionScan) release() {
	for _, ws := range sc.scratch {
		ws.isc.Release()
	}
}

// push encodes the candidate (whose slices the enumerator reuses) into
// the assignment buffer.
func (sc *partitionScan) push(bl [][]int) {
	row := sc.assign[sc.count*sc.n : (sc.count+1)*sc.n]
	for b, idxs := range bl {
		for _, e := range idxs {
			row[e] = uint8(b)
		}
	}
	sc.count++
}

// eval decodes candidate i into ws and runs the intersection test.
func (sc *partitionScan) eval(ws *scanScratch, i int) (vec.V, bool) {
	row := sc.assign[i*sc.n : (i+1)*sc.n]
	for b := range ws.blocks {
		ws.blocks[b] = ws.blocks[b][:0]
	}
	for e, b := range row {
		ws.blocks[b] = append(ws.blocks[b], e)
	}
	for b, idxs := range ws.blocks {
		sc.y.SubsetInto(idxs, ws.sets[b])
	}
	return sc.it.Intersect(ws.sets, ws.isc)
}

// record stores candidate i as the current best hit. Caller holds sc.mu
// (or is the sole sequential scanner).
func (sc *partitionScan) record(i int, pt vec.V) {
	row := sc.assign[i*sc.n : (i+1)*sc.n]
	blocks := make([][]int, sc.parts)
	for e := range row {
		b := row[e]
		blocks[b] = append(blocks[b], e)
	}
	sc.bestBlocks = blocks
	sc.bestPoint = pt
}

// flush evaluates the buffered candidates and reports whether any was
// feasible, recording the lowest-index hit.
func (sc *partitionScan) flush() bool {
	count := sc.count
	sc.count = 0
	scanChunks.Inc()
	scanCandidates.Add(int64(count))
	if sc.workers == 1 || count == 1 {
		ws := sc.scratch[0]
		for i := 0; i < count; i++ {
			if pt, ok := sc.eval(ws, i); ok {
				sc.record(i, pt)
				return true
			}
		}
		return false
	}
	var best atomic.Int64
	best.Store(int64(count))
	par.ForEachW(count, sc.workers, func(w, i int) {
		// Candidates above the best hit so far can no longer win;
		// everything at or below it is still evaluated, so the minimum
		// feasible index is always found.
		if int64(i) > best.Load() {
			return
		}
		pt, ok := sc.eval(sc.scratch[w], i)
		if !ok {
			return
		}
		sc.mu.Lock()
		if int64(i) < best.Load() {
			best.Store(int64(i))
			sc.record(i, pt)
		}
		sc.mu.Unlock()
	})
	return best.Load() < int64(count)
}
