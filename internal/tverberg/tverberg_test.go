package tverberg

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

func randSet(rng *rand.Rand, n, d int) *vec.Set {
	pts := make([]vec.V, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.NormFloat64() * 3
		}
	}
	return vec.NewSet(pts...)
}

// Radon's theorem (f = 1): any d+2 points admit a partition into two
// parts with intersecting hulls.
func TestRadonAlwaysExists(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(4)
		y := randSet(rng, d+2, d)
		blocks, pt, ok := Partition(y, 1)
		if !ok {
			t.Fatalf("no Radon partition for %d points in R^%d", d+2, d)
		}
		if len(blocks) != 2 {
			t.Fatalf("blocks = %v", blocks)
		}
		for _, b := range blocks {
			if dd, _ := geom.Dist2(pt, y.Subset(b)); dd > 1e-6 {
				t.Fatalf("witness misses block %v by %v", b, dd)
			}
		}
	}
}

// Tverberg upper side: n = (d+1)f + 1 points always admit a partition
// into f+1 parts.
func TestTverbergAboveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cases := []struct{ d, f int }{{1, 2}, {2, 2}, {2, 3}, {3, 2}}
	for _, c := range cases {
		for trial := 0; trial < 5; trial++ {
			n := (c.d+1)*c.f + 1
			y := randSet(rng, n, c.d)
			blocks, pt, ok := Partition(y, c.f)
			if !ok {
				t.Fatalf("d=%d f=%d: no partition for n=%d", c.d, c.f, n)
			}
			if len(blocks) != c.f+1 {
				t.Fatalf("wrong block count %d", len(blocks))
			}
			covered := 0
			for _, b := range blocks {
				covered += len(b)
				if len(b) == 0 {
					t.Fatal("empty block")
				}
				if dd, _ := geom.Dist2(pt, y.Subset(b)); dd > 1e-6 {
					t.Fatalf("witness outside block hull by %v", dd)
				}
			}
			if covered != n {
				t.Fatalf("blocks cover %d of %d", covered, n)
			}
		}
	}
}

// Tightness: (d+1)f generic points admit NO partition. Verified
// exhaustively.
func TestTverbergTightBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cases := []struct{ d, f int }{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	for _, c := range cases {
		for trial := 0; trial < 3; trial++ {
			n := (c.d + 1) * c.f
			y := randSet(rng, n, c.d)
			if HasPartition(y, c.f) {
				t.Fatalf("d=%d f=%d: generic %d points admit a partition", c.d, c.f, n)
			}
		}
	}
}

// Section 8: tightness survives relaxation. With H_k in place of H,
// generic (d+1)f points still have no partition (k >= 2); and for
// H_(delta,p) with small constant delta the same configuration scaled up
// has none either.
func TestRelaxedTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	d, f := 3, 1
	n := (d + 1) * f
	for trial := 0; trial < 3; trial++ {
		y := randSet(rng, n, d)
		for k := 2; k <= d; k++ {
			if _, _, ok := PartitionK(y, f, k); ok {
				t.Fatalf("k=%d relaxed partition exists on tight configuration", k)
			}
		}
	}
	// (delta,p): scale the configuration so that delta = 0.05 is tiny
	// relative to the geometry; no partition should appear.
	y := randSet(rng, n, d)
	scaled := make([]vec.V, n)
	for i := 0; i < n; i++ {
		scaled[i] = y.At(i).Scale(100)
	}
	ys := vec.NewSet(scaled...)
	for _, p := range []float64{1, math.Inf(1)} {
		if _, _, ok := PartitionRelaxed(ys, f, 0.05, p); ok {
			t.Fatalf("(0.05, %v)-relaxed partition exists on scaled tight configuration", p)
		}
	}
}

// Relaxed upper side: since H subset of H_k and H subset of H_(delta,p),
// a partition of (d+1)f+1 points exists under the relaxed hulls too.
func TestRelaxedUpperSide(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	d, f := 2, 2
	n := (d+1)*f + 1
	y := randSet(rng, n, d)
	if _, _, ok := PartitionK(y, f, 2); !ok {
		t.Fatal("no H_2 partition above the bound")
	}
	if _, _, ok := PartitionRelaxed(y, f, 0.01, math.Inf(1)); !ok {
		t.Fatal("no (0.01,inf) partition above the bound")
	}
}

// With a large delta the relaxed hulls are huge and a partition exists
// even below the Tverberg bound: the relaxation only helps.
func TestLargeDeltaBeatsTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	d, f := 2, 1
	y := randSet(rng, (d+1)*f, d) // tight: no exact partition
	if HasPartition(y, f) {
		t.Skip("unlucky degenerate draw")
	}
	if _, _, ok := PartitionRelaxed(y, f, 1e6, math.Inf(1)); !ok {
		t.Fatal("(1e6,inf) partition should exist trivially")
	}
}

func TestPointAccessor(t *testing.T) {
	y := vec.NewSet(vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 2), vec.Of(0.5, 0.5))
	pt, ok := Point(y, 1)
	if !ok {
		t.Fatal("no Radon point for 4 points in the plane")
	}
	if pt.Dim() != 2 {
		t.Errorf("point = %v", pt)
	}
}

func TestPartitionTooFewPoints(t *testing.T) {
	y := vec.NewSet(vec.Of(0, 0))
	if _, _, ok := Partition(y, 1); ok {
		t.Error("partition of 1 point into 2 parts")
	}
}

func TestCountPartitions(t *testing.T) {
	cases := map[[2]int]float64{
		{4, 2}: 7, {5, 3}: 25, {6, 3}: 90, {8, 3}: 966, {5, 1}: 1, {5, 5}: 1,
	}
	for nk, want := range cases {
		if got := CountPartitions(nk[0], nk[1]); math.Abs(got-want) > 1e-9 {
			t.Errorf("S(%d,%d) = %v, want %v", nk[0], nk[1], got, want)
		}
	}
}

// Duplicate points collapse the tight case: a multiset with a repeated
// point always has the trivial partition using the duplicates.
func TestDuplicatePointsGivePartition(t *testing.T) {
	p := vec.Of(1, 1)
	y := vec.NewSet(p, p.Clone(), vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 3), vec.Of(4, 4))
	_, pt, ok := Partition(y, 1)
	if !ok {
		t.Fatal("no partition despite duplicate point")
	}
	_ = pt
}
