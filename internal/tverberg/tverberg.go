// Package tverberg implements Tverberg partition search and the
// tightness checks of Section 8 of the paper.
//
// Tverberg's theorem (Theorem 7): every multiset of at least (d+1)f + 1
// points in R^d admits a partition into f+1 non-empty parts whose convex
// hulls share a common point. The bound is tight: (d+1)f points in
// general position admit no such partition, and Section 8 observes that
// tightness survives replacing H by the relaxed hulls H_k and
// H_(delta,p).
//
// The search is exhaustive over set partitions (restricted-growth
// enumeration) with an exact LP intersection test per candidate, which is
// exact and fast for the small n used in consensus experiments.
package tverberg

import (
	"math"

	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/vec"
)

// Partition searches for a Tverberg partition of y into f+1 non-empty
// blocks with intersecting convex hulls. It returns the block index sets,
// a common point, and ok=false if no partition exists. The scan runs on
// the kernel workers (par.SetKernelWorkers) with lowest-index-wins
// semantics, so the result is the sequential scan's first hit for any
// worker count.
func Partition(y *vec.Set, f int) (blocks [][]int, point vec.V, ok bool) {
	return searchPartition(y, f, relax.Intersector{Kind: relax.HullExact})
}

// PartitionK is Partition with the k-relaxed hulls H_k in place of H
// (the Section 8 variant).
func PartitionK(y *vec.Set, f, k int) (blocks [][]int, point vec.V, ok bool) {
	return searchPartition(y, f, relax.Intersector{Kind: relax.HullKProj, K: k})
}

// PartitionRelaxed is Partition with the (delta,p)-relaxed hulls for
// p in {1, inf}.
func PartitionRelaxed(y *vec.Set, f int, delta, p float64) (blocks [][]int, point vec.V, ok bool) {
	return searchPartition(y, f, relax.Intersector{Kind: relax.HullDeltaP, Delta: delta, P: p})
}

// HasPartition reports whether y admits a Tverberg partition into f+1
// parts (exhaustive).
func HasPartition(y *vec.Set, f int) bool {
	_, _, ok := Partition(y, f)
	return ok
}

// Point returns a Tverberg point of y for parameter f: a point common to
// the hulls of some partition into f+1 parts. ok=false if none exists
// (possible only when |y| <= (d+1)f).
func Point(y *vec.Set, f int) (vec.V, bool) {
	_, pt, ok := Partition(y, f)
	return pt, ok
}

// CountPartitions returns the number of partitions of an n-element set
// into exactly k non-empty blocks (Stirling number of the second kind),
// the search-space size of the exhaustive algorithms.
func CountPartitions(n, k int) float64 {
	// S(n,k) = (1/k!) sum_{j=0}^{k} (-1)^j C(k,j) (k-j)^n.
	sum := 0.0
	for j := 0; j <= k; j++ {
		term := float64(vec.CountCombinations(k, j)) * math.Pow(float64(k-j), float64(n))
		if j%2 == 1 {
			term = -term
		}
		sum += term
	}
	fact := 1.0
	for i := 2; i <= k; i++ {
		fact *= float64(i)
	}
	return sum / fact
}
