// Package simplexgeo implements the simplex geometry of Section 9.1 of
// the paper: the dual basis b_i of Lemma 11, the inscribed-sphere radius
// r = 1 / sum ||b_i|| of Lemma 12 (Akira Toda's formulas), the facet
// inradii r_k of Lemma 14, and the incenter. These give the closed-form
// value of delta*(S) for the f = 1, n = d+1 case (Lemma 13) and the edge
// bounds of Lemma 15 and Theorem 9.
package simplexgeo

import (
	"errors"
	"math"

	"relaxedbvc/internal/linalg"
	"relaxedbvc/internal/vec"
)

// Simplex is a non-degenerate d-simplex given by d+1 affinely independent
// vertices a_1, ..., a_{d+1} in R^d.
type Simplex struct {
	pts  []vec.V // d+1 vertices
	dual []vec.V // b_1..b_{d+1}: columns of B = (A^{-1})^T plus b_{d+1} = -sum
	d    int
}

// ErrDegenerate is returned when the vertices are not affinely
// independent (so they do not form a d-simplex).
var ErrDegenerate = errors.New("simplexgeo: vertices are not affinely independent")

// New builds a Simplex from d+1 vertices in R^d. It returns ErrDegenerate
// if the vertices do not span.
func New(pts []vec.V) (*Simplex, error) {
	if len(pts) == 0 {
		return nil, errors.New("simplexgeo: no vertices")
	}
	d := pts[0].Dim()
	if len(pts) != d+1 {
		return nil, errors.New("simplexgeo: need exactly d+1 vertices in R^d")
	}
	// A = [a_1 - a_{d+1}, ..., a_d - a_{d+1}] as columns.
	cols := make([]vec.V, d)
	for i := 0; i < d; i++ {
		cols[i] = pts[i].Sub(pts[d])
	}
	a := linalg.FromColumns(cols...)
	ainv, err := linalg.Inverse(a)
	if err != nil {
		return nil, ErrDegenerate
	}
	// B = (A^{-1})^T; columns b_i are the rows of A^{-1}.
	dual := make([]vec.V, d+1)
	for i := 0; i < d; i++ {
		dual[i] = ainv.Row(i)
	}
	bd1 := vec.New(d)
	for i := 0; i < d; i++ {
		bd1.AXPY(-1, dual[i])
	}
	dual[d] = bd1
	cp := make([]vec.V, len(pts))
	for i, p := range pts {
		cp[i] = p.Clone()
	}
	return &Simplex{pts: cp, dual: dual, d: d}, nil
}

// Dim returns the dimension d.
func (s *Simplex) Dim() int { return s.d }

// Vertices returns the d+1 vertices (not copies).
func (s *Simplex) Vertices() []vec.V { return s.pts }

// DualBasis returns b_1, ..., b_{d+1} per Lemma 11: <a_i - a_j, b_k> =
// delta_ik - delta_jk, with b_{d+1} = -sum_{i<=d} b_i.
func (s *Simplex) DualBasis() []vec.V { return s.dual }

// Inradius returns the radius of the inscribed sphere:
// r = 1 / sum_{i=1}^{d+1} ||b_i||   (Lemma 12).
func (s *Simplex) Inradius() float64 {
	sum := 0.0
	for _, b := range s.dual {
		sum += b.Norm2()
	}
	return 1 / sum
}

// Incenter returns the center of the inscribed sphere. In barycentric
// coordinates the incenter has weight t_k proportional to ||b_k||, since
// the distance from a point with barycentrics t to facet pi_k is
// t_k / ||b_k||.
func (s *Simplex) Incenter() vec.V {
	sum := 0.0
	norms := make([]float64, len(s.dual))
	for i, b := range s.dual {
		norms[i] = b.Norm2()
		sum += norms[i]
	}
	c := vec.New(s.d)
	for i, p := range s.pts {
		c.AXPY(norms[i]/sum, p)
	}
	return c
}

// Barycentric returns the barycentric coordinates of x with respect to
// the simplex vertices: x = sum t_i a_i with sum t_i = 1. By Lemma 11,
// t_i = <x - a_{d+1}, b_i> for i <= d, and t_{d+1} = 1 - sum.
func (s *Simplex) Barycentric(x vec.V) []float64 {
	t := make([]float64, s.d+1)
	diff := x.Sub(s.pts[s.d])
	rest := 1.0
	for i := 0; i < s.d; i++ {
		t[i] = diff.Dot(s.dual[i])
		rest -= t[i]
	}
	t[s.d] = rest
	return t
}

// Contains reports whether x lies in the (closed) simplex, within tol on
// the barycentric coordinates.
func (s *Simplex) Contains(x vec.V, tol float64) bool {
	for _, t := range s.Barycentric(x) {
		if t < -tol {
			return false
		}
	}
	return true
}

// FacetDistance returns the Euclidean distance from x to the hyperplane
// supporting facet pi_k (the facet opposite vertex k, 0-based). For x
// inside the simplex this is the positive distance t_k / ||b_k||.
func (s *Simplex) FacetDistance(x vec.V, k int) float64 {
	t := s.Barycentric(x)
	return math.Abs(t[k]) / s.dual[k].Norm2()
}

// FacetInradius returns r_k, the radius of the (d-1)-dimensional sphere
// inscribed in facet pi_k within its own hyperplane (Lemma 14):
// r_k = 1 / sum_{j != k} ||b_{jk}||, with
// b_{jk} = b_j - (<b_j, b_k>/||b_k||^2) b_k.
func (s *Simplex) FacetInradius(k int) float64 {
	if s.d < 2 {
		// A 1-simplex facet is a point; its inradius is 0, and the lemma
		// requires d >= 2.
		return 0
	}
	bk := s.dual[k]
	bk2 := bk.Dot(bk)
	sum := 0.0
	for j, bj := range s.dual {
		if j == k {
			continue
		}
		bjk := bj.Clone().AXPY(-bj.Dot(bk)/bk2, bk)
		sum += bjk.Norm2()
	}
	return 1 / sum
}

// MinFacetInradius returns min_k r_k over all d+1 facets.
func (s *Simplex) MinFacetInradius() float64 {
	m := math.Inf(1)
	for k := range s.pts {
		if r := s.FacetInradius(k); r < m {
			m = r
		}
	}
	return m
}

// MaxEdge returns the length of the longest edge of the simplex in L2.
func (s *Simplex) MaxEdge() float64 {
	return vec.NewSet(s.pts...).MaxEdge(2)
}

// MinEdge returns the length of the shortest edge of the simplex in L2.
func (s *Simplex) MinEdge() float64 {
	return vec.NewSet(s.pts...).MinEdge(2)
}

// HeronInradius returns the inradius of a triangle with side lengths
// a, b, c via Heron's formula, as used in the d = 2 base case of the
// Theorem 9 induction: r = sqrt((p-a)(p-b)(p-c)/p), p the semiperimeter.
func HeronInradius(a, b, c float64) float64 {
	p := (a + b + c) / 2
	v := (p - a) * (p - b) * (p - c) / p
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Volume returns the d-dimensional volume of the simplex:
// |det A| / d!.
func (s *Simplex) Volume() float64 {
	cols := make([]vec.V, s.d)
	for i := 0; i < s.d; i++ {
		cols[i] = s.pts[i].Sub(s.pts[s.d])
	}
	det := math.Abs(linalg.Det(linalg.FromColumns(cols...)))
	fact := 1.0
	for i := 2; i <= s.d; i++ {
		fact *= float64(i)
	}
	return det / fact
}

// EscribedRadius returns the radius of the escribed (ex-)sphere opposite
// vertex k: the sphere tangent to facet pi_k from outside and to the
// extensions of the other facets. From the dual-basis representation
// (Akira Toda [2]): rho_k = 1 / (sum_{j != k} ||b_j|| - ||b_k||).
// The denominator is always positive because b_k = -sum_{j != k} b_j
// forces ||b_k|| < sum_{j != k} ||b_j|| for a non-degenerate simplex.
func (s *Simplex) EscribedRadius(k int) float64 {
	sum := 0.0
	for j, b := range s.dual {
		if j == k {
			continue
		}
		sum += b.Norm2()
	}
	return 1 / (sum - s.dual[k].Norm2())
}

// EscribedCenter returns the center of the escribed sphere opposite
// vertex k. In barycentric coordinates the center has weight
// proportional to -||b_k|| at vertex k and +||b_j|| elsewhere.
func (s *Simplex) EscribedCenter(k int) vec.V {
	denom := 0.0
	w := make([]float64, len(s.dual))
	for j, b := range s.dual {
		w[j] = b.Norm2()
		if j == k {
			w[j] = -w[j]
		}
		denom += w[j]
	}
	c := vec.New(s.d)
	for j, p := range s.pts {
		c.AXPY(w[j]/denom, p)
	}
	return c
}
