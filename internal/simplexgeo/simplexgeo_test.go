package simplexgeo

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

func randSimplex(rng *rand.Rand, d int) *Simplex {
	for {
		pts := make([]vec.V, d+1)
		for i := range pts {
			pts[i] = vec.New(d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64() * 3
			}
		}
		s, err := New(pts)
		if err == nil {
			return s
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) should error")
	}
	// Wrong count.
	if _, err := New([]vec.V{vec.Of(0, 0), vec.Of(1, 0)}); err == nil {
		t.Error("New with d vertices should error")
	}
	// Degenerate: collinear points in R^2.
	_, err := New([]vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2)})
	if err != ErrDegenerate {
		t.Errorf("degenerate error = %v", err)
	}
}

func TestDualBasisLemma11(t *testing.T) {
	// <a_i - a_j, b_k> = delta_ik - delta_jk.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(5)
		s := randSimplex(rng, d)
		pts, dual := s.Vertices(), s.DualBasis()
		for i := 0; i <= d; i++ {
			for j := 0; j <= d; j++ {
				for k := 0; k <= d; k++ {
					want := 0.0
					if i == k {
						want++
					}
					if j == k {
						want--
					}
					got := pts[i].Sub(pts[j]).Dot(dual[k])
					if math.Abs(got-want) > 1e-8 {
						t.Fatalf("d=%d <a%d-a%d, b%d> = %v, want %v", d, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestInradiusEquilateralTriangle(t *testing.T) {
	// Equilateral triangle with side 2: inradius = 1/sqrt(3).
	pts := []vec.V{vec.Of(-1, 0), vec.Of(1, 0), vec.Of(0, math.Sqrt(3))}
	s, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(3)
	if got := s.Inradius(); math.Abs(got-want) > 1e-10 {
		t.Errorf("Inradius = %v, want %v", got, want)
	}
	// Cross-check against Heron.
	if h := HeronInradius(2, 2, 2); math.Abs(h-want) > 1e-10 {
		t.Errorf("Heron = %v, want %v", h, want)
	}
	// Incenter of an equilateral triangle is its centroid.
	c := s.Incenter()
	if !c.ApproxEqual(vec.Of(0, math.Sqrt(3)/3), 1e-9) {
		t.Errorf("Incenter = %v", c)
	}
}

func TestInradiusRegularTetrahedron(t *testing.T) {
	// Regular tetrahedron with edge length sqrt(8) embedded at the
	// even-parity cube corners; inradius = edge / (2*sqrt(6)).
	pts := []vec.V{
		vec.Of(1, 1, 1), vec.Of(1, -1, -1), vec.Of(-1, 1, -1), vec.Of(-1, -1, 1),
	}
	s, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	edge := math.Sqrt(8)
	want := edge / (2 * math.Sqrt(6))
	if got := s.Inradius(); math.Abs(got-want) > 1e-10 {
		t.Errorf("Inradius = %v, want %v", got, want)
	}
	if c := s.Incenter(); !c.ApproxEqual(vec.Of(0, 0, 0), 1e-9) {
		t.Errorf("Incenter = %v, want origin", c)
	}
}

func TestInradiusAgainstHeronRandomTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		s := randSimplex(rng, 2)
		p := s.Vertices()
		a := p[1].Dist2(p[2])
		b := p[0].Dist2(p[2])
		c := p[0].Dist2(p[1])
		if got, want := s.Inradius(), HeronInradius(a, b, c); math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("Inradius %v vs Heron %v", got, want)
		}
	}
}

func TestIncenterEquidistantFromFacets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		s := randSimplex(rng, d)
		c := s.Incenter()
		r := s.Inradius()
		if !s.Contains(c, 1e-9) {
			t.Fatal("incenter outside simplex")
		}
		for k := 0; k <= d; k++ {
			if got := s.FacetDistance(c, k); math.Abs(got-r) > 1e-8*(1+r) {
				t.Fatalf("d=%d facet %d distance %v != r %v", d, k, got, r)
			}
		}
	}
}

func TestInradiusViaGeomDistances(t *testing.T) {
	// The inradius equals min over facets of dist2(incenter, conv(facet))
	// when the incenter projects into the facet's interior; at minimum the
	// hyperplane distance lower-bounds the hull distance, so check
	// consistency: dist2(incenter, facet hull) >= r and close for some k.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		s := randSimplex(rng, d)
		c := s.Incenter()
		r := s.Inradius()
		closest := math.Inf(1)
		for k := 0; k <= d; k++ {
			facet := make([]vec.V, 0, d)
			for i, p := range s.Vertices() {
				if i != k {
					facet = append(facet, p)
				}
			}
			dist, _ := geom.Dist2(c, vec.NewSet(facet...))
			if dist < r-1e-8 {
				t.Fatalf("hull distance %v below inradius %v", dist, r)
			}
			if dist < closest {
				closest = dist
			}
		}
		if math.Abs(closest-r) > 1e-6*(1+r) {
			t.Fatalf("min facet hull distance %v != inradius %v", closest, r)
		}
	}
}

func TestLemma14FacetRadiiDominateInradius(t *testing.T) {
	// r < min_k r_k (strict).
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(5)
		s := randSimplex(rng, d)
		r := s.Inradius()
		if minRk := s.MinFacetInradius(); r >= minRk {
			t.Fatalf("d=%d: r=%v >= min r_k=%v", d, r, minRk)
		}
	}
}

func TestLemma15EdgeBound(t *testing.T) {
	// r < max_e ||e||_2 / d (strict).
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(6)
		s := randSimplex(rng, d)
		if r, bound := s.Inradius(), s.MaxEdge()/float64(d); r >= bound {
			t.Fatalf("d=%d: r=%v >= %v", d, r, bound)
		}
	}
}

func TestTheorem9HalfMinEdgeBound(t *testing.T) {
	// r < min_e ||e||_2 / 2 (the induction of Theorem 9).
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(5)
		s := randSimplex(rng, d)
		if r, bound := s.Inradius(), s.MinEdge()/2; r >= bound {
			t.Fatalf("d=%d: r=%v >= minEdge/2=%v", d, r, bound)
		}
	}
}

func TestBarycentricRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		s := randSimplex(rng, d)
		// Random convex combination.
		w := make([]float64, d+1)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64()
			sum += w[i]
		}
		x := vec.New(d)
		for i, p := range s.Vertices() {
			w[i] /= sum
			x.AXPY(w[i], p)
		}
		t2 := s.Barycentric(x)
		for i := range w {
			if math.Abs(w[i]-t2[i]) > 1e-8 {
				t.Fatalf("barycentric mismatch: %v vs %v", w, t2)
			}
		}
		if !s.Contains(x, 1e-9) {
			t.Fatal("convex point not contained")
		}
	}
}

func TestContainsRejectsOutside(t *testing.T) {
	s, _ := New([]vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1)})
	if s.Contains(vec.Of(0.6, 0.6), 1e-9) {
		t.Error("outside point contained")
	}
	if !s.Contains(vec.Of(0.3, 0.3), 1e-9) {
		t.Error("inside point rejected")
	}
}

func TestVolume(t *testing.T) {
	// Unit right triangle: area 1/2.
	s, _ := New([]vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1)})
	if got := s.Volume(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Volume = %v", got)
	}
	// Unit right tetrahedron: volume 1/6.
	s3, _ := New([]vec.V{vec.Of(0, 0, 0), vec.Of(1, 0, 0), vec.Of(0, 1, 0), vec.Of(0, 0, 1)})
	if got := s3.Volume(); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("Volume = %v", got)
	}
}

func TestVolumeInradiusSurfaceIdentity(t *testing.T) {
	// V = (1/d) * r * sum of facet areas. We verify the 2-D instance:
	// area = r * s (semiperimeter).
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		s := randSimplex(rng, 2)
		p := s.Vertices()
		per := p[0].Dist2(p[1]) + p[1].Dist2(p[2]) + p[0].Dist2(p[2])
		if got, want := s.Volume(), s.Inradius()*per/2; math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("V=%v != r*s=%v", got, want)
		}
	}
}

func TestHeronDegenerate(t *testing.T) {
	if HeronInradius(1, 1, 2) != 0 {
		t.Error("degenerate triangle inradius != 0")
	}
}

func TestFacetInradiusLowDim(t *testing.T) {
	s, _ := New([]vec.V{vec.Of(0), vec.Of(1)})
	if s.FacetInradius(0) != 0 {
		t.Error("1-simplex facet inradius should be 0")
	}
}

func TestEscribedSphereEquilateral(t *testing.T) {
	// Equilateral triangle, side 2: exradius = area/(s-a) with
	// s = semiperimeter 3, a = 2: area = sqrt(3), rho = sqrt(3).
	pts := []vec.V{vec.Of(-1, 0), vec.Of(1, 0), vec.Of(0, math.Sqrt(3))}
	s, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if got := s.EscribedRadius(k); math.Abs(got-math.Sqrt(3)) > 1e-10 {
			t.Errorf("EscribedRadius(%d) = %v, want sqrt(3)", k, got)
		}
	}
}

func TestEscribedCenterEquidistantFromFacetPlanes(t *testing.T) {
	// The escribed center is at distance rho_k from every facet
	// hyperplane, outside facet k and inside-side for the others.
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		s := randSimplex(rng, d)
		for k := 0; k <= d; k++ {
			rho := s.EscribedRadius(k)
			if rho <= 0 {
				t.Fatalf("d=%d: non-positive exradius %v", d, rho)
			}
			c := s.EscribedCenter(k)
			bary := s.Barycentric(c)
			for j := 0; j <= d; j++ {
				dist := s.FacetDistance(c, j)
				if math.Abs(dist-rho) > 1e-7*(1+rho) {
					t.Fatalf("d=%d k=%d facet %d: dist %v != rho %v", d, k, j, dist, rho)
				}
			}
			// Outside the simplex across facet k only.
			for j := 0; j <= d; j++ {
				if j == k {
					if bary[j] >= 0 {
						t.Fatalf("escribed center not beyond facet %d", k)
					}
				} else if bary[j] <= 0 {
					t.Fatalf("escribed center crossed facet %d unexpectedly", j)
				}
			}
		}
	}
}

func TestExradiusIdentity(t *testing.T) {
	// 1/r = 1/rho_k + 2||b_k|| follows from the two formulas; check the
	// derived relation r < rho_k for all k.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		s := randSimplex(rng, d)
		r := s.Inradius()
		for k := 0; k <= d; k++ {
			rho := s.EscribedRadius(k)
			bk := s.DualBasis()[k].Norm2()
			if math.Abs(1/r-(1/rho+2*bk)) > 1e-7*(1/r) {
				t.Fatalf("identity violated: 1/r=%v vs 1/rho+2|b_k|=%v", 1/r, 1/rho+2*bk)
			}
			if r >= rho {
				t.Fatalf("inradius %v >= exradius %v", r, rho)
			}
		}
	}
}
