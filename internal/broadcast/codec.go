// Package broadcast implements the three broadcast primitives the
// paper's algorithms rely on:
//
//   - EIG (exponential information gathering) Byzantine Generals, the
//     oral-messages OM(f) algorithm of Lamport, Shostak and Pease [12],
//     used by Algorithm ALGO's Step 1 in synchronous systems (n >= 3f+1);
//   - Dolev-Strong-style signed broadcast with simulated HMAC signatures,
//     an alternative synchronous broadcast with polynomial messages;
//   - Bracha reliable broadcast [4] for asynchronous systems, used by the
//     Relaxed Verified Averaging algorithm.
//
// All three run on the deterministic engines of internal/sched.
package broadcast

import (
	"encoding/binary"
	"fmt"
	"math"

	"relaxedbvc/internal/vec"
)

// vecWireLen is the encoded size of a d-dimensional vector: a 4-byte
// dimension header plus 8 bytes per IEEE754 coordinate.
func vecWireLen(d int) int { return 4 + 8*d }

// EncodeVec serializes a vector to bytes (dimension + IEEE754 bits).
func EncodeVec(v vec.V) []byte {
	out := make([]byte, vecWireLen(len(v)))
	binary.BigEndian.PutUint32(out, uint32(len(v)))
	for i, x := range v {
		binary.BigEndian.PutUint64(out[4+8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeVec parses a vector encoded by EncodeVec.
func DecodeVec(b []byte) (vec.V, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("broadcast: short vector encoding")
	}
	d := int(binary.BigEndian.Uint32(b))
	if len(b) != vecWireLen(d) {
		return nil, fmt.Errorf("broadcast: vector encoding length %d != %d", len(b), vecWireLen(d))
	}
	v := make(vec.V, d)
	for i := range v {
		v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[4+8*i:]))
	}
	return v, nil
}

// EpochID returns the reliable-broadcast instance id of an ACS epoch.
// Together with the Bracha sender id it names one (epoch, slot) RBC
// instance: slot s of epoch e is the broadcast (sender=s, id=EpochID(e)).
func EpochID(epoch int) string {
	return fmt.Sprintf("e%d", epoch)
}

// ParseEpochID inverts EpochID; ok=false for ids of other subsystems.
func ParseEpochID(id string) (epoch int, ok bool) {
	if len(id) < 2 || id[0] != 'e' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// AppendField appends a length-prefixed byte field. It is the wire
// primitive shared by the broadcast message encodings and the
// transport frame codec (internal/transport), so every length-prefixed
// frame on a real link uses the same layout the simulated protocols
// already exchange in-process.
func AppendField(dst, field []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(field)))
	dst = append(dst, l[:]...)
	return append(dst, field...)
}

// ReadField reads a length-prefixed byte field written by AppendField,
// returning the field and the remaining buffer.
func ReadField(src []byte) (field, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("broadcast: short field")
	}
	l := int(binary.BigEndian.Uint32(src))
	src = src[4:]
	if len(src) < l {
		return nil, nil, fmt.Errorf("broadcast: truncated field")
	}
	return src[:l], src[l:], nil
}

// appendBytes and readBytes are the historical internal names; the
// broadcast encoders below still use them.
func appendBytes(dst, field []byte) []byte { return AppendField(dst, field) }

func readBytes(src []byte) (field, rest []byte, err error) { return ReadField(src) }

// encodePath serializes a process-id path (ids < 2^16).
func encodePath(path []int) []byte {
	out := make([]byte, 2+2*len(path))
	binary.BigEndian.PutUint16(out, uint16(len(path)))
	for i, p := range path {
		binary.BigEndian.PutUint16(out[2+2*i:], uint16(p))
	}
	return out
}

func decodePath(b []byte) ([]int, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("broadcast: short path")
	}
	l := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < 2*l {
		return nil, nil, fmt.Errorf("broadcast: truncated path")
	}
	path := make([]int, l)
	for i := range path {
		path[i] = int(binary.BigEndian.Uint16(b[2*i:]))
	}
	return path, b[2*l:], nil
}

func pathKey(path []int) string { return string(encodePath(path)) }

func pathContains(path []int, id int) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}
