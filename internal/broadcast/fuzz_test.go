package broadcast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relaxedbvc/internal/sched"
)

// Decoders must reject (never panic on) arbitrary byte garbage — the
// network layer hands Byzantine-crafted payloads straight to them.

func TestDecodeVecNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	f := func() bool {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		defer func() {
			if recover() != nil {
				t.Fatal("DecodeVec panicked")
			}
		}()
		DecodeVec(b) // result irrelevant; must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeChainNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	for i := 0; i < 300; i++ {
		b := make([]byte, rng.Intn(96))
		rng.Read(b)
		func() {
			defer func() {
				if recover() != nil {
					t.Fatal("decodeChain panicked")
				}
			}()
			decodeChain(b)
		}()
	}
}

func TestDecodeRBCNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	for i := 0; i < 300; i++ {
		b := make([]byte, rng.Intn(96))
		rng.Read(b)
		func() {
			defer func() {
				if recover() != nil {
					t.Fatal("decodeRBC panicked")
				}
			}()
			decodeRBC(b)
		}()
	}
}

func TestBrachaHandleGarbage(t *testing.T) {
	// Feeding garbage network messages to the RBC state machine must be a
	// no-op (no sends, no deliveries, no panic).
	rng := rand.New(rand.NewSource(214))
	bs := NewBrachaState(4, 1, 0)
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		outs := bs.Handle(sched.Message{From: 1 + rng.Intn(3), To: 0, Tag: BrachaTag, Data: b})
		// Garbage may occasionally parse as a valid-looking echo/ready
		// for a random instance; that is harmless, but it must never
		// produce a delivery (thresholds unreachable from one message).
		_ = outs
	}
	if len(bs.TakeDeliveries()) != 0 {
		t.Fatal("garbage produced a delivery")
	}
}

func TestEIGProcessIgnoresGarbageMessages(t *testing.T) {
	// A full EIG run where the Byzantine process sends undecodable bytes:
	// agreement and validity must still hold (covered elsewhere), and no
	// panic may occur even when garbage arrives with the eig tag but a
	// mangled body. Here we inject raw garbage directly.
	rng := rand.New(rand.NewSource(215))
	ep := NewEIGNode(4, 1, 0, []byte("a"), nil, []byte("def"))
	ep.Start()
	var msgs []sched.Message
	for i := 0; i < 100; i++ {
		b := make([]byte, rng.Intn(48))
		rng.Read(b)
		msgs = append(msgs, sched.Message{From: 1 + rng.Intn(3), To: 0, Tag: "eig", Data: b})
	}
	defer func() {
		if recover() != nil {
			t.Fatal("eigProcess panicked on garbage")
		}
	}()
	ep.Step(0, msgs)
}

// Property: the signature scheme is deterministic and binding across
// random messages.
func TestPropertySignatureBinding(t *testing.T) {
	rng := rand.New(rand.NewSource(216))
	scheme := NewSigScheme(4, 99)
	f := func() bool {
		m1 := make([]byte, 1+rng.Intn(32))
		rng.Read(m1)
		id := rng.Intn(4)
		sig := scheme.Sign(id, m1)
		if !scheme.Verify(id, m1, sig) {
			return false
		}
		// Any single-byte perturbation must invalidate.
		m2 := append([]byte(nil), m1...)
		m2[rng.Intn(len(m2))] ^= 0xFF
		return !scheme.Verify(id, m2, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
