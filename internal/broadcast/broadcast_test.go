package broadcast

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

func TestVecCodecRoundTrip(t *testing.T) {
	for _, v := range []vec.V{vec.Of(), vec.Of(1.5), vec.Of(-3, 0, 2.25e-10), vec.Of(1e300, -1e-300)} {
		got, err := DecodeVec(EncodeVec(v))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := DecodeVec([]byte{1}); err == nil {
		t.Error("short decode did not error")
	}
	if _, err := DecodeVec([]byte{0, 0, 0, 5, 1, 2}); err == nil {
		t.Error("truncated decode did not error")
	}
}

func TestPathCodec(t *testing.T) {
	for _, p := range [][]int{{}, {0}, {3, 1, 4, 1, 5}} {
		enc := encodePath(p)
		got, rest, err := decodePath(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decodePath error %v rest %v", err, rest)
		}
		if len(got) != len(p) {
			t.Fatalf("%v -> %v", p, got)
		}
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("%v -> %v", p, got)
			}
		}
	}
}

func honestInputs(n int, base string) [][]byte {
	in := make([][]byte, n)
	for i := range in {
		in[i] = []byte(fmt.Sprintf("%s-%d", base, i))
	}
	return in
}

func checkEIGAgreementValidity(t *testing.T, n, f int, res *AllToAllResult, inputs [][]byte, byz map[int]bool) {
	t.Helper()
	// Agreement: all honest processes decide identically on every
	// commander; Validity: for honest commanders they decide the input.
	var honest []int
	for i := 0; i < n; i++ {
		if !byz[i] {
			honest = append(honest, i)
		}
	}
	ref := res.Decided[honest[0]]
	for _, i := range honest[1:] {
		for c := 0; c < n; c++ {
			if !bytes.Equal(res.Decided[i][c], ref[c]) {
				t.Fatalf("agreement violated: process %d and %d differ on commander %d: %q vs %q",
					honest[0], i, c, ref[c], res.Decided[i][c])
			}
		}
	}
	for _, c := range honest {
		for _, i := range honest {
			if !bytes.Equal(res.Decided[i][c], inputs[c]) {
				t.Fatalf("validity violated: process %d decided %q for honest commander %d (input %q)",
					i, res.Decided[i][c], c, inputs[c])
			}
		}
	}
}

func TestEIGAllHonest(t *testing.T) {
	for _, c := range []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}} {
		inputs := honestInputs(c.n, "v")
		res, err := RunAllToAllEIG(c.n, c.f, inputs, nil, []byte("default"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != c.f+1 {
			t.Errorf("n=%d f=%d rounds = %d, want %d", c.n, c.f, res.Rounds, c.f+1)
		}
		checkEIGAgreementValidity(t, c.n, c.f, res, inputs, nil)
	}
}

// twoFaced sends different values to low/high recipients, at every relay
// and as commander.
type twoFaced struct{ a, b []byte }

func (tf *twoFaced) RelayValue(instance int, path []int, to int, honest []byte) []byte {
	if to%2 == 0 {
		return tf.a
	}
	return tf.b
}

// silent drops all messages (crash at start).
type silentB struct{}

func (silentB) RelayValue(int, []int, int, []byte) []byte { return nil }

// randomLiar sends per-recipient random garbage.
type randomLiar struct{ rng *rand.Rand }

func (r *randomLiar) RelayValue(instance int, path []int, to int, honest []byte) []byte {
	g := make([]byte, 4)
	r.rng.Read(g)
	return g
}

func TestEIGByzantineLieutenant(t *testing.T) {
	for _, c := range []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}} {
		for name, mk := range map[string]func() EIGBehavior{
			"twofaced": func() EIGBehavior { return &twoFaced{[]byte("X"), []byte("Y")} },
			"silent":   func() EIGBehavior { return silentB{} },
			"random":   func() EIGBehavior { return &randomLiar{rand.New(rand.NewSource(9))} },
		} {
			inputs := honestInputs(c.n, "v")
			byz := map[int]EIGBehavior{1: mk()}
			byzSet := map[int]bool{1: true}
			if c.f == 2 {
				byz[3] = mk()
				byzSet[3] = true
			}
			res, err := RunAllToAllEIG(c.n, c.f, inputs, byz, []byte("default"), nil)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, c.n, err)
			}
			checkEIGAgreementValidity(t, c.n, c.f, res, inputs, byzSet)
		}
	}
}

func TestEIGByzantineCommanderStillAgrees(t *testing.T) {
	// The Byzantine process 0 equivocates as commander of its own
	// instance; honest processes must still agree on SOME value for it.
	n, f := 4, 1
	inputs := honestInputs(n, "v")
	byz := map[int]EIGBehavior{0: &twoFaced{[]byte("P"), []byte("Q")}}
	res, err := RunAllToAllEIG(n, f, inputs, byz, []byte("default"), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkEIGAgreementValidity(t, n, f, res, inputs, map[int]bool{0: true})
}

func TestEIGRejectsTooManyByzantine(t *testing.T) {
	if _, err := RunAllToAllEIG(4, 1, honestInputs(4, "v"), map[int]EIGBehavior{0: silentB{}, 1: silentB{}}, nil, nil); err == nil {
		t.Error("f exceeded without error")
	}
	if _, err := RunAllToAllEIG(4, 1, honestInputs(3, "v"), nil, nil, nil); err == nil {
		t.Error("wrong input count without error")
	}
}

func TestEIGVectorPayloads(t *testing.T) {
	// End-to-end with encoded vectors, the actual use in Algorithm ALGO.
	n, f := 5, 1
	inputs := make([][]byte, n)
	vecs := make([]vec.V, n)
	for i := range inputs {
		vecs[i] = vec.Of(float64(i), float64(i)*2, -1)
		inputs[i] = EncodeVec(vecs[i])
	}
	res, err := RunAllToAllEIG(n, f, inputs, map[int]EIGBehavior{2: &twoFaced{EncodeVec(vec.Of(9, 9, 9)), EncodeVec(vec.Of(-9, -9, -9))}}, EncodeVec(vec.New(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		for c := 0; c < n; c++ {
			v, err := DecodeVec(res.Decided[i][c])
			if err != nil {
				t.Fatalf("process %d commander %d: decode: %v", i, c, err)
			}
			if c != 2 && !v.Equal(vecs[c]) {
				t.Fatalf("process %d decided %v for honest commander %d", i, v, c)
			}
		}
	}
}

func TestDolevStrongHonest(t *testing.T) {
	n, f := 5, 2
	scheme := NewSigScheme(n, 1)
	res, err := RunDolevStrong(n, f, 0, []byte("hello"), scheme, nil, []byte("def"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decided {
		if !bytes.Equal(d, []byte("hello")) {
			t.Fatalf("process %d decided %q", i, d)
		}
	}
	if res.Rounds != f+1 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestDolevStrongEquivocatingCommander(t *testing.T) {
	n, f := 4, 1
	scheme := NewSigScheme(n, 2)
	beh := map[int]DSBehavior{0: NewDSEquivocator(map[int][]byte{
		1: []byte("A"), 2: []byte("B"), 3: []byte("A"),
	})}
	res, err := RunDolevStrong(n, f, 0, []byte("ignored"), scheme, beh, []byte("def"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Agreement among honest (1,2,3): all must decide the same.
	if !bytes.Equal(res.Decided[1], res.Decided[2]) || !bytes.Equal(res.Decided[2], res.Decided[3]) {
		t.Fatalf("agreement violated: %q %q %q", res.Decided[1], res.Decided[2], res.Decided[3])
	}
	// With an equivocating commander and f=1, honest processes see both
	// values by round f+1 and fall to the default.
	if !bytes.Equal(res.Decided[1], []byte("def")) {
		t.Errorf("decided %q, want default", res.Decided[1])
	}
}

func TestDolevStrongToleratesLargeF(t *testing.T) {
	// Signed broadcast works even with n = f+2 (no n >= 3f+1 needed).
	n, f := 4, 2
	scheme := NewSigScheme(n, 3)
	res, err := RunDolevStrong(n, f, 1, []byte("big-f"), scheme, nil, []byte("def"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decided {
		if !bytes.Equal(d, []byte("big-f")) {
			t.Fatalf("process %d decided %q", i, d)
		}
	}
}

func TestSigScheme(t *testing.T) {
	s := NewSigScheme(3, 7)
	sig := s.Sign(1, []byte("m"))
	if !s.Verify(1, []byte("m"), sig) {
		t.Error("valid signature rejected")
	}
	if s.Verify(2, []byte("m"), sig) {
		t.Error("signature verified for wrong signer")
	}
	if s.Verify(1, []byte("m2"), sig) {
		t.Error("signature verified for wrong message")
	}
}

// --- Bracha tests ---

// rbcNode broadcasts one value and records deliveries.
type rbcNode struct {
	bs     *BrachaState
	value  []byte
	sender bool
	got    []Delivery
	expect int
	done   bool
}

func (r *rbcNode) Start() []sched.Outgoing {
	if r.sender {
		return r.bs.Broadcast("x", r.value)
	}
	return nil
}

func (r *rbcNode) Receive(m sched.Message) []sched.Outgoing {
	outs := r.bs.Handle(m)
	r.got = append(r.got, r.bs.TakeDeliveries()...)
	if len(r.got) >= r.expect {
		r.done = true
	}
	return outs
}

func (r *rbcNode) Done() bool { return r.done }

func runBracha(t *testing.T, n, f int, schedule sched.Schedule, byzantine sched.AsyncProcess) []*rbcNode {
	t.Helper()
	procs := make([]sched.AsyncProcess, n)
	nodes := make([]*rbcNode, n)
	for i := 0; i < n; i++ {
		node := &rbcNode{bs: NewBrachaState(n, f, i), value: []byte("V"), sender: i == 0, expect: 1}
		nodes[i] = node
		procs[i] = node
	}
	if byzantine != nil {
		procs[n-1] = byzantine
		nodes[n-1] = nil
	}
	eng := sched.NewAsyncEngine(procs, schedule)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestBrachaHonestDelivery(t *testing.T) {
	for name, sch := range map[string]sched.Schedule{
		"fifo":   sched.FIFOSchedule{},
		"lifo":   sched.LIFOSchedule{},
		"random": &sched.RandomSchedule{Rng: rand.New(rand.NewSource(4))},
	} {
		nodes := runBracha(t, 4, 1, sch, nil)
		for i, node := range nodes {
			if len(node.got) != 1 || !bytes.Equal(node.got[0].Value, []byte("V")) {
				t.Fatalf("%s: node %d deliveries: %+v", name, i, node.got)
			}
			if node.got[0].Sender != 0 || node.got[0].ID != "x" {
				t.Fatalf("%s: wrong delivery metadata %+v", name, node.got[0])
			}
		}
	}
}

// equivocatingSender sends INIT("A") to half and INIT("B") to the rest.
type equivocatingSender struct {
	n    int
	sent bool
}

func (e *equivocatingSender) Start() []sched.Outgoing {
	var outs []sched.Outgoing
	for to := 1; to < e.n; to++ {
		v := []byte("A")
		if to > e.n/2 {
			v = []byte("B")
		}
		outs = append(outs, sched.Outgoing{To: to, Tag: BrachaTag, Data: encodeRBC(rbcInit, 0, "x", v)})
	}
	e.sent = true
	return outs
}
func (e *equivocatingSender) Receive(sched.Message) []sched.Outgoing { return nil }
func (e *equivocatingSender) Done() bool                             { return e.sent }

func TestBrachaEquivocatingSenderConsistency(t *testing.T) {
	// Byzantine sender (process 0) equivocates; honest processes must not
	// deliver conflicting values. They may deliver nothing (engine drains).
	n, f := 4, 1
	procs := make([]sched.AsyncProcess, n)
	nodes := make([]*rbcNode, n)
	procs[0] = &equivocatingSender{n: n}
	for i := 1; i < n; i++ {
		node := &rbcNode{bs: NewBrachaState(n, f, i), expect: 99} // never "done": run to quiescence
		nodes[i] = node
		procs[i] = node
	}
	eng := sched.NewAsyncEngine(procs, sched.FIFOSchedule{})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var delivered [][]byte
	for i := 1; i < n; i++ {
		for _, d := range nodes[i].got {
			delivered = append(delivered, d.Value)
		}
	}
	for i := 1; i < len(delivered); i++ {
		if !bytes.Equal(delivered[0], delivered[i]) {
			t.Fatalf("conflicting deliveries: %q vs %q", delivered[0], delivered[i])
		}
	}
}

func TestBrachaImpersonationRejected(t *testing.T) {
	// A process claiming to originate another's INIT is ignored.
	n, f := 4, 1
	bs := NewBrachaState(n, f, 1)
	outs := bs.Handle(sched.Message{From: 2, To: 1, Tag: BrachaTag, Data: encodeRBC(rbcInit, 0, "x", []byte("forged"))})
	if len(outs) != 0 {
		t.Error("forged INIT triggered protocol messages")
	}
}

func TestBrachaMultipleInstances(t *testing.T) {
	// All n processes broadcast concurrently under a random schedule; all
	// honest processes deliver all n values.
	n, f := 4, 1
	type multiNode struct {
		rbcNode
	}
	procs := make([]sched.AsyncProcess, n)
	nodes := make([]*rbcNode, n)
	for i := 0; i < n; i++ {
		node := &rbcNode{bs: NewBrachaState(n, f, i), value: []byte{byte('a' + i)}, sender: true, expect: n}
		nodes[i] = node
		procs[i] = node
	}
	eng := sched.NewAsyncEngine(procs, &sched.RandomSchedule{Rng: rand.New(rand.NewSource(5))})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		if len(node.got) != n {
			t.Fatalf("node %d delivered %d of %d", i, len(node.got), n)
		}
		seen := map[int]string{}
		for _, d := range node.got {
			seen[d.Sender] = string(d.Value)
		}
		for s := 0; s < n; s++ {
			if seen[s] != string([]byte{byte('a' + s)}) {
				t.Fatalf("node %d: wrong value from %d: %q", i, s, seen[s])
			}
		}
	}
}
