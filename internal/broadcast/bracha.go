package broadcast

import (
	"fmt"

	"relaxedbvc/internal/sched"
)

// Bracha reliable broadcast (asynchronous, n >= 3f+1): if any non-faulty
// process delivers (sender, id, v), every non-faulty process eventually
// delivers exactly (sender, id, v); if the sender is non-faulty, everyone
// delivers its value.
//
// BrachaState is a protocol component embedded in an asynchronous
// process: the owner feeds incoming "rbc" messages to Handle and passes
// the returned outgoing messages to the engine; Deliveries accumulate.

const (
	rbcInit  = byte(0)
	rbcEcho  = byte(1)
	rbcReady = byte(2)
)

// Delivery is a reliably-delivered broadcast.
type Delivery struct {
	Sender int
	ID     string
	Value  []byte
}

type brachaInst struct {
	echoed    bool
	readied   bool
	delivered bool
	echoes    map[int]string // per echoing process: value
	readies   map[int]string
	initValue []byte
	haveInit  bool
}

// BrachaState holds all reliable-broadcast instances of one process.
type BrachaState struct {
	N, F, Self int
	insts      map[string]*brachaInst // key: senderID | id
	deliveries []Delivery
}

// NewBrachaState creates the component for process self.
func NewBrachaState(n, f, self int) *BrachaState {
	return &BrachaState{N: n, F: f, Self: self, insts: make(map[string]*brachaInst)}
}

func rbcKey(sender int, id string) string { return fmt.Sprintf("%d|%s", sender, id) }

func (b *BrachaState) inst(sender int, id string) *brachaInst {
	k := rbcKey(sender, id)
	in := b.insts[k]
	if in == nil {
		in = &brachaInst{echoes: make(map[int]string), readies: make(map[int]string)}
		b.insts[k] = in
	}
	return in
}

// encodeRBC packs (phase, sender, id, value).
func encodeRBC(phase byte, sender int, id string, value []byte) []byte {
	out := []byte{phase, byte(sender >> 8), byte(sender)}
	out = appendBytes(out, []byte(id))
	out = appendBytes(out, value)
	return out
}

func decodeRBC(data []byte) (phase byte, sender int, id string, value []byte, err error) {
	if len(data) < 3 {
		return 0, 0, "", nil, fmt.Errorf("broadcast: short rbc message")
	}
	phase = data[0]
	sender = int(data[1])<<8 | int(data[2])
	idB, rest, err := readBytes(data[3:])
	if err != nil {
		return 0, 0, "", nil, err
	}
	value, _, err = readBytes(rest)
	if err != nil {
		return 0, 0, "", nil, err
	}
	return phase, sender, string(idB), value, nil
}

// Tag is the sched message tag used by the component.
const BrachaTag = "rbc"

// Broadcast initiates a reliable broadcast of (id, value) from this
// process. It returns the messages to send; the local state machine also
// processes its own INIT immediately (self-delivery without network).
func (b *BrachaState) Broadcast(id string, value []byte) []sched.Outgoing {
	init := encodeRBC(rbcInit, b.Self, id, value)
	outs := []sched.Outgoing{{To: sched.Broadcast, Tag: BrachaTag, Data: init}}
	// Feed own INIT locally.
	outs = append(outs, b.Handle(sched.Message{From: b.Self, To: b.Self, Tag: BrachaTag, Data: init})...)
	return outs
}

// Handle processes one incoming rbc message, returning protocol messages
// to send. Deliveries are appended to b.Deliveries (drain with
// TakeDeliveries).
func (b *BrachaState) Handle(m sched.Message) []sched.Outgoing {
	phase, sender, id, value, err := decodeRBC(m.Data)
	if err != nil {
		return nil
	}
	in := b.inst(sender, id)
	var outs []sched.Outgoing
	feedSelf := func(data []byte) {
		outs = append(outs, b.Handle(sched.Message{From: b.Self, To: b.Self, Tag: BrachaTag, Data: data})...)
	}
	switch phase {
	case rbcInit:
		// Only the claimed sender may originate its INIT.
		if m.From != sender {
			return nil
		}
		if in.haveInit {
			return nil // duplicate/equivocating INIT ignored (first wins)
		}
		in.haveInit = true
		in.initValue = value
		if !in.echoed {
			in.echoed = true
			echo := encodeRBC(rbcEcho, sender, id, value)
			outs = append(outs, sched.Outgoing{To: sched.Broadcast, Tag: BrachaTag, Data: echo})
			feedSelf(echo)
		}
	case rbcEcho:
		if _, dup := in.echoes[m.From]; dup {
			return nil
		}
		in.echoes[m.From] = string(value)
		outs = append(outs, b.maybeReady(in, sender, id, feedSelfFn(&outs, b))...)
	case rbcReady:
		if _, dup := in.readies[m.From]; dup {
			return nil
		}
		in.readies[m.From] = string(value)
		outs = append(outs, b.maybeReady(in, sender, id, feedSelfFn(&outs, b))...)
		// Deliver on 2f+1 matching READYs.
		if !in.delivered {
			if v, n := modalValue(in.readies); n >= deliverQuorum(b.F) {
				in.delivered = true
				b.deliveries = append(b.deliveries, Delivery{Sender: sender, ID: id, Value: []byte(v)})
			}
		}
	}
	return outs
}

// feedSelfFn returns a closure that loops a locally generated message
// back through Handle, accumulating any cascaded sends.
func feedSelfFn(outs *[]sched.Outgoing, b *BrachaState) func([]byte) {
	return func(data []byte) {
		*outs = append(*outs, b.Handle(sched.Message{From: b.Self, To: b.Self, Tag: BrachaTag, Data: data})...)
	}
}

// maybeReady sends ECHO->READY and READY-amplification messages when the
// thresholds are crossed.
func (b *BrachaState) maybeReady(in *brachaInst, sender int, id string, feedSelf func([]byte)) []sched.Outgoing {
	var outs []sched.Outgoing
	if !in.readied {
		// Echo threshold: > (n+f)/2 matching echoes.
		if v, n := modalValue(in.echoes); echoQuorum(n, b.N, b.F) {
			in.readied = true
			ready := encodeRBC(rbcReady, sender, id, []byte(v))
			outs = append(outs, sched.Outgoing{To: sched.Broadcast, Tag: BrachaTag, Data: ready})
			feedSelf(ready)
			return outs
		}
		// Ready amplification: f+1 matching readies.
		if v, n := modalValue(in.readies); n >= amplifyQuorum(b.F) {
			in.readied = true
			ready := encodeRBC(rbcReady, sender, id, []byte(v))
			outs = append(outs, sched.Outgoing{To: sched.Broadcast, Tag: BrachaTag, Data: ready})
			feedSelf(ready)
		}
	}
	return outs
}

// modalValue returns the most frequent value and its count.
func modalValue(m map[int]string) (string, int) {
	counts := make(map[string]int)
	bestV, bestN := "", 0
	for _, v := range m {
		counts[v]++
		if counts[v] > bestN || (counts[v] == bestN && v < bestV) {
			bestV, bestN = v, counts[v]
		}
	}
	return bestV, bestN
}

// TakeDeliveries returns and clears the accumulated deliveries.
func (b *BrachaState) TakeDeliveries() []Delivery {
	d := b.deliveries
	b.deliveries = nil
	return d
}

// EncodeInit builds a raw INIT message for (sender, id, value). It is
// the hook scripted adversaries use to equivocate: a Byzantine sender
// crafts per-recipient INITs with different values instead of calling
// Broadcast. Honest processes never need it.
func EncodeInit(sender int, id string, value []byte) []byte {
	return encodeRBC(rbcInit, sender, id, value)
}

// PruneInstances removes every reliable-broadcast instance whose
// (sender, id) matches the predicate, releasing its echo/ready state.
// Callers multiplexing many instances over one BrachaState (e.g. the
// ACS stream, one instance per epoch and slot) use it to garbage-collect
// epochs that can no longer receive traffic. Undelivered pruned
// instances are gone for good — only prune instances the caller has
// sealed past.
func (b *BrachaState) PruneInstances(match func(sender int, id string) bool) int {
	pruned := 0
	for k := range b.insts {
		sender, id, ok := splitRBCKey(k)
		if ok && match(sender, id) {
			delete(b.insts, k)
			pruned++
		}
	}
	return pruned
}

// splitRBCKey inverts rbcKey.
func splitRBCKey(k string) (sender int, id string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			n := 0
			for _, c := range k[:i] {
				if c < '0' || c > '9' {
					return 0, "", false
				}
				n = n*10 + int(c-'0')
			}
			return n, k[i+1:], true
		}
	}
	return 0, "", false
}
