package broadcast

// Quorum thresholds of the broadcast primitives, named so every
// comparison in the package traces to one audited definition (enforced
// by bvclint's quorumgate analyzer).

// echoQuorum reports whether cnt matching ECHOes clear Bracha's
// > (n+f)/2 threshold: two such quorums intersect in a correct
// process, so no two correct processes send READY for different
// values.
func echoQuorum(cnt, n, f int) bool { return 2*cnt > n+f }

// amplifyQuorum is the f+1 READY amplification threshold: f+1 READYs
// include a correct one, so echoing them cannot forge a delivery.
func amplifyQuorum(f int) int { return f + 1 }

// deliverQuorum is the 2f+1 READY delivery threshold: 2f+1 READYs
// contain f+1 correct ones, which by amplification drag every correct
// process to delivery (totality).
func deliverQuorum(f int) int { return 2*f + 1 }

// eigDepth is the f+1 relay rounds of the EIG tree: with at most f
// faults, some round relays through correct processes only.
func eigDepth(f int) int { return f + 1 }
