package broadcast

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"

	"relaxedbvc/internal/sched"
)

// SigScheme simulates a PKI with per-process HMAC keys. Honest processes
// sign only with their own key; a Byzantine process cannot forge another
// process's signature because it never sees that key. (The simulation
// keeps all keys in one struct, but behaviors are only handed Sign
// closures for their own id.)
type SigScheme struct {
	keys [][]byte
}

// NewSigScheme creates keys for n processes from the seed.
func NewSigScheme(n int, seed int64) *SigScheme {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		keys[i] = k
	}
	return &SigScheme{keys: keys}
}

// Sign returns the signature of msg by process id.
func (s *SigScheme) Sign(id int, msg []byte) []byte {
	mac := hmac.New(sha256.New, s.keys[id])
	mac.Write(msg)
	return mac.Sum(nil)
}

// Verify reports whether sig is id's signature of msg.
func (s *SigScheme) Verify(id int, msg, sig []byte) bool {
	return hmac.Equal(s.Sign(id, msg), sig)
}

// dsMessage is a value plus a chain of (signer, signature) pairs. The
// signed payload of the k-th signer is value || signer ids so far, which
// binds the chain order.
type dsChain struct {
	value   []byte
	signers []int
	sigs    [][]byte
}

func dsPayload(value []byte, signers []int) []byte {
	out := appendBytes(nil, value)
	return append(out, encodePath(signers)...)
}

func encodeChain(c dsChain) []byte {
	out := appendBytes(nil, c.value)
	out = append(out, encodePath(c.signers)...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(c.sigs)))
	out = append(out, l[:]...)
	for _, s := range c.sigs {
		out = appendBytes(out, s)
	}
	return out
}

func decodeChain(b []byte) (dsChain, error) {
	var c dsChain
	val, rest, err := readBytes(b)
	if err != nil {
		return c, err
	}
	signers, rest, err := decodePath(rest)
	if err != nil {
		return c, err
	}
	if len(rest) < 4 {
		return c, fmt.Errorf("broadcast: short sig count")
	}
	nsig := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	sigs := make([][]byte, nsig)
	for i := 0; i < nsig; i++ {
		sigs[i], rest, err = readBytes(rest)
		if err != nil {
			return c, err
		}
	}
	c.value, c.signers, c.sigs = val, signers, sigs
	return c, nil
}

// validChain verifies a signature chain: distinct signers starting with
// the commander, each signature valid over the value and the chain prefix.
func validChain(s *SigScheme, commander int, c dsChain) bool {
	if len(c.signers) == 0 || len(c.signers) != len(c.sigs) {
		return false
	}
	if c.signers[0] != commander || hasDuplicates(c.signers) {
		return false
	}
	for k, id := range c.signers {
		payload := dsPayload(c.value, c.signers[:k])
		if !s.Verify(id, payload, c.sigs[k]) {
			return false
		}
	}
	return true
}

// DSBehavior lets a Byzantine process replace its outgoing Dolev-Strong
// messages. It receives the honest chains the process would send to the
// recipient and returns the chains actually sent (which it can only build
// from chains it has seen plus its own signature — enforced by the
// signature checks at receivers, not by this interface).
type DSBehavior interface {
	Send(round, to int, honest []dsChain, sign func([]byte, []int) dsChain) []dsChain
}

// dsEquivocator is the canonical Byzantine commander: it sends different
// signed values to different recipients in round 0.
type dsEquivocator struct {
	values map[int][]byte // per-recipient round-0 value
}

func (e *dsEquivocator) Send(round, to int, honest []dsChain, sign func([]byte, []int) dsChain) []dsChain {
	if round != 0 {
		return nil // silent afterwards
	}
	if v, ok := e.values[to]; ok {
		return []dsChain{sign(v, nil)}
	}
	return honest
}

// NewDSEquivocator builds a DSBehavior that sends value values[to] to
// each recipient in round 0 and nothing later.
func NewDSEquivocator(values map[int][]byte) DSBehavior { return &dsEquivocator{values: values} }

// dsProcess implements the Dolev-Strong protocol: a chain with k valid
// signatures received in round k-1 (0-based: delivered at Step(k)) is
// accepted, countersigned and forwarded. After f+1 rounds a process
// decides the unique accepted value, or the default when zero or several
// values were accepted.
type dsProcess struct {
	n, f, self, commander int
	scheme                *SigScheme
	input                 []byte // commander only
	behavior              DSBehavior
	accepted              map[string]dsChain // by value
	forwarded             map[string]bool
	decided               []byte
	defaultVal            []byte
	done                  bool
	// drops accumulates chains the Byzantine behavior suppressed relative
	// to honest forwarding (run-wide; the lockstep engine is
	// single-threaded so a plain int is safe).
	drops *int
}

// extendChain appends self's signature to an existing valid chain.
func (p *dsProcess) extendChain(c dsChain) dsChain {
	payload := dsPayload(c.value, c.signers)
	return dsChain{
		value:   c.value,
		signers: append(append([]int(nil), c.signers...), p.self),
		sigs:    append(append([][]byte(nil), c.sigs...), p.scheme.Sign(p.self, payload)),
	}
}

func (p *dsProcess) emit(round int, chains []dsChain) []sched.Outgoing {
	var outs []sched.Outgoing
	for to := 0; to < p.n; to++ {
		if to == p.self {
			continue
		}
		send := chains
		if p.behavior != nil {
			send = p.behavior.Send(round, to, chains, func(v []byte, signers []int) dsChain {
				base := dsChain{value: v, signers: signers}
				if len(signers) == 0 {
					// Fresh chain from this (Byzantine) process.
					return dsChain{
						value:   v,
						signers: []int{p.self},
						sigs:    [][]byte{p.scheme.Sign(p.self, dsPayload(v, nil))},
					}
				}
				return p.extendChain(base)
			})
			if p.drops != nil && len(send) < len(chains) {
				*p.drops += len(chains) - len(send)
			}
		}
		for _, c := range send {
			outs = append(outs, sched.Outgoing{To: to, Tag: "ds", Data: encodeChain(c)})
		}
	}
	return outs
}

func (p *dsProcess) Start() []sched.Outgoing {
	if p.self != p.commander {
		if p.behavior != nil {
			return p.emit(0, nil)
		}
		return nil
	}
	c := dsChain{
		value:   p.input,
		signers: []int{p.self},
		sigs:    [][]byte{p.scheme.Sign(p.self, dsPayload(p.input, nil))},
	}
	p.accepted[string(p.input)] = c
	p.forwarded[string(p.input)] = true
	return p.emit(0, []dsChain{c})
}

func (p *dsProcess) Step(round int, delivered []sched.Message) []sched.Outgoing {
	var fresh []dsChain
	for _, m := range delivered {
		if m.Tag != "ds" {
			continue
		}
		c, err := decodeChain(m.Data)
		if err != nil {
			continue
		}
		// Delivered at round r (sent in round r-1... here Step(round) sees
		// messages sent previously): require at least round+1 signatures
		// (Dolev-Strong round rule) and a valid chain.
		if len(c.signers) < round+1 || !validChain(p.scheme, p.commander, c) {
			continue
		}
		key := string(c.value)
		if p.forwarded[key] {
			continue
		}
		p.accepted[key] = c
		p.forwarded[key] = true
		if !pathContains(c.signers, p.self) && len(c.signers) <= p.f {
			fresh = append(fresh, p.extendChain(c))
		}
	}
	if round < p.f {
		return p.emit(round+1, fresh)
	}
	// Decide.
	if len(p.accepted) == 1 {
		for _, c := range p.accepted {
			p.decided = c.value
		}
	} else {
		p.decided = p.defaultVal
	}
	p.done = true
	return nil
}

func (p *dsProcess) Done() bool { return p.done }

// DSResult is the outcome of a Dolev-Strong broadcast.
type DSResult struct {
	Decided  [][]byte // per process (commander included)
	Rounds   int
	Messages int
	// Drops is the number of chains suppressed by Byzantine behaviors
	// relative to honest forwarding.
	Drops int
	// Faults counts injected link-fault events (when faults were given).
	Faults sched.FaultStats
}

// RunDolevStrong broadcasts the commander's value with signed messages in
// f+1 rounds. Unlike the oral-messages algorithm it tolerates any f < n,
// at the cost of the simulated PKI. behaviors maps Byzantine ids to their
// behavior (the commander may be Byzantine). faults (may be nil) injects
// seeded link faults; patterns beyond duplication break lockstep
// synchrony and surface as errors wrapping sched.ErrDeliveryViolated.
func RunDolevStrong(n, f, commander int, value []byte, scheme *SigScheme, behaviors map[int]DSBehavior, defaultVal []byte, faults *sched.LinkFaults, trace ...func(sched.Message)) (*DSResult, error) {
	procs := make([]sched.SyncProcess, n)
	dps := make([]*dsProcess, n)
	var drops int
	for i := 0; i < n; i++ {
		dp := &dsProcess{
			n: n, f: f, self: i, commander: commander, scheme: scheme,
			behavior: behaviors[i], defaultVal: defaultVal,
			accepted: make(map[string]dsChain), forwarded: make(map[string]bool),
			drops: &drops,
		}
		if i == commander {
			dp.input = value
		}
		dps[i] = dp
		procs[i] = dp
	}
	eng := sched.NewSyncEngine(procs)
	eng.Faults = faults
	if len(trace) > 0 {
		eng.TraceFn = trace[0]
	}
	rounds, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &DSResult{Rounds: rounds, Messages: eng.Messages, Drops: drops, Faults: eng.FaultStats}
	res.Decided = make([][]byte, n)
	for i, dp := range dps {
		res.Decided[i] = dp.decided
	}
	dsRunsTotal.Inc()
	byzDropsTotal.Add(int64(res.Drops))
	return res, nil
}
