package broadcast

import (
	"fmt"
	"sort"

	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/sched"
)

// Broadcast observability (cumulative across all runs in the process).
// Per-run values are also returned on the result structs so callers can
// attribute them to one consensus execution.
var (
	byzDropsTotal = metrics.DefaultCounter("consensus_byzantine_drops_total")
	eigNodesTotal = metrics.DefaultCounter("consensus_eig_tree_nodes_total")
	eigRunsTotal  = metrics.DefaultCounter("broadcast_eig_runs_total")
	dsRunsTotal   = metrics.DefaultCounter("broadcast_ds_runs_total")
	eigTreeNodes  = metrics.DefaultHistogram("broadcast_eig_tree_nodes_per_run", metrics.CountBuckets())
)

// EIGBehavior customizes what a Byzantine process sends during EIG
// broadcast. The honest value it would have relayed is provided; the
// returned value is what it actually sends to the given recipient for the
// given tree node. Returning nil suppresses the send (a crash/silence on
// that edge).
type EIGBehavior interface {
	RelayValue(instance int, path []int, to int, honest []byte) []byte
}

// EIGBehaviorFunc adapts a function to EIGBehavior.
type EIGBehaviorFunc func(instance int, path []int, to int, honest []byte) []byte

// RelayValue implements EIGBehavior.
func (f EIGBehaviorFunc) RelayValue(instance int, path []int, to int, honest []byte) []byte {
	return f(instance, path, to, honest)
}

// eigInstance is one EIG Byzantine-Generals tree at one process, for one
// commander. Rounds are 1-based: round 1 is the commander's send; rounds
// 2..f+1 relay the tree levels.
type eigInstance struct {
	n, f, commander, self int
	instance              int
	tree                  map[string][]byte // pathKey -> value
	defaultVal            []byte
	decided               []byte
	done                  bool
}

func newEIGInstance(n, f, commander, self, instance int, defaultVal []byte) *eigInstance {
	return &eigInstance{
		n: n, f: f, commander: commander, self: self, instance: instance,
		tree: make(map[string][]byte), defaultVal: defaultVal,
	}
}

// levelNodes returns the stored tree nodes whose path length is l, in
// deterministic order.
func (e *eigInstance) levelNodes(l int) [][]int {
	var keys []string
	for k := range e.tree {
		path, _, err := decodePath([]byte(k))
		if err == nil && len(path) == l {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	nodes := make([][]int, 0, len(keys))
	for _, k := range keys {
		path, _, _ := decodePath([]byte(k))
		nodes = append(nodes, path)
	}
	return nodes
}

// resolve computes the recursive majority at the given node.
func (e *eigInstance) resolve(path []int) []byte {
	if len(path) == eigDepth(e.f) {
		if v, ok := e.tree[pathKey(path)]; ok {
			return v
		}
		return e.defaultVal
	}
	counts := make(map[string]int)
	order := make([]string, 0)
	children := 0
	for j := 0; j < e.n; j++ {
		if pathContains(path, j) {
			continue
		}
		children++
		v := e.resolve(append(path, j))
		key := string(v)
		if counts[key] == 0 {
			order = append(order, key)
		}
		counts[key]++
	}
	// Strict majority of children; ties and absence fall to the default.
	for _, key := range order {
		if 2*counts[key] > children {
			return []byte(key)
		}
	}
	return e.defaultVal
}

// EIGNode is the per-process state machine of the all-to-all EIG
// broadcast: n parallel EIG instances (one per commander) at a single
// process — the "each process Byzantine-broadcasts its input" pattern
// of Algorithm ALGO Step 1. It implements sched.SyncProcess, so the
// same state machine can be driven by the simulated lockstep engine
// (RunAllToAllEIG) or, one node per machine, by a distributed lockstep
// runner over a real transport (internal/transport.RunSync).
type EIGNode struct {
	n, f, self int
	input      []byte // this node's own input (commander value)
	insts      []*eigInstance
	behavior   EIGBehavior // nil for honest
	round      int
	done       bool
	decided    [][]byte
	// drops counts sends this process's Byzantine behavior suppressed
	// (the lockstep engines are single-threaded per process, so a plain
	// int is safe).
	drops int
}

// NewEIGNode builds the EIG state machine for one process: id self out
// of n processes tolerating f faults, broadcasting input, optionally
// scripted by behavior (nil = honest), with defaultVal as the fallback
// when a majority resolution fails.
func NewEIGNode(n, f, self int, input []byte, behavior EIGBehavior, defaultVal []byte) *EIGNode {
	p := &EIGNode{n: n, f: f, self: self, input: input, behavior: behavior}
	p.insts = make([]*eigInstance, n)
	for c := 0; c < n; c++ {
		p.insts[c] = newEIGInstance(n, f, c, self, c, defaultVal)
	}
	return p
}

// Decided returns, after Done, this node's decided value per commander
// (Decided()[c] is the agreed broadcast value of commander c).
func (p *EIGNode) Decided() [][]byte { return p.decided }

// Drops returns the sends this node's Byzantine behavior suppressed.
func (p *EIGNode) Drops() int { return p.drops }

// TreeNodes returns the total EIG tree nodes stored across this node's
// instances — its share of the broadcast memory footprint.
func (p *EIGNode) TreeNodes() int {
	total := 0
	for _, inst := range p.insts {
		total += len(inst.tree)
	}
	return total
}

// sendNode emits the value for node path(+self appended by caller) to all
// other processes, applying the Byzantine behavior if present.
func (p *EIGNode) sendNode(instance int, path []int, honest []byte) []sched.Outgoing {
	var outs []sched.Outgoing
	for to := 0; to < p.n; to++ {
		if to == p.self {
			continue
		}
		v := honest
		if p.behavior != nil {
			v = p.behavior.RelayValue(instance, path, to, honest)
		}
		if v == nil {
			p.drops++
			continue
		}
		data := appendBytes(nil, []byte{byte(instance)})
		data = appendBytes(data, encodePath(path))
		data = appendBytes(data, v)
		outs = append(outs, sched.Outgoing{To: to, Tag: "eig", Data: data})
	}
	return outs
}

// Start implements sched.SyncProcess: round 1 of every instance.
func (p *EIGNode) Start() []sched.Outgoing {
	// Round 1: every process is commander of its own instance.
	var outs []sched.Outgoing
	inst := p.insts[p.self]
	path := []int{p.self}
	inst.tree[pathKey(path)] = p.input
	outs = append(outs, p.sendNode(p.self, path, p.input)...)
	return outs
}

// Step implements sched.SyncProcess: store the delivered tree nodes,
// relay the next level or decide.
func (p *EIGNode) Step(round int, delivered []sched.Message) []sched.Outgoing {
	// Store everything delivered this round.
	for _, m := range delivered {
		if m.Tag != "eig" {
			continue
		}
		instB, rest, err := readBytes(m.Data)
		if err != nil {
			continue
		}
		pathB, rest, err := readBytes(rest)
		if err != nil {
			continue
		}
		val, _, err := readBytes(rest)
		if err != nil {
			continue
		}
		path, _, err := decodePath(pathB)
		if err != nil || len(path) == 0 {
			continue
		}
		inst := p.insts[instB[0]]
		// The message claims to be node `path`; its last element must be
		// the actual sender (honest enforcement of the relay discipline),
		// the path must start at the commander, have distinct ids, and
		// belong to the level matching this round.
		if path[len(path)-1] != m.From || path[0] != inst.commander {
			continue
		}
		if len(path) != round+1 { // round r delivers level r+1 nodes (round 0 = level 1)
			continue
		}
		if hasDuplicates(path) {
			continue
		}
		inst.tree[pathKey(path)] = val
	}

	p.round = round
	var outs []sched.Outgoing
	level := round + 1 // nodes stored this round have this path length
	if level <= p.f {
		// Relay: for every level-`level` node not containing self, send
		// node path+[self] with the stored value.
		for _, inst := range p.insts {
			for _, path := range inst.levelNodes(level) {
				if pathContains(path, p.self) {
					continue
				}
				honest := inst.tree[pathKey(path)]
				newPath := append(append([]int(nil), path...), p.self)
				// A process knows its own honest relay: store it locally so
				// the resolve majority sees the self-child too.
				inst.tree[pathKey(newPath)] = honest
				outs = append(outs, p.sendNode(inst.instance, newPath, honest)...)
			}
		}
		return outs
	}
	// Gathering complete: decide every instance.
	p.decided = make([][]byte, p.n)
	for c, inst := range p.insts {
		if c == p.self {
			p.decided[c] = p.input
			continue
		}
		p.decided[c] = inst.resolve([]int{inst.commander})
	}
	p.done = true
	return nil
}

// Done implements sched.SyncProcess.
func (p *EIGNode) Done() bool { return p.done }

func hasDuplicates(path []int) bool {
	seen := make(map[int]bool, len(path))
	for _, x := range path {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// AllToAllResult is the outcome of an all-to-all EIG broadcast.
type AllToAllResult struct {
	// Decided[i][c] is process i's decided value for commander c
	// (nil rows for Byzantine processes, whose decisions are meaningless).
	Decided [][][]byte
	Rounds  int
	// Messages is the total number of point-to-point messages delivered.
	Messages int
	// Drops is the number of sends suppressed by Byzantine behaviors
	// (returning nil from RelayValue) relative to honest relaying.
	Drops int
	// TreeNodes is the total number of EIG tree nodes stored across all
	// processes and instances — the memory footprint of the broadcast.
	TreeNodes int
	// Faults counts injected link-fault events (when faults were given).
	Faults sched.FaultStats
}

// RunAllToAllEIG has every process Byzantine-broadcast its input to all
// others using parallel EIG instances (f+1 rounds). behaviors maps
// Byzantine process ids to their behavior; all other processes are
// honest. defaultVal is the fallback value used when majority fails.
// faults (may be nil) injects seeded link faults; patterns beyond
// duplication break lockstep synchrony and surface as errors wrapping
// sched.ErrDeliveryViolated.
//
// Correctness (agreement on every instance and validity for honest
// commanders) requires n >= 3f+1.
func RunAllToAllEIG(n, f int, inputs [][]byte, behaviors map[int]EIGBehavior, defaultVal []byte, faults *sched.LinkFaults, trace ...func(sched.Message)) (*AllToAllResult, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("broadcast: %d inputs for %d processes", len(inputs), n)
	}
	if len(behaviors) > f {
		return nil, fmt.Errorf("broadcast: %d Byzantine processes exceeds f=%d", len(behaviors), f)
	}
	procs := make([]sched.SyncProcess, n)
	eps := make([]*EIGNode, n)
	for i := 0; i < n; i++ {
		ep := NewEIGNode(n, f, i, inputs[i], behaviors[i], defaultVal)
		eps[i] = ep
		procs[i] = ep
	}
	eng := sched.NewSyncEngine(procs)
	eng.Faults = faults
	if len(trace) > 0 {
		eng.TraceFn = trace[0]
	}
	rounds, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &AllToAllResult{Rounds: rounds, Messages: eng.Messages, Faults: eng.FaultStats}
	res.Decided = make([][][]byte, n)
	for i, ep := range eps {
		res.Decided[i] = ep.decided
		res.Drops += ep.drops
		res.TreeNodes += ep.TreeNodes()
	}
	eigRunsTotal.Inc()
	byzDropsTotal.Add(int64(res.Drops))
	eigNodesTotal.Add(int64(res.TreeNodes))
	eigTreeNodes.Observe(float64(res.TreeNodes))
	return res, nil
}
