// Package simtest is an invariant-checking simulation harness for the
// consensus protocols: it wraps Run(ctx, spec), checks every successful
// run against the paper's correctness conditions (validity in the exact,
// k-relaxed or (delta,p)-relaxed sense; agreement or epsilon-agreement;
// termination), and classifies failures into graceful degradations
// (typed errors such as ErrDeliveryViolated from an out-of-model fault
// pattern) versus genuine invariant violations.
//
// On top of the checker sits a seed-sweeping schedule fuzzer (GenSpec,
// Sweep): each seed deterministically generates a protocol instance —
// system size at the paper's bounds, random inputs, a Byzantine roster
// and a link-fault pattern drawn from the requested Regime — runs it on
// the batch engine, and checks the invariants. Failing seeds are shrunk
// to the minimal one and replayed to confirm the failure signature is
// reproducible (the fault layer is seed-deterministic, so a failing seed
// is a complete bug report).
package simtest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	bvc "relaxedbvc"
)

// Violation is one broken invariant in an otherwise-completed run.
type Violation struct {
	// Invariant is "termination", "validity" or "agreement".
	Invariant string
	// Process is the offending process id, or -1 for a global condition.
	Process int
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[p%d]: %s", v.Invariant, v.Process, v.Detail)
}

// CheckOptions tunes the invariant checker. The zero value is ready to
// use.
type CheckOptions struct {
	// Tol is the geometric tolerance of the hull predicates (0 = 1e-6).
	Tol float64
	// Epsilon, when positive, is enforced as the agreement bound of the
	// approximate (async, k1-async, iterative) protocols instead of the
	// default non-expansion check against the honest input spread.
	Epsilon float64
	// MaxRounds / MaxSteps, when positive, bound the run's termination
	// budget (Result.Rounds / Result.Steps).
	MaxRounds, MaxSteps int
}

func (o CheckOptions) tol() float64 {
	if o.Tol == 0 {
		return 1e-6
	}
	return o.Tol
}

// HonestIDs returns the process ids of spec not scripted in any of its
// Byzantine rosters, ascending.
func HonestIDs(spec bvc.Spec) []int {
	var ids []int
	for i := 0; i < spec.N; i++ {
		if _, ok := spec.Byzantine[i]; ok {
			continue
		}
		if _, ok := spec.ByzantineSigned[i]; ok && spec.SignedBroadcast {
			continue
		}
		if _, ok := spec.AsyncByzantine[i]; ok {
			continue
		}
		if _, ok := spec.IterByzantine[i]; ok {
			continue
		}
		if _, ok := spec.ACSByzantine[i]; ok {
			continue
		}
		ids = append(ids, i)
	}
	return ids
}

// NonFaultyInputs returns the multiset of honest processes' inputs.
func NonFaultyInputs(spec bvc.Spec) *bvc.PointSet {
	var pts []bvc.Vector
	for _, i := range HonestIDs(spec) {
		if i < len(spec.Inputs) {
			pts = append(pts, spec.Inputs[i])
		}
	}
	return bvc.NewPointSet(pts...)
}

// acsEpochs returns an ACS instance's epoch count: the proposal matrix
// depth, or the single Inputs epoch it falls back to.
func acsEpochs(spec bvc.Spec) int {
	if len(spec.Proposals) > 0 {
		return len(spec.Proposals)
	}
	return 1
}

// acsProposal returns process i's epoch-e proposal, or nil when the
// spec does not define it.
func acsProposal(spec bvc.Spec, e, i int) bvc.Vector {
	if len(spec.Proposals) > 0 {
		if e < len(spec.Proposals) && i < len(spec.Proposals[e]) {
			return spec.Proposals[e][i]
		}
		return nil
	}
	if e == 0 && i < len(spec.Inputs) {
		return spec.Inputs[i]
	}
	return nil
}

// specNorm returns the spec's relaxation norm (0 means 2).
func specNorm(spec bvc.Spec) float64 {
	if spec.NormP == 0 {
		return 2
	}
	return spec.NormP
}

// inputSpread returns the L-infinity diameter of the honest inputs.
func inputSpread(spec bvc.Spec) float64 {
	honest := HonestIDs(spec)
	worst := 0.0
	for a := 0; a < len(honest); a++ {
		for b := a + 1; b < len(honest); b++ {
			va, vb := spec.Inputs[honest[a]], spec.Inputs[honest[b]]
			for j := 0; j < va.Dim(); j++ {
				if d := math.Abs(va[j] - vb[j]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// Check verifies one successful run against the paper's invariants for
// its protocol and returns every violation found (empty = clean run).
// The caller is responsible for classifying errors from Run itself; pass
// only a non-nil Result here.
func Check(spec bvc.Spec, res *bvc.Result, opt CheckOptions) []Violation {
	var out []Violation
	add := func(inv string, proc int, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Process: proc, Detail: fmt.Sprintf(format, args...)})
	}
	honest := HonestIDs(spec)
	nonFaulty := NonFaultyInputs(spec)
	tol := opt.tol()

	// Termination: every honest process produced a decision, within the
	// round/step budget when one is given.
	if opt.MaxRounds > 0 && res.Rounds > opt.MaxRounds {
		add("termination", -1, "rounds %d exceed budget %d", res.Rounds, opt.MaxRounds)
	}
	if opt.MaxSteps > 0 && res.Steps > opt.MaxSteps {
		add("termination", -1, "steps %d exceed budget %d", res.Steps, opt.MaxSteps)
	}
	switch spec.Protocol {
	case bvc.ProtocolConvex:
		for _, i := range honest {
			if i >= len(res.Vertices) || len(res.Vertices[i]) == 0 {
				add("termination", i, "no agreed polytope")
			}
		}
	case bvc.ProtocolACS:
		// Totality: every honest process seals the whole epoch stream.
		epochs := acsEpochs(spec)
		for _, i := range honest {
			if i >= len(res.ACS) || len(res.ACS[i]) != epochs {
				got := 0
				if i < len(res.ACS) {
					got = len(res.ACS[i])
				}
				add("termination", i, "sealed %d epochs, want %d", got, epochs)
			}
		}
	default:
		for _, i := range honest {
			if i >= len(res.Outputs) || res.Outputs[i] == nil {
				add("termination", i, "never decided")
			}
		}
	}
	if len(out) > 0 {
		// Validity/agreement are meaningless on missing outputs.
		return out
	}

	// Validity, per protocol.
	switch spec.Protocol {
	case bvc.ProtocolExact, bvc.ProtocolScalar:
		for _, i := range honest {
			if !bvc.CheckExactValidity(res.Outputs[i], nonFaulty, tol) {
				add("validity", i, "output %v outside the non-faulty hull", res.Outputs[i])
			}
		}
	case bvc.ProtocolKRelaxed:
		for _, i := range honest {
			if !bvc.CheckKValidity(res.Outputs[i], nonFaulty, spec.K, tol) {
				add("validity", i, "output %v violates %d-relaxed validity", res.Outputs[i], spec.K)
			}
		}
	case bvc.ProtocolDeltaRelaxed:
		p := specNorm(spec)
		for _, i := range honest {
			if !bvc.CheckDeltaValidity(res.Outputs[i], nonFaulty, res.Delta[i], p, tol) {
				add("validity", i, "output %v outside the (%v,%v)-relaxed hull", res.Outputs[i], res.Delta[i], p)
			}
		}
	case bvc.ProtocolConvex:
		for _, i := range honest {
			if !bvc.CheckConvexValidity(res.Vertices[i], nonFaulty, tol) {
				add("validity", i, "polytope vertex outside the non-faulty hull")
			}
		}
	case bvc.ProtocolIterative:
		for _, i := range honest {
			if !bvc.CheckExactValidity(res.Outputs[i], nonFaulty, tol) {
				add("validity", i, "estimate %v left the non-faulty hull", res.Outputs[i])
			}
		}
		if n := len(res.RangeHistory); n > 1 && res.RangeHistory[n-1] > res.RangeHistory[0]+tol {
			add("validity", -1, "estimate range expanded: %v -> %v", res.RangeHistory[0], res.RangeHistory[n-1])
		}
	case bvc.ProtocolAsync:
		if spec.Mode == bvc.ModeExact {
			for _, i := range honest {
				if !bvc.CheckExactValidity(res.Outputs[i], nonFaulty, tol) {
					add("validity", i, "output %v outside the non-faulty hull", res.Outputs[i])
				}
			}
		} else {
			// Relaxed mode: outputs are averages of verified round-0
			// values, each within its process's delta of a witnessed hull;
			// the checkable guarantee is (maxDelta, p)-relaxed validity
			// with respect to every claimed round-0 value (honest inputs
			// plus whatever the Byzantine processes actually broadcast).
			claimed := make([]bvc.Vector, 0, spec.N)
			for i := 0; i < spec.N; i++ {
				v := spec.Inputs[i]
				if b, ok := spec.AsyncByzantine[i]; ok && b != nil && b.Input != nil {
					v = b.Input
				}
				claimed = append(claimed, v)
			}
			claimedSet := bvc.NewPointSet(claimed...)
			maxDelta := 0.0
			for _, i := range honest {
				if res.Delta[i] > maxDelta {
					maxDelta = res.Delta[i]
				}
			}
			p := specNorm(spec)
			for _, i := range honest {
				if !bvc.CheckDeltaValidity(res.Outputs[i], claimedSet, maxDelta, p, tol) {
					add("validity", i, "output %v outside the (%v,%v)-relaxed hull of the claimed values", res.Outputs[i], maxDelta, p)
				}
			}
		}
	case bvc.ProtocolK1Async:
		for _, i := range honest {
			if !bvc.CheckKValidity(res.Outputs[i], nonFaulty, 1, tol) {
				add("validity", i, "output %v violates 1-relaxed validity", res.Outputs[i])
			}
		}
	case bvc.ProtocolACS:
		p := specNorm(spec)
		for _, i := range honest {
			for e, ep := range res.ACS[i] {
				if ep.Epoch != e {
					add("validity", i, "epoch %d sealed out of order as %d", e, ep.Epoch)
					continue
				}
				if len(ep.Subset) < spec.N-spec.F {
					add("validity", i, "epoch %d subset %v below the n-f floor", e, ep.Subset)
				}
				if !sort.IntsAreSorted(ep.Subset) {
					add("validity", i, "epoch %d subset %v not ascending", e, ep.Subset)
				}
				if len(ep.Values) != len(ep.Subset) {
					add("validity", i, "epoch %d has %d values for %d slots", e, len(ep.Values), len(ep.Subset))
					continue
				}
				// Per-slot validity: an honest sender's agreed value is its
				// actual proposal (reliable broadcast forbids substitution).
				for k, s := range ep.Subset {
					if s < 0 || s >= spec.N {
						add("validity", i, "epoch %d subset slot %d out of range", e, s)
						continue
					}
					if _, byz := spec.ACSByzantine[s]; byz {
						continue
					}
					if want := acsProposal(spec, e, s); want != nil && !ep.Values[k].Equal(want) {
						add("validity", i, "epoch %d slot %d value %v != proposal %v", e, s, ep.Values[k], want)
					}
				}
				// Decision correctness: the sealed output is exactly the
				// public delta*_p kernel over the agreed values.
				delta, out, err := bvc.ComputeDeltaStar(bvc.NewPointSet(ep.Values...), spec.F, p)
				if err != nil {
					add("validity", i, "epoch %d kernel recompute failed: %v", e, err)
				} else if !out.Equal(ep.Output) || delta != ep.Delta {
					add("validity", i, "epoch %d decision (%v, %v) != kernel (%v, %v)", e, ep.Output, ep.Delta, out, delta)
				}
			}
		}
	}

	// Agreement.
	switch spec.Protocol {
	case bvc.ProtocolExact, bvc.ProtocolKRelaxed, bvc.ProtocolDeltaRelaxed, bvc.ProtocolScalar:
		if eps := bvc.AgreementError(res.Outputs, honest); eps > tol {
			add("agreement", -1, "honest outputs disagree by %v", eps)
		}
	case bvc.ProtocolConvex:
		for k := 1; k < len(honest); k++ {
			a, b := honest[0], honest[k]
			if !sameVertices(res.Vertices[a], res.Vertices[b], tol) {
				add("agreement", b, "polytope differs from process %d's", a)
			}
		}
	case bvc.ProtocolACS:
		// Agreement on the stream: every honest process seals the same
		// epochs with the same subsets, values and decisions, bit for bit.
		for k := 1; k < len(honest); k++ {
			a, b := honest[0], honest[k]
			if bvc.ACSFingerprint(res.ACS[a]) != bvc.ACSFingerprint(res.ACS[b]) {
				add("agreement", b, "decision stream differs from process %d's", a)
			}
		}
	case bvc.ProtocolAsync, bvc.ProtocolK1Async, bvc.ProtocolIterative:
		eps := bvc.AgreementError(res.Outputs, honest)
		if opt.Epsilon > 0 {
			if eps > opt.Epsilon {
				add("agreement", -1, "epsilon-agreement violated: %v > %v", eps, opt.Epsilon)
			}
		} else if spread := inputSpread(spec); eps > spread+tol {
			add("agreement", -1, "output spread %v exceeds the honest input spread %v", eps, spread)
		}
		if n := len(res.RoundSpread); n > 1 && res.RoundSpread[n-1] > res.RoundSpread[0]+tol {
			add("agreement", -1, "round spread expanded: %v -> %v", res.RoundSpread[0], res.RoundSpread[n-1])
		}
	}
	return out
}

func sameVertices(a, b []bvc.Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dim() != b[i].Dim() {
			return false
		}
		for j := 0; j < a[i].Dim(); j++ {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// Report is the outcome of one checked run.
type Report struct {
	// Seed is the generator seed (set by Sweep; zero for direct calls).
	Seed int64
	// Spec is the instance that ran.
	Spec bvc.Spec
	// Result is the run's outcome (nil when Err != nil).
	Result *bvc.Result
	// Err is the run's error, if any.
	Err error
	// Graceful reports that Err is a typed model-violation degradation
	// (wraps ErrDeliveryViolated): the fault pattern left the protocol's
	// delivery model and the run ended with a diagnostic instead of an
	// unguaranteed output. Not an invariant violation.
	Graceful bool
	// Violations are the invariants the run broke (successful runs only).
	Violations []Violation
	// Signature is a deterministic fingerprint of the outcome, used to
	// confirm replays reproduce the same failure.
	Signature string
}

// Failed reports whether the run is a genuine failure: an invariant
// violation or an untyped error. When strict is true, graceful
// degradations count as failures too (used by out-of-model sweeps that
// want to surface their minimal failing seed).
func (r *Report) Failed(strict bool) bool {
	if len(r.Violations) > 0 {
		return true
	}
	if r.Err == nil {
		return false
	}
	return strict || !r.Graceful
}

// RunChecked executes spec and checks the invariants of a successful
// run, classifying errors into graceful degradations versus failures.
func RunChecked(ctx context.Context, spec bvc.Spec, opt CheckOptions) *Report {
	rep := &Report{Spec: spec}
	res, err := bvc.Run(ctx, spec)
	rep.Result, rep.Err = res, err
	if err != nil {
		rep.Graceful = errors.Is(err, bvc.ErrDeliveryViolated)
	} else {
		rep.Violations = Check(spec, res, opt)
	}
	rep.Signature = signature(rep)
	return rep
}

// SignatureOf builds the deterministic outcome fingerprint of a
// caller-assembled Report (Seed/Spec/Result/Err/Violations filled in):
// the same digest RunChecked and Sweep attach. The soak engine runs
// specs through the batch engine and classifies afterwards, so it needs
// the signature separately from RunChecked.
func SignatureOf(r *Report) string { return signature(r) }

// signature builds a deterministic outcome fingerprint: protocol, error
// text, violations, outputs and fault counters — everything that must
// reproduce under replay, nothing (wall time) that may not.
func signature(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto=%s", r.Spec.Protocol)
	if r.Err != nil {
		fmt.Fprintf(&b, " err=%q", r.Err.Error())
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, " viol=%q", v.String())
	}
	if res := r.Result; res != nil {
		fmt.Fprintf(&b, " outputs=%v delta=%v", res.Outputs, res.Delta)
		if len(res.ACS) > 0 {
			// Streaming runs: fold every node's full decision stream in.
			for i, eps := range res.ACS {
				if len(eps) > 0 {
					fmt.Fprintf(&b, " acs%d=%s", i, bvc.ACSFingerprint(eps)[:16])
				}
			}
		}
		if m := res.Metrics; m != nil {
			fmt.Fprintf(&b, " faults=[%d %d %d %d %d]",
				m.LinkDrops, m.LinkDuplicates, m.LinkDelays, m.Retransmits, m.PartitionHeals)
		}
	}
	return b.String()
}

// Fingerprint runs spec with a fresh trace recorder attached and returns
// a deterministic textual digest of everything observable about the run:
// outputs, deltas, the per-run metrics snapshot (wall time zeroed) and
// the full message transcript. Two runs of the same spec must produce
// byte-identical fingerprints — the deterministic-replay contract.
func Fingerprint(ctx context.Context, spec bvc.Spec) (string, error) {
	rec := bvc.NewTraceRecorder(1 << 17)
	prev := spec.Trace
	hook := rec.Hook()
	spec.Trace = func(m bvc.Message) {
		hook(m)
		if prev != nil {
			prev(m)
		}
	}
	res, err := bvc.Run(ctx, spec)
	var b strings.Builder
	fmt.Fprintf(&b, "proto=%s\n", spec.Protocol)
	if err != nil {
		fmt.Fprintf(&b, "err=%q\n", err.Error())
	}
	if res != nil {
		fmt.Fprintf(&b, "outputs=%v\ndelta=%v\nspread=%v\nrange=%v\n",
			res.Outputs, res.Delta, res.RoundSpread, res.RangeHistory)
		if res.Metrics != nil {
			m := *res.Metrics
			m.WallNanos = 0
			j, merr := json.Marshal(m)
			if merr != nil {
				return "", merr
			}
			fmt.Fprintf(&b, "metrics=%s\n", j)
		}
	}
	b.WriteString("transcript:\n")
	rec.Dump(&b, 0)
	if err != nil && !errors.Is(err, bvc.ErrDeliveryViolated) {
		return b.String(), err
	}
	return b.String(), nil
}

// sortedSeeds returns a sorted copy.
func sortedSeeds(seeds []int64) []int64 {
	out := append([]int64(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
