package simtest

import (
	"math/rand"

	bvc "relaxedbvc"
)

// Regime selects the class of link-fault patterns GenSpec draws.
type Regime int

const (
	// RegimeNone injects no faults (Spec.Faults = nil).
	RegimeNone Regime = iota
	// RegimeWithinModel draws patterns the protocol's delivery model
	// tolerates: duplication for the lockstep-synchronous protocols;
	// bounded delays, recoverable drops, duplication and healing
	// partitions for the asynchronous ones. Runs must satisfy every
	// invariant.
	RegimeWithinModel
	// RegimeOutOfModel draws patterns that break the delivery model
	// (unrecoverable drops, unhealed partitions, synchrony violations).
	// Runs must degrade into errors wrapping ErrDeliveryViolated — never
	// hang, never emit outputs that break the invariants.
	RegimeOutOfModel
	// RegimeMixed alternates between the two by seed parity.
	RegimeMixed
)

func (r Regime) String() string {
	switch r {
	case RegimeNone:
		return "none"
	case RegimeWithinModel:
		return "within-model"
	case RegimeOutOfModel:
		return "out-of-model"
	case RegimeMixed:
		return "mixed"
	}
	return "regime(?)"
}

// FuzzConfig drives the schedule fuzzer.
type FuzzConfig struct {
	// Seeds is the number of consecutive seeds to sweep (0 = 32).
	Seeds int
	// BaseSeed offsets the seed range (sweeps run BaseSeed..BaseSeed+Seeds-1).
	BaseSeed int64
	// Protocols restricts generation (empty = the default one-shot
	// roster). ProtocolACS is generated only when listed here explicitly:
	// folding it into the default roster would shift the protocol draw of
	// every historic corpus seed.
	Protocols []bvc.Protocol
	// Regime selects the fault-pattern class.
	Regime Regime
	// StrictModelErrors counts graceful degradations (typed
	// ErrDeliveryViolated errors) as failing seeds, so out-of-model
	// sweeps report their minimal failing seed.
	StrictModelErrors bool
	// Workers bounds the batch pool (0 = GOMAXPROCS).
	Workers int
	// Check tunes the invariant checker.
	Check CheckOptions
}

func (c FuzzConfig) seeds() int {
	if c.Seeds <= 0 {
		return 32
	}
	return c.Seeds
}

func (c FuzzConfig) protocols() []bvc.Protocol {
	if len(c.Protocols) > 0 {
		return c.Protocols
	}
	return []bvc.Protocol{
		bvc.ProtocolDeltaRelaxed, bvc.ProtocolExact, bvc.ProtocolKRelaxed,
		bvc.ProtocolScalar, bvc.ProtocolConvex, bvc.ProtocolIterative,
		bvc.ProtocolAsync, bvc.ProtocolK1Async,
	}
}

// isLockstep reports whether the protocol runs on the lockstep
// synchronous engine, where only duplication is within-model.
func isLockstep(p bvc.Protocol) bool {
	switch p {
	case bvc.ProtocolAsync, bvc.ProtocolK1Async:
		return false
	}
	return true
}

// GenSpec deterministically expands one seed into a complete consensus
// instance: a protocol at the paper's process-count bound, random
// inputs, a Byzantine roster and a fault pattern of the configured
// regime. The same (seed, cfg) always yields the same Spec, and because
// the fault layer is itself seed-driven, the same run.
func GenSpec(seed int64, cfg FuzzConfig) bvc.Spec {
	rng := rand.New(rand.NewSource(seed ^ cfg.BaseSeed<<1 ^ 0x5ee55ee5))
	protos := cfg.protocols()
	spec := bvc.Spec{Protocol: protos[rng.Intn(len(protos))], F: 1}

	switch spec.Protocol {
	case bvc.ProtocolScalar:
		spec.D, spec.N = 1, 4
	case bvc.ProtocolExact, bvc.ProtocolConvex:
		spec.D = 2 + rng.Intn(2)
		spec.N = maxInt(3*spec.F+1, (spec.D+1)*spec.F+1)
	case bvc.ProtocolKRelaxed:
		spec.D = 2 + rng.Intn(2)
		spec.K = 1 + rng.Intn(spec.D)
		if spec.K == 1 {
			spec.N = 3*spec.F + 1
		} else {
			spec.N = (spec.D+1)*spec.F + 1
		}
	case bvc.ProtocolDeltaRelaxed:
		spec.D = 2 + rng.Intn(2)
		spec.N = 3*spec.F + 1
		spec.NormP = []float64{1, 2, bvc.LInf}[rng.Intn(3)]
	case bvc.ProtocolIterative:
		spec.D = 2
		spec.N = (spec.D+2)*spec.F + 1
		spec.Rounds = 3 + rng.Intn(3)
	case bvc.ProtocolAsync:
		if rng.Intn(2) == 0 {
			spec.Mode = bvc.ModeExact
			spec.D = 2
			spec.N = (spec.D+2)*spec.F + 1
		} else {
			spec.Mode = bvc.ModeRelaxed
			spec.D = 3
			spec.N = 3*spec.F + 1
		}
		spec.Rounds = 4 + rng.Intn(4)
	case bvc.ProtocolK1Async:
		spec.D = 2 + rng.Intn(3)
		spec.N = 3*spec.F + 1
		spec.Rounds = 4 + rng.Intn(4)
	case bvc.ProtocolACS:
		// Streaming decisions: the default roster excludes ACS (adding it
		// would shift every existing corpus seed), so this case is reached
		// only through an explicit Protocols filter.
		spec.D = 2 + rng.Intn(2)
		spec.N = 3*spec.F + 1
		spec.NormP = []float64{1, 2, bvc.LInf}[rng.Intn(3)]
	}

	spec.Inputs = make([]bvc.Vector, spec.N)
	for i := range spec.Inputs {
		v := make([]float64, spec.D)
		for j := range v {
			v[j] = (rng.Float64() - 0.5) * 4
		}
		spec.Inputs[i] = bvc.NewVector(v...)
	}

	// Streaming instances propose a short multi-epoch matrix; epoch 0
	// reuses Inputs so the fallback path stays covered.
	if spec.Protocol == bvc.ProtocolACS {
		epochs := 1 + rng.Intn(3)
		spec.Proposals = make([][]bvc.Vector, epochs)
		spec.Proposals[0] = spec.Inputs
		for e := 1; e < epochs; e++ {
			row := make([]bvc.Vector, spec.N)
			for i := range row {
				row[i] = randVec(rng, spec.D, 2)
			}
			spec.Proposals[e] = row
		}
	}

	// Byzantine roster: most instances script one adversary (f = 1).
	if rng.Float64() < 0.75 {
		byz := rng.Intn(spec.N)
		switch spec.Protocol {
		case bvc.ProtocolAsync, bvc.ProtocolK1Async:
			spec.AsyncByzantine = map[int]*bvc.AsyncByzantine{byz: genAsyncByz(rng, spec.D)}
		case bvc.ProtocolIterative:
			lie := randVec(rng, spec.D, 5)
			spec.IterByzantine = map[int]bvc.IterByzantine{
				byz: bvc.IterByzantineFunc(func(round, to int, honest bvc.Vector) bvc.Vector { return lie }),
			}
		case bvc.ProtocolACS:
			b := bvc.ACSEquivocate
			if rng.Intn(3) == 0 {
				b = bvc.ACSMute
			}
			spec.ACSByzantine = map[int]bvc.ACSBehavior{byz: b}
		default:
			if rng.Float64() < 0.25 {
				spec.SignedBroadcast = true
				spec.SigSeed = seed
				spec.ByzantineSigned = map[int]bvc.SignedByzantineBehavior{
					byz: bvc.SignedEquivocator(map[int]bvc.Vector{
						(byz + 1) % spec.N: randVec(rng, spec.D, 3),
						(byz + 2) % spec.N: randVec(rng, spec.D, 3),
					}),
				}
			} else {
				spec.Byzantine = map[int]bvc.ByzantineBehavior{byz: genSyncByz(rng, spec.D, seed)}
			}
		}
	}

	// Asynchronous delivery order.
	if !isLockstep(spec.Protocol) && rng.Intn(2) == 0 {
		spec.Schedule = bvc.RandomSchedule(seed ^ 0x7a5c)
	}

	spec.Faults = genFaults(rng, seed, EffectiveRegime(seed, cfg.Regime), spec.Protocol, spec.N)
	return spec
}

// EffectiveRegime resolves RegimeMixed to the concrete regime GenSpec
// applies to the given seed (even seeds draw within-model patterns, odd
// seeds out-of-model ones); other regimes pass through unchanged. The
// soak engine's coverage map and its mutation scheduler both key on the
// regime a seed actually ran under, so the parity rule lives here, next
// to the generator it describes.
func EffectiveRegime(seed int64, r Regime) Regime {
	if r != RegimeMixed {
		return r
	}
	if seed%2 == 0 {
		return RegimeWithinModel
	}
	return RegimeOutOfModel
}

func genFaults(rng *rand.Rand, seed int64, regime Regime, proto bvc.Protocol, n int) *bvc.LinkFaults {
	switch regime {
	case RegimeWithinModel:
		if isLockstep(proto) {
			// Lockstep synchrony tolerates only duplication.
			return &bvc.LinkFaults{
				Seed:        seed,
				LinkProfile: bvc.LinkProfile{DupProb: 0.2 + 0.5*rng.Float64()},
			}
		}
		lf := &bvc.LinkFaults{
			Seed: seed,
			LinkProfile: bvc.LinkProfile{
				DropProb: 0.25 * rng.Float64(),
				DupProb:  0.3 * rng.Float64(),
				DelayMax: rng.Intn(3),
			},
		}
		if rng.Float64() < 0.4 {
			start := rng.Intn(3)
			lf.Partitions = []bvc.Partition{{
				Start: start, End: start + 1 + rng.Intn(4),
				Group: []int{rng.Intn(n)},
			}}
		}
		return lf
	case RegimeOutOfModel:
		if isLockstep(proto) {
			// Any drop breaks lockstep synchrony.
			return &bvc.LinkFaults{
				Seed:        seed,
				LinkProfile: bvc.LinkProfile{DropProb: 0.5 + 0.5*rng.Float64()},
			}
		}
		if rng.Intn(2) == 0 {
			// Heavy drops with an exhausted retransmission budget.
			return &bvc.LinkFaults{
				Seed:        seed,
				LinkProfile: bvc.LinkProfile{DropProb: 0.9 + 0.1*rng.Float64()},
				MaxAttempts: 1 + rng.Intn(2),
			}
		}
		// A partition that never heals.
		return &bvc.LinkFaults{
			Seed:       seed,
			Partitions: []bvc.Partition{{Start: 0, End: -1, Group: []int{rng.Intn(n)}}},
		}
	}
	return nil
}

func genAsyncByz(rng *rand.Rand, d int) *bvc.AsyncByzantine {
	switch rng.Intn(4) {
	case 0:
		return &bvc.AsyncByzantine{Input: randVec(rng, d, 5), SilentFrom: bvc.NeverMisbehave, CorruptFrom: bvc.NeverMisbehave}
	case 1:
		return &bvc.AsyncByzantine{SilentFrom: 0, CorruptFrom: bvc.NeverMisbehave}
	case 2:
		return &bvc.AsyncByzantine{SilentFrom: 0, CorruptFrom: bvc.NeverMisbehave, MuteRBC: true}
	}
	return &bvc.AsyncByzantine{SilentFrom: bvc.NeverMisbehave, CorruptFrom: 1}
}

func genSyncByz(rng *rand.Rand, d int, seed int64) bvc.ByzantineBehavior {
	switch rng.Intn(4) {
	case 0:
		return bvc.Silent()
	case 1:
		return bvc.FixedVector(randVec(rng, d, 3))
	case 2:
		return bvc.Equivocator(randVec(rng, d, 3), randVec(rng, d, 3))
	}
	return bvc.RandomLiar(seed, d, 3)
}

func randVec(rng *rand.Rand, d int, scale float64) bvc.Vector {
	v := make([]float64, d)
	for j := range v {
		v[j] = (rng.Float64() - 0.5) * 2 * scale
	}
	return bvc.NewVector(v...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
