package simtest

import (
	"context"
	"errors"
	"fmt"
	"io"

	bvc "relaxedbvc"
)

// SweepResult is the outcome of one fuzzing sweep.
type SweepResult struct {
	// Reports holds one checked run per seed, in seed order.
	Reports []*Report
	// Passed, Degraded and Failed partition the seeds: clean runs,
	// graceful typed-error degradations, and genuine failures (invariant
	// violations or untyped errors). Under StrictModelErrors the
	// degradations are counted in Failed instead.
	Passed, Degraded, Failed int
	// FailingSeeds are the failing seeds, ascending.
	FailingSeeds []int64
	// MinFailingSeed is FailingSeeds[0] (0 when there are none) — the
	// shrunk, minimal reproducer.
	MinFailingSeed int64
	// MinFailingReport is the report of the minimal failing seed.
	MinFailingReport *Report
	// ReplayConfirmed reports that re-running the minimal failing seed
	// twice reproduced the identical failure signature.
	ReplayConfirmed bool
}

// Sweep runs the schedule fuzzer: seeds BaseSeed..BaseSeed+Seeds-1 are
// expanded with GenSpec, executed concurrently on the batch engine and
// checked against the invariants. If any seed fails, the sweep shrinks
// to the minimal failing seed and replays it twice to confirm the
// failure signature reproduces (deterministic replay).
func Sweep(ctx context.Context, cfg FuzzConfig) *SweepResult {
	n := cfg.seeds()
	seeds := make([]int64, n)
	specs := make([]bvc.Spec, n)
	for i := 0; i < n; i++ {
		seeds[i] = cfg.BaseSeed + int64(i)
		specs[i] = GenSpec(seeds[i], cfg)
	}
	batch := bvc.RunBatch(ctx, bvc.BatchOptions{Workers: cfg.Workers}, specs)

	sw := &SweepResult{Reports: make([]*Report, n)}
	for i, br := range batch {
		rep := &Report{Seed: seeds[i], Spec: specs[i], Result: br.Result, Err: br.Err}
		if br.Err != nil {
			rep.Graceful = isGraceful(br.Err)
		} else if br.Result != nil {
			rep.Violations = Check(specs[i], br.Result, cfg.Check)
		}
		rep.Signature = signature(rep)
		sw.Reports[i] = rep
		switch {
		case rep.Failed(cfg.StrictModelErrors):
			sw.Failed++
			sw.FailingSeeds = append(sw.FailingSeeds, seeds[i])
		case rep.Err != nil:
			sw.Degraded++
		default:
			sw.Passed++
		}
	}
	sw.FailingSeeds = sortedSeeds(sw.FailingSeeds)
	if len(sw.FailingSeeds) > 0 {
		sw.MinFailingSeed = sw.FailingSeeds[0]
		for _, r := range sw.Reports {
			if r.Seed == sw.MinFailingSeed {
				sw.MinFailingReport = r
				break
			}
		}
		sw.ReplayConfirmed = confirmReplay(ctx, cfg, sw.MinFailingReport)
	}
	return sw
}

// isGraceful reports whether err is a typed model-violation degradation.
func isGraceful(err error) bool {
	return errors.Is(err, bvc.ErrDeliveryViolated)
}

// confirmReplay re-runs the minimal failing seed twice and checks both
// replays reproduce the original failure signature byte-for-byte.
func confirmReplay(ctx context.Context, cfg FuzzConfig, orig *Report) bool {
	for i := 0; i < 2; i++ {
		spec := GenSpec(orig.Seed, cfg)
		rep := RunChecked(ctx, spec, cfg.Check)
		rep.Seed = orig.Seed
		if rep.Signature != orig.Signature {
			return false
		}
	}
	return true
}

// Render writes a one-screen summary of the sweep.
func (s *SweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "sweep: %d seeds — %d passed, %d degraded (typed), %d failed\n",
		len(s.Reports), s.Passed, s.Degraded, s.Failed)
	if s.Failed > 0 {
		fmt.Fprintf(w, "minimal failing seed: %d (replay confirmed: %v)\n", s.MinFailingSeed, s.ReplayConfirmed)
		if r := s.MinFailingReport; r != nil {
			fmt.Fprintf(w, "  protocol %s", r.Spec.Protocol)
			if r.Err != nil {
				fmt.Fprintf(w, ", err: %v", r.Err)
			}
			fmt.Fprintln(w)
			for _, v := range r.Violations {
				fmt.Fprintf(w, "  %s\n", v)
			}
		}
	}
}
