package simtest

import (
	"context"
	"testing"

	bvc "relaxedbvc"
)

// TestConvexCorpusRegressions replays the two soak-discovered convex
// reproducers (previously corpus/fail-4f843d08ca220544.json and
// corpus/fail-6f066e70341e226f.json, both at n=5/f=1/d=3 under
// within-model duplication). Both had the same root cause: at the
// Tverberg existence floor n=(d+1)f+1, Gamma(S) is generically a single
// degenerate point and the support LP either reported spurious
// infeasibility (seed 43596, "Gamma(S) is empty") or returned an
// "optimal" vertex outside the intersection (seed 38192, hull-validity
// violations). The protocol now validates each support point against
// every dropped-subset hull and substitutes a certified Gamma anchor, so
// the exact generated specs must pass cleanly.
func TestConvexCorpusRegressions(t *testing.T) {
	for _, seed := range []int64{43596, 38192} {
		cfg := FuzzConfig{Regime: RegimeMixed}
		spec := GenSpec(seed, cfg)
		if spec.Protocol != bvc.ProtocolConvex {
			t.Fatalf("seed %d no longer generates a convex spec (generator drifted)", seed)
		}
		if spec.N != 5 || spec.F != 1 || spec.D != 3 {
			t.Fatalf("seed %d generates n=%d f=%d d=%d, want the degenerate 5/1/3 regime", seed, spec.N, spec.F, spec.D)
		}
		rep := RunChecked(context.Background(), spec, CheckOptions{})
		if rep.Failed(false) {
			t.Fatalf("seed %d regressed: %s", seed, rep.Signature)
		}
	}
}
