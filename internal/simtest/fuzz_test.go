package simtest

import (
	"context"
	"errors"
	"testing"
	"time"

	bvc "relaxedbvc"
)

// FuzzConsensusFaults is the consensus-level fuzz target: the fuzzer
// mutates (seed, fault regime, Byzantine roster salt), each triple
// deterministically expands into a full protocol instance via GenSpec,
// and the oracle is the simtest invariant checker —
//
//   - within-model (and fault-free) instances must complete and satisfy
//     validity, agreement and termination;
//   - out-of-model instances must degrade into typed errors, never
//     hang, panic or emit invariant-violating outputs.
//
// Run with: go test -run=^$ -fuzz=FuzzConsensusFaults ./internal/simtest
func FuzzConsensusFaults(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(3))
	f.Add(int64(42), uint8(2), uint8(9))
	f.Add(int64(3000), uint8(2), uint8(0))
	f.Add(int64(1000), uint8(1), uint8(77))
	f.Fuzz(func(t *testing.T, seed int64, regime, roster uint8) {
		cfg := FuzzConfig{Regime: Regime(regime % 3)}
		// The roster byte salts the seed so the fuzzer can vary the
		// Byzantine cast independently of the fault pattern.
		s := seed ^ int64(roster)<<40
		spec := GenSpec(s, cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rep := RunChecked(ctx, spec, cfg.Check)
		if rep.Err != nil {
			if errors.Is(rep.Err, bvc.ErrCanceled) {
				t.Skipf("seed %d: timed out under fuzzing load", s)
			}
			if cfg.Regime != RegimeOutOfModel {
				t.Fatalf("seed %d regime %v (%s): run errored inside the delivery model: %v",
					s, cfg.Regime, spec.Protocol, rep.Err)
			}
			if !typedError(rep.Err) {
				t.Fatalf("seed %d (%s): untyped degradation: %v", s, spec.Protocol, rep.Err)
			}
			return
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d regime %v (%s): %s", s, cfg.Regime, spec.Protocol, v)
		}
	})
}

// FuzzACS fuzzes the streaming ACS decision layer in isolation: each
// (seed, regime) pair expands into a multi-epoch ACS instance — random
// proposal matrix, an optional scripted equivocator or mute node, and a
// lockstep fault pattern — and the oracle enforces the extended stream
// invariants (totality, agreement on every epoch's subset/values/
// decision, |subset| >= n-f, per-slot validity, kernel-exact outputs).
//
// Run with: go test -run=^$ -fuzz=FuzzACS ./internal/simtest
func FuzzACS(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(2), uint8(1))
	f.Add(int64(9), uint8(2))
	f.Add(int64(64), uint8(1))
	f.Add(int64(501), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, regime uint8) {
		cfg := FuzzConfig{
			Regime:    Regime(regime % 3),
			Protocols: []bvc.Protocol{bvc.ProtocolACS},
		}
		spec := GenSpec(seed, cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rep := RunChecked(ctx, spec, cfg.Check)
		if rep.Err != nil {
			if errors.Is(rep.Err, bvc.ErrCanceled) {
				t.Skipf("seed %d: timed out under fuzzing load", seed)
			}
			if cfg.Regime != RegimeOutOfModel {
				t.Fatalf("seed %d regime %v: ACS run errored inside the delivery model: %v",
					seed, cfg.Regime, rep.Err)
			}
			if !typedError(rep.Err) {
				t.Fatalf("seed %d: untyped ACS degradation: %v", seed, rep.Err)
			}
			return
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d regime %v: %s", seed, cfg.Regime, v)
		}
	})
}
