package simtest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	bvc "relaxedbvc"
)

// faultySpec returns a small async instance with a within-model fault
// cocktail: drops (recoverable), duplication, bounded delays and a
// healing partition.
func faultySpec() bvc.Spec {
	return bvc.Spec{
		Protocol: bvc.ProtocolAsync,
		N:        4, F: 1, D: 3,
		Inputs: []bvc.Vector{
			bvc.NewVector(0, 0, 0), bvc.NewVector(1, 0, 1),
			bvc.NewVector(0, 1, 1), bvc.NewVector(1, 1, 0),
		},
		Rounds: 5,
		Faults: &bvc.LinkFaults{
			Seed:        99,
			LinkProfile: bvc.LinkProfile{DropProb: 0.2, DupProb: 0.2, DelayMax: 2},
			Partitions:  []bvc.Partition{{Start: 1, End: 4, Group: []int{2}}},
		},
	}
}

func TestGenSpecDeterministic(t *testing.T) {
	cfg := FuzzConfig{Regime: RegimeMixed}
	for seed := int64(0); seed < 20; seed++ {
		a := GenSpec(seed, cfg)
		b := GenSpec(seed, cfg)
		ka := fmt.Sprintf("%s n=%d f=%d d=%d k=%d p=%v r=%d in=%v fl=%+v",
			a.Protocol, a.N, a.F, a.D, a.K, a.NormP, a.Rounds, a.Inputs, a.Faults)
		kb := fmt.Sprintf("%s n=%d f=%d d=%d k=%d p=%v r=%d in=%v fl=%+v",
			b.Protocol, b.N, b.F, b.D, b.K, b.NormP, b.Rounds, b.Inputs, b.Faults)
		if ka != kb {
			t.Fatalf("seed %d: GenSpec not deterministic:\n%s\n%s", seed, ka, kb)
		}
	}
}

func TestReplayDeterminism(t *testing.T) {
	// The core replay contract: the same Spec (same fault seed) yields a
	// byte-identical fingerprint — outputs, metrics and full transcript.
	ctx := context.Background()
	first, err := Fingerprint(ctx, faultySpec())
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !strings.Contains(first, "transcript:\n#") {
		t.Fatalf("fingerprint has no transcript:\n%s", first)
	}
	for i := 0; i < 2; i++ {
		again, err := Fingerprint(ctx, faultySpec())
		if err != nil {
			t.Fatalf("replay %d failed: %v", i, err)
		}
		if again != first {
			t.Fatalf("replay %d diverged:\n--- first ---\n%s\n--- replay ---\n%s", i, first, again)
		}
	}
}

func TestRunCheckedCleanRun(t *testing.T) {
	rep := RunChecked(context.Background(), faultySpec(), CheckOptions{})
	if rep.Err != nil {
		t.Fatalf("within-model run errored: %v", rep.Err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations on a clean run: %v", rep.Violations)
	}
	if rep.Failed(true) {
		t.Fatal("clean run classified as failed")
	}
	m := rep.Result.Metrics
	if m.LinkDrops == 0 && m.LinkDuplicates == 0 && m.LinkDelays == 0 {
		t.Fatalf("fault counters empty despite injected faults: %+v", m)
	}
}

func TestWithinModelSweepPasses(t *testing.T) {
	// Every within-model seed must satisfy the paper's invariants: no
	// violations, no errors, across all protocols.
	sw := Sweep(context.Background(), FuzzConfig{
		Seeds: 32, BaseSeed: 1000, Regime: RegimeWithinModel, StrictModelErrors: true,
	})
	if sw.Failed != 0 || sw.Degraded != 0 {
		for _, r := range sw.Reports {
			if r.Failed(true) || r.Err != nil {
				t.Errorf("seed %d (%s): err=%v violations=%v", r.Seed, r.Spec.Protocol, r.Err, r.Violations)
			}
		}
		t.Fatalf("within-model sweep: %d failed, %d degraded of %d", sw.Failed, sw.Degraded, len(sw.Reports))
	}
	if sw.Passed != len(sw.Reports) {
		t.Fatalf("passed %d != %d", sw.Passed, len(sw.Reports))
	}
}

func TestNoFaultSweepPasses(t *testing.T) {
	sw := Sweep(context.Background(), FuzzConfig{
		Seeds: 16, BaseSeed: 2000, Regime: RegimeNone, StrictModelErrors: true,
	})
	if sw.Failed != 0 || sw.Degraded != 0 {
		for _, r := range sw.Reports {
			if r.Err != nil || len(r.Violations) > 0 {
				t.Errorf("seed %d (%s): err=%v violations=%v", r.Seed, r.Spec.Protocol, r.Err, r.Violations)
			}
		}
		t.Fatal("fault-free sweep did not pass cleanly")
	}
}

func TestOutOfModelSweepReportsMinimalSeed(t *testing.T) {
	// Out-of-model patterns must degrade into typed errors; with
	// StrictModelErrors the sweep surfaces the minimal failing seed and
	// confirms its replay.
	sw := Sweep(context.Background(), FuzzConfig{
		Seeds: 16, BaseSeed: 3000, Regime: RegimeOutOfModel, StrictModelErrors: true,
	})
	if sw.Failed == 0 {
		t.Fatal("out-of-model sweep found no failing seed")
	}
	if sw.MinFailingSeed != sw.FailingSeeds[0] {
		t.Fatalf("MinFailingSeed %d != FailingSeeds[0] %d", sw.MinFailingSeed, sw.FailingSeeds[0])
	}
	if sw.MinFailingReport == nil || sw.MinFailingReport.Seed != sw.MinFailingSeed {
		t.Fatal("minimal failing report missing or mismatched")
	}
	if !sw.ReplayConfirmed {
		t.Fatalf("minimal failing seed %d did not replay to the same signature", sw.MinFailingSeed)
	}
	// Degradations must be typed — never silent wrong outputs.
	for _, r := range sw.Reports {
		if len(r.Violations) > 0 {
			t.Errorf("seed %d (%s): out-of-model run emitted outputs violating invariants: %v",
				r.Seed, r.Spec.Protocol, r.Violations)
		}
		if r.Err != nil && !typedError(r.Err) {
			t.Errorf("seed %d (%s): untyped error: %v", r.Seed, r.Spec.Protocol, r.Err)
		}
	}
	var buf strings.Builder
	sw.Render(&buf)
	if !strings.Contains(buf.String(), "minimal failing seed") {
		t.Fatalf("Render missing the minimal seed line:\n%s", buf.String())
	}
}

// typedError reports whether err wraps one of the library's sentinels.
func typedError(err error) bool {
	for _, s := range []error{
		bvc.ErrDeliveryViolated, bvc.ErrEmptyIntersection, bvc.ErrCanceled,
		bvc.ErrBadFaults, bvc.ErrBadInputs, bvc.ErrTooFewProcesses,
		bvc.ErrTooManyFaults, bvc.ErrBadDimension, bvc.ErrBadRounds,
		bvc.ErrBadNorm, bvc.ErrBadK,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

func TestPlantedViolationsDetected(t *testing.T) {
	spec := bvc.Spec{
		Protocol: bvc.ProtocolExact,
		N:        4, F: 1, D: 2,
		Inputs: []bvc.Vector{
			bvc.NewVector(0, 0), bvc.NewVector(1, 0),
			bvc.NewVector(0, 1), bvc.NewVector(1, 1),
		},
	}
	in := bvc.NewVector(0.5, 0.5)
	far := bvc.NewVector(50, 50)

	// Termination: a missing honest output.
	res := &bvc.Result{Outputs: []bvc.Vector{in, in, in, nil}}
	if vs := Check(spec, res, CheckOptions{}); len(vs) == 0 || vs[0].Invariant != "termination" {
		t.Fatalf("missing output not flagged: %v", vs)
	}
	// Validity: an output outside the non-faulty hull.
	res = &bvc.Result{Outputs: []bvc.Vector{far, far, far, far}}
	if vs := Check(spec, res, CheckOptions{}); !hasInvariant(vs, "validity") {
		t.Fatalf("hull escape not flagged: %v", vs)
	}
	// Agreement: honest outputs that differ.
	res = &bvc.Result{Outputs: []bvc.Vector{in, bvc.NewVector(0.9, 0.9), in, in}}
	if vs := Check(spec, res, CheckOptions{}); !hasInvariant(vs, "agreement") {
		t.Fatalf("disagreement not flagged: %v", vs)
	}
	// A correct run passes.
	res = &bvc.Result{Outputs: []bvc.Vector{in, in, in, in}}
	if vs := Check(spec, res, CheckOptions{}); len(vs) != 0 {
		t.Fatalf("clean planted run flagged: %v", vs)
	}
}

func TestACSWithinModelSweepPasses(t *testing.T) {
	// Streaming ACS seeds under within-model (duplication-only) faults
	// must seal every epoch and satisfy the extended stream invariants.
	sw := Sweep(context.Background(), FuzzConfig{
		Seeds: 24, BaseSeed: 5000, Regime: RegimeWithinModel, StrictModelErrors: true,
		Protocols: []bvc.Protocol{bvc.ProtocolACS},
	})
	if sw.Failed != 0 || sw.Degraded != 0 {
		for _, r := range sw.Reports {
			if r.Failed(true) || r.Err != nil {
				t.Errorf("seed %d: err=%v violations=%v", r.Seed, r.Err, r.Violations)
			}
		}
		t.Fatalf("ACS within-model sweep: %d failed, %d degraded of %d", sw.Failed, sw.Degraded, len(sw.Reports))
	}
}

func TestACSOutOfModelDegradesTyped(t *testing.T) {
	// Drops break lockstep synchrony: ACS runs must end in typed
	// ErrDeliveryViolated degradations, never hang or emit a stream that
	// breaks the invariants.
	sw := Sweep(context.Background(), FuzzConfig{
		Seeds: 16, BaseSeed: 6000, Regime: RegimeOutOfModel,
		Protocols: []bvc.Protocol{bvc.ProtocolACS},
	})
	for _, r := range sw.Reports {
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: out-of-model ACS run emitted a violating stream: %v", r.Seed, r.Violations)
		}
		if r.Err != nil && !typedError(r.Err) {
			t.Errorf("seed %d: untyped error: %v", r.Seed, r.Err)
		}
	}
}

func TestPlantedACSViolationsDetected(t *testing.T) {
	// The extended oracle must bite: tamper with a genuine run's stream
	// and watch each invariant trip.
	cfg := FuzzConfig{Protocols: []bvc.Protocol{bvc.ProtocolACS}}
	spec := GenSpec(5042, cfg) // fault-free (RegimeNone default)
	res, err := bvc.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if vs := Check(spec, res, CheckOptions{}); len(vs) != 0 {
		t.Fatalf("genuine run flagged: %v", vs)
	}
	honest := HonestIDs(spec)
	tamper := func(mutate func(r *bvc.Result)) []Violation {
		clone := *res
		clone.ACS = make([][]bvc.ACSEpoch, len(res.ACS))
		for i := range res.ACS {
			clone.ACS[i] = make([]bvc.ACSEpoch, len(res.ACS[i]))
			for e := range res.ACS[i] {
				ep := res.ACS[i][e]
				ep.Subset = append([]int(nil), ep.Subset...)
				ep.Values = append([]bvc.Vector(nil), ep.Values...)
				clone.ACS[i][e] = ep
			}
		}
		mutate(&clone)
		return Check(spec, &clone, CheckOptions{})
	}

	i0 := honest[0]
	if vs := tamper(func(r *bvc.Result) { r.ACS[i0] = r.ACS[i0][:len(r.ACS[i0])-1] }); !hasInvariant(vs, "termination") {
		t.Fatalf("truncated stream not flagged: %v", vs)
	}
	if vs := tamper(func(r *bvc.Result) { r.ACS[i0][0].Subset = r.ACS[i0][0].Subset[:2] }); !hasInvariant(vs, "validity") {
		t.Fatalf("undersized subset not flagged: %v", vs)
	}
	if vs := tamper(func(r *bvc.Result) {
		r.ACS[i0][0].Values[0] = bvc.NewVector(make([]float64, spec.D)...)
	}); !hasInvariant(vs, "validity") {
		t.Fatalf("substituted slot value not flagged: %v", vs)
	}
	if vs := tamper(func(r *bvc.Result) { r.ACS[i0][0].Delta += 0.25 }); !hasInvariant(vs, "validity") {
		t.Fatalf("kernel-divergent decision not flagged: %v", vs)
	}
	if len(honest) > 1 {
		i1 := honest[1]
		if vs := tamper(func(r *bvc.Result) { r.ACS[i1][0].Epoch = 7 }); !hasInvariant(vs, "agreement") && !hasInvariant(vs, "validity") {
			t.Fatalf("diverging stream not flagged: %v", vs)
		}
	}
}

func hasInvariant(vs []Violation, inv string) bool {
	for _, v := range vs {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

func TestSweepBatchMatchesDirectRuns(t *testing.T) {
	// The sweep runs specs on the concurrent batch engine; signatures
	// must match a direct sequential run of the same seeds.
	cfg := FuzzConfig{Seeds: 8, BaseSeed: 4000, Regime: RegimeMixed, Workers: 4}
	sw := Sweep(context.Background(), cfg)
	for _, r := range sw.Reports {
		direct := RunChecked(context.Background(), GenSpec(r.Seed, cfg), cfg.Check)
		if direct.Signature != r.Signature {
			t.Fatalf("seed %d: batch signature diverged from direct run:\n%s\n%s",
				r.Seed, r.Signature, direct.Signature)
		}
	}
}
