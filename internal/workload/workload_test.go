package workload

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/linalg"
	"relaxedbvc/internal/vec"
)

func TestUniformCubeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformCube(rng, 50, 3, 2)
	if len(pts) != 50 {
		t.Fatal("count")
	}
	for _, p := range pts {
		for _, x := range p {
			if x < -2 || x > 2 {
				t.Fatalf("out of cube: %v", p)
			}
		}
	}
}

func TestSphereRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range Sphere(rng, 30, 4, 3) {
		if math.Abs(p.Norm2()-3) > 1e-9 {
			t.Fatalf("not on sphere: %v", p.Norm2())
		}
	}
}

func TestClusteredOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := Clustered(rng, 10, 3, 2, 0.01, 100)
	s := vec.NewSet(pts[:8]...)
	if s.MaxEdge(2) > 1 {
		t.Errorf("cluster too spread: %v", s.MaxEdge(2))
	}
	// Outliers should be far from the cluster.
	c := vec.Mean(pts[:8])
	for _, o := range pts[8:] {
		if o.Dist2(c) < 1 {
			t.Log("outlier unusually close (possible but unlikely); acceptable")
		}
	}
}

func TestMomentCurveGeneralPosition(t *testing.T) {
	// Any d+1 distinct moment-curve points are affinely independent.
	d := 4
	pts := MomentCurve(d+1, d, 0.1, 0.3)
	if !linalg.AffinelyIndependent(pts) {
		t.Fatal("moment curve points affinely dependent")
	}
}

func TestStandardSimplex(t *testing.T) {
	pts := StandardSimplex(3)
	if len(pts) != 4 || !linalg.AffinelyIndependent(pts) {
		t.Fatal("standard simplex malformed")
	}
}

func TestAffinelyDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := AffinelyDependent(rng, 4, 5, 2, 1)
	if linalg.AffinelyIndependent(pts) {
		// 4 points in a 2-dim subspace: differences have rank <= 2 < 3.
		t.Fatal("points unexpectedly affinely independent")
	}
}

func TestTheorem3MatrixShape(t *testing.T) {
	d := 4
	gamma, eps := 1.0, 0.5
	cols := Theorem3Matrix(d, gamma, eps)
	if len(cols) != d+1 {
		t.Fatalf("columns = %d", len(cols))
	}
	// Column i: zeros above diagonal, gamma at i, eps below.
	for i := 0; i < d; i++ {
		for r := 0; r < d; r++ {
			want := eps
			if r < i {
				want = 0
			} else if r == i {
				want = gamma
			}
			if cols[i][r] != want {
				t.Fatalf("col %d row %d = %v, want %v", i, r, cols[i][r], want)
			}
		}
	}
	for r := 0; r < d; r++ {
		if cols[d][r] != -gamma {
			t.Fatalf("last column row %d = %v", r, cols[d][r])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid params did not panic")
		}
	}()
	Theorem3Matrix(d, 1, 2)
}

func TestTheorem4MatrixShape(t *testing.T) {
	d := 3
	cols := Theorem4Matrix(d, 1, 0.2)
	if len(cols) != d+2 {
		t.Fatalf("columns = %d", len(cols))
	}
	if cols[1][2] != 0.4 { // 2*eps below diagonal
		t.Errorf("below-diagonal = %v, want 0.4", cols[1][2])
	}
	if !cols[d+1].Equal(vec.New(d)) {
		t.Error("last column not zero")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid params did not panic")
		}
	}()
	Theorem4Matrix(d, 0.3, 0.2)
}

func TestTheorem5And6Matrices(t *testing.T) {
	d := 3
	cols := Theorem5Matrix(d, 10)
	if len(cols) != d+1 {
		t.Fatal("Theorem5Matrix size")
	}
	for i := 0; i < d; i++ {
		for r := 0; r < d; r++ {
			want := 0.0
			if r == i {
				want = 10
			}
			if cols[i][r] != want {
				t.Fatalf("T5 col %d row %d", i, r)
			}
		}
	}
	cols6 := Theorem6Matrix(d, 10)
	if len(cols6) != d+2 || !cols6[d+1].Equal(vec.New(d)) {
		t.Fatal("Theorem6Matrix shape")
	}
}

func TestRingScenarioInputs(t *testing.T) {
	z, o := RingScenarioInputs(3)
	if !z.Equal(vec.Of(0, 0, 0)) || !o.Equal(vec.Of(1, 1, 1)) {
		t.Fatal("ring inputs wrong")
	}
}

func TestPerturbDuplicate(t *testing.T) {
	pts := []vec.V{vec.Of(1), vec.Of(2), vec.Of(3)}
	out := PerturbDuplicate(pts, 0, 2)
	if !out[0].Equal(vec.Of(3)) || !pts[0].Equal(vec.Of(1)) {
		t.Fatal("PerturbDuplicate wrong or mutated input")
	}
}

func TestGeneratorsDeterministicWithSeed(t *testing.T) {
	for _, name := range GeneratorNames() {
		g := Generators()[name]
		if g == nil {
			t.Fatalf("missing generator %q", name)
		}
		a := g(rand.New(rand.NewSource(9)), 5, 3)
		b := g(rand.New(rand.NewSource(9)), 5, 3)
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s not deterministic", name)
			}
		}
	}
}
