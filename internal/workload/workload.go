// Package workload generates the input configurations the experiments
// run on: random distributions (cube, Gaussian, sphere, clustered), the
// moment-curve and simplex configurations that witness Tverberg
// tightness, and — most importantly — the exact adversarial input
// matrices from the paper's impossibility proofs (Theorems 3, 4, 5, 6).
package workload

import (
	"math/rand"

	"relaxedbvc/internal/vec"
)

// UniformCube returns n points uniform in [-scale, scale]^d.
func UniformCube(rng *rand.Rand, n, d int, scale float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = (2*rng.Float64() - 1) * scale
		}
	}
	return pts
}

// Gaussian returns n points from N(0, scale^2 I_d).
func Gaussian(rng *rand.Rand, n, d int, scale float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		pts[i] = vec.New(d)
		for j := range pts[i] {
			pts[i][j] = rng.NormFloat64() * scale
		}
	}
	return pts
}

// Sphere returns n points uniform on the sphere of the given radius.
func Sphere(rng *rand.Rand, n, d int, radius float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		v := vec.New(d)
		for {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if nrm := v.Norm2(); nrm > 1e-12 {
				pts[i] = v.Scale(radius / nrm)
				break
			}
		}
	}
	return pts
}

// Clustered returns n points in a tight cluster of the given spread
// around a random center, with `outliers` of them moved far away — the
// sensor-fusion-style workload of the paper's motivation (mostly
// agreeing sensors plus a few wild readings).
func Clustered(rng *rand.Rand, n, d, outliers int, spread, far float64) []vec.V {
	center := vec.New(d)
	for j := range center {
		center[j] = rng.NormFloat64() * far / 4
	}
	pts := make([]vec.V, n)
	for i := range pts {
		p := center.Clone()
		for j := range p {
			p[j] += rng.NormFloat64() * spread
		}
		pts[i] = p
	}
	for k := 0; k < outliers && k < n; k++ {
		i := n - 1 - k
		for j := range pts[i] {
			pts[i][j] = center[j] + rng.NormFloat64()*far
		}
	}
	return pts
}

// MomentCurve returns n points on the d-dimensional moment curve
// (t, t^2, ..., t^d) at distinct parameters — points in general position,
// the classical witness family for tightness results.
func MomentCurve(n, d int, t0, dt float64) []vec.V {
	pts := make([]vec.V, n)
	for i := range pts {
		t := t0 + float64(i)*dt
		p := vec.New(d)
		x := t
		for j := 0; j < d; j++ {
			p[j] = x
			x *= t
		}
		pts[i] = p
	}
	return pts
}

// StandardSimplex returns the d+1 vertices 0, e_1, ..., e_d in R^d.
func StandardSimplex(d int) []vec.V {
	pts := make([]vec.V, d+1)
	pts[0] = vec.New(d)
	for i := 1; i <= d; i++ {
		e := vec.New(d)
		e[i-1] = 1
		pts[i] = e
	}
	return pts
}

// AffinelyDependent returns n points (n <= d+1) confined to a random
// proper subspace of dimension subDim < n-1, the Theorem 8 configuration
// where delta* = 0.
func AffinelyDependent(rng *rand.Rand, n, d, subDim int, scale float64) []vec.V {
	basis := Gaussian(rng, subDim, d, 1)
	origin := Gaussian(rng, 1, d, scale)[0]
	pts := make([]vec.V, n)
	for i := range pts {
		p := origin.Clone()
		for _, b := range basis {
			p.AXPY(rng.NormFloat64()*scale, b)
		}
		pts[i] = p
	}
	return pts
}

// Theorem3Matrix returns the d x (d+1) adversarial input family from the
// proof of Theorem 3 (k-relaxed exact BVC, synchronous): column i
// (1 <= i <= d) has zeros above the diagonal, gamma on it, eps below;
// column d+1 is all -gamma. Requires 0 < eps <= gamma. With n = d+1 and
// f = 1 these inputs make Psi_2(Y) empty.
func Theorem3Matrix(d int, gamma, eps float64) []vec.V {
	if !(0 < eps && eps <= gamma) {
		panic("workload: Theorem3Matrix requires 0 < eps <= gamma")
	}
	cols := make([]vec.V, d+1)
	for i := 0; i < d; i++ {
		c := vec.New(d)
		for r := 0; r < d; r++ {
			switch {
			case r < i:
				c[r] = 0
			case r == i:
				c[r] = gamma
			default:
				c[r] = eps
			}
		}
		cols[i] = c
	}
	last := vec.New(d)
	for r := range last {
		last[r] = -gamma
	}
	cols[d] = last
	return cols
}

// Theorem4Matrix returns the d x (d+2) input family from the proof of
// Theorem 4 (Appendix B; k-relaxed approximate BVC, asynchronous):
// columns 1..d as in Theorem 3 but with 2*eps below the diagonal, column
// d+1 all -gamma, column d+2 all zero. Requires 0 < 2*eps < gamma.
func Theorem4Matrix(d int, gamma, eps float64) []vec.V {
	if !(0 < 2*eps && 2*eps < gamma) {
		panic("workload: Theorem4Matrix requires 0 < 2*eps < gamma")
	}
	cols := make([]vec.V, d+2)
	for i := 0; i < d; i++ {
		c := vec.New(d)
		for r := 0; r < d; r++ {
			switch {
			case r < i:
				c[r] = 0
			case r == i:
				c[r] = gamma
			default:
				c[r] = 2 * eps
			}
		}
		cols[i] = c
	}
	minus := vec.New(d)
	for r := range minus {
		minus[r] = -gamma
	}
	cols[d] = minus
	cols[d+1] = vec.New(d)
	return cols
}

// Theorem5Matrix returns the d x (d+1) input family from the proof of
// Theorem 5 ((delta,p)-relaxed exact BVC with constant delta): the i-th
// input is x * e_i for 1 <= i <= d, and the (d+1)-th input is the zero
// vector. The proof requires x > 2*d*delta.
func Theorem5Matrix(d int, x float64) []vec.V {
	cols := make([]vec.V, d+1)
	for i := 0; i < d; i++ {
		c := vec.New(d)
		c[i] = x
		cols[i] = c
	}
	cols[d] = vec.New(d)
	return cols
}

// Theorem6Matrix returns the d x (d+2) input family from the proof of
// Theorem 6 (Appendix C; asynchronous constant-delta case): x * e_i for
// 1 <= i <= d plus two all-zero inputs. The proof requires
// x > 2*d*delta + eps.
func Theorem6Matrix(d int, x float64) []vec.V {
	cols := Theorem5Matrix(d, x)
	return append(cols, vec.New(len(cols[0])))
}

// RingScenarioInputs returns the Figure 1 / Lemma 10 inputs: the 0-vector
// and 1-vector in dimension d, used by the three-scenario impossibility
// simulation for n <= 3f.
func RingScenarioInputs(d int) (zero, one vec.V) {
	zero = vec.New(d)
	one = vec.New(d)
	for i := range one {
		one[i] = 1
	}
	return zero, one
}

// PerturbDuplicate returns a copy of pts with point i replaced by a copy
// of point j (creating a repeated point in the multiset).
func PerturbDuplicate(pts []vec.V, i, j int) []vec.V {
	out := make([]vec.V, len(pts))
	for k, p := range pts {
		out[k] = p.Clone()
	}
	out[i] = out[j].Clone()
	return out
}

// Name-indexed random generators, used by the benchmark harness to sweep
// workload families.
type Generator func(rng *rand.Rand, n, d int) []vec.V

// Generators returns the named random input families at unit scale.
func Generators() map[string]Generator {
	return map[string]Generator{
		"cube": func(rng *rand.Rand, n, d int) []vec.V {
			return UniformCube(rng, n, d, 1)
		},
		"gauss": func(rng *rand.Rand, n, d int) []vec.V {
			return Gaussian(rng, n, d, 1)
		},
		"sphere": func(rng *rand.Rand, n, d int) []vec.V {
			return Sphere(rng, n, d, 1)
		},
		"cluster": func(rng *rand.Rand, n, d int) []vec.V {
			return Clustered(rng, n, d, 1, 0.05, 1)
		},
	}
}

// GeneratorNames returns the generator names in deterministic order.
func GeneratorNames() []string { return []string{"cube", "gauss", "sphere", "cluster"} }
