// Package metrics is the library's dependency-free observability layer:
// a concurrency-safe registry of named counters, gauges and fixed-bucket
// histograms, with stable JSON snapshots.
//
// Every layer of the system publishes into the process-wide Default
// registry: the consensus engines (runs, rounds, messages, Byzantine
// drops, EIG tree nodes, per-round wall time), the batch engine (queue
// depth, trial latency, panics, cancellations), and the geometry kernels
// (cache hits/misses/overflow, LP solves and pivot counts, sync.Pool
// churn). Snapshots back three consumers: the per-experiment metrics
// tables of internal/report, bvcbench's -metrics-out JSON document, and
// the bench-regression guard (scripts/benchguard.go), which compares
// structured metrics rather than raw timings.
//
// Counters and histograms are cumulative and monotone; Snapshot.Diff
// subtracts them to isolate one experiment's contribution. Gauges are
// point-in-time. Read-callback metrics (RegisterFunc) fold external
// cumulative counters — the memo caches' hit/miss counts — into the
// counter section of every snapshot.
package metrics

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone cumulative counter. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear
// in snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; negative
// deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a point-in-time integer value (queue depths, pool sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Histogram is a fixed-bucket cumulative histogram. Bucket layouts are
// chosen at registration time and never change, so two snapshots of the
// same histogram are always field-compatible (the property the bench
// guard and the golden-file tests rely on).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last bucket
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// snapshot returns a point-in-time copy. Concurrent Observe calls may
// straddle the reads; each observation is atomic, so the snapshot is a
// consistent-enough view for reporting (counts never decrease).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return s
}

// Bucket is one histogram bucket: the count of observations <= UpperBound
// and above the previous bucket's bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders +Inf (not representable in JSON numbers) as the
// string "+Inf", keeping the document machine-readable and stable.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		UpperBound any   `json:"le"`
		Count      int64 `json:"count"`
	}
	a := alias{UpperBound: b.UpperBound, Count: b.Count}
	if math.IsInf(b.UpperBound, 1) {
		a.UpperBound = "+Inf"
	}
	return json.Marshal(a)
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry. It marshals to JSON
// with stable field order: encoding/json emits map keys sorted, and
// bucket layouts are fixed per histogram.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Diff returns the change from prev to s: counters and histograms are
// subtracted (cumulative semantics), gauges keep s's point-in-time value.
// Names missing from prev are treated as starting at zero.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	d := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok || len(p.Buckets) != len(v.Buckets) {
			d.Histograms[k] = v
			continue
		}
		h := HistogramSnapshot{
			Count:   v.Count - p.Count,
			Sum:     v.Sum - p.Sum,
			Buckets: make([]Bucket, len(v.Buckets)),
		}
		for i := range v.Buckets {
			h.Buckets[i] = Bucket{UpperBound: v.Buckets[i].UpperBound, Count: v.Buckets[i].Count - p.Buckets[i].Count}
		}
		d.Histograms[k] = h
	}
	return d
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric handles are get-or-create, so package init order
// never matters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the first layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a read callback reporting an external cumulative
// counter (e.g. a memo cache's hit count). The value is read at snapshot
// time and folded into the snapshot's counter section.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns a point-in-time copy of every metric in the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{n, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{n, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{n, h})
	}
	funcs := make([]struct {
		name string
		fn   func() int64
	}, 0, len(r.funcs))
	for n, fn := range r.funcs {
		funcs = append(funcs, struct {
			name string
			fn   func() int64
		}{n, fn})
	}
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]int64, len(counters)+len(funcs)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Value()
	}
	// Callbacks run outside the registry lock: they may take other locks
	// (cache mutexes) and must not deadlock against registration.
	for _, e := range funcs {
		s.Counters[e.name] = e.fn()
	}
	for _, e := range gauges {
		s.Gauges[e.name] = e.g.Value()
	}
	for _, e := range hists {
		s.Histograms[e.name] = e.h.snapshot()
	}
	return s
}

// Reset zeroes every counter, gauge and histogram in place (existing
// handles stay valid). Func-backed metrics are external and unaffected;
// reset their owners (e.g. the kernel caches) separately.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// publishes into.
func Default() *Registry { return defaultRegistry }

// DefaultCounter returns a counter in the default registry.
func DefaultCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// DefaultGauge returns a gauge in the default registry.
func DefaultGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// DefaultHistogram returns a histogram in the default registry.
func DefaultHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// RegisterFunc registers a read callback in the default registry.
func RegisterFunc(name string, fn func() int64) { defaultRegistry.RegisterFunc(name, fn) }

// Snap snapshots the default registry.
func Snap() *Snapshot { return defaultRegistry.Snapshot() }

// ResetDefault zeroes the default registry (tests and benchmark
// harnesses; see Registry.Reset for func-backed metrics).
func ResetDefault() { defaultRegistry.Reset() }

// TimeBuckets is the fixed bucket layout (seconds) for wall-time
// histograms: 1µs to 10s in a 1-2.5-5 decade ladder.
func TimeBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
}

// CountBuckets is the fixed bucket layout for small-count histograms
// (pivots per solve, messages per round): powers of two up to 64k.
func CountBuckets() []float64 {
	b := make([]float64, 0, 17)
	for v := 1.0; v <= 65536; v *= 2 {
		b = append(b, v)
	}
	return b
}
