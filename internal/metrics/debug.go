package metrics

// Live inspection during long sweeps: ServeDebug starts an HTTP listener
// exposing net/http/pprof profiles and the default registry as an expvar
// (GET /debug/vars -> {"relaxedbvc_metrics": {...}}). bvcbench wires it
// to the -pprof flag.

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

var publishOnce sync.Once

// publishExpvar exports the default registry under the expvar name
// "relaxedbvc_metrics". Safe to call repeatedly.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("relaxedbvc_metrics", expvar.Func(func() any { return Snap() }))
	})
}

// ServeDebug starts serving /debug/pprof/* and /debug/vars on addr in a
// background goroutine and returns the bound address (useful with
// ":0"). The listener lives until the process exits.
func ServeDebug(addr string) (string, error) {
	publishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // shutdown-at-exit server
	return ln.Addr().String(), nil
}
