package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if math.Abs(h.Sum()-105.5) > 1e-12 {
		t.Fatalf("hist sum = %v, want 105.5", h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	want := []int64{1, 1, 1}
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(hs.Buckets[2].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", hs.Buckets[2].UpperBound)
	}
}

func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("x", []float64{1}) != r.Histogram("x", []float64{2}) {
		t.Fatal("Histogram not idempotent")
	}
}

// TestConcurrentHammer drives counters, gauges and histograms from many
// goroutines while snapshots are taken concurrently; run under -race in
// CI it proves the registry is data-race free, and the final counts
// prove no increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 32
	const opsPer = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_depth")
			h := r.Histogram("hammer_seconds", TimeBuckets())
			for i := 0; i < opsPer; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%1000) * 1e-5)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := r.Snapshot()
				if s.Counters["hammer_total"] < 0 {
					t.Error("negative counter")
					return
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["hammer_total"]; got != workers*opsPer {
		t.Fatalf("counter = %d, want %d", got, workers*opsPer)
	}
	h := s.Histograms["hammer_seconds"]
	if h.Count != workers*opsPer {
		t.Fatalf("hist count = %d, want %d", h.Count, workers*opsPer)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if s.Gauges["hammer_depth"] != 0 {
		t.Fatalf("gauge = %d, want 0", s.Gauges["hammer_depth"])
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1})
	g := r.Gauge("g")
	c.Add(3)
	h.Observe(0.5)
	g.Set(9)
	before := r.Snapshot()
	c.Add(2)
	h.Observe(2)
	g.Set(4)
	d := r.Snapshot().Diff(before)
	if d.Counters["c"] != 2 {
		t.Fatalf("diff counter = %d, want 2", d.Counters["c"])
	}
	if d.Gauges["g"] != 4 {
		t.Fatalf("diff gauge = %d, want 4 (point-in-time)", d.Gauges["g"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 1 || dh.Buckets[0].Count != 0 || dh.Buckets[1].Count != 1 {
		t.Fatalf("diff hist = %+v, want one observation in the +Inf bucket", dh)
	}
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	var external int64 = 41
	r.RegisterFunc("external_total", func() int64 { return external })
	if got := r.Snapshot().Counters["external_total"]; got != 41 {
		t.Fatalf("func counter = %d, want 41", got)
	}
	external++
	if got := r.Snapshot().Counters["external_total"]; got != 42 {
		t.Fatalf("func counter = %d, want 42", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	h := r.Histogram("h", []float64{1})
	h.Observe(3)
	g := r.Gauge("g")
	g.Set(2)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("reset left values: %+v", s)
	}
	// Old handles still work after reset.
	c.Inc()
	if r.Snapshot().Counters["c"] != 1 {
		t.Fatal("counter handle dead after reset")
	}
}

// TestSnapshotJSONStable pins the JSON shape: map keys sorted, +Inf
// bucket rendered as "+Inf", identical marshals byte-for-byte.
func TestSnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Histogram("lat", []float64{0.1}).Observe(5)
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("marshal not stable:\n%s\n%s", a, b)
	}
	want := `{"counters":{"a_total":1,"b_total":2},"gauges":{},"histograms":{"lat":{"count":1,"sum":5,"buckets":[{"le":0.1,"count":0},{"le":"+Inf","count":1}]}}}`
	if string(a) != want {
		t.Fatalf("snapshot JSON =\n%s\nwant\n%s", a, want)
	}
}

func TestServeDebug(t *testing.T) {
	DefaultCounter("debug_probe_total").Inc()
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if _, ok := doc["relaxedbvc_metrics"]; !ok {
		t.Fatalf("expvar missing relaxedbvc_metrics: %s", body)
	}
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp2.StatusCode)
	}
}
