package metrics

// RunMetrics is the per-run observability record attached to every
// consensus Result (see the root package's Run). Unlike the cumulative
// Default registry, a RunMetrics belongs to exactly one protocol
// execution, so concurrent batch trials never contaminate each other's
// numbers. All fields except WallNanos are deterministic functions of the
// Spec (same seed, same values — the property the snapshot-determinism
// test pins).
type RunMetrics struct {
	// Protocol is the canonical protocol name that ran.
	Protocol string `json:"protocol"`
	// WallNanos is the wall-clock duration of the run in nanoseconds
	// (the only nondeterministic field).
	WallNanos int64 `json:"wall_nanos"`
	// Rounds is the number of synchronous rounds executed (or the
	// iterative round budget consumed).
	Rounds int `json:"rounds"`
	// Steps is the number of asynchronous scheduler steps executed.
	Steps int `json:"steps"`
	// Messages is the number of point-to-point messages delivered.
	Messages int `json:"messages"`
	// ByzantineDrops counts messages a scripted Byzantine process
	// suppressed relative to honest behavior during Step-1 broadcast.
	ByzantineDrops int `json:"byzantine_drops"`
	// EIGTreeNodes is the total number of EIG tree nodes stored across
	// all processes and instances (the memory footprint of Step 1); 0 for
	// signed-broadcast and asynchronous runs.
	EIGTreeNodes int `json:"eig_tree_nodes"`
	// Transport is the message-plane backend that carried the run
	// ("sim", "mesh" or "tcp").
	Transport string `json:"transport,omitempty"`
	// TransportFramesSent, TransportFramesReceived and
	// TransportReconnects count the run's traffic through a non-sim
	// transport backend (summed across in-process endpoints); all zero
	// on the simulation. Reconnects depend on real network timing, so
	// unlike every other count they are not deterministic functions of
	// the Spec.
	TransportFramesSent     int64 `json:"transport_frames_sent,omitempty"`
	TransportFramesReceived int64 `json:"transport_frames_received,omitempty"`
	TransportReconnects     int64 `json:"transport_reconnects,omitempty"`
	// ACSEpochs, ACSSlots and ABARounds profile a streaming ACS run
	// (ProtocolACS): sealed epochs, total agreed slots across them, and
	// binary-agreement rounds consumed by decided instances. All zero
	// for the one-shot protocols.
	ACSEpochs int `json:"acs_epochs,omitempty"`
	ACSSlots  int `json:"acs_slots,omitempty"`
	ABARounds int `json:"aba_rounds,omitempty"`
	// LinkDrops, LinkDuplicates, LinkDelays, Retransmits and
	// PartitionHeals count injected link-fault events when the run had a
	// fault policy (see the root package's LinkFaults); all zero
	// otherwise. They are deterministic functions of the policy seed.
	LinkDrops      int `json:"link_drops"`
	LinkDuplicates int `json:"link_duplicates"`
	LinkDelays     int `json:"link_delays"`
	Retransmits    int `json:"retransmits"`
	PartitionHeals int `json:"partition_heals"`
}
