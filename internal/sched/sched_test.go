package sched

import (
	"math/rand"
	"testing"
)

// flooder broadcasts one message in round 0 and records what it receives
// for `rounds` rounds, then stops.
type flooder struct {
	id       int
	rounds   int
	round    int
	received []Message
	done     bool
}

func (f *flooder) Start() []Outgoing {
	return []Outgoing{{To: Broadcast, Tag: "hello", Data: []byte{byte(f.id)}}}
}

func (f *flooder) Step(round int, delivered []Message) []Outgoing {
	f.received = append(f.received, delivered...)
	f.round++
	if f.round >= f.rounds {
		f.done = true
	}
	return nil
}

func (f *flooder) Done() bool { return f.done }

func TestSyncEngineBroadcastDelivery(t *testing.T) {
	n := 5
	procs := make([]SyncProcess, n)
	fl := make([]*flooder, n)
	for i := range procs {
		fl[i] = &flooder{id: i, rounds: 2}
		procs[i] = fl[i]
	}
	e := NewSyncEngine(procs)
	rounds, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Errorf("rounds = %d", rounds)
	}
	for i, f := range fl {
		if len(f.received) != n-1 {
			t.Fatalf("process %d received %d messages, want %d", i, len(f.received), n-1)
		}
		// Deterministic order by sender.
		prev := -1
		for _, m := range f.received {
			if m.From <= prev {
				t.Fatalf("delivery order not sorted by sender: %v", f.received)
			}
			if m.From == i {
				t.Fatal("self-delivery on broadcast")
			}
			prev = m.From
		}
	}
	if e.Messages != n*(n-1) {
		t.Errorf("message count = %d", e.Messages)
	}
}

// pingpong: process 0 sends "ping" to 1; 1 replies "pong"; both stop.
type pingpong struct {
	id   int
	got  int
	done bool
}

func (p *pingpong) Start() []Outgoing {
	if p.id == 0 {
		return []Outgoing{{To: 1, Tag: "ping"}}
	}
	return nil
}

func (p *pingpong) Step(round int, delivered []Message) []Outgoing {
	var out []Outgoing
	for _, m := range delivered {
		p.got++
		if m.Tag == "ping" {
			out = append(out, Outgoing{To: m.From, Tag: "pong"})
		}
		p.done = true
	}
	return out
}

func (p *pingpong) Done() bool { return p.done }

func TestSyncEnginePointToPoint(t *testing.T) {
	a, b := &pingpong{id: 0}, &pingpong{id: 1}
	e := NewSyncEngine([]SyncProcess{a, b})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.got != 1 || b.got != 1 {
		t.Errorf("got a=%d b=%d", a.got, b.got)
	}
}

type neverDone struct{}

func (neverDone) Start() []Outgoing              { return nil }
func (neverDone) Step(int, []Message) []Outgoing { return nil }
func (neverDone) Done() bool                     { return false }

func TestSyncEngineDeadlockDetection(t *testing.T) {
	e := NewSyncEngine([]SyncProcess{neverDone{}})
	e.MaxRounds = 100
	if _, err := e.Run(); err == nil {
		t.Fatal("deadlocked engine returned no error")
	}
}

func TestSyncEngineInvalidDestination(t *testing.T) {
	bad := &badSender{}
	e := NewSyncEngine([]SyncProcess{bad})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination did not panic")
		}
	}()
	e.Run()
}

type badSender struct{ done bool }

func (b *badSender) Start() []Outgoing              { return []Outgoing{{To: 42}} }
func (b *badSender) Step(int, []Message) []Outgoing { b.done = true; return nil }
func (b *badSender) Done() bool                     { return b.done }

// echoProc: async process; replies once to each received "ping" with
// "pong", counts pongs, done after expected count.
type echoProc struct {
	id     int
	n      int
	pongs  int
	pings  int
	done   bool
	origin bool
}

func (p *echoProc) Start() []Outgoing {
	if p.origin {
		return []Outgoing{{To: Broadcast, Tag: "ping"}}
	}
	return nil
}

func (p *echoProc) Receive(m Message) []Outgoing {
	switch m.Tag {
	case "ping":
		p.pings++
		return []Outgoing{{To: m.From, Tag: "pong"}}
	case "pong":
		p.pongs++
		if p.pongs == p.n-1 {
			p.done = true
		}
	}
	return nil
}

func (p *echoProc) Done() bool { return p.done }

func TestAsyncEngineSchedules(t *testing.T) {
	for name, sch := range map[string]Schedule{
		"fifo":   FIFOSchedule{},
		"lifo":   LIFOSchedule{},
		"random": &RandomSchedule{Rng: rand.New(rand.NewSource(1))},
		"delay":  &DelayTargetSchedule{Slow: map[int]bool{2: true}},
	} {
		n := 4
		procs := make([]AsyncProcess, n)
		var origin *echoProc
		for i := range procs {
			ep := &echoProc{id: i, n: n, origin: i == 0}
			if i == 0 {
				origin = ep
			}
			procs[i] = ep
		}
		e := NewAsyncEngine(procs, sch)
		if _, err := e.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if origin.pongs != n-1 {
			t.Errorf("%s: origin pongs = %d, want %d", name, origin.pongs, n-1)
		}
	}
}

func TestAsyncEngineDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) int {
		n := 5
		procs := make([]AsyncProcess, n)
		for i := range procs {
			procs[i] = &echoProc{id: i, n: n, origin: i == 0}
		}
		e := NewAsyncEngine(procs, &RandomSchedule{Rng: rand.New(rand.NewSource(seed))})
		steps, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return steps
	}
	if run(7) != run(7) {
		t.Error("same seed gave different step counts")
	}
}

func TestAsyncEngineStepLimit(t *testing.T) {
	// Two processes ping-pong forever.
	procs := []AsyncProcess{&forever{}, &forever{}}
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.MaxSteps = 50
	if _, err := e.Run(); err == nil {
		t.Fatal("no error at step limit")
	}
}

type forever struct{}

func (forever) Start() []Outgoing { return []Outgoing{{To: Broadcast, Tag: "x"}} }
func (forever) Receive(m Message) []Outgoing {
	return []Outgoing{{To: m.From, Tag: "x"}}
}
func (forever) Done() bool { return false }

func TestLIFOAndDelaySchedulesPick(t *testing.T) {
	q := []Message{{From: 0}, {From: 1}, {From: 2}}
	if (LIFOSchedule{}).Pick(q) != 2 {
		t.Error("LIFO should pick last")
	}
	if (FIFOSchedule{}).Pick(q) != 0 {
		t.Error("FIFO should pick first")
	}
	d := &DelayTargetSchedule{Slow: map[int]bool{0: true}}
	if d.Pick(q) != 1 {
		t.Error("delay should skip slow sender")
	}
	allSlow := &DelayTargetSchedule{Slow: map[int]bool{0: true, 1: true, 2: true}}
	if allSlow.Pick(q) != 0 {
		t.Error("all-slow should fall back to first")
	}
}
