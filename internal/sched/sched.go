// Package sched provides the simulated message-passing substrate the
// consensus protocols run on: a lockstep synchronous round engine and an
// asynchronous event-queue engine with pluggable delivery schedules
// (seeded-random, FIFO, or adversarial LIFO).
//
// The network is the complete graph with reliable channels, matching the
// paper's model: every process can send to every other process, messages
// are never lost or corrupted in transit, and in the asynchronous engine
// delivery order and delay are controlled by the (possibly adversarial)
// schedule, but every sent message is eventually delivered.
//
// Processes — honest and Byzantine alike — are deterministic state
// machines driven by the engine, which makes every simulation replayable
// from its seed.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"relaxedbvc/internal/metrics"
)

// Engine observability, published into the default metrics registry.
// Round/step wall times land in fixed-bucket histograms so sweeps can be
// profiled without tracing; message counts are cumulative across all
// engine runs in the process (per-run counts stay on the engine structs
// and the consensus results).
var (
	roundSeconds  = metrics.DefaultHistogram("consensus_round_seconds", metrics.TimeBuckets())
	roundMessages = metrics.DefaultHistogram("consensus_round_messages", metrics.CountBuckets())
	msgsDelivered = metrics.DefaultCounter("sched_messages_delivered_total")
	asyncSteps    = metrics.DefaultCounter("sched_async_steps_total")
)

// Message is a point-to-point message in flight or delivered.
type Message struct {
	From, To int
	Tag      string
	Data     []byte
	// SentRound is the synchronous round in which the message was sent
	// (0-based), or the asynchronous step index.
	SentRound int
}

// Outgoing is a send request from a process. To == Broadcast sends to all
// other processes (not self).
type Outgoing struct {
	To   int
	Tag  string
	Data []byte
}

// Broadcast is the special destination meaning "all other processes".
const Broadcast = -1

// SyncProcess is a deterministic state machine driven in lockstep rounds.
// Start is called once before round 0; Step is called each round with the
// messages delivered in that round (the messages sent in the previous
// round, or by Start for round 0).
type SyncProcess interface {
	// Start returns the messages to send in round 0.
	Start() []Outgoing
	// Step handles the messages delivered at the beginning of the given
	// round and returns messages to send (delivered next round).
	Step(round int, delivered []Message) []Outgoing
	// Done reports whether the process has terminated (it then receives
	// no further Step calls and sends nothing).
	Done() bool
}

// SyncEngine runs SyncProcesses in lockstep.
type SyncEngine struct {
	procs     []SyncProcess
	MaxRounds int
	// Stats
	RoundsRun int
	Messages  int
	TraceFn   func(Message) // optional message tap
	// StopFn, when set, is polled once per round; a non-nil return aborts
	// the run with that error (used for context cancellation).
	StopFn func() error
}

// NewSyncEngine builds a synchronous engine over the given processes
// (index = process id).
func NewSyncEngine(procs []SyncProcess) *SyncEngine {
	return &SyncEngine{procs: procs, MaxRounds: 1 << 16}
}

// Run drives rounds until every process is Done or MaxRounds elapse.
// It returns the number of rounds executed and an error on round
// exhaustion.
func (e *SyncEngine) Run() (int, error) {
	n := len(e.procs)
	expand := func(from int, outs []Outgoing, round int) []Message {
		var ms []Message
		for _, o := range outs {
			if o.To == Broadcast {
				for to := 0; to < n; to++ {
					if to != from {
						ms = append(ms, Message{From: from, To: to, Tag: o.Tag, Data: o.Data, SentRound: round})
					}
				}
			} else {
				if o.To < 0 || o.To >= n {
					panic(fmt.Sprintf("sched: send to invalid process %d", o.To))
				}
				ms = append(ms, Message{From: from, To: o.To, Tag: o.Tag, Data: o.Data, SentRound: round})
			}
		}
		return ms
	}

	var pending []Message
	for id, p := range e.procs {
		pending = append(pending, expand(id, p.Start(), -1)...)
	}
	quiescent := 0
	for round := 0; round < e.MaxRounds; round++ {
		if e.StopFn != nil {
			if err := e.StopFn(); err != nil {
				e.RoundsRun = round
				return round, err
			}
		}
		allDone := true
		for _, p := range e.procs {
			if !p.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			e.RoundsRun = round
			return round, nil
		}
		roundStart := time.Now()
		roundMessages.Observe(float64(len(pending)))
		msgsDelivered.Add(int64(len(pending)))
		// Deliver: group by recipient, deterministic order by (From, Tag).
		inbox := make([][]Message, n)
		for _, m := range pending {
			e.Messages++
			if e.TraceFn != nil {
				e.TraceFn(m)
			}
			inbox[m.To] = append(inbox[m.To], m)
		}
		for to := range inbox {
			sort.SliceStable(inbox[to], func(i, j int) bool {
				a, b := inbox[to][i], inbox[to][j]
				if a.From != b.From {
					return a.From < b.From
				}
				return a.Tag < b.Tag
			})
		}
		pending = pending[:0]
		anyActivity := false
		for id, p := range e.procs {
			if p.Done() {
				continue
			}
			outs := p.Step(round, inbox[id])
			if len(outs) > 0 {
				anyActivity = true
			}
			pending = append(pending, expand(id, outs, round)...)
		}
		if !anyActivity && len(pending) == 0 {
			// Quiescent: no sends and nothing in flight. Give processes a
			// couple of empty rounds to finish internal countdowns, then
			// report a deadlock if some still have not terminated.
			quiescent++
			if quiescent >= 3 {
				stillRunning := 0
				for _, p := range e.procs {
					if !p.Done() {
						stillRunning++
					}
				}
				if stillRunning > 0 {
					e.RoundsRun = round + 1
					return round + 1, fmt.Errorf("sched: quiescent with %d processes not done", stillRunning)
				}
			}
		} else {
			quiescent = 0
		}
		roundSeconds.Observe(time.Since(roundStart).Seconds())
	}
	return e.MaxRounds, fmt.Errorf("sched: round limit %d exceeded", e.MaxRounds)
}

// AsyncProcess is a deterministic state machine driven by single message
// deliveries.
type AsyncProcess interface {
	// Start returns the initial sends.
	Start() []Outgoing
	// Receive handles one delivered message and returns sends.
	Receive(m Message) []Outgoing
	// Done reports termination; a done process absorbs messages silently.
	Done() bool
}

// Schedule selects which in-flight message to deliver next.
type Schedule interface {
	// Pick returns an index into queue (len >= 1).
	Pick(queue []Message) int
}

// RandomSchedule delivers a uniformly random queued message (seeded).
type RandomSchedule struct{ Rng *rand.Rand }

// Pick implements Schedule.
func (s *RandomSchedule) Pick(queue []Message) int { return s.Rng.Intn(len(queue)) }

// FIFOSchedule delivers the oldest queued message.
type FIFOSchedule struct{}

// Pick implements Schedule.
func (FIFOSchedule) Pick(queue []Message) int { return 0 }

// LIFOSchedule delivers the newest queued message first — a simple
// adversarial schedule that maximizes staleness of early messages while
// retaining eventual delivery (the queue drains once no new sends occur).
type LIFOSchedule struct{}

// Pick implements Schedule.
func (LIFOSchedule) Pick(queue []Message) int { return len(queue) - 1 }

// DelayTargetSchedule starves messages from the given processes as long
// as any other message is queued, modelling an adversary that makes a set
// of processes arbitrarily slow (they are still eventually delivered).
type DelayTargetSchedule struct {
	Slow map[int]bool
}

// Pick implements Schedule.
func (s *DelayTargetSchedule) Pick(queue []Message) int {
	for i, m := range queue {
		if !s.Slow[m.From] {
			return i
		}
	}
	return 0
}

// AsyncEngine runs AsyncProcesses under a Schedule.
type AsyncEngine struct {
	procs    []AsyncProcess
	schedule Schedule
	MaxSteps int
	// Stats
	StepsRun int
	Messages int
	TraceFn  func(Message)
	// StopFn, when set, is polled once per delivery step; a non-nil return
	// aborts the run with that error (used for context cancellation).
	StopFn func() error
}

// NewAsyncEngine builds an asynchronous engine. If schedule is nil, FIFO
// is used.
func NewAsyncEngine(procs []AsyncProcess, schedule Schedule) *AsyncEngine {
	if schedule == nil {
		schedule = FIFOSchedule{}
	}
	return &AsyncEngine{procs: procs, schedule: schedule, MaxSteps: 1 << 22}
}

// Run delivers messages one at a time until the queue drains or all
// processes are done. Returns steps executed; error if the step limit is
// hit.
func (e *AsyncEngine) Run() (int, error) {
	n := len(e.procs)
	var queue []Message
	step := 0
	expand := func(from int, outs []Outgoing) {
		for _, o := range outs {
			if o.To == Broadcast {
				for to := 0; to < n; to++ {
					if to != from {
						queue = append(queue, Message{From: from, To: to, Tag: o.Tag, Data: o.Data, SentRound: step})
					}
				}
			} else {
				if o.To < 0 || o.To >= n {
					panic(fmt.Sprintf("sched: send to invalid process %d", o.To))
				}
				queue = append(queue, Message{From: from, To: o.To, Tag: o.Tag, Data: o.Data, SentRound: step})
			}
		}
	}
	for id, p := range e.procs {
		expand(id, p.Start())
	}
	for ; step < e.MaxSteps; step++ {
		if len(queue) == 0 {
			break
		}
		if e.StopFn != nil {
			if err := e.StopFn(); err != nil {
				e.StepsRun = step
				return step, err
			}
		}
		allDone := true
		for _, p := range e.procs {
			if !p.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		i := e.schedule.Pick(queue)
		m := queue[i]
		queue = append(queue[:i], queue[i+1:]...)
		e.Messages++
		asyncSteps.Inc()
		msgsDelivered.Inc()
		if e.TraceFn != nil {
			e.TraceFn(m)
		}
		p := e.procs[m.To]
		if p.Done() {
			continue
		}
		expand(m.To, p.Receive(m))
	}
	e.StepsRun = step
	if step >= e.MaxSteps {
		return step, fmt.Errorf("sched: step limit %d exceeded", e.MaxSteps)
	}
	return step, nil
}
