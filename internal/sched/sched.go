// Package sched provides the simulated message-passing substrate the
// consensus protocols run on: a lockstep synchronous round engine and an
// asynchronous event-queue engine with pluggable delivery schedules
// (seeded-random, FIFO, or adversarial LIFO).
//
// The network is the complete graph with reliable channels, matching the
// paper's model: every process can send to every other process, messages
// are never lost or corrupted in transit, and in the asynchronous engine
// delivery order and delay are controlled by the (possibly adversarial)
// schedule, but every sent message is eventually delivered.
//
// A seeded LinkFaults policy (see faults.go) optionally stresses that
// assumption with drops, bounded delays, duplication and timed
// partitions. The async engine retransmits dropped copies so
// within-model patterns preserve eventual delivery; patterns that break
// the model surface as errors wrapping ErrDeliveryViolated.
//
// Processes — honest and Byzantine alike — are deterministic state
// machines driven by the engine, and every fault decision is a pure
// function of the policy seed, which makes every simulation replayable
// from its seeds.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"relaxedbvc/internal/metrics"
)

// Engine observability, published into the default metrics registry.
// Round/step wall times land in fixed-bucket histograms so sweeps can be
// profiled without tracing; message counts are cumulative across all
// engine runs in the process (per-run counts stay on the engine structs
// and the consensus results).
var (
	roundSeconds  = metrics.DefaultHistogram("consensus_round_seconds", metrics.TimeBuckets())
	roundMessages = metrics.DefaultHistogram("consensus_round_messages", metrics.CountBuckets())
	msgsDelivered = metrics.DefaultCounter("sched_messages_delivered_total")
	asyncSteps    = metrics.DefaultCounter("sched_async_steps_total")
)

// Message is a point-to-point message in flight or delivered.
type Message struct {
	From, To int
	Tag      string
	Data     []byte
	// SentRound is the synchronous round in which the message was sent
	// (0-based), or the asynchronous step index.
	SentRound int
}

// Outgoing is a send request from a process. To == Broadcast sends to all
// other processes (not self).
type Outgoing struct {
	To   int
	Tag  string
	Data []byte
}

// Broadcast is the special destination meaning "all other processes".
const Broadcast = -1

// SyncProcess is a deterministic state machine driven in lockstep rounds.
// Start is called once before round 0; Step is called each round with the
// messages delivered in that round (the messages sent in the previous
// round, or by Start for round 0).
type SyncProcess interface {
	// Start returns the messages to send in round 0.
	Start() []Outgoing
	// Step handles the messages delivered at the beginning of the given
	// round and returns messages to send (delivered next round).
	Step(round int, delivered []Message) []Outgoing
	// Done reports whether the process has terminated (it then receives
	// no further Step calls and sends nothing).
	Done() bool
}

// SyncEngine runs SyncProcesses in lockstep.
type SyncEngine struct {
	procs     []SyncProcess
	MaxRounds int
	// Faults optionally injects seeded link faults. The lockstep model
	// only tolerates duplication (processes already deduplicate); any
	// injected drop, delay or partition hold breaks synchrony, so the run
	// completes and then returns an error wrapping ErrDeliveryViolated.
	Faults *LinkFaults
	// Stats
	RoundsRun  int
	Messages   int
	FaultStats FaultStats
	TraceFn    func(Message) // optional message tap
	// StopFn, when set, is polled once per round; a non-nil return aborts
	// the run with that error (used for context cancellation).
	StopFn func() error
}

// NewSyncEngine builds a synchronous engine over the given processes
// (index = process id).
func NewSyncEngine(procs []SyncProcess) *SyncEngine {
	return &SyncEngine{procs: procs, MaxRounds: 1 << 16}
}

// Run drives rounds until every process is Done or MaxRounds elapse.
// It returns the number of rounds executed and an error on round
// exhaustion, or one wrapping ErrDeliveryViolated if injected faults
// broke the lockstep delivery model.
func (e *SyncEngine) Run() (int, error) {
	n := len(e.procs)
	lf := e.Faults
	var stats FaultStats
	if lf != nil {
		if err := lf.Validate(); err != nil {
			return 0, err
		}
	}
	finish := func(rounds int, err error) (int, error) {
		e.RoundsRun = rounds
		e.FaultStats = stats
		stats.publish()
		if stats.Dropped > 0 || stats.Delayed > 0 || stats.PartitionHeals > 0 || stats.Lost > 0 {
			violation := fmt.Errorf("%w: lockstep synchrony broken (%d dropped, %d delayed, %d partition-held, %d lost)",
				ErrDeliveryViolated, stats.Dropped, stats.Delayed, stats.PartitionHeals, stats.Lost)
			if err != nil {
				// Keep both chains matchable: the fault violation usually
				// caused the engine-level failure (quiescence, round limit).
				return rounds, fmt.Errorf("%w; %w", err, violation)
			}
			return rounds, violation
		}
		return rounds, err
	}

	// future[r] holds the messages scheduled for delivery in round r.
	future := make(map[int][]Message)
	seq := 0
	route := func(m Message, deliverRound int) {
		if lf == nil {
			future[deliverRound] = append(future[deliverRound], m)
			return
		}
		s := seq
		seq++
		copies := 1
		if lf.duplicates(m.From, m.To, s) {
			copies = 2
			stats.Duplicated++
		}
		for c := 0; c < copies; c++ {
			rid := s
			if c == 1 {
				rid = -s - 1 // distinct roll identity for the duplicate copy
			}
			if lf.drops(m.From, m.To, rid, 0) {
				stats.Dropped++
				continue
			}
			at := deliverRound
			if d := lf.delay(m.From, m.To, rid); d > 0 {
				stats.Delayed++
				at += d
			}
			if lf.blockedAt(m.From, m.To, at) {
				t, ok := lf.clearFrom(m.From, m.To, at)
				if !ok {
					stats.Lost++
					continue
				}
				at = t
				stats.PartitionHeals++
			}
			future[at] = append(future[at], m)
		}
	}
	expand := func(from int, outs []Outgoing, round int) {
		for _, o := range outs {
			if o.To == Broadcast {
				for to := 0; to < n; to++ {
					if to != from {
						route(Message{From: from, To: to, Tag: o.Tag, Data: o.Data, SentRound: round}, round+1)
					}
				}
			} else {
				if o.To < 0 || o.To >= n {
					panic(fmt.Sprintf("sched: send to invalid process %d", o.To))
				}
				route(Message{From: from, To: o.To, Tag: o.Tag, Data: o.Data, SentRound: round}, round+1)
			}
		}
	}

	for id, p := range e.procs {
		expand(id, p.Start(), -1)
	}
	quiescent := 0
	for round := 0; round < e.MaxRounds; round++ {
		if e.StopFn != nil {
			if err := e.StopFn(); err != nil {
				return finish(round, err)
			}
		}
		allDone := true
		for _, p := range e.procs {
			if !p.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return finish(round, nil)
		}
		pending := future[round]
		delete(future, round)
		//bvclint:allow nodeterminism -- metrics-only: wall time feeds the round-latency histogram, never delivery order
		roundStart := time.Now()
		roundMessages.Observe(float64(len(pending)))
		msgsDelivered.Add(int64(len(pending)))
		// Deliver: group by recipient, deterministic order by (From, Tag).
		inbox := make([][]Message, n)
		for _, m := range pending {
			e.Messages++
			if e.TraceFn != nil {
				e.TraceFn(m)
			}
			inbox[m.To] = append(inbox[m.To], m)
		}
		for to := range inbox {
			sort.SliceStable(inbox[to], func(i, j int) bool {
				a, b := inbox[to][i], inbox[to][j]
				if a.From != b.From {
					return a.From < b.From
				}
				return a.Tag < b.Tag
			})
		}
		anyActivity := false
		for id, p := range e.procs {
			if p.Done() {
				continue
			}
			outs := p.Step(round, inbox[id])
			if len(outs) > 0 {
				anyActivity = true
			}
			expand(id, outs, round)
		}
		if !anyActivity && len(future) == 0 {
			// Quiescent: no sends and nothing in flight. Give processes a
			// couple of empty rounds to finish internal countdowns, then
			// report a deadlock if some still have not terminated.
			quiescent++
			if quiescent >= 3 {
				stillRunning := 0
				for _, p := range e.procs {
					if !p.Done() {
						stillRunning++
					}
				}
				if stillRunning > 0 {
					return finish(round+1, fmt.Errorf("sched: quiescent with %d processes not done", stillRunning))
				}
			}
		} else {
			quiescent = 0
		}
		//bvclint:allow nodeterminism -- metrics-only: observation of the round timing started above
		roundSeconds.Observe(time.Since(roundStart).Seconds())
	}
	return finish(e.MaxRounds, fmt.Errorf("sched: round limit %d exceeded", e.MaxRounds))
}

// AsyncProcess is a deterministic state machine driven by single message
// deliveries.
type AsyncProcess interface {
	// Start returns the initial sends.
	Start() []Outgoing
	// Receive handles one delivered message and returns sends.
	Receive(m Message) []Outgoing
	// Done reports termination; a done process absorbs messages silently.
	Done() bool
}

// Schedule selects which in-flight message to deliver next.
type Schedule interface {
	// Pick returns an index into queue (len >= 1).
	Pick(queue []Message) int
}

// RandomSchedule delivers a uniformly random queued message (seeded).
type RandomSchedule struct{ Rng *rand.Rand }

// Pick implements Schedule.
func (s *RandomSchedule) Pick(queue []Message) int { return s.Rng.Intn(len(queue)) }

// FIFOSchedule delivers the oldest queued message.
type FIFOSchedule struct{}

// Pick implements Schedule.
func (FIFOSchedule) Pick(queue []Message) int { return 0 }

// LIFOSchedule delivers the newest queued message first — a simple
// adversarial schedule that maximizes staleness of early messages while
// retaining eventual delivery (the queue drains once no new sends occur).
type LIFOSchedule struct{}

// Pick implements Schedule.
func (LIFOSchedule) Pick(queue []Message) int { return len(queue) - 1 }

// DelayTargetSchedule starves messages from the given processes as long
// as any other message is queued, modelling an adversary that makes a set
// of processes arbitrarily slow (they are still eventually delivered).
type DelayTargetSchedule struct {
	Slow map[int]bool
}

// Pick implements Schedule.
func (s *DelayTargetSchedule) Pick(queue []Message) int {
	for i, m := range queue {
		if !s.Slow[m.From] {
			return i
		}
	}
	return 0
}

// AsyncEngine runs AsyncProcesses under a Schedule.
type AsyncEngine struct {
	procs    []AsyncProcess
	schedule Schedule
	MaxSteps int
	// Faults optionally injects seeded link faults. Dropped copies are
	// retransmitted after Faults.RetransmitTimeout virtual time units, up
	// to Faults.MaxAttempts attempts; delays and healed partitions defer
	// delivery on the engine's virtual clock. A message that becomes
	// permanently undeliverable makes Run return an error wrapping
	// ErrDeliveryViolated after the run completes.
	Faults *LinkFaults
	// Stats
	StepsRun   int
	Messages   int
	FaultStats FaultStats
	TraceFn    func(Message)
	// StopFn, when set, is polled once per delivery step; a non-nil return
	// aborts the run with that error (used for context cancellation).
	StopFn func() error
}

// NewAsyncEngine builds an asynchronous engine. If schedule is nil, FIFO
// is used.
func NewAsyncEngine(procs []AsyncProcess, schedule Schedule) *AsyncEngine {
	if schedule == nil {
		schedule = FIFOSchedule{}
	}
	return &AsyncEngine{procs: procs, schedule: schedule, MaxSteps: 1 << 22}
}

// qmeta is the fault-layer bookkeeping of one queued message copy.
type qmeta struct {
	readyAt int // virtual time at which the copy becomes deliverable
	attempt int // delivery attempts already consumed by this copy
	seq     int // logical message id (shared by duplicate copies)
	rollID  int // per-copy fault-roll identity
	held    bool
}

// Run delivers messages one at a time until the queue drains or all
// processes are done. Returns steps executed; error if the step limit is
// hit, or one wrapping ErrDeliveryViolated if injected faults made a
// message permanently undeliverable.
func (e *AsyncEngine) Run() (int, error) {
	n := len(e.procs)
	lf := e.Faults
	var stats FaultStats
	if lf != nil {
		if err := lf.Validate(); err != nil {
			return 0, err
		}
	}
	var (
		msgs []Message
		meta []qmeta // parallel to msgs; only maintained when lf != nil
	)
	// The virtual clock advances one unit per delivery attempt; readyAt,
	// delays, retransmission timeouts and partition windows are measured
	// on it. With lf == nil the clock is irrelevant: every queued message
	// is deliverable, exactly the pre-fault-layer semantics.
	now := 0
	step := 0
	seq := 0
	maxAttempts, rto := 0, 0
	var deliveredSeq map[int]bool
	var copiesLeft map[int]int
	if lf != nil {
		maxAttempts = lf.maxAttempts()
		rto = lf.retransmitTimeout()
		deliveredSeq = make(map[int]bool)
		copiesLeft = make(map[int]int)
	}
	push := func(m Message, q qmeta) {
		msgs = append(msgs, m)
		if lf != nil {
			meta = append(meta, q)
			copiesLeft[q.seq]++
		}
	}
	remove := func(i int) (Message, qmeta) {
		m := msgs[i]
		msgs = append(msgs[:i], msgs[i+1:]...)
		var q qmeta
		if lf != nil {
			q = meta[i]
			meta = append(meta[:i], meta[i+1:]...)
			copiesLeft[q.seq]--
		}
		return m, q
	}
	enqueue := func(m Message, ready0 int) {
		if lf == nil {
			push(m, qmeta{})
			return
		}
		s := seq
		seq++
		copies := 1
		if lf.duplicates(m.From, m.To, s) {
			copies = 2
			stats.Duplicated++
		}
		for c := 0; c < copies; c++ {
			rid := s
			if c == 1 {
				rid = -s - 1 // distinct roll identity for the duplicate copy
			}
			at := ready0
			if d := lf.delay(m.From, m.To, rid); d > 0 {
				stats.Delayed++
				at += d
			}
			push(m, qmeta{readyAt: at, seq: s, rollID: rid})
		}
	}
	expand := func(from int, outs []Outgoing, ready0 int) {
		for _, o := range outs {
			if o.To == Broadcast {
				for to := 0; to < n; to++ {
					if to != from {
						enqueue(Message{From: from, To: to, Tag: o.Tag, Data: o.Data, SentRound: step}, ready0)
					}
				}
			} else {
				if o.To < 0 || o.To >= n {
					panic(fmt.Sprintf("sched: send to invalid process %d", o.To))
				}
				enqueue(Message{From: from, To: o.To, Tag: o.Tag, Data: o.Data, SentRound: step}, ready0)
			}
		}
	}
	finish := func(steps int, err error) (int, error) {
		e.StepsRun = steps
		e.FaultStats = stats
		stats.publish()
		if stats.Lost > 0 {
			violation := fmt.Errorf("%w: %d message(s) permanently undeliverable (retransmission budget %d exhausted or unhealed partition)",
				ErrDeliveryViolated, stats.Lost, maxAttempts)
			if err != nil {
				return steps, fmt.Errorf("%w; %w", err, violation)
			}
			return steps, violation
		}
		return steps, err
	}
	// markLost drains the queue when nothing in it can ever be delivered.
	markLost := func() {
		for i := range meta {
			copiesLeft[meta[i].seq]--
		}
		counted := make(map[int]bool)
		for i := range meta {
			s := meta[i].seq
			if !deliveredSeq[s] && copiesLeft[s] == 0 && !counted[s] {
				counted[s] = true
				stats.Lost++
			}
		}
		msgs, meta = nil, nil
	}

	for id, p := range e.procs {
		expand(id, p.Start(), 0)
	}
	for ; step < e.MaxSteps; step++ {
		if len(msgs) == 0 {
			break
		}
		if e.StopFn != nil {
			if err := e.StopFn(); err != nil {
				return finish(step, err)
			}
		}
		allDone := true
		for _, p := range e.procs {
			if !p.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		var pickIdx int
		if lf == nil {
			pickIdx = e.schedule.Pick(msgs)
		} else {
			buildView := func() ([]Message, []int) {
				var view []Message
				var idx []int
				for i := range msgs {
					if meta[i].readyAt > now {
						continue
					}
					if len(lf.Partitions) > 0 && lf.blockedAt(msgs[i].From, msgs[i].To, now) {
						meta[i].held = true
						continue
					}
					view = append(view, msgs[i])
					idx = append(idx, i)
				}
				return view, idx
			}
			view, idx := buildView()
			if len(view) == 0 {
				// Nothing deliverable now: fast-forward the clock to the
				// earliest future delivery time. If no queued copy can ever
				// clear, everything left is permanently lost.
				next, any := 0, false
				for i := range msgs {
					t := meta[i].readyAt
					if t < now {
						t = now
					}
					if len(lf.Partitions) > 0 {
						ct, ok := lf.clearFrom(msgs[i].From, msgs[i].To, t)
						if !ok {
							continue
						}
						t = ct
					}
					if !any || t < next {
						next, any = t, true
					}
				}
				if !any {
					markLost()
					break
				}
				now = next
				view, idx = buildView()
			}
			pickIdx = idx[e.schedule.Pick(view)]
		}
		m, q := remove(pickIdx)
		if lf != nil && lf.drops(m.From, m.To, q.rollID, q.attempt) {
			stats.Dropped++
			if q.attempt+1 < maxAttempts {
				stats.Retransmits++
				push(m, qmeta{readyAt: now + 1 + rto, attempt: q.attempt + 1, seq: q.seq, rollID: q.rollID, held: q.held})
			} else if !deliveredSeq[q.seq] && copiesLeft[q.seq] == 0 {
				stats.Lost++
			}
			now++
			continue // a dropped attempt still consumes a step
		}
		if lf != nil {
			deliveredSeq[q.seq] = true
			if q.held {
				stats.PartitionHeals++
			}
		}
		e.Messages++
		asyncSteps.Inc()
		msgsDelivered.Inc()
		if e.TraceFn != nil {
			e.TraceFn(m)
		}
		p := e.procs[m.To]
		if p.Done() {
			now++
			continue
		}
		expand(m.To, p.Receive(m), now+1)
		now++
	}
	if step >= e.MaxSteps {
		return finish(step, fmt.Errorf("sched: step limit %d exceeded", e.MaxSteps))
	}
	return finish(step, nil)
}
