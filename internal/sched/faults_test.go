package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newEchoNet(n int) ([]AsyncProcess, *echoProc) {
	procs := make([]AsyncProcess, n)
	var origin *echoProc
	for i := range procs {
		ep := &echoProc{id: i, n: n, origin: i == 0}
		if i == 0 {
			origin = ep
		}
		procs[i] = ep
	}
	return procs, origin
}

func TestLinkFaultsValidate(t *testing.T) {
	bad := []LinkFaults{
		{LinkProfile: LinkProfile{DropProb: -0.1}},
		{LinkProfile: LinkProfile{DropProb: 1.1}},
		{LinkProfile: LinkProfile{DupProb: 2}},
		{LinkProfile: LinkProfile{DelayMin: 3, DelayMax: 1}},
		{LinkProfile: LinkProfile{DelayMin: -1}},
		{Links: map[Link]LinkProfile{{0, 1}: {DropProb: 7}}},
		{Partitions: []Partition{{Start: -1}}},
		{Partitions: []Partition{{Start: 5, End: 5}}},
		{RetransmitTimeout: -1},
		{MaxAttempts: -2},
	}
	for i, lf := range bad {
		if err := lf.Validate(); err == nil {
			t.Errorf("case %d: invalid policy passed validation: %+v", i, lf)
		}
	}
	good := LinkFaults{
		LinkProfile: LinkProfile{DropProb: 0.5, DupProb: 0.2, DelayMin: 1, DelayMax: 3},
		Links:       map[Link]LinkProfile{{0, 1}: {DropProb: 1}},
		Partitions:  []Partition{{Start: 0, End: 10, Group: []int{0}}, {Start: 3, End: -1, Group: []int{2}}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

func TestFaultRollsDeterministicAndOrderFree(t *testing.T) {
	lf := &LinkFaults{Seed: 42, LinkProfile: LinkProfile{DropProb: 0.5, DupProb: 0.5, DelayMax: 4}}
	lf2 := &LinkFaults{Seed: 42, LinkProfile: LinkProfile{DropProb: 0.5, DupProb: 0.5, DelayMax: 4}}
	for seq := 0; seq < 200; seq++ {
		if lf.drops(0, 1, seq, 0) != lf2.drops(0, 1, seq, 0) {
			t.Fatalf("drop roll for seq %d differs across identical policies", seq)
		}
		if lf.duplicates(1, 2, seq) != lf2.duplicates(1, 2, seq) {
			t.Fatalf("dup roll for seq %d differs", seq)
		}
		if lf.delay(2, 0, seq) != lf2.delay(2, 0, seq) {
			t.Fatalf("delay roll for seq %d differs", seq)
		}
	}
	// Rolls depend on the seed: a different seed must flip at least one
	// decision over 200 sequence numbers (probability ~2^-200 otherwise).
	other := &LinkFaults{Seed: 43, LinkProfile: lf.LinkProfile}
	same := true
	for seq := 0; seq < 200 && same; seq++ {
		same = lf.drops(0, 1, seq, 0) == other.drops(0, 1, seq, 0)
	}
	if same {
		t.Error("drop rolls identical across different seeds")
	}
	// Delay stays within bounds.
	bounded := &LinkFaults{Seed: 7, LinkProfile: LinkProfile{DelayMin: 2, DelayMax: 5}}
	for seq := 0; seq < 500; seq++ {
		if d := bounded.delay(0, 1, seq); d < 2 || d > 5 {
			t.Fatalf("delay %d outside [2,5]", d)
		}
	}
}

func TestPartitionWindows(t *testing.T) {
	lf := &LinkFaults{Partitions: []Partition{
		{Start: 2, End: 5, Group: []int{0, 1}},
		{Start: 4, End: 8, Group: []int{0}},
	}}
	if lf.blockedAt(0, 2, 0) {
		t.Error("blocked before any window")
	}
	if !lf.blockedAt(0, 2, 3) {
		t.Error("not blocked inside the first window")
	}
	if lf.blockedAt(0, 1, 3) {
		t.Error("intra-group link blocked")
	}
	// The two windows chain: link 0->2 clears only at 8.
	if at, ok := lf.clearFrom(0, 2, 2); !ok || at != 8 {
		t.Errorf("clearFrom = %d, %v; want 8, true", at, ok)
	}
	forever := &LinkFaults{Partitions: []Partition{{Start: 0, End: -1, Group: []int{1}}}}
	if _, ok := forever.clearFrom(1, 0, 0); ok {
		t.Error("forever partition reported as clearing")
	}
}

func TestAsyncFaultsDropWithRetransmissionDelivers(t *testing.T) {
	procs, origin := newEchoNet(4)
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.Faults = &LinkFaults{Seed: 3, LinkProfile: LinkProfile{DropProb: 0.5}}
	if _, err := e.Run(); err != nil {
		t.Fatalf("within-model drops must preserve delivery: %v", err)
	}
	if origin.pongs != 3 {
		t.Errorf("origin pongs = %d, want 3", origin.pongs)
	}
	if e.FaultStats.Dropped == 0 || e.FaultStats.Retransmits == 0 {
		t.Errorf("expected drops and retransmits at p=0.5, got %+v", e.FaultStats)
	}
	if e.FaultStats.Lost != 0 {
		t.Errorf("no message should be lost, got %+v", e.FaultStats)
	}
}

func TestAsyncFaultsExhaustedRetransmissionsTypedError(t *testing.T) {
	procs, _ := newEchoNet(3)
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.Faults = &LinkFaults{Seed: 1, LinkProfile: LinkProfile{DropProb: 1}, MaxAttempts: 3}
	_, err := e.Run()
	if !errors.Is(err, ErrDeliveryViolated) {
		t.Fatalf("err = %v, want ErrDeliveryViolated", err)
	}
	if e.FaultStats.Lost == 0 {
		t.Errorf("expected lost messages, got %+v", e.FaultStats)
	}
}

func TestAsyncFaultsForeverPartitionTypedError(t *testing.T) {
	procs, _ := newEchoNet(4)
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.Faults = &LinkFaults{Seed: 5, Partitions: []Partition{{Start: 0, End: -1, Group: []int{0}}}}
	_, err := e.Run()
	if !errors.Is(err, ErrDeliveryViolated) {
		t.Fatalf("err = %v, want ErrDeliveryViolated", err)
	}
	if e.FaultStats.Lost == 0 {
		t.Errorf("expected lost messages across the unhealed cut, got %+v", e.FaultStats)
	}
}

func TestAsyncFaultsHealingPartitionDelivers(t *testing.T) {
	procs, origin := newEchoNet(4)
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.Faults = &LinkFaults{Seed: 5, Partitions: []Partition{{Start: 0, End: 6, Group: []int{0}}}}
	if _, err := e.Run(); err != nil {
		t.Fatalf("healing partition must stay within model: %v", err)
	}
	if origin.pongs != 3 {
		t.Errorf("origin pongs = %d, want 3", origin.pongs)
	}
	if e.FaultStats.PartitionHeals == 0 {
		t.Errorf("expected partition heals, got %+v", e.FaultStats)
	}
}

func TestAsyncFaultsDuplicationDelivers(t *testing.T) {
	procs, origin := newEchoNet(3)
	e := NewAsyncEngine(procs, FIFOSchedule{})
	e.Faults = &LinkFaults{Seed: 9, LinkProfile: LinkProfile{DupProb: 1}}
	if _, err := e.Run(); err != nil {
		t.Fatalf("duplication must stay within model: %v", err)
	}
	if origin.pings != 0 || origin.pongs < 2 {
		t.Errorf("origin state pings=%d pongs=%d", origin.pings, origin.pongs)
	}
	if e.FaultStats.Duplicated == 0 {
		t.Errorf("expected duplicates, got %+v", e.FaultStats)
	}
	if e.Messages <= 2*2 {
		t.Errorf("duplicated run delivered %d messages, want more than the fault-free 4", e.Messages)
	}
}

func TestAsyncFaultsBoundedDelaysDeliver(t *testing.T) {
	procs, origin := newEchoNet(4)
	e := NewAsyncEngine(procs, &RandomSchedule{Rng: rand.New(rand.NewSource(2))})
	e.Faults = &LinkFaults{Seed: 11, LinkProfile: LinkProfile{DelayMin: 1, DelayMax: 5}}
	if _, err := e.Run(); err != nil {
		t.Fatalf("bounded delays must stay within model: %v", err)
	}
	if origin.pongs != 3 {
		t.Errorf("origin pongs = %d, want 3", origin.pongs)
	}
	if e.FaultStats.Delayed == 0 {
		t.Errorf("expected delayed copies, got %+v", e.FaultStats)
	}
}

// TestAsyncFaultsReplayDeterminism: the same policy seed replays the
// identical delivery transcript and fault statistics; this is the
// property the simtest harness and the batch race test build on.
func TestAsyncFaultsReplayDeterminism(t *testing.T) {
	run := func() ([]string, FaultStats) {
		procs, _ := newEchoNet(5)
		e := NewAsyncEngine(procs, &RandomSchedule{Rng: rand.New(rand.NewSource(4))})
		e.Faults = &LinkFaults{
			Seed:        77,
			LinkProfile: LinkProfile{DropProb: 0.3, DupProb: 0.2, DelayMax: 3},
			Partitions:  []Partition{{Start: 2, End: 9, Group: []int{1}}},
		}
		var transcript []string
		e.TraceFn = func(m Message) {
			transcript = append(transcript, fmt.Sprintf("%d>%d:%s", m.From, m.To, m.Tag))
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return transcript, e.FaultStats
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1 != s2 {
		t.Fatalf("fault stats differ across replays: %+v vs %+v", s1, s2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("transcript diverges at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

// TestAsyncZeroPolicyMatchesNilFaults: an all-zero policy must reproduce
// the exact delivery order of the fault-free engine (the nil-Faults fast
// path), so enabling the layer without intensities is a no-op.
func TestAsyncZeroPolicyMatchesNilFaults(t *testing.T) {
	run := func(lf *LinkFaults) []string {
		procs, _ := newEchoNet(5)
		e := NewAsyncEngine(procs, &RandomSchedule{Rng: rand.New(rand.NewSource(6))})
		e.Faults = lf
		var transcript []string
		e.TraceFn = func(m Message) {
			transcript = append(transcript, fmt.Sprintf("%d>%d:%s", m.From, m.To, m.Tag))
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return transcript
	}
	plain := run(nil)
	zero := run(&LinkFaults{Seed: 123})
	if len(plain) != len(zero) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(plain), len(zero))
	}
	for i := range plain {
		if plain[i] != zero[i] {
			t.Fatalf("zero policy diverges from nil faults at %d: %q vs %q", i, plain[i], zero[i])
		}
	}
}

func TestSyncFaultsDuplicationWithinModel(t *testing.T) {
	n := 4
	procs := make([]SyncProcess, n)
	fl := make([]*flooder, n)
	for i := range procs {
		fl[i] = &flooder{id: i, rounds: 2}
		procs[i] = fl[i]
	}
	e := NewSyncEngine(procs)
	e.Faults = &LinkFaults{Seed: 8, LinkProfile: LinkProfile{DupProb: 1}}
	if _, err := e.Run(); err != nil {
		t.Fatalf("duplication must not break lockstep: %v", err)
	}
	if e.FaultStats.Duplicated != n*(n-1) {
		t.Errorf("Duplicated = %d, want %d", e.FaultStats.Duplicated, n*(n-1))
	}
	for i, f := range fl {
		if len(f.received) != 2*(n-1) {
			t.Errorf("process %d received %d, want %d duplicated deliveries", i, len(f.received), 2*(n-1))
		}
	}
}

func TestSyncFaultsDropIsOutOfModel(t *testing.T) {
	procs := []SyncProcess{&pingpong{id: 0}, &pingpong{id: 1}}
	e := NewSyncEngine(procs)
	e.Faults = &LinkFaults{Seed: 2, LinkProfile: LinkProfile{DropProb: 1}, MaxAttempts: 1}
	_, err := e.Run()
	if !errors.Is(err, ErrDeliveryViolated) {
		t.Fatalf("err = %v, want ErrDeliveryViolated", err)
	}
}

func TestSyncFaultsDelayIsOutOfModel(t *testing.T) {
	n := 4
	procs := make([]SyncProcess, n)
	for i := range procs {
		procs[i] = &flooder{id: i, rounds: 2}
	}
	e := NewSyncEngine(procs)
	e.Faults = &LinkFaults{Seed: 4, LinkProfile: LinkProfile{DelayMin: 1, DelayMax: 2}}
	_, err := e.Run()
	if !errors.Is(err, ErrDeliveryViolated) {
		t.Fatalf("err = %v, want ErrDeliveryViolated", err)
	}
	if e.FaultStats.Delayed == 0 {
		t.Errorf("expected delayed messages, got %+v", e.FaultStats)
	}
}

func TestSyncFaultsForeverPartitionIsOutOfModel(t *testing.T) {
	n := 4
	procs := make([]SyncProcess, n)
	for i := range procs {
		procs[i] = &flooder{id: i, rounds: 2}
	}
	e := NewSyncEngine(procs)
	e.Faults = &LinkFaults{Seed: 4, Partitions: []Partition{{Start: 0, End: -1, Group: []int{0}}}}
	_, err := e.Run()
	if !errors.Is(err, ErrDeliveryViolated) {
		t.Fatalf("err = %v, want ErrDeliveryViolated", err)
	}
	if e.FaultStats.Lost == 0 {
		t.Errorf("expected lost messages, got %+v", e.FaultStats)
	}
}
