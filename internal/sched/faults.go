package sched

// Seeded link-fault injection for both engines. A LinkFaults policy
// describes per-link drop probability, bounded delay, duplication and
// timed partitions. Every fault decision is a pure function of
// (policy seed, fault kind, link, message sequence number, attempt), so
// a run is bit-for-bit replayable from its seed regardless of delivery
// order — the rolls are hash-based, not drawn from a shared stream.
//
// The paper's model assumes reliable channels. Fault patterns that keep
// eventual delivery (drops recovered by retransmission, bounded delays,
// duplication, partitions that heal) stay *within* the model: protocols
// must still meet their bounds. Patterns that permanently lose a message
// (retransmission budget exhausted, a partition that never heals, any
// drop/delay under the lockstep synchronous engine) are *out of model*:
// the engines complete deterministically and return an error wrapping
// ErrDeliveryViolated instead of hanging or emitting wrong outputs
// silently.

import (
	"errors"
	"fmt"

	"relaxedbvc/internal/metrics"
)

// Fault-layer observability (cumulative across all runs in the process).
// Per-run values are returned on the engines' FaultStats.
var (
	faultDropsTotal   = metrics.DefaultCounter("sched_fault_drops_total")
	faultDupsTotal    = metrics.DefaultCounter("sched_fault_duplicates_total")
	faultRetransTotal = metrics.DefaultCounter("sched_fault_retransmits_total")
	faultHealsTotal   = metrics.DefaultCounter("sched_fault_partition_heals_total")
	faultLostTotal    = metrics.DefaultCounter("sched_fault_lost_total")
	faultDelaysTotal  = metrics.DefaultCounter("sched_fault_delays_total")
)

// ErrDeliveryViolated reports that an injected fault pattern broke the
// delivery model the protocols assume (a message was permanently lost,
// or lockstep synchrony was violated). The run still completes
// deterministically; its outputs must not be trusted.
var ErrDeliveryViolated = errors.New("sched: fault pattern violated the delivery model")

// Link identifies one directed channel.
type Link struct {
	From, To int
}

// LinkProfile is the fault intensity of one link (or the global default).
type LinkProfile struct {
	// DropProb is the per-delivery-attempt drop probability in [0, 1].
	DropProb float64
	// DupProb is the per-send duplication probability in [0, 1]; a
	// duplicate is an extra independent copy of the message.
	DupProb float64
	// DelayMin/DelayMax bound the extra delivery delay, drawn uniformly
	// from {DelayMin, ..., DelayMax} virtual time units (async: delivery
	// steps; sync: rounds). 0 <= DelayMin <= DelayMax.
	DelayMin, DelayMax int
}

// Partition is a timed network split: while active, messages between the
// Group and its complement are held. Start/End are in virtual time units
// (async delivery steps, sync rounds); the window is [Start, End).
// End < 0 means the partition never heals.
type Partition struct {
	Start, End int
	Group      []int
}

func (p *Partition) activeAt(t int) bool {
	return t >= p.Start && (p.End < 0 || t < p.End)
}

func (p *Partition) separates(from, to int) bool {
	inFrom, inTo := false, false
	for _, g := range p.Group {
		if g == from {
			inFrom = true
		}
		if g == to {
			inTo = true
		}
	}
	return inFrom != inTo
}

// LinkFaults is a seeded, replayable fault-injection policy. The zero
// value (or a nil pointer on the engine) injects nothing. The embedded
// LinkProfile is the default for every link; Links overrides it per
// directed channel.
type LinkFaults struct {
	// Seed drives every fault decision; the same seed replays the same
	// fault pattern exactly.
	Seed int64
	LinkProfile
	Links      map[Link]LinkProfile
	Partitions []Partition
	// RetransmitTimeout is how many virtual time units the async engine
	// waits before retransmitting a dropped copy (default 4).
	RetransmitTimeout int
	// MaxAttempts bounds delivery attempts per message copy in the async
	// engine (default 16; 1 disables retransmission). A copy that
	// exhausts its attempts with no other copy delivered or in flight is
	// permanently lost — an out-of-model pattern.
	MaxAttempts int
}

// ErrBadPolicy is the sentinel every Validate failure wraps, so
// callers classify invalid fault policies with errors.Is instead of
// string matching (the consensus layer re-wraps it under its own
// ErrBadFaults, keeping both sentinels matchable on one chain).
var ErrBadPolicy = errors.New("sched: invalid fault policy")

// Validate checks the policy's parameters.
func (lf *LinkFaults) Validate() error {
	check := func(name string, p LinkProfile) error {
		if p.DropProb < 0 || p.DropProb > 1 {
			return fmt.Errorf("%w: %s DropProb %v outside [0,1]", ErrBadPolicy, name, p.DropProb)
		}
		if p.DupProb < 0 || p.DupProb > 1 {
			return fmt.Errorf("%w: %s DupProb %v outside [0,1]", ErrBadPolicy, name, p.DupProb)
		}
		if p.DelayMin < 0 || p.DelayMax < p.DelayMin {
			return fmt.Errorf("%w: %s delay bounds [%d,%d] invalid (need 0 <= min <= max)", ErrBadPolicy, name, p.DelayMin, p.DelayMax)
		}
		return nil
	}
	if err := check("default", lf.LinkProfile); err != nil {
		return err
	}
	for l, p := range lf.Links {
		if err := check(fmt.Sprintf("link %d->%d", l.From, l.To), p); err != nil {
			return err
		}
	}
	for i, p := range lf.Partitions {
		if p.Start < 0 {
			return fmt.Errorf("%w: partition %d Start %d negative", ErrBadPolicy, i, p.Start)
		}
		if p.End >= 0 && p.End <= p.Start {
			return fmt.Errorf("%w: partition %d window [%d,%d) empty", ErrBadPolicy, i, p.Start, p.End)
		}
	}
	if lf.RetransmitTimeout < 0 {
		return fmt.Errorf("%w: RetransmitTimeout %d negative", ErrBadPolicy, lf.RetransmitTimeout)
	}
	if lf.MaxAttempts < 0 {
		return fmt.Errorf("%w: MaxAttempts %d negative", ErrBadPolicy, lf.MaxAttempts)
	}
	return nil
}

func (lf *LinkFaults) maxAttempts() int {
	if lf.MaxAttempts <= 0 {
		return 16
	}
	return lf.MaxAttempts
}

func (lf *LinkFaults) retransmitTimeout() int {
	if lf.RetransmitTimeout <= 0 {
		return 4
	}
	return lf.RetransmitTimeout
}

// profile returns the effective fault profile of one directed link.
func (lf *LinkFaults) profile(from, to int) LinkProfile {
	if lf.Links != nil {
		if p, ok := lf.Links[Link{From: from, To: to}]; ok {
			return p
		}
	}
	return lf.LinkProfile
}

// Fault-roll kinds, folded into the hash so drop/dup/delay decisions on
// the same copy are independent.
const (
	rollDrop = 1 + iota
	rollDup
	rollDelay
)

// splitmix64 finalizer: a high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a deterministic uniform sample in [0, 1) for one fault
// decision, independent of every other decision and of delivery order.
func (lf *LinkFaults) roll(kind, from, to, seq, attempt int) float64 {
	h := mix64(uint64(lf.Seed))
	for _, v := range [...]uint64{uint64(kind), uint64(from), uint64(to), uint64(seq), uint64(attempt)} {
		h = mix64(h ^ v)
	}
	return float64(h>>11) / (1 << 53)
}

// drops decides whether delivery attempt `attempt` of copy `seq` on the
// given link is dropped.
func (lf *LinkFaults) drops(from, to, seq, attempt int) bool {
	p := lf.profile(from, to).DropProb
	return p > 0 && lf.roll(rollDrop, from, to, seq, attempt) < p
}

// duplicates decides whether the send of copy `seq` spawns a duplicate.
func (lf *LinkFaults) duplicates(from, to, seq int) bool {
	p := lf.profile(from, to).DupProb
	return p > 0 && lf.roll(rollDup, from, to, seq, 0) < p
}

// delay returns the extra delivery delay of copy `seq` in virtual time
// units.
func (lf *LinkFaults) delay(from, to, seq int) int {
	p := lf.profile(from, to)
	if p.DelayMax <= 0 {
		return 0
	}
	span := p.DelayMax - p.DelayMin + 1
	return p.DelayMin + int(lf.roll(rollDelay, from, to, seq, 0)*float64(span))
}

// blockedAt reports whether any active partition separates the link at
// virtual time t.
func (lf *LinkFaults) blockedAt(from, to, t int) bool {
	for i := range lf.Partitions {
		p := &lf.Partitions[i]
		if p.activeAt(t) && p.separates(from, to) {
			return true
		}
	}
	return false
}

// clearFrom returns the earliest time >= t at which no active partition
// separates the link, or ok=false if the link never clears (some
// separating partition has End < 0 and no later window frees it).
func (lf *LinkFaults) clearFrom(from, to, t int) (int, bool) {
	// Each iteration jumps past the End of one blocking partition, so the
	// loop terminates within len(Partitions)+1 rounds.
	for iter := 0; iter <= len(lf.Partitions); iter++ {
		blocked := false
		for i := range lf.Partitions {
			p := &lf.Partitions[i]
			if p.activeAt(t) && p.separates(from, to) {
				if p.End < 0 {
					return 0, false
				}
				if p.End > t {
					t = p.End
				}
				blocked = true
			}
		}
		if !blocked {
			return t, true
		}
	}
	return t, true
}

// FaultStats counts injected fault events for one engine run.
type FaultStats struct {
	// Dropped counts delivery attempts the policy dropped.
	Dropped int
	// Duplicated counts extra copies spawned by duplication.
	Duplicated int
	// Retransmits counts dropped copies re-enqueued for another attempt.
	Retransmits int
	// PartitionHeals counts messages delivered after having been held by
	// a partition.
	PartitionHeals int
	// Delayed counts copies assigned a positive extra delay.
	Delayed int
	// Lost counts logical messages that became permanently undeliverable
	// (out of model).
	Lost int
}

// Add accumulates another run's counts (used when one consensus
// execution spans several engine runs, e.g. per-commander broadcasts).
func (s *FaultStats) Add(o FaultStats) {
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Retransmits += o.Retransmits
	s.PartitionHeals += o.PartitionHeals
	s.Delayed += o.Delayed
	s.Lost += o.Lost
}

// publish adds the run's counts to the process-wide metrics registry.
func (s FaultStats) publish() {
	faultDropsTotal.Add(int64(s.Dropped))
	faultDupsTotal.Add(int64(s.Duplicated))
	faultRetransTotal.Add(int64(s.Retransmits))
	faultHealsTotal.Add(int64(s.PartitionHeals))
	faultLostTotal.Add(int64(s.Lost))
	faultDelaysTotal.Add(int64(s.Delayed))
}
