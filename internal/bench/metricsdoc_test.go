package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"relaxedbvc/internal/experiments"
	"relaxedbvc/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenDoc builds a fully deterministic metrics document from a
// private registry (never the process-wide one, which other tests
// mutate).
func goldenDoc() *MetricsDoc {
	reg := metrics.NewRegistry()
	reg.Counter("consensus_rounds_total").Add(12)
	reg.Counter("consensus_messages_total").Add(240)
	reg.Counter("geom_cache_hits_total").Add(15)
	reg.Counter("geom_cache_misses_total").Add(20)
	reg.Gauge("batch_queue_depth").Set(0)
	h := reg.Histogram("batch_trial_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	snap := reg.Snapshot()
	outcomes := []*experiments.Outcome{
		{ID: "E1", Title: "exact BVC bounds", Pass: true, Elapsed: 1500 * time.Millisecond, Metrics: snap, MetricsCumulative: snap},
	}
	return BuildMetricsDoc(outcomes, snap)
}

// TestMetricsDocGolden pins the exact bytes of the -metrics-out format:
// field names, field order, histogram bucket encoding (including the
// "+Inf" bound) and indentation. A diff here means downstream consumers
// of metrics.json (the CI artifacts, ad-hoc jq pipelines) will see a
// format change — update the golden file deliberately with
// `go test ./internal/bench -run Golden -update-golden`.
func TestMetricsDocGolden(t *testing.T) {
	got, err := goldenDoc().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metricsdoc.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("metrics document format drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsDocDeterministic marshals the same logical document twice
// through fresh registries; byte equality is what makes the JSON field
// order "stable" in the sense the golden file relies on (map keys are
// sorted by encoding/json, bucket layouts are fixed).
func TestMetricsDocDeterministic(t *testing.T) {
	a, err := goldenDoc().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenDoc().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("identical documents marshaled differently")
	}
}
