package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	bvc "relaxedbvc"
)

// ACSReport is the BENCH_acs.json schema: streaming-decision throughput
// of the BKR-style ACS layer at several epoch batch sizes, on the
// deterministic simulation (the backend every fingerprint is pinned
// to). Deterministic is the cross-run fingerprint comparison — every
// repeat of a case must seal the bit-identical stream.
type ACSReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Cluster shape shared by every case.
	N int `json:"n"`
	F int `json:"f"`
	D int `json:"d"`

	Cases []ACSCase `json:"cases"`

	Deterministic bool `json:"deterministic"`
}

// ACSCase is one epoch-batch-size measurement.
type ACSCase struct {
	// Epochs is the stream length of each run.
	Epochs int `json:"epochs"`
	// Runs is how many times the stream ran (timing averages over them).
	Runs int `json:"runs"`

	Seconds      float64 `json:"seconds"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
	SlotsPerSec  float64 `json:"slots_per_sec"`

	// Rounds and Messages are per-run engine totals (identical across
	// repeats — lockstep determinism).
	Rounds   int `json:"rounds"`
	Messages int `json:"messages"`
}

// acsSpec builds the benchmark stream: a 4-node cluster with one
// scripted equivocator (the adversarial steady state — Bracha quorums
// do refusal work every epoch) and LCG-spread proposals.
func acsSpec(epochs int, seed int64) bvc.Spec {
	const n, f, d = 4, 1, 2
	spec := bvc.Spec{
		Protocol: bvc.ProtocolACS, N: n, F: f, D: d,
		Proposals:    make([][]bvc.Vector, epochs),
		ACSByzantine: map[int]bvc.ACSBehavior{3: bvc.ACSEquivocate},
	}
	for e := 0; e < epochs; e++ {
		spec.Proposals[e] = inputs(seed+int64(e), n, d)
	}
	return spec
}

// RunACS measures streaming throughput at each epoch batch size and
// verifies cross-run fingerprint determinism. Progress goes to diag.
func RunACS(ctx context.Context, seed int64, diag io.Writer) (*ACSReport, error) {
	rep := &ACSReport{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		N:          4, F: 1, D: 2,
		Deterministic: true,
	}
	for _, epochs := range []int{1, 4, 16} {
		runs := 96 / epochs
		spec := acsSpec(epochs, seed)
		var ref string
		var rounds, messages, slots int
		start := time.Now()
		for r := 0; r < runs; r++ {
			res, err := bvc.Run(ctx, spec)
			if err != nil {
				return nil, fmt.Errorf("acs bench epochs=%d run %d: %w", epochs, r, err)
			}
			fp := bvc.ACSFingerprint(res.ACS[0])
			if r == 0 {
				ref = fp
				rounds, messages = res.Rounds, res.Messages
				slots = res.Metrics.ACSSlots
			} else if fp != ref {
				rep.Deterministic = false
				fmt.Fprintf(diag, "bench: acs epochs=%d run %d sealed a different stream\n", epochs, r)
			}
		}
		elapsed := time.Since(start).Seconds()
		rep.Cases = append(rep.Cases, ACSCase{
			Epochs: epochs, Runs: runs,
			Seconds:      elapsed,
			EpochsPerSec: float64(epochs*runs) / elapsed,
			SlotsPerSec:  float64(slots*runs) / elapsed,
			Rounds:       rounds,
			Messages:     messages,
		})
	}
	if !rep.Deterministic {
		return rep, fmt.Errorf("acs streams diverged across repeat runs")
	}
	return rep, nil
}

// Summarize prints the human-readable digest of an ACS report.
func (r *ACSReport) Summarize(w io.Writer) {
	fmt.Fprintf(w, "acs stream bench: n=%d f=%d d=%d on %d CPU(s)\n", r.N, r.F, r.D, r.NumCPU)
	for _, c := range r.Cases {
		fmt.Fprintf(w, "  epochs=%-3d %4d runs  %7.1f epochs/s  %7.1f slots/s  (%d rounds, %d msgs per run)\n",
			c.Epochs, c.Runs, c.EpochsPerSec, c.SlotsPerSec, c.Rounds, c.Messages)
	}
	fmt.Fprintf(w, "  deterministic across repeats: %v\n", r.Deterministic)
}

// Write marshals the report to path (the committed BENCH_acs.json).
func (r *ACSReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadACS reads a report written by ACSReport.Write.
func LoadACS(path string) (*ACSReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ACSReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareACS guards a fresh ACS report against the committed baseline:
// it fails on any nondeterminism, and on a per-case epochs/sec
// regression beyond threshold. Slots/sec is reported but advisory — it
// moves with epochs/sec on identical sweeps.
func CompareACS(cur, base *ACSReport, threshold float64, w io.Writer) error {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if !cur.Deterministic {
		return fmt.Errorf("acs bench guard: streams diverged across repeat runs")
	}
	fmt.Fprintf(w, "acs bench guard (threshold: %.0f%% throughput loss)\n", 100*threshold)
	fmt.Fprintf(w, "  %-12s %12s %12s %8s\n", "case", "current", "baseline", "delta")
	baseByEpochs := make(map[int]ACSCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByEpochs[c.Epochs] = c
	}
	var worst error
	for _, c := range cur.Cases {
		b, ok := baseByEpochs[c.Epochs]
		if !ok || b.EpochsPerSec == 0 {
			fmt.Fprintf(w, "  epochs=%-5d %12.1f %12s %8s\n", c.Epochs, c.EpochsPerSec, "-", "new")
			continue
		}
		rel := (c.EpochsPerSec - b.EpochsPerSec) / b.EpochsPerSec
		fmt.Fprintf(w, "  epochs=%-5d %12.1f %12.1f %+7.1f%%\n", c.Epochs, c.EpochsPerSec, b.EpochsPerSec, 100*rel)
		if -rel > threshold && worst == nil {
			worst = fmt.Errorf("acs bench guard: epochs=%d throughput regression %.1f%% exceeds %.0f%% threshold (%.1f -> %.1f epochs/s)",
				c.Epochs, -100*rel, 100*threshold, b.EpochsPerSec, c.EpochsPerSec)
		}
	}
	return worst
}
