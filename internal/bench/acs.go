package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	bvc "relaxedbvc"
)

// ACSReport is the BENCH_acs.json schema: streaming-decision throughput
// of the BKR-style ACS layer across cluster shapes (n in {4, 7, 10},
// d in {2, 3}, f = floor((n-1)/3)) and epoch batch sizes, on the
// deterministic simulation (the backend every fingerprint is pinned
// to). Deterministic is the cross-run fingerprint comparison — every
// repeat of a case must seal the bit-identical stream.
type ACSReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	Cases []ACSCase `json:"cases"`

	Deterministic bool `json:"deterministic"`
}

// ACSCase is one (cluster shape, epoch batch size) measurement.
type ACSCase struct {
	// Cluster shape: n processes, f faults (= floor((n-1)/3), the
	// largest the n >= 3f+1 resilience bound allows), d dimensions.
	N int `json:"n"`
	F int `json:"f"`
	D int `json:"d"`

	// Epochs is the stream length of each run.
	Epochs int `json:"epochs"`
	// Runs is how many times the stream ran (timing averages over them).
	Runs int `json:"runs"`

	Seconds      float64 `json:"seconds"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
	SlotsPerSec  float64 `json:"slots_per_sec"`

	// Rounds and Messages are per-run engine totals (identical across
	// repeats — lockstep determinism).
	Rounds   int `json:"rounds"`
	Messages int `json:"messages"`
}

// acsFaults is the f the sweep runs each n at: the maximum under the
// n >= 3f+1 resilience bound.
func acsFaults(n int) int { return (n - 1) / 3 }

// acsSpec builds one benchmark stream: an n-node cluster with one
// scripted equivocator (the adversarial steady state — Bracha quorums
// do refusal work every epoch) and LCG-spread proposals.
func acsSpec(n, d, epochs int, seed int64) bvc.Spec {
	spec := bvc.Spec{
		Protocol: bvc.ProtocolACS, N: n, F: acsFaults(n), D: d,
		Proposals:    make([][]bvc.Vector, epochs),
		ACSByzantine: map[int]bvc.ACSBehavior{n - 1: bvc.ACSEquivocate},
	}
	for e := 0; e < epochs; e++ {
		spec.Proposals[e] = inputs(seed+int64(e), n, d)
	}
	return spec
}

// acsSweep enumerates the benchmark grid: the 4-node base shape runs
// the epoch-batch sweep (streaming amortization), every shape of the
// n x d grid runs at a fixed batch of 4 epochs with the run count
// scaled down as n grows (per-epoch cost grows superlinearly in n —
// quorum work is O(n^2) messages and the decision layer solves C(n,f)
// geometry per slot).
func acsSweep() []struct{ n, d, epochs, runs int } {
	sweep := []struct{ n, d, epochs, runs int }{
		{4, 2, 1, 96},
		{4, 2, 4, 24},
		{4, 2, 16, 6},
	}
	for _, shape := range []struct{ n, d int }{{4, 3}, {7, 2}, {7, 3}, {10, 2}, {10, 3}} {
		runs := 24
		switch {
		case shape.n >= 10:
			runs = 4
		case shape.n >= 7:
			runs = 8
		}
		sweep = append(sweep, struct{ n, d, epochs, runs int }{shape.n, shape.d, 4, runs})
	}
	return sweep
}

// RunACS measures streaming throughput for each case of the sweep and
// verifies cross-run fingerprint determinism. Progress goes to diag.
func RunACS(ctx context.Context, seed int64, diag io.Writer) (*ACSReport, error) {
	rep := &ACSReport{
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Deterministic: true,
	}
	for _, c := range acsSweep() {
		spec := acsSpec(c.n, c.d, c.epochs, seed)
		var ref string
		var rounds, messages, slots int
		start := time.Now()
		for r := 0; r < c.runs; r++ {
			res, err := bvc.Run(ctx, spec)
			if err != nil {
				return nil, fmt.Errorf("acs bench n=%d d=%d epochs=%d run %d: %w", c.n, c.d, c.epochs, r, err)
			}
			fp := bvc.ACSFingerprint(res.ACS[0])
			if r == 0 {
				ref = fp
				rounds, messages = res.Rounds, res.Messages
				slots = res.Metrics.ACSSlots
			} else if fp != ref {
				rep.Deterministic = false
				fmt.Fprintf(diag, "bench: acs n=%d d=%d epochs=%d run %d sealed a different stream\n", c.n, c.d, c.epochs, r)
			}
		}
		elapsed := time.Since(start).Seconds()
		rep.Cases = append(rep.Cases, ACSCase{
			N: c.n, F: acsFaults(c.n), D: c.d,
			Epochs: c.epochs, Runs: c.runs,
			Seconds:      elapsed,
			EpochsPerSec: float64(c.epochs*c.runs) / elapsed,
			SlotsPerSec:  float64(slots*c.runs) / elapsed,
			Rounds:       rounds,
			Messages:     messages,
		})
		fmt.Fprintf(diag, "bench: acs n=%-2d f=%d d=%d epochs=%-3d %4d runs  %.1f epochs/s\n",
			c.n, acsFaults(c.n), c.d, c.epochs, c.runs, float64(c.epochs*c.runs)/elapsed)
	}
	if !rep.Deterministic {
		return rep, fmt.Errorf("acs streams diverged across repeat runs")
	}
	return rep, nil
}

// Summarize prints the human-readable digest of an ACS report.
func (r *ACSReport) Summarize(w io.Writer) {
	fmt.Fprintf(w, "acs stream bench on %d CPU(s)\n", r.NumCPU)
	for _, c := range r.Cases {
		fmt.Fprintf(w, "  n=%-2d f=%d d=%d epochs=%-3d %4d runs  %7.1f epochs/s  %7.1f slots/s  (%d rounds, %d msgs per run)\n",
			c.N, c.F, c.D, c.Epochs, c.Runs, c.EpochsPerSec, c.SlotsPerSec, c.Rounds, c.Messages)
	}
	fmt.Fprintf(w, "  deterministic across repeats: %v\n", r.Deterministic)
}

// Write marshals the report to path (the committed BENCH_acs.json).
func (r *ACSReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadACS reads a report written by ACSReport.Write.
func LoadACS(path string) (*ACSReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ACSReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// acsCaseKey identifies a case across reports: shape plus batch size.
type acsCaseKey struct{ n, d, epochs int }

// CompareACS guards a fresh ACS report against the committed baseline:
// it fails on any nondeterminism, and on a per-case epochs/sec
// regression beyond threshold. Cases are keyed by (n, d, epochs);
// cases without a baseline twin (e.g. a freshly widened sweep) are
// reported as new and pass. Slots/sec is reported but advisory — it
// moves with epochs/sec on identical sweeps.
func CompareACS(cur, base *ACSReport, threshold float64, w io.Writer) error {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if !cur.Deterministic {
		return fmt.Errorf("acs bench guard: streams diverged across repeat runs")
	}
	fmt.Fprintf(w, "acs bench guard (threshold: %.0f%% throughput loss)\n", 100*threshold)
	fmt.Fprintf(w, "  %-22s %12s %12s %8s\n", "case", "current", "baseline", "delta")
	baseByKey := make(map[acsCaseKey]ACSCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByKey[acsCaseKey{c.N, c.D, c.Epochs}] = c
	}
	var worst error
	for _, c := range cur.Cases {
		tag := fmt.Sprintf("n=%d d=%d epochs=%d", c.N, c.D, c.Epochs)
		b, ok := baseByKey[acsCaseKey{c.N, c.D, c.Epochs}]
		if !ok || b.EpochsPerSec == 0 {
			fmt.Fprintf(w, "  %-22s %12.1f %12s %8s\n", tag, c.EpochsPerSec, "-", "new")
			continue
		}
		rel := (c.EpochsPerSec - b.EpochsPerSec) / b.EpochsPerSec
		fmt.Fprintf(w, "  %-22s %12.1f %12.1f %+7.1f%%\n", tag, c.EpochsPerSec, b.EpochsPerSec, 100*rel)
		if -rel > threshold && worst == nil {
			worst = fmt.Errorf("acs bench guard: %s throughput regression %.1f%% exceeds %.0f%% threshold (%.1f -> %.1f epochs/s)",
				tag, -100*rel, 100*threshold, b.EpochsPerSec, c.EpochsPerSec)
		}
	}
	return worst
}
