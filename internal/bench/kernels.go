// Kernel-parallelism benchmark: times the combinatorial geometry
// kernels (Tverberg partition scan, k-relaxed membership sweep, Lp
// minimax descent) along two axes — one kernel worker versus the full
// worker pool, and the fast single-thread path (filtered predicates +
// warm-started LPs, the default) versus the legacy exact-everything
// path (filters and warm start disabled, one worker: the code path
// before the filtered-predicate work landed). Outputs are verified
// bit-identical across all lanes, and the memo cache's warm lookup
// path is measured. Behind `bvcbench -kernel-bench`, `make
// bench-kernels` and the kernel half of the bench-regression guard;
// the committed report is BENCH_kernels.json.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	bvc "relaxedbvc"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// KernelCase is one kernel's measurements in the BENCH_kernels.json
// report.
type KernelCase struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`

	Workers1Seconds float64 `json:"workers1_seconds"`
	WorkersNSeconds float64 `json:"workers_n_seconds"`
	SeqRoundsPerSec float64 `json:"workers1_rounds_per_sec"`
	ParRoundsPerSec float64 `json:"workers_n_rounds_per_sec"`
	Speedup         float64 `json:"speedup"`

	// LegacySeconds times the same rounds at one worker with the
	// filtered predicates and the LP warm start disabled — the exact
	// code path before those optimizations landed. SingleThreadSpeedup
	// is LegacySeconds / Workers1Seconds: the single-thread win of the
	// fast path, independent of core count.
	LegacySeconds       float64 `json:"legacy_seconds"`
	SingleThreadSpeedup float64 `json:"single_thread_speedup"`

	// SpeedupGate is the minimum speedup this case must show on a
	// machine with GOMAXPROCS >= 4 (0 = parity-only case, e.g. the
	// early-exit feasible scan where sequential stops at the first
	// hit and there is little left to parallelize).
	SpeedupGate float64 `json:"speedup_gate"`

	// SingleThreadGate is the minimum SingleThreadSpeedup this case
	// must clear. Unlike SpeedupGate it arms on every machine — the
	// comparison is same-core fast-vs-legacy, so core count cannot
	// excuse a miss.
	SingleThreadGate float64 `json:"single_thread_gate"`

	// OutputsIdentical is the bit-for-bit fingerprint comparison of
	// the kernel outputs across the two worker settings.
	OutputsIdentical bool `json:"outputs_identical"`
}

// KernelReport is the BENCH_kernels.json schema.
type KernelReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`

	Cases []KernelCase `json:"cases"`

	// MinSweepSpeedup is the smallest speedup among the full-sweep
	// cases (SpeedupGate >= 2) — the headline number the guard holds
	// at 2x on multicore machines.
	MinSweepSpeedup  float64 `json:"min_sweep_speedup"`
	OutputsIdentical bool    `json:"outputs_identical"`

	// MinSingleThreadSpeedup is the smallest SingleThreadSpeedup among
	// the single-thread-gated cases — the fast-vs-legacy headline the
	// guard holds at 2x on every machine.
	MinSingleThreadSpeedup float64 `json:"min_single_thread_speedup"`

	// FastPathCounters is the metrics delta of the fast-path machinery
	// (warm-start hits, filter accept/reject/fallback splits, arena
	// reuse) accumulated over the benchmark run — the observability
	// that the speedups come from the mechanisms they claim to.
	FastPathCounters map[string]int64 `json:"fast_path_counters,omitempty"`

	// Warm memo-cache lookup path (pooled key build + sharded Get).
	CacheHitNsPerOp     float64 `json:"cache_hit_ns_per_op"`
	CacheHitAllocsPerOp float64 `json:"cache_hit_allocs_per_op"`
}

// fingerprint is an FNV-1a accumulator over the exact bit patterns of
// kernel outputs; equal fingerprints across worker settings certify
// bit-identical results.
type fingerprint uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFingerprint() fingerprint { return fnvOffset }

func (f *fingerprint) word(w uint64) {
	for i := 0; i < 8; i++ {
		*f ^= fingerprint(w & 0xff)
		*f *= fnvPrime
		w >>= 8
	}
}

func (f *fingerprint) int(v int)       { f.word(uint64(int64(v))) }
func (f *fingerprint) float(v float64) { f.word(math.Float64bits(v)) }

func (f *fingerprint) bool(v bool) {
	if v {
		f.word(1)
	} else {
		f.word(0)
	}
}

func (f *fingerprint) vec(v vec.V) {
	f.int(len(v))
	for _, x := range v {
		f.float(x)
	}
}

// kernelSet builds n deterministic pseudo-random points in R^d with the
// same LCG as the batch sweep, so reports are reproducible by seed.
func kernelSet(seed int64, n, d int) *vec.Set {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*10 - 5
	}
	pts := make([]vec.V, n)
	for i := range pts {
		v := vec.New(d)
		for j := range v {
			v[j] = next()
		}
		pts[i] = v
	}
	return vec.NewSet(pts...)
}

// kernelDef is one benchmark workload: a deterministic closure over
// fixed inputs whose outputs are folded into the fingerprint. gate is
// the multicore parallel-speedup floor, stGate the always-armed
// single-thread fast-vs-legacy floor.
type kernelDef struct {
	name   string
	gate   float64
	stGate float64
	run    func(fp *fingerprint)
}

// kernelDefs builds the workload list. Inputs are constructed once and
// shared across rounds and worker settings; every kernel treats its
// arguments as read-only.
func kernelDefs(seed int64) []kernelDef {
	// Full-sweep scan: n = (d+1)f points in general position admit no
	// Tverberg partition (the Section 8 tightness regime), so the scan
	// must reject all S(8,3) = 966 candidates — the worst case the
	// parallel chunked scan is built for.
	infeasible := kernelSet(seed, 8, 3)
	// First-hit scan: n = (d+1)f + 1 guarantees a partition exists
	// (Theorem 7); sequential stops at the first hit, so this case is
	// gated on parity only.
	feasible := kernelSet(seed+1, 9, 3)
	// Projection sweep: C(10, 4) = 210 coordinate subsets per query.
	// The queries are convex combinations of the set, so membership
	// holds and the sweep cannot short-circuit on an early failing
	// projection — it must test all 210 subsets (the AllOf worst case
	// the parallel path is built for).
	hullSet := kernelSet(seed+2, 14, 10)
	center := vec.Mean(hullSet.Points())
	queries := make([]vec.V, 6)
	for i := range queries {
		queries[i] = vec.Lerp(center, hullSet.At(i), 0.5)
	}
	// Lp minimax: C(9, 7) = 36 dropped subsets per descent step.
	family := kernelSet(seed+4, 9, 3)
	// H_k-only queries: the cross-polytope hull is the L1 ball of radius
	// crossR, so a point whose largest k-coordinate sum stays below
	// crossR while its full L1 norm exceeds it lies in H_k(S) \ conv(S).
	// The conv(S)-accept prefilter of InHullK provably misses, and every
	// one of the C(d,k) projection tests must run (and accept) — the
	// full-sweep workload the parallel path and the membership screens
	// are measured on.
	const crossD, crossK = 10, 4
	const crossR = 3.0
	crossPts := make([]vec.V, 0, 2*crossD)
	for i := 0; i < crossD; i++ {
		for _, r := range []float64{crossR, -crossR} {
			v := vec.New(crossD)
			v[i] = r
			crossPts = append(crossPts, v)
		}
	}
	crossSet := vec.NewSet(crossPts...)
	jit := kernelSet(seed+3, 6, crossD)
	hkQueries := make([]vec.V, 6)
	// Center coordinate c: max k-sum ~ k*c*1.02 < crossR < d*c*0.98 ~ L1
	// norm, with ~40% slack on both sides at +/-2% jitter.
	c := 2 * crossR / float64(crossK+crossD)
	for i := range hkQueries {
		q := vec.New(crossD)
		for j := 0; j < crossD; j++ {
			q[j] = c * (1 + 0.004*jit.At(i)[j])
		}
		hkQueries[i] = q
	}
	// Γ_(δ,p) threshold scan: one dropped-subset family probed at a
	// descending delta ladder. The joint LP's shape is identical across
	// the ladder — only the delta bounds move — so the warm-started
	// solver re-certifies the infeasible tail from the previous basis.
	gammaSet := kernelSet(seed+6, 7, 2)
	gammaFam := relax.DroppedSubsets(gammaSet, 2)
	gammaDeltas := []float64{4, 2, 1, 0.5, 0.25, 0.12, 0.06, 0.03}

	return []kernelDef{
		{
			name:   "tverberg_scan_infeasible",
			gate:   2,
			stGate: 2,
			run: func(fp *fingerprint) {
				blocks, pt, ok := tverberg.Partition(infeasible, 2)
				fp.bool(ok)
				fp.int(len(blocks))
				fp.vec(pt)
			},
		},
		{
			name: "tverberg_scan_feasible",
			gate: 0,
			run: func(fp *fingerprint) {
				blocks, pt, ok := tverberg.Partition(feasible, 2)
				fp.bool(ok)
				fp.int(len(blocks))
				for _, b := range blocks {
					fp.int(len(b))
					for _, i := range b {
						fp.int(i)
					}
				}
				fp.vec(pt)
			},
		},
		{
			// Member queries: the conv(S)-accept prefilter collapses each
			// sweep to one full-space membership test, so there is nothing
			// left for the worker pool (parallel gate 0) — the case gates
			// the single-thread fast-vs-legacy win instead.
			name:   "inhullk_projection_sweep",
			gate:   0,
			stGate: 2,
			run: func(fp *fingerprint) {
				for _, q := range queries {
					fp.bool(relax.InHullK(q, hullSet, 4))
				}
			},
		},
		{
			name:   "inhullk_hk_only_sweep",
			gate:   2,
			stGate: 0,
			run: func(fp *fingerprint) {
				for _, q := range hkQueries {
					fp.bool(relax.InHullK(q, crossSet, crossK))
				}
			},
		},
		{
			name:   "gamma_delta_scan",
			gate:   0,
			stGate: 0,
			run: func(fp *fingerprint) {
				for _, delta := range gammaDeltas {
					pt, ok := relax.IntersectRelaxedHulls(gammaFam, delta, math.Inf(1))
					fp.bool(ok)
					fp.vec(pt)
				}
			},
		},
		{
			name: "minimax_deltastar_pinf",
			gate: 0,
			run: func(fp *fingerprint) {
				r := minimax.DeltaStarP(family, 2, math.Inf(1))
				fp.float(r.Delta)
				fp.vec(r.Point)
			},
		},
	}
}

// RunKernels executes every kernel workload at one worker and at the
// full pool, fingerprint-checks the outputs, measures the warm cache
// lookup, and returns the report. workers <= 0 means GOMAXPROCS, but
// at least 4 so the parallel scan path (and its parity check) is
// exercised even on small machines — speedup gates still key off the
// real GOMAXPROCS. Progress diagnostics go to diag (pass io.Discard
// to silence them).
func RunKernels(workers int, seed int64, diag io.Writer) (*KernelReport, error) {
	if workers <= 0 {
		if workers = runtime.GOMAXPROCS(0); workers < 4 {
			workers = 4
		}
	}

	// Kernel timing must see the kernels, not the memo tables: with
	// caching on, the second worker setting would replay the first
	// setting's cache and time map lookups instead of LP solves.
	bvc.SetCaching(false)
	bvc.ResetCaches()
	defer func() {
		bvc.SetCaching(true)
		bvc.ResetCaches()
		par.SetKernelWorkers(0)
		geom.SetFilteredPredicates(true)
		lp.SetWarmStart(true)
	}()

	rep := &KernelReport{
		NumCPU:                 runtime.NumCPU(),
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		Workers:                workers,
		MinSweepSpeedup:        math.Inf(1),
		MinSingleThreadSpeedup: math.Inf(1),
		OutputsIdentical:       true,
	}
	countersBefore := metrics.Default().Snapshot()

	const targetSeconds = 0.25
	const maxRounds = 64
	for _, def := range kernelDefs(seed) {
		// Calibrate the round count on the parallel setting so each
		// case gets a stable timing window without ballooning the
		// sequential pass.
		par.SetKernelWorkers(workers)
		calStart := time.Now()
		calFp := newFingerprint()
		def.run(&calFp)
		calElapsed := time.Since(calStart).Seconds()
		rounds := 1
		if calElapsed > 0 && calElapsed < targetSeconds {
			if rounds = int(targetSeconds / calElapsed); rounds > maxRounds {
				rounds = maxRounds
			}
		}

		seqElapsed, seqFp, err := timeKernel(def, 1, rounds)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", def.name, err)
		}
		parElapsed, parFp, err := timeKernel(def, workers, rounds)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", def.name, err)
		}
		legacyElapsed, legacyFp, err := timeKernelLegacy(def, rounds)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", def.name, err)
		}

		// The fingerprint equality across all three lanes doubles as a
		// parity assertion: the filtered screens and the warm start must
		// not move a single output bit versus the legacy exact path.
		identical := seqFp == parFp && calFp == parFp && legacyFp == seqFp
		c := KernelCase{
			Name:                def.name,
			Rounds:              rounds,
			Workers1Seconds:     seqElapsed,
			WorkersNSeconds:     parElapsed,
			SeqRoundsPerSec:     float64(rounds) / seqElapsed,
			ParRoundsPerSec:     float64(rounds) / parElapsed,
			Speedup:             seqElapsed / parElapsed,
			LegacySeconds:       legacyElapsed,
			SingleThreadSpeedup: legacyElapsed / seqElapsed,
			SpeedupGate:         def.gate,
			SingleThreadGate:    def.stGate,
			OutputsIdentical:    identical,
		}
		rep.Cases = append(rep.Cases, c)
		if !identical {
			rep.OutputsIdentical = false
			fmt.Fprintf(diag, "bench: kernel %s outputs differ across worker/filter settings\n", def.name)
		}
		if def.gate >= 2 && c.Speedup < rep.MinSweepSpeedup {
			rep.MinSweepSpeedup = c.Speedup
		}
		if def.stGate > 0 && c.SingleThreadSpeedup < rep.MinSingleThreadSpeedup {
			rep.MinSingleThreadSpeedup = c.SingleThreadSpeedup
		}
		fmt.Fprintf(diag, "bench: kernel %-26s %2d rounds  par %.2fx  single-thread %.2fx\n",
			def.name, rounds, c.Speedup, c.SingleThreadSpeedup)
	}
	if math.IsInf(rep.MinSweepSpeedup, 1) {
		rep.MinSweepSpeedup = 0
	}
	if math.IsInf(rep.MinSingleThreadSpeedup, 1) {
		rep.MinSingleThreadSpeedup = 0
	}
	rep.FastPathCounters = fastPathCounters(metrics.Default().Snapshot().Diff(countersBefore))

	rep.CacheHitNsPerOp, rep.CacheHitAllocsPerOp = measureCacheHit(seed)

	if !rep.OutputsIdentical {
		return rep, fmt.Errorf("kernel outputs differ between worker settings")
	}
	return rep, nil
}

// timeKernel runs def for rounds iterations at the given worker count
// and returns the elapsed wall time and the (round-invariant) output
// fingerprint.
func timeKernel(def kernelDef, workers, rounds int) (float64, fingerprint, error) {
	par.SetKernelWorkers(workers)
	var first fingerprint
	start := time.Now()
	for r := 0; r < rounds; r++ {
		fp := newFingerprint()
		def.run(&fp)
		if r == 0 {
			first = fp
		} else if fp != first {
			return 0, 0, fmt.Errorf("nondeterministic across rounds at %d workers", workers)
		}
	}
	return time.Since(start).Seconds(), first, nil
}

// timeKernelLegacy runs def for rounds iterations on the legacy exact
// path: one worker, filtered predicates off, warm start off — the
// kernel code as it stood before the fast-path work.
func timeKernelLegacy(def kernelDef, rounds int) (float64, fingerprint, error) {
	geom.SetFilteredPredicates(false)
	lp.SetWarmStart(false)
	defer func() {
		geom.SetFilteredPredicates(true)
		lp.SetWarmStart(true)
	}()
	return timeKernel(def, 1, rounds)
}

// fastPathCounterPrefixes selects the counters the kernel report
// snapshots: the fast-path mechanisms whose hit rates explain the
// measured speedups.
var fastPathCounterPrefixes = []string{
	"lp_warm_",
	"geom_filter_",
	"relax_prefilter_separation_",
	"relax_kproj_",
	"relax_row_arena_",
	"memo_key_pool_",
}

func fastPathCounters(diff *metrics.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range diff.Counters {
		for _, p := range fastPathCounterPrefixes {
			if strings.HasPrefix(name, p) {
				out[name] = v
				break
			}
		}
	}
	return out
}

// measureCacheHit times the warm memo lookup path — pooled key build
// plus sharded Get on a cached InHull result — and reports ns/op and
// allocs/op (the hot path is allocation-free; see the zero-alloc
// acceptance gate in CompareKernels).
func measureCacheHit(seed int64) (nsPerOp, allocsPerOp float64) {
	bvc.SetCaching(true)
	bvc.ResetCaches()
	s := kernelSet(seed+5, 8, 4)
	q := vec.Mean(s.Points())
	geom.InHull(q, s) // warm the entry

	const ops = 50000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		geom.InHull(q, s)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	bvc.SetCaching(false)
	bvc.ResetCaches()
	return float64(elapsed.Nanoseconds()) / ops, float64(after.Mallocs-before.Mallocs) / ops
}

// Summarize prints the human-readable digest of a kernel report.
func (r *KernelReport) Summarize(w io.Writer) {
	fmt.Fprintf(w, "kernel bench: 1 vs %d workers on %d CPU(s), GOMAXPROCS %d\n",
		r.Workers, r.NumCPU, r.GOMAXPROCS)
	for _, c := range r.Cases {
		fmt.Fprintf(w, "  %-26s %2d rounds  legacy %7.1f ms  seq %7.1f ms  par %7.1f ms  par %5.2fx  1-thread %5.2fx  identical: %v\n",
			c.Name, c.Rounds, 1e3*c.LegacySeconds, 1e3*c.Workers1Seconds, 1e3*c.WorkersNSeconds,
			c.Speedup, c.SingleThreadSpeedup, c.OutputsIdentical)
	}
	fmt.Fprintf(w, "  min sweep speedup %.2fx, min single-thread speedup %.2fx, cache hit %.0f ns/op %.2f allocs/op, outputs identical: %v\n",
		r.MinSweepSpeedup, r.MinSingleThreadSpeedup, r.CacheHitNsPerOp, r.CacheHitAllocsPerOp, r.OutputsIdentical)
	if len(r.FastPathCounters) > 0 {
		names := make([]string, 0, len(r.FastPathCounters))
		for name := range r.FastPathCounters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  fast-path counters:\n")
		for _, name := range names {
			fmt.Fprintf(w, "    %-42s %d\n", name, r.FastPathCounters[name])
		}
	}
}

// Write marshals the report to path as indented JSON (the committed
// BENCH_kernels.json format).
func (r *KernelReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadKernels reads a report written by (*KernelReport).Write.
func LoadKernels(path string) (*KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r KernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareKernels guards cur against the committed baseline: outputs
// must be bit-identical across worker and filter settings, the warm
// cache lookup must stay allocation-free, per-case parallel throughput
// must not regress by more than threshold, every single-thread-gated
// case must clear its fast-vs-legacy floor (on any machine — the
// comparison is same-core), and on machines with GOMAXPROCS >= 4 every
// parallel-gated case must clear its speedup gate. A baseline produced
// on a single-core machine cannot vouch for the parallel gates, so a
// multicore runner guarding one is a hard failure — regenerate the
// baseline on multicore hardware rather than silently weakening the
// guard.
func CompareKernels(cur, base *KernelReport, threshold float64, w io.Writer) error {
	if !cur.OutputsIdentical {
		return fmt.Errorf("kernel outputs differ across worker/filter settings")
	}
	if cur.CacheHitAllocsPerOp >= 0.5 {
		return fmt.Errorf("warm cache lookup allocates: %.2f allocs/op", cur.CacheHitAllocsPerOp)
	}
	multicore := cur.GOMAXPROCS >= 4
	if multicore && base.NumCPU < 4 {
		return fmt.Errorf("committed kernel baseline was produced on %d CPU(s) but this runner has GOMAXPROCS %d: the baseline's parallel numbers cannot arm the speedup gates — regenerate it on multicore hardware (go run ./scripts -kernels -update)",
			base.NumCPU, cur.GOMAXPROCS)
	}

	baseByName := make(map[string]KernelCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByName[c.Name] = c
	}
	for _, c := range cur.Cases {
		b, ok := baseByName[c.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "  %-26s par %5.2fx  1-thread %5.2fx (no baseline case)\n",
				c.Name, c.Speedup, c.SingleThreadSpeedup)
		default:
			fmt.Fprintf(w, "  %-26s par %5.2fx  1-thread %5.2fx  par %7.2f rounds/s (baseline %7.2f)\n",
				c.Name, c.Speedup, c.SingleThreadSpeedup, c.ParRoundsPerSec, b.ParRoundsPerSec)
			if b.ParRoundsPerSec > 0 {
				if loss := 1 - c.ParRoundsPerSec/b.ParRoundsPerSec; loss > threshold {
					return fmt.Errorf("kernel %s parallel throughput regressed %.1f%% (threshold %.0f%%)",
						c.Name, 100*loss, 100*threshold)
				}
			}
		}
		if c.SingleThreadGate > 0 && c.SingleThreadSpeedup < c.SingleThreadGate {
			return fmt.Errorf("kernel %s single-thread speedup %.2fx below its %.1fx fast-vs-legacy gate",
				c.Name, c.SingleThreadSpeedup, c.SingleThreadGate)
		}
		if multicore && c.SpeedupGate > 0 && c.Speedup < c.SpeedupGate {
			return fmt.Errorf("kernel %s speedup %.2fx below its %.1fx gate at GOMAXPROCS %d",
				c.Name, c.Speedup, c.SpeedupGate, cur.GOMAXPROCS)
		}
	}
	if !multicore {
		fmt.Fprintf(w, "  (GOMAXPROCS %d < 4: parallel speedup gates skipped; single-thread gates enforced above)\n", cur.GOMAXPROCS)
	}
	return nil
}
