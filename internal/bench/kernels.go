// Kernel-parallelism benchmark: times the combinatorial geometry
// kernels (Tverberg partition scan, k-relaxed membership sweep, Lp
// minimax descent) at one kernel worker versus the full worker pool,
// verifies bit-identical outputs, and measures the memo cache's warm
// lookup path. Behind `bvcbench -kernel-bench`, `make bench-kernels`
// and the kernel half of the bench-regression guard; the committed
// report is BENCH_kernels.json.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	bvc "relaxedbvc"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// KernelCase is one kernel's measurements in the BENCH_kernels.json
// report.
type KernelCase struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`

	Workers1Seconds float64 `json:"workers1_seconds"`
	WorkersNSeconds float64 `json:"workers_n_seconds"`
	SeqRoundsPerSec float64 `json:"workers1_rounds_per_sec"`
	ParRoundsPerSec float64 `json:"workers_n_rounds_per_sec"`
	Speedup         float64 `json:"speedup"`

	// SpeedupGate is the minimum speedup this case must show on a
	// machine with GOMAXPROCS >= 4 (0 = parity-only case, e.g. the
	// early-exit feasible scan where sequential stops at the first
	// hit and there is little left to parallelize).
	SpeedupGate float64 `json:"speedup_gate"`

	// OutputsIdentical is the bit-for-bit fingerprint comparison of
	// the kernel outputs across the two worker settings.
	OutputsIdentical bool `json:"outputs_identical"`
}

// KernelReport is the BENCH_kernels.json schema.
type KernelReport struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`

	Cases []KernelCase `json:"cases"`

	// MinSweepSpeedup is the smallest speedup among the full-sweep
	// cases (SpeedupGate >= 2) — the headline number the guard holds
	// at 2x on multicore machines.
	MinSweepSpeedup  float64 `json:"min_sweep_speedup"`
	OutputsIdentical bool    `json:"outputs_identical"`

	// Warm memo-cache lookup path (pooled key build + sharded Get).
	CacheHitNsPerOp     float64 `json:"cache_hit_ns_per_op"`
	CacheHitAllocsPerOp float64 `json:"cache_hit_allocs_per_op"`
}

// fingerprint is an FNV-1a accumulator over the exact bit patterns of
// kernel outputs; equal fingerprints across worker settings certify
// bit-identical results.
type fingerprint uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFingerprint() fingerprint { return fnvOffset }

func (f *fingerprint) word(w uint64) {
	for i := 0; i < 8; i++ {
		*f ^= fingerprint(w & 0xff)
		*f *= fnvPrime
		w >>= 8
	}
}

func (f *fingerprint) int(v int)       { f.word(uint64(int64(v))) }
func (f *fingerprint) float(v float64) { f.word(math.Float64bits(v)) }

func (f *fingerprint) bool(v bool) {
	if v {
		f.word(1)
	} else {
		f.word(0)
	}
}

func (f *fingerprint) vec(v vec.V) {
	f.int(len(v))
	for _, x := range v {
		f.float(x)
	}
}

// kernelSet builds n deterministic pseudo-random points in R^d with the
// same LCG as the batch sweep, so reports are reproducible by seed.
func kernelSet(seed int64, n, d int) *vec.Set {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*10 - 5
	}
	pts := make([]vec.V, n)
	for i := range pts {
		v := vec.New(d)
		for j := range v {
			v[j] = next()
		}
		pts[i] = v
	}
	return vec.NewSet(pts...)
}

// kernelDef is one benchmark workload: a deterministic closure over
// fixed inputs whose outputs are folded into the fingerprint.
type kernelDef struct {
	name string
	gate float64
	run  func(fp *fingerprint)
}

// kernelDefs builds the workload list. Inputs are constructed once and
// shared across rounds and worker settings; every kernel treats its
// arguments as read-only.
func kernelDefs(seed int64) []kernelDef {
	// Full-sweep scan: n = (d+1)f points in general position admit no
	// Tverberg partition (the Section 8 tightness regime), so the scan
	// must reject all S(8,3) = 966 candidates — the worst case the
	// parallel chunked scan is built for.
	infeasible := kernelSet(seed, 8, 3)
	// First-hit scan: n = (d+1)f + 1 guarantees a partition exists
	// (Theorem 7); sequential stops at the first hit, so this case is
	// gated on parity only.
	feasible := kernelSet(seed+1, 9, 3)
	// Projection sweep: C(10, 4) = 210 coordinate subsets per query.
	// The queries are convex combinations of the set, so membership
	// holds and the sweep cannot short-circuit on an early failing
	// projection — it must test all 210 subsets (the AllOf worst case
	// the parallel path is built for).
	hullSet := kernelSet(seed+2, 14, 10)
	center := vec.Mean(hullSet.Points())
	queries := make([]vec.V, 6)
	for i := range queries {
		queries[i] = vec.Lerp(center, hullSet.At(i), 0.5)
	}
	// Lp minimax: C(9, 7) = 36 dropped subsets per descent step.
	family := kernelSet(seed+4, 9, 3)

	return []kernelDef{
		{
			name: "tverberg_scan_infeasible",
			gate: 2,
			run: func(fp *fingerprint) {
				blocks, pt, ok := tverberg.Partition(infeasible, 2)
				fp.bool(ok)
				fp.int(len(blocks))
				fp.vec(pt)
			},
		},
		{
			name: "tverberg_scan_feasible",
			gate: 0,
			run: func(fp *fingerprint) {
				blocks, pt, ok := tverberg.Partition(feasible, 2)
				fp.bool(ok)
				fp.int(len(blocks))
				for _, b := range blocks {
					fp.int(len(b))
					for _, i := range b {
						fp.int(i)
					}
				}
				fp.vec(pt)
			},
		},
		{
			name: "inhullk_projection_sweep",
			gate: 2,
			run: func(fp *fingerprint) {
				for _, q := range queries {
					fp.bool(relax.InHullK(q, hullSet, 4))
				}
			},
		},
		{
			name: "minimax_deltastar_pinf",
			gate: 0,
			run: func(fp *fingerprint) {
				r := minimax.DeltaStarP(family, 2, math.Inf(1))
				fp.float(r.Delta)
				fp.vec(r.Point)
			},
		},
	}
}

// RunKernels executes every kernel workload at one worker and at the
// full pool, fingerprint-checks the outputs, measures the warm cache
// lookup, and returns the report. workers <= 0 means GOMAXPROCS, but
// at least 4 so the parallel scan path (and its parity check) is
// exercised even on small machines — speedup gates still key off the
// real GOMAXPROCS. Progress diagnostics go to diag (pass io.Discard
// to silence them).
func RunKernels(workers int, seed int64, diag io.Writer) (*KernelReport, error) {
	if workers <= 0 {
		if workers = runtime.GOMAXPROCS(0); workers < 4 {
			workers = 4
		}
	}

	// Kernel timing must see the kernels, not the memo tables: with
	// caching on, the second worker setting would replay the first
	// setting's cache and time map lookups instead of LP solves.
	bvc.SetCaching(false)
	bvc.ResetCaches()
	defer func() {
		bvc.SetCaching(true)
		bvc.ResetCaches()
		par.SetKernelWorkers(0)
	}()

	rep := &KernelReport{
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Workers:          workers,
		MinSweepSpeedup:  math.Inf(1),
		OutputsIdentical: true,
	}

	const targetSeconds = 0.25
	const maxRounds = 64
	for _, def := range kernelDefs(seed) {
		// Calibrate the round count on the parallel setting so each
		// case gets a stable timing window without ballooning the
		// sequential pass.
		par.SetKernelWorkers(workers)
		calStart := time.Now()
		calFp := newFingerprint()
		def.run(&calFp)
		calElapsed := time.Since(calStart).Seconds()
		rounds := 1
		if calElapsed > 0 && calElapsed < targetSeconds {
			if rounds = int(targetSeconds / calElapsed); rounds > maxRounds {
				rounds = maxRounds
			}
		}

		seqElapsed, seqFp, err := timeKernel(def, 1, rounds)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", def.name, err)
		}
		parElapsed, parFp, err := timeKernel(def, workers, rounds)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", def.name, err)
		}

		identical := seqFp == parFp && calFp == parFp
		c := KernelCase{
			Name:             def.name,
			Rounds:           rounds,
			Workers1Seconds:  seqElapsed,
			WorkersNSeconds:  parElapsed,
			SeqRoundsPerSec:  float64(rounds) / seqElapsed,
			ParRoundsPerSec:  float64(rounds) / parElapsed,
			Speedup:          seqElapsed / parElapsed,
			SpeedupGate:      def.gate,
			OutputsIdentical: identical,
		}
		rep.Cases = append(rep.Cases, c)
		if !identical {
			rep.OutputsIdentical = false
			fmt.Fprintf(diag, "bench: kernel %s outputs differ between 1 and %d workers\n", def.name, workers)
		}
		if def.gate >= 2 && c.Speedup < rep.MinSweepSpeedup {
			rep.MinSweepSpeedup = c.Speedup
		}
		fmt.Fprintf(diag, "bench: kernel %-26s %2d rounds  %.2fx\n", def.name, rounds, c.Speedup)
	}
	if math.IsInf(rep.MinSweepSpeedup, 1) {
		rep.MinSweepSpeedup = 0
	}

	rep.CacheHitNsPerOp, rep.CacheHitAllocsPerOp = measureCacheHit(seed)

	if !rep.OutputsIdentical {
		return rep, fmt.Errorf("kernel outputs differ between worker settings")
	}
	return rep, nil
}

// timeKernel runs def for rounds iterations at the given worker count
// and returns the elapsed wall time and the (round-invariant) output
// fingerprint.
func timeKernel(def kernelDef, workers, rounds int) (float64, fingerprint, error) {
	par.SetKernelWorkers(workers)
	var first fingerprint
	start := time.Now()
	for r := 0; r < rounds; r++ {
		fp := newFingerprint()
		def.run(&fp)
		if r == 0 {
			first = fp
		} else if fp != first {
			return 0, 0, fmt.Errorf("nondeterministic across rounds at %d workers", workers)
		}
	}
	return time.Since(start).Seconds(), first, nil
}

// measureCacheHit times the warm memo lookup path — pooled key build
// plus sharded Get on a cached InHull result — and reports ns/op and
// allocs/op (the hot path is allocation-free; see the zero-alloc
// acceptance gate in CompareKernels).
func measureCacheHit(seed int64) (nsPerOp, allocsPerOp float64) {
	bvc.SetCaching(true)
	bvc.ResetCaches()
	s := kernelSet(seed+5, 8, 4)
	q := vec.Mean(s.Points())
	geom.InHull(q, s) // warm the entry

	const ops = 50000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		geom.InHull(q, s)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	bvc.SetCaching(false)
	bvc.ResetCaches()
	return float64(elapsed.Nanoseconds()) / ops, float64(after.Mallocs-before.Mallocs) / ops
}

// Summarize prints the human-readable digest of a kernel report.
func (r *KernelReport) Summarize(w io.Writer) {
	fmt.Fprintf(w, "kernel bench: 1 vs %d workers on %d CPU(s), GOMAXPROCS %d\n",
		r.Workers, r.NumCPU, r.GOMAXPROCS)
	for _, c := range r.Cases {
		fmt.Fprintf(w, "  %-26s %2d rounds  seq %7.1f ms  par %7.1f ms  %5.2fx  identical: %v\n",
			c.Name, c.Rounds, 1e3*c.Workers1Seconds, 1e3*c.WorkersNSeconds, c.Speedup, c.OutputsIdentical)
	}
	fmt.Fprintf(w, "  min sweep speedup %.2fx, cache hit %.0f ns/op %.2f allocs/op, outputs identical: %v\n",
		r.MinSweepSpeedup, r.CacheHitNsPerOp, r.CacheHitAllocsPerOp, r.OutputsIdentical)
}

// Write marshals the report to path as indented JSON (the committed
// BENCH_kernels.json format).
func (r *KernelReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadKernels reads a report written by (*KernelReport).Write.
func LoadKernels(path string) (*KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r KernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareKernels guards cur against the committed baseline: outputs
// must be bit-identical across worker settings, the warm cache lookup
// must stay allocation-free, per-case parallel throughput must not
// regress by more than threshold, and on machines with GOMAXPROCS >= 4
// every gated case must clear its speedup gate.
func CompareKernels(cur, base *KernelReport, threshold float64, w io.Writer) error {
	if !cur.OutputsIdentical {
		return fmt.Errorf("kernel outputs differ between worker settings")
	}
	if cur.CacheHitAllocsPerOp >= 0.5 {
		return fmt.Errorf("warm cache lookup allocates: %.2f allocs/op", cur.CacheHitAllocsPerOp)
	}

	baseByName := make(map[string]KernelCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByName[c.Name] = c
	}
	multicore := cur.GOMAXPROCS >= 4
	for _, c := range cur.Cases {
		b, ok := baseByName[c.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "  %-26s %5.2fx (no baseline case)\n", c.Name, c.Speedup)
		default:
			fmt.Fprintf(w, "  %-26s %5.2fx  par %7.2f rounds/s (baseline %7.2f)\n",
				c.Name, c.Speedup, c.ParRoundsPerSec, b.ParRoundsPerSec)
			if b.ParRoundsPerSec > 0 {
				if loss := 1 - c.ParRoundsPerSec/b.ParRoundsPerSec; loss > threshold {
					return fmt.Errorf("kernel %s parallel throughput regressed %.1f%% (threshold %.0f%%)",
						c.Name, 100*loss, 100*threshold)
				}
			}
		}
		if multicore && c.SpeedupGate > 0 && c.Speedup < c.SpeedupGate {
			return fmt.Errorf("kernel %s speedup %.2fx below its %.1fx gate at GOMAXPROCS %d",
				c.Name, c.Speedup, c.SpeedupGate, cur.GOMAXPROCS)
		}
	}
	if !multicore {
		fmt.Fprintf(w, "  (GOMAXPROCS %d < 4: speedup gates skipped)\n", cur.GOMAXPROCS)
	}
	return nil
}
