// Package bench is the batch-engine benchmark harness behind
// `bvcbench -batch-bench`, `make bench-guard` and the CI regression
// gate. It measures the concurrent cached engine against the
// pre-engine execution model (sequential, uncached), verifies the two
// produce bit-identical outputs, and reads/writes the BENCH_batch.json
// report that the guard compares against.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	bvc "relaxedbvc"
)

// Report is the BENCH_batch.json schema.
type Report struct {
	// Machine / run shape.
	NumCPU        int `json:"num_cpu"`
	GOMAXPROCS    int `json:"gomaxprocs"`
	Workers       int `json:"workers"`
	Trials        int `json:"trials"`
	UniqueConfigs int `json:"unique_configs"`
	RepeatsPerCfg int `json:"repeats_per_config"`

	// Timings. The sequential baseline is the pre-engine execution
	// model: one trial at a time, no kernel caching (the seed tree had
	// none). The engine run is RunBatch with shared caches on.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	SeqTrialsPerSec   float64 `json:"sequential_trials_per_sec"`
	ParTrialsPerSec   float64 `json:"parallel_trials_per_sec"`
	Speedup           float64 `json:"speedup"`

	// Cache behavior during the engine run.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// OutputsIdentical is the bit-for-bit comparison of every trial's
	// outputs and deltas across the two runs.
	OutputsIdentical bool `json:"outputs_identical"`
}

// Specs builds the delta-relaxed sweep: unique configurations (varying
// system size, dimension, norm and inputs), each repeated so the batch
// resembles a real experiment sweep (Options.Trials repeats the same
// configuration to average timing noise) and the shared cache has
// repeats to absorb.
func Specs(total int, seed int64) (specs []bvc.Spec, unique, repeats int) {
	repeats = 5
	unique = total / repeats
	if unique == 0 {
		unique = 1
	}
	// The norm mix leans toward p = 2 — the paper's default norm and
	// the heaviest kernel (the L2 minimax solver) — with L1 and LInf
	// LPs mixed in.
	norms := []float64{2, 1, 2, math.Inf(1)}
	uniq := make([]bvc.Spec, unique)
	for c := range uniq {
		// Full (n, d, norm) cross product: n cycles fastest, then d,
		// then the norm, so no field aliases with another.
		n := 4 + c%4     // 4..7 processes
		d := 3 + (c/4)%3 // 3..5 dimensions (the d >= 3 regime of Theorem 9)
		p := norms[(c/12)%len(norms)]
		uniq[c] = bvc.Spec{
			Protocol: bvc.ProtocolDeltaRelaxed,
			N:        n, F: 1, D: d,
			NormP:  p,
			Inputs: inputs(seed+int64(c), n, d),
		}
	}
	for len(specs) < total {
		specs = append(specs, uniq[len(specs)%unique])
	}
	return specs, unique, repeats
}

func inputs(seed int64, n, d int) []bvc.Vector {
	// Deterministic but spread inputs; a tiny LCG keeps this free of
	// rand-API churn.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*10 - 5
	}
	in := make([]bvc.Vector, n)
	for i := range in {
		v := make([]float64, d)
		for j := range v {
			v[j] = next()
		}
		in[i] = bvc.NewVector(v...)
	}
	return in
}

// Run executes the benchmark sweep — the sequential uncached baseline,
// then the concurrent cached engine — and returns the measurements.
// Progress diagnostics go to diag (pass io.Discard to silence them).
// Caching is left enabled on return.
func Run(ctx context.Context, total, workers int, seed int64, diag io.Writer) (*Report, error) {
	specs, unique, repeats := Specs(total, seed)

	// Baseline: the pre-engine execution model — strictly sequential,
	// no kernel caching.
	bvc.SetCaching(false)
	bvc.ResetCaches()
	seqStart := time.Now()
	seqResults := make([]*bvc.Result, len(specs))
	for i, spec := range specs {
		r, err := bvc.Run(ctx, spec)
		if err != nil {
			bvc.SetCaching(true)
			return nil, fmt.Errorf("sequential trial %d: %w", i, err)
		}
		seqResults[i] = r
	}
	seqElapsed := time.Since(seqStart)

	// Engine: concurrent workers sharing the kernel caches.
	bvc.SetCaching(true)
	bvc.ResetCaches()
	parStart := time.Now()
	batched := bvc.RunBatch(ctx, bvc.BatchOptions{Workers: workers}, specs)
	parElapsed := time.Since(parStart)
	if err := bvc.FirstBatchErr(batched); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	stats := bvc.CacheStats().Totals()

	identical := true
	for i := range specs {
		if !sameResult(seqResults[i], batched[i].Result) {
			identical = false
			fmt.Fprintf(diag, "bench: trial %d outputs differ between sequential and batch runs\n", i)
		}
	}

	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rep := &Report{
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       w,
		Trials:        len(specs),
		UniqueConfigs: unique,
		RepeatsPerCfg: repeats,

		SequentialSeconds: seqElapsed.Seconds(),
		ParallelSeconds:   parElapsed.Seconds(),
		SeqTrialsPerSec:   float64(len(specs)) / seqElapsed.Seconds(),
		ParTrialsPerSec:   float64(len(specs)) / parElapsed.Seconds(),
		Speedup:           seqElapsed.Seconds() / parElapsed.Seconds(),

		CacheHits:   stats.Hits,
		CacheMisses: stats.Misses,

		OutputsIdentical: identical,
	}
	if total := stats.Hits + stats.Misses; total > 0 {
		rep.CacheHitRate = float64(stats.Hits) / float64(total)
	}
	if !identical {
		return rep, fmt.Errorf("outputs differ between sequential and batch runs")
	}
	return rep, nil
}

// Summarize prints the human-readable digest of a report.
func (r *Report) Summarize(w io.Writer) {
	fmt.Fprintf(w, "batch bench: %d trials (%d unique x %d repeats), %d workers on %d CPU(s)\n",
		r.Trials, r.UniqueConfigs, r.RepeatsPerCfg, r.Workers, r.NumCPU)
	fmt.Fprintf(w, "  sequential (uncached): %6.2fs  %7.1f trials/s\n", r.SequentialSeconds, r.SeqTrialsPerSec)
	fmt.Fprintf(w, "  batch engine (cached): %6.2fs  %7.1f trials/s\n", r.ParallelSeconds, r.ParTrialsPerSec)
	fmt.Fprintf(w, "  speedup %.2fx, cache hit rate %.1f%%, outputs identical: %v\n",
		r.Speedup, 100*r.CacheHitRate, r.OutputsIdentical)
}

// Write marshals the report to path as indented JSON (the committed
// BENCH_batch.json format).
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report written by Write.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// sameResult compares two runs' outputs and deltas bit-for-bit.
func sameResult(a, b *bvc.Result) bool {
	if len(a.Outputs) != len(b.Outputs) || len(a.Delta) != len(b.Delta) {
		return false
	}
	for i := range a.Outputs {
		if len(a.Outputs[i]) != len(b.Outputs[i]) {
			return false
		}
		for j := range a.Outputs[i] {
			if math.Float64bits(a.Outputs[i][j]) != math.Float64bits(b.Outputs[i][j]) {
				return false
			}
		}
	}
	for i := range a.Delta {
		if math.Float64bits(a.Delta[i]) != math.Float64bits(b.Delta[i]) {
			return false
		}
	}
	return true
}
