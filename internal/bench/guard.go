package bench

import (
	"fmt"
	"io"
)

// DefaultThreshold is the relative throughput loss the guard tolerates
// before failing: 25%, wide enough for machine noise and CI jitter,
// tight enough to catch a real regression (a 2x slowdown is far past
// it).
const DefaultThreshold = 0.25

// Compare checks a fresh benchmark report against the committed
// baseline and writes a line-per-metric comparison to w. It returns an
// error when the engine's throughput (parallel trials/sec) regressed by
// more than threshold relative to the baseline, or when the engine's
// outputs diverged from the sequential baseline. Cache hit rate and
// speedup are compared and reported but do not fail the guard on their
// own: the hit rate is a property of the sweep shape (identical sweeps
// give near-identical rates) and a drop shows up in throughput anyway.
func Compare(cur, base *Report, threshold float64, w io.Writer) error {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rel := func(c, b float64) float64 {
		if b == 0 {
			return 0
		}
		return (c - b) / b
	}
	fmt.Fprintf(w, "bench guard (threshold: %.0f%% throughput loss)\n", 100*threshold)
	fmt.Fprintf(w, "  %-26s %10s %10s %8s\n", "metric", "current", "baseline", "delta")
	row := func(name string, c, b float64) {
		fmt.Fprintf(w, "  %-26s %10.2f %10.2f %+7.1f%%\n", name, c, b, 100*rel(c, b))
	}
	row("parallel_trials_per_sec", cur.ParTrialsPerSec, base.ParTrialsPerSec)
	row("sequential_trials_per_sec", cur.SeqTrialsPerSec, base.SeqTrialsPerSec)
	row("speedup", cur.Speedup, base.Speedup)
	row("cache_hit_rate", cur.CacheHitRate, base.CacheHitRate)

	if !cur.OutputsIdentical {
		return fmt.Errorf("bench guard: engine outputs diverged from the sequential baseline")
	}
	if loss := -rel(cur.ParTrialsPerSec, base.ParTrialsPerSec); loss > threshold {
		return fmt.Errorf("bench guard: throughput regression %.1f%% exceeds %.0f%% threshold (%.1f -> %.1f trials/s)",
			100*loss, 100*threshold, base.ParTrialsPerSec, cur.ParTrialsPerSec)
	}
	return nil
}
