package bench

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		NumCPU: 8, GOMAXPROCS: 8, Workers: 8,
		Trials: 200, UniqueConfigs: 40, RepeatsPerCfg: 5,
		SequentialSeconds: 4.0, ParallelSeconds: 1.0,
		SeqTrialsPerSec: 50, ParTrialsPerSec: 200, Speedup: 4.0,
		CacheHits: 700, CacheMisses: 300, CacheHitRate: 0.7,
		OutputsIdentical: true,
	}
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	var buf bytes.Buffer
	if err := Compare(sampleReport(), sampleReport(), 0.25, &buf); err != nil {
		t.Fatalf("identical reports should pass the guard: %v", err)
	}
	if !strings.Contains(buf.String(), "parallel_trials_per_sec") {
		t.Fatal("comparison table missing the throughput row")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	cur := sampleReport()
	cur.ParTrialsPerSec *= 0.80 // 20% loss, inside the 25% threshold
	if err := Compare(cur, sampleReport(), 0.25, io.Discard); err != nil {
		t.Fatalf("20%% loss should pass a 25%% threshold: %v", err)
	}
}

func TestCompareFailsOnTwoXSlowdown(t *testing.T) {
	// The acceptance scenario: a synthetic 2x slowdown (half the
	// throughput, double the wall time) must trip the guard.
	cur := sampleReport()
	cur.ParallelSeconds *= 2
	cur.ParTrialsPerSec /= 2
	cur.Speedup /= 2
	err := Compare(cur, sampleReport(), 0.25, io.Discard)
	if err == nil {
		t.Fatal("2x slowdown passed the guard")
	}
	if !strings.Contains(err.Error(), "throughput regression") {
		t.Fatalf("unexpected guard error: %v", err)
	}
}

func TestCompareFailsOnDivergedOutputs(t *testing.T) {
	cur := sampleReport()
	cur.OutputsIdentical = false
	if err := Compare(cur, sampleReport(), 0.25, io.Discard); err == nil {
		t.Fatal("diverged outputs passed the guard")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	cur := sampleReport()
	cur.ParTrialsPerSec *= 3 // faster is never a regression
	if err := Compare(cur, sampleReport(), 0.25, io.Discard); err != nil {
		t.Fatalf("improvement failed the guard: %v", err)
	}
}

func TestRunSmallSweepAgainstItself(t *testing.T) {
	// End-to-end: a tiny sweep produces a self-consistent report that
	// passes the guard against itself.
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Run(context.Background(), 20, 0, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OutputsIdentical {
		t.Fatal("engine outputs diverged from the sequential baseline")
	}
	if rep.Trials != 20 || rep.UniqueConfigs != 4 {
		t.Fatalf("unexpected sweep shape: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatal("repeated configurations produced no cache hits")
	}
	if err := Compare(rep, rep, 0.25, io.Discard); err != nil {
		t.Fatalf("report failed the guard against itself: %v", err)
	}
}

func TestReportWriteLoadRoundTrip(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	rep := sampleReport()
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rep {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, rep)
	}
}
