package bench

import (
	"encoding/json"
	"os"

	"relaxedbvc/internal/experiments"
	"relaxedbvc/internal/metrics"
)

// ExperimentMetrics is one experiment's entry in the -metrics-out
// document: identity, verdict, wall time and the experiment's delta of
// the process-wide metrics registry (consensus rounds/messages, batch
// trial latency, kernel cache hits/misses, LP statistics).
type ExperimentMetrics struct {
	ID             string            `json:"id"`
	Title          string            `json:"title"`
	Pass           bool              `json:"pass"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Delta          *metrics.Snapshot `json:"delta"`
	// Cumulative is the full registry at the end of this experiment —
	// the process-wide consensus round counters, batch latency
	// histogram and kernel cache hits/misses are always populated here,
	// even when the experiment itself only touched the geometry layer
	// (so its Delta has zero consensus activity).
	Cumulative *metrics.Snapshot `json:"cumulative"`
}

// MetricsDoc is the document `bvcbench -metrics-out` writes: one entry
// per executed experiment plus the cumulative registry totals at the
// end of the run. Field order is stable — struct fields marshal in
// declaration order, snapshot maps marshal with sorted keys, and
// histogram bucket layouts are fixed at registration — so the document
// diffs cleanly across runs.
type MetricsDoc struct {
	Experiments []ExperimentMetrics `json:"experiments"`
	Totals      *metrics.Snapshot   `json:"totals"`
}

// BuildMetricsDoc assembles the document from instrumented outcomes
// (experiments.RunAllInstrumented) and the given cumulative snapshot.
func BuildMetricsDoc(outcomes []*experiments.Outcome, totals *metrics.Snapshot) *MetricsDoc {
	doc := &MetricsDoc{Totals: totals}
	for _, o := range outcomes {
		doc.Experiments = append(doc.Experiments, ExperimentMetrics{
			ID:             o.ID,
			Title:          o.Title,
			Pass:           o.Pass,
			ElapsedSeconds: o.Elapsed.Seconds(),
			Delta:          o.Metrics,
			Cumulative:     o.MetricsCumulative,
		})
	}
	return doc
}

// Marshal renders the document as indented JSON with a trailing
// newline (the exact bytes Write puts on disk; split out for the
// golden-file test).
func (d *MetricsDoc) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write writes the document to path.
func (d *MetricsDoc) Write(path string) error {
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
