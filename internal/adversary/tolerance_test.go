package adversary_test

// Table-driven coverage of every adversary behavior: first the
// documented wire behavior (what bytes the behavior emits at the
// broadcast level), then tolerance — protocols run at the paper's
// process-count bounds must satisfy agreement and validity against each
// behavior occupying one of the f Byzantine slots.

import (
	"bytes"
	"context"
	"testing"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/vec"
)

func TestWireBehaviorTable(t *testing.T) {
	honest := broadcast.EncodeVec(vec.Of(9, 9))
	for _, tc := range []struct {
		name  string
		b     broadcast.EIGBehavior
		to    int
		want  vec.V // nil: expect silence; decodes otherwise
		raw   []byte
		same  bool // expect the honest value passed through
		undec bool // expect undecodable bytes
	}{
		{name: "silent", b: adversary.Silent(), to: 1, want: nil},
		{name: "honest", b: adversary.Honest(), to: 1, same: true},
		{name: "fixed", b: adversary.FixedVector(vec.Of(1, 2)), to: 3, want: vec.Of(1, 2)},
		{name: "equivocator-even", b: adversary.Equivocator(vec.Of(1, 0), vec.Of(0, 1)), to: 2, want: vec.Of(1, 0)},
		{name: "equivocator-odd", b: adversary.Equivocator(vec.Of(1, 0), vec.Of(0, 1)), to: 3, want: vec.Of(0, 1)},
		{name: "per-recipient-hit", b: adversary.PerRecipient(map[int]vec.V{2: vec.Of(7, 7)}), to: 2, want: vec.Of(7, 7)},
		{name: "per-recipient-miss", b: adversary.PerRecipient(map[int]vec.V{2: vec.Of(7, 7)}), to: 1, same: true},
		{name: "random-liar", b: adversary.RandomLiar(5, 2, 1), to: 0, raw: adversary.RandomLiar(5, 2, 1).RelayValue(0, nil, 0, nil)},
		{name: "garbage", b: adversary.Garbage(), to: 0, undec: true},
		{name: "relay-liar-own", b: adversary.RelayOnlyLiar(0, vec.Of(4, 4)), to: 1, same: true},
	} {
		got := tc.b.RelayValue(0, []int{0}, tc.to, honest)
		switch {
		case tc.same:
			if !bytes.Equal(got, honest) {
				t.Errorf("%s: deviated from the honest value", tc.name)
			}
		case tc.undec:
			if _, err := broadcast.DecodeVec(got); err == nil {
				t.Errorf("%s: bytes unexpectedly decodable", tc.name)
			}
		case tc.raw != nil:
			if !bytes.Equal(got, tc.raw) {
				t.Errorf("%s: not deterministic across constructions", tc.name)
			}
		case tc.want == nil:
			if got != nil {
				t.Errorf("%s: sent %x, want silence", tc.name, got)
			}
		default:
			v, err := broadcast.DecodeVec(got)
			if err != nil || !v.Equal(tc.want) {
				t.Errorf("%s: sent %v (%v), want %v", tc.name, v, err, tc.want)
			}
		}
	}
	// RelayOnlyLiar corrupts only other commanders' instances.
	rl := adversary.RelayOnlyLiar(0, vec.Of(4, 4))
	if v, _ := broadcast.DecodeVec(rl.RelayValue(1, nil, 2, honest)); !v.Equal(vec.Of(4, 4)) {
		t.Error("relay-liar: other instance not corrupted")
	}
}

// behaviorTable returns every oral-broadcast behavior, built for
// dimension d.
func behaviorTable(d int) map[string]broadcast.EIGBehavior {
	lie := vec.New(d)
	lie[0] = 40
	alt := vec.New(d)
	alt[d-1] = -40
	return map[string]broadcast.EIGBehavior{
		"silent":        adversary.Silent(),
		"honest":        adversary.Honest(),
		"fixed":         adversary.FixedVector(lie),
		"equivocator":   adversary.Equivocator(lie, alt),
		"per-recipient": adversary.PerRecipient(map[int]vec.V{0: lie, 1: alt}),
		"random-liar":   adversary.RandomLiar(11, d, 20),
		"garbage":       adversary.Garbage(),
		"relay-liar":    adversary.RelayOnlyLiar(0, lie),
	}
}

func inputsFor(n, d int) []vec.V {
	out := make([]vec.V, n)
	for i := range out {
		v := vec.New(d)
		for j := range v {
			v[j] = float64((i*7+j*3)%5) / 4
		}
		out[i] = v
	}
	return out
}

// TestExactBVCToleratesEveryBehavior runs exact BVC at its tight bound
// n = max(3f+1, (d+1)f+1) with each behavior in the Byzantine slot.
func TestExactBVCToleratesEveryBehavior(t *testing.T) {
	const d, f = 2, 1
	n := (d+1)*f + 1
	if m := 3*f + 1; m > n {
		n = m
	}
	for name, b := range behaviorTable(d) {
		byzID := n - 1
		if name == "relay-liar" {
			b = adversary.RelayOnlyLiar(byzID, vec.Of(40, 0))
		}
		cfg := &consensus.SyncConfig{
			N: n, F: f, D: d,
			Inputs:    inputsFor(n, d),
			Byzantine: map[int]broadcast.EIGBehavior{byzID: b},
		}
		res, err := consensus.RunExactBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		honest := cfg.HonestIDs()
		if eps := consensus.AgreementError(res.Outputs, honest); eps != 0 {
			t.Errorf("%s: agreement violated (%v)", name, eps)
		}
		for _, i := range honest {
			if !consensus.CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Errorf("%s: validity violated at process %d: %v", name, i, res.Outputs[i])
			}
		}
	}
}

// TestALGOToleratesEveryBehavior runs the paper's ALGO at n = 3f+1 (the
// relaxed bound, below the exact one for d = 3) against each behavior.
func TestALGOToleratesEveryBehavior(t *testing.T) {
	const d, f = 3, 1
	n := 3*f + 1
	for name, b := range behaviorTable(d) {
		byzID := 0
		cfg := &consensus.SyncConfig{
			N: n, F: f, D: d,
			Inputs:    inputsFor(n, d),
			Byzantine: map[int]broadcast.EIGBehavior{byzID: b},
		}
		res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		honest := cfg.HonestIDs()
		if eps := consensus.AgreementError(res.Outputs, honest); eps != 0 {
			t.Errorf("%s: agreement violated (%v)", name, eps)
		}
		for _, i := range honest {
			if !consensus.CheckDeltaValidity(res.Outputs[i], cfg.NonFaultyInputs(), res.Delta[i], 2, 1e-6) {
				t.Errorf("%s: (delta,2)-validity violated at process %d", name, i)
			}
		}
	}
}

// TestSignedEquivocatorToleratedByDolevStrong covers the signed-mode
// "proof replayer": genuine signatures on equivocating values, caught by
// honest cross-forwarding. Signed broadcast tolerates any f < n, so the
// run uses n = 3 below the oral bound.
func TestSignedEquivocatorToleratedByDolevStrong(t *testing.T) {
	const n, f, d = 3, 1, 2
	inputs := inputsFor(n, d)
	cfg := &consensus.SyncConfig{
		N: n, F: f, D: d,
		Inputs:          inputs,
		SignedBroadcast: true,
		SigSeed:         5,
		ByzantineSigned: map[int]broadcast.DSBehavior{
			2: adversary.SignedEquivocator(map[int]vec.V{0: vec.Of(30, 0), 1: vec.Of(0, 30)}),
		},
	}
	res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if eps := consensus.AgreementError(res.Outputs, honest); eps != 0 {
		t.Fatalf("agreement violated under signed equivocation (%v)", eps)
	}
	for _, i := range honest {
		if !consensus.CheckDeltaValidity(res.Outputs[i], cfg.NonFaultyInputs(), res.Delta[i], 2, 1e-6) {
			t.Fatalf("validity violated at process %d", i)
		}
	}
}

// TestWorstCasePlacementPressure pins the helper the Table 1 experiments
// use: the placement must sit at the requested radius from the honest
// centroid and must still be tolerated by ALGO when claimed by a fixed-
// vector adversary.
func TestWorstCasePlacementPressure(t *testing.T) {
	const d, f = 3, 1
	n := 3*f + 1
	inputs := inputsFor(n, d)
	honestIn := inputs[1:]
	placement := adversary.WorstCasePlacement(honestIn, 10)
	cfg := &consensus.SyncConfig{
		N: n, F: f, D: d,
		Inputs:    inputs,
		Byzantine: map[int]broadcast.EIGBehavior{0: adversary.FixedVector(placement)},
	}
	res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range cfg.HonestIDs() {
		if !consensus.CheckDeltaValidity(res.Outputs[i], cfg.NonFaultyInputs(), res.Delta[i], 2, 1e-6) {
			t.Fatalf("worst-case placement broke validity at process %d", i)
		}
	}
}
