// Package adversary is a library of Byzantine behaviors for the
// synchronous (EIG broadcast level) protocols: crash/silence,
// equivocation, random lying, fixed-vector injection, and the worst-case
// "proof replayer" that feeds the adversarial matrices from the paper's
// impossibility arguments into a run.
package adversary

import (
	"math/rand"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/vec"
)

// Silent drops every message the process should send (a crash at time 0).
func Silent() broadcast.EIGBehavior {
	return broadcast.EIGBehaviorFunc(func(int, []int, int, []byte) []byte { return nil })
}

// Honest follows the protocol exactly (useful as a placeholder when a
// behavior slot must be filled but the process should not deviate; note
// that a process with this behavior still counts against f).
func Honest() broadcast.EIGBehavior {
	return broadcast.EIGBehaviorFunc(func(_ int, _ []int, _ int, honest []byte) []byte { return honest })
}

// FixedVector always claims the given vector, to everyone, at every relay
// (including as commander of its own instance).
func FixedVector(v vec.V) broadcast.EIGBehavior {
	enc := broadcast.EncodeVec(v)
	return broadcast.EIGBehaviorFunc(func(int, []int, int, []byte) []byte { return enc })
}

// Equivocator sends vector a to even-numbered recipients and b to odd
// ones, at every relay step — the canonical two-faced commander.
func Equivocator(a, b vec.V) broadcast.EIGBehavior {
	ea, eb := broadcast.EncodeVec(a), broadcast.EncodeVec(b)
	return broadcast.EIGBehaviorFunc(func(_ int, _ []int, to int, _ []byte) []byte {
		if to%2 == 0 {
			return ea
		}
		return eb
	})
}

// PerRecipient sends vectors[to] to each recipient (falling back to the
// honest value when a recipient has no entry) — full per-recipient
// control, as in the Dolev-Strong style equivocation of Lemma 10.
func PerRecipient(vectors map[int]vec.V) broadcast.EIGBehavior {
	return broadcast.EIGBehaviorFunc(func(_ int, _ []int, to int, honest []byte) []byte {
		if v, ok := vectors[to]; ok {
			return broadcast.EncodeVec(v)
		}
		return honest
	})
}

// RandomLiar sends independent random vectors (seeded, deterministic per
// run) of the given dimension and scale.
func RandomLiar(seed int64, d int, scale float64) broadcast.EIGBehavior {
	rng := rand.New(rand.NewSource(seed))
	return broadcast.EIGBehaviorFunc(func(int, []int, int, []byte) []byte {
		v := vec.New(d)
		for i := range v {
			v[i] = rng.NormFloat64() * scale
		}
		return broadcast.EncodeVec(v)
	})
}

// Garbage sends undecodable bytes, exercising the receivers' decode
// fallback path.
func Garbage() broadcast.EIGBehavior {
	return broadcast.EIGBehaviorFunc(func(int, []int, int, []byte) []byte {
		return []byte{0xde, 0xad}
	})
}

// RelayOnlyLiar behaves honestly as commander of its own instance but
// corrupts every relay of other commanders' values — the subtler attack
// that EIG's recursive majority must defeat.
func RelayOnlyLiar(self int, v vec.V) broadcast.EIGBehavior {
	enc := broadcast.EncodeVec(v)
	return broadcast.EIGBehaviorFunc(func(instance int, _ []int, _ int, honest []byte) []byte {
		if instance == self {
			return honest
		}
		return enc
	})
}

// WorstCasePlacement returns the input vector a Byzantine process should
// *claim* so that, combined with the honest inputs, the agreed multiset S
// maximizes the measured delta* pressure: the point diametrically
// opposite the centroid of the honest inputs at the given radius. This is
// a heuristic worst case used by the Table 1 experiments to stress the
// bounds (which must hold for every Byzantine choice).
func WorstCasePlacement(honest []vec.V, radius float64) vec.V {
	c := vec.Mean(honest)
	// Direction away from the most isolated honest point.
	far := honest[0]
	best := -1.0
	for _, h := range honest {
		if d := h.Dist2(c); d > best {
			best, far = d, h
		}
	}
	dir := c.Sub(far)
	if n := dir.Norm2(); n > 1e-12 {
		dir = dir.Scale(radius / n)
	} else {
		dir = vec.New(c.Dim())
		dir[0] = radius
	}
	return c.Add(dir)
}

// SignedEquivocator returns the canonical Byzantine commander for the
// signed (Dolev-Strong) broadcast mode: round-0 it sends the per-
// recipient vectors and stays silent afterwards. The signature chains it
// produces are genuine (it signs what it sends), so the equivocation is
// caught by honest cross-forwarding rather than by signature failure.
func SignedEquivocator(values map[int]vec.V) broadcast.DSBehavior {
	enc := make(map[int][]byte, len(values))
	for to, v := range values {
		enc[to] = broadcast.EncodeVec(v)
	}
	return broadcast.NewDSEquivocator(enc)
}
