package adversary

import (
	"bytes"
	"testing"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/vec"
)

func TestSilent(t *testing.T) {
	if Silent().RelayValue(0, []int{0}, 1, []byte("x")) != nil {
		t.Error("Silent sent something")
	}
}

func TestHonest(t *testing.T) {
	if got := Honest().RelayValue(0, nil, 1, []byte("h")); !bytes.Equal(got, []byte("h")) {
		t.Error("Honest deviated")
	}
}

func TestFixedVector(t *testing.T) {
	b := FixedVector(vec.Of(1, 2))
	got, err := broadcast.DecodeVec(b.RelayValue(0, nil, 3, []byte("x")))
	if err != nil || !got.Equal(vec.Of(1, 2)) {
		t.Errorf("FixedVector = %v (%v)", got, err)
	}
}

func TestEquivocator(t *testing.T) {
	b := Equivocator(vec.Of(1), vec.Of(2))
	even, _ := broadcast.DecodeVec(b.RelayValue(0, nil, 0, nil))
	odd, _ := broadcast.DecodeVec(b.RelayValue(0, nil, 1, nil))
	if !even.Equal(vec.Of(1)) || !odd.Equal(vec.Of(2)) {
		t.Errorf("Equivocator even=%v odd=%v", even, odd)
	}
}

func TestPerRecipient(t *testing.T) {
	b := PerRecipient(map[int]vec.V{2: vec.Of(7)})
	got, _ := broadcast.DecodeVec(b.RelayValue(0, nil, 2, []byte("h")))
	if !got.Equal(vec.Of(7)) {
		t.Errorf("PerRecipient = %v", got)
	}
	if !bytes.Equal(b.RelayValue(0, nil, 1, []byte("h")), []byte("h")) {
		t.Error("PerRecipient fallback not honest")
	}
}

func TestRandomLiarDeterministic(t *testing.T) {
	a := RandomLiar(5, 3, 1).RelayValue(0, nil, 0, nil)
	b := RandomLiar(5, 3, 1).RelayValue(0, nil, 0, nil)
	if !bytes.Equal(a, b) {
		t.Error("RandomLiar not seed-deterministic")
	}
	va, _ := broadcast.DecodeVec(a)
	if va.Dim() != 3 {
		t.Errorf("dim = %d", va.Dim())
	}
}

func TestGarbageUndecodable(t *testing.T) {
	if _, err := broadcast.DecodeVec(Garbage().RelayValue(0, nil, 0, nil)); err == nil {
		t.Error("Garbage decodable")
	}
}

func TestRelayOnlyLiar(t *testing.T) {
	b := RelayOnlyLiar(3, vec.Of(9))
	if !bytes.Equal(b.RelayValue(3, nil, 0, []byte("own")), []byte("own")) {
		t.Error("own instance corrupted")
	}
	got, _ := broadcast.DecodeVec(b.RelayValue(1, nil, 0, []byte("other")))
	if !got.Equal(vec.Of(9)) {
		t.Error("other instance not corrupted")
	}
}

func TestWorstCasePlacement(t *testing.T) {
	honest := []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1)}
	p := WorstCasePlacement(honest, 5)
	if p.Dim() != 2 {
		t.Fatal("dim")
	}
	c := vec.Mean(honest)
	if d := p.Dist2(c); d < 4.9 || d > 5.1 {
		t.Errorf("placement distance from centroid = %v, want ~5", d)
	}
	// Degenerate: all honest identical.
	same := []vec.V{vec.Of(1, 1), vec.Of(1, 1)}
	p2 := WorstCasePlacement(same, 2)
	if d := p2.Dist2(vec.Of(1, 1)); d < 1.9 || d > 2.1 {
		t.Errorf("degenerate placement distance = %v", d)
	}
}
