package transport

// The in-process channel mesh: n endpoints wired pairwise with
// buffered Go channels. No sockets, no serialization — frames pass by
// value — but real goroutine concurrency, which makes it the backend
// of choice for running cluster tests under the race detector and for
// multi-node runs inside one process (the facade's mesh dispatch).

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
)

var meshFrames = metrics.DefaultCounter("transport_mesh_frames_total")

// meshInboxCap bounds each node's inbox. Senders block when a
// recipient's inbox is full (backpressure); the cap is far above any
// per-round EIG volume, so lockstep runs never deadlock on it.
const meshInboxCap = 1 << 12

// Mesh is a cluster of channel-connected Transports. Build one with
// NewMesh and hand Node(i) to each node's goroutine.
type Mesh struct {
	nodes []*meshNode
}

// NewMesh wires a fully-connected n-node mesh.
func NewMesh(n int) *Mesh {
	m := &Mesh{nodes: make([]*meshNode, n)}
	for i := range m.nodes {
		m.nodes[i] = &meshNode{
			mesh:   m,
			self:   i,
			inbox:  make(chan Frame, meshInboxCap),
			closed: make(chan struct{}),
		}
	}
	return m
}

// Node returns endpoint i of the mesh.
func (m *Mesh) Node(i int) Transport { return m.nodes[i] }

type meshNode struct {
	mesh      *Mesh
	self      int
	inbox     chan Frame
	closed    chan struct{}
	closeOnce sync.Once
	sent      atomic.Int64
	received  atomic.Int64
}

func (t *meshNode) Self() int { return t.self }
func (t *meshNode) N() int    { return len(t.mesh.nodes) }

// Send delivers f into the recipient inbox(es), blocking for
// backpressure. Sending to a closed peer fails with a per-link error
// chaining ErrClosed; sending from a closed endpoint fails likewise.
func (t *meshNode) Send(f Frame) error {
	select {
	case <-t.closed:
		return fmt.Errorf("%w: node %d send after close", ErrClosed, t.self)
	default:
	}
	f.From = t.self
	if f.To == Broadcast {
		for to := range t.mesh.nodes {
			if to == t.self {
				continue
			}
			df := f
			df.To = to
			if err := t.deliver(df); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkPeer(f.To, t.self, t.N()); err != nil {
		return err
	}
	return t.deliver(f)
}

func (t *meshNode) deliver(f Frame) error {
	peer := t.mesh.nodes[f.To]
	// Check liveness before the inbox send: with buffer space free both
	// cases are ready and select would pick arbitrarily.
	select {
	case <-peer.closed:
		return fmt.Errorf("%w: link %d->%d: peer closed", ErrClosed, t.self, f.To)
	case <-t.closed:
		return fmt.Errorf("%w: node %d closed mid-send", ErrClosed, t.self)
	default:
	}
	select {
	case peer.inbox <- f:
		t.sent.Add(1)
		meshFrames.Inc()
		return nil
	case <-peer.closed:
		return fmt.Errorf("%w: link %d->%d: peer closed", ErrClosed, t.self, f.To)
	case <-t.closed:
		return fmt.Errorf("%w: node %d closed mid-send", ErrClosed, t.self)
	}
}

// Recv returns the next frame delivered to this node. Frames already
// buffered remain receivable after Close until the buffer drains.
func (t *meshNode) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-t.inbox:
		t.received.Add(1)
		return f, nil
	default:
	}
	select {
	case f := <-t.inbox:
		t.received.Add(1)
		return f, nil
	case <-t.closed:
		return Frame{}, fmt.Errorf("%w: node %d recv after close", ErrClosed, t.self)
	case <-ctx.Done():
		return Frame{}, fmt.Errorf("%w: recv: %w", ErrTransport, ctx.Err())
	}
}

// Close marks the endpoint closed. Peers' in-flight Sends to this node
// unblock with a link error; this node's buffered frames stay
// receivable (drained above) only via the non-blocking fast path.
func (t *meshNode) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	return nil
}

// Stats implements Instrumented.
func (t *meshNode) Stats() Stats {
	return Stats{FramesSent: t.sent.Load(), FramesReceived: t.received.Load()}
}
