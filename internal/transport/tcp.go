package transport

// The real-network backend: length-prefixed frames over TCP. Each node
// listens on its own address and keeps one outbound connection per
// peer, established lazily and re-established with exponential backoff
// after any dial or write failure. Inbound connections authenticate
// with a hello frame naming the sender id, then stream frames into the
// shared inbox. Close drains the outbound queues (bounded by
// DrainTimeout) before tearing links down, so a node that finishes a
// protocol and shuts down does not strand the final round's frames.
//
// Delivery is at-least-once across reconnects: a write error after the
// peer already received the frame leads to one duplicate. That is
// inside the protocols' delivery model — the EIG tree store is
// idempotent and the lockstep runner deduplicates its control frames —
// and matches the duplication tolerance the sim's fault layer already
// exercises.

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relaxedbvc/internal/metrics"
)

// helloTag is the connection-opening control frame naming the dialing
// node; '\x00'-prefixed tags are reserved for the transport layer.
const helloTag = "\x00hello"

var (
	tcpFramesSent = metrics.DefaultCounter("transport_tcp_frames_sent_total")
	tcpFramesRecv = metrics.DefaultCounter("transport_tcp_frames_received_total")
	tcpBytesSent  = metrics.DefaultCounter("transport_tcp_bytes_sent_total")
	tcpReconnects = metrics.DefaultCounter("transport_tcp_reconnects_total")
	tcpLinkErrors = metrics.DefaultCounter("transport_tcp_link_errors_total")
)

// tcpInboxCap bounds buffered inbound frames; senders' writes park in
// kernel buffers once it fills.
const tcpInboxCap = 1 << 13

// tcpQueueCap bounds each outbound per-peer queue; Send blocks
// (backpressure) when a peer falls this far behind.
const tcpQueueCap = 1 << 12

// TCPConfig configures one node's TCP endpoint.
type TCPConfig struct {
	// Self is this node's id.
	Self int
	// Peers maps every node id (0..n-1, Self included) to its
	// host:port listen address.
	Peers map[int]string
	// Listener optionally supplies a pre-bound listener for
	// Peers[Self]; tests bind ":0" first to learn the port. When nil,
	// DialTCP listens on Peers[Self].
	Listener net.Listener
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff
	// (defaults 25ms / 2s).
	BackoffMin, BackoffMax time.Duration
	// DrainTimeout bounds how long Close waits for queued outbound
	// frames to flush (default 5s).
	DrainTimeout time.Duration
	// MaxFrame is the frame size limit in bytes (default
	// DefaultMaxFrame).
	MaxFrame int
}

func (c *TCPConfig) withDefaults() TCPConfig {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.BackoffMin <= 0 {
		out.BackoffMin = 25 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 2 * time.Second
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 5 * time.Second
	}
	if out.MaxFrame <= 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	return out
}

// TCP is one node's endpoint on a TCP cluster. Build with DialTCP.
type TCP struct {
	cfg  TCPConfig
	self int
	n    int

	ln    net.Listener
	inbox chan Frame
	peers []*tcpPeer // indexed by id; nil at self

	closing   chan struct{}
	closeOnce sync.Once
	writerWG  sync.WaitGroup
	readerWG  sync.WaitGroup

	mu       sync.Mutex
	linkErrs map[int]error
	conns    map[net.Conn]struct{}

	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	reconnects atomic.Int64
}

type tcpPeer struct {
	id    int
	addr  string
	queue chan Frame
	// connected records that this link has succeeded at least once, so
	// later re-establishments count as reconnects. Only the peer's
	// writeLoop goroutine touches it.
	connected bool
}

// DialTCP opens node cfg.Self's endpoint: it listens on
// cfg.Peers[cfg.Self] (or cfg.Listener) immediately and connects to
// each peer lazily on first send, retrying with backoff until the peer
// is up — so cluster nodes may start in any order.
func DialTCP(cfg TCPConfig) (*TCP, error) {
	c := cfg.withDefaults()
	n := len(c.Peers)
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 peers, got %d", ErrBadPeer, n)
	}
	for id := 0; id < n; id++ {
		if _, ok := c.Peers[id]; !ok {
			return nil, fmt.Errorf("%w: peer ids must be contiguous 0..%d, missing %d", ErrBadPeer, n-1, id)
		}
	}
	if c.Self < 0 || c.Self >= n {
		return nil, fmt.Errorf("%w: self id %d outside [0,%d)", ErrBadPeer, c.Self, n)
	}
	t := &TCP{
		cfg:      c,
		self:     c.Self,
		n:        n,
		inbox:    make(chan Frame, tcpInboxCap),
		peers:    make([]*tcpPeer, n),
		closing:  make(chan struct{}),
		linkErrs: make(map[int]error),
		conns:    make(map[net.Conn]struct{}),
	}
	if c.Listener != nil {
		t.ln = c.Listener
	} else {
		ln, err := net.Listen("tcp", c.Peers[c.Self])
		if err != nil {
			return nil, fmt.Errorf("%w: node %d listen %s: %v", ErrLink, c.Self, c.Peers[c.Self], err)
		}
		t.ln = ln
	}
	for id := 0; id < n; id++ {
		if id == t.self {
			continue
		}
		p := &tcpPeer{id: id, addr: c.Peers[id], queue: make(chan Frame, tcpQueueCap)}
		t.peers[id] = p
		t.writerWG.Add(1)
		go t.writeLoop(p)
	}
	t.readerWG.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self implements Transport.
func (t *TCP) Self() int { return t.self }

// N implements Transport.
func (t *TCP) N() int { return t.n }

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send implements Transport: it enqueues f on the peer's outbound
// queue (blocking for backpressure) and returns once queued; the
// per-peer writer flushes asynchronously with reconnect.
func (t *TCP) Send(f Frame) error {
	select {
	case <-t.closing:
		return fmt.Errorf("%w: node %d send after close", ErrClosed, t.self)
	default:
	}
	f.From = t.self
	if f.To == Broadcast {
		for to := 0; to < t.n; to++ {
			if to == t.self {
				continue
			}
			df := f
			df.To = to
			if err := t.enqueue(df); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkPeer(f.To, t.self, t.n); err != nil {
		return err
	}
	return t.enqueue(f)
}

func (t *TCP) enqueue(f Frame) error {
	p := t.peers[f.To]
	select {
	case p.queue <- f:
		t.framesSent.Add(1)
		tcpFramesSent.Inc()
		return nil
	case <-t.closing:
		return fmt.Errorf("%w: node %d closed mid-send", ErrClosed, t.self)
	}
}

// Recv implements Transport. Buffered frames stay receivable during
// shutdown until the inbox drains.
func (t *TCP) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-t.inbox:
		return f, nil
	default:
	}
	select {
	case f := <-t.inbox:
		return f, nil
	case <-t.closing:
		return Frame{}, fmt.Errorf("%w: node %d recv after close", ErrClosed, t.self)
	case <-ctx.Done():
		return Frame{}, fmt.Errorf("%w: recv: %w", ErrTransport, ctx.Err())
	}
}

// LinkError reports the most recent failure on the link to peer (nil
// when the link has never failed). Errors chain ErrLink/ErrTransport.
func (t *TCP) LinkError(peer int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.linkErrs[peer]
}

// Stats implements Instrumented.
func (t *TCP) Stats() Stats {
	return Stats{
		FramesSent:     t.framesSent.Load(),
		FramesReceived: t.framesRecv.Load(),
		BytesSent:      t.bytesSent.Load(),
		Reconnects:     t.reconnects.Load(),
	}
}

// Close shuts the endpoint down gracefully: new Sends fail
// immediately, the per-peer writers flush their queues (bounded by
// DrainTimeout), then the listener and every connection close and all
// loops are joined.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() { close(t.closing) })
	done := make(chan struct{})
	go func() {
		t.writerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(t.cfg.DrainTimeout + time.Second):
	}
	t.ln.Close() //nolint:errcheck // already closing
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close() //nolint:errcheck // already closing
	}
	t.mu.Unlock()
	t.readerWG.Wait()
	return nil
}

func (t *TCP) setLinkErr(peer int, err error) {
	tcpLinkErrors.Inc()
	t.mu.Lock()
	t.linkErrs[peer] = err
	t.mu.Unlock()
}

// --- outbound: per-peer writer with reconnect/backoff ---

// dial attempts one connection + hello handshake to p.
func (t *TCP) dial(p *tcpPeer) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %d->%d (%s): %v", ErrLink, t.self, p.id, p.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck // best-effort latency knob
	}
	hello := Frame{From: t.self, To: p.id, Round: -1, Tag: helloTag}
	if _, err := WriteFrame(conn, &hello, t.cfg.MaxFrame); err != nil {
		conn.Close() //nolint:errcheck // dial failed anyway
		return nil, fmt.Errorf("%w: hello %d->%d: %v", ErrLink, t.self, p.id, err)
	}
	return conn, nil
}

// connect dials p with exponential backoff until it succeeds, the
// transport starts closing, or the optional deadline passes.
func (t *TCP) connect(p *tcpPeer, deadline time.Time) net.Conn {
	backoff := t.cfg.BackoffMin
	// One timer reused across attempts: time.After here would allocate
	// a fresh timer per retry, each alive until its full backoff
	// elapses even after the connection succeeds.
	var retry *time.Timer
	defer func() {
		if retry != nil {
			retry.Stop()
		}
	}()
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil
		}
		conn, err := t.dial(p)
		if err == nil {
			if p.connected {
				t.reconnects.Add(1)
				tcpReconnects.Inc()
			}
			p.connected = true
			return conn
		}
		t.setLinkErr(p.id, err)
		if retry == nil {
			retry = time.NewTimer(backoff)
		} else {
			if !retry.Stop() {
				select {
				case <-retry.C:
				default:
				}
			}
			retry.Reset(backoff)
		}
		select {
		case <-t.closing:
			// Keep trying only while draining with a deadline; a plain
			// close abandons the link.
			if deadline.IsZero() {
				return nil
			}
		case <-retry.C:
		}
		if backoff *= 2; backoff > t.cfg.BackoffMax {
			backoff = t.cfg.BackoffMax
		}
	}
}

// writeOne flushes f to p, reconnecting on failure until it is written
// or the deadline/closing applies. It returns the live connection (nil
// when the frame had to be dropped).
func (t *TCP) writeOne(p *tcpPeer, conn net.Conn, f Frame, deadline time.Time) net.Conn {
	for {
		if conn == nil {
			conn = t.connect(p, deadline)
			if conn == nil {
				return nil
			}
		}
		n, err := WriteFrame(conn, &f, t.cfg.MaxFrame)
		if err == nil {
			t.bytesSent.Add(int64(n))
			tcpBytesSent.Add(int64(n))
			return conn
		}
		t.setLinkErr(p.id, fmt.Errorf("%w: write %d->%d: %v", ErrLink, t.self, p.id, err))
		conn.Close() //nolint:errcheck // already failed
		conn = nil
		select {
		case <-t.closing:
			if deadline.IsZero() {
				return nil
			}
			if time.Now().After(deadline) {
				return nil
			}
		default:
		}
	}
}

func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.writerWG.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close() //nolint:errcheck // shutdown
		}
	}()
	for {
		select {
		case f := <-p.queue:
			conn = t.writeOne(p, conn, f, time.Time{})
		case <-t.closing:
			// Drain what is already queued, bounded by DrainTimeout, so
			// the final round of a finished protocol reaches the peer.
			deadline := time.Now().Add(t.cfg.DrainTimeout)
			for {
				select {
				case f := <-p.queue:
					conn = t.writeOne(p, conn, f, deadline)
				default:
					return
				}
			}
		}
	}
}

// --- inbound: accept + read loops ---

func (t *TCP) acceptLoop() {
	defer t.readerWG.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closing:
			default:
				t.setLinkErr(t.self, fmt.Errorf("%w: node %d accept: %v", ErrLink, t.self, err))
			}
			return
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.readerWG.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.readerWG.Done()
	defer func() {
		conn.Close() //nolint:errcheck // read side done
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	hello, err := ReadFrame(conn, t.cfg.MaxFrame)
	if err != nil || hello.Tag != helloTag || hello.From < 0 || hello.From >= t.n || hello.From == t.self {
		// Not a cluster peer (or a broken handshake): drop the
		// connection without poisoning a link slot.
		return
	}
	peer := hello.From
	for {
		f, err := ReadFrame(conn, t.cfg.MaxFrame)
		if err != nil {
			select {
			case <-t.closing:
			default:
				t.setLinkErr(peer, fmt.Errorf("%w: read %d->%d: %v", ErrLink, peer, t.self, err))
			}
			return
		}
		if f.Tag == helloTag {
			continue
		}
		f.From = peer // trust the handshake, not the frame header
		t.framesRecv.Add(1)
		tcpFramesRecv.Inc()
		select {
		case t.inbox <- f:
		case <-t.closing:
			return
		}
	}
}

// SortedPeerIDs returns the peer ids of a config in ascending order
// (deterministic iteration helper for callers logging the peer set).
func SortedPeerIDs(peers map[int]string) []int {
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
