// Package transport is the pluggable message plane of the library: a
// Transport moves typed, length-prefixed frames between node IDs, and
// the consensus engines — deterministic state machines emitting
// sched.Outgoing and consuming sched.Message — run unchanged over any
// backend. Three backends ship:
//
//   - the deterministic simulation (internal/sched): all n processes in
//     one engine, seeded link faults, bit-for-bit replay. It remains
//     the default and the fuzz/replay substrate; the facade selects it
//     without touching this package.
//   - Mesh: an in-process channel mesh (NewMesh) — one goroutine per
//     node, real concurrency, no sockets. The race-detector-friendly
//     backend for concurrency tests.
//   - TCP: real sockets (DialTCP) with length-prefixed frames on the
//     wire, per-peer reconnect with exponential backoff, and graceful
//     draining shutdown.
//
// Every error this package returns chains to ErrTransport, so network
// failures stay matchable with errors.Is across the facade — the same
// contract sched.ErrDeliveryViolated provides for the simulated
// substrate (enforced by the transporterr analyzer in cmd/bvclint).
package transport

import (
	"context"
	"errors"
	"fmt"
)

// Broadcast is the special destination meaning "all other nodes",
// mirroring sched.Broadcast.
const Broadcast = -1

// Typed error sentinels. ErrTransport is the root of the chain; every
// derived sentinel and every error minted in this package wraps it, so
// errors.Is(err, ErrTransport) identifies any message-plane failure.
var (
	// ErrTransport is the root sentinel of all message-plane failures.
	ErrTransport = errors.New("transport: message plane failure")
	// ErrClosed: the transport (or the addressed link) has been closed.
	ErrClosed = fmt.Errorf("%w: transport closed", ErrTransport)
	// ErrBadPeer: a frame addressed a node id outside [0, n) or a
	// config named an unknown/duplicate peer.
	ErrBadPeer = fmt.Errorf("%w: invalid peer", ErrTransport)
	// ErrFrameTooLarge: a frame exceeded the configured size limit
	// (send side) or a length prefix announced more than the limit
	// (receive side, where it shields against memory bombs).
	ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds size limit", ErrTransport)
	// ErrBadFrame: bytes on the wire did not decode as a frame.
	ErrBadFrame = fmt.Errorf("%w: malformed frame", ErrTransport)
	// ErrLink: a per-link failure (dial, write, or handshake) on one
	// peer connection; the offending peer id is in the message.
	ErrLink = fmt.Errorf("%w: link failure", ErrTransport)
	// ErrUnsupported: the requested Spec/backend combination is not
	// implemented on this backend (e.g. seeded link faults outside the
	// simulation, or an asynchronous protocol over a real network).
	ErrUnsupported = fmt.Errorf("%w: not supported on this backend", ErrTransport)
)

// Frame is one typed message between node IDs. On stream backends it
// travels length-prefixed (see WriteFrame/ReadFrame); in-process
// backends pass it by value.
type Frame struct {
	// From and To are node ids in [0, n). Send fills From with the
	// local id; To may be Broadcast.
	From, To int
	// Round is the lockstep round the frame was sent in (-1 for the
	// pre-round Start sends), or a backend-defined sequence hint.
	Round int
	// Tag is the protocol-level message type (e.g. "eig"). Tags
	// beginning with '\x00' are reserved for transport control frames.
	Tag string
	// Data is the opaque payload.
	Data []byte
}

// Transport is one node's endpoint on the message plane.
//
// Send enqueues a frame to a peer (or all peers with To == Broadcast);
// it may block for backpressure but never blocks on a slow network —
// stream backends buffer and flush asynchronously with reconnect.
// Recv delivers the next incoming frame, honoring ctx cancellation.
// Close releases the endpoint; it drains queued outgoing frames before
// tearing links down, and subsequent Sends/Recvs fail with ErrClosed.
//
// Implementations must be safe for concurrent use.
type Transport interface {
	// Self is this node's id in [0, N).
	Self() int
	// N is the cluster size.
	N() int
	// Send transmits f (From is overwritten with Self).
	Send(f Frame) error
	// Recv returns the next delivered frame.
	Recv(ctx context.Context) (Frame, error)
	// Close shuts the endpoint down gracefully.
	Close() error
}

// Stats counts one endpoint's traffic. Backends that can, report them
// via the Instrumented extension; the facade copies them into the
// run's RunMetrics.
type Stats struct {
	// FramesSent and FramesReceived count data+control frames through
	// this endpoint.
	FramesSent, FramesReceived int64
	// BytesSent counts encoded payload bytes written to links.
	BytesSent int64
	// Reconnects counts re-established peer connections (TCP only).
	Reconnects int64
}

// Instrumented is implemented by backends that track per-endpoint
// traffic statistics.
type Instrumented interface {
	Stats() Stats
}

// checkPeer validates a destination id against the cluster size and
// the local id.
func checkPeer(to, self, n int) error {
	if to < 0 || to >= n {
		return fmt.Errorf("%w: destination %d outside [0,%d)", ErrBadPeer, to, n)
	}
	if to == self {
		return fmt.Errorf("%w: node %d addressed itself", ErrBadPeer, to)
	}
	return nil
}
