package transport

// The distributed lockstep runner: RunSync drives ONE sched.SyncProcess
// over a Transport while reproducing the delivery semantics of
// sched.SyncEngine exactly — frames sent in round r are delivered at
// Step(r+1), each round's inbox is stable-sorted by (From, Tag), and
// termination is checked at the top of each round. Because the
// processes are deterministic state machines, a cluster of RunSync
// nodes decides bit-for-bit the same values as the single-engine
// simulation of the same Spec (pinned by the facade's parity tests).
//
// Rounds are synchronized with end-of-round (EOR) control frames: after
// a node has sent every data frame destined for delivery round d it
// sends EOR(d) to all peers, carrying its Done flag at that point. A
// node enters Step(r) only after EOR(r) arrived from every peer, so no
// data frame for round r can still be in flight (links are ordered per
// peer). A peer can run at most one round ahead — its EOR(r+1) waits on
// our EOR(r) — so early frames are buffered by round, never dropped.
// Duplicate EOR frames (at-least-once TCP redelivery) are counted once.

import (
	"context"
	"fmt"
	"sort"

	"relaxedbvc/internal/sched"
)

// eorTag is the end-of-round barrier control frame; Data is one byte,
// the sender's Done flag after the round that produced the frames.
const eorTag = "\x00eor"

// SyncNodeStats reports one node's traffic through a RunSync run.
type SyncNodeStats struct {
	// Rounds is the number of lockstep rounds executed — equal on every
	// node of the cluster and to sched.SyncEngine.RoundsRun for the
	// same processes.
	Rounds int
	// Delivered counts protocol messages delivered to the local process.
	Delivered int
	// FramesSent counts data frames (not EOR barriers) sent.
	FramesSent int
}

// RunSync drives proc over t in lockstep until every node in the
// cluster reports Done or maxRounds (<=0 means the sched default 1<<16)
// elapse. traceFn, when non-nil, observes every delivered protocol
// message (the counterpart of sched.SyncEngine.TraceFn).
func RunSync(ctx context.Context, t Transport, proc sched.SyncProcess, maxRounds int, traceFn func(sched.Message)) (*SyncNodeStats, error) {
	if maxRounds <= 0 {
		maxRounds = 1 << 16
	}
	self, n := t.Self(), t.N()
	stats := &SyncNodeStats{}

	sendOuts := func(outs []sched.Outgoing, deliverRound int) error {
		for _, o := range outs {
			if o.To == self {
				return fmt.Errorf("%w: node %d addressed itself", ErrBadPeer, self)
			}
			f := Frame{To: o.To, Round: deliverRound, Tag: o.Tag, Data: o.Data}
			if o.To == sched.Broadcast {
				f.To = Broadcast
				stats.FramesSent += n - 1
			} else {
				stats.FramesSent++
			}
			if err := t.Send(f); err != nil {
				return fmt.Errorf("node %d round %d send: %w", self, deliverRound, err)
			}
		}
		return nil
	}
	sendEOR := func(round int, done bool) error {
		flag := byte(0)
		if done {
			flag = 1
		}
		if err := t.Send(Frame{To: Broadcast, Round: round, Tag: eorTag, Data: []byte{flag}}); err != nil {
			return fmt.Errorf("node %d round %d barrier: %w", self, round, err)
		}
		return nil
	}

	// Buffers for frames that arrive ahead of the round being collected.
	pending := make(map[int][]sched.Message)
	eorSeen := make(map[int]map[int]bool) // round -> peer -> seen
	eorDone := make(map[int]map[int]bool) // round -> peer -> done flag
	noteEOR := func(round, from int, done bool) {
		if eorSeen[round] == nil {
			eorSeen[round] = make(map[int]bool)
			eorDone[round] = make(map[int]bool)
		}
		if eorSeen[round][from] {
			return // duplicate barrier frame (reconnect redelivery)
		}
		eorSeen[round][from] = true
		eorDone[round][from] = done
	}
	// collect blocks until EOR(round) arrived from all n-1 peers, then
	// returns the round's sorted inbox and whether every peer is done.
	collect := func(round int) ([]sched.Message, bool, error) {
		for len(eorSeen[round]) < n-1 {
			f, err := t.Recv(ctx)
			if err != nil {
				return nil, false, fmt.Errorf("node %d round %d: %w", self, round, err)
			}
			switch {
			case f.Tag == eorTag:
				if f.Round >= round {
					noteEOR(f.Round, f.From, len(f.Data) == 1 && f.Data[0] == 1)
				}
			case len(f.Tag) > 0 && f.Tag[0] == 0:
				// Unknown control frame from a newer peer: ignore.
			case f.Round >= round:
				pending[f.Round] = append(pending[f.Round], sched.Message{
					From: f.From, To: self, Tag: f.Tag, Data: f.Data, SentRound: f.Round - 1,
				})
			default:
				// A data frame for an already-collected round can only be a
				// reconnect duplicate; the protocols tolerate (and the sim's
				// fault layer exercises) duplication, but dropping it keeps
				// the inbox bit-identical to the fault-free simulation.
			}
		}
		inbox := pending[round]
		delete(pending, round)
		sort.SliceStable(inbox, func(i, j int) bool {
			a, b := inbox[i], inbox[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.Tag < b.Tag
		})
		allDone := true
		for peer := 0; peer < n; peer++ {
			if peer != self && !eorDone[round][peer] {
				allDone = false
				break
			}
		}
		delete(eorSeen, round)
		delete(eorDone, round)
		return inbox, allDone, nil
	}

	// Start: the frames it emits are delivered in round 0.
	if err := sendOuts(proc.Start(), 0); err != nil {
		return stats, err
	}
	if err := sendEOR(0, proc.Done()); err != nil {
		return stats, err
	}
	for round := 0; ; round++ {
		inbox, peersDone, err := collect(round)
		if err != nil {
			return stats, err
		}
		// Top-of-round termination check, as in sched.SyncEngine: the
		// EOR(round) flags reflect every peer's state after Step(round-1),
		// the same global state the engine's allDone scan observes. Every
		// node evaluates the same predicate, so all exit at the same round.
		if proc.Done() && peersDone {
			stats.Rounds = round
			return stats, nil
		}
		if round >= maxRounds {
			return stats, fmt.Errorf("%w: node %d round limit %d exceeded", ErrTransport, self, maxRounds)
		}
		var outs []sched.Outgoing
		if !proc.Done() {
			stats.Delivered += len(inbox)
			if traceFn != nil {
				for _, m := range inbox {
					traceFn(m)
				}
			}
			outs = proc.Step(round, inbox)
		}
		if err := sendOuts(outs, round+1); err != nil {
			return stats, err
		}
		if err := sendEOR(round+1, proc.Done()); err != nil {
			return stats, err
		}
		stats.Rounds = round + 1
	}
}
