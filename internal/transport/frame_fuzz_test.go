package transport

// Fuzz coverage for the wire codec: DecodeFrame and ReadFrame must be
// total on arbitrary input — every byte string either yields a Frame
// that re-encodes canonically or an error chaining ErrTransport, and
// nothing panics. Truncated and oversized frames are seeded explicitly.

import (
	"bytes"
	"errors"
	"testing"
)

func fuzzSeeds() [][]byte {
	frames := []Frame{
		{From: 0, To: 1, Round: 0, Tag: "eig", Data: []byte("payload")},
		{From: 3, To: Broadcast, Round: -1, Tag: eorTag, Data: []byte{1}},
		{From: 65535, To: 2, Round: 1 << 30, Tag: "", Data: nil},
		{From: 1, To: 0, Round: -1, Tag: helloTag},
	}
	seeds := make([][]byte, 0, len(frames)+3)
	for i := range frames {
		seeds = append(seeds, EncodeFrame(&frames[i]))
	}
	full := EncodeFrame(&frames[0])
	seeds = append(seeds,
		full[:len(full)-3],                       // truncated data field
		full[:frameHeaderLen-1],                  // shorter than the header
		append(full[:len(full):len(full)], 0xAA), // trailing byte
	)
	return seeds
}

func FuzzFrameDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error %v does not chain ErrBadFrame", err)
			}
			if !errors.Is(err, ErrTransport) {
				t.Fatalf("decode error %v does not chain ErrTransport", err)
			}
			return
		}
		if got := EncodeFrame(&fr); !bytes.Equal(got, b) {
			t.Fatalf("decode is not canonical: re-encoded %x from %x", got, b)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		var buf bytes.Buffer
		fr := Frame{From: 0, To: 1, Tag: "eig", Data: s}
		if _, err := WriteFrame(&buf, &fr, 0); err == nil {
			f.Add(buf.Bytes())
		}
		f.Add(s)
	}
	// An announced length far beyond the limit must fail before
	// allocating.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		fr, err := ReadFrame(r, 1<<16)
		if err != nil {
			if !errors.Is(err, ErrTransport) {
				t.Fatalf("read error %v does not chain ErrTransport", err)
			}
			return
		}
		// A successful read must reproduce exactly the consumed prefix
		// when written back (stream framing is canonical too).
		var out bytes.Buffer
		if _, err := WriteFrame(&out, &fr, 1<<16); err != nil {
			t.Fatalf("re-write of decoded frame: %v", err)
		}
		consumed := len(b) - r.Len()
		if !bytes.Equal(out.Bytes(), b[:consumed]) {
			t.Fatalf("stream round-trip mismatch: wrote %x, consumed %x", out.Bytes(), b[:consumed])
		}
	})
}
