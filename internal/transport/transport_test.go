package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/vec"
)

// --- frame codec ---

func TestFrameRoundTrip(t *testing.T) {
	v := vec.New(3)
	v[0], v[1], v[2] = 1.5, -2.25, 1e-300
	cases := []Frame{
		{From: 0, To: 1, Round: 0, Tag: "eig", Data: []byte("payload")},
		{From: 2, To: Broadcast, Round: -1, Tag: eorTag, Data: []byte{1}},
		{From: 65535, To: 0, Round: 1<<31 - 1, Tag: ""},
		{From: 1, To: 3, Round: 7, Tag: "vec", Data: broadcast.EncodeVec(v)},
	}
	for _, want := range cases {
		b := EncodeFrame(&want)
		got, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.From != want.From || got.To != want.To || got.Round != want.Round || got.Tag != want.Tag || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	// The vector payload survives the frame path bit-for-bit.
	f := cases[3]
	decoded, err := DecodeFrame(EncodeFrame(&f))
	if err != nil {
		t.Fatal(err)
	}
	got, err := broadcast.DecodeVec(decoded.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("coordinate %d: got %v, want %v", i, got[i], v[i])
		}
	}
}

func TestDecodeFrameRejectsMalformed(t *testing.T) {
	valid := EncodeFrame(&Frame{From: 0, To: 1, Tag: "eig", Data: []byte("abc")})
	cases := map[string][]byte{
		"short header":   valid[:frameHeaderLen-2],
		"truncated data": valid[:len(valid)-1],
		"trailing bytes": append(valid[:len(valid):len(valid)], 0x00),
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	f := Frame{To: 1, Tag: "eig", Data: make([]byte, 256)}
	_, err := WriteFrame(&buf, &f, 64)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame wrote %d bytes; stream framing is broken", buf.Len())
	}
}

func TestReadFrameStream(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{From: 0, To: 1, Round: 0, Tag: "eig", Data: []byte("a")},
		{From: 0, To: 1, Round: 1, Tag: "eig", Data: []byte("bb")},
	}
	for i := range frames {
		if _, err := WriteFrame(&buf, &frames[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Round != frames[i].Round || !bytes.Equal(got.Data, frames[i].Data) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, frames[i])
		}
	}
	// Clean EOF at a frame boundary surfaces io.EOF through ErrTransport.
	_, err := ReadFrame(&buf, 0)
	if !errors.Is(err, io.EOF) || !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want io.EOF chained under ErrTransport", err)
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	// 4 GiB announced: must fail before allocating the buffer.
	r := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(r, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// --- in-process mesh ---

func TestMeshUnicastAndBroadcast(t *testing.T) {
	m := NewMesh(3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := m.Node(0).Send(Frame{To: 1, Round: 0, Tag: "eig", Data: []byte("uni")}); err != nil {
		t.Fatal(err)
	}
	f, err := m.Node(1).Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 0 || f.To != 1 || string(f.Data) != "uni" {
		t.Fatalf("unicast delivered %+v", f)
	}

	if err := m.Node(2).Send(Frame{To: Broadcast, Round: 1, Tag: "eig", Data: []byte("all")}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		f, err := m.Node(i).Recv(ctx)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if f.From != 2 || f.To != i || string(f.Data) != "all" {
			t.Fatalf("node %d got %+v", i, f)
		}
	}
}

func TestMeshPeerValidation(t *testing.T) {
	m := NewMesh(2)
	if err := m.Node(0).Send(Frame{To: 5}); !errors.Is(err, ErrBadPeer) {
		t.Errorf("out of range: err = %v, want ErrBadPeer", err)
	}
	if err := m.Node(0).Send(Frame{To: 0}); !errors.Is(err, ErrBadPeer) {
		t.Errorf("self-send: err = %v, want ErrBadPeer", err)
	}
}

func TestMeshClose(t *testing.T) {
	m := NewMesh(2)
	if err := m.Node(1).Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Node(0).Send(Frame{To: 1, Tag: "eig"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send to closed peer: err = %v, want ErrClosed", err)
	}
	if err := m.Node(1).Send(Frame{To: 0, Tag: "eig"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send from closed node: err = %v, want ErrClosed", err)
	}
	if _, err := m.Node(1).Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: err = %v, want ErrClosed", err)
	}
}

func TestMeshRecvHonorsContext(t *testing.T) {
	m := NewMesh(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Node(0).Recv(ctx)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want context.Canceled under ErrTransport", err)
	}
}

// --- TCP backend ---

func listenLoopback(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

func TestTCPPairExchange(t *testing.T) {
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	peers := map[int]string{0: ln0.Addr().String(), 1: ln1.Addr().String()}
	n0, err := DialTCP(TCPConfig{Self: 0, Peers: peers, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := DialTCP(TCPConfig{Self: 1, Peers: peers, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := n0.Send(Frame{To: 1, Round: 0, Tag: "eig", Data: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	f, err := n1.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 0 || f.Tag != "eig" || string(f.Data) != "hello" {
		t.Fatalf("delivered %+v", f)
	}
	if err := n1.Send(Frame{To: Broadcast, Round: 0, Tag: "ack"}); err != nil {
		t.Fatal(err)
	}
	f, err = n0.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 1 || f.Tag != "ack" {
		t.Fatalf("delivered %+v", f)
	}
	if s := n0.Stats(); s.FramesSent == 0 || s.FramesReceived == 0 || s.BytesSent == 0 {
		t.Errorf("stats not counted: %+v", s)
	}
}

// TestTCPCloseDrainsQueuedFrames pins graceful shutdown: frames queued
// before Close still reach the peer (the final round of a finished
// protocol must not be cut off).
func TestTCPCloseDrainsQueuedFrames(t *testing.T) {
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	peers := map[int]string{0: ln0.Addr().String(), 1: ln1.Addr().String()}
	n0, err := DialTCP(TCPConfig{Self: 0, Peers: peers, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := DialTCP(TCPConfig{Self: 1, Peers: peers, Listener: ln1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	if err := n0.Send(Frame{To: 1, Round: 0, Tag: "eig", Data: []byte("last")}); err != nil {
		t.Fatal(err)
	}
	if err := n0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n0.Send(Frame{To: 1, Tag: "eig"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: err = %v, want ErrClosed", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f, err := n1.Recv(ctx)
	if err != nil {
		t.Fatalf("queued frame lost at close: %v", err)
	}
	if string(f.Data) != "last" {
		t.Fatalf("delivered %+v", f)
	}
}

// TestTCPReconnect kills an established connection from the accepting
// side and checks the writer re-dials with backoff and keeps
// delivering (at-least-once across the cut).
func TestTCPReconnect(t *testing.T) {
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	peers := map[int]string{0: ln0.Addr().String(), 1: ln1.Addr().String()}
	n0, err := DialTCP(TCPConfig{
		Self: 0, Peers: peers, Listener: ln0,
		BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()

	if err := n0.Send(Frame{To: 1, Round: 0, Tag: "eig", Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	conn, err := ln1.Accept()
	if err != nil {
		t.Fatal(err)
	}
	hello, err := ReadFrame(conn, 0)
	if err != nil || hello.Tag != helloTag || hello.From != 0 {
		t.Fatalf("handshake: frame %+v, err %v", hello, err)
	}
	conn.Close() // sever the link mid-stream

	accepted := make(chan net.Conn, 1)
	go func() {
		if c, err := ln1.Accept(); err == nil {
			accepted <- c
		}
	}()
	// Keep traffic flowing until the writer notices the dead socket and
	// re-dials.
	var conn2 net.Conn
	deadline := time.After(10 * time.Second)
	for conn2 == nil {
		if err := n0.Send(Frame{To: 1, Round: 1, Tag: "eig", Data: []byte("b")}); err != nil {
			t.Fatal(err)
		}
		select {
		case conn2 = <-accepted:
		case <-deadline:
			t.Fatal("writer never re-dialed after the connection was cut")
		case <-time.After(2 * time.Millisecond):
		}
	}
	defer conn2.Close()
	hello2, err := ReadFrame(conn2, 0)
	if err != nil || hello2.Tag != helloTag {
		t.Fatalf("second handshake: frame %+v, err %v", hello2, err)
	}
	f, err := ReadFrame(conn2, 0)
	if err != nil || f.Tag != "eig" {
		t.Fatalf("no data after reconnect: frame %+v, err %v", f, err)
	}
	if n0.Stats().Reconnects == 0 {
		t.Error("reconnect not counted in stats")
	}
}

// TestTCPRejectsForeignConnection pins the handshake gate: a connection
// whose hello does not identify a cluster peer is dropped without
// delivering anything and without poisoning a link slot.
func TestTCPRejectsForeignConnection(t *testing.T) {
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	defer ln1.Close()
	peers := map[int]string{0: ln0.Addr().String(), 1: ln1.Addr().String()}
	n0, err := DialTCP(TCPConfig{Self: 0, Peers: peers, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()

	conn, err := net.Dial("tcp", n0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bogus := Frame{From: 7, To: 0, Round: -1, Tag: helloTag} // id outside [0,2)
	if _, err := WriteFrame(conn, &bogus, 0); err != nil {
		t.Fatal(err)
	}
	data := Frame{From: 7, To: 0, Tag: "eig", Data: []byte("evil")}
	if _, err := WriteFrame(conn, &data, 0); err != nil {
		t.Fatal(err)
	}
	// The node must hang up (EOF, or RST if our data frame was still
	// unread when it closed — either way, not a timeout)...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil && os.IsTimeout(err) {
		t.Fatalf("node kept the foreign connection open: %v", err)
	}
	// ...and deliver nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if f, err := n0.Recv(ctx); err == nil {
		t.Fatalf("foreign frame delivered: %+v", f)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if err := n0.LinkError(1); err != nil {
		t.Fatalf("foreign connection poisoned link 1: %v", err)
	}
}

// TestTCPLinkErrorSurfaced pins per-link error reporting: garbage on an
// authenticated stream records an ErrLink for that peer.
func TestTCPLinkErrorSurfaced(t *testing.T) {
	ln0, ln1 := listenLoopback(t), listenLoopback(t)
	defer ln1.Close()
	peers := map[int]string{0: ln0.Addr().String(), 1: ln1.Addr().String()}
	n0, err := DialTCP(TCPConfig{Self: 0, Peers: peers, Listener: ln0})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()

	conn, err := net.Dial("tcp", n0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := Frame{From: 1, To: 0, Round: -1, Tag: helloTag}
	if _, err := WriteFrame(conn, &hello, 0); err != nil {
		t.Fatal(err)
	}
	// An absurd length prefix: ReadFrame fails with ErrFrameTooLarge and
	// the read loop must record it against peer 1.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if err := n0.LinkError(1); err != nil {
			if !errors.Is(err, ErrLink) || !errors.Is(err, ErrTransport) {
				t.Fatalf("link error %v does not chain ErrLink/ErrTransport", err)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("link error never surfaced")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestDialTCPValidatesConfig(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Self: 0, Peers: map[int]string{0: "a", 2: "b"}}); !errors.Is(err, ErrBadPeer) {
		t.Errorf("gap in ids: err = %v, want ErrBadPeer", err)
	}
	if _, err := DialTCP(TCPConfig{Self: 5, Peers: map[int]string{0: "a", 1: "b"}}); !errors.Is(err, ErrBadPeer) {
		t.Errorf("self outside cluster: err = %v, want ErrBadPeer", err)
	}
}

func TestSortedPeerIDs(t *testing.T) {
	ids := SortedPeerIDs(map[int]string{2: "c", 0: "a", 1: "b"})
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids = %v, want [0 1 2]", ids)
		}
	}
}
