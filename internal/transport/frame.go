package transport

// The wire codec: a Frame is flattened to a fixed header (from, to,
// round) followed by two length-prefixed fields (tag, data) in the
// exact field layout of internal/broadcast's message encodings
// (broadcast.AppendField/ReadField), and travels on stream links as a
// single 4-byte big-endian length prefix plus that payload. The codec
// is total on arbitrary input: any byte string either decodes to a
// Frame or returns an error chaining ErrBadFrame — never a panic
// (fuzzed in frame_fuzz_test.go, including truncated and oversized
// frames).

import (
	"encoding/binary"
	"fmt"
	"io"

	"relaxedbvc/internal/broadcast"
)

// DefaultMaxFrame is the frame size limit applied when a config leaves
// MaxFrame zero: 1 MiB, far above any EIG relay (vectors are tens of
// bytes) yet small enough to bound a malicious length prefix.
const DefaultMaxFrame = 1 << 20

// frameHeaderLen is the fixed prefix of an encoded frame: u16 from,
// u16 to, u32 round (two's complement for the -1 Start round).
const frameHeaderLen = 8

// EncodeFrame flattens f to the wire payload (without the stream
// length prefix).
func EncodeFrame(f *Frame) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+8+len(f.Tag)+len(f.Data))
	binary.BigEndian.PutUint16(buf[0:], uint16(f.From))
	binary.BigEndian.PutUint16(buf[2:], uint16(f.To))
	binary.BigEndian.PutUint32(buf[4:], uint32(int32(f.Round)))
	buf = broadcast.AppendField(buf, []byte(f.Tag))
	buf = broadcast.AppendField(buf, f.Data)
	return buf
}

// DecodeFrame parses a payload produced by EncodeFrame. Trailing bytes
// after the data field are rejected, so the encoding is canonical:
// DecodeFrame(EncodeFrame(f)) round-trips and nothing else does.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < frameHeaderLen {
		return f, fmt.Errorf("%w: %d-byte payload shorter than the %d-byte header", ErrBadFrame, len(b), frameHeaderLen)
	}
	f.From = int(binary.BigEndian.Uint16(b[0:]))
	f.To = int(int16(binary.BigEndian.Uint16(b[2:])))
	f.Round = int(int32(binary.BigEndian.Uint32(b[4:])))
	tag, rest, err := broadcast.ReadField(b[frameHeaderLen:])
	if err != nil {
		return f, fmt.Errorf("%w: tag field: %v", ErrBadFrame, err)
	}
	data, rest, err := broadcast.ReadField(rest)
	if err != nil {
		return f, fmt.Errorf("%w: data field: %v", ErrBadFrame, err)
	}
	if len(rest) != 0 {
		return f, fmt.Errorf("%w: %d trailing bytes after data field", ErrBadFrame, len(rest))
	}
	f.Tag = string(tag)
	if len(data) > 0 {
		f.Data = data
	}
	return f, nil
}

// WriteFrame writes one length-prefixed frame to w. Frames larger than
// maxFrame (0 = DefaultMaxFrame) fail with ErrFrameTooLarge before any
// byte is written, keeping the stream framing intact.
func WriteFrame(w io.Writer, f *Frame, maxFrame int) (int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	payload := EncodeFrame(f)
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("%w: %d-byte frame, limit %d", ErrFrameTooLarge, len(payload), maxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	n, err := w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("%w: write: %v", ErrTransport, err)
	}
	return n, nil
}

// ReadFrame reads one length-prefixed frame from r. A length prefix
// above maxFrame (0 = DefaultMaxFrame) fails with ErrFrameTooLarge
// without allocating the announced buffer; short reads and undecodable
// payloads chain ErrBadFrame; a clean EOF before the first prefix byte
// surfaces as io.EOF wrapped in ErrTransport so stream loops can
// terminate on it.
func ReadFrame(r io.Reader, maxFrame int) (Frame, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: read length prefix: %w", ErrTransport, err)
	}
	size := int(binary.BigEndian.Uint32(prefix[:]))
	if size > maxFrame {
		return Frame{}, fmt.Errorf("%w: announced %d bytes, limit %d", ErrFrameTooLarge, size, maxFrame)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated %d-byte frame: %v", ErrBadFrame, size, err)
	}
	return DecodeFrame(payload)
}
