package geom

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

func randSet(rng *rand.Rand, n, d int) *vec.Set {
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(d)
		for k := range p {
			p[k] = rng.NormFloat64() * 3
		}
		pts[i] = p
	}
	return vec.NewSet(pts...)
}

// TestCacheBitForBit fuzzes point sets and asserts every cached kernel
// returns exactly — bit for bit — what the uncached computation returns,
// both on a cold cache (first call stores compute's own output) and on a
// warm cache (second call replays the stored entry).
func TestCacheBitForBit(t *testing.T) {
	defer SetCaching(true)
	rng := rand.New(rand.NewSource(7))
	ps := []float64{1, 1.5, 2, 3, math.Inf(1)}
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		d := 1 + rng.Intn(3)
		s := randSet(rng, n, d)
		q := vec.New(d)
		for k := range q {
			q[k] = rng.NormFloat64() * 3
		}
		p := ps[rng.Intn(len(ps))]

		SetCaching(false)
		wantIn := InHull(q, s)
		wantD, wantPt := DistP(q, s, p)

		SetCaching(true)
		ResetCache()
		for pass := 0; pass < 2; pass++ { // cold then warm
			if got := InHull(q, s); got != wantIn {
				t.Fatalf("trial %d pass %d: InHull cached=%v uncached=%v", trial, pass, got, wantIn)
			}
			gotD, gotPt := DistP(q, s, p)
			if math.Float64bits(gotD) != math.Float64bits(wantD) {
				t.Fatalf("trial %d pass %d p=%v: DistP cached=%v uncached=%v", trial, pass, p, gotD, wantD)
			}
			for k := range wantPt {
				if math.Float64bits(gotPt[k]) != math.Float64bits(wantPt[k]) {
					t.Fatalf("trial %d pass %d p=%v: point coord %d cached=%v uncached=%v",
						trial, pass, p, k, gotPt[k], wantPt[k])
				}
			}
		}
	}
}

// TestCacheHitCounting checks that repeat queries hit and that the
// returned point is a private copy the caller may mutate.
func TestCacheHitCounting(t *testing.T) {
	defer SetCaching(true)
	SetCaching(true)
	ResetCache()
	rng := rand.New(rand.NewSource(11))
	s := randSet(rng, 5, 2)
	q := vec.V{0.25, -0.75}

	d1, pt1 := Dist2(q, s)
	pt1[0] = math.NaN() // must not corrupt the cache entry
	d2, pt2 := Dist2(q, s)
	if d1 != d2 {
		t.Fatalf("distances differ across hits: %v vs %v", d1, d2)
	}
	if math.IsNaN(pt2[0]) {
		t.Fatal("mutating a returned point corrupted the cached entry")
	}
	st := CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected a cache hit, got stats %+v", st)
	}
}
