// Package geom implements the convex-geometry primitives of the relaxed
// Byzantine vector consensus library: convex hull membership, point-to-
// hull distances in every Lp norm, (delta,p)-relaxed hull membership
// (Definition 9 of the paper), and Caratheodory decompositions.
//
// Membership and L1/Linf distances are exact LP reductions; the L2
// distance uses Wolfe's finite min-norm-point algorithm; other p use
// Frank-Wolfe over the weight simplex with a certified duality gap.
package geom

import (
	"fmt"
	"math"
	"sync"

	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/vec"
)

// Eps is the default geometric tolerance used by membership predicates.
const Eps = 1e-7

// InHull reports whether q lies in the convex hull of the points of s,
// decided by LP feasibility of the convex-combination system. Results
// are memoized (see cache.go).
func InHull(q vec.V, s *vec.Set) bool {
	if s.Len() == 0 {
		return false
	}
	if q.Dim() != s.Dim() {
		panic("geom: InHull dimension mismatch")
	}
	if cache.Enabled() {
		k := pointSetKey(opInHull, q, s)
		defer k.Release()
		if v, ok := cache.Get(k); ok {
			return v.(bool)
		}
		return cache.Put(k, inHullLP(q, s)).(bool)
	}
	return inHullLP(q, s)
}

// hullScratch bundles a reusable LP problem and row buffer so the hot
// membership/distance predicates build their LPs without allocating;
// Problem.Reset recycles retired constraint rows through its free list.
type hullScratch struct {
	prob *lp.Problem
	row  []float64
}

var hullScratchPool = sync.Pool{New: func() any {
	return &hullScratch{prob: lp.NewProblem(0)}
}}

func (h *hullScratch) rowBuf(n int) []float64 {
	h.row = growF(h.row, n)
	clear(h.row)
	return h.row
}

// inHullLP is the uncached feasibility test behind InHull. With
// filtered predicates enabled, a certified float screen decides the
// easy cases (the accept/reject certificates are exactly verified with
// margin over the LP tolerance, so the answer matches the LP
// bit-for-bit); only near-boundary queries fall through to the exact
// LP, which runs on a pooled Problem.
func inHullLP(q vec.V, s *vec.Set) bool {
	if filteredPredicates.Load() {
		fsc := GetFilterScratch()
		in, decided := hullMembershipScreen(q, s, fsc)
		fsc.Release()
		if decided {
			if in {
				filterAccepts.Inc()
			} else {
				filterRejects.Inc()
			}
			return in
		}
		filterFallbacks.Inc()
	}
	h := hullScratchPool.Get().(*hullScratch)
	defer hullScratchPool.Put(h)
	m := s.Len()
	p := h.prob
	p.Reset(m)
	row := h.rowBuf(m)
	for k := 0; k < q.Dim(); k++ {
		for i := 0; i < m; i++ {
			row[i] = s.At(i)[k]
		}
		p.AddConstraint(row, lp.EQ, q[k])
	}
	for i := range row {
		row[i] = 1
	}
	p.AddConstraint(row, lp.EQ, 1)
	res, err := p.Solve()
	if err != nil {
		panic(err)
	}
	return res.Status == lp.Optimal
}

// hullLP builds the feasibility LP: exists lambda in the simplex with
// sum lambda_i s_i = q.
func hullLP(q vec.V, s *vec.Set) *lp.Problem {
	m := s.Len()
	p := lp.NewProblem(m)
	for k := 0; k < q.Dim(); k++ {
		row := make([]float64, m)
		for i := 0; i < m; i++ {
			row[i] = s.At(i)[k]
		}
		p.AddConstraint(row, lp.EQ, q[k])
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	p.AddConstraint(ones, lp.EQ, 1)
	return p
}

// HullWeights returns convex weights expressing q as a combination of the
// points of s, or ok=false if q is outside the hull. The weights come from
// a basic LP solution, so at most dim+1 of them are nonzero (Caratheodory,
// Theorem 11 in the paper's numbering).
func HullWeights(q vec.V, s *vec.Set) (weights []float64, ok bool) {
	if s.Len() == 0 {
		return nil, false
	}
	res, err := hullLP(q, s).Solve()
	if err != nil {
		panic(err)
	}
	if res.Status != lp.Optimal {
		return nil, false
	}
	return res.X, true
}

// Caratheodory returns indices and weights of at most d+1 points of s
// whose convex combination is q. ok=false if q is not in the hull.
func Caratheodory(q vec.V, s *vec.Set) (idx []int, weights []float64, ok bool) {
	w, ok := HullWeights(q, s)
	if !ok {
		return nil, nil, false
	}
	for i, wi := range w {
		if wi > 1e-12 {
			idx = append(idx, i)
			weights = append(weights, wi)
		}
	}
	// Renormalize the kept weights (dropped ones were numerically zero).
	sum := 0.0
	for _, wi := range weights {
		sum += wi
	}
	if sum <= 0 {
		return nil, nil, false
	}
	for i := range weights {
		weights[i] /= sum
	}
	return idx, weights, true
}

// DistInf returns the L-infinity distance from q to conv(s), together with
// the nearest hull point (memoized). Exact LP:
//
//	min t  s.t.  |q - sum lambda_i s_i|_k <= t for all k, lambda in simplex.
func DistInf(q vec.V, s *vec.Set) (float64, vec.V) {
	return cachedDist(opDistInf, q, s, 0, func() (float64, vec.V) { return distInfLP(q, s) })
}

func distInfLP(q vec.V, s *vec.Set) (float64, vec.V) {
	m, d := s.Len(), q.Dim()
	if m == 0 {
		panic("geom: DistInf on empty set")
	}
	h := hullScratchPool.Get().(*hullScratch)
	defer hullScratchPool.Put(h)
	// Variables: lambda_0..m-1, t.
	p := h.prob
	p.Reset(m + 1)
	row := h.rowBuf(m + 1)
	row[m] = 1
	p.SetObjective(row, lp.Minimize)
	for k := 0; k < d; k++ {
		// sum lambda_i s_i[k] + t >= q[k]   and   sum lambda_i s_i[k] - t <= q[k]
		for i := 0; i < m; i++ {
			row[i] = s.At(i)[k]
		}
		row[m] = 1
		p.AddConstraint(row, lp.GE, q[k])
		row[m] = -1
		p.AddConstraint(row, lp.LE, q[k])
	}
	for i := 0; i < m; i++ {
		row[i] = 1
	}
	row[m] = 0
	p.AddConstraint(row, lp.EQ, 1)
	res, err := p.Solve()
	if err != nil || res.Status != lp.Optimal {
		panic(fmt.Sprintf("geom: DistInf LP failed: %v %v", err, res))
	}
	return math.Max(res.X[m], 0), combine(s, res.X[:m])
}

// Dist1 returns the L1 distance from q to conv(s) and the nearest hull
// point (memoized), via the exact LP with per-coordinate deviation
// variables.
func Dist1(q vec.V, s *vec.Set) (float64, vec.V) {
	return cachedDist(opDist1, q, s, 0, func() (float64, vec.V) { return dist1LP(q, s) })
}

func dist1LP(q vec.V, s *vec.Set) (float64, vec.V) {
	m, d := s.Len(), q.Dim()
	if m == 0 {
		panic("geom: Dist1 on empty set")
	}
	h := hullScratchPool.Get().(*hullScratch)
	defer hullScratchPool.Put(h)
	// Variables: lambda_0..m-1, t_0..d-1.
	p := h.prob
	p.Reset(m + d)
	row := h.rowBuf(m + d)
	for k := 0; k < d; k++ {
		row[m+k] = 1
	}
	p.SetObjective(row, lp.Minimize)
	for k := 0; k < d; k++ {
		clear(row)
		for i := 0; i < m; i++ {
			row[i] = s.At(i)[k]
		}
		row[m+k] = 1
		p.AddConstraint(row, lp.GE, q[k])
		row[m+k] = -1
		p.AddConstraint(row, lp.LE, q[k])
	}
	clear(row)
	for i := 0; i < m; i++ {
		row[i] = 1
	}
	p.AddConstraint(row, lp.EQ, 1)
	res, err := p.Solve()
	if err != nil || res.Status != lp.Optimal {
		panic(fmt.Sprintf("geom: Dist1 LP failed: %v %v", err, res))
	}
	return math.Max(res.Objective, 0), combine(s, res.X[:m])
}

func combine(s *vec.Set, w []float64) vec.V {
	out := vec.New(s.Dim())
	for i := 0; i < s.Len(); i++ {
		out.AXPY(w[i], s.At(i))
	}
	return out
}

// DistP returns the Lp distance from q to conv(s) and the nearest hull
// point. p = 1, 2 and Inf dispatch to the exact algorithms; other p >= 1
// use Frank-Wolfe with a duality-gap certificate of 1e-9 absolute.
func DistP(q vec.V, s *vec.Set, p float64) (float64, vec.V) {
	switch {
	case p == 1:
		return Dist1(q, s)
	case p == 2:
		return Dist2(q, s)
	case math.IsInf(p, 1):
		return DistInf(q, s)
	case p > 1:
		return cachedDist(opDistFW, q, s, p, func() (float64, vec.V) { return distFW(q, s, p) })
	}
	panic(fmt.Sprintf("geom: DistP requires p >= 1, got %v", p))
}

// DistPUncached is DistP bypassing the memo cache; see Dist2Uncached for
// when that is the right call.
func DistPUncached(q vec.V, s *vec.Set, p float64) (float64, vec.V) {
	switch {
	case p == 1:
		return dist1LP(q, s)
	case p == 2:
		return Dist2Uncached(q, s)
	case math.IsInf(p, 1):
		return distInfLP(q, s)
	case p > 1:
		return distFW(q, s, p)
	}
	panic(fmt.Sprintf("geom: DistP requires p >= 1, got %v", p))
}

// InRelaxedHull reports membership of q in H_(delta,p)(S) per Definition 9:
// q is within Lp distance delta of conv(S). tol widens the test for float
// tolerance (pass 0 for a sharp test at machine precision).
func InRelaxedHull(q vec.V, s *vec.Set, delta, p, tol float64) bool {
	d, _ := DistP(q, s, p)
	return d <= delta+tol
}

// distFW minimizes ||q - S lambda||_p over the simplex by Frank-Wolfe.
// The objective is convex and differentiable for 1 < p < inf away from
// zero residual; if the residual reaches ~0 the distance is 0.
func distFW(q vec.V, s *vec.Set, p float64) (float64, vec.V) {
	m := s.Len()
	lam := make([]float64, m)
	for i := range lam {
		lam[i] = 1 / float64(m)
	}
	x := combine(s, lam)
	const iters = 600
	for it := 0; it < iters; it++ {
		r := x.Sub(q) // residual
		rn := r.NormP(p)
		if rn < 1e-12 {
			return 0, x
		}
		// Gradient of ||r||_p wrt x: sign(r_k) |r_k|^{p-1} / ||r||_p^{p-1}.
		g := make(vec.V, len(r))
		for k, rv := range r {
			if rv == 0 {
				continue
			}
			g[k] = math.Copysign(math.Pow(math.Abs(rv)/rn, p-1), rv)
		}
		// Linear minimization over the simplex: best vertex.
		best, bestVal := 0, math.Inf(1)
		for i := 0; i < m; i++ {
			v := g.Dot(s.At(i))
			if v < bestVal {
				best, bestVal = i, v
			}
		}
		gap := g.Dot(x) - bestVal
		if gap < 1e-10 {
			break
		}
		gamma := 2 / float64(it+2)
		// Line-search refinement: try a few step sizes and keep the best.
		target := s.At(best)
		bestStep, bestNorm := gamma, math.Inf(1)
		for _, step := range []float64{gamma, gamma / 2, math.Min(1, gamma*2), 1} {
			cand := vec.Lerp(x, target, step)
			if n := cand.Sub(q).NormP(p); n < bestNorm {
				bestStep, bestNorm = step, n
			}
		}
		x = vec.Lerp(x, target, bestStep)
	}
	return x.Sub(q).NormP(p), x
}
