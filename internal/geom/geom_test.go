package geom

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

func triangle() *vec.Set {
	return vec.NewSet(vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1))
}

func TestInHull(t *testing.T) {
	s := triangle()
	cases := []struct {
		q    vec.V
		want bool
	}{
		{vec.Of(0.2, 0.2), true},
		{vec.Of(0, 0), true},     // vertex
		{vec.Of(0.5, 0.5), true}, // edge
		{vec.Of(0.51, 0.51), false},
		{vec.Of(-0.01, 0), false},
		{vec.Of(2, 2), false},
	}
	for _, c := range cases {
		if got := InHull(c.q, s); got != c.want {
			t.Errorf("InHull(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestInHullEmptyAndMismatch(t *testing.T) {
	if InHull(vec.Of(1), vec.NewSet()) {
		t.Error("membership in empty hull")
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	InHull(vec.Of(1), triangle())
}

func TestHullWeights(t *testing.T) {
	s := triangle()
	q := vec.Of(0.25, 0.25)
	w, ok := HullWeights(q, s)
	if !ok {
		t.Fatal("weights not found for interior point")
	}
	rec := vec.New(2)
	sum := 0.0
	for i, wi := range w {
		if wi < -1e-9 {
			t.Errorf("negative weight %v", wi)
		}
		rec.AXPY(wi, s.At(i))
		sum += wi
	}
	if math.Abs(sum-1) > 1e-8 || !rec.ApproxEqual(q, 1e-8) {
		t.Errorf("weights do not reconstruct: sum=%v rec=%v", sum, rec)
	}
	if _, ok := HullWeights(vec.Of(5, 5), s); ok {
		t.Error("weights found for exterior point")
	}
}

func TestCaratheodory(t *testing.T) {
	// Many redundant points; decomposition must use at most d+1 = 3.
	s := vec.NewSet(
		vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1), vec.Of(1, 1),
		vec.Of(0.5, 0.5), vec.Of(0.3, 0.7), vec.Of(0.9, 0.1),
	)
	q := vec.Of(0.4, 0.4)
	idx, w, ok := Caratheodory(q, s)
	if !ok {
		t.Fatal("Caratheodory failed on interior point")
	}
	if len(idx) > 3 {
		t.Errorf("Caratheodory used %d points, want <= 3", len(idx))
	}
	rec := vec.New(2)
	for k, i := range idx {
		rec.AXPY(w[k], s.At(i))
	}
	if !rec.ApproxEqual(q, 1e-7) {
		t.Errorf("reconstruction = %v", rec)
	}
	if _, _, ok := Caratheodory(vec.Of(9, 9), s); ok {
		t.Error("Caratheodory succeeded outside hull")
	}
}

func TestDist2KnownCases(t *testing.T) {
	s := triangle()
	cases := []struct {
		q    vec.V
		want float64
	}{
		{vec.Of(0.2, 0.2), 0},          // inside
		{vec.Of(-3, 0), 3},             // beyond vertex along axis
		{vec.Of(1, 1), math.Sqrt2 / 2}, // nearest point (0.5, 0.5)
		{vec.Of(0.5, -1), 1},           // below the bottom edge
	}
	for _, c := range cases {
		got, nearest := Dist2(c.q, s)
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("Dist2(%v) = %v, want %v", c.q, got, c.want)
		}
		if !InHull(nearest, s) && c.want > 0 {
			// Allow boundary tolerance: nearest must be ~in hull.
			d2, _ := Dist2(nearest, s)
			if d2 > 1e-6 {
				t.Errorf("nearest point %v not in hull (d=%v)", nearest, d2)
			}
		}
	}
}

func TestDist2SinglePoint(t *testing.T) {
	s := vec.NewSet(vec.Of(3, 4))
	d, nearest := Dist2(vec.Of(0, 0), s)
	if math.Abs(d-5) > 1e-9 || !nearest.ApproxEqual(vec.Of(3, 4), 1e-9) {
		t.Errorf("d=%v nearest=%v", d, nearest)
	}
}

func TestDist2DuplicatePoints(t *testing.T) {
	s := vec.NewSet(vec.Of(1, 0), vec.Of(1, 0), vec.Of(1, 0))
	d, _ := Dist2(vec.Of(0, 0), s)
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("d = %v", d)
	}
}

func TestDistInfKnown(t *testing.T) {
	s := triangle()
	d, nearest := DistInf(vec.Of(3, 0), s)
	if math.Abs(d-2) > 1e-8 {
		t.Errorf("DistInf = %v, want 2", d)
	}
	if !InHull(nearest, s) {
		t.Errorf("nearest %v not in hull", nearest)
	}
	d0, _ := DistInf(vec.Of(0.1, 0.1), s)
	if d0 > 1e-9 {
		t.Errorf("interior DistInf = %v", d0)
	}
}

func TestDist1Known(t *testing.T) {
	s := triangle()
	d, _ := Dist1(vec.Of(2, 2), s)
	// Nearest in L1 from (2,2) to the hull: any point on segment x+y=1
	// with x,y in [0,1]; L1 distance = (2-x)+(2-y) = 4-1 = 3.
	if math.Abs(d-3) > 1e-8 {
		t.Errorf("Dist1 = %v, want 3", d)
	}
}

func TestDistPGeneral(t *testing.T) {
	s := triangle()
	// For a point straight below the hull, nearest point is (0.5,-0) edge...
	// use q=(0.2,-1): nearest is (0.2,0) for every p, distance 1.
	for _, p := range []float64{1, 1.5, 2, 3, 7, math.Inf(1)} {
		d, _ := DistP(vec.Of(0.2, -1), s, p)
		if math.Abs(d-1) > 1e-4 {
			t.Errorf("DistP(p=%v) = %v, want 1", p, d)
		}
	}
}

func TestDistPConsistencyAcrossNorms(t *testing.T) {
	// dist_inf <= dist_p <= dist_1 pointwise (norm monotonicity transfers
	// to distances).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		pts := make([]vec.V, d+2)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 5)
		dInf, _ := DistInf(q, s)
		d2, _ := Dist2(q, s)
		d1, _ := Dist1(q, s)
		if dInf > d2+1e-6 || d2 > d1+1e-6 {
			t.Fatalf("distance ordering violated: inf=%v 2=%v 1=%v", dInf, d2, d1)
		}
	}
}

func randVec(rng *rand.Rand, d int, scale float64) vec.V {
	v := vec.New(d)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}

func TestDist2AgainstProjectionOntoSegment(t *testing.T) {
	// Segment from (0,0) to (10,0); distance from (x, y) is known.
	s := vec.NewSet(vec.Of(0, 0), vec.Of(10, 0))
	cases := []struct {
		q    vec.V
		want float64
	}{
		{vec.Of(5, 3), 3},
		{vec.Of(-4, 3), 5},
		{vec.Of(14, -3), 5},
		{vec.Of(7, 0), 0},
	}
	for _, c := range cases {
		got, _ := Dist2(c.q, s)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("Dist2(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMinNormPointRandomAgainstFW(t *testing.T) {
	// Cross-validate Wolfe against the Frank-Wolfe path (p=2.0000001 ~ 2).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(4)
		n := d + 1 + rng.Intn(4)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 3)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 4)
		dw, _ := Dist2(q, s)
		dfw, _ := distFW(q, s, 2.000001)
		if math.Abs(dw-dfw) > 1e-3*(1+dw) {
			t.Fatalf("Wolfe %v vs FW %v disagree", dw, dfw)
		}
		if dw < -1e-12 {
			t.Fatalf("negative distance %v", dw)
		}
	}
}

func TestMinNormPointWeights(t *testing.T) {
	pts := []vec.V{vec.Of(1, 1), vec.Of(1, -1), vec.Of(3, 0)}
	x, w := MinNormPoint(pts)
	// Min-norm point of this hull is (1, 0), from averaging first two.
	if !x.ApproxEqual(vec.Of(1, 0), 1e-7) {
		t.Errorf("min norm point = %v", x)
	}
	rec := vec.New(2)
	sum := 0.0
	for i, wi := range w {
		rec.AXPY(wi, pts[i])
		sum += wi
	}
	if math.Abs(sum-1) > 1e-9 || !rec.ApproxEqual(x, 1e-7) {
		t.Errorf("weights don't reconstruct: %v -> %v", w, rec)
	}
}

func TestMinNormPointContainingOrigin(t *testing.T) {
	pts := []vec.V{vec.Of(1, 0), vec.Of(-1, 1), vec.Of(-1, -1)}
	x, _ := MinNormPoint(pts)
	if x.Norm2() > 1e-7 {
		t.Errorf("hull contains origin but min norm = %v", x.Norm2())
	}
}

func TestInRelaxedHull(t *testing.T) {
	s := triangle()
	q := vec.Of(1, 1) // L2 distance sqrt(2)/2 ~ 0.7071
	if InRelaxedHull(q, s, 0.70, 2, 0) {
		t.Error("q inside (0.70, 2)-hull")
	}
	if !InRelaxedHull(q, s, 0.71, 2, 0) {
		t.Error("q outside (0.71, 2)-hull")
	}
	// delta = 0 degenerates to plain hull membership.
	if !InRelaxedHull(vec.Of(0.2, 0.2), s, 0, 2, 1e-9) {
		t.Error("interior point outside (0,2)-hull")
	}
	// Definition 9 containment: H_(d',p) subset of H_(d,p) for d' <= d.
	if InRelaxedHull(q, s, 0.5, 2, 0) && !InRelaxedHull(q, s, 0.9, 2, 0) {
		t.Error("containment order violated")
	}
}

func TestRelaxedHullNormOrdering(t *testing.T) {
	// H_(delta,p) subset of H_(delta,inf) (since ||.||inf <= ||.||p), used
	// in the proof of Theorem 5.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		pts := make([]vec.V, d+1)
		for i := range pts {
			pts[i] = randVec(rng, d, 1)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 2)
		delta := rng.Float64()
		if InRelaxedHull(q, s, delta, 2, 0) && !InRelaxedHull(q, s, delta, math.Inf(1), 1e-7) {
			t.Fatal("H_(delta,2) not contained in H_(delta,inf)")
		}
	}
}

func TestDistPBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DistP(p=0.5) did not panic")
		}
	}()
	DistP(vec.Of(1), vec.NewSet(vec.Of(0)), 0.5)
}

func TestEmptySetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dist2":        func() { Dist2(vec.Of(1), vec.NewSet()) },
		"Dist1":        func() { Dist1(vec.Of(1), vec.NewSet()) },
		"DistInf":      func() { DistInf(vec.Of(1), vec.NewSet()) },
		"MinNormPoint": func() { MinNormPoint(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty set did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHighDimensionalSimplexDistance(t *testing.T) {
	// Standard simplex in R^d: distance from origin to conv(e_1..e_d) is
	// 1/sqrt(d) (nearest point is the barycenter).
	for d := 2; d <= 8; d++ {
		pts := make([]vec.V, d)
		for i := range pts {
			e := vec.New(d)
			e[i] = 1
			pts[i] = e
		}
		s := vec.NewSet(pts...)
		got, nearest := Dist2(vec.New(d), s)
		want := 1 / math.Sqrt(float64(d))
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("d=%d: Dist2 = %v, want %v", d, got, want)
		}
		bary := vec.New(d)
		for i := range bary {
			bary[i] = 1 / float64(d)
		}
		if !nearest.ApproxEqual(bary, 1e-6) {
			t.Errorf("d=%d: nearest = %v", d, nearest)
		}
	}
}
