package geom

import (
	"sort"

	"relaxedbvc/internal/vec"
)

// Hull2D computes the convex hull of 2-D points with Andrew's monotone
// chain, returning the hull vertices in counter-clockwise order without
// repetition of the first point. Collinear boundary points are dropped.
//
// It serves as an independent exact oracle for the LP-based membership
// predicates in two dimensions (see the cross-validation property tests)
// and powers the 2-D visual summaries of the examples.
func Hull2D(pts []vec.V) []vec.V {
	if len(pts) == 0 {
		return nil
	}
	for _, p := range pts {
		if p.Dim() != 2 {
			panic("geom: Hull2D requires 2-D points")
		}
	}
	// Sort lexicographically, deduplicate.
	sorted := make([]vec.V, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		//bvclint:allow floateq -- lexicographic sort needs an exact total order; a tolerance would break transitivity
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	uniq := sorted[:0]
	for i, p := range sorted {
		if i == 0 || !p.Equal(sorted[i-1]) {
			uniq = append(uniq, p)
		}
	}
	n := len(uniq)
	if n <= 2 {
		out := make([]vec.V, n)
		for i, p := range uniq {
			out[i] = p.Clone()
		}
		return out
	}
	cross := func(o, a, b vec.V) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var hull []vec.V
	// Lower chain.
	for _, p := range uniq {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	hull = hull[:len(hull)-1] // last point repeats the first
	out := make([]vec.V, len(hull))
	for i, p := range hull {
		out[i] = p.Clone()
	}
	return out
}

// InPolygon reports whether q lies inside or on the boundary of the
// convex polygon given by its CCW-ordered vertices, within tolerance tol
// on the edge half-plane tests. Degenerate polygons (point, segment) are
// handled as the corresponding lower-dimensional membership.
func InPolygon(q vec.V, hull []vec.V, tol float64) bool {
	switch len(hull) {
	case 0:
		return false
	case 1:
		return q.Dist2(hull[0]) <= tol
	case 2:
		// Distance to the segment.
		d, _ := Dist2(q, vec.NewSet(hull[0], hull[1]))
		return d <= tol
	}
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		// CCW: interior is to the left of each directed edge.
		crossV := (b[0]-a[0])*(q[1]-a[1]) - (b[1]-a[1])*(q[0]-a[0])
		if crossV < -tol {
			return false
		}
	}
	return true
}

// PolygonArea returns the (positive) area of a CCW convex polygon.
func PolygonArea(hull []vec.V) float64 {
	if len(hull) < 3 {
		return 0
	}
	s := 0.0
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		s += a[0]*b[1] - b[0]*a[1]
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}
