package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relaxedbvc/internal/vec"
)

func TestHull2DSquare(t *testing.T) {
	pts := []vec.V{
		vec.Of(0, 0), vec.Of(1, 0), vec.Of(1, 1), vec.Of(0, 1),
		vec.Of(0.5, 0.5), vec.Of(0.2, 0.8), // interior points dropped
	}
	hull := Hull2D(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d: %v", len(hull), hull)
	}
	if got := PolygonArea(hull); math.Abs(got-1) > 1e-12 {
		t.Errorf("area = %v", got)
	}
	// CCW orientation: positive cross products around the ring.
	for i := range hull {
		a, b, c := hull[i], hull[(i+1)%4], hull[(i+2)%4]
		cr := (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
		if cr <= 0 {
			t.Fatalf("not CCW at %d: %v", i, hull)
		}
	}
}

func TestHull2DDegenerate(t *testing.T) {
	if h := Hull2D(nil); h != nil {
		t.Error("empty hull should be nil")
	}
	if h := Hull2D([]vec.V{vec.Of(1, 2)}); len(h) != 1 {
		t.Errorf("single point hull = %v", h)
	}
	// Duplicates collapse.
	if h := Hull2D([]vec.V{vec.Of(1, 2), vec.Of(1, 2)}); len(h) != 1 {
		t.Errorf("duplicate hull = %v", h)
	}
	// Collinear points become a segment (2 extreme points).
	h := Hull2D([]vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2), vec.Of(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestInPolygonBasics(t *testing.T) {
	hull := Hull2D([]vec.V{vec.Of(0, 0), vec.Of(2, 0), vec.Of(2, 2), vec.Of(0, 2)})
	if !InPolygon(vec.Of(1, 1), hull, 1e-9) {
		t.Error("center not in square")
	}
	if !InPolygon(vec.Of(0, 1), hull, 1e-9) {
		t.Error("boundary not in square")
	}
	if InPolygon(vec.Of(-0.01, 1), hull, 1e-9) {
		t.Error("outside point in square")
	}
	// Degenerate shapes.
	if !InPolygon(vec.Of(1, 1), []vec.V{vec.Of(1, 1)}, 1e-9) {
		t.Error("point-polygon membership")
	}
	if !InPolygon(vec.Of(1, 0), []vec.V{vec.Of(0, 0), vec.Of(2, 0)}, 1e-9) {
		t.Error("segment-polygon membership")
	}
	if InPolygon(vec.Of(1, 1), nil, 1) {
		t.Error("empty polygon contains a point")
	}
}

// Cross-validation: the exact 2-D monotone-chain oracle and the LP-based
// membership must agree everywhere except a thin boundary band.
func TestPropertyHull2DAgreesWithLP(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	f := func() bool {
		n := 3 + rng.Intn(8)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.NormFloat64()*2, rng.NormFloat64()*2)
		}
		hull := Hull2D(pts)
		s := vec.NewSet(pts...)
		for probe := 0; probe < 20; probe++ {
			q := vec.Of(rng.NormFloat64()*3, rng.NormFloat64()*3)
			d2, _ := Dist2(q, s)
			inLP := d2 <= 1e-9
			inPoly := InPolygon(q, hull, 1e-9)
			// Skip points within the numerical boundary band.
			if d2 < 1e-7 && !inPoly {
				continue
			}
			if inLP != inPoly {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Cross-validation: polygon area shrinks (weakly) when points are
// removed.
func TestPropertyHullAreaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	f := func() bool {
		n := 4 + rng.Intn(6)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = vec.Of(rng.NormFloat64(), rng.NormFloat64())
		}
		full := PolygonArea(Hull2D(pts))
		sub := PolygonArea(Hull2D(pts[:n-1]))
		return sub <= full+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestHull2DRejectsWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("3-D point accepted")
		}
	}()
	Hull2D([]vec.V{vec.Of(1, 2, 3)})
}
