package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relaxedbvc/internal/linalg"
	"relaxedbvc/internal/vec"
)

// Property: Dist2 is zero exactly when the point is in the hull (up to
// the LP/Wolfe tolerance band).
func TestPropertyDistZeroIffInHull(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	f := func() bool {
		d := 2 + rng.Intn(3)
		n := d + 1 + rng.Intn(3)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 2)
		dist, _ := Dist2(q, s)
		in := InHull(q, s)
		if in && dist > 1e-6 {
			return false
		}
		if !in && dist < 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the nearest point returned by Dist2 achieves the distance and
// lies in the hull.
func TestPropertyNearestPointAchievesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	f := func() bool {
		d := 2 + rng.Intn(3)
		n := 3 + rng.Intn(4)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 3)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 5)
		dist, nearest := Dist2(q, s)
		if math.Abs(q.Dist2(nearest)-dist) > 1e-6*(1+dist) {
			return false
		}
		dn, _ := Dist2(nearest, s)
		return dn < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: distances are translation invariant.
func TestPropertyTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	f := func() bool {
		d := 2 + rng.Intn(2)
		n := 3 + rng.Intn(3)
		pts := make([]vec.V, n)
		shift := randVec(rng, d, 10)
		shifted := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
			shifted[i] = pts[i].Add(shift)
		}
		q := randVec(rng, d, 4)
		d1, _ := Dist2(q, vec.NewSet(pts...))
		d2, _ := Dist2(q.Add(shift), vec.NewSet(shifted...))
		return math.Abs(d1-d2) < 1e-7*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: hull distance never exceeds the distance to any single
// member point, and never exceeds distance to the centroid.
func TestPropertyHullDistanceDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	f := func() bool {
		d := 2 + rng.Intn(3)
		n := 2 + rng.Intn(5)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 3)
		}
		s := vec.NewSet(pts...)
		q := randVec(rng, d, 5)
		dist, _ := Dist2(q, s)
		for _, p := range pts {
			if dist > q.Dist2(p)+1e-7 {
				return false
			}
		}
		return dist <= q.Dist2(vec.Mean(pts))+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Caratheodory reconstruction is exact and uses at most d+1
// points whenever membership holds.
func TestPropertyCaratheodory(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	f := func() bool {
		d := 2 + rng.Intn(2)
		n := d + 2 + rng.Intn(4)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		// Random convex combination is always in the hull.
		w := make([]float64, n)
		sum := 0.0
		for i := range w {
			w[i] = rng.Float64()
			sum += w[i]
		}
		q := vec.New(d)
		for i := range w {
			q.AXPY(w[i]/sum, pts[i])
		}
		idx, weights, ok := Caratheodory(q, s)
		if !ok || len(idx) > d+1 {
			return false
		}
		rec := vec.New(d)
		for k, i := range idx {
			rec.AXPY(weights[k], s.At(i))
		}
		return rec.ApproxEqual(q, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: distances are invariant under orthogonal transformations
// (random rotation from QR of a Gaussian matrix).
func TestPropertyRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	f := func() bool {
		d := 2 + rng.Intn(3)
		// Random orthogonal matrix via QR.
		g := linalg.NewMatrix(d, d)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		q := linalg.FactorQR(g).Q()
		rot := func(v vec.V) vec.V { return q.MulVec(v) }
		n := 3 + rng.Intn(3)
		pts := make([]vec.V, n)
		rpts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
			rpts[i] = rot(pts[i])
		}
		x := randVec(rng, d, 4)
		d1, _ := Dist2(x, vec.NewSet(pts...))
		d2, _ := Dist2(rot(x), vec.NewSet(rpts...))
		return math.Abs(d1-d2) < 1e-7*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
