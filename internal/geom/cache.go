package geom

import (
	"relaxedbvc/internal/memo"
	"relaxedbvc/internal/vec"
)

// The hull predicates are pure functions of their inputs, and consensus
// sweeps re-issue them with bit-identical arguments across trials,
// rounds and processes (every honest process checks the same output
// against the same non-faulty set; the minimax solvers probe the same
// subsets thousands of times). A process-wide memo table keyed by the
// exact binary encoding of the arguments removes the repeats without
// changing any result: keys preserve input order and float bit
// patterns, so a hit returns exactly what the solver would recompute.
//
// The cache is safe for concurrent use (batch workers share it) and on
// by default; SetCaching(false) restores the pre-cache behavior.
var cache = memo.New(0)

func init() { cache.RegisterMetrics("geom") }

// Cache op tags (key namespaces).
const (
	opInHull  = 'h'
	opDist1   = '1'
	opDist2   = '2'
	opDistInf = 'i'
	opDistFW  = 'p'
)

// SetCaching enables or disables the geometry memo cache.
func SetCaching(on bool) { cache.SetEnabled(on) }

// CacheStats reports the geometry cache counters.
func CacheStats() memo.Stats { return cache.Stats() }

// ResetCache drops all cached geometry results.
func ResetCache() { cache.Reset() }

// distEntry is the cached value of a distance solve.
type distEntry struct {
	d  float64
	pt vec.V
}

// pointSetKey appends q and the points of s (order-preserving, exact
// float bits) to a pooled key. The caller must Release it.
func pointSetKey(op byte, q vec.V, s *vec.Set) *memo.Key {
	k := memo.GetKey(op)
	k.Floats(q)
	k.Int(s.Len())
	for i := 0; i < s.Len(); i++ {
		k.Floats(s.At(i))
	}
	return k
}

func cachedDist(op byte, q vec.V, s *vec.Set, extra float64, compute func() (float64, vec.V)) (float64, vec.V) {
	if !cache.Enabled() {
		return compute()
	}
	k := memo.GetKey(op)
	k.Float(extra)
	k.Floats(q)
	k.Int(s.Len())
	for i := 0; i < s.Len(); i++ {
		k.Floats(s.At(i))
	}
	defer k.Release()
	var e distEntry
	if v, ok := cache.Get(k); ok {
		e = v.(distEntry)
	} else {
		d, pt := compute()
		e = cache.Put(k, distEntry{d: d, pt: pt}).(distEntry)
	}
	// Clone: callers may mutate the returned point; the cached copy must
	// stay pristine.
	return e.d, e.pt.Clone()
}
