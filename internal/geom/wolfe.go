package geom

import (
	"math"

	"relaxedbvc/internal/linalg"
	"relaxedbvc/internal/vec"
)

// Dist2 returns the Euclidean distance from q to conv(s) and the nearest
// point of the hull (memoized), computed with Wolfe's min-norm-point
// algorithm applied to the translated set {s_i - q}. Wolfe's method
// terminates finitely in exact arithmetic; we add iteration caps and
// tolerances for floating point.
func Dist2(q vec.V, s *vec.Set) (float64, vec.V) {
	if s.Len() == 0 {
		panic("geom: Dist2 on empty set")
	}
	return cachedDist(opDist2, q, s, 0, func() (float64, vec.V) { return dist2Wolfe(q, s) })
}

// Dist2Uncached is Dist2 bypassing the memo cache. Iterative solvers
// whose inner loops query a fresh point every step (so keys never
// repeat) should use it: caching those lookups costs key encoding and
// table growth without ever producing a hit.
func Dist2Uncached(q vec.V, s *vec.Set) (float64, vec.V) {
	if s.Len() == 0 {
		panic("geom: Dist2 on empty set")
	}
	return dist2Wolfe(q, s)
}

func dist2Wolfe(q vec.V, s *vec.Set) (float64, vec.V) {
	pts := make([]vec.V, s.Len())
	for i := range pts {
		pts[i] = s.At(i).Sub(q)
	}
	x, _ := MinNormPoint(pts)
	return x.Norm2(), x.Add(q)
}

// MinNormPoint returns the point of minimum Euclidean norm in the convex
// hull of pts, along with its convex weights over pts (zero for points not
// in the final corral).
func MinNormPoint(pts []vec.V) (vec.V, []float64) {
	n := len(pts)
	if n == 0 {
		panic("geom: MinNormPoint on empty set")
	}
	// Scale-aware tolerance.
	scale := 1.0
	for _, p := range pts {
		if v := p.Norm2(); v > scale {
			scale = v
		}
	}
	tol := 1e-12 * scale * scale

	// Start from the point of smallest norm.
	best := 0
	for i := 1; i < n; i++ {
		if pts[i].Norm2() < pts[best].Norm2() {
			best = i
		}
	}
	corral := []int{best}
	lam := []float64{1}
	x := pts[best].Clone()

	inCorral := func(j int) bool {
		for _, c := range corral {
			if c == j {
				return true
			}
		}
		return false
	}

	for major := 0; major < 200+20*n; major++ {
		// Most violating vertex: minimize <x, p_j>.
		j, jv := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if v := x.Dot(pts[i]); v < jv {
				j, jv = i, v
			}
		}
		xx := x.Dot(x)
		if jv > xx-1e-9*scale*scale-tol {
			break // optimality: no vertex improves
		}
		if inCorral(j) {
			break // numerical stall; x is as good as we can certify
		}
		corral = append(corral, j)
		lam = append(lam, 0)

		// Minor cycle: project onto the affine hull of the corral; walk
		// back and drop vertices until the affine minimizer is convex.
		for minor := 0; minor <= n+2; minor++ {
			alpha, ok := affineMinNorm(pts, corral)
			if !ok {
				// Degenerate Gram system: drop the most recently added
				// vertex and stop the minor cycle.
				corral = corral[:len(corral)-1]
				lam = lam[:len(lam)-1]
				break
			}
			posEps := 1e-11
			allPos := true
			for _, a := range alpha {
				if a <= posEps {
					allPos = false
					break
				}
			}
			if allPos {
				lam = alpha
				break
			}
			// Line search from lam toward alpha to the first vanishing weight.
			theta := 1.0
			for i := range alpha {
				if alpha[i] < posEps && lam[i] > alpha[i] {
					if t := lam[i] / (lam[i] - alpha[i]); t < theta {
						theta = t
					}
				}
			}
			newLam := make([]float64, len(lam))
			for i := range lam {
				newLam[i] = (1-theta)*lam[i] + theta*alpha[i]
			}
			// Drop zeroed vertices.
			var nc []int
			var nl []float64
			for i := range newLam {
				if newLam[i] > posEps {
					nc = append(nc, corral[i])
					nl = append(nl, newLam[i])
				}
			}
			if len(nc) == 0 {
				// Everything vanished numerically; keep the best single point.
				nc = []int{corral[0]}
				nl = []float64{1}
			}
			corral, lam = nc, nl
		}
		// Recompute x from the corral weights.
		x = vec.New(pts[0].Dim())
		for i, c := range corral {
			x.AXPY(lam[i], pts[c])
		}
	}

	weights := make([]float64, n)
	// Normalize the corral weights onto the full index set.
	sum := 0.0
	for _, l := range lam {
		sum += l
	}
	for i, c := range corral {
		weights[c] = lam[i] / sum
	}
	return x, weights
}

// affineMinNorm solves min ||sum alpha_i p_{c_i}||^2 s.t. sum alpha = 1
// with alpha free, via the KKT system over the Gram matrix. ok=false when
// the system is numerically singular (affinely dependent corral).
func affineMinNorm(pts []vec.V, corral []int) ([]float64, bool) {
	k := len(corral)
	kk := k + 1
	m := linalg.NewMatrix(kk, kk)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			g := pts[corral[i]].Dot(pts[corral[j]])
			m.Set(i, j, g)
			m.Set(j, i, g)
		}
		m.Set(i, k, 1)
		m.Set(k, i, 1)
	}
	rhs := make(vec.V, kk)
	rhs[k] = 1
	sol, err := linalg.Solve(m, rhs)
	if err != nil {
		// Ridge fallback for affinely dependent corrals: a tiny Tikhonov
		// term on the Gram block makes the system solvable and biases the
		// answer toward the minimum-norm multiplier, which is what Wolfe's
		// method wants anyway.
		scale := 1.0
		for i := 0; i < k; i++ {
			if g := m.At(i, i); g > scale {
				scale = g
			}
		}
		for i := 0; i < k; i++ {
			m.Set(i, i, m.At(i, i)+1e-10*scale)
		}
		sol, err = linalg.Solve(m, rhs)
		if err != nil {
			return nil, false
		}
	}
	return sol[:k], true
}
