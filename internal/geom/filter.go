package geom

import (
	"math"
	"sync"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/vec"
)

// This file implements the certified float screens that run in front of
// the exact LP predicates: a scratch-buffer Wolfe min-norm solver that
// produces either a convex-combination witness (membership accept) or a
// separating direction (membership / hull-separation reject), each
// verified against the ORIGINAL input data with an explicit margin over
// the LP solver's feasibility tolerance. A screen decision is therefore
// always the decision the exact LP would have made; anything inside the
// margin band falls through to the LP. See DESIGN.md §10.2 for the
// soundness argument relating the margins below to the simplex phase-1
// acceptance threshold (1e-7 * feasScale).

// PrefilterMargin is the shared slack between a certified float screen
// and the LP solver's feasibility tolerance: screens only accept when a
// verified witness beats the LP acceptance threshold (1e-7 relative) by
// at least a factor 1/PrefilterMargin-to-1e-7, and the bounding-box
// prefilters (here and in internal/relax) treat boxes separated by less
// than this margin as overlapping. Hoisted from the duplicated 1e-9
// literals of the PR-5 prefilters; the floateq analyzer exempts it by
// name.
const PrefilterMargin = 1e-9

// filterAcceptTol is the maximum exactly-recomputed constraint
// violation of a screen witness for a certified accept. The LP accepts
// at 1e-7*feasScale, so a witness within filterAcceptTol*feasScale
// leaves two orders of magnitude of slack.
const filterAcceptTol = PrefilterMargin

// filterRejectMargin is the minimum certified separation (relative to
// the data scale) for a screen reject. The LP declares infeasibility
// above 1e-7*feasScale of phase-1 residual; a separation of
// filterRejectMargin*scale forces at least ~half that margin of
// residual, two orders of magnitude above the threshold.
const filterRejectMargin = 1e-5

// sepMaxPoints caps the Minkowski-difference size of the hull
// separation screen; larger pairs skip the screen rather than risk a
// screen costlier than the LP it guards.
const sepMaxPoints = 96

// filteredPredicates gates every certified screen; disable to time or
// parity-test the pure exact-LP path (the PR-5 code path).
var filteredPredicates atomic.Bool

func init() { filteredPredicates.Store(true) }

// SetFilteredPredicates enables or disables the certified float screens
// in front of the exact predicates. Decisions are identical either way;
// only the code path (and speed) changes.
func SetFilteredPredicates(on bool) { filteredPredicates.Store(on) }

// FilteredPredicatesEnabled reports whether the certified screens run.
func FilteredPredicatesEnabled() bool { return filteredPredicates.Load() }

// Screen observability: accepts and rejects are decisions made without
// an LP; fallbacks paid the screen and still ran the exact LP.
var (
	filterAccepts   = metrics.DefaultCounter("geom_filter_accepts_total")
	filterRejects   = metrics.DefaultCounter("geom_filter_rejects_total")
	filterFallbacks = metrics.DefaultCounter("geom_filter_fallbacks_total")
	sepRejects      = metrics.DefaultCounter("geom_filter_separation_rejects_total")
	sepFallbacks    = metrics.DefaultCounter("geom_filter_separation_fallbacks_total")
)

// FilterScratch holds the reusable buffers of one screen evaluation:
// the flattened working point set, the Wolfe corral state and the KKT
// system of the corral projection. A scratch must not be shared between
// concurrent goroutines; the kernel sweeps keep one per worker.
type FilterScratch struct {
	pts    []float64 // flattened n x d working points
	x      []float64 // current min-norm iterate
	lam    []float64 // corral weights
	alpha  []float64 // affine minimizer candidate
	corral []int
	gram   []float64 // (k+1) x (k+2) augmented KKT system
}

var filterScratchPool = sync.Pool{New: func() any { return new(FilterScratch) }}

// GetFilterScratch fetches a scratch from the pool.
func GetFilterScratch() *FilterScratch { return filterScratchPool.Get().(*FilterScratch) }

// Release returns the scratch to the pool.
func (sc *FilterScratch) Release() { filterScratchPool.Put(sc) }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// wolfeMinNorm runs Wolfe's min-norm-point algorithm over the n points
// of dimension d flattened in sc.pts, leaving the final iterate in
// sc.x and the corral weights in (sc.corral, sc.lam). It is the
// allocation-free twin of MinNormPoint with a tighter optimality gap
// (the screens need residuals near machine precision, not 1e-9
// relative) and a hard major-cycle budget; on budget exhaustion the
// iterate is simply the best found, and the caller's exact certificate
// checks decide whether it is usable.
func (sc *FilterScratch) wolfeMinNorm(n, d int) {
	pt := func(i int) []float64 { return sc.pts[i*d : (i+1)*d] }
	sc.x = growF(sc.x, d)

	scale2 := 1.0
	best, bestN := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		p := pt(i)
		nn := 0.0
		for _, v := range p {
			nn += v * v
		}
		if nn > scale2 {
			scale2 = nn
		}
		if nn < bestN {
			best, bestN = i, nn
		}
	}
	gapTol := 1e-13 * scale2

	sc.corral = append(sc.corral[:0], best)
	sc.lam = append(sc.lam[:0], 1)
	copy(sc.x, pt(best))

	budget := 2*d + 12
	for major := 0; major < budget; major++ {
		// Most violating vertex: minimize <x, p_j>.
		j, jv := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			p := pt(i)
			v := 0.0
			for k, xv := range sc.x {
				v += xv * p[k]
			}
			if v < jv {
				j, jv = i, v
			}
		}
		xx := 0.0
		for _, xv := range sc.x {
			xx += xv * xv
		}
		if jv > xx-gapTol {
			return // optimal within the screen gap
		}
		inCorral := false
		for _, c := range sc.corral {
			if c == j {
				inCorral = true
				break
			}
		}
		if inCorral {
			return // numerical stall
		}
		sc.corral = append(sc.corral, j)
		sc.lam = append(sc.lam, 0)

		// Minor cycles: project onto the corral's affine hull, walk back
		// to the last convex point and drop vanished vertices.
		for minor := 0; minor <= d+3; minor++ {
			if !sc.affineMinNorm(d) {
				sc.corral = sc.corral[:len(sc.corral)-1]
				sc.lam = sc.lam[:len(sc.lam)-1]
				break
			}
			const posEps = 1e-11
			allPos := true
			for _, a := range sc.alpha {
				if a <= posEps {
					allPos = false
					break
				}
			}
			if allPos {
				copy(sc.lam, sc.alpha)
				break
			}
			theta := 1.0
			for i, a := range sc.alpha {
				if a < posEps && sc.lam[i] > a {
					if t := sc.lam[i] / (sc.lam[i] - a); t < theta {
						theta = t
					}
				}
			}
			// Blend and compact in place.
			keep := 0
			for i := range sc.lam {
				nl := (1-theta)*sc.lam[i] + theta*sc.alpha[i]
				if nl > posEps {
					sc.lam[keep] = nl
					sc.corral[keep] = sc.corral[i]
					keep++
				}
			}
			if keep == 0 {
				sc.corral[0] = sc.corral[len(sc.corral)-1]
				sc.lam[0] = 1
				keep = 1
			}
			sc.corral = sc.corral[:keep]
			sc.lam = sc.lam[:keep]
		}
		// Recompute x from the corral.
		for k := range sc.x {
			sc.x[k] = 0
		}
		for i, c := range sc.corral {
			p := pt(c)
			l := sc.lam[i]
			for k := range sc.x {
				sc.x[k] += l * p[k]
			}
		}
	}
}

// affineMinNorm solves the corral's KKT system (Gram matrix bordered by
// the affine constraint) by in-place Gaussian elimination with partial
// pivoting, writing the affine minimizer into sc.alpha. ok=false on a
// numerically singular (affinely dependent) corral.
func (sc *FilterScratch) affineMinNorm(d int) bool {
	k := len(sc.corral)
	kk := k + 1
	cols := kk + 1 // augmented
	sc.gram = growF(sc.gram, kk*cols)
	g := sc.gram
	pt := func(i int) []float64 { return sc.pts[sc.corral[i]*d : (sc.corral[i]+1)*d] }
	diagMax := 1.0
	for i := 0; i < k; i++ {
		pi := pt(i)
		for j := i; j < k; j++ {
			pj := pt(j)
			dot := 0.0
			for c := range pi {
				dot += pi[c] * pj[c]
			}
			g[i*cols+j] = dot
			g[j*cols+i] = dot
			if i == j && dot > diagMax {
				diagMax = dot
			}
		}
		g[i*cols+k] = 1
		g[k*cols+i] = 1
		g[i*cols+kk] = 0
	}
	g[k*cols+k] = 0
	g[k*cols+kk] = 1

	if !gaussSolve(g, kk, cols) {
		// Ridge fallback for affinely dependent corrals, as in
		// affineMinNorm of wolfe.go.
		for i := 0; i < k; i++ {
			pi := pt(i)
			for j := i; j < k; j++ {
				pj := pt(j)
				dot := 0.0
				for c := range pi {
					dot += pi[c] * pj[c]
				}
				if i == j {
					dot += 1e-10 * diagMax
				}
				g[i*cols+j] = dot
				g[j*cols+i] = dot
			}
			g[i*cols+k] = 1
			g[k*cols+i] = 1
			g[i*cols+kk] = 0
		}
		g[k*cols+k] = 0
		g[k*cols+kk] = 1
		if !gaussSolve(g, kk, cols) {
			return false
		}
	}
	sc.alpha = growF(sc.alpha, k)
	for i := 0; i < k; i++ {
		sc.alpha[i] = g[i*cols+kk]
	}
	return true
}

// gaussSolve reduces the n x (cols) augmented system in place with
// partial pivoting; the solution lands in column cols-1. ok=false when
// a pivot is numerically zero.
func gaussSolve(g []float64, n, cols int) bool {
	for c := 0; c < n; c++ {
		// Partial pivot.
		pr, pv := c, math.Abs(g[c*cols+c])
		for r := c + 1; r < n; r++ {
			if a := math.Abs(g[r*cols+c]); a > pv {
				pr, pv = r, a
			}
		}
		if pv < 1e-13 {
			return false
		}
		if pr != c {
			for j := 0; j < cols; j++ {
				g[pr*cols+j], g[c*cols+j] = g[c*cols+j], g[pr*cols+j]
			}
		}
		inv := 1 / g[c*cols+c]
		for j := c; j < cols; j++ {
			g[c*cols+j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == c {
				continue
			}
			f := g[r*cols+c]
			if f == 0 {
				continue
			}
			for j := c; j < cols; j++ {
				g[r*cols+j] -= f * g[c*cols+j]
			}
		}
	}
	return true
}

// hullMembershipScreen attempts to decide q in conv(s) without an LP.
// decided=false means the screen could not certify either answer with
// margin and the caller must run the exact LP. Both certificates are
// verified against the original (q, s) data:
//
//   - accept: the corral weights form a convex combination whose
//     exactly-recomputed residual is under filterAcceptTol*feasScale —
//     the LP's phase 1 can only do better, so it accepts too;
//   - reject: the min-norm direction g = x separates q from every point
//     of s by at least filterRejectMargin relative margin, forcing a
//     phase-1 residual the LP's 1e-7 acceptance cannot absorb.
func hullMembershipScreen(q vec.V, s *vec.Set, sc *FilterScratch) (in, decided bool) {
	n, d := s.Len(), q.Dim()
	if n == 0 || d == 0 {
		return false, false
	}
	sc.pts = growF(sc.pts, n*d)
	for i := 0; i < n; i++ {
		p := s.At(i)
		row := sc.pts[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = p[j] - q[j]
		}
	}
	feasScale := 1.0
	for _, v := range q {
		if a := math.Abs(v); a > feasScale {
			feasScale = a
		}
	}
	sc.wolfeMinNorm(n, d)

	// Accept certificate: exact residual of the corral witness.
	wsum := 0.0
	for _, l := range sc.lam {
		wsum += l
	}
	if wsum > 0 {
		viol := math.Abs(wsum - 1)
		// Renormalized weights keep the simplex row exact; fold the
		// normalization into the residual instead.
		for j := 0; j < d; j++ {
			r := -q[j]
			for i, c := range sc.corral {
				r += (sc.lam[i] / wsum) * s.At(c)[j]
			}
			viol += math.Abs(r)
		}
		if viol <= filterAcceptTol*feasScale {
			return true, true
		}
	}

	// Reject certificate: g = x separates q from conv(s).
	gn := 0.0
	for _, v := range sc.x {
		gn += v * v
	}
	gn = math.Sqrt(gn)
	if gn > 0 {
		minDot := math.Inf(1) // min over s of <g, s_i - q>, exact from inputs
		beta := 0.0           // max |<g/|g|, s_i>|, and |<g/|g|, q>|
		qdot := 0.0
		for j := 0; j < d; j++ {
			qdot += sc.x[j] * q[j]
		}
		for i := 0; i < n; i++ {
			p := s.At(i)
			dot := 0.0
			for j := 0; j < d; j++ {
				dot += sc.x[j] * p[j]
			}
			if v := dot - qdot; v < minDot {
				minDot = v
			}
			if a := math.Abs(dot) / gn; a > beta {
				beta = a
			}
		}
		if a := math.Abs(qdot) / gn; a > beta {
			beta = a
		}
		if minDot/gn >= filterRejectMargin*feasScale*(1+beta) {
			return false, true
		}
	}
	return false, false
}

// HullsSeparated certifies that the (delta,p)-relaxed hulls of a and b
// are disjoint (delta = 0 gives exact hulls), with enough margin that
// the exact joint feasibility LP over any family containing a and b
// must also be infeasible. It returns false whenever it cannot certify
// — a false is never evidence of intersection. p is only consulted
// when delta > 0 and must then be 1 or +Inf (the polyhedral norms of
// the relaxed-hull LP).
func HullsSeparated(a, b *vec.Set, delta, p float64, sc *FilterScratch) bool {
	if !filteredPredicates.Load() {
		return false
	}
	na, nb, d := a.Len(), b.Len(), a.Dim()
	if na == 0 || nb == 0 || d == 0 || na*nb > sepMaxPoints {
		return false
	}
	if sc == nil {
		sc = GetFilterScratch()
		defer sc.Release()
	}
	// Minkowski difference: conv(a) and conv(b) are disjoint iff 0 is
	// outside conv({a_i - b_j}).
	sc.pts = growF(sc.pts, na*nb*d)
	for i := 0; i < na; i++ {
		pa := a.At(i)
		for j := 0; j < nb; j++ {
			pb := b.At(j)
			row := sc.pts[(i*nb+j)*d : (i*nb+j+1)*d]
			for k := 0; k < d; k++ {
				row[k] = pa[k] - pb[k]
			}
		}
	}
	sc.wolfeMinNorm(na*nb, d)
	gn := 0.0
	for _, v := range sc.x {
		gn += v * v
	}
	gn = math.Sqrt(gn)
	if gn == 0 {
		sepFallbacks.Inc()
		return false
	}
	// Exact support values in direction g over the original sets.
	minA, maxB := math.Inf(1), math.Inf(-1)
	beta := 0.0
	for i := 0; i < na; i++ {
		pa := a.At(i)
		dot := 0.0
		for k := 0; k < d; k++ {
			dot += sc.x[k] * pa[k]
		}
		if dot < minA {
			minA = dot
		}
		if v := math.Abs(dot) / gn; v > beta {
			beta = v
		}
	}
	for j := 0; j < nb; j++ {
		pb := b.At(j)
		dot := 0.0
		for k := 0; k < d; k++ {
			dot += sc.x[k] * pb[k]
		}
		if dot > maxB {
			maxB = dot
		}
		if v := math.Abs(dot) / gn; v > beta {
			beta = v
		}
	}
	// Relaxed hulls inflate each support by delta * dual-norm of the
	// direction: ||g||_1 for p = inf, ||g||_inf for p = 1.
	need := 0.0
	if delta > 0 {
		dual := 0.0
		if math.IsInf(p, 1) {
			for _, v := range sc.x {
				dual += math.Abs(v)
			}
		} else {
			for _, v := range sc.x {
				if a := math.Abs(v); a > dual {
					dual = a
				}
			}
		}
		need = 2 * delta * dual / gn
	}
	feasScale := math.Max(1, delta)
	if (minA-maxB)/gn-need >= filterRejectMargin*feasScale*(1+beta) {
		sepRejects.Inc()
		return true
	}
	sepFallbacks.Inc()
	return false
}
