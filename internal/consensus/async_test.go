package consensus

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

func checkAsyncRun(t *testing.T, cfg *AsyncConfig, res *AsyncResult, wantEps float64) {
	t.Helper()
	honest := cfg.HonestIDs()
	for _, i := range honest {
		if res.Outputs[i] == nil {
			t.Fatalf("honest process %d never decided", i)
		}
	}
	if eps := AgreementError(res.Outputs, honest); eps > wantEps {
		t.Fatalf("epsilon-agreement violated: %v > %v after %d rounds", eps, wantEps, cfg.Rounds)
	}
}

func TestAsyncExactModeAllHonest(t *testing.T) {
	// ModeExact needs n >= (d+2)f+1: d=2, f=1 => n >= 5.
	rng := rand.New(rand.NewSource(71))
	cfg := &AsyncConfig{
		N: 5, F: 1, D: 2,
		Inputs: randInputs(rng, 5, 2, 3),
		Rounds: 12,
		Mode:   ModeExact,
	}
	res, err := RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAsyncRun(t, cfg, res, 1e-2)
	// Exact validity: outputs in the hull of the non-faulty inputs.
	for _, i := range cfg.HonestIDs() {
		if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
			t.Fatalf("validity violated: %v", res.Outputs[i])
		}
	}
}

func TestAsyncExactModeWithByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for name, byz := range map[string]*AsyncByzantine{
		"lying-input": {Input: vec.Of(1e3, -1e3), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave},
		"silent":      {SilentFrom: 0, CorruptFrom: NeverMisbehave},
		"mute":        {SilentFrom: 0, CorruptFrom: NeverMisbehave, MuteRBC: true},
		"corrupting":  {SilentFrom: NeverMisbehave, CorruptFrom: 1},
		"late-silent": {SilentFrom: 3, CorruptFrom: NeverMisbehave},
	} {
		cfg := &AsyncConfig{
			N: 5, F: 1, D: 2,
			Inputs:    randInputs(rng, 5, 2, 3),
			Rounds:    12,
			Mode:      ModeExact,
			Byzantine: map[int]*AsyncByzantine{4: byz},
			Schedule:  &sched.RandomSchedule{Rng: rand.New(rand.NewSource(13))},
		}
		res, err := RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAsyncRun(t, cfg, res, 5e-2)
		for _, i := range cfg.HonestIDs() {
			if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Fatalf("%s: validity violated: %v", name, res.Outputs[i])
			}
		}
	}
}

func TestAsyncRelaxedModeBelowExactBound(t *testing.T) {
	// The paper's point: ModeRelaxed works with n = 4 < (d+2)f+1 = 5 for
	// d = 3, f = 1, at the price of (delta,2)-relaxed validity with the
	// Theorem 15 bound delta < kappa(n-f, f, d, 2) max ||e||_2.
	rng := rand.New(rand.NewSource(73))
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 3,
		Inputs:    randInputs(rng, 4, 3, 2),
		Rounds:    10,
		Mode:      ModeRelaxed,
		Byzantine: map[int]*AsyncByzantine{2: {Input: vec.Of(5, -5, 5), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave}},
	}
	res, err := RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAsyncRun(t, cfg, res, 5e-2)
	honest := cfg.HonestIDs()
	nonFaulty := cfg.NonFaultyInputs()
	// Outputs are convex combinations of round-1 values, each of which is
	// within its own delta of the hull of a witness subset. The final
	// output must be within maxDelta of the hull of ALL round-0 values
	// that could appear... conservatively: within maxDelta of the hull of
	// the non-faulty inputs union the Byzantine round-0 value. We check
	// the Theorem 15 headline: distance to the non-faulty hull is below
	// the kappa(n-f,...) bound with kappa from Theorem 9 at n-f inputs.
	maxDelta := 0.0
	for _, i := range honest {
		if res.Delta[i] > maxDelta {
			maxDelta = res.Delta[i]
		}
	}
	if maxDelta <= 0 {
		t.Log("delta = 0 (degenerate witness set); acceptable")
	}
	// Theorem 15-style bound with kappa(n-f, f, d, 2) = 1/(floor((n-f))-2)
	// ... we use the explicit max-edge bound over non-faulty inputs plus
	// the Byzantine value's influence: every process's round-1 value is
	// within its delta of the hull of its witnessed round-0 values.
	for _, i := range honest {
		dist, _ := geom.Dist2(res.Outputs[i], nonFaulty)
		// The output may also lean toward the Byzantine input, but stays
		// within the hull of all round-0 values fattened by maxDelta; vs
		// the non-faulty hull this is bounded by maxDelta plus the
		// Byzantine pull. Sanity bound: diameter of all inputs + maxDelta.
		all := nonFaulty.Clone()
		all.Append(vec.Of(5, -5, 5))
		if dist > all.MaxEdge(2)+maxDelta {
			t.Fatalf("output %v implausibly far from inputs (%v)", res.Outputs[i], dist)
		}
		dAll, _ := geom.Dist2(res.Outputs[i], all)
		if dAll > maxDelta+1e-6 {
			t.Fatalf("(delta,2) validity w.r.t. received values violated: %v > %v", dAll, maxDelta)
		}
	}
}

func TestAsyncRelaxedDeltaWithinTheorem15Bound(t *testing.T) {
	// All-honest relaxed run: every process's round-0 choice delta must be
	// below kappa(|X|, f, d, 2) * maxEdge(X) where X is its witness set;
	// we check against the conservative global bound using all inputs.
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 3; trial++ {
		cfg := &AsyncConfig{
			N: 4, F: 1, D: 3,
			Inputs: randInputs(rng, 4, 3, 2),
			Rounds: 6,
			Mode:   ModeRelaxed,
		}
		res, err := RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkAsyncRun(t, cfg, res, 0.2)
		allInputs := vec.NewSet(cfg.Inputs...)
		// kappa for the simplex case (f=1, witness of size >= n-f = 3):
		// Theorem 9 bound at the witness size. Conservative check with the
		// full input set's edges.
		bound := minimax.Theorem9Bound(allInputs, cfg.N)
		for _, i := range cfg.HonestIDs() {
			if res.Delta[i] > bound+1e-9 {
				// The witness may have been a strict subset (size 3 =
				// affinely independent in R^3... still a valid sub-case:
				// its own bound is maxEdge(witness)/(3-2) >= this bound).
				if res.Delta[i] > allInputs.MaxEdge(2) {
					t.Fatalf("delta %v exceeds even the diameter bound", res.Delta[i])
				}
			}
		}
	}
}

func TestAsyncEpsilonShrinksWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	inputs := randInputs(rng, 5, 2, 5)
	prevEps := math.Inf(1)
	for _, rounds := range []int{2, 6, 12} {
		cfg := &AsyncConfig{
			N: 5, F: 1, D: 2,
			Inputs: inputs, Rounds: rounds, Mode: ModeExact,
			Byzantine: map[int]*AsyncByzantine{1: {SilentFrom: 0, CorruptFrom: NeverMisbehave}},
		}
		res, err := RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps := AgreementError(res.Outputs, cfg.HonestIDs())
		if eps > prevEps+1e-9 {
			t.Fatalf("epsilon grew with rounds: %v -> %v", prevEps, eps)
		}
		prevEps = eps
	}
	if prevEps > 1e-2 {
		t.Fatalf("12 rounds left epsilon = %v", prevEps)
	}
}

func TestAsyncSchedulesAgree(t *testing.T) {
	// The protocol must reach agreement under every schedule, including
	// the adversarial LIFO and targeted-delay schedules.
	rng := rand.New(rand.NewSource(76))
	inputs := randInputs(rng, 5, 2, 3)
	for name, sch := range map[string]sched.Schedule{
		"fifo":   sched.FIFOSchedule{},
		"lifo":   sched.LIFOSchedule{},
		"random": &sched.RandomSchedule{Rng: rand.New(rand.NewSource(3))},
		"delay0": &sched.DelayTargetSchedule{Slow: map[int]bool{0: true}},
	} {
		cfg := &AsyncConfig{
			N: 5, F: 1, D: 2, Inputs: inputs, Rounds: 10, Mode: ModeExact,
			Schedule: sch,
		}
		res, err := RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAsyncRun(t, cfg, res, 2e-2)
		for _, i := range cfg.HonestIDs() {
			if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Fatalf("%s: validity violated", name)
			}
		}
	}
}

func TestAsyncValidation(t *testing.T) {
	base := func() *AsyncConfig {
		return &AsyncConfig{N: 4, F: 1, D: 2, Inputs: randInputs(rand.New(rand.NewSource(1)), 4, 2, 1), Rounds: 3}
	}
	c1 := base()
	c1.N = 1
	c1.Inputs = c1.Inputs[:1]
	c2 := base()
	c2.Rounds = 0
	c3 := base()
	c3.F = 0
	c3.Byzantine = map[int]*AsyncByzantine{0: {}}
	c4 := base()
	c4.N = 4
	c4.F = 2 // n < 3f+1
	c5 := base()
	c5.Inputs = c5.Inputs[:3]
	for name, cfg := range map[string]*AsyncConfig{
		"tiny n": c1, "zero rounds": c2, "too many byz": c3, "rbc bound": c4, "inputs": c5,
	} {
		if _, err := RunAsyncBVC(context.Background(), cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAsyncSingleRoundDecidesInput(t *testing.T) {
	// Rounds = 1: processes decide the round-1 choice straight from the
	// collected inputs; still well-defined, agreement not guaranteed to be
	// tight but validity holds.
	rng := rand.New(rand.NewSource(77))
	cfg := &AsyncConfig{
		N: 5, F: 1, D: 2, Inputs: randInputs(rng, 5, 2, 2), Rounds: 1, Mode: ModeExact,
	}
	res, err := RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range cfg.HonestIDs() {
		if res.Outputs[i] == nil {
			t.Fatalf("process %d did not decide", i)
		}
		if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
			t.Fatalf("validity violated")
		}
	}
}

func TestAsyncRelaxedGeneralNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	inputs := randInputs(rng, 4, 3, 2)
	for _, p := range []float64{1, 2, math.Inf(1)} {
		cfg := &AsyncConfig{
			N: 4, F: 1, D: 3, Inputs: inputs, Rounds: 8,
			Mode: ModeRelaxed, NormP: p,
			Byzantine: map[int]*AsyncByzantine{3: {Input: vec.Of(8, -8, 8), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave}},
		}
		res, err := RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		checkAsyncRun(t, cfg, res, 0.1)
		// Validity in the chosen norm against all round-0 values.
		all := cfg.NonFaultyInputs().Clone()
		all.Append(vec.Of(8, -8, 8))
		maxDelta := 0.0
		for _, i := range cfg.HonestIDs() {
			if res.Delta[i] > maxDelta {
				maxDelta = res.Delta[i]
			}
		}
		for _, i := range cfg.HonestIDs() {
			dist, _ := geom.DistP(res.Outputs[i], all, p)
			if dist > maxDelta+1e-6 {
				t.Fatalf("p=%v: output %v at distance %v > delta %v", p, res.Outputs[i], dist, maxDelta)
			}
		}
	}
}

func TestAsyncRejectsBadNorm(t *testing.T) {
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 2, Inputs: randInputs(rand.New(rand.NewSource(1)), 4, 2, 1),
		Rounds: 2, Mode: ModeRelaxed, NormP: 3,
	}
	if _, err := RunAsyncBVC(context.Background(), cfg); err == nil {
		t.Fatal("NormP=3 accepted")
	}
}

func TestAsyncRoundSpreadTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	cfg := &AsyncConfig{
		N: 5, F: 1, D: 2,
		Inputs: randInputs(rng, 5, 2, 4),
		Rounds: 10, Mode: ModeExact,
		Byzantine: map[int]*AsyncByzantine{4: {Input: vec.Of(50, -50), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave}},
	}
	res, err := RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.RoundSpread
	if len(tr) != cfg.Rounds {
		t.Fatalf("trace length = %d, want %d", len(tr), cfg.Rounds)
	}
	if tr[0] <= 0 {
		t.Fatalf("round-0 spread = %v", tr[0])
	}
	// From round 1 onward the spread must be (weakly) contracting: each
	// round-r value is a convex combination of round-(r-1) values.
	for r := 2; r < len(tr); r++ {
		if tr[r] > tr[r-1]*(1+1e-9)+1e-12 {
			t.Fatalf("spread grew at round %d: %v", r, tr)
		}
	}
	if tr[len(tr)-1] > 0.05*tr[1] && tr[1] > 1e-9 {
		t.Fatalf("spread did not contract: %v", tr)
	}
}

func TestK1AsyncHighDimensionAtN3f1(t *testing.T) {
	// The Section 5.3 async reduction: n = 3f+1 = 4 suffices for
	// 1-relaxed approximate BVC at any dimension (here d = 5, where full
	// vector consensus would need n = 8).
	rng := rand.New(rand.NewSource(80))
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 5,
		Inputs: randInputs(rng, 4, 5, 3),
		Rounds: 10,
		Byzantine: map[int]*AsyncByzantine{
			3: {Input: vec.Of(40, -40, 40, -40, 40), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave},
		},
	}
	res, err := RunK1AsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if eps := AgreementError(res.Outputs, honest); eps > 0.05 {
		t.Fatalf("epsilon = %v", eps)
	}
	// 1-relaxed validity: per coordinate, inside the honest interval.
	for _, i := range honest {
		if !CheckKValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1, 1e-6) {
			t.Fatalf("1-relaxed validity violated: %v", res.Outputs[i])
		}
	}
}

func TestK1AsyncSilentByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 3,
		Inputs:    randInputs(rng, 4, 3, 2),
		Rounds:    8,
		Byzantine: map[int]*AsyncByzantine{0: {SilentFrom: 0, CorruptFrom: NeverMisbehave}},
	}
	res, err := RunK1AsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range cfg.HonestIDs() {
		if res.Outputs[i] == nil {
			t.Fatalf("process %d never decided", i)
		}
		if !CheckKValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1, 1e-6) {
			t.Fatal("1-relaxed validity violated")
		}
	}
}
