// Package consensus implements the paper's consensus algorithms — the
// core contribution of the library:
//
// Synchronous (exact) algorithms, all following the two-step pattern of
// Algorithm ALGO (Section 9): Step 1 Byzantine-broadcasts every input
// with the oral-messages EIG protocol so that all non-faulty processes
// obtain an identical multiset S; Step 2 deterministically chooses the
// output from S:
//
//   - Exact BVC [19]: a point of Gamma(S), non-empty when
//     n >= max(3f+1, (d+1)f+1);
//   - k-relaxed exact BVC: a point of Psi_k(S) (k = 1 reduces to
//     per-coordinate scalar consensus; n >= (d+1)f+1 for 2 <= k <= d);
//   - (delta,p)-relaxed exact BVC = Algorithm ALGO: the smallest delta
//     with Gamma_(delta,p)(S) non-empty and a deterministic point of it
//     (closed form / minimax for p = 2, exact LP for p in {1, inf});
//   - exact scalar Byzantine consensus (d = 1).
//
// Asynchronous (approximate) algorithms live in async.go.
package consensus

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// SyncConfig describes one synchronous consensus instance.
type SyncConfig struct {
	N, F, D int
	// Inputs holds every process's input vector; for Byzantine processes
	// this is the value their EIG behavior starts from (often irrelevant).
	Inputs []vec.V
	// Byzantine maps process ids to their broadcast-level behavior.
	// len(Byzantine) must be <= F. Used by the default oral-messages
	// Step 1; ignored when SignedBroadcast is set.
	Byzantine map[int]broadcast.EIGBehavior
	// SignedBroadcast switches Step 1 from the oral-messages EIG
	// protocol (n >= 3f+1) to Dolev-Strong signed broadcast, which
	// tolerates any f < n. This models the paper's footnote 3: with an
	// authenticated/broadcast channel the 3f+1 requirement disappears
	// and the relaxed-consensus bounds improve accordingly.
	SignedBroadcast bool
	// ByzantineSigned maps process ids to Dolev-Strong-level behaviors
	// (only consulted when SignedBroadcast is set). len <= F.
	ByzantineSigned map[int]broadcast.DSBehavior
	// SigSeed seeds the simulated PKI of the signed mode (default 1).
	SigSeed int64
	// Default is the fallback vector used when broadcast resolves to
	// garbage (zero vector of dimension D if nil).
	Default vec.V
	// Faults, when set, injects seeded link faults into Step 1. The
	// lockstep model only tolerates duplication; other patterns complete
	// the run and return an error wrapping sched.ErrDeliveryViolated.
	Faults *sched.LinkFaults
	// Trace, when set, observes every delivered Step-1 message (hook a
	// trace.Recorder here for message-level transcripts).
	Trace func(sched.Message)
}

func (c *SyncConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: n must be >= 2, got %d", ErrTooFewProcesses, c.N)
	}
	if c.F < 0 || len(c.Byzantine) > c.F || len(c.ByzantineSigned) > c.F {
		return fmt.Errorf("%w: %d Byzantine processes with f=%d", ErrTooManyFaults, len(c.Byzantine)+len(c.ByzantineSigned), c.F)
	}
	if c.F >= c.N {
		return fmt.Errorf("%w: f=%d >= n=%d", ErrTooManyFaults, c.F, c.N)
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("%w: %d inputs for n=%d", ErrBadInputs, len(c.Inputs), c.N)
	}
	for i, v := range c.Inputs {
		if v.Dim() != c.D {
			return fmt.Errorf("%w: input %d has dimension %d, want %d", ErrBadDimension, i, v.Dim(), c.D)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrBadFaults, err)
		}
	}
	return nil
}

func (c *SyncConfig) defaultVec() vec.V {
	if c.Default != nil {
		return c.Default
	}
	return vec.New(c.D)
}

// SyncResult is the outcome of a synchronous run.
type SyncResult struct {
	// Outputs[i] is process i's decision (Byzantine processes included;
	// their entries are whatever their honest-side computation yields and
	// carry no guarantee).
	Outputs []vec.V
	// AgreedSet[i] is the multiset process i obtained from Step 1; all
	// honest entries are identical when the broadcast preconditions hold.
	AgreedSet []*vec.Set
	// Delta[i] is the relaxation radius process i used (ALGO only).
	Delta []float64
	// Rounds and Messages are network statistics of Step 1.
	Rounds, Messages int
	// Drops is the number of sends suppressed by scripted Byzantine
	// behaviors during Step 1.
	Drops int
	// TreeNodes is the total EIG tree size across all processes and
	// instances (0 in signed-broadcast mode, which builds no trees).
	TreeNodes int
	// Faults counts injected link-fault events during Step 1 (zero when
	// no fault policy was configured).
	Faults sched.FaultStats
}

// HonestIDs returns the non-Byzantine process ids of a config.
func (c *SyncConfig) HonestIDs() []int {
	var ids []int
	for i := 0; i < c.N; i++ {
		_, badOM := c.Byzantine[i]
		_, badDS := c.ByzantineSigned[i]
		if !badOM && !badDS {
			ids = append(ids, i)
		}
	}
	return ids
}

// NonFaultyInputs returns the multiset of inputs at honest processes.
func (c *SyncConfig) NonFaultyInputs() *vec.Set {
	s := vec.NewSet()
	for _, i := range c.HonestIDs() {
		s.Append(c.Inputs[i])
	}
	return s
}

// step1Info carries the decoded multisets and the network statistics of
// one Step-1 broadcast.
type step1Info struct {
	sets             []*vec.Set
	rounds, messages int
	drops, treeNodes int
	faults           sched.FaultStats
}

// step1 runs the all-to-all Byzantine broadcast (oral-messages EIG by
// default, Dolev-Strong signed when configured) and decodes, per process,
// the agreed multiset of n vectors.
func step1(cfg *SyncConfig) (*step1Info, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	def := cfg.defaultVec()
	info := &step1Info{}
	var decided [][][]byte
	var err error
	if cfg.SignedBroadcast {
		decided, err = step1Signed(cfg, def, info)
	} else {
		enc := make([][]byte, cfg.N)
		for i, v := range cfg.Inputs {
			enc[i] = broadcast.EncodeVec(v)
		}
		var res *broadcast.AllToAllResult
		res, err = runEIG(cfg, enc, def)
		if err == nil {
			decided = res.Decided
			info.rounds, info.messages = res.Rounds, res.Messages
			info.drops, info.treeNodes = res.Drops, res.TreeNodes
			info.faults = res.Faults
		}
	}
	if err != nil {
		return nil, err
	}
	info.sets = make([]*vec.Set, cfg.N)
	for i := 0; i < cfg.N; i++ {
		s := vec.NewSet()
		for c := 0; c < cfg.N; c++ {
			v, err := broadcast.DecodeVec(decided[i][c])
			if err != nil || v.Dim() != cfg.D {
				v = def.Clone()
			}
			s.Append(v)
		}
		info.sets[i] = s
	}
	return info, nil
}

// runEIG dispatches the oral-messages Step 1 with the optional trace.
func runEIG(cfg *SyncConfig, enc [][]byte, def vec.V) (*broadcast.AllToAllResult, error) {
	if cfg.Trace != nil {
		return broadcast.RunAllToAllEIG(cfg.N, cfg.F, enc, cfg.Byzantine, broadcast.EncodeVec(def), cfg.Faults, cfg.Trace)
	}
	return broadcast.RunAllToAllEIG(cfg.N, cfg.F, enc, cfg.Byzantine, broadcast.EncodeVec(def), cfg.Faults)
}

// step1Signed runs n Dolev-Strong instances, one per commander, filling
// info's network statistics. With simulated signatures this tolerates any
// f < n, which is what makes the footnote-3 configurations (n <= 3f)
// work.
func step1Signed(cfg *SyncConfig, def vec.V, info *step1Info) ([][][]byte, error) {
	seed := cfg.SigSeed
	if seed == 0 {
		seed = 1
	}
	scheme := broadcast.NewSigScheme(cfg.N, seed)
	decided := make([][][]byte, cfg.N)
	for i := range decided {
		decided[i] = make([][]byte, cfg.N)
	}
	for c := 0; c < cfg.N; c++ {
		var res *broadcast.DSResult
		var err error
		if cfg.Trace != nil {
			res, err = broadcast.RunDolevStrong(cfg.N, cfg.F, c, broadcast.EncodeVec(cfg.Inputs[c]),
				scheme, cfg.ByzantineSigned, broadcast.EncodeVec(def), cfg.Faults, cfg.Trace)
		} else {
			res, err = broadcast.RunDolevStrong(cfg.N, cfg.F, c, broadcast.EncodeVec(cfg.Inputs[c]),
				scheme, cfg.ByzantineSigned, broadcast.EncodeVec(def), cfg.Faults)
		}
		if err != nil {
			return nil, err
		}
		if res.Rounds > info.rounds {
			info.rounds = res.Rounds
		}
		info.messages += res.Messages
		info.drops += res.Drops
		info.faults.Add(res.Faults)
		for i := 0; i < cfg.N; i++ {
			decided[i][c] = res.Decided[i]
		}
	}
	return decided, nil
}

// setKey produces a canonical key of a multiset for memoizing Step 2.
func setKey(s *vec.Set) string {
	var b []byte
	for _, p := range s.Points() {
		b = append(b, broadcast.EncodeVec(p)...)
	}
	return string(b)
}

// runSync is the shared driver: Step 1, then the per-process
// deterministic choice function (memoized across identical multisets).
// The context is checked before Step 1 and before each process's choice,
// so cancellation lands between rounds of LP work.
func runSync(ctx context.Context, cfg *SyncConfig, choose func(*vec.Set) (vec.V, float64, error)) (*SyncResult, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	info, err := step1(cfg)
	if err != nil {
		errorsTotal.Inc()
		return nil, err
	}
	sets := info.sets
	type memo struct {
		out   vec.V
		delta float64
		err   error
	}
	cache := make(map[string]memo)
	res := &SyncResult{
		Outputs:   make([]vec.V, cfg.N),
		AgreedSet: sets,
		Delta:     make([]float64, cfg.N),
		Rounds:    info.rounds,
		Messages:  info.messages,
		Drops:     info.drops,
		TreeNodes: info.treeNodes,
		Faults:    info.faults,
	}
	for i := 0; i < cfg.N; i++ {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		k := setKey(sets[i])
		m, ok := cache[k]
		if !ok {
			//bvclint:allow nodeterminism -- metrics-only: wall time feeds the step-2 latency histogram, never a protocol decision
			chooseStart := time.Now()
			out, delta, err := choose(sets[i])
			//bvclint:allow nodeterminism -- metrics-only: observation of the timing started above
			step2Seconds.Observe(time.Since(chooseStart).Seconds())
			m = memo{out: out, delta: delta, err: err}
			cache[k] = m
		}
		if m.err != nil {
			errorsTotal.Inc()
			return nil, fmt.Errorf("consensus: process %d choice failed: %w", i, m.err)
		}
		res.Outputs[i] = m.out.Clone()
		res.Delta[i] = m.delta
	}
	countSync(res)
	return res, nil
}

// Chooser is a deterministic Step-2 choice function: given the agreed
// multiset S from Step 1 it returns the decision vector and (for the
// relaxed algorithm) the relaxation radius delta. Every honest process
// applying the same Chooser to the same S decides identically — which
// is why the same Chooser values drive both the simulated engine
// (runSync) and the distributed per-node runner (RunSyncNode).
type Chooser func(s *vec.Set) (vec.V, float64, error)

// ExactChooser returns the exact-BVC choice: a deterministic point of
// Gamma(S), or ErrEmptyIntersection when the bound n >= (d+1)f+1 does
// not hold and the adversary emptied the intersection.
func ExactChooser(cfg *SyncConfig) Chooser {
	return func(s *vec.Set) (vec.V, float64, error) {
		pt, ok := relax.GammaPoint(s, cfg.F)
		if !ok {
			return nil, 0, fmt.Errorf("%w: Gamma(S) is empty (n=%d below the (d+1)f+1=%d bound?)", ErrEmptyIntersection, cfg.N, (cfg.D+1)*cfg.F+1)
		}
		return pt, 0, nil
	}
}

// KRelaxedChooser returns the k-relaxed choice: a deterministic point
// of Psi_k(S), with the k = 1 scalar reduction of Section 5.3.
func KRelaxedChooser(cfg *SyncConfig, k int) (Chooser, error) {
	if k < 1 || k > cfg.D {
		return nil, fmt.Errorf("%w: k=%d out of range [1,%d]", ErrBadK, k, cfg.D)
	}
	if k == 1 {
		return func(s *vec.Set) (vec.V, float64, error) {
			return scalarPerCoordinate(s, cfg.F), 0, nil
		}, nil
	}
	return func(s *vec.Set) (vec.V, float64, error) {
		pt, ok := relax.PsiKPoint(s, cfg.F, k)
		if !ok {
			return nil, 0, fmt.Errorf("%w: Psi_%d(S) is empty (n=%d below the (d+1)f+1=%d bound?)", ErrEmptyIntersection, k, cfg.N, (cfg.D+1)*cfg.F+1)
		}
		return pt, 0, nil
	}, nil
}

// DeltaRelaxedChooser returns Algorithm ALGO's choice: the smallest
// delta with Gamma_(delta,p)(S) non-empty and the deterministic point
// attaining it. Supported p: 2 (closed form / minimax), 1 and +Inf
// (exact LP).
func DeltaRelaxedChooser(cfg *SyncConfig, p float64) (Chooser, error) {
	switch {
	case p == 2:
		return func(s *vec.Set) (vec.V, float64, error) {
			r := minimax.DeltaStar2(s, cfg.F)
			return r.Point, r.Delta, nil
		}, nil
	case p == 1 || math.IsInf(p, 1):
		return func(s *vec.Set) (vec.V, float64, error) {
			delta, pt := relax.DeltaStarPoly(s, cfg.F, p)
			return pt, delta, nil
		}, nil
	}
	return nil, fmt.Errorf("%w: p=%v (use 1, 2 or +Inf)", ErrBadNorm, p)
}

// ScalarChooser returns the d = 1 exact scalar consensus choice
// (trim f from each side, decide the interval midpoint).
func ScalarChooser(cfg *SyncConfig) (Chooser, error) {
	if cfg.D != 1 {
		return nil, fmt.Errorf("%w: scalar consensus requires d=1, got %d", ErrBadDimension, cfg.D)
	}
	return KRelaxedChooser(cfg, 1)
}

// RunExactBVC runs exact Byzantine vector consensus [19]: the output is a
// deterministic point of Gamma(S). Gamma is guaranteed non-empty when
// n >= max(3f+1, (d+1)f+1) (Theorem 1); below the bound an adversarial
// input set can make it empty, in which case ErrEmptyIntersection is
// returned.
func RunExactBVC(ctx context.Context, cfg *SyncConfig) (*SyncResult, error) {
	return runSync(ctx, cfg, ExactChooser(cfg))
}

// RunKRelaxedBVC runs k-relaxed exact BVC: the output is a deterministic
// point of Psi_k(S). For k = 1 it uses the scalar reduction of Section
// 5.3 (independent per-coordinate scalar consensus); n >= 3f+1 suffices.
// For 2 <= k <= d the tight requirement is n >= (d+1)f+1 (Theorem 3).
func RunKRelaxedBVC(ctx context.Context, cfg *SyncConfig, k int) (*SyncResult, error) {
	choose, err := KRelaxedChooser(cfg, k)
	if err != nil {
		return nil, err
	}
	return runSync(ctx, cfg, choose)
}

// scalarPerCoordinate applies the d=1 exact consensus choice to each
// coordinate: sort the n agreed values, trim f from each side, take the
// midpoint of the surviving interval. The result lies in the projection
// of the non-faulty inputs on every coordinate (1-relaxed validity).
func scalarPerCoordinate(s *vec.Set, f int) vec.V {
	d := s.Dim()
	out := vec.New(d)
	for j := 0; j < d; j++ {
		xs := s.SortedCoordinate(j)
		lo, hi := xs[f], xs[len(xs)-1-f]
		out[j] = (lo + hi) / 2
	}
	return out
}

// RunScalarConsensus runs exact scalar Byzantine consensus (d = 1):
// Byzantine-broadcast all inputs, trim f from each side, decide the
// interval midpoint. Requires n >= 3f+1 for the broadcast.
func RunScalarConsensus(ctx context.Context, cfg *SyncConfig) (*SyncResult, error) {
	choose, err := ScalarChooser(cfg)
	if err != nil {
		return nil, err
	}
	return runSync(ctx, cfg, choose)
}

// RunDeltaRelaxedBVC runs Algorithm ALGO for (delta,p)-relaxed exact BVC
// with input-dependent delta: after Step 1 every process computes the
// smallest delta for which Gamma_(delta,p)(S) is non-empty and picks the
// deterministic point attaining it. Supported p: 2 (Lemma 13 closed form
// or minimax), 1 and +Inf (exact LP). Requires n >= 3f+1 for Step 1.
func RunDeltaRelaxedBVC(ctx context.Context, cfg *SyncConfig, p float64) (*SyncResult, error) {
	choose, err := DeltaRelaxedChooser(cfg, p)
	if err != nil {
		return nil, err
	}
	return runSync(ctx, cfg, choose)
}

// --- Result validation helpers (used by tests, experiments, examples) ---

// AgreementError returns the maximum pairwise L-infinity distance between
// the outputs of the given processes (0 means exact agreement).
func AgreementError(outputs []vec.V, ids []int) float64 {
	m := 0.0
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			if d := outputs[ids[a]].Sub(outputs[ids[b]]).NormP(math.Inf(1)); d > m {
				m = d
			}
		}
	}
	return m
}

// CheckExactValidity reports whether out lies in the convex hull of the
// non-faulty inputs (within tolerance tol).
func CheckExactValidity(out vec.V, nonFaulty *vec.Set, tol float64) bool {
	d, _ := geom.Dist2(out, nonFaulty)
	return d <= tol
}

// CheckKValidity reports whether out lies in H_k of the non-faulty
// inputs, with per-projection L2 tolerance tol.
func CheckKValidity(out vec.V, nonFaulty *vec.Set, k int, tol float64) bool {
	d := out.Dim()
	okAll := true
	vec.Combinations(d, k, func(D []int) bool {
		dist, _ := geom.Dist2(vec.Project(out, D), nonFaulty.Project(D))
		if dist > tol {
			okAll = false
			return false
		}
		return true
	})
	return okAll
}

// CheckDeltaValidity reports whether out lies within Lp distance delta
// (+tol) of the convex hull of the non-faulty inputs (Definition 10's
// (delta,p)-Relaxed Validity).
func CheckDeltaValidity(out vec.V, nonFaulty *vec.Set, delta, p, tol float64) bool {
	dist, _ := geom.DistP(out, nonFaulty, p)
	return dist <= delta+tol
}

// SortedIDs returns ids sorted ascending (utility for deterministic
// reporting).
func SortedIDs(m map[int]broadcast.EIGBehavior) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
