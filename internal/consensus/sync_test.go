package consensus

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/vec"
)

func randInputs(rng *rand.Rand, n, d int, scale float64) []vec.V {
	in := make([]vec.V, n)
	for i := range in {
		in[i] = vec.New(d)
		for j := range in[i] {
			in[i][j] = rng.NormFloat64() * scale
		}
	}
	return in
}

// twoFacedVec equivocates with two fixed vectors at every relay.
type twoFacedVec struct{ a, b vec.V }

func (tf *twoFacedVec) RelayValue(instance int, path []int, to int, honest []byte) []byte {
	if to%2 == 0 {
		return broadcast.EncodeVec(tf.a)
	}
	return broadcast.EncodeVec(tf.b)
}

type silentVec struct{}

func (silentVec) RelayValue(int, []int, int, []byte) []byte { return nil }

// garbageBytes sends undecodable bytes everywhere.
type garbageBytes struct{}

func (garbageBytes) RelayValue(int, []int, int, []byte) []byte { return []byte{1, 2, 3} }

func checkSyncRun(t *testing.T, cfg *SyncConfig, res *SyncResult) {
	t.Helper()
	honest := cfg.HonestIDs()
	if err := AgreementError(res.Outputs, honest); err > 0 {
		t.Fatalf("agreement violated: max diff %v", err)
	}
	// All honest processes agreed on the same multiset.
	ref := res.AgreedSet[honest[0]]
	for _, i := range honest[1:] {
		for c := 0; c < cfg.N; c++ {
			if !res.AgreedSet[i].At(c).Equal(ref.At(c)) {
				t.Fatalf("agreed multiset differs between honest processes %d and %d", honest[0], i)
			}
		}
	}
}

func TestExactBVCAllHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, c := range []struct{ n, f, d int }{{4, 1, 1}, {4, 1, 2}, {5, 1, 3}, {7, 2, 2}} {
		cfg := &SyncConfig{N: c.n, F: c.f, D: c.d, Inputs: randInputs(rng, c.n, c.d, 3)}
		res, err := RunExactBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("n=%d f=%d d=%d: %v", c.n, c.f, c.d, err)
		}
		checkSyncRun(t, cfg, res)
		for _, i := range cfg.HonestIDs() {
			if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Fatalf("validity violated: output %v outside hull of non-faulty inputs", res.Outputs[i])
			}
		}
		if res.Rounds != c.f+1 {
			t.Errorf("rounds = %d, want %d", res.Rounds, c.f+1)
		}
	}
}

func TestExactBVCWithByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	behaviors := map[string]func() broadcast.EIGBehavior{
		"twofaced": func() broadcast.EIGBehavior {
			return &twoFacedVec{vec.Of(100, 100), vec.Of(-100, -100)}
		},
		"silent":  func() broadcast.EIGBehavior { return silentVec{} },
		"garbage": func() broadcast.EIGBehavior { return garbageBytes{} },
	}
	for name, mk := range behaviors {
		// d = 2, f = 1 => n >= max(4, 4) = 4. Use n = 4.
		cfg := &SyncConfig{
			N: 4, F: 1, D: 2,
			Inputs:    randInputs(rng, 4, 2, 3),
			Byzantine: map[int]broadcast.EIGBehavior{2: mk()},
		}
		res, err := RunExactBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSyncRun(t, cfg, res)
		for _, i := range cfg.HonestIDs() {
			if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Fatalf("%s: validity violated for process %d: %v", name, i, res.Outputs[i])
			}
		}
	}
}

func TestExactBVCBelowBoundCanFail(t *testing.T) {
	// n = d+1 = 4 with f = 1 and affinely independent inputs: Gamma(S) is
	// empty (the simplex facets don't meet) -- the run must error, not
	// return an invalid output. d=3 keeps n >= 3f+1 for broadcast.
	cfg := &SyncConfig{
		N: 4, F: 1, D: 3,
		Inputs: []vec.V{vec.Of(0, 0, 0), vec.Of(1, 0, 0), vec.Of(0, 1, 0), vec.Of(0, 0, 1)},
	}
	if _, err := RunExactBVC(context.Background(), cfg); err == nil {
		t.Fatal("ExactBVC below the (d+1)f+1 bound succeeded with empty Gamma")
	}
}

func TestKRelaxedBVC(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	// d = 3, f = 1, n = (d+1)f+1 = 5: every k should work.
	cfg := &SyncConfig{
		N: 5, F: 1, D: 3,
		Inputs:    randInputs(rng, 5, 3, 3),
		Byzantine: map[int]broadcast.EIGBehavior{4: &twoFacedVec{vec.Of(50, 50, 50), vec.Of(-50, 0, 50)}},
	}
	for k := 1; k <= 3; k++ {
		res, err := RunKRelaxedBVC(context.Background(), cfg, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkSyncRun(t, cfg, res)
		for _, i := range cfg.HonestIDs() {
			if !CheckKValidity(res.Outputs[i], cfg.NonFaultyInputs(), k, 1e-6) {
				t.Fatalf("k=%d: k-relaxed validity violated: %v", k, res.Outputs[i])
			}
		}
	}
	if _, err := RunKRelaxedBVC(context.Background(), cfg, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RunKRelaxedBVC(context.Background(), cfg, 4); err == nil {
		t.Error("k>d accepted")
	}
}

func TestK1WorksAtN3f1HighDimension(t *testing.T) {
	// The Section 5.3 reduction: k = 1 needs only n >= 3f+1 even for
	// large d where (d+1)f+1 would be much bigger.
	rng := rand.New(rand.NewSource(64))
	cfg := &SyncConfig{
		N: 4, F: 1, D: 6,
		Inputs:    randInputs(rng, 4, 6, 2),
		Byzantine: map[int]broadcast.EIGBehavior{1: silentVec{}},
	}
	res, err := RunKRelaxedBVC(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkSyncRun(t, cfg, res)
	for _, i := range cfg.HonestIDs() {
		if !CheckKValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1, 1e-9) {
			t.Fatalf("1-relaxed validity violated: %v", res.Outputs[i])
		}
	}
}

func TestScalarConsensus(t *testing.T) {
	cfg := &SyncConfig{
		N: 4, F: 1, D: 1,
		Inputs:    []vec.V{vec.Of(1), vec.Of(2), vec.Of(3), vec.Of(100)},
		Byzantine: map[int]broadcast.EIGBehavior{3: &twoFacedVec{vec.Of(1e9), vec.Of(-1e9)}},
	}
	res, err := RunScalarConsensus(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSyncRun(t, cfg, res)
	out := res.Outputs[0][0]
	if out < 1 || out > 3 {
		t.Fatalf("scalar output %v outside honest range [1,3]", out)
	}
	cfgBad := &SyncConfig{N: 4, F: 1, D: 2, Inputs: randInputs(rand.New(rand.NewSource(1)), 4, 2, 1)}
	if _, err := RunScalarConsensus(context.Background(), cfgBad); err == nil {
		t.Error("scalar consensus accepted d=2")
	}
}

func TestDeltaRelaxedBVCAlgoL2(t *testing.T) {
	// Algorithm ALGO headline case: f = 1, d = 3, n = d+1 = 4 <
	// (d+1)f+1 = 5. Exact BVC is impossible here, but ALGO succeeds with
	// delta* bounded by Theorem 9.
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 5; trial++ {
		inputs := randInputs(rng, 4, 3, 3)
		cfg := &SyncConfig{
			N: 4, F: 1, D: 3,
			Inputs:    inputs,
			Byzantine: map[int]broadcast.EIGBehavior{1: &twoFacedVec{vec.Of(10, 0, 0), vec.Of(0, 10, 0)}},
		}
		res, err := RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkSyncRun(t, cfg, res)
		honest := cfg.HonestIDs()
		delta := res.Delta[honest[0]]
		nonFaulty := cfg.NonFaultyInputs()
		// (delta,2)-relaxed validity.
		for _, i := range honest {
			if !CheckDeltaValidity(res.Outputs[i], nonFaulty, delta, 2, 1e-6) {
				t.Fatalf("(delta,2) validity violated: delta=%v out=%v", delta, res.Outputs[i])
			}
		}
		// Theorem 9: delta* < min(minE+/2, maxE+/(n-2)).
		if bound := minimax.Theorem9Bound(nonFaulty, cfg.N); delta >= bound {
			t.Fatalf("Theorem 9 violated: delta=%v >= bound=%v", delta, bound)
		}
	}
}

func TestDeltaRelaxedBVCPolyNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	inputs := randInputs(rng, 4, 3, 2)
	cfg := &SyncConfig{N: 4, F: 1, D: 3, Inputs: inputs}
	for _, p := range []float64{1, math.Inf(1)} {
		res, err := RunDeltaRelaxedBVC(context.Background(), cfg, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		checkSyncRun(t, cfg, res)
		honest := cfg.HonestIDs()
		delta := res.Delta[honest[0]]
		for _, i := range honest {
			if !CheckDeltaValidity(res.Outputs[i], cfg.NonFaultyInputs(), delta, p, 1e-6) {
				t.Fatalf("p=%v: validity violated", p)
			}
		}
	}
	if _, err := RunDeltaRelaxedBVC(context.Background(), cfg, 3); err == nil {
		t.Error("unsupported p accepted")
	}
}

func TestDeltaOrderingAcrossNorms(t *testing.T) {
	// delta*_inf <= delta*_2 <= delta*_1 end-to-end through the protocol.
	rng := rand.New(rand.NewSource(67))
	inputs := randInputs(rng, 4, 3, 2)
	cfg := &SyncConfig{N: 4, F: 1, D: 3, Inputs: inputs}
	rInf, err1 := RunDeltaRelaxedBVC(context.Background(), cfg, math.Inf(1))
	r2, err2 := RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	r1, err3 := RunDeltaRelaxedBVC(context.Background(), cfg, 1)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	dInf, d2, d1 := rInf.Delta[0], r2.Delta[0], r1.Delta[0]
	if dInf > d2+1e-6 || d2 > d1+1e-6 {
		t.Fatalf("delta ordering violated: inf=%v 2=%v 1=%v", dInf, d2, d1)
	}
}

func TestConfigValidation(t *testing.T) {
	good := randInputs(rand.New(rand.NewSource(1)), 4, 2, 1)
	cases := map[string]*SyncConfig{
		"n too small":  {N: 1, F: 0, D: 2, Inputs: good[:1]},
		"too many byz": {N: 4, F: 0, D: 2, Inputs: good, Byzantine: map[int]broadcast.EIGBehavior{0: silentVec{}}},
		"f >= n":       {N: 4, F: 4, D: 2, Inputs: good},
		"wrong inputs": {N: 4, F: 1, D: 2, Inputs: good[:3]},
		"wrong dim":    {N: 4, F: 1, D: 3, Inputs: good},
	}
	for name, cfg := range cases {
		if _, err := RunExactBVC(context.Background(), cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestDefaultVectorUsedForGarbage(t *testing.T) {
	// When the Byzantine commander's instance resolves to undecodable
	// bytes, all honest processes substitute the same default vector.
	cfg := &SyncConfig{
		N: 4, F: 1, D: 2,
		Inputs:    []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1), vec.Of(1, 1)},
		Byzantine: map[int]broadcast.EIGBehavior{3: garbageBytes{}},
		Default:   vec.Of(0.5, 0.5),
	}
	res, err := RunExactBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range cfg.HonestIDs() {
		if !res.AgreedSet[i].At(3).Equal(vec.Of(0.5, 0.5)) {
			t.Fatalf("default not substituted: %v", res.AgreedSet[i].At(3))
		}
	}
}

// End-to-end shape check of Theorem 1's bound: exact BVC succeeds for
// n = (d+1)f+1 on random inputs with the worst adversary we have, across
// dimensions.
func TestExactBVCAtTheBoundAcrossDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	for d := 1; d <= 4; d++ {
		f := 1
		n := (d+1)*f + 1
		if n < 3*f+1 {
			n = 3*f + 1
		}
		cfg := &SyncConfig{
			N: n, F: f, D: d,
			Inputs:    randInputs(rng, n, d, 3),
			Byzantine: map[int]broadcast.EIGBehavior{n - 1: &twoFacedVec{garbagePoint(d, 1), garbagePoint(d, 2)}},
		}
		res, err := RunExactBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("d=%d n=%d: %v", d, n, err)
		}
		for _, i := range cfg.HonestIDs() {
			if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
				t.Fatalf("d=%d: validity violated", d)
			}
		}
	}
}

func garbagePoint(d, seed int) vec.V {
	v := vec.New(d)
	for i := range v {
		v[i] = float64((seed*7+i*13)%11) * 5
	}
	return v
}
