package consensus

import (
	"context"
	"errors"
	"math"
	"testing"

	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

func ctxInputs(n, d int) []vec.V {
	inputs := make([]vec.V, n)
	for i := range inputs {
		v := vec.New(d)
		for j := range v {
			v[j] = float64((i+1)*(j+2)) / 7
		}
		inputs[i] = v
	}
	return inputs
}

// TestSyncCanceledBeforeStart: an already-canceled context aborts before
// any broadcast work, with an error matching both sentinels.
func TestSyncCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := &SyncConfig{N: 4, F: 1, D: 2, Inputs: ctxInputs(4, 2)}
	_, err := RunDeltaRelaxedBVC(ctx, cfg, 2)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

// TestAsyncCancelMidRound cancels from inside the Trace hook after a few
// dozen deliveries — mid-protocol, between reliable-broadcast rounds —
// and checks the engine stops with the typed error instead of finishing.
func TestAsyncCancelMidRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	deliveries := 0
	cfg := &AsyncConfig{
		N: 4, F: 1, D: 2,
		Inputs: ctxInputs(4, 2),
		Rounds: 4,
		Trace: func(sched.Message) {
			deliveries++
			if deliveries == 40 {
				cancel()
			}
		},
	}
	_, err := RunAsyncBVC(ctx, cfg)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if deliveries < 40 {
		t.Fatalf("run ended after only %d deliveries, cancellation untested", deliveries)
	}
}

// TestIterativeCancelMidRound does the same for the synchronous engine.
func TestIterativeCancelMidRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	deliveries := 0
	cfg := &IterConfig{
		N: 5, F: 1, D: 1,
		Inputs: ctxInputs(5, 1),
		Rounds: 50,
		Trace: func(sched.Message) {
			deliveries++
			if deliveries == 30 {
				cancel()
			}
		},
	}
	_, err := RunIterativeBVC(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestTypedSentinels drives each validation path and checks errors.Is
// matches the advertised sentinel.
func TestTypedSentinels(t *testing.T) {
	ctx := context.Background()
	good := ctxInputs(4, 2)
	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"too few", func() error {
			_, err := RunExactBVC(ctx, &SyncConfig{N: 1, F: 0, D: 2, Inputs: ctxInputs(1, 2)})
			return err
		}, ErrTooFewProcesses},
		{"f >= n", func() error {
			_, err := RunExactBVC(ctx, &SyncConfig{N: 4, F: 4, D: 2, Inputs: good})
			return err
		}, ErrTooManyFaults},
		{"input count", func() error {
			_, err := RunExactBVC(ctx, &SyncConfig{N: 4, F: 1, D: 2, Inputs: good[:3]})
			return err
		}, ErrBadInputs},
		{"dimension", func() error {
			_, err := RunExactBVC(ctx, &SyncConfig{N: 4, F: 1, D: 3, Inputs: good})
			return err
		}, ErrBadDimension},
		{"scalar needs d=1", func() error {
			_, err := RunScalarConsensus(ctx, &SyncConfig{N: 4, F: 1, D: 2, Inputs: good})
			return err
		}, ErrBadDimension},
		{"bad k", func() error {
			_, err := RunKRelaxedBVC(ctx, &SyncConfig{N: 4, F: 1, D: 2, Inputs: good}, 5)
			return err
		}, ErrBadK},
		{"bad norm", func() error {
			_, err := RunDeltaRelaxedBVC(ctx, &SyncConfig{N: 4, F: 1, D: 2, Inputs: good}, 0.5)
			return err
		}, ErrBadNorm},
		{"async rounds", func() error {
			_, err := RunAsyncBVC(ctx, &AsyncConfig{N: 4, F: 1, D: 2, Inputs: good})
			return err
		}, ErrBadRounds},
		{"async norm", func() error {
			_, err := RunAsyncBVC(ctx, &AsyncConfig{N: 4, F: 1, D: 2, Inputs: good, Rounds: 2, NormP: 3})
			return err
		}, ErrBadNorm},
		{"async rbc bound", func() error {
			_, err := RunAsyncBVC(ctx, &AsyncConfig{N: 3, F: 1, D: 2, Inputs: ctxInputs(3, 2), Rounds: 2})
			return err
		}, ErrTooFewProcesses},
		{"iter rounds", func() error {
			_, err := RunIterativeBVC(ctx, &IterConfig{N: 4, F: 1, D: 2, Inputs: good})
			return err
		}, ErrBadRounds},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: errors.Is failed; got %v", tc.name, err)
		}
	}
}

// TestEmptyGammaWrapsSentinel drives the Gamma-empty path (n below the
// (d+1)f+1 bound with a spread adversary is not needed — a tiny n with
// high d suffices) and checks ErrEmptyIntersection surfaces through the
// per-process wrap.
func TestEmptyGammaWrapsSentinel(t *testing.T) {
	// n=4, f=1, d=3: (d+1)f+1 = 5 > n, and spread inputs make Gamma empty.
	inputs := []vec.V{
		vec.Of(0, 0, 0),
		vec.Of(1, 0, 0),
		vec.Of(0, 1, 0),
		vec.Of(0, 0, 1),
	}
	cfg := &SyncConfig{N: 4, F: 1, D: 3, Inputs: inputs}
	_, err := RunExactBVC(context.Background(), cfg)
	if err == nil {
		t.Skip("Gamma non-empty for this input set")
	}
	if !errors.Is(err, ErrEmptyIntersection) {
		t.Fatalf("want ErrEmptyIntersection, got %v", err)
	}
}

// TestDeltaRelaxedCancelBetweenChoices cancels during Step 2 by hooking
// the trace on Step-1 deliveries is too early; instead use a deadline
// context that expires immediately and confirm the per-process loop
// checks it.
func TestDeltaRelaxedCancelBetweenChoices(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	cfg := &SyncConfig{N: 4, F: 1, D: 2, Inputs: ctxInputs(4, 2),
		Trace: func(sched.Message) {
			delivered++
			cancel() // canceled during Step 1; caught before Step 2 choices
		}}
	_, err := RunDeltaRelaxedBVC(ctx, cfg, math.Inf(1))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if delivered == 0 {
		t.Fatal("trace hook never fired; cancellation path untested")
	}
}
