package consensus

import (
	"context"

	"math/rand"
	"testing"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// Cross-feature and larger-scale configurations (skipped under -short).

func TestSignedBroadcastKRelaxedAndConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	inputs := randInputs(rng, 5, 3, 2)
	cfg := &SyncConfig{
		N: 5, F: 1, D: 3, Inputs: inputs,
		SignedBroadcast: true,
		ByzantineSigned: map[int]broadcast.DSBehavior{
			4: adversary.SignedEquivocator(map[int]vec.V{0: vec.Of(7, 7, 7), 1: vec.Of(-7, -7, -7)}),
		},
	}
	kres, err := RunKRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if AgreementError(kres.Outputs, honest) != 0 {
		t.Fatal("k-relaxed agreement violated under signed broadcast")
	}
	for _, i := range honest {
		if !CheckKValidity(kres.Outputs[i], cfg.NonFaultyInputs(), 2, 1e-6) {
			t.Fatal("k-relaxed validity violated")
		}
	}
	cres, err := RunConvexHullConsensus(context.Background(), cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range honest[1:] {
		if PolytopeAgreementError(cres, honest[0], i) != 0 {
			t.Fatal("convex agreement violated under signed broadcast")
		}
	}
	if !CheckConvexValidity(cres.Vertices[honest[0]], cfg.NonFaultyInputs(), 1e-6) {
		t.Fatal("convex validity violated")
	}
}

func TestAsyncF2(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// f = 2 async: n >= 3f+1 = 7 for the RBC; ModeExact needs
	// (d+2)f+1 = 9 at d = 2... use relaxed mode at n = 7.
	rng := rand.New(rand.NewSource(122))
	cfg := &AsyncConfig{
		N: 7, F: 2, D: 2,
		Inputs: randInputs(rng, 7, 2, 2),
		Rounds: 8,
		Mode:   ModeRelaxed,
		Byzantine: map[int]*AsyncByzantine{
			5: {Input: vec.Of(30, 30), SilentFrom: NeverMisbehave, CorruptFrom: NeverMisbehave},
			6: {SilentFrom: 0, CorruptFrom: NeverMisbehave},
		},
	}
	res, err := RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAsyncRun(t, cfg, res, 0.1)
}

func TestSignedBroadcastLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// n = 10, f = 3 with signed broadcast: exact BVC with d = 2 needs
	// (d+1)f+1 = 10 processes — exactly n.
	rng := rand.New(rand.NewSource(123))
	inputs := randInputs(rng, 10, 2, 2)
	cfg := &SyncConfig{
		N: 10, F: 3, D: 2, Inputs: inputs,
		SignedBroadcast: true,
		ByzantineSigned: map[int]broadcast.DSBehavior{
			7: adversary.SignedEquivocator(map[int]vec.V{0: vec.Of(9, 9), 1: vec.Of(-9, 9)}),
			8: adversary.SignedEquivocator(map[int]vec.V{2: vec.Of(5, -5)}),
			9: adversary.SignedEquivocator(nil),
		},
	}
	res, err := RunExactBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if AgreementError(res.Outputs, honest) != 0 {
		t.Fatal("agreement violated")
	}
	for _, i := range honest {
		if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
			t.Fatal("validity violated")
		}
	}
}

func TestALGOHighDimension(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	// d = 8 with n = d+1 = 9, f = 1: the headline regime at a dimension
	// where exact BVC would need 10 processes.
	rng := rand.New(rand.NewSource(124))
	inputs := randInputs(rng, 9, 8, 2)
	cfg := &SyncConfig{
		N: 9, F: 1, D: 8, Inputs: inputs,
		Byzantine: map[int]broadcast.EIGBehavior{8: adversary.RandomLiar(5, 8, 10)},
	}
	res, err := RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if AgreementError(res.Outputs, honest) != 0 {
		t.Fatal("agreement violated")
	}
	delta := res.Delta[honest[0]]
	nonFaulty := cfg.NonFaultyInputs()
	if !CheckDeltaValidity(res.Outputs[honest[0]], nonFaulty, delta, 2, 1e-6) {
		t.Fatal("validity violated")
	}
	// Theorem 9 at d = 8.
	if bound := theorem9(nonFaulty, 9); delta >= bound {
		t.Fatalf("Theorem 9 violated at d=8: %v >= %v", delta, bound)
	}
}

func theorem9(nonFaulty *vec.Set, n int) float64 {
	minE := nonFaulty.MinEdge(2)
	maxE := nonFaulty.MaxEdge(2)
	b := minE / 2
	if m := maxE / float64(n-2); m < b {
		b = m
	}
	return b
}

// Replayability: identical configs and seeds must give bit-identical
// outcomes across independent runs (the whole simulation stack is
// deterministic).
func TestDeterministicReplay(t *testing.T) {
	mk := func() (*SyncResult, *AsyncResult) {
		rng := rand.New(rand.NewSource(131))
		inputs := randInputs(rng, 4, 3, 2)
		sc := &SyncConfig{
			N: 4, F: 1, D: 3, Inputs: inputs,
			Byzantine: map[int]broadcast.EIGBehavior{2: adversary.Equivocator(vec.Of(9, 9, 9), vec.Of(-9, -9, -9))},
		}
		sres, err := RunDeltaRelaxedBVC(context.Background(), sc, 2)
		if err != nil {
			t.Fatal(err)
		}
		ac := &AsyncConfig{
			N: 4, F: 1, D: 3, Inputs: inputs, Rounds: 5, Mode: ModeRelaxed,
			Schedule: &sched.RandomSchedule{Rng: rand.New(rand.NewSource(77))},
		}
		ares, err := RunAsyncBVC(context.Background(), ac)
		if err != nil {
			t.Fatal(err)
		}
		return sres, ares
	}
	s1, a1 := mk()
	s2, a2 := mk()
	for i := range s1.Outputs {
		if !s1.Outputs[i].Equal(s2.Outputs[i]) {
			t.Fatalf("sync replay diverged at %d: %v vs %v", i, s1.Outputs[i], s2.Outputs[i])
		}
	}
	for i := range a1.Outputs {
		if (a1.Outputs[i] == nil) != (a2.Outputs[i] == nil) {
			t.Fatalf("async replay decided-ness diverged at %d", i)
		}
		if a1.Outputs[i] != nil && !a1.Outputs[i].Equal(a2.Outputs[i]) {
			t.Fatalf("async replay diverged at %d", i)
		}
	}
	if a1.Messages != a2.Messages || a1.Steps != a2.Steps {
		t.Fatalf("async stats diverged: %d/%d vs %d/%d", a1.Messages, a1.Steps, a2.Messages, a2.Steps)
	}
}
