package consensus

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors returned (wrapped, with instance detail) by the Run*
// entry points. Match with errors.Is.
var (
	// ErrTooFewProcesses: n is below the minimum the protocol needs (the
	// wrapping message states the violated bound).
	ErrTooFewProcesses = errors.New("consensus: too few processes")
	// ErrTooManyFaults: f >= n, or more Byzantine behaviors were
	// configured than f allows.
	ErrTooManyFaults = errors.New("consensus: too many faulty processes")
	// ErrBadInputs: the number of input vectors differs from n.
	ErrBadInputs = errors.New("consensus: wrong number of inputs")
	// ErrBadDimension: an input vector's dimension differs from D, or a
	// protocol's dimension requirement (scalar consensus needs d=1) is
	// violated.
	ErrBadDimension = errors.New("consensus: bad dimension")
	// ErrBadRounds: the configured round count is not positive.
	ErrBadRounds = errors.New("consensus: rounds must be >= 1")
	// ErrBadNorm: the Lp norm parameter is outside the supported set
	// (p in {1, 2, +Inf} for the relaxed protocols; p >= 1 for delta*).
	ErrBadNorm = errors.New("consensus: unsupported norm")
	// ErrBadK: the relaxation parameter k is outside [1, d].
	ErrBadK = errors.New("consensus: relaxation parameter k out of range")
	// ErrEmptyIntersection: the safe region (Gamma, Psi_k, ...) the
	// protocol must pick from is empty — n is below the worst-case bound
	// for the given adversary.
	ErrEmptyIntersection = errors.New("consensus: safe intersection is empty")
	// ErrCanceled: the run was abandoned because its context was canceled
	// or its deadline expired. The context's own error is wrapped too, so
	// errors.Is(err, context.Canceled / context.DeadlineExceeded) also
	// matches.
	ErrCanceled = errors.New("consensus: run canceled")
	// ErrBadFaults: the configured sched.LinkFaults policy has invalid
	// parameters (probability outside [0,1], inverted delay bounds, ...).
	ErrBadFaults = errors.New("consensus: invalid fault policy")
	// ErrBadMessage: a wire message failed to decode (truncated,
	// length-inconsistent, or otherwise malformed). Byzantine senders
	// can produce these at will, so protocol code classifies them with
	// errors.Is rather than string matching.
	ErrBadMessage = errors.New("consensus: malformed message")
)

// canceled returns a wrapped ErrCanceled if ctx is done, else nil.
func canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}
