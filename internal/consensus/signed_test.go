package consensus

import (
	"context"

	"math/rand"
	"testing"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/vec"
)

// Signed-broadcast (Dolev-Strong) Step 1: the footnote-3 configuration
// n = 3, f = 1 works where oral messages cannot.
func TestSignedBroadcastN3(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	inputs := randInputs(rng, 3, 2, 2)
	cfg := &SyncConfig{
		N: 3, F: 1, D: 2, Inputs: inputs,
		SignedBroadcast: true,
		ByzantineSigned: map[int]broadcast.DSBehavior{
			2: adversary.SignedEquivocator(map[int]vec.V{0: vec.Of(9, 9), 1: vec.Of(-9, -9)}),
		},
	}
	res, err := RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if len(honest) != 2 {
		t.Fatalf("honest = %v", honest)
	}
	if AgreementError(res.Outputs, honest) != 0 {
		t.Fatal("signed broadcast failed to defeat equivocation at n=3")
	}
	// Views identical.
	for c := 0; c < 3; c++ {
		if !res.AgreedSet[honest[0]].At(c).Equal(res.AgreedSet[honest[1]].At(c)) {
			t.Fatalf("views differ on commander %d", c)
		}
	}
	delta := res.Delta[honest[0]]
	if !CheckDeltaValidity(res.Outputs[honest[0]], cfg.NonFaultyInputs(), delta, 2, 1e-6) {
		t.Fatal("validity violated under signed broadcast")
	}
}

func TestSignedBroadcastMatchesOralOnHonestRuns(t *testing.T) {
	// With no Byzantine processes the two Step-1 implementations must
	// yield the same agreed multiset and hence the same outputs.
	rng := rand.New(rand.NewSource(92))
	inputs := randInputs(rng, 4, 2, 2)
	oral := &SyncConfig{N: 4, F: 1, D: 2, Inputs: inputs}
	signed := &SyncConfig{N: 4, F: 1, D: 2, Inputs: inputs, SignedBroadcast: true}
	ro, err1 := RunExactBVC(context.Background(), oral)
	rs, err2 := RunExactBVC(context.Background(), signed)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := 0; i < 4; i++ {
		if !ro.Outputs[i].ApproxEqual(rs.Outputs[i], 1e-12) {
			t.Fatalf("outputs differ: %v vs %v", ro.Outputs[i], rs.Outputs[i])
		}
	}
}

func TestSignedBroadcastExactBVCWithByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	inputs := randInputs(rng, 4, 2, 2)
	cfg := &SyncConfig{
		N: 4, F: 1, D: 2, Inputs: inputs,
		SignedBroadcast: true,
		ByzantineSigned: map[int]broadcast.DSBehavior{
			3: adversary.SignedEquivocator(map[int]vec.V{0: vec.Of(5, 5), 1: vec.Of(-5, -5), 2: vec.Of(5, -5)}),
		},
	}
	res, err := RunExactBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	if AgreementError(res.Outputs, honest) != 0 {
		t.Fatal("agreement violated")
	}
	for _, i := range honest {
		if !CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
			t.Fatal("validity violated")
		}
	}
	// An equivocating Byzantine commander's instance falls to the default
	// vector at every honest process (identically).
	def := cfg.defaultVec()
	for _, i := range honest {
		if !res.AgreedSet[i].At(3).Equal(def) {
			t.Fatalf("equivocator's slot = %v, want default", res.AgreedSet[i].At(3))
		}
	}
}

func TestSignedByzantineCountValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	cfg := &SyncConfig{
		N: 4, F: 0, D: 2, Inputs: randInputs(rng, 4, 2, 1),
		SignedBroadcast: true,
		ByzantineSigned: map[int]broadcast.DSBehavior{0: adversary.SignedEquivocator(nil)},
	}
	if _, err := RunExactBVC(context.Background(), cfg); err == nil {
		t.Fatal("too many signed Byzantine accepted")
	}
}
