package consensus

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/relax"
)

// TestConvexBoundBoundary walks n across the two bounds of Tseng-Vaidya
// (arXiv:1307.1332): below the Tverberg existence floor
// max(3f+1, (d+1)f+1) the precondition must reject the run; exactly at
// the floor Gamma(S) exists but is generically degenerate (the regime
// behind the soak findings at n=5/f=1/d=3), so every output vertex must
// still be certified inside every dropped-subset hull; at the
// full-dimensionality bound (d+2)f+1 the protocol succeeds outright.
func TestConvexBoundBoundary(t *testing.T) {
	cases := []struct{ f, d int }{{1, 1}, {1, 2}, {1, 3}, {1, 4}, {2, 2}}
	for _, c := range cases {
		floor := 3*c.f + 1
		if tv := (c.d+1)*c.f + 1; tv > floor {
			floor = tv
		}
		full := (c.d+2)*c.f + 1
		for _, n := range []int{floor - 1, floor, full} {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(9000*seed + int64(100*c.f+10*c.d+n)))
				cfg := &SyncConfig{N: n, F: c.f, D: c.d, Inputs: randInputs(rng, n, c.d, 3)}
				res, err := RunConvexHullConsensus(context.Background(), cfg, 2*c.d+4)
				if n < floor {
					if !errors.Is(err, ErrTooFewProcesses) {
						t.Fatalf("f=%d d=%d n=%d: want ErrTooFewProcesses, got %v", c.f, c.d, n, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("f=%d d=%d n=%d seed=%d: %v", c.f, c.d, n, seed, err)
				}
				fam := relax.DroppedSubsets(res2set(cfg, res, 0), c.f)
				for _, v := range res.Vertices[cfg.HonestIDs()[0]] {
					for _, sub := range fam {
						if dist, _ := geom.Dist2(v, sub); dist > 1e-6 {
							t.Fatalf("f=%d d=%d n=%d seed=%d: vertex %v misses a subset hull by %v", c.f, c.d, n, seed, v, dist)
						}
					}
				}
			}
		}
	}
}
