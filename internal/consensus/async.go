package consensus

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// AsyncMode selects the round-0 choice function of the asynchronous
// algorithm (the H function of Definition 12).
type AsyncMode int

const (
	// ModeRelaxed is the Relaxed Verified Averaging Algorithm of Section
	// 10: the round-0 choice is the deterministic point attaining the
	// smallest delta with Gamma_(delta,2)(X) non-empty. Requires only
	// n >= 3f+1 and provides (delta,2)-relaxed validity with
	// delta < kappa(n-f, f, d, 2) * max_{e in E+} ||e||_2 (Theorem 15).
	ModeRelaxed AsyncMode = iota
	// ModeExact is the delta = 0 baseline (Verified Averaging [15] /
	// approximate BVC): the round-0 choice is a deterministic point of
	// Gamma(X), which requires n >= (d+2)f+1 (Theorem 2).
	ModeExact
)

// AsyncByzantine describes a Byzantine process in the asynchronous
// algorithm. The verification discipline of the algorithm constrains
// Byzantine processes to either follow the averaging rule (possibly with
// an arbitrary round-0 input) or have their messages discarded; this
// struct exposes exactly those choices.
type AsyncByzantine struct {
	// Input overrides the process's round-0 value (arbitrary vector).
	Input vec.V
	// SilentFrom makes the process broadcast nothing from this round on
	// (0 = completely silent). Use a large value for "never silent".
	SilentFrom int
	// CorruptFrom makes the process send unverifiable garbage (wrong
	// averages) from this round on; honest processes will discard these.
	CorruptFrom int
	// MuteRBC makes the process refuse to participate even in the
	// reliable-broadcast layer (no echoes or readies) — the harshest
	// silence the model allows.
	MuteRBC bool
}

// NeverMisbehave is a convenience for the SilentFrom/CorruptFrom fields.
const NeverMisbehave = math.MaxInt32

// AsyncConfig describes one asynchronous consensus instance.
type AsyncConfig struct {
	N, F, D int
	Inputs  []vec.V
	// Rounds R: processes broadcast rounds 0..R-1 and decide the value
	// they compute for round R. Larger R gives tighter epsilon-agreement.
	Rounds int
	Mode   AsyncMode
	// NormP selects the Lp norm of the (delta,p)-relaxed round-0 choice
	// in ModeRelaxed: 2 (default when 0), 1, or math.Inf(1). Theorem 15
	// covers all of them; p = 2 uses the minimax solver, the polyhedral
	// norms use exact LPs.
	NormP float64
	// Byzantine maps process ids to behaviors (len <= F).
	Byzantine map[int]*AsyncByzantine
	// Schedule controls message delivery order (FIFO if nil).
	Schedule sched.Schedule
	// Faults, when set, injects seeded link faults. Within-model patterns
	// (drops recovered by retransmission, bounded delays, duplication,
	// healing partitions) preserve eventual delivery and the algorithm's
	// guarantees; patterns that permanently lose a message surface as
	// errors wrapping sched.ErrDeliveryViolated.
	Faults *sched.LinkFaults
	// Trace, when set, observes every delivered message.
	Trace func(sched.Message)
}

// AsyncResult is the outcome of an asynchronous run.
type AsyncResult struct {
	// Outputs[i] is the decided vector of process i (nil if it never
	// decided — only possible for Byzantine/silent processes).
	Outputs []vec.V
	// Delta[i] is the relaxation radius process i computed at its round-0
	// choice (ModeRelaxed only).
	Delta []float64
	// RoundSpread[r] is the maximum pairwise L-inf distance among the
	// round-r values that honest processes verified (the convergence
	// trace: RoundSpread[0] is the spread of accepted inputs, later
	// entries contract toward the epsilon-agreement level).
	RoundSpread []float64
	// Steps is the number of message deliveries; Messages the number of
	// point-to-point messages.
	Steps, Messages int
	// Faults counts injected link-fault events (zero when no fault policy
	// was configured).
	Faults sched.FaultStats
}

// chooseMemo shares deterministic choice computations across simulated
// processes. Every process would compute identical results for identical
// (round, witness multiset) keys; the cache only avoids repeating that
// work, it does not change any outcome.
type chooseMemo struct {
	m map[string]memoEntry
}

type memoEntry struct {
	val   vec.V
	delta float64
	ok    bool
}

// rvaProcess implements the Relaxed Verified Averaging state machine.
type rvaProcess struct {
	cfg      *AsyncConfig
	self     int
	bs       *broadcast.BrachaState
	byz      *AsyncByzantine
	memo     *chooseMemo
	verified map[int]map[int]vec.V // round -> sender -> value
	pending  []rvaMsg
	myRound  int // last round broadcast
	started  bool
	decided  vec.V
	delta    float64
	advanced map[int]bool
}

type rvaMsg struct {
	sender  int
	round   int
	value   vec.V
	witness []int
}

func encodeRVA(round int, value vec.V, witness []int) []byte {
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(round))
	out = append(out, broadcast.EncodeVec(value)...)
	// Witness as a path suffix (length-prefixed ids).
	out = append(out, encodeWitness(witness)...)
	return out
}

func encodeWitness(w []int) []byte {
	out := make([]byte, 2+2*len(w))
	binary.BigEndian.PutUint16(out, uint16(len(w)))
	for i, x := range w {
		binary.BigEndian.PutUint16(out[2+2*i:], uint16(x))
	}
	return out
}

func decodeRVA(b []byte, d int) (round int, value vec.V, witness []int, err error) {
	if len(b) < 2 {
		return 0, nil, nil, fmt.Errorf("%w: short rva message", ErrBadMessage)
	}
	round = int(binary.BigEndian.Uint16(b))
	vlen := 4 + 8*d
	if len(b) < 2+vlen+2 {
		return 0, nil, nil, fmt.Errorf("%w: truncated rva message", ErrBadMessage)
	}
	value, err = broadcast.DecodeVec(b[2 : 2+vlen])
	if err != nil {
		return 0, nil, nil, err
	}
	wb := b[2+vlen:]
	wlen := int(binary.BigEndian.Uint16(wb))
	if len(wb) != 2+2*wlen {
		return 0, nil, nil, fmt.Errorf("%w: bad rva witness length", ErrBadMessage)
	}
	witness = make([]int, wlen)
	for i := range witness {
		witness[i] = int(binary.BigEndian.Uint16(wb[2+2*i:]))
	}
	return round, value, witness, nil
}

func (p *rvaProcess) Start() []sched.Outgoing {
	p.started = true
	input := p.cfg.Inputs[p.self]
	if p.byz != nil {
		if p.byz.SilentFrom <= 0 {
			return nil
		}
		if p.byz.Input != nil {
			input = p.byz.Input
		}
		if p.byz.CorruptFrom <= 0 {
			// A "corrupt" round-0 message is just an arbitrary input:
			// round-0 values are unverifiable by design. Send garbage.
			input = garbageVec(p.cfg.D, p.self)
		}
	}
	return p.bs.Broadcast("rva-0", encodeRVA(0, input, nil))
}

func garbageVec(d, seed int) vec.V {
	v := vec.New(d)
	for i := range v {
		v[i] = float64((seed+1)*(i+3)%17) * 1e6
	}
	return v
}

func (p *rvaProcess) Receive(m sched.Message) []sched.Outgoing {
	if p.byz != nil && p.byz.MuteRBC {
		return nil
	}
	outs := p.bs.Handle(m)
	for _, del := range p.bs.TakeDeliveries() {
		round, value, witness, err := decodeRVA(del.Value, p.cfg.D)
		if err != nil || round < 0 || round >= p.cfg.Rounds {
			continue
		}
		// The RBC instance id must match the claimed round, preventing a
		// Byzantine sender from replaying one broadcast as two rounds.
		if del.ID != fmt.Sprintf("rva-%d", round) {
			continue
		}
		p.pending = append(p.pending, rvaMsg{sender: del.Sender, round: round, value: value, witness: witness})
	}
	outs = append(outs, p.drain()...)
	return outs
}

// drain repeatedly verifies pending messages and advances rounds until a
// fixpoint.
func (p *rvaProcess) drain() []sched.Outgoing {
	var outs []sched.Outgoing
	for {
		progress := false
		// Verification pass.
		var still []rvaMsg
		for _, msg := range p.pending {
			switch p.tryVerify(msg) {
			case verifyOK:
				if p.verified[msg.round] == nil {
					p.verified[msg.round] = make(map[int]vec.V)
				}
				if _, dup := p.verified[msg.round][msg.sender]; !dup {
					p.verified[msg.round][msg.sender] = msg.value
					progress = true
				}
			case verifyWait:
				still = append(still, msg)
			case verifyReject:
				// dropped
			}
		}
		p.pending = still
		// Advancement pass.
		if o, adv := p.tryAdvance(); adv {
			outs = append(outs, o...)
			progress = true
		}
		if !progress {
			return outs
		}
	}
}

type verifyStatus int

const (
	verifyOK verifyStatus = iota
	verifyWait
	verifyReject
)

// tryVerify checks one claimed (sender, round, value, witness) message.
// Round-0 messages carry inputs and are accepted as-is. A round-t message
// (t >= 1) is verified iff the witness is a valid multiset of at least
// n-f distinct senders whose round-(t-1) values we have verified, and the
// value equals the deterministic choice function applied to exactly those
// values. Verification may need to wait for the witnesses' own messages.
func (p *rvaProcess) tryVerify(m rvaMsg) verifyStatus {
	if m.value.Dim() != p.cfg.D {
		return verifyReject
	}
	if m.round == 0 {
		return verifyOK
	}
	if len(m.witness) < witnessQuorum(p.cfg.N, p.cfg.F) || hasDupInts(m.witness) {
		return verifyReject
	}
	prev := p.verified[m.round-1]
	vals := make([]vec.V, 0, len(m.witness))
	for _, w := range m.witness {
		if w < 0 || w >= p.cfg.N {
			return verifyReject
		}
		v, ok := prev[w]
		if !ok {
			return verifyWait // the witness message may still arrive
		}
		vals = append(vals, v)
	}
	expect, _, ok := p.choose(m.round, m.witness, vals)
	if !ok || !expect.Equal(m.value) {
		return verifyReject
	}
	return verifyOK
}

// choose is the deterministic H function (Definition 12): at round 1 it
// selects a point of the relaxed (or exact) intersection over the
// collected round-0 values; at later rounds it averages. Witness ids must
// be pre-sorted by the caller for cache canonicity.
func (p *rvaProcess) choose(round int, witness []int, vals []vec.V) (vec.V, float64, bool) {
	key := fmt.Sprintf("%d|%v", round, witness)
	if e, ok := p.memo.m[key]; ok {
		return e.val, e.delta, e.ok
	}
	var out vec.V
	var delta float64
	ok := true
	if round == 1 {
		set := vec.NewSet(vals...)
		if p.cfg.Mode == ModeExact {
			pt, found := relax.GammaPoint(set, p.cfg.F)
			if !found {
				ok = false
			} else {
				out = pt
			}
		} else {
			switch norm := p.cfg.norm(); {
			case norm == 2:
				r := minimax.DeltaStar2(set, p.cfg.F)
				out, delta = r.Point, r.Delta
			default: // 1 or +Inf, validated up front
				delta, out = relax.DeltaStarPoly(set, p.cfg.F, norm)
			}
		}
	} else {
		out = vec.Mean(vals)
	}
	p.memo.m[key] = memoEntry{val: out, delta: delta, ok: ok}
	return out, delta, ok
}

// tryAdvance broadcasts the next round (or decides) once n-f verified
// values of the current round are available.
func (p *rvaProcess) tryAdvance() ([]sched.Outgoing, bool) {
	if p.decided != nil || p.advanced[p.myRound] {
		return nil, false
	}
	cur := p.verified[p.myRound]
	if len(cur) < witnessQuorum(p.cfg.N, p.cfg.F) {
		return nil, false
	}
	// Canonical witness: all currently verified senders, ascending.
	witness := make([]int, 0, len(cur))
	for s := range cur {
		witness = append(witness, s)
	}
	sort.Ints(witness)
	vals := make([]vec.V, len(witness))
	for i, w := range witness {
		vals[i] = cur[w]
	}
	next := p.myRound + 1
	val, delta, ok := p.choose(next, witness, vals)
	if !ok {
		// Gamma empty in ModeExact: cannot advance (n below the bound).
		return nil, false
	}
	p.advanced[p.myRound] = true
	if next == 1 {
		p.delta = delta
	}
	if next >= p.cfg.Rounds {
		p.decided = val
		return nil, true
	}
	p.myRound = next
	if p.byz != nil && (next >= p.byz.SilentFrom) {
		return nil, true
	}
	if p.byz != nil && next >= p.byz.CorruptFrom {
		bad := val.Clone()
		bad[0] += 1e9
		return p.bs.Broadcast(fmt.Sprintf("rva-%d", next), encodeRVA(next, bad, witness)), true
	}
	return p.bs.Broadcast(fmt.Sprintf("rva-%d", next), encodeRVA(next, val, witness)), true
}

// Done is always false: processes keep serving the reliable-broadcast
// layer for their peers even after deciding; the engine terminates when
// the message queue drains.
func (p *rvaProcess) Done() bool { return false }

func hasDupInts(xs []int) bool {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// RunAsyncBVC runs the asynchronous approximate consensus algorithm
// (Relaxed Verified Averaging in ModeRelaxed, the exact-validity
// averaging baseline in ModeExact). The context is polled once per
// message delivery, so cancellation interrupts a run mid-round.
func RunAsyncBVC(ctx context.Context, cfg *AsyncConfig) (*AsyncResult, error) {
	if err := validateAsync(cfg); err != nil {
		return nil, err
	}
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	memo := &chooseMemo{m: make(map[string]memoEntry)}
	procs := make([]sched.AsyncProcess, cfg.N)
	rvas := make([]*rvaProcess, cfg.N)
	for i := 0; i < cfg.N; i++ {
		rp := &rvaProcess{
			cfg:      cfg,
			self:     i,
			bs:       broadcast.NewBrachaState(cfg.N, cfg.F, i),
			byz:      cfg.Byzantine[i],
			memo:     memo,
			verified: map[int]map[int]vec.V{},
			advanced: map[int]bool{},
		}
		rvas[i] = rp
		procs[i] = rp
	}
	eng := sched.NewAsyncEngine(procs, cfg.Schedule)
	eng.Faults = cfg.Faults
	eng.TraceFn = cfg.Trace
	eng.StopFn = func() error { return canceled(ctx) }
	steps, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &AsyncResult{
		Outputs:  make([]vec.V, cfg.N),
		Delta:    make([]float64, cfg.N),
		Steps:    steps,
		Messages: eng.Messages,
		Faults:   eng.FaultStats,
	}
	for i, rp := range rvas {
		res.Outputs[i] = rp.decided
		res.Delta[i] = rp.delta
	}
	// Convergence trace: per round, the spread of the union of values
	// verified by honest processes (RBC makes these consistent, so the
	// union is well-defined).
	for r := 0; r < cfg.Rounds; r++ {
		bysender := map[int]vec.V{}
		for i, rp := range rvas {
			if _, bad := cfg.Byzantine[i]; bad {
				continue
			}
			for s, v := range rp.verified[r] {
				bysender[s] = v
			}
		}
		if len(bysender) == 0 {
			break
		}
		// Iterate in sorted sender order: the pairwise max below is
		// order-insensitive, but a deterministic vals layout keeps the
		// whole path replay-stable (and bvclint:maporder clean).
		senders := make([]int, 0, len(bysender))
		for s := range bysender {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		vals := make([]vec.V, 0, len(senders))
		for _, s := range senders {
			vals = append(vals, bysender[s])
		}
		spread := 0.0
		for a := 0; a < len(vals); a++ {
			for b := a + 1; b < len(vals); b++ {
				if d := vals[a].Sub(vals[b]).NormP(math.Inf(1)); d > spread {
					spread = d
				}
			}
		}
		res.RoundSpread = append(res.RoundSpread, spread)
	}
	asyncRuns.Inc()
	runsTotal.Inc()
	roundsTotal.Add(int64(len(res.RoundSpread)))
	messagesTotal.Add(int64(res.Messages))
	return res, nil
}

func validateAsync(cfg *AsyncConfig) error {
	if cfg.N < 2 {
		return fmt.Errorf("%w: n must be >= 2, got %d", ErrTooFewProcesses, cfg.N)
	}
	if len(cfg.Inputs) != cfg.N {
		return fmt.Errorf("%w: %d inputs for n=%d", ErrBadInputs, len(cfg.Inputs), cfg.N)
	}
	if len(cfg.Byzantine) > cfg.F {
		return fmt.Errorf("%w: %d Byzantine with f=%d", ErrTooManyFaults, len(cfg.Byzantine), cfg.F)
	}
	if cfg.N < minProcessesRBC(cfg.F) {
		return fmt.Errorf("%w: reliable broadcast requires n >= 3f+1 (n=%d, f=%d)", ErrTooFewProcesses, cfg.N, cfg.F)
	}
	if cfg.Rounds < 1 {
		return fmt.Errorf("%w: got %d", ErrBadRounds, cfg.Rounds)
	}
	if n := cfg.norm(); n != 1 && n != 2 && !math.IsInf(n, 1) {
		return fmt.Errorf("%w: NormP must be 1, 2 or +Inf, got %v", ErrBadNorm, n)
	}
	for i, v := range cfg.Inputs {
		if v.Dim() != cfg.D {
			return fmt.Errorf("%w: input %d dimension %d != %d", ErrBadDimension, i, v.Dim(), cfg.D)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrBadFaults, err)
		}
	}
	return nil
}

// norm returns the configured round-0 norm, defaulting to 2.
func (c *AsyncConfig) norm() float64 {
	if c.NormP == 0 {
		return 2
	}
	return c.NormP
}

// HonestIDs returns the non-Byzantine ids of an async config.
func (c *AsyncConfig) HonestIDs() []int {
	var ids []int
	for i := 0; i < c.N; i++ {
		if _, bad := c.Byzantine[i]; !bad {
			ids = append(ids, i)
		}
	}
	return ids
}

// NonFaultyInputs returns the multiset of honest inputs.
func (c *AsyncConfig) NonFaultyInputs() *vec.Set {
	s := vec.NewSet()
	for _, i := range c.HonestIDs() {
		s.Append(c.Inputs[i])
	}
	return s
}
