package consensus

// The distributed node layer: RunSyncNode executes ONE process of a
// synchronous consensus instance over a transport.Transport, while its
// peers run the same protocol in other goroutines, processes or
// machines. Step 1 is the same EIG state machine the simulation drives
// (broadcast.EIGNode), run in lockstep by transport.RunSync with
// delivery semantics identical to sched.SyncEngine; Step 2 applies a
// Chooser to the locally decided multiset. Deterministic state machines
// plus identical delivery order means a cluster of RunSyncNode calls
// decides bit-for-bit the same vectors as the simulation of the same
// instance — the facade's parity tests pin that equality.
//
// Only the oral-messages synchronous protocols run here: signed
// broadcast and seeded link faults are simulation-only features and
// return an error chaining transport.ErrUnsupported.

import (
	"context"
	"fmt"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/transport"
	"relaxedbvc/internal/vec"
)

// NodeResult is the outcome of one node's distributed synchronous run —
// the per-process slice of the simulation's SyncResult plus local
// traffic statistics.
type NodeResult struct {
	// Output is this node's decision vector.
	Output vec.V
	// Delta is the relaxation radius used (ALGO only, else 0).
	Delta float64
	// AgreedSet is the multiset this node obtained from Step 1; honest
	// nodes of the same instance obtain identical multisets.
	AgreedSet *vec.Set
	// Rounds is the number of lockstep rounds (equal on all nodes and
	// to the simulation's Rounds for the same instance).
	Rounds int
	// Delivered and FramesSent count this node's local Step-1 traffic.
	Delivered, FramesSent int
	// Drops counts sends suppressed by a scripted local Byzantine
	// behavior; TreeNodes is the local EIG tree size.
	Drops, TreeNodes int
}

// validateNode is the lenient, single-node counterpart of validate: a
// distributed node knows only its own input, so Inputs entries for
// other processes may be nil.
func (c *SyncConfig) validateNode(self int) error {
	if c.N < 2 {
		return fmt.Errorf("%w: n must be >= 2, got %d", ErrTooFewProcesses, c.N)
	}
	if self < 0 || self >= c.N {
		return fmt.Errorf("%w: self id %d outside [0,%d)", ErrBadInputs, self, c.N)
	}
	if c.F < 0 || c.F >= c.N || len(c.Byzantine) > c.F {
		return fmt.Errorf("%w: f=%d with n=%d and %d scripted behaviors", ErrTooManyFaults, c.F, c.N, len(c.Byzantine))
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("%w: %d inputs for n=%d", ErrBadInputs, len(c.Inputs), c.N)
	}
	if c.Inputs[self] == nil {
		return fmt.Errorf("%w: node %d has no input", ErrBadInputs, self)
	}
	for i, v := range c.Inputs {
		if v != nil && v.Dim() != c.D {
			return fmt.Errorf("%w: input %d has dimension %d, want %d", ErrBadDimension, i, v.Dim(), c.D)
		}
	}
	if c.SignedBroadcast || len(c.ByzantineSigned) > 0 {
		return fmt.Errorf("%w: signed broadcast runs only on the simulation backend", transport.ErrUnsupported)
	}
	if c.Faults != nil {
		return fmt.Errorf("%w: seeded link faults run only on the simulation backend", transport.ErrUnsupported)
	}
	return nil
}

// RunSyncNode runs process tr.Self() of the synchronous instance cfg
// over tr, deciding with choose. It blocks until the whole cluster's
// Step 1 completes (every node must eventually run, or ctx must
// cancel). The transport is not closed — the caller owns its lifecycle.
func RunSyncNode(ctx context.Context, tr transport.Transport, cfg *SyncConfig, choose Chooser) (*NodeResult, error) {
	self := tr.Self()
	if tr.N() != cfg.N {
		errorsTotal.Inc()
		return nil, fmt.Errorf("%w: transport has %d nodes, config says n=%d", ErrBadInputs, tr.N(), cfg.N)
	}
	if err := cfg.validateNode(self); err != nil {
		errorsTotal.Inc()
		return nil, err
	}
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	def := cfg.defaultVec()
	node := broadcast.NewEIGNode(cfg.N, cfg.F, self,
		broadcast.EncodeVec(cfg.Inputs[self]), cfg.Byzantine[self], broadcast.EncodeVec(def))
	st, err := transport.RunSync(ctx, tr, node, 0, cfg.Trace)
	if err != nil {
		errorsTotal.Inc()
		return nil, fmt.Errorf("consensus: node %d step 1: %w", self, err)
	}
	s := vec.NewSet()
	for c := 0; c < cfg.N; c++ {
		v, err := broadcast.DecodeVec(node.Decided()[c])
		if err != nil || v.Dim() != cfg.D {
			v = def.Clone()
		}
		s.Append(v)
	}
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out, delta, err := choose(s)
	if err != nil {
		errorsTotal.Inc()
		return nil, fmt.Errorf("consensus: node %d choice failed: %w", self, err)
	}
	return &NodeResult{
		Output:     out.Clone(),
		Delta:      delta,
		AgreedSet:  s,
		Rounds:     st.Rounds,
		Delivered:  st.Delivered,
		FramesSent: st.FramesSent,
		Drops:      node.Drops(),
		TreeNodes:  node.TreeNodes(),
	}, nil
}
