package consensus

// Engine observability, published into the process-wide default metrics
// registry. These counters back the reproduced paper claims: rounds and
// messages are the complexity quantities of Theorems 1-6 (f+1 broadcast
// rounds, O(n^(f+1)) oral messages), Byzantine drops and EIG tree nodes
// come from Step-1 broadcast (see internal/broadcast), and the Step-2
// choice time is where the delta*-relaxation LP/minimax work of Table 1
// lands. Per-run values are carried on the result structs and surfaced
// as RunMetrics by the root package's Run.
//
// The counters are bumped by the internal Run* entry points directly, so
// they fire whether a run comes through the public Spec API or a caller
// (the experiment harness) invokes the engines directly.

import "relaxedbvc/internal/metrics"

var (
	runsTotal     = metrics.DefaultCounter("consensus_runs_total")
	roundsTotal   = metrics.DefaultCounter("consensus_rounds_total")
	messagesTotal = metrics.DefaultCounter("consensus_messages_total")
	errorsTotal   = metrics.DefaultCounter("consensus_errors_total")
	step2Seconds  = metrics.DefaultHistogram("consensus_step2_seconds", metrics.TimeBuckets())
	asyncRuns     = metrics.DefaultCounter("consensus_async_runs_total")
	iterRuns      = metrics.DefaultCounter("consensus_iterative_runs_total")
)

// countSync records the aggregate counters of one finished synchronous
// run.
func countSync(res *SyncResult) {
	runsTotal.Inc()
	roundsTotal.Add(int64(res.Rounds))
	messagesTotal.Add(int64(res.Messages))
}
