package consensus

import (
	"context"

	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

func iterLiar(rng *rand.Rand, d int, scale float64) IterByzantine {
	return IterByzantineFunc(func(round, to int, honest vec.V) vec.V {
		v := vec.New(d)
		for i := range v {
			v[i] = rng.NormFloat64() * scale
		}
		return v
	})
}

func TestIterativeConvergesAllHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	// n >= (d+2)f+1: d=2, f=1 -> n=5.
	cfg := &IterConfig{
		N: 5, F: 1, D: 2,
		Inputs: randInputs(rng, 5, 2, 5),
		Rounds: 15,
	}
	res, err := RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := res.RangeHistory[0]
	final := res.RangeHistory[len(res.RangeHistory)-1]
	if final > initial*1e-3 {
		t.Fatalf("range %v -> %v: insufficient contraction", initial, final)
	}
	// Validity: every estimate stays in the hull of the initial honest
	// inputs (safe points never leave it).
	nonFaulty := vec.NewSet(cfg.Inputs...)
	for i := 0; i < cfg.N; i++ {
		if !CheckExactValidity(res.Outputs[i], nonFaulty, 1e-6) {
			t.Fatalf("estimate %v escaped the input hull", res.Outputs[i])
		}
	}
}

func TestIterativeConvergesUnderAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for name, mk := range map[string]func() IterByzantine{
		"random-liar": func() IterByzantine { return iterLiar(rand.New(rand.NewSource(9)), 2, 50) },
		"silent": func() IterByzantine {
			return IterByzantineFunc(func(int, int, vec.V) vec.V { return nil })
		},
		"fixed-far": func() IterByzantine {
			far := vec.Of(1e3, -1e3)
			return IterByzantineFunc(func(int, int, vec.V) vec.V { return far })
		},
		"two-faced": func() IterByzantine {
			return IterByzantineFunc(func(_, to int, _ vec.V) vec.V {
				if to%2 == 0 {
					return vec.Of(100, 100)
				}
				return vec.Of(-100, -100)
			})
		},
	} {
		cfg := &IterConfig{
			N: 5, F: 1, D: 2,
			Inputs:    randInputs(rng, 5, 2, 5),
			Rounds:    18,
			Byzantine: map[int]IterByzantine{4: mk()},
		}
		res, err := RunIterativeBVC(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := res.RangeHistory
		if h[len(h)-1] > h[0]*1e-2 {
			t.Fatalf("%s: range %v -> %v", name, h[0], h[len(h)-1])
		}
		// Honest estimates remain in the initial honest hull every run.
		honestInputs := vec.NewSet(cfg.Inputs[:4]...)
		for i := 0; i < 4; i++ {
			if !CheckExactValidity(res.Outputs[i], honestInputs, 1e-6) {
				t.Fatalf("%s: estimate %v escaped honest hull", name, res.Outputs[i])
			}
		}
	}
}

func TestIterativeRangeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	cfg := &IterConfig{
		N: 6, F: 1, D: 3,
		Inputs:    randInputs(rng, 6, 3, 3),
		Rounds:    10,
		Byzantine: map[int]IterByzantine{5: iterLiar(rand.New(rand.NewSource(3)), 3, 30)},
	}
	res, err := RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.RangeHistory); i++ {
		if res.RangeHistory[i] > res.RangeHistory[i-1]+1e-9 {
			t.Fatalf("range grew at round %d: %v", i, res.RangeHistory)
		}
	}
	if len(res.RangeHistory) != cfg.Rounds+1 {
		t.Fatalf("history length %d, want %d", len(res.RangeHistory), cfg.Rounds+1)
	}
}

func TestIterativeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	good := randInputs(rng, 5, 2, 1)
	bad := []*IterConfig{
		{N: 1, F: 0, D: 2, Inputs: good[:1], Rounds: 1},
		{N: 5, F: 0, D: 2, Inputs: good, Rounds: 1, Byzantine: map[int]IterByzantine{0: iterLiar(rng, 2, 1)}},
		{N: 5, F: 1, D: 2, Inputs: good, Rounds: 0},
		{N: 5, F: 1, D: 3, Inputs: good, Rounds: 1},
	}
	for i, cfg := range bad {
		if _, err := RunIterativeBVC(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestIterativeInstantConvergenceWithoutEquivocation(t *testing.T) {
	// Without a two-faced adversary every honest process receives the
	// same multiset and computes the same safe point: the range collapses
	// to ~0 after a single round.
	rng := rand.New(rand.NewSource(115))
	cfg := &IterConfig{
		N: 5, F: 1, D: 2,
		Inputs: randInputs(rng, 5, 2, 5),
		Rounds: 3,
	}
	res, err := RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RangeHistory[1] > 1e-9 {
		t.Fatalf("range after one honest round = %v", res.RangeHistory[1])
	}
}

func TestIterativeGeometricDecayUnderEquivocation(t *testing.T) {
	// A two-faced adversary keeps honest views distinct, so convergence
	// is gradual; the range must still decay geometrically (ratio < 0.95
	// in most rounds until numerically converged).
	rng := rand.New(rand.NewSource(116))
	cfg := &IterConfig{
		N: 5, F: 1, D: 2,
		Inputs: randInputs(rng, 5, 2, 5),
		Rounds: 12,
		Byzantine: map[int]IterByzantine{4: IterByzantineFunc(func(round, to int, _ vec.V) vec.V {
			// Different lie per recipient per round.
			v := vec.New(2)
			v[0] = float64((to*7+round*13)%11) - 5
			v[1] = float64((to*3+round*5)%7) - 3
			return v.Scale(10)
		})},
	}
	res, err := RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.RangeHistory
	decayOrConverged := 0
	for i := 1; i < len(h); i++ {
		if h[i] < 1e-9 || h[i]/h[i-1] < 0.95 {
			decayOrConverged++
		}
	}
	if decayOrConverged < (len(h)-1)*2/3 {
		t.Fatalf("insufficient decay: history %v", h)
	}
	if h[len(h)-1] > h[0]*0.05 {
		t.Fatalf("range %v -> %v after %d rounds", h[0], h[len(h)-1], cfg.Rounds)
	}
}

// Regression for the ill-conditioned "sliver" regime: a Byzantine value
// orders of magnitude away from a tight honest cluster makes the
// Gamma subset hulls nearly degenerate. The safe-point computation must
// keep the contraction property down to a small numerical floor (the
// minimax polish's accuracy along the sliver), and never blow up.
func TestIterativeSliverRegimeRegression(t *testing.T) {
	inputs := []vec.V{
		vec.Of(1.0, 1.0), vec.Of(3.0, 1.2), vec.Of(2.8, 3.1), vec.Of(1.1, 2.9), vec.Of(0, 0),
	}
	cfg := &IterConfig{
		N: 5, F: 1, D: 2, Inputs: inputs, Rounds: 10,
		Byzantine: map[int]IterByzantine{
			4: IterByzantineFunc(func(round, to int, _ vec.V) vec.V {
				return vec.Of(float64((to*13+round*7)%9)*30-120, float64((to*5+round*11)%9)*30-120)
			}),
		},
	}
	res, err := RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.RangeHistory
	initial := h[0]
	const noiseFloor = 1e-4 // conservative bound on the solver floor here
	for i := 1; i < len(h); i++ {
		// Above the noise floor the range must not grow; at the floor,
		// only sub-floor jitter is tolerated.
		if h[i-1] > noiseFloor && h[i] > h[i-1]*(1+1e-6) {
			t.Fatalf("range grew above the noise floor at round %d: %v -> %v (history %v)", i, h[i-1], h[i], h)
		}
		if h[i] > noiseFloor && h[i] > initial {
			t.Fatalf("range exceeded initial spread at round %d: %v", i, h[i])
		}
	}
	if final := h[len(h)-1]; final > noiseFloor {
		t.Fatalf("failed to reach the noise floor: final range %v (history %v)", final, h)
	}
	// Validity within a noise-floor band of the honest hull.
	honestInputs := vec.NewSet(inputs[:4]...)
	for i := 0; i < 4; i++ {
		if !CheckExactValidity(res.Outputs[i], honestInputs, noiseFloor) {
			t.Fatalf("estimate %v left the honest hull beyond the noise band", res.Outputs[i])
		}
	}
}
