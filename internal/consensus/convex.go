package consensus

import (
	"context"
	"fmt"
	"math"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// Convex hull consensus (Tseng-Vaidya [16], Byzantine variant [15]) is
// the generalization the paper cites in Related Work: instead of a single
// vector, the non-faulty processes agree on an identical convex POLYTOPE
// contained in the convex hull of their inputs. The largest such
// adversary-safe region is exactly Gamma(S); this implementation outputs
// a deterministic inner approximation of Gamma(S) — its support points in
// a fixed direction fan — so all non-faulty processes compute the same
// polytope, and the approximation refines as Directions grows.

// ConvexResult is the outcome of a convex hull consensus run.
type ConvexResult struct {
	// Vertices[i] holds process i's agreed polytope vertices (identical
	// across honest processes; possibly with repeats when Gamma is
	// lower-dimensional).
	Vertices [][]vec.V
	// Rounds and Messages are broadcast statistics.
	Rounds, Messages int
	// Faults counts injected link-fault events during Step 1.
	Faults sched.FaultStats
}

// minDirections is the floor on the direction-fan size: the 2d signed
// coordinate axes, below which the supporting polytope is unbounded.
func minDirections(d int) int { return 2 * d }

// directionFan returns a deterministic set of at least `count` unit
// directions in R^d: the 2d signed axes followed by normalized lattice
// diagonals from a fixed linear-congruential sequence. All processes use
// the same fan, which is what makes the output polytope identical.
func directionFan(d, count int) []vec.V {
	var dirs []vec.V
	for i := 0; i < d; i++ {
		e := vec.New(d)
		e[i] = 1
		dirs = append(dirs, e)
		ne := vec.New(d)
		ne[i] = -1
		dirs = append(dirs, ne)
	}
	// Deterministic pseudo-directions (no time/global rand involved).
	state := uint64(88172645463325252)
	next := func() float64 {
		// xorshift64
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(int64(state%2000001)-1000000) / 1000000.0
	}
	for len(dirs) < count {
		v := vec.New(d)
		for j := range v {
			v[j] = next()
		}
		if n := v.Norm2(); n > 1e-9 {
			dirs = append(dirs, v.Scale(1/n))
		}
	}
	return dirs
}

// convexTol is the hull-membership tolerance for accepting an LP support
// point as a genuine point of Gamma(S): loose enough to absorb simplex
// round-off, an order of magnitude tighter than the simtest oracle's
// validity tolerance so accepted vertices always pass it.
//
//bvclint:allow floateq -- convexTol is the package's certified-vertex hull-membership gate, an order tighter than the oracle tolerance
const convexTol = 1e-7

// inEveryHull reports whether pt lies within tol of every hull in fam,
// i.e. pt is (approximately) a point of the intersection Gamma(S).
func inEveryHull(fam []*vec.Set, pt vec.V, tol float64) bool {
	for _, s := range fam {
		if d, _ := geom.Dist2(pt, s); d > tol {
			return false
		}
	}
	return true
}

// gammaAnchor computes a certified point of Gamma(S) = the intersection
// of the dropped-subset hulls: first the memoized feasibility LP over the
// family, then an exhaustive Tverberg partition scan as backup (a
// depth-(f+1) Tverberg point lies in every dropped-subset hull, because
// each subset drops only f points and so keeps at least one partition
// block intact). ok=false means Gamma(S) is genuinely empty.
func gammaAnchor(y *vec.Set, f int, fam []*vec.Set) (vec.V, bool) {
	if pt, ok := relax.GammaPoint(y, f); ok && inEveryHull(fam, pt, convexTol) {
		return pt, true
	}
	if pt, ok := tverberg.Point(y, f); ok && inEveryHull(fam, pt, convexTol) {
		return pt, true
	}
	return nil, false
}

// RunConvexHullConsensus runs Byzantine convex hull consensus: Step 1
// broadcasts all inputs (oral or signed per cfg); Step 2 computes the
// support points of Gamma(S) along a deterministic fan of `directions`
// directions (at least 2d are always used).
//
// Bounds (Tseng-Vaidya, arXiv:1307.1332): Gamma(S) is guaranteed
// non-empty when n >= max(3f+1, (d+1)f+1) — the Tverberg existence floor
// — but only guaranteed full-dimensional at n >= (d+2)f+1. In the gap
// (e.g. n=5, f=1, d=3) Gamma(S) is generically a single degenerate point,
// where the support LP is numerically fragile: it can report spurious
// infeasibility or return an "optimal" vertex outside the intersection.
// Each support point is therefore validated against every dropped-subset
// hull, and fragile directions fall back to a certified Gamma(S) anchor
// point, so the output polytope (possibly a single repeated vertex) is
// always contained in Gamma(S).
func RunConvexHullConsensus(ctx context.Context, cfg *SyncConfig, directions int) (*ConvexResult, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	minN := 3*cfg.F + 1
	if t := (cfg.D+1)*cfg.F + 1; t > minN {
		minN = t
	}
	if cfg.N < minN {
		errorsTotal.Inc()
		return nil, fmt.Errorf("%w: convex hull consensus requires n >= max(3f+1, (d+1)f+1) = %d, got n=%d", ErrTooFewProcesses, minN, cfg.N)
	}
	info, err := step1(cfg)
	if err != nil {
		errorsTotal.Inc()
		return nil, err
	}
	sets := info.sets
	if directions < minDirections(cfg.D) {
		directions = minDirections(cfg.D)
	}
	fan := directionFan(cfg.D, directions)
	cache := make(map[string][]vec.V)
	res := &ConvexResult{
		Vertices: make([][]vec.V, cfg.N),
		Rounds:   info.rounds,
		Messages: info.messages,
		Faults:   info.faults,
	}
	for i := 0; i < cfg.N; i++ {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		key := setKey(sets[i])
		verts, ok := cache[key]
		if !ok {
			fam := relax.DroppedSubsets(sets[i], cfg.F)
			var anchor vec.V
			for _, dir := range fan {
				pt, feasible := relax.SupportPoint(fam, dir)
				if !feasible || !inEveryHull(fam, pt, convexTol) {
					// Degenerate Gamma(S): substitute the certified
					// anchor so the vertex stays inside the
					// intersection. All honest processes hold the same
					// multiset after step 1, so they substitute the
					// same anchor and agreement is preserved.
					if anchor == nil {
						a, ok := gammaAnchor(sets[i], cfg.F, fam)
						if !ok {
							return nil, fmt.Errorf("%w: Gamma(S) is empty (n=%d, f=%d, d=%d)", ErrEmptyIntersection, cfg.N, cfg.F, cfg.D)
						}
						anchor = a
					}
					pt = anchor
				}
				verts = append(verts, pt)
			}
			cache[key] = verts
		}
		res.Vertices[i] = verts
	}
	runsTotal.Inc()
	roundsTotal.Add(int64(res.Rounds))
	messagesTotal.Add(int64(res.Messages))
	return res, nil
}

// PolytopeAgreementError returns the maximum over vertex indices of the
// L-infinity distance between two processes' polytope vertex lists
// (0 = identical polytopes).
func PolytopeAgreementError(res *ConvexResult, a, b int) float64 {
	va, vb := res.Vertices[a], res.Vertices[b]
	if len(va) != len(vb) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range va {
		if d := va[i].Sub(vb[i]).NormP(math.Inf(1)); d > worst {
			worst = d
		}
	}
	return worst
}

// CheckConvexValidity reports whether every vertex of the agreed polytope
// lies in the convex hull of the non-faulty inputs (within tol) — the
// validity condition of convex hull consensus.
func CheckConvexValidity(vertices []vec.V, nonFaulty *vec.Set, tol float64) bool {
	for _, v := range vertices {
		d, _ := geom.Dist2(v, nonFaulty)
		if d > tol {
			return false
		}
	}
	return true
}
