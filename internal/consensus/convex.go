package consensus

import (
	"context"
	"fmt"
	"math"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// Convex hull consensus (Tseng-Vaidya [16], Byzantine variant [15]) is
// the generalization the paper cites in Related Work: instead of a single
// vector, the non-faulty processes agree on an identical convex POLYTOPE
// contained in the convex hull of their inputs. The largest such
// adversary-safe region is exactly Gamma(S); this implementation outputs
// a deterministic inner approximation of Gamma(S) — its support points in
// a fixed direction fan — so all non-faulty processes compute the same
// polytope, and the approximation refines as Directions grows.

// ConvexResult is the outcome of a convex hull consensus run.
type ConvexResult struct {
	// Vertices[i] holds process i's agreed polytope vertices (identical
	// across honest processes; possibly with repeats when Gamma is
	// lower-dimensional).
	Vertices [][]vec.V
	// Rounds and Messages are broadcast statistics.
	Rounds, Messages int
	// Faults counts injected link-fault events during Step 1.
	Faults sched.FaultStats
}

// directionFan returns a deterministic set of at least `count` unit
// directions in R^d: the 2d signed axes followed by normalized lattice
// diagonals from a fixed linear-congruential sequence. All processes use
// the same fan, which is what makes the output polytope identical.
func directionFan(d, count int) []vec.V {
	var dirs []vec.V
	for i := 0; i < d; i++ {
		e := vec.New(d)
		e[i] = 1
		dirs = append(dirs, e)
		ne := vec.New(d)
		ne[i] = -1
		dirs = append(dirs, ne)
	}
	// Deterministic pseudo-directions (no time/global rand involved).
	state := uint64(88172645463325252)
	next := func() float64 {
		// xorshift64
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(int64(state%2000001)-1000000) / 1000000.0
	}
	for len(dirs) < count {
		v := vec.New(d)
		for j := range v {
			v[j] = next()
		}
		if n := v.Norm2(); n > 1e-9 {
			dirs = append(dirs, v.Scale(1/n))
		}
	}
	return dirs
}

// RunConvexHullConsensus runs Byzantine convex hull consensus: Step 1
// broadcasts all inputs (oral or signed per cfg); Step 2 computes the
// support points of Gamma(S) along a deterministic fan of `directions`
// directions (at least 2d are always used). Requires Gamma(S) to be
// non-empty, i.e. n >= max(3f+1, (d+1)f+1) against a worst-case
// adversary.
func RunConvexHullConsensus(ctx context.Context, cfg *SyncConfig, directions int) (*ConvexResult, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	info, err := step1(cfg)
	if err != nil {
		errorsTotal.Inc()
		return nil, err
	}
	sets := info.sets
	if directions < 2*cfg.D {
		directions = 2 * cfg.D
	}
	fan := directionFan(cfg.D, directions)
	cache := make(map[string][]vec.V)
	res := &ConvexResult{
		Vertices: make([][]vec.V, cfg.N),
		Rounds:   info.rounds,
		Messages: info.messages,
		Faults:   info.faults,
	}
	for i := 0; i < cfg.N; i++ {
		if err := canceled(ctx); err != nil {
			return nil, err
		}
		key := setKey(sets[i])
		verts, ok := cache[key]
		if !ok {
			fam := relax.DroppedSubsets(sets[i], cfg.F)
			for _, dir := range fan {
				pt, feasible := relax.SupportPoint(fam, dir)
				if !feasible {
					return nil, fmt.Errorf("%w: Gamma(S) is empty (n=%d below the bound?)", ErrEmptyIntersection, cfg.N)
				}
				verts = append(verts, pt)
			}
			cache[key] = verts
		}
		res.Vertices[i] = verts
	}
	runsTotal.Inc()
	roundsTotal.Add(int64(res.Rounds))
	messagesTotal.Add(int64(res.Messages))
	return res, nil
}

// PolytopeAgreementError returns the maximum over vertex indices of the
// L-infinity distance between two processes' polytope vertex lists
// (0 = identical polytopes).
func PolytopeAgreementError(res *ConvexResult, a, b int) float64 {
	va, vb := res.Vertices[a], res.Vertices[b]
	if len(va) != len(vb) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range va {
		if d := va[i].Sub(vb[i]).NormP(math.Inf(1)); d > worst {
			worst = d
		}
	}
	return worst
}

// CheckConvexValidity reports whether every vertex of the agreed polytope
// lies in the convex hull of the non-faulty inputs (within tol) — the
// validity condition of convex hull consensus.
func CheckConvexValidity(vertices []vec.V, nonFaulty *vec.Set, tol float64) bool {
	for _, v := range vertices {
		d, _ := geom.Dist2(v, nonFaulty)
		if d > tol {
			return false
		}
	}
	return true
}
