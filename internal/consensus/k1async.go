package consensus

import (
	"context"
	"fmt"

	"relaxedbvc/internal/vec"
)

// RunK1AsyncBVC runs 1-relaxed approximate BVC in an asynchronous system
// via the Section 5.3 reduction: one independent scalar (d = 1)
// approximate consensus instance per coordinate, each a ModeExact
// verified-averaging run. For d = 1 the exact-validity bound
// (d+2)f+1 = 3f+1 coincides with the reliable-broadcast requirement, so
// n >= 3f+1 suffices for every vector dimension — the k = 1 entry of the
// paper's bounds table.
//
// The output satisfies 1-relaxed validity: every coordinate of every
// honest output lies in the interval spanned by the non-faulty inputs'
// corresponding coordinates.
func RunK1AsyncBVC(ctx context.Context, cfg *AsyncConfig) (*AsyncResult, error) {
	if err := validateAsync(cfg); err != nil {
		return nil, err
	}
	out := &AsyncResult{
		Outputs: make([]vec.V, cfg.N),
		Delta:   make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		out.Outputs[i] = vec.New(cfg.D)
	}
	for j := 0; j < cfg.D; j++ {
		sub := &AsyncConfig{
			N: cfg.N, F: cfg.F, D: 1,
			Inputs:   make([]vec.V, cfg.N),
			Rounds:   cfg.Rounds,
			Mode:     ModeExact,
			Schedule: cfg.Schedule,
			Faults:   cfg.Faults,
			Trace:    cfg.Trace,
		}
		for i, v := range cfg.Inputs {
			sub.Inputs[i] = vec.Of(v[j])
		}
		if cfg.Byzantine != nil {
			sub.Byzantine = make(map[int]*AsyncByzantine, len(cfg.Byzantine))
			for id, b := range cfg.Byzantine {
				nb := &AsyncByzantine{
					SilentFrom:  b.SilentFrom,
					CorruptFrom: b.CorruptFrom,
					MuteRBC:     b.MuteRBC,
				}
				if b.Input != nil {
					nb.Input = vec.Of(b.Input[j])
				}
				sub.Byzantine[id] = nb
			}
		}
		res, err := RunAsyncBVC(ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("consensus: coordinate %d: %w", j, err)
		}
		for i := 0; i < cfg.N; i++ {
			if res.Outputs[i] == nil {
				out.Outputs[i] = nil
				continue
			}
			if out.Outputs[i] != nil {
				out.Outputs[i][j] = res.Outputs[i][0]
			}
		}
		out.Steps += res.Steps
		out.Messages += res.Messages
		out.Faults.Add(res.Faults)
	}
	return out, nil
}
