package consensus

// Quorum thresholds of the consensus protocols, named so every
// comparison in the package traces to one audited definition (enforced
// by bvclint's quorumgate analyzer).

// witnessQuorum is the n-f threshold RVA uses both to accept a
// round-r message's witness set and to advance its own round: n-f is
// the largest count a correct process can wait for without blocking on
// the f potentially silent faulty processes.
func witnessQuorum(n, f int) int { return n - f }

// minProcessesRBC is the n >= 3f+1 floor the reliable-broadcast layer
// under the vector protocols requires.
func minProcessesRBC(f int) int { return 3*f + 1 }
