package consensus

import (
	"context"
	"fmt"
	"math"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// Iterative approximate Byzantine vector consensus (the algorithm family
// of Vaidya [18], complete-graph case, cited in Related Work): processes
// keep a current estimate, exchange it every round with plain
// point-to-point messages (no Byzantine broadcast, no message history),
// and move to a deterministic safe point of the received multiset —
// here, the centroid of axis-direction support points of Gamma(received,
// f). Because the safe point lies in the convex hull of every
// (n-f)-subset of the received values, it lies in the hull of the honest
// values, so the honest estimates' hull shrinks monotonically; the range
// contracts geometrically in practice for n >= (d+2)f+1.
//
// Numerical caveat: when a Byzantine value is orders of magnitude larger
// than the honest spread, the Gamma geometry degenerates into thin
// slivers and the safe point is accurate only to a small noise floor
// (see projectIntoIntersection); contraction holds down to that floor.

// IterByzantine scripts a Byzantine process in the iterative protocol:
// each round it may send an arbitrary per-recipient vector.
type IterByzantine interface {
	// Value returns what the process sends to `to` in the given round;
	// nil means silence.
	Value(round, to int, honest vec.V) vec.V
}

// IterByzantineFunc adapts a function to IterByzantine.
type IterByzantineFunc func(round, to int, honest vec.V) vec.V

// Value implements IterByzantine.
func (f IterByzantineFunc) Value(round, to int, honest vec.V) vec.V {
	return f(round, to, honest)
}

// IterConfig configures an iterative run.
type IterConfig struct {
	N, F, D int
	Inputs  []vec.V
	Rounds  int
	// Byzantine maps ids to per-round behaviors (len <= F).
	Byzantine map[int]IterByzantine
	// Faults, when set, injects seeded link faults. The lockstep model
	// only tolerates duplication; other patterns complete the run and
	// return an error wrapping sched.ErrDeliveryViolated.
	Faults *sched.LinkFaults
	// Trace, when set, observes every delivered message.
	Trace func(sched.Message)
}

// IterResult is the outcome of an iterative run.
type IterResult struct {
	// Outputs[i] is process i's estimate after Rounds rounds.
	Outputs []vec.V
	// RangeHistory[r] is the maximum pairwise L-inf distance of honest
	// estimates entering round r (RangeHistory[0] = initial spread).
	RangeHistory []float64
	Messages     int
	// Faults counts injected link-fault events (zero when no fault policy
	// was configured).
	Faults sched.FaultStats
}

type iterProcess struct {
	cfg    *IterConfig
	self   int
	value  vec.V
	byz    IterByzantine
	rounds int
	done   bool
}

func (p *iterProcess) emit(round int) []sched.Outgoing {
	var outs []sched.Outgoing
	for to := 0; to < p.cfg.N; to++ {
		if to == p.self {
			continue
		}
		v := p.value
		if p.byz != nil {
			v = p.byz.Value(round, to, p.value)
			if v == nil {
				continue
			}
		}
		outs = append(outs, sched.Outgoing{To: to, Tag: "iter", Data: broadcast.EncodeVec(v)})
	}
	return outs
}

func (p *iterProcess) Start() []sched.Outgoing { return p.emit(0) }

func (p *iterProcess) Step(round int, delivered []sched.Message) []sched.Outgoing {
	received := vec.NewSet(p.value.Clone())
	// One estimate per sender per round: link-level duplicates must not
	// double a Byzantine value's weight in the Gamma(received, f) update
	// (dropping f values can only exclude f copies).
	seen := make(map[int]bool, len(delivered))
	for _, m := range delivered {
		if m.Tag != "iter" || seen[m.From] {
			continue
		}
		seen[m.From] = true
		v, err := broadcast.DecodeVec(m.Data)
		if err != nil || v.Dim() != p.cfg.D {
			continue
		}
		received.Append(v)
	}
	// Update rule: deterministic interior point of Gamma(received, f),
	// provided enough values arrived. Silent faulty processes shrink the
	// multiset, which only helps (Lemma 16).
	if received.Len() > p.cfg.F {
		if pt, ok := safeGammaCentroid(received, p.cfg.F); ok {
			p.value = pt
		}
	}
	p.rounds++
	if p.rounds >= p.cfg.Rounds {
		p.done = true
		return nil
	}
	return p.emit(round + 1)
}

func (p *iterProcess) Done() bool { return p.done }

// safeGammaCentroid returns the mean of the +/- axis support points of
// Gamma(S, f) — an interior-leaning point of the safe area — refined by
// cyclic projections so it truly lies in every subset hull. ok=false
// when Gamma is empty.
//
// The refinement matters: when a Byzantine value is far from a tight
// honest cluster, the subset hulls containing it are near-degenerate
// slivers and the support-point LPs (whose tolerances scale with the
// Byzantine magnitude) can return points visibly outside the honest
// hull, breaking the contraction invariant. Cyclic projection with
// Wolfe's min-norm algorithm operates at the local geometry's own scale
// and restores the invariant to ~1e-12.
func safeGammaCentroid(s *vec.Set, f int) (vec.V, bool) {
	fam := relax.DroppedSubsets(s, f)
	d := s.Dim()
	sum := vec.New(d)
	count := 0
	for j := 0; j < d; j++ {
		for _, sign := range []float64{1, -1} {
			dir := vec.New(d)
			dir[j] = sign
			pt, ok := relax.SupportPoint(fam, dir)
			if !ok {
				return nil, false
			}
			sum.AddInPlace(pt)
			count++
		}
	}
	return projectIntoIntersection(sum.Scale(1/float64(count)), fam), true
}

// projectIntoIntersection moves pt into the intersection of the hulls of
// the family: a few cyclic-projection sweeps (cheap, removes the bulk of
// the LP slack), then — if the geometry is so ill-conditioned that POCS
// crawls (thin slivers formed by a far Byzantine value next to a tight
// honest cluster) — a minimax polish on F(x) = max hull distance, whose
// Wolfe-based evaluations are accurate at the local scale.
func projectIntoIntersection(pt vec.V, fam []*vec.Set) vec.V {
	worstOf := func(x vec.V) float64 {
		w := 0.0
		for _, s := range fam {
			if d, _ := geom.Dist2(x, s); d > w {
				w = d
			}
		}
		return w
	}
	tol := 1e-11 * (1 + pt.NormP(math.Inf(1)))
	for sweep := 0; sweep < 12; sweep++ {
		moved := false
		for _, s := range fam {
			if d, nearest := geom.Dist2(pt, s); d > 0 {
				pt = nearest
				moved = true
			}
		}
		if !moved {
			return pt
		}
		if worstOf(pt) <= tol {
			return pt
		}
	}
	if worstOf(pt) <= tol {
		return pt
	}
	// Sliver regime: polish with the generic minimax solver seeded here.
	res := minimax.MinMaxDist2(fam, pt)
	if res.Delta < worstOf(pt) {
		return res.Point
	}
	return pt
}

// RunIterativeBVC runs the iterative protocol for the configured number
// of rounds and returns the final estimates plus the per-round honest
// range history. The context is polled once per round.
func RunIterativeBVC(ctx context.Context, cfg *IterConfig) (*IterResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: n must be >= 2, got %d", ErrTooFewProcesses, cfg.N)
	}
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("%w: %d inputs for n=%d", ErrBadInputs, len(cfg.Inputs), cfg.N)
	}
	if len(cfg.Byzantine) > cfg.F {
		return nil, fmt.Errorf("%w: %d Byzantine with f=%d", ErrTooManyFaults, len(cfg.Byzantine), cfg.F)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRounds, cfg.Rounds)
	}
	for i, v := range cfg.Inputs {
		if v.Dim() != cfg.D {
			return nil, fmt.Errorf("%w: input %d dimension %d != %d", ErrBadDimension, i, v.Dim(), cfg.D)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadFaults, err)
		}
	}
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	procs := make([]sched.SyncProcess, cfg.N)
	ips := make([]*iterProcess, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ip := &iterProcess{cfg: cfg, self: i, value: cfg.Inputs[i].Clone(), byz: cfg.Byzantine[i]}
		ips[i] = ip
		procs[i] = ip
	}
	var honest []int
	for i := 0; i < cfg.N; i++ {
		if _, bad := cfg.Byzantine[i]; !bad {
			honest = append(honest, i)
		}
	}
	history := []float64{honestRange(ips, honest)}
	// Wrap the processes so the honest range is sampled once per round.
	recorder := &rangeRecorder{ips: ips, honest: honest}
	for i := range procs {
		procs[i] = &recordingProcess{inner: ips[i], rec: recorder}
	}
	eng := sched.NewSyncEngine(procs)
	eng.Faults = cfg.Faults
	eng.TraceFn = cfg.Trace
	eng.StopFn = func() error { return canceled(ctx) }
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	history = append(history, recorder.samples...)
	res := &IterResult{
		Outputs:      make([]vec.V, cfg.N),
		RangeHistory: history,
		Messages:     eng.Messages,
		Faults:       eng.FaultStats,
	}
	for i, ip := range ips {
		res.Outputs[i] = ip.value.Clone()
	}
	iterRuns.Inc()
	runsTotal.Inc()
	roundsTotal.Add(int64(cfg.Rounds))
	messagesTotal.Add(int64(res.Messages))
	return res, nil
}

func honestRange(ips []*iterProcess, honest []int) float64 {
	worst := 0.0
	for a := 0; a < len(honest); a++ {
		for b := a + 1; b < len(honest); b++ {
			if d := ips[honest[a]].value.Sub(ips[honest[b]].value).NormP(math.Inf(1)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// rangeRecorder samples the honest range once per round, after every
// process has updated (triggered by the designated first honest process
// completing its Step — process updates within a round are independent,
// and the engine steps processes in id order, so sampling when the LAST
// honest process finished the round is correct; we sample from the
// recording wrapper of the highest-id honest process instead).
type rangeRecorder struct {
	ips     []*iterProcess
	honest  []int
	samples []float64
}

type recordingProcess struct {
	inner *iterProcess
	rec   *rangeRecorder
}

func (r *recordingProcess) Start() []sched.Outgoing { return r.inner.Start() }

func (r *recordingProcess) Step(round int, delivered []sched.Message) []sched.Outgoing {
	outs := r.inner.Step(round, delivered)
	// Sample after the last honest process of this round has stepped.
	if r.inner.self == r.rec.honest[len(r.rec.honest)-1] {
		r.rec.samples = append(r.rec.samples, honestRange(r.rec.ips, r.rec.honest))
	}
	return outs
}

func (r *recordingProcess) Done() bool { return r.inner.Done() }
