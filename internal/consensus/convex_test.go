package consensus

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/vec"
)

func TestConvexHullConsensusBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := &SyncConfig{
		N: 5, F: 1, D: 2,
		Inputs:    randInputs(rng, 5, 2, 2),
		Byzantine: map[int]broadcast.EIGBehavior{4: &twoFacedVec{vec.Of(30, 30), vec.Of(-30, -30)}},
	}
	res, err := RunConvexHullConsensus(context.Background(), cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	honest := cfg.HonestIDs()
	// Agreement on the polytope.
	for _, i := range honest[1:] {
		if e := PolytopeAgreementError(res, honest[0], i); e != 0 {
			t.Fatalf("polytope disagreement %v between %d and %d", e, honest[0], i)
		}
	}
	// Validity: all vertices in the non-faulty hull.
	nonFaulty := cfg.NonFaultyInputs()
	if !CheckConvexValidity(res.Vertices[honest[0]], nonFaulty, 1e-6) {
		t.Fatal("convex validity violated")
	}
	// Every vertex is in Gamma(S): distance to every (n-f)-subset hull ~0.
	fam := relax.DroppedSubsets(res2set(cfg, res, honest[0]), cfg.F)
	for _, v := range res.Vertices[honest[0]] {
		for _, sub := range fam {
			if d, _ := geom.Dist2(v, sub); d > 1e-6 {
				t.Fatalf("vertex %v misses a subset hull by %v", v, d)
			}
		}
	}
	if len(res.Vertices[honest[0]]) < 2*cfg.D {
		t.Fatal("fewer directions than the 2d minimum")
	}
}

// res2set rebuilds the agreed multiset for a process from the sync run
// (broadcast again deterministically for checking purposes).
func res2set(cfg *SyncConfig, _ *ConvexResult, _ int) *vec.Set {
	info, err := step1(cfg)
	if err != nil {
		panic(err)
	}
	return info.sets[cfg.HonestIDs()[0]]
}

func TestConvexHullConsensusContainsGammaPoint(t *testing.T) {
	// The Gamma point from exact BVC must lie inside the agreed polytope
	// (it is in Gamma, and the polytope is an inner approximation whose
	// hull contains any point expressible as a combination of support
	// points... we check the weaker, correct property: the Gamma point is
	// within Gamma, and each polytope vertex is within Gamma).
	rng := rand.New(rand.NewSource(102))
	cfg := &SyncConfig{N: 5, F: 1, D: 2, Inputs: randInputs(rng, 5, 2, 2)}
	cres, err := RunConvexHullConsensus(context.Background(), cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := RunExactBVC(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With enough directions the polytope hull should contain the single
	// Gamma point chosen by exact BVC (both are in Gamma; the support
	// points span Gamma's extent in the fan directions).
	hull := vec.NewSet(cres.Vertices[0]...)
	pt := eres.Outputs[0]
	d, _ := geom.Dist2(pt, hull)
	// The inner approximation may miss the point slightly in unexplored
	// directions; with 16 directions in 2-D the gap should be tiny.
	if d > 0.15 {
		t.Fatalf("Gamma point %v far from polytope (%v)", pt, d)
	}
}

func TestConvexHullConsensusDegenerateGamma(t *testing.T) {
	// All inputs identical: Gamma is that single point; the polytope
	// collapses to it.
	p := vec.Of(1.5, -2)
	inputs := []vec.V{p.Clone(), p.Clone(), p.Clone(), p.Clone()}
	cfg := &SyncConfig{N: 4, F: 1, D: 2, Inputs: inputs}
	res, err := RunConvexHullConsensus(context.Background(), cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vertices[0] {
		if !v.ApproxEqual(p, 1e-7) {
			t.Fatalf("vertex %v != %v", v, p)
		}
	}
}

func TestConvexHullConsensusEmptyGamma(t *testing.T) {
	cfg := &SyncConfig{
		N: 4, F: 1, D: 3,
		Inputs: []vec.V{vec.Of(0, 0, 0), vec.Of(1, 0, 0), vec.Of(0, 1, 0), vec.Of(0, 0, 1)},
	}
	if _, err := RunConvexHullConsensus(context.Background(), cfg, 8); err == nil {
		t.Fatal("empty Gamma accepted")
	}
}

func TestDirectionFanDeterministicAndUnit(t *testing.T) {
	a := directionFan(3, 20)
	b := directionFan(3, 20)
	if len(a) < 20 || len(a) != len(b) {
		t.Fatalf("fan sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("fan not deterministic")
		}
		if n := a[i].Norm2(); math.Abs(n-1) > 1e-9 {
			t.Fatalf("direction %d not unit: %v", i, n)
		}
	}
	// First 2d are the signed axes.
	if a[0][0] != 1 || a[1][0] != -1 {
		t.Fatal("fan does not start with signed axes")
	}
}

func TestPolytopeAgreementErrorMismatchedSizes(t *testing.T) {
	r := &ConvexResult{Vertices: [][]vec.V{{vec.Of(0)}, {}}}
	if !math.IsInf(PolytopeAgreementError(r, 0, 1), 1) {
		t.Fatal("mismatched sizes should be +Inf")
	}
}
