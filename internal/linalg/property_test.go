package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relaxedbvc/internal/vec"
)

// Property: det(AB) = det(A)det(B) for random square matrices.
func TestPropertyDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	f := func() bool {
		n := 1 + rng.Intn(5)
		a := randMatrix(rng, n, n)
		b := randMatrix(rng, n, n)
		lhs := Det(a.Mul(b))
		rhs := Det(a) * Det(b)
		return math.Abs(lhs-rhs) < 1e-7*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: (A^T)^T = A and (AB)^T = B^T A^T.
func TestPropertyTransposeAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	f := func() bool {
		r := 1 + rng.Intn(4)
		c := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		a := randMatrix(rng, r, c)
		b := randMatrix(rng, c, k)
		if !a.T().T().Equal(a) {
			return false
		}
		return a.Mul(b).T().ApproxEqual(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: solving against a random RHS and multiplying back recovers
// it (when the matrix is well-conditioned enough to invert).
func TestPropertySolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	f := func() bool {
		n := 1 + rng.Intn(6)
		a := randMatrix(rng, n, n)
		if math.Abs(Det(a)) < 1e-6 {
			return true // skip near-singular draws
		}
		b := make(vec.V, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return true
		}
		return a.MulVec(x).ApproxEqual(b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: rank is invariant under row scaling and row swaps.
func TestPropertyRankInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(254))
	f := func() bool {
		r := 2 + rng.Intn(3)
		c := 2 + rng.Intn(3)
		a := randMatrix(rng, r, c)
		base := RankDefault(a)
		// Scale a random row by a nonzero factor.
		b := a.Clone()
		row := rng.Intn(r)
		factor := 1 + rng.Float64()*3
		for j := 0; j < c; j++ {
			b.Set(row, j, b.At(row, j)*factor)
		}
		if RankDefault(b) != base {
			return false
		}
		// Swap two rows.
		cM := a.Clone()
		r2 := rng.Intn(r)
		for j := 0; j < c; j++ {
			v1, v2 := cM.At(row, j), cM.At(r2, j)
			cM.Set(row, j, v2)
			cM.Set(r2, j, v1)
		}
		return RankDefault(cM) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the subspace projector is an isometry on the points that
// defined it, for any subspace dimension.
func TestPropertyProjectorIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(255))
	f := func() bool {
		d := 3 + rng.Intn(4)
		sub := 1 + rng.Intn(d-1)
		basis := make([]vec.V, sub)
		for i := range basis {
			basis[i] = make(vec.V, d)
			for j := range basis[i] {
				basis[i][j] = rng.NormFloat64()
			}
		}
		npts := 3 + rng.Intn(3)
		pts := make([]vec.V, npts)
		for i := range pts {
			p := make(vec.V, d)
			for _, b := range basis {
				p.AXPY(rng.NormFloat64(), b)
			}
			pts[i] = p
		}
		sp := NewSubspaceProjector(pts)
		for i := 0; i < npts; i++ {
			for j := i + 1; j < npts; j++ {
				want := pts[i].Dist2(pts[j])
				got := sp.Project(pts[i]).Dist2(sp.Project(pts[j]))
				if math.Abs(want-got) > 1e-8*(1+want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
