// Package linalg provides the dense linear algebra needed by the
// geometric machinery of the relaxed Byzantine vector consensus library:
// LU factorization with partial pivoting (solve / inverse / determinant),
// Householder QR, rank and affine-independence tests, and
// distance-preserving projections onto spanned subspaces.
//
// Matrices are small (at most a few hundred rows) so everything is dense
// and allocation-simple.
package linalg

import (
	"fmt"
	"math"

	"relaxedbvc/internal/vec"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix whose i-th row is rows[i].
func FromRows(rows ...vec.V) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := rows[0].Dim()
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if r.Dim() != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// FromColumns builds a matrix whose j-th column is cols[j].
func FromColumns(cols ...vec.V) *Matrix {
	if len(cols) == 0 {
		return NewMatrix(0, 0)
	}
	r := cols[0].Dim()
	m := NewMatrix(r, len(cols))
	for j, c := range cols {
		if c.Dim() != r {
			panic("linalg: ragged columns")
		}
		for i := 0; i < r; i++ {
			m.Set(i, j, c[i])
		}
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i as a vector.
func (m *Matrix) Row(i int) vec.V {
	r := make(vec.V, m.Cols)
	copy(r, m.Data[i*m.Cols:(i+1)*m.Cols])
	return r
}

// Col returns a copy of column j as a vector.
func (m *Matrix) Col(j int) vec.V {
	c := make(vec.V, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.At(i, j)
	}
	return c
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x vec.V) vec.V {
	if m.Cols != x.Dim() {
		panic("linalg: MulVec shape mismatch")
	}
	out := make(vec.V, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(b *Matrix) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if b.Data[i] != v {
			return false
		}
	}
	return true
}

// ApproxEqual reports element-wise equality within tol.
func (m *Matrix) ApproxEqual(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(b.Data[i]-v) > tol {
			return false
		}
	}
	return true
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Matrix
	piv   []int
	signP float64 // determinant sign of P
	n     int
}

// Factor computes the LU factorization of square A. It never fails; a
// singular matrix is detected later by Solve/Inverse/Det.
func Factor(a *Matrix) *LU {
	if a.Rows != a.Cols {
		panic("linalg: Factor requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest |value| in column k at or below the diagonal.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		if pivot == 0 {
			continue // singular; leave zeros
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, signP: sign, n: n}
}

// Singular reports whether the factored matrix is (numerically) singular
// relative to tol times its largest diagonal magnitude.
func (f *LU) Singular(tol float64) bool {
	maxD := 0.0
	for i := 0; i < f.n; i++ {
		if a := math.Abs(f.lu.At(i, i)); a > maxD {
			maxD = a
		}
	}
	if maxD == 0 {
		return true
	}
	for i := 0; i < f.n; i++ {
		if math.Abs(f.lu.At(i, i)) <= tol*maxD {
			return true
		}
	}
	return false
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.signP
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A x = b for the factored A. Returns an error if A is
// numerically singular.
func (f *LU) Solve(b vec.V) (vec.V, error) {
	if b.Dim() != f.n {
		panic("linalg: Solve dimension mismatch")
	}
	if f.Singular(1e-13) {
		return nil, fmt.Errorf("linalg: matrix is singular")
	}
	n := f.n
	x := make(vec.V, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Solve solves A x = b directly.
func Solve(a *Matrix, b vec.V) (vec.V, error) { return Factor(a).Solve(b) }

// Det returns det(A) for square A.
func Det(a *Matrix) float64 { return Factor(a).Det() }

// Inverse returns A^{-1}, or an error if A is numerically singular.
func Inverse(a *Matrix) (*Matrix, error) {
	f := Factor(a)
	if f.Singular(1e-13) {
		return nil, fmt.Errorf("linalg: matrix is singular")
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make(vec.V, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
