package linalg

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixConstruction(t *testing.T) {
	m := FromRows(vec.Of(1, 2), vec.Of(3, 4))
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong layout: %+v", m)
	}
	c := FromColumns(vec.Of(1, 3), vec.Of(2, 4))
	if !m.Equal(c) {
		t.Error("FromColumns disagrees with FromRows")
	}
	if !m.Row(1).Equal(vec.Of(3, 4)) || !m.Col(0).Equal(vec.Of(1, 3)) {
		t.Error("Row/Col extraction wrong")
	}
}

func TestIdentityAndMul(t *testing.T) {
	a := FromRows(vec.Of(1, 2), vec.Of(3, 4))
	if !a.Mul(Identity(2)).Equal(a) {
		t.Error("A*I != A")
	}
	b := FromRows(vec.Of(5, 6), vec.Of(7, 8))
	ab := a.Mul(b)
	want := FromRows(vec.Of(19, 22), vec.Of(43, 50))
	if !ab.Equal(want) {
		t.Errorf("Mul = %+v", ab)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows(vec.Of(1, 2), vec.Of(3, 4))
	if got := a.MulVec(vec.Of(1, 1)); !got.Equal(vec.Of(3, 7)) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows(vec.Of(1, 2, 3), vec.Of(4, 5, 6))
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Errorf("T = %+v", at)
	}
}

func TestSolveKnown(t *testing.T) {
	a := FromRows(vec.Of(2, 1), vec.Of(1, 3))
	x, err := Solve(a, vec.Of(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !x.ApproxEqual(vec.Of(1, 3), 1e-12) {
		t.Errorf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows(vec.Of(1, 2), vec.Of(2, 4))
	if _, err := Solve(a, vec.Of(1, 1)); err == nil {
		t.Error("Solve of singular matrix did not error")
	}
	if _, err := Inverse(a); err == nil {
		t.Error("Inverse of singular matrix did not error")
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows(vec.Of(1, 2), vec.Of(3, 4))
	if got := Det(a); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("Det = %v", got)
	}
	if got := Det(Identity(4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Det(I) = %v", got)
	}
	// Permutation parity check.
	p := FromRows(vec.Of(0, 1), vec.Of(1, 0))
	if got := Det(p); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("Det(swap) = %v", got)
	}
}

func TestInverseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randMatrix(rng, n, n)
		inv, err := Inverse(a)
		if err != nil {
			continue // astronomically unlikely, but legal
		}
		if !a.Mul(inv).ApproxEqual(Identity(n), 1e-8) {
			t.Fatalf("A*A^-1 != I for n=%d", n)
		}
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		a := randMatrix(rng, n, n)
		want := make(vec.V, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			continue
		}
		if !got.ApproxEqual(want, 1e-7) {
			t.Fatalf("round trip failed: got %v want %v", got, want)
		}
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(m)
		a := randMatrix(rng, m, n)
		q := FactorQR(a).Q()
		// Q has orthonormal columns.
		qtq := q.T().Mul(q)
		if !qtq.ApproxEqual(Identity(n), 1e-9) {
			t.Fatalf("Q^T Q != I (m=%d n=%d)", m, n)
		}
	}
}

func TestRank(t *testing.T) {
	full := FromRows(vec.Of(1, 0, 0), vec.Of(0, 1, 0), vec.Of(0, 0, 1))
	if RankDefault(full) != 3 {
		t.Error("rank of identity != 3")
	}
	deficient := FromRows(vec.Of(1, 2, 3), vec.Of(2, 4, 6), vec.Of(0, 0, 1))
	if got := RankDefault(deficient); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	wide := FromRows(vec.Of(1, 0, 0, 0), vec.Of(0, 1, 0, 0))
	if got := RankDefault(wide); got != 2 {
		t.Errorf("wide rank = %d, want 2", got)
	}
	if RankDefault(NewMatrix(0, 0)) != 0 {
		t.Error("rank of empty != 0")
	}
}

func TestLinearIndependence(t *testing.T) {
	if !LinearlyIndependent([]vec.V{vec.Of(1, 0), vec.Of(0, 1)}) {
		t.Error("e1,e2 dependent?")
	}
	if LinearlyIndependent([]vec.V{vec.Of(1, 2), vec.Of(2, 4)}) {
		t.Error("colinear vectors declared independent")
	}
	if LinearlyIndependent([]vec.V{vec.Of(1, 0), vec.Of(0, 1), vec.Of(1, 1)}) {
		t.Error("3 vectors in R^2 declared independent")
	}
	if !LinearlyIndependent(nil) {
		t.Error("empty family should be independent")
	}
}

func TestAffineIndependence(t *testing.T) {
	// Triangle in R^2: affinely independent.
	tri := []vec.V{vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1)}
	if !AffinelyIndependent(tri) {
		t.Error("triangle not affinely independent")
	}
	// Three collinear points: not.
	col := []vec.V{vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2)}
	if AffinelyIndependent(col) {
		t.Error("collinear points affinely independent")
	}
	// 4 points in R^2: never.
	four := append(tri, vec.Of(5, 5))
	if AffinelyIndependent(four) {
		t.Error("4 points in R^2 affinely independent")
	}
	if !AffinelyIndependent([]vec.V{vec.Of(3, 3)}) {
		t.Error("single point should be affinely independent")
	}
}

func TestOrthonormalBasis(t *testing.T) {
	vs := []vec.V{vec.Of(2, 0, 0), vec.Of(4, 0, 0), vec.Of(0, 3, 0)}
	b := OrthonormalBasis(vs)
	if b.Cols != 2 {
		t.Fatalf("basis cols = %d, want 2", b.Cols)
	}
	if !b.T().Mul(b).ApproxEqual(Identity(2), 1e-10) {
		t.Error("basis not orthonormal")
	}
}

func TestSubspaceProjectorPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Points in a random 3-dim affine subspace of R^6.
	d, dp := 6, 3
	basis := make([]vec.V, dp)
	for i := range basis {
		basis[i] = make(vec.V, d)
		for j := range basis[i] {
			basis[i][j] = rng.NormFloat64()
		}
	}
	origin := make(vec.V, d)
	for j := range origin {
		origin[j] = rng.NormFloat64()
	}
	pts := make([]vec.V, 5)
	for i := range pts {
		p := origin.Clone()
		for _, b := range basis {
			p.AXPY(rng.NormFloat64(), b)
		}
		pts[i] = p
	}
	sp := NewSubspaceProjector(pts)
	if sp.SubDim() > dp {
		t.Fatalf("SubDim = %d > %d", sp.SubDim(), dp)
	}
	proj := make([]vec.V, len(pts))
	for i, p := range pts {
		proj[i] = sp.Project(p)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			want := pts[i].Dist2(pts[j])
			got := proj[i].Dist2(proj[j])
			if math.Abs(want-got) > 1e-9*(1+want) {
				t.Fatalf("distance not preserved: %v vs %v", want, got)
			}
		}
	}
	// Lift is a right inverse of Project on the subspace.
	for i, p := range pts {
		back := sp.Lift(proj[i])
		if !back.ApproxEqual(p, 1e-9) {
			t.Fatalf("Lift(Project(p)) != p: %v vs %v", back, p)
		}
	}
}

func TestSingularDetection(t *testing.T) {
	f := Factor(FromRows(vec.Of(1, 2), vec.Of(2, 4)))
	if !f.Singular(1e-13) {
		t.Error("rank-1 matrix not flagged singular")
	}
	if f2 := Factor(Identity(3)); f2.Singular(1e-13) {
		t.Error("identity flagged singular")
	}
}
