package linalg

import (
	"math"

	"relaxedbvc/internal/vec"
)

// QR holds a Householder QR factorization A = Q R of an m x n matrix with
// m >= n.
type QR struct {
	qr   *Matrix   // packed Householder vectors below the diagonal, R on/above
	rdia []float64 // diagonal of R
	m, n int
}

// FactorQR computes the Householder QR factorization of a.
func FactorQR(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n && k < m; k++ {
		// Norm of column k below (and including) row k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the transformation to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia, m: m, n: n}
}

// Rank returns the numerical rank of the factored matrix: the number of
// diagonal entries of R whose magnitude exceeds tol times the largest.
func (q *QR) Rank(tol float64) int {
	maxD := 0.0
	for _, d := range q.rdia {
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	if maxD == 0 {
		return 0
	}
	r := 0
	for _, d := range q.rdia {
		if math.Abs(d) > tol*maxD {
			r++
		}
	}
	return r
}

// Q returns the thin m x n orthonormal factor.
func (q *QR) Q() *Matrix {
	m, n := q.m, q.n
	out := NewMatrix(m, n)
	for k := n - 1; k >= 0; k-- {
		for i := 0; i < m; i++ {
			out.Set(i, k, 0)
		}
		if k < m {
			out.Set(k, k, 1)
		}
		for j := k; j < n; j++ {
			if k < m && q.qr.At(k, k) != 0 {
				s := 0.0
				for i := k; i < m; i++ {
					s += q.qr.At(i, k) * out.At(i, j)
				}
				s = -s / q.qr.At(k, k)
				for i := k; i < m; i++ {
					out.Set(i, j, out.At(i, j)+s*q.qr.At(i, k))
				}
			}
		}
	}
	return out
}

// Rank returns the numerical rank of a with relative tolerance tol.
func Rank(a *Matrix, tol float64) int {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	// QR wants m >= n; transpose if wide.
	if a.Rows < a.Cols {
		a = a.T()
	}
	return FactorQR(a).Rank(tol)
}

// RankDefault is Rank with the package-standard tolerance.
func RankDefault(a *Matrix) int { return Rank(a, 1e-10) }

// LinearlyIndependent reports whether the given vectors are linearly
// independent (numerically).
func LinearlyIndependent(vs []vec.V) bool {
	if len(vs) == 0 {
		return true
	}
	if len(vs) > vs[0].Dim() {
		return false
	}
	return RankDefault(FromColumns(vs...)) == len(vs)
}

// AffinelyIndependent reports whether the points are affinely independent,
// i.e. the difference vectors p_i - p_last are linearly independent.
// A single point is affinely independent; d+2 or more points in R^d never
// are.
func AffinelyIndependent(pts []vec.V) bool {
	if len(pts) <= 1 {
		return true
	}
	last := pts[len(pts)-1]
	diffs := make([]vec.V, len(pts)-1)
	for i := range diffs {
		diffs[i] = pts[i].Sub(last)
	}
	return LinearlyIndependent(diffs)
}

// OrthonormalBasis returns an orthonormal basis (as columns of the result)
// of span{vs}, using QR with rank detection. The number of columns equals
// the numerical rank.
func OrthonormalBasis(vs []vec.V) *Matrix {
	if len(vs) == 0 {
		return NewMatrix(0, 0)
	}
	d := vs[0].Dim()
	// Modified Gram-Schmidt with re-orthogonalization and pivot skipping:
	// simple, adequate for the small sizes here, and keeps only the
	// independent directions.
	basis := make([]vec.V, 0, len(vs))
	for _, v := range vs {
		w := v.Clone()
		for pass := 0; pass < 2; pass++ { // re-orthogonalize once for stability
			for _, b := range basis {
				w.AXPY(-w.Dot(b), b)
			}
		}
		n := w.Norm2()
		if n > 1e-10 {
			basis = append(basis, w.Scale(1/n))
		}
	}
	out := NewMatrix(d, len(basis))
	for j, b := range basis {
		for i := 0; i < d; i++ {
			out.Set(i, j, b[i])
		}
	}
	return out
}

// SubspaceProjector builds the distance-preserving projection used in
// Theorem 8 / Theorem 9 Case II: given points whose differences from the
// last point span a d'-dimensional subspace W (d' < d), it returns a map
// P : R^d -> R^{d'} with ||P a_i - P a_j||_2 = ||a_i - a_j||_2 for all
// points, implemented as x -> Q^T (x - origin) with Q an orthonormal basis
// of W.
type SubspaceProjector struct {
	origin vec.V
	q      *Matrix // d x d' orthonormal columns
}

// NewSubspaceProjector builds the projector for the given points, using
// the last point as the origin. The subspace dimension is the numerical
// rank of the difference vectors.
func NewSubspaceProjector(pts []vec.V) *SubspaceProjector {
	if len(pts) == 0 {
		panic("linalg: NewSubspaceProjector needs at least one point")
	}
	origin := pts[len(pts)-1].Clone()
	diffs := make([]vec.V, 0, len(pts)-1)
	for _, p := range pts[:len(pts)-1] {
		diffs = append(diffs, p.Sub(origin))
	}
	return &SubspaceProjector{origin: origin, q: OrthonormalBasis(diffs)}
}

// SubDim returns d', the dimension of the projected space.
func (sp *SubspaceProjector) SubDim() int { return sp.q.Cols }

// Project maps a point of the original space into R^{d'}. For points in
// the affine subspace origin + W the map preserves pairwise Euclidean
// distances.
func (sp *SubspaceProjector) Project(x vec.V) vec.V {
	diff := x.Sub(sp.origin)
	out := make(vec.V, sp.q.Cols)
	for j := 0; j < sp.q.Cols; j++ {
		s := 0.0
		for i := 0; i < sp.q.Rows; i++ {
			s += sp.q.At(i, j) * diff[i]
		}
		out[j] = s
	}
	return out
}

// Lift maps a point of R^{d'} back into the original affine subspace.
func (sp *SubspaceProjector) Lift(y vec.V) vec.V {
	if y.Dim() != sp.q.Cols {
		panic("linalg: Lift dimension mismatch")
	}
	out := sp.origin.Clone()
	for j := 0; j < sp.q.Cols; j++ {
		for i := 0; i < sp.q.Rows; i++ {
			out[i] += sp.q.At(i, j) * y[j]
		}
	}
	return out
}
