package lp

import (
	"sync"

	"relaxedbvc/internal/metrics"
)

// Solver observability: every Solve bumps lp_solves_total and
// lp_ws_pool_gets_total; lp_ws_pool_news_total counts pool misses that
// allocated a fresh workspace, so gets-vs-news is the sync.Pool churn
// (steady state: news flat, gets climbing). Pivot work is tracked as a
// cumulative counter plus a fixed-bucket per-solve histogram.
var (
	lpSolves       = metrics.DefaultCounter("lp_solves_total")
	lpPivots       = metrics.DefaultCounter("lp_pivots_total")
	lpPivotsPerRun = metrics.DefaultHistogram("lp_pivots_per_solve", metrics.CountBuckets())
	lpPoolGets     = metrics.DefaultCounter("lp_ws_pool_gets_total")
	lpPoolNews     = metrics.DefaultCounter("lp_ws_pool_news_total")
	lpIterLimited  = metrics.DefaultCounter("lp_iteration_limit_total")
	lpInfeasible   = metrics.DefaultCounter("lp_infeasible_total")
	// lp_problem_resets_total counts Problem.Reset calls: each one is a
	// constraint-storage reuse instead of a fresh NewProblem allocation.
	lpProblemResets = metrics.DefaultCounter("lp_problem_resets_total")
)

// workspace is a reusable arena for the float and int scratch storage of
// one Solve call: the standardized constraint matrix, the simplex
// tableau, its objective rows and the basis bookkeeping. Solve draws a
// workspace from a sync.Pool, so steady-state solves stop allocating
// tableaux — the dominant allocation cost when the geometry predicates
// fire thousands of LPs per consensus trial. Nothing handed out by a
// workspace may escape the Solve call that grabbed it; escaping slices
// (Result.X) are allocated fresh.
type workspace struct {
	f  []float64
	i  []int
	fo int
	io int
}

var wsPool = sync.Pool{New: func() any {
	lpPoolNews.Inc()
	return new(workspace)
}}

func (w *workspace) reset() { w.fo, w.io = 0, 0 }

// floats returns a zeroed length-n slice carved out of the arena. The
// slice is full (three-index) so appends by callers cannot clobber
// neighboring grabs.
func (w *workspace) floats(n int) []float64 {
	if w.fo+n > len(w.f) {
		size := 2 * len(w.f)
		if size < n {
			size = n
		}
		if size < 1024 {
			size = 1024
		}
		// Slices handed out earlier keep referencing the old array and
		// stay valid; new grabs come from the fresh one.
		w.f = make([]float64, size)
		w.fo = 0
	}
	s := w.f[w.fo : w.fo+n : w.fo+n]
	w.fo += n
	clear(s)
	return s
}

// ints is the integer-arena analogue of floats.
func (w *workspace) ints(n int) []int {
	if w.io+n > len(w.i) {
		size := 2 * len(w.i)
		if size < n {
			size = n
		}
		if size < 256 {
			size = 256
		}
		w.i = make([]int, size)
		w.io = 0
	}
	s := w.i[w.io : w.io+n : w.io+n]
	w.io += n
	clear(s)
	return s
}
