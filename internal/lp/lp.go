// Package lp implements a self-contained dense linear programming solver:
// a two-phase primal simplex method with Bland anti-cycling fallback.
//
// It is the workhorse behind every exact geometric predicate in this
// library: convex hull membership, L1/Linf point-to-hull distances,
// emptiness of Gamma(Y), Psi_k(Y) and Gamma_(delta,p)(S) intersections,
// and Tverberg partition feasibility all reduce to LP feasibility or
// optimization over simplices of convex weights.
//
// Problems are stated in the natural form
//
//	min / max  c^T x
//	s.t.       a_i^T x  {<=, =, >=}  b_i
//	           lo_j <= x_j <= up_j     (defaults: 0 <= x_j < +Inf)
//
// Free and shifted variables are handled by internal substitution; the
// solver reports Optimal, Infeasible or Unbounded along with the primal
// solution mapped back to the original variables.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization.
type Sense int

const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	LE Rel = iota // <=
	EQ            // ==
	GE            // >=
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "?"
}

// Result holds the solution of an LP.
type Result struct {
	Status    Status
	X         []float64 // values of the original variables (valid when Optimal)
	Objective float64   // objective value in the original sense (valid when Optimal)
}

type constraint struct {
	coef []float64
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction.
type Problem struct {
	n     int
	obj   []float64
	sense Sense
	cons  []constraint
	lo    []float64
	up    []float64
	spare [][]float64 // retired constraint rows available for reuse
}

// NewProblem returns a problem with n decision variables, default bounds
// [0, +Inf) and a zero minimization objective (a pure feasibility problem
// until SetObjective is called).
func NewProblem(n int) *Problem {
	if n < 0 {
		panic("lp: negative variable count")
	}
	p := &Problem{
		n:   n,
		obj: make([]float64, n),
		lo:  make([]float64, n),
		up:  make([]float64, n),
	}
	for i := range p.up {
		p.up[i] = math.Inf(1)
	}
	return p
}

// Reset reconfigures p in place as a fresh n-variable feasibility
// problem (zero minimization objective, default bounds [0, +Inf), no
// constraints), retaining previously allocated storage: the coefficient
// rows of dropped constraints go on a free list that AddConstraint /
// AddSparseConstraint draw from. Hot callers that build thousands of
// structurally similar LPs (the subset-sweep kernels) reuse one Problem
// per worker instead of allocating a tableau-sized set of rows per
// candidate. Reset must not be called while a Solve on p is in flight.
func (p *Problem) Reset(n int) {
	if n < 0 {
		panic("lp: negative variable count")
	}
	lpProblemResets.Inc()
	for _, c := range p.cons {
		p.spare = append(p.spare, c.coef)
	}
	p.cons = p.cons[:0]
	p.n = n
	p.sense = Minimize
	p.obj = resizeFill(p.obj, n, 0)
	p.lo = resizeFill(p.lo, n, 0)
	p.up = resizeFill(p.up, n, math.Inf(1))
}

// resizeFill returns s resized to length n with every element set to v,
// reusing the backing array when it is large enough.
func resizeFill(s []float64, n int, v float64) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// row returns a zeroed length-p.n coefficient row, preferring the free
// list populated by Reset over a fresh allocation.
func (p *Problem) row() []float64 {
	for len(p.spare) > 0 {
		r := p.spare[len(p.spare)-1]
		p.spare = p.spare[:len(p.spare)-1]
		if cap(r) >= p.n {
			r = r[:p.n]
			clear(r)
			return r
		}
	}
	return make([]float64, p.n)
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjective sets the objective coefficients and sense. The slice is
// copied. len(c) must equal the variable count.
func (p *Problem) SetObjective(c []float64, sense Sense) {
	if len(c) != p.n {
		panic(fmt.Sprintf("lp: objective length %d != %d vars", len(c), p.n))
	}
	copy(p.obj, c)
	p.sense = sense
}

// AddConstraint appends the constraint coef . x (rel) rhs. The coefficient
// slice is copied.
func (p *Problem) AddConstraint(coef []float64, rel Rel, rhs float64) {
	if len(coef) != p.n {
		panic(fmt.Sprintf("lp: constraint length %d != %d vars", len(coef), p.n))
	}
	row := p.row()
	copy(row, coef)
	p.cons = append(p.cons, constraint{coef: row, rel: rel, rhs: rhs})
}

// AddSparseConstraint appends a constraint given as (index, coefficient)
// pairs; unspecified coefficients are zero.
func (p *Problem) AddSparseConstraint(idx []int, coef []float64, rel Rel, rhs float64) {
	if len(idx) != len(coef) {
		panic("lp: sparse constraint index/coef length mismatch")
	}
	full := p.row()
	for k, i := range idx {
		if i < 0 || i >= p.n {
			panic("lp: sparse constraint index out of range")
		}
		full[i] += coef[k]
	}
	p.cons = append(p.cons, constraint{coef: full, rel: rel, rhs: rhs})
}

// SetBounds sets lo <= x_i <= up. Use math.Inf(-1) / math.Inf(1) for
// unbounded sides.
func (p *Problem) SetBounds(i int, lo, up float64) {
	if i < 0 || i >= p.n {
		panic("lp: SetBounds index out of range")
	}
	if lo > up {
		panic("lp: SetBounds lo > up")
	}
	p.lo[i] = lo
	p.up[i] = up
}

// SetFree marks x_i as a free variable (-Inf, +Inf).
func (p *Problem) SetFree(i int) { p.SetBounds(i, math.Inf(-1), math.Inf(1)) }

// ErrMalformed is returned for structurally unusable problems.
var ErrMalformed = errors.New("lp: malformed problem")

const (
	eps      = 1e-9
	pivotEps = 1e-10
)

// Solve runs the two-phase simplex method and returns the result. It is
// safe to call concurrently on distinct Problems (and on the same
// Problem, which Solve never mutates); scratch storage comes from a
// shared sync.Pool of solver workspaces.
func (p *Problem) Solve() (*Result, error) {
	lpSolves.Inc()
	lpPoolGets.Inc()
	ws := wsPool.Get().(*workspace)
	ws.reset()
	defer wsPool.Put(ws)
	std, err := p.standardize(ws)
	if err != nil {
		return nil, err
	}
	res := std.solve()
	switch res.Status {
	case IterationLimit:
		lpIterLimited.Inc()
	case Infeasible:
		lpInfeasible.Inc()
	}
	if res.Status == Optimal {
		res.X = std.recover(res.X)
		// Recompute the objective in original terms for exactness.
		obj := 0.0
		for i, c := range p.obj {
			obj += c * res.X[i]
		}
		res.Objective = obj
	}
	return res, nil
}

// standard holds a problem in the computational standard form
// min c^T y, A y = b, y >= 0, b >= 0, together with the recipe to map y
// back to the original x.
type standard struct {
	m, n int // n includes slacks/surpluses, excludes artificials
	a    [][]float64
	b    []float64
	c    []float64
	// mapping back: x_i = shift_i + sum over terms (sign * y_j)
	terms  [][2]int  // per original var: (posIdx, negIdx); negIdx == -1 if none
	shift  []float64 // additive shift per original var
	sign   []float64 // +1 or -1 multiplier on the primary term
	orig   *Problem
	artRow []bool // rows that required an artificial in phase 1
	ws     *workspace
	// capture, when non-nil, receives the final basis of an Optimal
	// solve (if it is all-structural) for reuse by SolveWarm. It never
	// influences the solve itself.
	capture *WarmState
}

func (p *Problem) standardize(ws *workspace) (*standard, error) {
	// Variable substitutions to reach y >= 0:
	//   lo finite:            x = lo + y          (sign +1)
	//   lo = -inf, up finite: x = up - y          (sign -1)
	//   free:                 x = y+ - y-         (two columns)
	// A residual finite upper bound (after a lo shift) becomes an extra
	// row  y <= up - lo.
	type sub struct {
		pos, neg int
		shift    float64
		sign     float64
		extraUB  float64 // residual upper bound on the pos column; +Inf if none
	}
	subs := make([]sub, p.n)
	ncols := 0
	for i := 0; i < p.n; i++ {
		lo, up := p.lo[i], p.up[i]
		switch {
		case !math.IsInf(lo, -1):
			s := sub{pos: ncols, neg: -1, shift: lo, sign: 1, extraUB: math.Inf(1)}
			if !math.IsInf(up, 1) {
				s.extraUB = up - lo
			}
			subs[i] = s
			ncols++
		case !math.IsInf(up, 1):
			subs[i] = sub{pos: ncols, neg: -1, shift: up, sign: -1, extraUB: math.Inf(1)}
			ncols++
		default:
			subs[i] = sub{pos: ncols, neg: ncols + 1, shift: 0, sign: 1, extraUB: math.Inf(1)}
			ncols += 2
		}
	}

	// Count rows: original constraints plus residual upper bounds.
	var rows []constraint
	for _, c := range p.cons {
		rows = append(rows, c)
	}
	for i := range subs {
		if !math.IsInf(subs[i].extraUB, 1) {
			// y_pos <= extraUB, expressed over original variable space later;
			// mark with a sentinel constraint handled below.
			rows = append(rows, constraint{coef: nil, rel: LE, rhs: subs[i].extraUB})
		}
	}

	m := len(rows)
	// Translate each row into the substituted variables, then add slack /
	// surplus columns.
	type rowData struct {
		coef []float64
		rel  Rel
		rhs  float64
	}
	trans := make([]rowData, 0, m)
	ubIdx := 0
	ubVars := make([]int, 0)
	for i := range subs {
		if !math.IsInf(subs[i].extraUB, 1) {
			ubVars = append(ubVars, i)
		}
	}
	for ri, c := range rows {
		coef := ws.floats(ncols)
		rhs := c.rhs
		if c.coef == nil {
			// Residual upper bound row for ubVars[ubIdx].
			v := ubVars[ubIdx]
			ubIdx++
			coef[subs[v].pos] = 1
			trans = append(trans, rowData{coef: coef, rel: LE, rhs: rhs})
			continue
		}
		for i, a := range c.coef {
			if a == 0 {
				continue
			}
			s := subs[i]
			rhs -= a * s.shift
			coef[s.pos] += a * s.sign
			if s.neg >= 0 {
				coef[s.neg] -= a
			}
		}
		trans = append(trans, rowData{coef: coef, rel: c.rel, rhs: rhs})
		_ = ri
	}

	// Normalize rhs >= 0.
	for i := range trans {
		if trans[i].rhs < 0 {
			for j := range trans[i].coef {
				trans[i].coef[j] = -trans[i].coef[j]
			}
			trans[i].rhs = -trans[i].rhs
			switch trans[i].rel {
			case LE:
				trans[i].rel = GE
			case GE:
				trans[i].rel = LE
			}
		}
	}

	// Add slack (LE) and surplus (GE) columns.
	nSlack := 0
	for _, r := range trans {
		if r.rel != EQ {
			nSlack++
		}
	}
	total := ncols + nSlack
	a := make([][]float64, m)
	b := ws.floats(m)
	artRow := make([]bool, m)
	sIdx := ncols
	for i, r := range trans {
		a[i] = ws.floats(total)
		copy(a[i], r.coef)
		b[i] = r.rhs
		switch r.rel {
		case LE:
			a[i][sIdx] = 1
			sIdx++
		case GE:
			a[i][sIdx] = -1
			sIdx++
			artRow[i] = true
		case EQ:
			artRow[i] = true
		}
	}

	// Objective over substituted variables (always minimize internally).
	c := ws.floats(total)
	mult := 1.0
	if p.sense == Maximize {
		mult = -1
	}
	for i, oc := range p.obj {
		if oc == 0 {
			continue
		}
		s := subs[i]
		c[s.pos] += mult * oc * s.sign
		if s.neg >= 0 {
			c[s.neg] -= mult * oc
		}
	}

	terms := make([][2]int, p.n)
	shift := make([]float64, p.n)
	sign := make([]float64, p.n)
	for i, s := range subs {
		terms[i] = [2]int{s.pos, s.neg}
		shift[i] = s.shift
		sign[i] = s.sign
	}
	return &standard{
		m: m, n: total, a: a, b: b, c: c,
		terms: terms, shift: shift, sign: sign, orig: p, artRow: artRow,
		ws: ws,
	}, nil
}

// recover maps a standard-form solution back to original variables.
func (s *standard) recover(y []float64) []float64 {
	x := make([]float64, s.orig.n)
	for i := range x {
		v := s.shift[i] + s.sign[i]*y[s.terms[i][0]]
		if s.terms[i][1] >= 0 {
			v -= y[s.terms[i][1]]
		}
		x[i] = v
	}
	return x
}
