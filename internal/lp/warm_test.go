package lp

import (
	"math"
	"testing"

	"relaxedbvc/internal/metrics"
)

// warmLCG is a tiny deterministic generator so the property walks are
// reproducible without seeding global rand.
type warmLCG uint64

func (g *warmLCG) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(uint64(*g)>>11)/float64(1<<53)*10 - 5
}

// grayWalk enumerates the size-k subsets of {0..n-1} in revolving-door
// order (one element swapped between consecutive subsets), mirroring
// vec.CombinationsGray without importing it.
func grayWalk(n, k int, fn func(idx []int)) {
	c := make([]int, k+2)
	for j := 1; j <= k; j++ {
		c[j] = j - 1
	}
	c[k+1] = n
	idx := make([]int, k)
	for {
		for j := 1; j <= k; j++ {
			idx[j-1] = c[j]
		}
		fn(idx)
		var j int
		if k%2 == 1 {
			if c[1]+1 < c[2] {
				c[1]++
				continue
			}
			j = 2
			goto dec
		}
		if c[1] > 0 {
			c[1]--
			continue
		}
		j = 2
		goto inc
	dec:
		if j > k {
			return
		}
		if c[j] >= j {
			c[j] = c[j-1]
			c[j-1] = j - 2
			continue
		}
		j++
	inc:
		if j > k {
			return
		}
		if c[j]+1 < c[j+1] {
			c[j-1] = c[j]
			c[j]++
			continue
		}
		j++
		if j <= k {
			goto dec
		}
		return
	}
}

// buildHullRows writes the "q in conv(points[idx])" feasibility system
// into prob: d coordinate EQ rows plus the weight-simplex row, with one
// lambda variable per subset element. replace reuses the existing rows
// via ReplaceRow (exercising the incremental edit path); otherwise rows
// are appended to a freshly Reset problem.
func buildHullRows(prob *Problem, pts [][]float64, idx []int, q []float64, replace bool) {
	m, d := len(idx), len(q)
	row := make([]float64, m)
	if !replace {
		prob.Reset(m)
	}
	for k := 0; k < d; k++ {
		for i, pi := range idx {
			row[i] = pts[pi][k]
		}
		if replace {
			prob.ReplaceRow(k, row, EQ, q[k])
		} else {
			prob.AddConstraint(row, EQ, q[k])
		}
	}
	for i := range row {
		row[i] = 1
	}
	if replace {
		prob.ReplaceRow(d, row, EQ, 1)
	} else {
		prob.AddConstraint(row, EQ, 1)
	}
}

func sameResult(t *testing.T, tag string, warm, cold *Result) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("%s: warm status %v, cold status %v", tag, warm.Status, cold.Status)
	}
	if math.Float64bits(warm.Objective) != math.Float64bits(cold.Objective) {
		t.Fatalf("%s: warm objective %v, cold objective %v (bit mismatch)", tag, warm.Objective, cold.Objective)
	}
	if (warm.X == nil) != (cold.X == nil) || len(warm.X) != len(cold.X) {
		t.Fatalf("%s: warm X %v, cold X %v", tag, warm.X, cold.X)
	}
	for i := range warm.X {
		if math.Float64bits(warm.X[i]) != math.Float64bits(cold.X[i]) {
			t.Fatalf("%s: X[%d] warm %v != cold %v (bit mismatch)", tag, i, warm.X[i], cold.X[i])
		}
	}
}

// TestWarmMatchesColdOnGrayWalks replays random Gray-code subset walks
// of hull-membership LPs: one reusable Problem is edited in place with
// ReplaceRow as the walk swaps a point per step and solved with
// SolveWarm carrying the basis between steps, while a fresh Problem per
// step is solved cold. Every status, objective and solution vector must
// match bit-for-bit — the warm path may only short-circuit certified
// infeasibility, which carries no solution bits.
func TestWarmMatchesColdOnGrayWalks(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := warmLCG(seed)
		n, d := 8, 3
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = g.next()
			}
		}
		// Half the queries sit well outside the hull (infeasible LPs, the
		// warm path's fast case), half inside.
		q := make([]float64, d)
		for j := range q {
			q[j] = g.next()
			if seed%2 == 0 {
				q[j] += 20 // far outside: every subset rejects
			}
		}
		var w WarmState
		warmProb := NewProblem(0)
		first := true
		step := 0
		grayWalk(n, n-2, func(idx []int) {
			buildHullRows(warmProb, pts, idx, q, !first)
			first = false
			warmRes, err := warmProb.SolveWarm(&w)
			if err != nil {
				t.Fatal(err)
			}
			cold := NewProblem(0)
			buildHullRows(cold, pts, idx, q, false)
			coldRes, err := cold.Solve()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "walk", warmRes, coldRes)
			step++
		})
		if step == 0 {
			t.Fatal("empty walk")
		}
	}
}

// TestWarmHitsOnInfeasibleSweep pins that the warm path actually fires:
// a sweep of all-infeasible neighbors must certify some of its
// infeasibilities without a cold solve.
func TestWarmHitsOnInfeasibleSweep(t *testing.T) {
	g := warmLCG(7)
	n, d := 9, 3
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = g.next()
		}
	}
	q := []float64{30, 30, 30} // far outside every subset hull
	before := metrics.Default().Snapshot()
	var w WarmState
	prob := NewProblem(0)
	grayWalk(n, n-2, func(idx []int) {
		buildHullRows(prob, pts, idx, q, false)
		res, err := prob.SolveWarm(&w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Fatalf("subset %v: status %v, want infeasible", idx, res.Status)
		}
	})
	diff := metrics.Default().Snapshot().Diff(before)
	if hits := diff.Counters["lp_warm_hits_total"]; hits == 0 {
		t.Errorf("no warm hits on an all-infeasible sweep (attempts=%d, fallbacks=%d)",
			diff.Counters["lp_warm_attempts_total"], diff.Counters["lp_warm_fallbacks_total"])
	}
}

// TestWarmDegenerateBasisFallsBackCold forces the basis-repair failure
// path: a zero row has no usable structural pivot, so the warm factor
// gives up, bumps lp_warm_degenerate_total, and the cold solve answers.
func TestWarmDegenerateBasisFallsBackCold(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(2)
		p.AddConstraint([]float64{0, 0}, EQ, 0) // no structural pivot exists
		p.AddConstraint([]float64{1, 1}, EQ, 1)
		p.SetObjective([]float64{1, 2}, Minimize)
		return p
	}
	before := metrics.Default().Snapshot()
	var w WarmState
	w.basis = append(w.basis, 0, 1) // plausible-looking stale basis
	w.m, w.n = 2, 2
	warmRes, err := build().SolveWarm(&w)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := build().Solve()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "degenerate", warmRes, coldRes)
	if warmRes.Status != Optimal {
		t.Fatalf("status %v, want optimal", warmRes.Status)
	}
	diff := metrics.Default().Snapshot().Diff(before)
	if diff.Counters["lp_warm_degenerate_total"] == 0 {
		t.Error("degenerate fallback did not bump lp_warm_degenerate_total")
	}
	if diff.Counters["lp_warm_hits_total"] != 0 {
		t.Error("degenerate case counted as a warm hit")
	}
}

// TestWarmDisabledIsCold pins the SetWarmStart(false) escape hatch.
func TestWarmDisabledIsCold(t *testing.T) {
	SetWarmStart(false)
	defer SetWarmStart(true)
	if WarmStartEnabled() {
		t.Fatal("toggle did not stick")
	}
	before := metrics.Default().Snapshot()
	p := NewProblem(1)
	p.AddConstraint([]float64{1}, EQ, 1)
	var w WarmState
	res, err := p.SolveWarm(&w)
	if err != nil || res.Status != Optimal {
		t.Fatalf("res=%v err=%v", res, err)
	}
	diff := metrics.Default().Snapshot().Diff(before)
	if diff.Counters["lp_warm_attempts_total"] != 0 {
		t.Error("disabled warm start still attempted")
	}
}

// TestSwapBasis pins the shape-swap entry point used by sweeps that
// alternate between two LP shapes.
func TestSwapBasis(t *testing.T) {
	a := WarmState{basis: []int{1, 2}, m: 2, n: 4}
	b := WarmState{basis: []int{0}, m: 1, n: 3}
	a.SwapBasis(&b)
	if len(a.basis) != 1 || a.basis[0] != 0 || a.m != 1 || a.n != 3 {
		t.Errorf("a after swap = %+v", a)
	}
	if len(b.basis) != 2 || b.m != 2 || b.n != 4 {
		t.Errorf("b after swap = %+v", b)
	}
	a.SwapBasis(nil) // no-op
	a.Reset()
	if len(a.basis) != 0 || a.m != 0 || a.n != 0 {
		t.Errorf("a after reset = %+v", a)
	}
}

// TestReplaceRowValidation pins the panic contracts of the incremental
// edit entry points.
func TestReplaceRowValidation(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("ReplaceRow out of range", func() { p.ReplaceRow(1, []float64{1, 0}, LE, 1) })
	mustPanic("ReplaceRow bad length", func() { p.ReplaceRow(0, []float64{1}, LE, 1) })
	mustPanic("ReplaceSparseRow mismatch", func() { p.ReplaceSparseRow(0, []int{0}, nil, LE, 1) })
	mustPanic("ReplaceSparseRow bad index", func() { p.ReplaceSparseRow(0, []int{5}, []float64{1}, LE, 1) })
	p.ReplaceSparseRow(0, []int{1, 1}, []float64{2, 3}, GE, 4)
	if p.cons[0].coef[1] != 5 || p.cons[0].rel != GE || p.cons[0].rhs != 4 {
		t.Errorf("ReplaceSparseRow result = %+v", p.cons[0])
	}
}
