package lp

import (
	"math"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
)

// Warm-started solving for the C(n,f) subset sweeps. Consecutive
// candidates of a Gray-code sweep share almost all of their constraint
// structure, so the optimal basis of one candidate is an excellent
// starting basis for the next. The warm path refactors the standardized
// matrix around the stored basis (repairing rows whose stored column
// has become unusable), runs a budgeted dual-style pivot loop, and —
// crucially for replay parity — commits to only ONE kind of early
// answer: a certified Infeasible. Infeasible results carry no solution
// vector, so certifying them early is bit-identical to the cold solve
// by construction; any other outcome falls back to code identical to
// Solve, whose pivot sequence (and therefore Result.X bits) is
// untouched by the warm attempt. See DESIGN.md §10.3 for the invariant
// and the certificate margins.

const (
	// warmPivotEps is the minimum pivot magnitude accepted while
	// factoring the stored basis; smaller pivots mark the basis
	// degenerate for that row and trigger repair (or cold fallback).
	warmPivotEps = 1e-8
	// warmInfeasMargin is the minimum certified infeasibility, relative
	// to feasScale and the certificate's scale, for the warm path to
	// declare Infeasible: 1000x the cold solver's 1e-7 phase-1
	// acceptance threshold, so warm and cold can only disagree on a
	// problem whose phase-1 optimum sits 3 orders of magnitude away
	// from its own certificate — outside float noise for these
	// well-scaled geometry LPs.
	warmInfeasMargin = 1e-4
	// warmCertSlack bounds how negative a recomputed certificate row
	// entry may be (relative to the column scale) before the
	// certificate is rejected as numerically unsound.
	warmCertSlack = 1e-10
	// warmMaxRows caps the standardized row count the warm certification
	// attempts. It is built for the small per-candidate LPs of the
	// C(n,f) subset sweeps, where consecutive problems differ in a
	// couple of rows and the certificate falls out in a few pivots; on
	// the large joint LPs (one weight simplex per family member) the
	// stored basis is rarely reusable and the budgeted pivot loop would
	// only tax the cold solve it falls back to.
	warmMaxRows = 48
)

var (
	lpWarmAttempts   = metrics.DefaultCounter("lp_warm_attempts_total")
	lpWarmHits       = metrics.DefaultCounter("lp_warm_hits_total")
	lpWarmFallbacks  = metrics.DefaultCounter("lp_warm_fallbacks_total")
	lpWarmDegenerate = metrics.DefaultCounter("lp_warm_degenerate_total")
)

var warmEnabled atomic.Bool

func init() { warmEnabled.Store(true) }

// SetWarmStart enables or disables the warm path globally; disabled,
// SolveWarm is exactly Solve. Results are identical either way.
func SetWarmStart(on bool) { warmEnabled.Store(on) }

// WarmStartEnabled reports whether SolveWarm attempts warm starts.
func WarmStartEnabled() bool { return warmEnabled.Load() }

// WarmState carries the standard-form basis of a previous solve between
// the candidates of a sweep. The zero value is valid (first solve runs
// with basis repair from scratch). A WarmState must not be shared
// between concurrent goroutines; sweep kernels keep one per worker.
type WarmState struct {
	basis []int
	m, n  int
}

// Reset forgets the stored basis.
func (w *WarmState) Reset() {
	w.basis = w.basis[:0]
	w.m, w.n = 0, 0
}

// SwapBasis exchanges the stored bases of w and other. Sweeps that
// alternate between two problem shapes (e.g. the Γ feasibility LP and
// its extremization twin over the same dropped subset) keep one
// WarmState per shape and swap as the sweep switches, so neither shape
// pollutes the other's basis.
func (w *WarmState) SwapBasis(other *WarmState) {
	if other == nil {
		return
	}
	w.basis, other.basis = other.basis, w.basis
	w.m, other.m = other.m, w.m
	w.n, other.n = other.n, w.n
}

func (w *WarmState) store(basis []int, m, n int) {
	for _, b := range basis {
		if b >= n { // artificial still basic: not a reusable basis
			return
		}
	}
	w.basis = append(w.basis[:0], basis...)
	w.m, w.n = m, n
}

// ReplaceRow overwrites constraint i in place with coef . x (rel) rhs,
// reusing the existing coefficient storage. The slice is copied.
// Together with SolveWarm this is the incremental-edit entry point for
// sweeps whose consecutive LPs differ in a handful of rows.
func (p *Problem) ReplaceRow(i int, coef []float64, rel Rel, rhs float64) {
	if i < 0 || i >= len(p.cons) {
		panic("lp: ReplaceRow index out of range")
	}
	if len(coef) != p.n {
		panic("lp: ReplaceRow coefficient length mismatch")
	}
	c := &p.cons[i]
	if cap(c.coef) < p.n {
		c.coef = make([]float64, p.n)
	}
	c.coef = c.coef[:p.n]
	copy(c.coef, coef)
	c.rel = rel
	c.rhs = rhs
}

// ReplaceSparseRow is ReplaceRow with (index, coefficient) pairs;
// unspecified coefficients are zero.
func (p *Problem) ReplaceSparseRow(i int, idx []int, coef []float64, rel Rel, rhs float64) {
	if i < 0 || i >= len(p.cons) {
		panic("lp: ReplaceSparseRow index out of range")
	}
	if len(idx) != len(coef) {
		panic("lp: ReplaceSparseRow index/coef length mismatch")
	}
	c := &p.cons[i]
	if cap(c.coef) < p.n {
		c.coef = make([]float64, p.n)
	}
	c.coef = c.coef[:p.n]
	clear(c.coef)
	for k, j := range idx {
		if j < 0 || j >= p.n {
			panic("lp: ReplaceSparseRow index out of range")
		}
		c.coef[j] += coef[k]
	}
	c.rel = rel
	c.rhs = rhs
}

// SolveWarm solves p like Solve, but first attempts a warm start from
// the basis stored in w. The warm path can only short-circuit with a
// certified Infeasible (verified against the original standardized
// data with warmInfeasMargin slack); every other case falls back to the
// cold pivot sequence, so results — statuses, solution vectors, bits —
// are identical to Solve. On return w holds the most recent reusable
// basis (from the warm factorization on a hit, or the cold optimal
// basis on a fallback that ended Optimal with no basic artificials).
func (p *Problem) SolveWarm(w *WarmState) (*Result, error) {
	if w == nil || !warmEnabled.Load() || len(p.cons) > warmMaxRows {
		return p.Solve()
	}
	lpWarmAttempts.Inc()
	lpSolves.Inc()
	lpPoolGets.Inc()
	ws := wsPool.Get().(*workspace)
	ws.reset()
	defer wsPool.Put(ws)
	std, err := p.standardize(ws)
	if err != nil {
		return nil, err
	}
	if warmCertifyInfeasible(std, w) {
		lpWarmHits.Inc()
		lpInfeasible.Inc()
		return &Result{Status: Infeasible}, nil
	}
	lpWarmFallbacks.Inc()
	std.capture = w
	res := std.solve()
	switch res.Status {
	case IterationLimit:
		lpIterLimited.Inc()
	case Infeasible:
		lpInfeasible.Inc()
	}
	if res.Status == Optimal {
		res.X = std.recover(res.X)
		obj := 0.0
		for i, c := range p.obj {
			obj += c * res.X[i]
		}
		res.Objective = obj
	}
	return res, nil
}

// warmCertifyInfeasible refactors [A | I] around the stored basis
// (repairing rows whose stored column pivots too small on the new
// matrix), runs a budgeted Bland dual-pivot loop, and returns true only
// when it finds a row whose identity-block part u is an exactly
// reverified Farkas certificate: u^T b < -warmInfeasMargin * scale and
// u^T A >= -warmCertSlack * scale componentwise, both recomputed from
// the untouched standardized data, so accumulated pivot error cannot
// fake a certificate.
func warmCertifyInfeasible(s *standard, w *WarmState) bool {
	m, n := s.m, s.n
	if m == 0 || n == 0 {
		return false
	}
	ws := s.ws
	total := n + m
	a := make([][]float64, m)
	rows := ws.floats(m * total)
	for i := 0; i < m; i++ {
		a[i] = rows[i*total : (i+1)*total : (i+1)*total]
		copy(a[i], s.a[i])
		a[i][n+i] = 1 // identity block: tracks B^-1 rows
	}
	b := ws.floats(m)
	copy(b, s.b)
	basis := ws.ints(m)
	for i := range basis {
		basis[i] = -1
	}
	isBasic := ws.ints(n)

	pivotInto := func(r, j int) {
		inv := 1 / a[r][j]
		ar := a[r]
		for k := range ar {
			ar[k] *= inv
		}
		ar[j] = 1
		b[r] *= inv
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := a[i][j]
			if f == 0 {
				continue
			}
			ai := a[i]
			for k := range ai {
				ai[k] -= f * ar[k]
			}
			ai[j] = 0
			b[i] -= f * b[r]
		}
		basis[r] = j
		isBasic[j] = 1
	}

	// Factor the stored basis: each stored column picks the unpivoted
	// row where it is largest; unusable columns are skipped and their
	// rows repaired below.
	if w.m == m && w.n == n {
		for _, j := range w.basis {
			if j < 0 || j >= n || isBasic[j] == 1 {
				continue
			}
			br, bv := -1, warmPivotEps
			for i := 0; i < m; i++ {
				if basis[i] >= 0 {
					continue
				}
				if v := math.Abs(a[i][j]); v > bv {
					br, bv = i, v
				}
			}
			if br >= 0 {
				pivotInto(br, j)
			}
		}
	}
	// Repair: rows still without a basic column take their largest
	// unused structural column. A row with no usable pivot at all is
	// degenerate on this matrix; give up and go cold.
	for i := 0; i < m; i++ {
		if basis[i] >= 0 {
			continue
		}
		bj, bv := -1, warmPivotEps
		for j := 0; j < n; j++ {
			if isBasic[j] == 1 {
				continue
			}
			if v := math.Abs(a[i][j]); v > bv {
				bj, bv = j, v
			}
		}
		if bj < 0 {
			lpWarmDegenerate.Inc()
			return false
		}
		pivotInto(i, bj)
	}

	feasScale := 1.0
	for _, bi := range s.b {
		if v := math.Abs(bi); v > feasScale {
			feasScale = v
		}
	}

	budget := 2*m + 16
	for iter := 0; iter < budget; iter++ {
		// Leaving row: most negative b.
		r, rv := -1, -warmPivotEps*feasScale
		for i := 0; i < m; i++ {
			if b[i] < rv {
				r, rv = i, b[i]
			}
		}
		if r < 0 {
			// Primal feasible: the problem is feasible, nothing for the
			// warm path to certify. Store the factored basis for the
			// next candidate and let the cold solve answer.
			w.store(basis, m, n)
			return false
		}
		// Entering column: Bland smallest structural j with a[r][j]
		// negative enough to pivot on.
		e := -1
		for j := 0; j < n; j++ {
			if isBasic[j] == 0 && a[r][j] < -warmPivotEps {
				e = j
				break
			}
		}
		if e < 0 {
			// Row r claims sum_j (B^-1 A)_rj y_j = b_r < 0 with all
			// coefficients ~nonnegative: a Farkas certificate. Reverify
			// it exactly against the original standardized data before
			// trusting it.
			u := a[r][n : n+m]
			if warmVerifyCertificate(s, u, feasScale) {
				w.store(basis, m, n)
				return true
			}
			return false
		}
		isBasic[basis[r]] = 0
		pivotInto(r, e)
	}
	return false
}

// warmVerifyCertificate checks the Farkas certificate u against the
// untouched standardized data: u^T b must be negative with
// warmInfeasMargin relative margin and every component of u^T A must be
// nonnegative up to warmCertSlack relative slack. Any y >= 0 then gives
// u^T A y >~ 0 while u^T b << 0, so A y = b has no nonnegative solution
// within the cold solver's phase-1 acceptance band.
func warmVerifyCertificate(s *standard, u []float64, feasScale float64) bool {
	uInf := 0.0
	for _, v := range u {
		if a := math.Abs(v); a > uInf {
			uInf = a
		}
	}
	if uInf == 0 || math.IsNaN(uInf) || math.IsInf(uInf, 0) {
		return false
	}
	ub := 0.0
	for i, v := range u {
		ub += v * s.b[i]
	}
	if ub > -warmInfeasMargin*feasScale*uInf {
		return false
	}
	for j := 0; j < s.n; j++ {
		col := 0.0
		colScale := 1.0
		for i := 0; i < s.m; i++ {
			aij := s.a[i][j]
			col += u[i] * aij
			if v := math.Abs(aij); v > colScale {
				colScale = v
			}
		}
		if col < -warmCertSlack*uInf*colScale {
			return false
		}
	}
	return true
}
