package lp

import "math"

// tableau is a dense simplex tableau for the standard form
// min c^T y, A y = b (b >= 0), y >= 0, with artificial columns appended
// for phase 1.
type tableau struct {
	m, n  int // constraint rows, structural columns (incl. slack/surplus)
	nart  int
	a     [][]float64 // m rows of n+nart entries
	b     []float64
	basis []int
	// objective rows: reduced costs and current value, maintained by pivots
	obj1, obj2   []float64
	val1, val2   float64
	blandMode    bool
	sinceImprove int
	lastVal      float64
	feasScale    float64
	pivots       int // pivot operations performed (both phases)
}

func (s *standard) solve() *Result {
	t := newTableau(s)
	// One atomic add per solve (not per pivot) keeps the hot loop clean.
	defer func() {
		lpPivots.Add(int64(t.pivots))
		lpPivotsPerRun.Observe(float64(t.pivots))
	}()
	// ---- Phase 1: minimize the sum of artificials.
	status := t.iterate(t.obj1, &t.val1, false)
	if status == IterationLimit {
		return &Result{Status: IterationLimit}
	}
	if t.val1 > 1e-7*t.feasScale {
		return &Result{Status: Infeasible}
	}
	t.expelArtificials()
	// ---- Phase 2: minimize the real objective; artificials may not enter.
	t.blandMode = false
	t.sinceImprove = 0
	status = t.iterate(t.obj2, &t.val2, true)
	switch status {
	case Unbounded:
		return &Result{Status: Unbounded}
	case IterationLimit:
		return &Result{Status: IterationLimit}
	}
	y := make([]float64, s.n)
	for i, bi := range t.basis {
		if bi < s.n {
			y[bi] = t.b[i]
		}
	}
	if s.capture != nil {
		s.capture.store(t.basis, s.m, s.n)
	}
	return &Result{Status: Optimal, X: y, Objective: t.val2}
}

func newTableau(s *standard) *tableau {
	nart := 0
	for _, ar := range s.artRow {
		if ar {
			nart++
		}
	}
	ws := s.ws
	t := &tableau{m: s.m, n: s.n, nart: nart}
	total := s.n + nart
	t.a = make([][]float64, s.m)
	t.b = ws.floats(s.m)
	copy(t.b, s.b)
	t.basis = ws.ints(s.m)
	art := s.n
	t.feasScale = 1.0
	for _, bi := range s.b {
		if a := math.Abs(bi); a > t.feasScale {
			t.feasScale = a
		}
	}
	for i := 0; i < s.m; i++ {
		t.a[i] = ws.floats(total)
		copy(t.a[i], s.a[i])
		if s.artRow[i] {
			t.a[i][art] = 1
			t.basis[i] = art
			art++
		} else {
			// The slack column of this row is its identity column: find it.
			// standardize() placed exactly one +1 slack for LE rows; locate
			// the last column with coefficient 1 that is a slack.
			t.basis[i] = findSlack(s, i)
		}
	}
	// Phase-1 reduced costs: cost 1 on artificials, priced out against the
	// artificial basis rows.
	t.obj1 = ws.floats(total)
	for j := s.n; j < total; j++ {
		t.obj1[j] = 1
	}
	for i := 0; i < s.m; i++ {
		if s.artRow[i] {
			for j := 0; j < total; j++ {
				t.obj1[j] -= t.a[i][j]
			}
			t.val1 += t.b[i]
		}
	}
	// Phase-2 reduced costs: the real costs (initial basis has zero cost).
	t.obj2 = ws.floats(total)
	copy(t.obj2, s.c)
	t.val2 = 0
	return t
}

// findSlack locates the slack column serving as the identity basis column
// of a non-artificial row.
func findSlack(s *standard, row int) int {
	// Slack columns live in [structural, s.n); each belongs to exactly one
	// row with coefficient +1 (LE rows after rhs normalization).
	for j := s.n - 1; j >= 0; j-- {
		if s.a[row][j] == 1 {
			// Verify it's an identity column across all rows.
			identity := true
			for i := 0; i < s.m; i++ {
				if i != row && s.a[i][j] != 0 {
					identity = false
					break
				}
			}
			if identity {
				return j
			}
		}
	}
	// Unreachable if standardize() is correct.
	panic("lp: no identity column for slack row")
}

// iterate runs simplex pivots on the given objective row until optimality,
// unboundedness or the iteration cap. When blockArtificials is set,
// artificial columns never enter the basis.
func (t *tableau) iterate(obj []float64, val *float64, blockArtificials bool) Status {
	limit := 5000 + 60*(t.m+t.n+t.nart)
	t.lastVal = *val
	for iter := 0; iter < limit; iter++ {
		enter := t.chooseEntering(obj, blockArtificials)
		if enter < 0 {
			return Optimal
		}
		leave := t.ratioTest(enter)
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Degeneracy watchdog: if the objective stalls for long, switch to
		// Bland's rule, which guarantees termination.
		if *val < t.lastVal-1e-12*(1+math.Abs(t.lastVal)) {
			t.lastVal = *val
			t.sinceImprove = 0
		} else {
			t.sinceImprove++
			if t.sinceImprove > 2*(t.m+t.n+t.nart)+50 {
				t.blandMode = true
			}
		}
	}
	return IterationLimit
}

func (t *tableau) chooseEntering(obj []float64, blockArtificials bool) int {
	limit := t.n + t.nart
	if blockArtificials {
		limit = t.n
	}
	if t.blandMode {
		for j := 0; j < limit; j++ {
			if obj[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if obj[j] < bestVal {
			best, bestVal = j, obj[j]
		}
	}
	return best
}

func (t *tableau) ratioTest(enter int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aie := t.a[i][enter]
		if aie <= pivotEps {
			continue
		}
		r := t.b[i] / aie
		if r < bestRatio-1e-12 || (r < bestRatio+1e-12 && (best < 0 || t.basis[i] < t.basis[best])) {
			best, bestRatio = i, r
		}
	}
	return best
}

// pivot performs the pivot on (row, col), updating both objective rows so
// phase 2 stays priced out during phase 1.
func (t *tableau) pivot(row, col int) {
	t.pivots++
	p := t.a[row][col]
	inv := 1 / p
	ar := t.a[row]
	for j := range ar {
		ar[j] *= inv
	}
	ar[col] = 1 // exact
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * ar[j]
		}
		ai[col] = 0 // exact
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0 // clamp tiny negative drift
		}
	}
	// Objective value update: entering with reduced cost f at step length
	// b[row] changes z by f*b[row] (f < 0 on improving pivots).
	if f := t.obj1[col]; f != 0 {
		for j := range t.obj1 {
			t.obj1[j] -= f * ar[j]
		}
		t.obj1[col] = 0
		t.val1 += f * t.b[row]
	}
	if f := t.obj2[col]; f != 0 {
		for j := range t.obj2 {
			t.obj2[j] -= f * ar[j]
		}
		t.obj2[col] = 0
		t.val2 += f * t.b[row]
	}
	t.basis[row] = col
}

// expelArtificials pivots basic artificial variables (all at value ~0
// after a feasible phase 1) out of the basis where possible. Rows where no
// structural pivot exists are redundant; their artificial stays basic at
// zero and artificials are blocked from entering in phase 2.
func (t *tableau) expelArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			continue
		}
		pivCol := -1
		for j := 0; j < t.n; j++ {
			if math.Abs(t.a[i][j]) > 1e-8 {
				pivCol = j
				break
			}
		}
		if pivCol >= 0 {
			t.pivot(i, pivCol)
		}
	}
}
