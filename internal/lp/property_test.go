package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: scaling the objective scales the optimum; scaling a
// constraint row leaves the feasible set (hence the optimum) unchanged.
func TestPropertyObjectiveScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	f := func() bool {
		n := 2 + rng.Intn(3)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		build := func(scale float64) *Problem {
			p := NewProblem(n)
			obj := make([]float64, n)
			for i := range obj {
				obj[i] = c[i] * scale
			}
			p.SetObjective(obj, Minimize)
			for i := 0; i < n; i++ {
				p.SetBounds(i, -1, 1)
			}
			return p
		}
		r1, err1 := build(1).Solve()
		r2, err2 := build(3).Solve()
		if err1 != nil || err2 != nil || r1.Status != Optimal || r2.Status != Optimal {
			return false
		}
		return math.Abs(3*r1.Objective-r2.Objective) < 1e-7*(1+math.Abs(r2.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRowScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	f := func() bool {
		n := 2 + rng.Intn(3)
		c := make([]float64, n)
		a := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
			a[i] = rng.NormFloat64()
		}
		rhs := rng.NormFloat64()
		build := func(scale float64) *Problem {
			p := NewProblem(n)
			p.SetObjective(c, Minimize)
			for i := 0; i < n; i++ {
				p.SetBounds(i, -2, 2)
			}
			row := make([]float64, n)
			for i := range row {
				row[i] = a[i] * scale
			}
			p.AddConstraint(row, LE, rhs*scale)
			return p
		}
		r1, err1 := build(1).Solve()
		r2, err2 := build(2.5).Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.Status != r2.Status {
			return false
		}
		if r1.Status != Optimal {
			return true
		}
		return math.Abs(r1.Objective-r2.Objective) < 1e-6*(1+math.Abs(r1.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (weak duality flavor): adding a constraint can only worsen a
// minimization optimum (or make it infeasible), never improve it.
func TestPropertyConstraintMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	f := func() bool {
		n := 2 + rng.Intn(3)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		p1 := NewProblem(n)
		p1.SetObjective(c, Minimize)
		for i := 0; i < n; i++ {
			p1.SetBounds(i, -1, 1)
		}
		extra := make([]float64, n)
		for i := range extra {
			extra[i] = rng.NormFloat64()
		}
		rhs := rng.NormFloat64()

		p2 := NewProblem(n)
		p2.SetObjective(c, Minimize)
		for i := 0; i < n; i++ {
			p2.SetBounds(i, -1, 1)
		}
		p2.AddConstraint(extra, LE, rhs)

		r1, err1 := p1.Solve()
		r2, err2 := p2.Solve()
		if err1 != nil || err2 != nil || r1.Status != Optimal {
			return false
		}
		if r2.Status == Infeasible {
			return true
		}
		return r2.Objective >= r1.Objective-1e-7*(1+math.Abs(r1.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the reported optimum equals c^T x for the reported solution.
func TestPropertyObjectiveConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	f := func() bool {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		p := NewProblem(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		p.SetObjective(c, Maximize)
		for i := 0; i < n; i++ {
			p.SetBounds(i, -1, 1)
		}
		for k := 0; k < m; k++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			p.AddConstraint(row, LE, rng.Float64()*2)
		}
		res, err := p.Solve()
		if err != nil {
			return false
		}
		if res.Status != Optimal {
			return true
		}
		obj := 0.0
		for i := range c {
			obj += c[i] * res.X[i]
		}
		return math.Abs(obj-res.Objective) < 1e-8*(1+math.Abs(obj))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
