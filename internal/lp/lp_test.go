package lp

import (
	"math"
	"math/rand"
	"testing"
)

func mustSolve(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return res
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
	p := NewProblem(2)
	p.SetObjective([]float64{3, 5}, Maximize)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	res := mustSolve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-36) > 1e-8 {
		t.Errorf("objective = %v, want 36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-6) > 1e-8 {
		t.Errorf("X = %v, want [2 6]", res.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x >= 1. Optimum at (4, 0): 8? No:
	// x=4,y=0 gives 8; x=1,y=3 gives 11. So 8.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3}, Minimize)
	p.AddConstraint([]float64{1, 1}, GE, 4)
	p.AddConstraint([]float64{1, 0}, GE, 1)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.Objective-8) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal 8", res.Status, res.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + 2y = 3, x - y = 0 => x = y = 1, obj 2.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, Minimize)
	p.AddConstraint([]float64{1, 2}, EQ, 3)
	p.AddConstraint([]float64{1, -1}, EQ, 0)
	res := mustSolve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]-1) > 1e-8 {
		t.Errorf("X = %v", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	res := mustSolve(t, p)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleByDefaultBounds(t *testing.T) {
	// x >= 0 by default, so x = -1 is infeasible.
	p := NewProblem(1)
	p.AddConstraint([]float64{1}, EQ, -1)
	res := mustSolve(t, p)
	if res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1}, Maximize)
	p.AddConstraint([]float64{1}, GE, 0)
	res := mustSolve(t, p)
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestFreeVariables(t *testing.T) {
	// min x s.t. x >= -7 with x free: optimum -7.
	p := NewProblem(1)
	p.SetFree(0)
	p.SetObjective([]float64{1}, Minimize)
	p.AddConstraint([]float64{1}, GE, -7)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.X[0]+7) > 1e-8 {
		t.Fatalf("X = %v status %v", res.X, res.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// max x + y with 1 <= x <= 2, -3 <= y <= -1 => obj 2 + (-1) = 1.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, Maximize)
	p.SetBounds(0, 1, 2)
	p.SetBounds(1, -3, -1)
	res := mustSolve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]+1) > 1e-8 {
		t.Errorf("X = %v", res.X)
	}
	if math.Abs(res.Objective-1) > 1e-8 {
		t.Errorf("obj = %v", res.Objective)
	}
}

func TestUpperBoundedOnly(t *testing.T) {
	// Variable with (-inf, 5]: max x => 5.
	p := NewProblem(1)
	p.SetBounds(0, math.Inf(-1), 5)
	p.SetObjective([]float64{1}, Maximize)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.X[0]-5) > 1e-8 {
		t.Fatalf("X = %v status %v", res.X, res.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  <=>  x >= 3; min x => 3.
	p := NewProblem(1)
	p.SetObjective([]float64{1}, Minimize)
	p.AddConstraint([]float64{-1}, LE, -3)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.X[0]-3) > 1e-8 {
		t.Fatalf("X = %v", res.X)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(4)
	p.SetObjective([]float64{0, 1, 0, 0}, Maximize)
	p.AddSparseConstraint([]int{1, 3}, []float64{1, 1}, LE, 10)
	p.AddSparseConstraint([]int{3}, []float64{1}, GE, 4)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.X[1]-6) > 1e-8 {
		t.Fatalf("X = %v", res.X)
	}
}

func TestFeasibilityOnlyProblem(t *testing.T) {
	// No objective: any feasible point. x + y = 1, x,y >= 0.
	p := NewProblem(2)
	p.AddConstraint([]float64{1, 1}, EQ, 1)
	res := mustSolve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[0]+res.X[1]-1) > 1e-8 || res.X[0] < -1e-9 || res.X[1] < -1e-9 {
		t.Errorf("X = %v not on simplex", res.X)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degeneracy (Beale-like cycling example) -- must terminate.
	p := NewProblem(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6}, Minimize)
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	res := mustSolve(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-0.05)) > 1e-8 {
		t.Errorf("objective = %v, want -0.05", res.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equalities create redundant rows in phase 1.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 2}, Minimize)
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{2, 2}, EQ, 4)
	res := mustSolve(t, p)
	if res.Status != Optimal || math.Abs(res.Objective-2) > 1e-8 {
		t.Fatalf("status %v obj %v", res.Status, res.Objective)
	}
}

func TestZeroConstraintProblems(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, Minimize)
	res := mustSolve(t, p)
	if res.Status != Optimal || res.Objective != 0 {
		t.Fatalf("empty min: %v %v", res.Status, res.Objective)
	}
	q := NewProblem(1)
	q.SetObjective([]float64{1}, Maximize)
	res2 := mustSolve(t, q)
	if res2.Status != Unbounded {
		t.Fatalf("empty max: %v", res2.Status)
	}
}

// Convex hull membership in LP form: is q in conv{p1..pm}? This is the
// single most common use of the solver in this library.
func hullMembershipLP(pts [][]float64, q []float64) Status {
	m := len(pts)
	d := len(q)
	p := NewProblem(m)
	for k := 0; k < d; k++ {
		row := make([]float64, m)
		for i := 0; i < m; i++ {
			row[i] = pts[i][k]
		}
		p.AddConstraint(row, EQ, q[k])
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	p.AddConstraint(ones, EQ, 1)
	res, err := p.Solve()
	if err != nil {
		panic(err)
	}
	return res.Status
}

func TestHullMembership(t *testing.T) {
	tri := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	if hullMembershipLP(tri, []float64{0.2, 0.2}) != Optimal {
		t.Error("interior point not in hull")
	}
	if hullMembershipLP(tri, []float64{0.5, 0.5}) != Optimal {
		t.Error("boundary point not in hull")
	}
	if hullMembershipLP(tri, []float64{0.6, 0.6}) != Infeasible {
		t.Error("exterior point in hull")
	}
	if hullMembershipLP(tri, []float64{-0.1, 0}) != Infeasible {
		t.Error("exterior point in hull (negative)")
	}
}

// Randomized LP duality check: for feasible bounded problems, compare the
// simplex optimum against a brute-force vertex enumeration on small random
// instances with box bounds (the box makes enumeration easy: optimum of a
// feasible LP over a polytope is attained at some basic point; we instead
// just verify feasibility and local optimality via random probing).
func TestRandomProbing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := NewProblem(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		p.SetObjective(c, Minimize)
		for i := 0; i < n; i++ {
			p.SetBounds(i, -2, 2) // box keeps everything bounded
		}
		type row struct {
			a   []float64
			rel Rel
			rhs float64
		}
		var rows []row
		for k := 0; k < m; k++ {
			a := make([]float64, n)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			rel := []Rel{LE, GE}[rng.Intn(2)]
			rhs := rng.NormFloat64() * 2
			p.AddConstraint(a, rel, rhs)
			rows = append(rows, row{a, rel, rhs})
		}
		res := mustSolve(t, p)
		if res.Status == Infeasible {
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Feasibility of the returned point.
		for _, r := range rows {
			s := 0.0
			for i := range r.a {
				s += r.a[i] * res.X[i]
			}
			switch r.rel {
			case LE:
				if s > r.rhs+1e-6 {
					t.Fatalf("trial %d: constraint violated: %v > %v", trial, s, r.rhs)
				}
			case GE:
				if s < r.rhs-1e-6 {
					t.Fatalf("trial %d: constraint violated: %v < %v", trial, s, r.rhs)
				}
			}
		}
		for i := range res.X {
			if res.X[i] < -2-1e-6 || res.X[i] > 2+1e-6 {
				t.Fatalf("trial %d: bound violated: x[%d]=%v", trial, i, res.X[i])
			}
		}
		// Local optimality probe: random feasible perturbations should not
		// beat the reported optimum.
		for probe := 0; probe < 50; probe++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = -2 + 4*rng.Float64()
			}
			ok := true
			for _, r := range rows {
				s := 0.0
				for i := range r.a {
					s += r.a[i] * x[i]
				}
				if (r.rel == LE && s > r.rhs) || (r.rel == GE && s < r.rhs) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for i := range c {
				obj += c[i] * x[i]
			}
			if obj < res.Objective-1e-6 {
				t.Fatalf("trial %d: random point beats optimum: %v < %v", trial, obj, res.Objective)
			}
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := NewProblem(2)
	for name, fn := range map[string]func(){
		"objective length": func() { p.SetObjective([]float64{1}, Minimize) },
		"constraint width": func() { p.AddConstraint([]float64{1}, LE, 0) },
		"bounds reversed":  func() { p.SetBounds(0, 2, 1) },
		"bounds index":     func() { p.SetBounds(9, 0, 1) },
		"sparse mismatch":  func() { p.AddSparseConstraint([]int{0}, []float64{1, 2}, LE, 0) },
		"sparse index":     func() { p.AddSparseConstraint([]int{7}, []float64{1}, LE, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStatusAndRelStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterationLimit.String() != "iteration-limit" {
		t.Error("Status strings wrong")
	}
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Error("Rel strings wrong")
	}
	if Status(99).String() != "?" || Rel(99).String() != "?" {
		t.Error("unknown enum strings wrong")
	}
}

func TestMaximizeEqualsNegatedMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		build := func(sense Sense, obj []float64) *Result {
			p := NewProblem(n)
			p.SetObjective(obj, sense)
			for i := 0; i < n; i++ {
				p.SetBounds(i, -1, 1)
			}
			row := make([]float64, n)
			for i := range row {
				row[i] = 1
			}
			p.AddConstraint(row, LE, 1)
			res, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		rmax := build(Maximize, c)
		neg := make([]float64, n)
		for i := range c {
			neg[i] = -c[i]
		}
		rmin := build(Minimize, neg)
		if rmax.Status != Optimal || rmin.Status != Optimal {
			t.Fatalf("statuses %v %v", rmax.Status, rmin.Status)
		}
		if math.Abs(rmax.Objective+rmin.Objective) > 1e-7 {
			t.Fatalf("max %v != -min %v", rmax.Objective, rmin.Objective)
		}
	}
}
