package batch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

// TestOrderingDeterminism checks that results always land at their
// trial's index regardless of scheduling: trial i returns i, with yields
// sprinkled in to shake up interleavings.
func TestOrderingDeterminism(t *testing.T) {
	const n = 300
	trials := make([]func(context.Context) (int, error), n)
	for i := 0; i < n; i++ {
		i := i
		trials[i] = func(context.Context) (int, error) {
			if i%3 == 0 {
				runtime.Gosched()
			}
			return i, nil
		}
	}
	for _, workers := range []int{1, 2, 8, n} {
		out := Run(context.Background(), Options{Workers: workers}, trials)
		if len(out) != n {
			t.Fatalf("workers=%d: %d results for %d trials", workers, len(out), n)
		}
		for i, r := range out {
			if r.Err != nil || r.Value != i || r.Index != i {
				t.Fatalf("workers=%d: result %d = {Index:%d Value:%d Err:%v}", workers, i, r.Index, r.Value, r.Err)
			}
		}
	}
}

// TestPanicIsolation checks that one panicking trial becomes an ErrPanic
// result without disturbing its neighbors.
func TestPanicIsolation(t *testing.T) {
	trials := []func(context.Context) (string, error){
		func(context.Context) (string, error) { return "a", nil },
		func(context.Context) (string, error) { panic("boom") },
		func(context.Context) (string, error) { return "c", nil },
	}
	out := Run(context.Background(), Options{Workers: 3}, trials)
	if out[0].Err != nil || out[0].Value != "a" || out[2].Err != nil || out[2].Value != "c" {
		t.Fatalf("healthy trials disturbed: %+v", out)
	}
	if !errors.Is(out[1].Err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", out[1].Err)
	}
	if FirstErr(out) == nil {
		t.Fatal("FirstErr missed the panic")
	}
}

// TestCancelSkipsUnstarted cancels the batch from inside trial 0 (single
// worker, so later trials have not started) and checks they are skipped
// with ErrNotStarted while the completed trial is untouched.
func TestCancelSkipsUnstarted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trials := make([]func(context.Context) (int, error), 10)
	for i := range trials {
		i := i
		trials[i] = func(context.Context) (int, error) {
			if i == 0 {
				cancel()
			}
			return i, nil
		}
	}
	out := Run(ctx, Options{Workers: 1}, trials)
	if out[0].Err != nil || out[0].Value != 0 {
		t.Fatalf("trial 0 should have completed: %+v", out[0])
	}
	for i := 1; i < len(out); i++ {
		if !errors.Is(out[i].Err, ErrNotStarted) || !errors.Is(out[i].Err, context.Canceled) {
			t.Fatalf("trial %d: want ErrNotStarted wrapping context.Canceled, got %v", i, out[i].Err)
		}
	}
}

// TestCancelReachesRunningTrial checks that a running trial observes the
// batch cancellation through its context.
func TestCancelReachesRunningTrial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	trials := []func(context.Context) (int, error){
		func(tctx context.Context) (int, error) {
			close(started)
			<-tctx.Done()
			return 0, tctx.Err()
		},
	}
	go func() {
		<-started
		cancel()
	}()
	out := Run(ctx, Options{Workers: 1}, trials)
	if !errors.Is(out[0].Err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", out[0].Err)
	}
}

// TestPerTrialDeadline checks that TrialTimeout bounds each trial
// individually without touching the batch context.
func TestPerTrialDeadline(t *testing.T) {
	trials := []func(context.Context) (int, error){
		func(tctx context.Context) (int, error) {
			<-tctx.Done()
			return 0, tctx.Err()
		},
		func(context.Context) (int, error) { return 7, nil },
	}
	out := Run(context.Background(), Options{Workers: 2, TrialTimeout: 20 * time.Millisecond}, trials)
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", out[0].Err)
	}
	if out[1].Err != nil || out[1].Value != 7 {
		t.Fatalf("fast trial should be unaffected: %+v", out[1])
	}
}

// TestConcurrentTrialsShareCache fans identical geometry queries across
// concurrent trials sharing the process-wide kernel cache and checks (a)
// no race (run with -race), (b) bit-identical results, (c) the cache
// actually absorbed the repeats.
func TestConcurrentTrialsShareCache(t *testing.T) {
	geom.ResetCache()
	rng := rand.New(rand.NewSource(21))
	sets := make([]*vec.Set, 8)
	queries := make([]vec.V, 8)
	for i := range sets {
		pts := make([]vec.V, 6)
		for j := range pts {
			pts[j] = vec.Of(rng.NormFloat64(), rng.NormFloat64())
		}
		sets[i] = vec.NewSet(pts...)
		queries[i] = vec.Of(rng.NormFloat64(), rng.NormFloat64())
	}
	const n = 64
	trials := make([]func(context.Context) (float64, error), n)
	for i := 0; i < n; i++ {
		i := i
		trials[i] = func(context.Context) (float64, error) {
			d, _ := geom.Dist2(queries[i%8], sets[i%8])
			return d, nil
		}
	}
	out := Run(context.Background(), Options{Workers: 16}, trials)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("trial %d: %v", i, r.Err)
		}
		if base := out[i%8]; r.Value != base.Value {
			t.Fatalf("trial %d: %v differs from trial %d: %v", i, r.Value, i%8, base.Value)
		}
	}
	if st := geom.CacheStats(); st.Hits == 0 {
		t.Fatalf("expected shared-cache hits, got %+v", st)
	}
}

// TestMap checks the Map convenience preserves item order.
func TestMap(t *testing.T) {
	items := []int{5, 6, 7}
	out := Map(context.Background(), Options{}, items, func(_ context.Context, x int) (string, error) {
		return fmt.Sprintf("v%d", x), nil
	})
	for i, want := range []string{"v5", "v6", "v7"} {
		if out[i].Err != nil || out[i].Value != want {
			t.Fatalf("Map[%d] = %+v, want %q", i, out[i], want)
		}
	}
}

// TestEmptyBatch checks the degenerate case.
func TestEmptyBatch(t *testing.T) {
	out := Run[int](context.Background(), Options{}, nil)
	if len(out) != 0 {
		t.Fatalf("want empty results, got %d", len(out))
	}
}
