// Package batch is the concurrent trial-execution engine behind the
// library's experiment sweeps and benchmark harnesses.
//
// A batch is an ordered list of independent trials (closures returning a
// value and an error). The engine fans them across a bounded worker pool
// and guarantees:
//
//   - deterministic result ordering: results[i] always belongs to
//     trials[i], whatever interleaving the scheduler produced;
//   - context plumbing: the batch context is passed to every trial,
//     cancellation stops unstarted trials immediately and reaches
//     running trials through their context;
//   - per-trial deadlines: Options.TrialTimeout wraps each trial's
//     context with its own deadline;
//   - panic isolation: a panicking trial is converted into an error
//     (wrapping ErrPanic, with the stack) without taking down the batch
//     or the process.
//
// Trials share the process-wide geometry kernel caches (internal/memo),
// which is where most of the batch speedup comes from: concurrent trials
// with overlapping sub-problems each pay for a solve only once.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"relaxedbvc/internal/metrics"
)

// ErrPanic wraps a recovered trial panic.
var ErrPanic = errors.New("batch: trial panicked")

// ErrNotStarted wraps the context error of trials that were still queued
// when the batch context was canceled.
var ErrNotStarted = errors.New("batch: trial not started")

// Engine observability, published into the default metrics registry:
// queue depth and in-flight trials are live gauges (watch them via
// -pprof / expvar during a sweep), trial latency is a fixed-bucket
// histogram, and the counters record completed trials, isolated panics
// and cancellation casualties.
var (
	queueDepth    = metrics.DefaultGauge("batch_queue_depth")
	inflight      = metrics.DefaultGauge("batch_inflight")
	trialsTotal   = metrics.DefaultCounter("batch_trials_total")
	trialErrors   = metrics.DefaultCounter("batch_trial_errors_total")
	panicsTotal   = metrics.DefaultCounter("batch_panics_total")
	canceledTotal = metrics.DefaultCounter("batch_cancellations_total")
	trialSeconds  = metrics.DefaultHistogram("batch_trial_seconds", metrics.TimeBuckets())
)

// Options tunes a batch run. The zero value is ready to use.
type Options struct {
	// Workers bounds the goroutine pool (0 = GOMAXPROCS, capped at the
	// trial count).
	Workers int
	// TrialTimeout, when positive, gives each trial its own deadline via
	// context.WithTimeout on top of the batch context.
	TrialTimeout time.Duration
}

// Result is the outcome of one trial.
type Result[T any] struct {
	// Index is the trial's position in the input slice (results are
	// already ordered; the field makes that checkable).
	Index int
	// Value is the trial's return value (zero when Err != nil).
	Value T
	// Err is the trial's error, a wrapped ErrPanic, or a wrapped
	// ErrNotStarted when the batch was canceled first.
	Err error
	// Elapsed is the trial's wall-clock duration (0 for unstarted
	// trials).
	Elapsed time.Duration
}

// Run executes the trials on a bounded worker pool and returns one
// Result per trial, in input order. It never returns an error itself:
// per-trial failures (including panics and cancellation) are recorded in
// the corresponding Result.Err. Run blocks until every started trial has
// returned — cancellation prevents new trials from starting but does not
// abandon running ones, so no trial goroutine outlives the call.
func Run[T any](ctx context.Context, opts Options, trials []func(context.Context) (T, error)) []Result[T] {
	n := len(trials)
	out := make([]Result[T], n)
	if n == 0 {
		return out
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	queueDepth.Add(int64(n))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				queueDepth.Add(-1)
				out[i] = runTrial(ctx, opts, i, trials[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Map runs fn over items with the batch engine and returns the results
// in item order.
func Map[In, Out any](ctx context.Context, opts Options, items []In, fn func(context.Context, In) (Out, error)) []Result[Out] {
	trials := make([]func(context.Context) (Out, error), len(items))
	for i := range items {
		item := items[i]
		trials[i] = func(tctx context.Context) (Out, error) { return fn(tctx, item) }
	}
	return Run(ctx, opts, trials)
}

// FirstErr returns the first (lowest-index) trial error, or nil.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

func runTrial[T any](ctx context.Context, opts Options, i int, trial func(context.Context) (T, error)) (res Result[T]) {
	res.Index = i
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("%w: trial %d: %w", ErrNotStarted, i, err)
		canceledTotal.Inc()
		return res
	}
	tctx := ctx
	if opts.TrialTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, opts.TrialTimeout)
		defer cancel()
	}
	inflight.Add(1)
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("%w: trial %d: %v\n%s", ErrPanic, i, r, debug.Stack())
			panicsTotal.Inc()
		}
		inflight.Add(-1)
		trialsTotal.Inc()
		trialSeconds.Observe(res.Elapsed.Seconds())
		if res.Err != nil {
			trialErrors.Inc()
			if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
				canceledTotal.Inc()
			}
		}
	}()
	res.Value, res.Err = trial(tctx)
	return res
}
