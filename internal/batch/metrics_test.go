package batch

import (
	"context"
	"errors"
	"sync"
	"testing"

	"relaxedbvc/internal/metrics"
)

// TestMetricsUnderConcurrentLoad hammers the engine's counters, gauges
// and latency histogram from a full worker pool while snapshots are
// taken concurrently; run with -race this doubles as the data-race
// check for the metrics hot paths.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	const trialsN = 400
	before := metrics.Snap()

	var snapWG sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 4; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = metrics.Snap()
				}
			}
		}()
	}

	trials := make([]func(context.Context) (int, error), trialsN)
	for i := range trials {
		i := i
		trials[i] = func(context.Context) (int, error) {
			if i%7 == 0 {
				return 0, errors.New("synthetic failure")
			}
			if i%31 == 0 {
				panic("synthetic panic")
			}
			return i, nil
		}
	}
	results := Run(context.Background(), Options{Workers: 8}, trials)
	close(stop)
	snapWG.Wait()

	after := metrics.Snap()
	d := after.Diff(before)
	if got := d.Counters["batch_trials_total"]; got != trialsN {
		t.Fatalf("batch_trials_total delta = %d, want %d", got, trialsN)
	}
	if got := d.Histograms["batch_trial_seconds"].Count; got != trialsN {
		t.Fatalf("batch_trial_seconds count delta = %d, want %d", got, trialsN)
	}
	wantPanics, wantErrs := 0, 0
	for i := 0; i < trialsN; i++ {
		switch {
		case i%7 == 0:
			wantErrs++
		case i%31 == 0:
			wantPanics++
			wantErrs++
		}
	}
	if got := d.Counters["batch_panics_total"]; got != int64(wantPanics) {
		t.Fatalf("batch_panics_total delta = %d, want %d", got, wantPanics)
	}
	if got := d.Counters["batch_trial_errors_total"]; got != int64(wantErrs) {
		t.Fatalf("batch_trial_errors_total delta = %d, want %d", got, wantErrs)
	}
	if got := after.Gauges["batch_queue_depth"]; got != 0 {
		t.Fatalf("batch_queue_depth = %d after the batch drained, want 0", got)
	}
	if got := after.Gauges["batch_inflight"]; got != 0 {
		t.Fatalf("batch_inflight = %d after the batch drained, want 0", got)
	}
	if err := FirstErr(results); err == nil {
		t.Fatal("synthetic failures vanished from the results")
	}
}

// TestMetricsCountCancellations checks that trials skipped by a
// canceled batch context land in the cancellation counter.
func TestMetricsCountCancellations(t *testing.T) {
	before := metrics.Snap()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trials := make([]func(context.Context) (int, error), 50)
	for i := range trials {
		trials[i] = func(context.Context) (int, error) { return 0, nil }
	}
	Run(ctx, Options{Workers: 4}, trials)
	d := metrics.Snap().Diff(before)
	if got := d.Counters["batch_cancellations_total"]; got != 50 {
		t.Fatalf("batch_cancellations_total delta = %d, want 50", got)
	}
}
