package acs

import (
	"fmt"
	"math"
	"sort"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// Behavior scripts a node's adversary class. The adversaries act at the
// proposal layer (the strongest lever in ACS: what, if anything, a slot
// proposes) and follow the protocol elsewhere, which keeps every
// execution deterministic on all transports.
type Behavior int

const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Equivocate sends per-recipient INIT values for its own slot each
	// epoch (a classic equivocating proposer; Bracha's echo quorum then
	// refuses to deliver the slot and the subset excludes it).
	Equivocate
	// Mute crashes at start: the node never sends anything.
	Mute
)

// Config describes one ACS stream node.
type Config struct {
	// N, F, Self are the cluster size, fault bound and this node's id.
	N, F, Self int
	// D is the proposal vector dimension.
	D int
	// NormP is the Lp norm of the epoch decision kernel: 1, 2 or +Inf
	// (0 means 2), matching ComputeDeltaStar's dispatch.
	NormP float64
	// Proposals holds this node's per-epoch proposal vectors; their
	// count is the stream length (every node must agree on it).
	Proposals []vec.V
	// Behavior optionally scripts an adversary.
	Behavior Behavior
	// Default substitutes for garbage subset values (nil: zero vector
	// of dimension D).
	Default vec.V
}

// EpochDecision is one epoch's sealed outcome.
type EpochDecision struct {
	// Epoch is the epoch index (decisions commit strictly in order).
	Epoch int
	// Subset holds the agreed slot ids, ascending (at least N-F).
	Subset []int
	// Values are the reliably-delivered proposals of the subset slots,
	// in Subset order (garbage decodes replaced by the default vector).
	Values []vec.V
	// Output and Delta are the relaxed-BVC reduction of Values: the
	// delta*_p minimizer over the subset multiset with fault bound F.
	Output vec.V
	Delta  float64
}

// Stats counts a node's protocol work for Result.Metrics.
type Stats struct {
	// Epochs is the number of sealed epochs.
	Epochs int
	// Slots is the total number of subset slots across sealed epochs.
	Slots int
	// ABARounds is the summed per-slot binary-agreement decision rounds
	// (a round-complexity measure of the agreement layer).
	ABARounds int
}

// epochState is the per-epoch protocol state of a node.
type epochState struct {
	abas         []*abaInst
	delivered    map[int]vec.V // slot -> decoded proposal
	rawDelivered map[int]bool
	zeroCast     bool
	sealed       bool
}

// Node is one ACS stream participant: a deterministic state machine
// implementing sched.SyncProcess, runnable on the in-process lockstep
// engine and — via transport.RunSync — over the channel mesh and TCP
// with bit-identical decisions. Epochs run back to back: epoch e+1's
// broadcasts start in the round that seals epoch e, and messages that
// arrive ahead of the receiver's current epoch accumulate in their
// instances until the receiver catches up.
type Node struct {
	cfg     Config
	rbc     *broadcast.BrachaState
	epochs  map[int]*epochState
	cur     int
	done    bool
	sealed  []EpochDecision
	stats   Stats
	pruneLo int // epochs below this are garbage-collected
}

// NewNode validates cfg and builds the node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.F < 1 {
		return nil, fmt.Errorf("acs: need f >= 1, got f=%d", cfg.F)
	}
	if cfg.N < minProcesses(cfg.F) {
		return nil, fmt.Errorf("acs: reliable broadcast requires n >= 3f+1 (n=%d, f=%d)", cfg.N, cfg.F)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.N {
		return nil, fmt.Errorf("acs: self %d out of range [0,%d)", cfg.Self, cfg.N)
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("acs: need d >= 1, got d=%d", cfg.D)
	}
	for e, p := range cfg.Proposals {
		if len(p) != cfg.D {
			return nil, fmt.Errorf("acs: epoch %d proposal dimension %d != %d", e, len(p), cfg.D)
		}
	}
	return &Node{
		cfg:    cfg,
		rbc:    broadcast.NewBrachaState(cfg.N, cfg.F, cfg.Self),
		epochs: make(map[int]*epochState),
	}, nil
}

// Decisions returns the sealed epoch decisions, in epoch order.
func (n *Node) Decisions() []EpochDecision { return n.sealed }

// Stats reports the node's protocol-work counters.
func (n *Node) Stats() Stats { return n.stats }

func (n *Node) epoch(e int) *epochState {
	es := n.epochs[e]
	if es == nil {
		es = &epochState{
			abas:         make([]*abaInst, n.cfg.N),
			delivered:    make(map[int]vec.V),
			rawDelivered: make(map[int]bool),
		}
		for s := 0; s < n.cfg.N; s++ {
			es.abas[s] = newABAInst(n.cfg.N, n.cfg.F, n.cfg.Self, e, s)
		}
		n.epochs[e] = es
	}
	return es
}

// Start implements sched.SyncProcess: open epoch 0.
func (n *Node) Start() []sched.Outgoing {
	if n.cfg.Behavior == Mute || len(n.cfg.Proposals) == 0 {
		n.done = true
		return nil
	}
	outs := n.open(0)
	return append(outs, n.pump()...)
}

// Done implements sched.SyncProcess.
func (n *Node) Done() bool { return n.done }

// Step implements sched.SyncProcess: dispatch the round's inbox to the
// RBC and ABA layers, then pump the BKR vote/seal logic to fixpoint.
func (n *Node) Step(round int, delivered []sched.Message) []sched.Outgoing {
	if n.done {
		return nil
	}
	var outs []sched.Outgoing
	for _, m := range delivered {
		switch m.Tag {
		case broadcast.BrachaTag:
			outs = append(outs, n.rbc.Handle(m)...)
		case ABATag:
			outs = append(outs, n.handleABA(m)...)
		}
	}
	return append(outs, n.pump()...)
}

// Receive implements sched.AsyncProcess with the identical transition
// function, so the state machine is engine-agnostic.
func (n *Node) Receive(m sched.Message) []sched.Outgoing {
	return n.Step(m.SentRound, []sched.Message{m})
}

// open broadcasts this node's epoch-e proposal on its RBC slot.
func (n *Node) open(e int) []sched.Outgoing {
	id := broadcast.EpochID(e)
	value := broadcast.EncodeVec(n.cfg.Proposals[e])
	if n.cfg.Behavior == Equivocate {
		// Per-recipient INITs with distinct values: recipient j sees the
		// proposal shifted by j+1 in every coordinate.
		var outs []sched.Outgoing
		for j := 0; j < n.cfg.N; j++ {
			if j == n.cfg.Self {
				continue
			}
			lie := n.cfg.Proposals[e].Clone()
			for k := range lie {
				lie[k] += float64(j + 1)
			}
			outs = append(outs, sched.Outgoing{
				To: j, Tag: broadcast.BrachaTag,
				Data: broadcast.EncodeInit(n.cfg.Self, id, broadcast.EncodeVec(lie)),
			})
		}
		// Feed the unshifted value to the local instance.
		outs = append(outs, n.rbc.Handle(sched.Message{
			From: n.cfg.Self, To: n.cfg.Self, Tag: broadcast.BrachaTag,
			Data: broadcast.EncodeInit(n.cfg.Self, id, value),
		})...)
		return outs
	}
	return n.rbc.Broadcast(id, value)
}

// handleABA routes one ABA message to its (epoch, slot) instance.
func (n *Node) handleABA(m sched.Message) []sched.Outgoing {
	epoch, slot, round, phase, value, err := decodeABA(m.Data)
	if err != nil {
		return nil
	}
	if slot < 0 || slot >= n.cfg.N || epoch < n.pruneLo || epoch >= len(n.cfg.Proposals) {
		return nil
	}
	return n.epoch(epoch).abas[slot].handle(m.From, round, phase, value)
}

// pump drives the BKR decision logic to a fixpoint: fold reliable
// deliveries into votes, cast the 0-votes once n-f slots decided 1,
// seal the epoch when every slot's agreement decided and every accepted
// slot's proposal is locally delivered, then open the next epoch.
func (n *Node) pump() []sched.Outgoing {
	var outs []sched.Outgoing
	for {
		progress := false
		for _, d := range n.rbc.TakeDeliveries() {
			e, ok := broadcast.ParseEpochID(d.ID)
			if !ok || e < n.pruneLo || e >= len(n.cfg.Proposals) || d.Sender < 0 || d.Sender >= n.cfg.N {
				continue
			}
			es := n.epoch(e)
			if !es.rawDelivered[d.Sender] {
				es.rawDelivered[d.Sender] = true
				es.delivered[d.Sender] = n.decodeValue(d.Value)
				progress = true
			}
		}
		if n.cur >= len(n.cfg.Proposals) {
			if !progress {
				break
			}
			continue
		}
		es := n.epoch(n.cur)
		// BKR rule 1: vote 1 for every reliably delivered slot.
		for s := 0; s < n.cfg.N; s++ {
			if es.rawDelivered[s] && !es.abas[s].haveInput {
				outs = append(outs, es.abas[s].input(1)...)
				progress = true
			}
		}
		// BKR rule 2: once n-f slots decided 1, vote 0 everywhere else.
		ones := 0
		for s := 0; s < n.cfg.N; s++ {
			if es.abas[s].decided && es.abas[s].decision == 1 {
				ones++
			}
		}
		if !es.zeroCast && ones >= auxQuorum(n.cfg.N, n.cfg.F) {
			es.zeroCast = true
			for s := 0; s < n.cfg.N; s++ {
				if !es.abas[s].haveInput {
					outs = append(outs, es.abas[s].input(0)...)
					progress = true
				}
			}
		}
		// Seal: every agreement decided, every accepted slot delivered.
		if !es.sealed {
			ready := true
			var subset []int
			for s := 0; s < n.cfg.N; s++ {
				if !es.abas[s].decided {
					ready = false
					break
				}
				if es.abas[s].decision == 1 {
					if !es.rawDelivered[s] {
						ready = false
						break
					}
					subset = append(subset, s)
				}
			}
			if ready {
				es.sealed = true
				sort.Ints(subset)
				values := make([]vec.V, len(subset))
				for i, s := range subset {
					values[i] = es.delivered[s]
				}
				output, delta := decideEpoch(values, n.cfg.F, n.cfg.NormP)
				n.sealed = append(n.sealed, EpochDecision{
					Epoch: n.cur, Subset: subset, Values: values,
					Output: output, Delta: delta,
				})
				n.stats.Epochs++
				n.stats.Slots += len(subset)
				for _, a := range es.abas {
					if a.decided {
						n.stats.ABARounds += a.decidedRound + 1
					}
				}
				n.cur++
				n.prune()
				if n.cur < len(n.cfg.Proposals) {
					outs = append(outs, n.open(n.cur)...)
				} else {
					n.done = true
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return outs
}

// prune garbage-collects epochs the whole cluster has sealed past. One
// epoch of slack is kept for peers a round behind; in lockstep delivery
// nobody ever lags further.
func (n *Node) prune() {
	lo := n.cur - 1
	if lo <= n.pruneLo {
		return
	}
	for e := n.pruneLo; e < lo; e++ {
		delete(n.epochs, e) // sealed decisions live on n.sealed
	}
	old := n.pruneLo
	n.pruneLo = lo
	n.rbc.PruneInstances(func(_ int, id string) bool {
		e, ok := broadcast.ParseEpochID(id)
		return ok && e >= old && e < lo
	})
}

// decodeValue parses a subset proposal, substituting the default vector
// for garbage (wrong dimension or malformed encoding).
func (n *Node) decodeValue(b []byte) vec.V {
	v, err := broadcast.DecodeVec(b)
	if err == nil && len(v) == n.cfg.D {
		return v
	}
	if n.cfg.Default != nil {
		return n.cfg.Default.Clone()
	}
	return vec.New(n.cfg.D)
}

// decideEpoch reduces the agreed subset multiset to the epoch's decided
// vector with the paper's delta*_p kernel — the same dispatch as the
// public ComputeDeltaStar, so the oracle can recompute it bit-for-bit.
func decideEpoch(values []vec.V, f int, p float64) (vec.V, float64) {
	s := vec.NewSet(values...)
	if p == 0 {
		p = 2
	}
	switch {
	case p == 2:
		r := minimax.DeltaStar2(s, f)
		return r.Point, r.Delta
	case p == 1 || math.IsInf(p, 1):
		delta, pt := relax.DeltaStarPoly(s, f, p)
		return pt, delta
	}
	r := minimax.DeltaStarP(s, f, p)
	return r.Point, r.Delta
}
