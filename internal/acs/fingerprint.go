package acs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint digests a decision sequence into a stable hex string:
// epoch indices, subset membership, the decided vectors and deltas, all
// in canonical binary form. Two transports executed the same stream iff
// their fingerprints match byte for byte — this is the parity predicate
// of the bvcnode -stream selfcheck and the cross-transport tests.
func Fingerprint(decisions []EpochDecision) string {
	h := sha256.New()
	var b [8]byte
	u64 := func(x uint64) {
		binary.BigEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	u64(uint64(len(decisions)))
	for _, d := range decisions {
		u64(uint64(d.Epoch))
		u64(uint64(len(d.Subset)))
		for _, s := range d.Subset {
			u64(uint64(s))
		}
		for _, v := range d.Values {
			u64(uint64(len(v)))
			for _, x := range v {
				u64(math.Float64bits(x))
			}
		}
		u64(uint64(len(d.Output)))
		for _, x := range d.Output {
			u64(math.Float64bits(x))
		}
		u64(math.Float64bits(d.Delta))
	}
	return hex.EncodeToString(h.Sum(nil))
}
