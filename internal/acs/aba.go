// Package acs implements Agreement on a Common Subset (ACS) in the
// style of Ben-Or, Kelmer and Rabin: n parallel Bracha reliable
// broadcasts (one slot per proposer) plus one binary Byzantine
// agreement instance per slot. A slot enters the common subset when its
// binary agreement decides 1; the BKR voting rule (vote 1 on reliable
// delivery, vote 0 everywhere else once n-f slots have decided 1)
// guarantees the subset has at least n-f members and contains every
// slot all correct processes delivered in time.
//
// The epoch engine on top (see node.go) runs one ACS instance per
// epoch, commits decisions strictly in epoch order, and reduces each
// epoch's agreed subset of vector proposals to a single decided vector
// through the paper's relaxed-BVC kernel (delta*_p minimization over
// the subset multiset) — HoneyBadger-style batching with the
// relaxed-consensus decision rule.
//
// Every component is a deterministic message-driven state machine with
// no clocks and no randomness beyond a deterministic common coin, so a
// lockstep execution (sched.SyncEngine in-process, transport.RunSync
// over the channel mesh or TCP) is one admissible asynchronous
// schedule and every backend decides bit-for-bit identically.
package acs

import (
	"encoding/binary"
	"fmt"

	"relaxedbvc/internal/sched"
)

// ABATag is the sched/transport message tag of all binary-agreement
// traffic; BrachaTag carries the reliable broadcasts.
const ABATag = "aba"

const (
	abaBval = byte(0)
	abaAux  = byte(1)
)

// coin is the deterministic common coin: a SplitMix64 avalanche of
// (epoch, slot, round), identical at every process. Against the
// repository's scripted, non-adaptive adversaries a public
// deterministic coin is sound (the classic FLP-style adversary that
// predicts the coin must adapt its schedule to it, which scripted
// fault patterns and lockstep delivery cannot), and it is what keeps
// every run bit-for-bit replayable.
func coin(epoch, slot, round int) byte {
	x := uint64(epoch)*0x9e3779b97f4a7c15 + uint64(slot)<<32 + uint64(round)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return byte(x & 1)
}

// encodeABA packs (epoch, slot, round, phase, value) into a fixed
// 12-byte wire form.
func encodeABA(epoch, slot, round int, phase, value byte) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out, uint32(epoch))
	binary.BigEndian.PutUint16(out[4:], uint16(slot))
	binary.BigEndian.PutUint32(out[6:], uint32(round))
	out[10] = phase
	out[11] = value & 1
	return out
}

func decodeABA(b []byte) (epoch, slot, round int, phase, value byte, err error) {
	if len(b) != 12 {
		return 0, 0, 0, 0, 0, fmt.Errorf("acs: aba message length %d != 12", len(b))
	}
	return int(binary.BigEndian.Uint32(b)), int(binary.BigEndian.Uint16(b[4:])),
		int(binary.BigEndian.Uint32(b[6:])), b[10], b[11] & 1, nil
}

// abaRound is the per-round message state of one instance.
type abaRound struct {
	bvalSent  [2]bool         // we broadcast BVAL(b) this round
	bval      [2]map[int]bool // senders of BVAL(b)
	binValues [2]bool         // values with 2f+1 BVALs
	auxSent   bool
	aux       map[int]byte // sender -> AUX value
	advanced  bool         // we moved past this round
}

// abaInst is one binary-agreement instance — MMR-style BVAL/AUX rounds
// with the deterministic common coin. It is driven purely by handle()
// and input(); a decided instance stops emitting (all correct processes
// decide in the same lockstep round, so nobody is left waiting).
type abaInst struct {
	n, f, self  int
	epoch, slot int

	haveInput bool
	est       byte
	round     int

	decided      bool
	decision     byte
	decidedRound int

	rounds []*abaRound
}

func newABAInst(n, f, self, epoch, slot int) *abaInst {
	return &abaInst{n: n, f: f, self: self, epoch: epoch, slot: slot}
}

func (a *abaInst) roundState(r int) *abaRound {
	for len(a.rounds) <= r {
		a.rounds = append(a.rounds, &abaRound{
			bval: [2]map[int]bool{make(map[int]bool), make(map[int]bool)},
			aux:  make(map[int]byte),
		})
	}
	return a.rounds[r]
}

// input sets this process's vote (once) and starts round 0.
func (a *abaInst) input(v byte) []sched.Outgoing {
	if a.haveInput {
		return nil
	}
	a.haveInput = true
	a.est = v & 1
	outs := a.castBval(0, a.est)
	return append(outs, a.tryAdvance()...)
}

// castBval broadcasts BVAL(r, b) once and feeds the local copy back.
func (a *abaInst) castBval(r int, b byte) []sched.Outgoing {
	rd := a.roundState(r)
	if rd.bvalSent[b] {
		return nil
	}
	rd.bvalSent[b] = true
	data := encodeABA(a.epoch, a.slot, r, abaBval, b)
	outs := []sched.Outgoing{{To: sched.Broadcast, Tag: ABATag, Data: data}}
	return append(outs, a.handle(a.self, r, abaBval, b)...)
}

// handle processes one BVAL/AUX message (messages for any round are
// accepted; thresholds are round-local, so early traffic simply
// accumulates). It returns protocol sends, including cascades from
// locally fed-back copies.
func (a *abaInst) handle(from, round int, phase, value byte) []sched.Outgoing {
	value &= 1
	rd := a.roundState(round)
	var outs []sched.Outgoing
	switch phase {
	case abaBval:
		if rd.bval[value][from] {
			return nil
		}
		rd.bval[value][from] = true
		cnt := len(rd.bval[value])
		// Relay on f+1 (at least one correct process voted value).
		if cnt >= relayQuorum(a.f) && !rd.bvalSent[value] {
			outs = append(outs, a.castBval(round, value)...)
		}
		// bin_values admission on 2f+1.
		if cnt >= admitQuorum(a.f) && !rd.binValues[value] {
			rd.binValues[value] = true
			if !rd.auxSent {
				rd.auxSent = true
				data := encodeABA(a.epoch, a.slot, round, abaAux, value)
				outs = append(outs, sched.Outgoing{To: sched.Broadcast, Tag: ABATag, Data: data})
				outs = append(outs, a.handle(a.self, round, abaAux, value)...)
			}
			outs = append(outs, a.tryAdvance()...)
		}
	case abaAux:
		if _, dup := rd.aux[from]; dup {
			return nil
		}
		rd.aux[from] = value
		outs = append(outs, a.tryAdvance()...)
	}
	return outs
}

// tryAdvance closes the current round when n-f AUX values, all inside
// bin_values, have arrived: unanimous AUX matching the coin decides;
// unanimous AUX against the coin adopts the value; a mixed AUX set
// adopts the coin. A decided instance stops advancing — in lockstep
// delivery every correct process holds the identical instance state, so
// all of them decide in the same round and none is left behind.
func (a *abaInst) tryAdvance() []sched.Outgoing {
	var outs []sched.Outgoing
	for !a.decided && a.haveInput {
		r := a.round
		rd := a.roundState(r)
		if rd.advanced {
			a.round++
			continue
		}
		if !rd.binValues[0] && !rd.binValues[1] {
			return outs
		}
		var vals [2]bool
		valid := 0
		for _, v := range rd.aux {
			if rd.binValues[v] {
				valid++
				vals[v] = true
			}
		}
		if valid < auxQuorum(a.n, a.f) {
			return outs
		}
		rd.advanced = true
		c := coin(a.epoch, a.slot, r)
		var next byte
		switch {
		case vals[0] != vals[1]: // unanimous AUX value
			b := byte(0)
			if vals[1] {
				b = 1
			}
			if b == c {
				a.decided = true
				a.decision = b
				a.decidedRound = r
			}
			next = b
		default: // both values seen: adopt the coin
			next = c
		}
		a.est = next
		a.round = r + 1
		if !a.decided {
			outs = append(outs, a.castBval(a.round, next)...)
		}
	}
	return outs
}
