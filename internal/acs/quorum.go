package acs

// Quorum thresholds of the ACS stack, named so every comparison in the
// package traces to one audited definition (enforced by bvclint's
// quorumgate analyzer). All bounds assume the n >= 3f+1 resilience
// floor checked at construction.

// relayQuorum is the f+1 BVAL relay threshold: among f+1 votes at
// least one comes from a correct process, so relaying cannot amplify a
// purely Byzantine value.
func relayQuorum(f int) int { return f + 1 }

// admitQuorum is the 2f+1 bin_values admission threshold: 2f+1 votes
// contain f+1 correct ones, so every correct process eventually admits
// the same value.
func admitQuorum(f int) int { return 2*f + 1 }

// auxQuorum is the n-f wait threshold (AUX collection, BKR rule 2):
// the largest count every correct process is guaranteed to reach even
// if all f faulty processes stay silent.
func auxQuorum(n, f int) int { return n - f }

// minProcesses is the n >= 3f+1 floor reliable broadcast (and with it
// the whole ACS) requires.
func minProcesses(f int) int { return 3*f + 1 }
