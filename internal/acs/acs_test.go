package acs

import (
	"math/rand"
	"testing"

	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
)

// buildCluster creates n nodes with the given behaviors and per-epoch
// proposals (proposals[e][i] = node i's epoch-e proposal).
func buildCluster(t *testing.T, n, f, d int, proposals [][]vec.V, behaviors map[int]Behavior) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		own := make([]vec.V, len(proposals))
		for e := range proposals {
			own[e] = proposals[e][i]
		}
		cfg := Config{N: n, F: f, Self: i, D: d, Proposals: own, Behavior: behaviors[i]}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes
}

func runCluster(t *testing.T, nodes []*Node, faults *sched.LinkFaults) *sched.SyncEngine {
	t.Helper()
	procs := make([]sched.SyncProcess, len(nodes))
	for i, n := range nodes {
		procs[i] = n
	}
	eng := sched.NewSyncEngine(procs)
	eng.Faults = faults
	if _, err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return eng
}

func genProposals(rng *rand.Rand, epochs, n, d int) [][]vec.V {
	out := make([][]vec.V, epochs)
	for e := range out {
		out[e] = make([]vec.V, n)
		for i := range out[e] {
			v := vec.New(d)
			for j := range v {
				v[j] = (rng.Float64() - 0.5) * 4
			}
			out[e][i] = v
		}
	}
	return out
}

func TestACSHonestStream(t *testing.T) {
	const n, f, d, epochs = 4, 1, 2, 3
	rng := rand.New(rand.NewSource(7))
	props := genProposals(rng, epochs, n, d)
	nodes := buildCluster(t, n, f, d, props, nil)
	runCluster(t, nodes, nil)
	ref := nodes[0].Decisions()
	if len(ref) != epochs {
		t.Fatalf("node 0 sealed %d epochs, want %d", len(ref), epochs)
	}
	refFP := Fingerprint(ref)
	for i, node := range nodes {
		if got := Fingerprint(node.Decisions()); got != refFP {
			t.Fatalf("node %d decision fingerprint diverged", i)
		}
	}
	for e, dec := range ref {
		if dec.Epoch != e {
			t.Fatalf("epoch %d decision labeled %d (order broken)", e, dec.Epoch)
		}
		if len(dec.Subset) < n-f {
			t.Fatalf("epoch %d subset %v smaller than n-f", e, dec.Subset)
		}
		// Honest fault-free cluster: every slot delivers and is accepted.
		if len(dec.Subset) != n {
			t.Fatalf("epoch %d fault-free subset %v != all slots", e, dec.Subset)
		}
		for i, s := range dec.Subset {
			if !dec.Values[i].Equal(props[e][s]) {
				t.Fatalf("epoch %d slot %d value %v != proposal %v", e, s, dec.Values[i], props[e][s])
			}
		}
	}
}

func TestACSEquivocatorExcluded(t *testing.T) {
	const n, f, d, epochs = 4, 1, 2, 2
	rng := rand.New(rand.NewSource(11))
	props := genProposals(rng, epochs, n, d)
	nodes := buildCluster(t, n, f, d, props, map[int]Behavior{3: Equivocate})
	runCluster(t, nodes, nil)
	refFP := Fingerprint(nodes[0].Decisions())
	for i := 0; i < 3; i++ {
		if Fingerprint(nodes[i].Decisions()) != refFP {
			t.Fatalf("honest node %d diverged", i)
		}
	}
	for e, dec := range nodes[0].Decisions() {
		if len(dec.Subset) < n-f {
			t.Fatalf("epoch %d subset %v too small", e, dec.Subset)
		}
		for _, s := range dec.Subset {
			if s == 3 {
				t.Fatalf("epoch %d accepted the equivocator's slot: %v", e, dec.Subset)
			}
		}
	}
}

func TestACSMuteTolerated(t *testing.T) {
	const n, f, d, epochs = 4, 1, 3, 2
	rng := rand.New(rand.NewSource(13))
	props := genProposals(rng, epochs, n, d)
	nodes := buildCluster(t, n, f, d, props, map[int]Behavior{1: Mute})
	runCluster(t, nodes, nil)
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		dec := nodes[i].Decisions()
		if len(dec) != epochs {
			t.Fatalf("node %d sealed %d epochs, want %d", i, len(dec), epochs)
		}
		for e, ep := range dec {
			if len(ep.Subset) < n-f {
				t.Fatalf("epoch %d subset %v too small", e, ep.Subset)
			}
			for _, s := range ep.Subset {
				if s == 1 {
					t.Fatalf("epoch %d accepted the mute slot", e)
				}
			}
		}
	}
}

func TestACSDuplicationWithinModel(t *testing.T) {
	// Within-model lockstep faults (pure duplication) must not change
	// the decision stream: the state machines deduplicate by sender.
	const n, f, d, epochs = 4, 1, 2, 3
	rng := rand.New(rand.NewSource(17))
	props := genProposals(rng, epochs, n, d)

	clean := buildCluster(t, n, f, d, props, nil)
	runCluster(t, clean, nil)
	want := Fingerprint(clean[0].Decisions())

	dup := buildCluster(t, n, f, d, props, nil)
	runCluster(t, dup, &sched.LinkFaults{Seed: 99, LinkProfile: sched.LinkProfile{DupProb: 0.6}})
	for i := range dup {
		if got := Fingerprint(dup[i].Decisions()); got != want {
			t.Fatalf("node %d decisions changed under duplication", i)
		}
	}
}

func TestACSStatsAndPrune(t *testing.T) {
	const n, f, d, epochs = 4, 1, 2, 4
	rng := rand.New(rand.NewSource(19))
	props := genProposals(rng, epochs, n, d)
	nodes := buildCluster(t, n, f, d, props, nil)
	runCluster(t, nodes, nil)
	st := nodes[0].Stats()
	if st.Epochs != epochs {
		t.Fatalf("stats epochs %d != %d", st.Epochs, epochs)
	}
	if st.Slots < epochs*(n-f) {
		t.Fatalf("stats slots %d below the subset floor", st.Slots)
	}
	if st.ABARounds < st.Slots {
		t.Fatalf("ABARounds %d below one round per decided slot", st.ABARounds)
	}
	// Sealed-past epochs are garbage-collected (one epoch of slack).
	for i, node := range nodes {
		if len(node.epochs) > 2 {
			t.Fatalf("node %d retains %d epoch states after pruning", i, len(node.epochs))
		}
	}
}

func TestABACoinDeterministic(t *testing.T) {
	for e := 0; e < 3; e++ {
		for s := 0; s < 3; s++ {
			for r := 0; r < 8; r++ {
				if coin(e, s, r) != coin(e, s, r) {
					t.Fatal("coin not deterministic")
				}
			}
		}
	}
	// The coin must not be constant across rounds (termination relies on
	// it eventually matching the unanimous estimate).
	seen := map[byte]bool{}
	for r := 0; r < 16; r++ {
		seen[coin(0, 0, r)] = true
	}
	if len(seen) != 2 {
		t.Fatal("coin constant over 16 rounds")
	}
}

func TestACSConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 4, F: 0, Self: 0, D: 2},
		{N: 3, F: 1, Self: 0, D: 2},
		{N: 4, F: 1, Self: 4, D: 2},
		{N: 4, F: 1, Self: 0, D: 0},
		{N: 4, F: 1, Self: 0, D: 2, Proposals: []vec.V{vec.Of(1, 2, 3)}},
	}
	for i, cfg := range bad {
		if _, err := NewNode(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}
