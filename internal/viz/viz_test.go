package viz

import (
	"bytes"
	"strings"
	"testing"

	"relaxedbvc/internal/vec"
)

func TestSceneRenderBasics(t *testing.T) {
	s := NewScene(200, 100)
	s.AddPoints([]vec.V{vec.Of(0, 0), vec.Of(10, 5)}, Style{Fill: "red"})
	s.AddPolygon([]vec.V{vec.Of(0, 0), vec.Of(10, 0), vec.Of(5, 5)}, Style{Fill: "blue", Stroke: "black"})
	s.AddSegment(vec.Of(0, 0), vec.Of(10, 5), Style{Stroke: "green", Width: 2})
	s.AddCircle(vec.Of(5, 2), 1.5, Style{Stroke: "orange"})
	s.AddLabel(vec.Of(1, 1), "a<b&c", Style{})
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="200" height="100"`,
		"<circle", "<polygon", "<line", "<text",
		"a&lt;b&amp;c", // XML escaping
		"</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Circle markers: 2 points + 1 data circle = 3 <circle> elements.
	if n := strings.Count(out, "<circle"); n != 3 {
		t.Errorf("circle count = %d", n)
	}
}

func TestSceneCoordinatesWithinViewport(t *testing.T) {
	s := NewScene(300, 300)
	pts := []vec.V{vec.Of(-50, -50), vec.Of(50, 50), vec.Of(0, 0)}
	s.AddPoints(pts, Style{Fill: "red"})
	tf := s.transform()
	for _, p := range pts {
		x, y := tf(p)
		if x < 0 || x > 300 || y < 0 || y > 300 {
			t.Fatalf("point %v mapped outside viewport: (%v, %v)", p, x, y)
		}
	}
	// Y axis flipped: larger data y = smaller pixel y.
	_, yLow := tf(vec.Of(0, -50))
	_, yHigh := tf(vec.Of(0, 50))
	if yHigh >= yLow {
		t.Fatalf("y axis not flipped: %v vs %v", yHigh, yLow)
	}
}

func TestSceneDegenerateData(t *testing.T) {
	// Single point / zero span must not divide by zero.
	s := NewScene(100, 100)
	s.AddPoints([]vec.V{vec.Of(3, 3)}, Style{Fill: "red"})
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Error("missing point")
	}
	// Empty scene renders a valid document too.
	var empty bytes.Buffer
	if err := NewScene(50, 50).Render(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "</svg>") {
		t.Error("empty scene invalid")
	}
}

func TestScene3DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("3-D point accepted")
		}
	}()
	NewScene(10, 10).AddPoints([]vec.V{vec.Of(1, 2, 3)}, Style{})
}

func TestRenderConsensus(t *testing.T) {
	cs := ConsensusScene{
		HonestInputs: []vec.V{vec.Of(0, 0), vec.Of(2, 0), vec.Of(1, 2)},
		ByzInputs:    []vec.V{vec.Of(5, 5)},
		Output:       vec.Of(1, 0.7),
		Delta:        0.3,
		Title:        "demo run",
	}
	var buf bytes.Buffer
	if err := RenderConsensus(&buf, cs, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<polygon", "byz", "decision", "demo run", `width="480"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderConsensusRejects3D(t *testing.T) {
	cs := ConsensusScene{HonestInputs: []vec.V{vec.Of(1, 2, 3)}}
	var buf bytes.Buffer
	if err := RenderConsensus(&buf, cs, 100, 100); err == nil {
		t.Fatal("3-D accepted")
	}
}

func TestRenderConsensusSegmentHull(t *testing.T) {
	// Two honest inputs: the hull is a segment, drawn as a line.
	cs := ConsensusScene{
		HonestInputs: []vec.V{vec.Of(0, 0), vec.Of(2, 2)},
		Output:       vec.Of(1, 1),
	}
	var buf bytes.Buffer
	if err := RenderConsensus(&buf, cs, 100, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<line") {
		t.Error("segment hull not drawn as line")
	}
}

func TestStyleAttrs(t *testing.T) {
	s := Style{Fill: "red", Stroke: "blue", Width: 2, Opacity: 0.5}
	a := s.attrs()
	for _, want := range []string{`fill="red"`, `stroke="blue"`, `stroke-width="2"`, `opacity="0.5"`} {
		if !strings.Contains(a, want) {
			t.Errorf("attrs missing %q: %s", want, a)
		}
	}
	if !strings.Contains(Style{}.attrs(), `fill="none"`) {
		t.Error("empty style should have no fill")
	}
}
