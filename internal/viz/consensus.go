package viz

import (
	"fmt"
	"io"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

// ConsensusScene describes one 2-D synchronous consensus run to draw.
type ConsensusScene struct {
	HonestInputs []vec.V
	ByzInputs    []vec.V // the values the Byzantine processes claimed
	Output       vec.V
	Delta        float64 // 0 for exact consensus
	Title        string
}

// RenderConsensus draws the standard picture: honest hull (light blue),
// honest inputs (blue), Byzantine claims (red crosses drawn as hollow
// circles), the (delta,2) disk (orange) and the decision (green).
func RenderConsensus(w io.Writer, cs ConsensusScene, width, height int) error {
	if width <= 0 {
		width = 480
	}
	if height <= 0 {
		height = 480
	}
	s := NewScene(width, height)
	if len(cs.HonestInputs) > 0 && cs.HonestInputs[0].Dim() != 2 {
		return fmt.Errorf("viz: RenderConsensus requires 2-D data")
	}
	if hull := geom.Hull2D(cs.HonestInputs); len(hull) >= 3 {
		s.AddPolygon(hull, Style{Fill: "#dbeafe", Stroke: "#60a5fa", Width: 1, Opacity: 0.9})
	} else if len(hull) == 2 {
		s.AddSegment(hull[0], hull[1], Style{Stroke: "#60a5fa", Width: 2})
	}
	if cs.Output != nil && cs.Delta > 0 {
		s.AddCircle(cs.Output, cs.Delta, Style{Fill: "#ffedd5", Stroke: "#fb923c", Width: 1, Opacity: 0.8})
	}
	s.AddPoints(cs.HonestInputs, Style{Fill: "#2563eb", Radius: 5})
	for i, p := range cs.HonestInputs {
		s.AddLabel(p, fmt.Sprintf("p%d", i), Style{Fill: "#1e3a8a"})
	}
	if len(cs.ByzInputs) > 0 {
		s.AddPoints(cs.ByzInputs, Style{Stroke: "#dc2626", Width: 2, Radius: 6})
		for _, p := range cs.ByzInputs {
			s.AddLabel(p, "byz", Style{Fill: "#dc2626"})
		}
	}
	if cs.Output != nil {
		s.AddPoints([]vec.V{cs.Output}, Style{Fill: "#16a34a", Radius: 6})
		s.AddLabel(cs.Output, "decision", Style{Fill: "#14532d"})
	}
	if cs.Title != "" {
		// Pin the title near the top-left of the data region.
		s.AddLabel(vec.Of(s.min[0], s.max[1]), cs.Title, Style{Fill: "#111827"})
	}
	return s.Render(w)
}
