// Package viz renders 2-D consensus scenes to SVG (standard library
// only): input points, hull polygons, relaxation disks and decision
// markers, with automatic data-space scaling. bvcsim's -svg flag uses it
// to produce a picture of a run; it is equally handy in tests and
// notebooks for eyeballing adversarial geometry.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"relaxedbvc/internal/vec"
)

// Style describes how an element is drawn.
type Style struct {
	Fill    string  // fill color ("" = none)
	Stroke  string  // stroke color ("" = none)
	Width   float64 // stroke width in pixels
	Radius  float64 // marker radius in pixels (points only)
	Opacity float64 // 0 defaults to 1
}

func (s Style) attrs() string {
	var b strings.Builder
	if s.Fill != "" {
		fmt.Fprintf(&b, ` fill="%s"`, s.Fill)
	} else {
		b.WriteString(` fill="none"`)
	}
	if s.Stroke != "" {
		fmt.Fprintf(&b, ` stroke="%s"`, s.Stroke)
		w := s.Width
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(&b, ` stroke-width="%.3g"`, w)
	}
	if s.Opacity > 0 && s.Opacity < 1 {
		fmt.Fprintf(&b, ` opacity="%.3g"`, s.Opacity)
	}
	return b.String()
}

type element struct {
	kind   string // "point", "polygon", "segment", "circle", "label"
	pts    []vec.V
	radius float64 // data-space radius for "circle"
	text   string
	style  Style
}

// Scene is a 2-D drawing in data coordinates, scaled to the pixel
// viewport at render time.
type Scene struct {
	W, H     int
	pad      float64
	elems    []element
	min, max vec.V
	hasData  bool
}

// NewScene creates a scene with the given pixel viewport.
func NewScene(w, h int) *Scene {
	return &Scene{W: w, H: h, pad: 24, min: vec.Of(0, 0), max: vec.Of(1, 1)}
}

func (s *Scene) grow(p vec.V, extra float64) {
	if p.Dim() != 2 {
		panic("viz: scenes are 2-D")
	}
	if !s.hasData {
		s.min = vec.Of(p[0]-extra, p[1]-extra)
		s.max = vec.Of(p[0]+extra, p[1]+extra)
		s.hasData = true
		return
	}
	s.min[0] = math.Min(s.min[0], p[0]-extra)
	s.min[1] = math.Min(s.min[1], p[1]-extra)
	s.max[0] = math.Max(s.max[0], p[0]+extra)
	s.max[1] = math.Max(s.max[1], p[1]+extra)
}

// AddPoints draws circular markers at the given data points.
func (s *Scene) AddPoints(pts []vec.V, style Style) {
	for _, p := range pts {
		s.grow(p, 0)
	}
	cp := make([]vec.V, len(pts))
	for i, p := range pts {
		cp[i] = p.Clone()
	}
	s.elems = append(s.elems, element{kind: "point", pts: cp, style: style})
}

// AddPolygon draws a closed polygon through the points (in order).
func (s *Scene) AddPolygon(pts []vec.V, style Style) {
	for _, p := range pts {
		s.grow(p, 0)
	}
	cp := make([]vec.V, len(pts))
	for i, p := range pts {
		cp[i] = p.Clone()
	}
	s.elems = append(s.elems, element{kind: "polygon", pts: cp, style: style})
}

// AddSegment draws a line from a to b.
func (s *Scene) AddSegment(a, b vec.V, style Style) {
	s.grow(a, 0)
	s.grow(b, 0)
	s.elems = append(s.elems, element{kind: "segment", pts: []vec.V{a.Clone(), b.Clone()}, style: style})
}

// AddCircle draws a circle of the given data-space radius around c (used
// for the (delta,2) relaxation disk).
func (s *Scene) AddCircle(c vec.V, radius float64, style Style) {
	s.grow(c, radius)
	s.elems = append(s.elems, element{kind: "circle", pts: []vec.V{c.Clone()}, radius: radius, style: style})
}

// AddLabel places text at the data point.
func (s *Scene) AddLabel(at vec.V, text string, style Style) {
	s.grow(at, 0)
	s.elems = append(s.elems, element{kind: "label", pts: []vec.V{at.Clone()}, text: text, style: style})
}

// transform maps data coordinates to pixel coordinates (y flipped).
func (s *Scene) transform() func(vec.V) (float64, float64) {
	spanX := s.max[0] - s.min[0]
	spanY := s.max[1] - s.min[1]
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	scale := math.Min((float64(s.W)-2*s.pad)/spanX, (float64(s.H)-2*s.pad)/spanY)
	return func(p vec.V) (float64, float64) {
		x := s.pad + (p[0]-s.min[0])*scale
		y := float64(s.H) - s.pad - (p[1]-s.min[1])*scale
		return x, y
	}
}

// scale returns the data-to-pixel scale factor (for circle radii).
func (s *Scene) scale() float64 {
	spanX := s.max[0] - s.min[0]
	spanY := s.max[1] - s.min[1]
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	return math.Min((float64(s.W)-2*s.pad)/spanX, (float64(s.H)-2*s.pad)/spanY)
}

// Render writes the scene as a standalone SVG document.
func (s *Scene) Render(w io.Writer) error {
	tf := s.transform()
	sc := s.scale()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", s.W, s.H, s.W, s.H)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", s.W, s.H)
	for _, e := range s.elems {
		switch e.kind {
		case "point":
			r := e.style.Radius
			if r == 0 {
				r = 4
			}
			for _, p := range e.pts {
				x, y := tf(p)
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f"%s/>`+"\n", x, y, r, e.style.attrs())
			}
		case "polygon":
			var coords []string
			for _, p := range e.pts {
				x, y := tf(p)
				coords = append(coords, fmt.Sprintf("%.2f,%.2f", x, y))
			}
			fmt.Fprintf(&b, `<polygon points="%s"%s/>`+"\n", strings.Join(coords, " "), e.style.attrs())
		case "segment":
			x1, y1 := tf(e.pts[0])
			x2, y2 := tf(e.pts[1])
			fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"%s/>`+"\n", x1, y1, x2, y2, e.style.attrs())
		case "circle":
			x, y := tf(e.pts[0])
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f"%s/>`+"\n", x, y, e.radius*sc, e.style.attrs())
		case "label":
			x, y := tf(e.pts[0])
			fill := e.style.Fill
			if fill == "" {
				fill = "black"
			}
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="12" font-family="monospace" fill="%s">%s</text>`+"\n", x+6, y-6, fill, escapeXML(e.text))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
