package soak

// The coverage feature vector. Every checked run is folded into a short
// deterministic string key; the coordinator's coverage map counts keys,
// and a seed whose run hits a key never seen before becomes a mutation
// parent. The dimensions are chosen to be (a) cheap, (b) a pure
// function of the (seed, JobConfig) pair plus the run's deterministic
// outcome, and (c) coarse enough that the key space stays in the
// hundreds — a coverage signal, not a transcript hash.

import (
	"fmt"
	"strings"

	bvc "relaxedbvc"
	"relaxedbvc/internal/simtest"
)

// Feature builds the coverage key of one run:
//
//	<protocol>|<effective regime>|n<N>f<F>d<D>|<fault signature>|r<rounds bucket>|<outcome>
//
// The fault signature quantizes the generated LinkFaults pattern into
// decile probability buckets plus the structural knobs (delay bound,
// partition count, unhealed partitions, retransmission cap), so "heavy
// drops with an exhausted budget" and "light duplication" are different
// coverage points while nearby probabilities collapse.
func Feature(seed int64, cfg JobConfig, spec bvc.Spec, verdictOutcome string, rounds int) string {
	regime, err := ParseRegime(cfg.Regime)
	if err != nil {
		// The worker validated the config before running; an unknown
		// regime here can only mean a caller bypassed validation. Keep
		// the key total rather than panicking.
		return "invalid-regime"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|n%df%dd%d|%s|r%s|%s",
		spec.Protocol, simtest.EffectiveRegime(seed, regime),
		spec.N, spec.F, spec.D,
		faultSignature(spec.Faults), roundsBucket(rounds), verdictOutcome)
	return b.String()
}

// faultSignature quantizes a generated fault pattern.
func faultSignature(lf *bvc.LinkFaults) string {
	if lf == nil {
		return "clean"
	}
	unhealed := 0
	for _, p := range lf.Partitions {
		if p.End < 0 {
			unhealed++
		}
	}
	return fmt.Sprintf("drop%d_dup%d_delay%d_part%d_open%d_cap%d",
		decile(lf.DropProb), decile(lf.DupProb), lf.DelayMax,
		len(lf.Partitions), unhealed, lf.MaxAttempts)
}

// decile buckets a probability into 0..10.
func decile(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 10
	}
	return int(p*10) + 1
}

// roundsBucket coarsens rounds-to-decide. The synchronous protocols
// always take f+1 EIG rounds, so the buckets mainly separate the
// multi-round asynchronous and iterative runs (and errors, which report
// zero rounds).
func roundsBucket(rounds int) string {
	switch {
	case rounds <= 0:
		return "0"
	case rounds <= 2:
		return "1_2"
	case rounds <= 4:
		return "3_4"
	case rounds <= 7:
		return "5_7"
	}
	return "8p"
}
