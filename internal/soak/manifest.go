package soak

// The checkpoint manifest. After every committed block the coordinator
// rewrites <path> atomically: the new state is written to <path>.tmp,
// the previous manifest is rotated to <path>.bak, and the tmp file is
// renamed into place. A crash at any instant therefore leaves either a
// complete current manifest or a complete backup; the loader verifies
// an embedded checksum and falls back from a torn/corrupt manifest to
// the backup, so the coordinator always resumes from the last valid
// checkpoint.
//
// The state stores everything the planner consumed: the configuration
// hash (a resume must run the identical soak), the corpus replay plan
// snapshotted at start (the corpus directory grows *during* the soak,
// so re-scanning it on resume would change the plan), and one record
// per committed block with per-seed outcomes, discovered features and
// mutation parents. Replaying the records through the planner rebuilds
// the exact coordinator state, which is what makes a resumed summary
// byte-identical to an uninterrupted one.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
)

// manifestVersion is bumped on any incompatible state change; a
// mismatch refuses to resume rather than misinterpreting records.
const manifestVersion = 1

// BlockRecord is one committed block in the manifest (and the unit the
// summary is aggregated from).
type BlockRecord struct {
	Block int `json:"block"`
	// Kind is "corpus", "base" or "mutation".
	Kind string `json:"kind"`
	// Cfg is the block's generation recipe.
	Cfg JobConfig `json:"cfg"`
	// SeedStart/SeedCount compactly encode a contiguous ascending seed
	// range (base blocks); Seeds lists them explicitly otherwise.
	SeedStart int64   `json:"seed_start,omitempty"`
	SeedCount int     `json:"seed_count,omitempty"`
	Seeds     []int64 `json:"seeds,omitempty"`
	// Outcomes has one byte per seed, in seed order: 'p' pass,
	// 'd' degraded, 'f' failed.
	Outcomes string `json:"outcomes"`
	// MeshCompared counts seeds cross-checked against the mesh backend.
	MeshCompared int `json:"mesh_compared,omitempty"`
	// PerProtocol aggregates outcome counts by protocol name
	// (encoding/json sorts map keys, so the serialization is stable).
	PerProtocol map[string]OutcomeCounts `json:"per_protocol,omitempty"`
	// Parents are the seeds that hit a coverage feature never seen
	// before this block committed, in seed order — the mutation
	// scheduler's inputs and the corpus's "interesting" entries.
	Parents []ParentRef `json:"parents,omitempty"`
	// MinFailing is the block's shrunk reproducer, if any seed failed.
	MinFailing *FailingSeed `json:"min_failing,omitempty"`
}

// ParentRef is one novel-feature first-hitter: everything the mutation
// scheduler needs to derive focused children, and everything a corpus
// "interesting" entry needs to replay.
type ParentRef struct {
	Seed int64 `json:"seed"`
	// Protocol and Regime pin the child generation config to the
	// configuration that produced the novelty (Regime is the effective
	// regime, with "mixed" already resolved by seed parity).
	Protocol string `json:"protocol"`
	Regime   string `json:"regime"`
	// Feature is the novel coverage key this seed hit first.
	Feature string `json:"feature"`
	// Outcome/Signature record the run's classification (Signature
	// empty for passing runs, as on the wire).
	Outcome   string `json:"outcome"`
	Signature string `json:"signature,omitempty"`
}

// RecordSeeds reconstructs the record's seed list.
func (r *BlockRecord) RecordSeeds() []int64 {
	if r.SeedCount > 0 {
		out := make([]int64, r.SeedCount)
		for i := range out {
			out[i] = r.SeedStart + int64(i)
		}
		return out
	}
	return r.Seeds
}

// setSeeds stores seeds compactly: contiguous ascending ranges become
// (start, count); anything else is kept explicit.
func (r *BlockRecord) setSeeds(seeds []int64) {
	contiguous := len(seeds) > 0
	for i := 1; i < len(seeds); i++ {
		if seeds[i] != seeds[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		r.SeedStart, r.SeedCount = seeds[0], len(seeds)
		return
	}
	r.Seeds = append([]int64(nil), seeds...)
}

// ReplaySeed is one corpus-replay work item snapshotted into the plan.
type ReplaySeed struct {
	Seed int64     `json:"seed"`
	Cfg  JobConfig `json:"cfg"`
}

// manifestState is the checkpointed coordinator state.
type manifestState struct {
	Version int `json:"version"`
	// CfgHash fingerprints the soak configuration; resume refuses a
	// mismatch (a different budget/regime/shard-count soak would plan a
	// different block sequence and silently corrupt the summary).
	CfgHash string `json:"cfg_hash"`
	// CorpusPlan is the corpus replay plan snapshotted at soak start.
	CorpusPlan []ReplaySeed `json:"corpus_plan,omitempty"`
	// Blocks are the committed records, in commit (= block) order.
	Blocks []BlockRecord `json:"blocks"`
}

// manifestFile is the on-disk envelope: the state plus a checksum of
// its exact serialized bytes, so torn writes are detected.
type manifestFile struct {
	Sum   string          `json:"sum"`
	State json.RawMessage `json:"state"`
}

// stateSum is the integrity checksum over the serialized state bytes.
func stateSum(raw []byte) string {
	h := fnv.New64a()
	h.Write(raw) //nolint:errcheck // fnv.Write cannot fail
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveManifest atomically rewrites path with the given state.
func saveManifest(path string, st *manifestState) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("%w: marshal state: %v", ErrManifest, err)
	}
	// Compact encoding: an indented envelope would re-indent the embedded
	// raw state, and the checksum must cover the exact on-disk bytes.
	data, err := json.Marshal(manifestFile{Sum: stateSum(raw), State: raw})
	if err != nil {
		return fmt.Errorf("%w: marshal envelope: %v", ErrManifest, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("%w: write %s: %v", ErrManifest, tmp, err)
	}
	// Rotate the previous generation to .bak so a crash between the two
	// renames still leaves one valid checkpoint on disk.
	if _, statErr := os.Stat(path); statErr == nil {
		if err := os.Rename(path, path+".bak"); err != nil {
			return fmt.Errorf("%w: rotate backup: %v", ErrManifest, err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("%w: rename %s: %v", ErrManifest, tmp, err)
	}
	return nil
}

// loadManifest reads the last valid checkpoint: the manifest itself if
// intact, else the backup. A missing manifest (both generations) yields
// (nil, nil) — a fresh start. A present-but-corrupt manifest with no
// valid backup is an error: silently restarting from scratch would
// discard a soak's progress without telling anyone.
func loadManifest(path string) (*manifestState, error) {
	st, primaryErr := readManifestFile(path)
	if primaryErr == nil {
		return st, nil
	}
	if errors.Is(primaryErr, fs.ErrNotExist) {
		primaryErr = nil // nothing written yet: fresh start, unless a bak survived a crash
	}
	st, bakErr := readManifestFile(path + ".bak")
	if bakErr == nil {
		return st, nil
	}
	if primaryErr == nil && errors.Is(bakErr, fs.ErrNotExist) {
		return nil, nil
	}
	if primaryErr != nil {
		return nil, fmt.Errorf("%w: %s unreadable (%v) and no valid backup (%v)", ErrManifest, path, primaryErr, bakErr)
	}
	return nil, fmt.Errorf("%w: only a backup exists and it is unreadable: %v", ErrManifest, bakErr)
}

// readManifestFile reads and verifies one manifest generation.
func readManifestFile(path string) (*manifestState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err // keep fs.ErrNotExist matchable
	}
	var env manifestFile
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrManifest, path, err)
	}
	if got := stateSum(env.State); got != env.Sum {
		return nil, fmt.Errorf("%w: %s: checksum %s != recorded %s (torn write?)", ErrManifest, path, got, env.Sum)
	}
	var st manifestState
	if err := json.Unmarshal(env.State, &st); err != nil {
		return nil, fmt.Errorf("%w: %s: state: %v", ErrManifest, path, err)
	}
	if st.Version != manifestVersion {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrManifest, path, st.Version, manifestVersion)
	}
	return &st, nil
}
