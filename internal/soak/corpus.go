package soak

// The persisted corpus: a directory of one-JSON-file-per-entry, each a
// replayable (seed, JobConfig) pair with the outcome it was recorded
// under. Filenames are content-addressed — fail-<sha256[:16]>.json for
// shrunk failing seeds, seed-<sha256[:16]>.json for interesting
// (novel-feature) seeds — so writing an entry twice is idempotent and
// two corpora merge by copying files. Entries are stable JSON (indented,
// sorted keys, trailing newline); a corpus diffs cleanly under git and
// the nightly CI cache keys on a hash of the directory.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry kinds.
const (
	// KindFailing marks a shrunk failing (or, under Strict, degrading)
	// seed: a reproducer for a bug or a known out-of-model degradation.
	KindFailing = "failing"
	// KindInteresting marks the first seed to hit a novel coverage
	// feature — not a failure, but a configuration worth replaying and
	// mutating in future soaks.
	KindInteresting = "interesting"
)

// Entry is one persisted corpus item.
type Entry struct {
	// Kind is KindFailing or KindInteresting.
	Kind string `json:"kind"`
	// Seed + Cfg replay the instance exactly (simtest.GenSpec).
	Seed int64     `json:"seed"`
	Cfg  JobConfig `json:"cfg"`
	// Protocol/Feature/Outcome/Signature record what the seed did when
	// it was captured; replay checks them.
	Protocol  string `json:"protocol"`
	Feature   string `json:"feature"`
	Outcome   string `json:"outcome"`
	Signature string `json:"signature"`
	// ReplayConfirmed carries the shrinker's replay confirmation
	// (failing entries only).
	ReplayConfirmed bool `json:"replay_confirmed,omitempty"`
}

// encode renders the stable on-disk form.
func (e *Entry) encode() ([]byte, error) {
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return nil, fmt.Errorf("%w: marshal entry: %v", ErrCorpus, err)
	}
	return append(data, '\n'), nil
}

// Filename returns the entry's content-addressed basename.
func (e *Entry) Filename() (string, error) {
	data, err := e.encode()
	if err != nil {
		return "", err
	}
	prefix := "seed"
	if e.Kind == KindFailing {
		prefix = "fail"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s-%x.json", prefix, sum[:8]), nil
}

// WriteEntry persists e into dir (created if missing), atomically and
// idempotently. It returns the written basename and whether the entry
// was new (false: an identical entry already existed).
func WriteEntry(dir string, e *Entry) (string, bool, error) {
	data, err := e.encode()
	if err != nil {
		return "", false, err
	}
	name, err := e.Filename()
	if err != nil {
		return "", false, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", false, fmt.Errorf("%w: mkdir %s: %v", ErrCorpus, dir, err)
	}
	path := filepath.Join(dir, name)
	if _, err := os.Stat(path); err == nil {
		// Content-addressed: an existing file with this name holds
		// these exact bytes already.
		return name, false, nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", false, fmt.Errorf("%w: write %s: %v", ErrCorpus, tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", false, fmt.Errorf("%w: rename %s: %v", ErrCorpus, tmp, err)
	}
	return name, true, nil
}

// LoadCorpus reads every entry in dir, sorted by basename (stable
// iteration order for planning and replay). A missing directory is an
// empty corpus.
func LoadCorpus(dir string) ([]*Entry, error) {
	if dir == "" {
		return nil, nil
	}
	names, err := corpusFiles(dir)
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("%w: read %s: %v", ErrCorpus, path, err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("%w: decode %s: %v", ErrCorpus, path, err)
		}
		out = append(out, &e)
	}
	return out, nil
}

// corpusFiles lists the entry basenames in dir, sorted.
func corpusFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: read dir %s: %v", ErrCorpus, dir, err)
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Replay verdict classifications.
const (
	// ReplayReproduced: the entry's outcome and signature reproduced
	// byte-for-byte — the known-bad seed is still caught.
	ReplayReproduced = "reproduced"
	// ReplayStale: the seed now passes cleanly (the bug behind a
	// failing entry was fixed); prune the entry.
	ReplayStale = "stale"
	// ReplayDiverged: the seed neither reproduces its record nor passes
	// — behavior changed on a known seed, which is a determinism or
	// protocol regression until a human re-records the corpus.
	ReplayDiverged = "diverged"
)

// ReplayResult is one corpus entry's replay verdict.
type ReplayResult struct {
	File    string `json:"file"`
	Entry   *Entry `json:"entry"`
	Verdict string `json:"verdict"`
	// Detail describes a divergence (current outcome/signature).
	Detail string `json:"detail,omitempty"`
}

// ReplayCorpus re-runs every corpus entry in dir and classifies each as
// reproduced, stale or diverged. It returns the per-entry results and
// an error wrapping ErrReplayDiverged if any entry diverged. When prune
// is true, stale entries are deleted from the directory.
func ReplayCorpus(ctx context.Context, dir string, opt WorkerOptions, prune bool) ([]ReplayResult, error) {
	names, err := corpusFiles(dir)
	if err != nil {
		return nil, err
	}
	var out []ReplayResult
	diverged := 0
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("%w: read %s: %v", ErrCorpus, path, err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("%w: decode %s: %v", ErrCorpus, path, err)
		}
		r := replayEntry(ctx, &e, opt)
		r.File = name
		if r.Verdict == ReplayDiverged {
			diverged++
		}
		if r.Verdict == ReplayStale && prune {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("%w: prune %s: %v", ErrCorpus, path, err)
			}
		}
		out = append(out, r)
	}
	if diverged > 0 {
		return out, fmt.Errorf("%w: %d of %d entries", ErrReplayDiverged, diverged, len(out))
	}
	return out, nil
}

// replayEntry re-runs one entry and classifies the result. The job
// machinery is reused so the verdict comes from the exact code path a
// soak would take.
func replayEntry(ctx context.Context, e *Entry, opt WorkerOptions) ReplayResult {
	job := &Job{Seeds: []int64{e.Seed}, Cfg: e.Cfg}
	res, err := RunBlock(ctx, job, opt)
	if err != nil {
		return ReplayResult{Entry: e, Verdict: ReplayDiverged, Detail: fmt.Sprintf("replay error: %v", err)}
	}
	v := res.Verdicts[0]
	switch {
	case v.Outcome == e.Outcome && v.Signature == e.Signature:
		return ReplayResult{Entry: e, Verdict: ReplayReproduced}
	case v.Outcome == OutcomePass && e.Outcome != OutcomePass:
		return ReplayResult{Entry: e, Verdict: ReplayStale}
	}
	return ReplayResult{Entry: e, Verdict: ReplayDiverged,
		Detail: fmt.Sprintf("outcome %s signature %q (recorded %s %q)", v.Outcome, v.Signature, e.Outcome, e.Signature)}
}

// EntriesNotIn reports which of fromDir's entry files are absent from
// intoDir (content-addressed names make this a set difference) — the
// nightly pipeline uses it to report new corpus entries.
func EntriesNotIn(fromDir, intoDir string) ([]string, error) {
	from, err := corpusFiles(fromDir)
	if err != nil {
		return nil, err
	}
	into, err := corpusFiles(intoDir)
	if err != nil {
		return nil, err
	}
	have := map[string]bool{}
	for _, n := range into {
		have[n] = true
	}
	var out []string
	for _, n := range from {
		if !have[n] {
			out = append(out, n)
		}
	}
	return out, nil
}
