package soak

// The soak summary: a stable-JSON aggregate computed purely from the
// manifest's committed block records. Nothing timing- or
// scheduling-dependent appears in it, which is what lets the engine
// promise a byte-identical summary for a killed-and-resumed soak.
// Per-shard counters are keyed by the deterministic lane a block's id
// maps to (block mod shards), not by whichever worker process happened
// to execute it.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"relaxedbvc/internal/metrics"
)

// OutcomeCounts partitions seeds by verdict.
type OutcomeCounts struct {
	Pass     int64 `json:"pass"`
	Degraded int64 `json:"degraded"`
	Failed   int64 `json:"failed"`
}

func (c *OutcomeCounts) add(o string, n int64) {
	switch o {
	case OutcomePass:
		c.Pass += n
	case OutcomeDegraded:
		c.Degraded += n
	case OutcomeFailed:
		c.Failed += n
	}
}

func (c *OutcomeCounts) addCounts(o OutcomeCounts) {
	c.Pass += o.Pass
	c.Degraded += o.Degraded
	c.Failed += o.Failed
}

// total is the seed count.
func (c OutcomeCounts) total() int64 { return c.Pass + c.Degraded + c.Failed }

// FailingRecord is one failing block's reproducer in the summary.
type FailingRecord struct {
	Block int    `json:"block"`
	Kind  string `json:"kind"`
	// Shrunk reports the reproducer was minimized and replay-confirmed;
	// the benchguard -soak gate fails on any unshrunk failure.
	Shrunk bool        `json:"shrunk"`
	Seed   FailingSeed `json:"seed"`
}

// SummaryConfig echoes the configuration the soak ran under.
type SummaryConfig struct {
	BaseSeed     int64    `json:"base_seed"`
	SeedBudget   int64    `json:"seed_budget"`
	DurationMode bool     `json:"duration_mode,omitempty"`
	Shards       int      `json:"shards"`
	BlockSize    int      `json:"block_size"`
	MutFrac      float64  `json:"mut_frac"`
	MutPerParent int      `json:"mut_per_parent"`
	Regime       string   `json:"regime"`
	Protocols    []string `json:"protocols,omitempty"`
	Strict       bool     `json:"strict"`
	Transport    string   `json:"transport"`
}

// Summary is the soak's stable-JSON result document.
type Summary struct {
	Version int           `json:"version"`
	Config  SummaryConfig `json:"config"`

	// Seed counters (raw outcome classes; Strict is applied by readers
	// via Config.Strict when deciding what counts as a failure).
	SeedsRun int64         `json:"seeds_run"`
	Outcomes OutcomeCounts `json:"outcomes"`
	// MeshCompared counts seeds whose decisions were cross-checked
	// against the channel-mesh backend (mesh soaks only).
	MeshCompared int64 `json:"mesh_compared,omitempty"`

	// Block counters by kind.
	Blocks         int `json:"blocks"`
	CorpusBlocks   int `json:"corpus_blocks"`
	BaseBlocks     int `json:"base_blocks"`
	MutationBlocks int `json:"mutation_blocks"`
	// MutationSeeds counts seeds spent on coverage-guided children.
	MutationSeeds int64 `json:"mutation_seeds"`

	// Coverage.
	NovelFeatures int `json:"novel_features"`

	// PerProtocol and PerShard aggregate outcomes by protocol name and
	// by deterministic shard lane (index = block id mod shards).
	PerProtocol map[string]OutcomeCounts `json:"per_protocol"`
	PerShard    []OutcomeCounts          `json:"per_shard"`

	// Failing lists each failing block's shrunk reproducer, in block
	// order. UnshrunkFailures counts reproducers whose replay
	// confirmation failed — the condition the -soak guard rejects.
	Failing          []FailingRecord `json:"failing,omitempty"`
	UnshrunkFailures int             `json:"unshrunk_failures"`

	// Corpus write counters (0 when no corpus directory is configured).
	CorpusFailingWritten     int `json:"corpus_failing_written"`
	CorpusInterestingWritten int `json:"corpus_interesting_written"`
}

// Encode renders the stable serialized form (indented JSON, sorted map
// keys, trailing newline).
func (s *Summary) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return nil, fmt.Errorf("%w: marshal summary: %v", ErrSoak, err)
	}
	return append(data, '\n'), nil
}

// Render writes a one-screen human summary.
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "soak: %d seeds — %d passed, %d degraded, %d failed (strict=%v, transport=%s)\n",
		s.SeedsRun, s.Outcomes.Pass, s.Outcomes.Degraded, s.Outcomes.Failed, s.Config.Strict, s.Config.Transport)
	fmt.Fprintf(w, "blocks: %d (%d corpus, %d base, %d mutation; %d mutation seeds), %d novel features\n",
		s.Blocks, s.CorpusBlocks, s.BaseBlocks, s.MutationBlocks, s.MutationSeeds, s.NovelFeatures)
	if s.MeshCompared > 0 {
		fmt.Fprintf(w, "mesh-compared: %d seeds matched the simulation bit-for-bit\n", s.MeshCompared)
	}
	if len(s.Failing) > 0 {
		fmt.Fprintf(w, "failing blocks: %d (%d unshrunk)\n", len(s.Failing), s.UnshrunkFailures)
		for _, f := range s.Failing {
			fmt.Fprintf(w, "  block %-5d seed %-20d %-13s %-8s shrunk=%v\n",
				f.Block, f.Seed.Seed, f.Seed.Protocol, f.Seed.Outcome, f.Shrunk)
		}
	}
	if s.CorpusFailingWritten+s.CorpusInterestingWritten > 0 {
		fmt.Fprintf(w, "corpus: +%d failing, +%d interesting entries\n",
			s.CorpusFailingWritten, s.CorpusInterestingWritten)
	}
}

// LoadSummary reads a summary document written by Summary.Encode (the
// benchguard -soak gate's input).
func LoadSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: read summary %s: %v", ErrSoak, path, err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%w: decode summary %s: %v", ErrSoak, path, err)
	}
	return &s, nil
}

// publishMetrics folds one freshly committed block into the library's
// cumulative metrics registry (expvar/pprof visibility for a running
// soak; the summary itself is computed from manifest records so resumed
// runs stay byte-identical). Counter names are literals — the
// metriclabel analyzer enforces the snake_case golden-file scheme.
func publishMetrics(rec *BlockRecord) {
	metrics.DefaultCounter("soak_blocks_total").Inc()
	var c OutcomeCounts
	for _, p := range rec.PerProtocol {
		c.addCounts(p)
	}
	metrics.DefaultCounter("soak_seeds_total").Add(c.total())
	metrics.DefaultCounter("soak_pass_total").Add(c.Pass)
	metrics.DefaultCounter("soak_degraded_total").Add(c.Degraded)
	metrics.DefaultCounter("soak_failed_total").Add(c.Failed)
	metrics.DefaultCounter("soak_mesh_compared_total").Add(int64(rec.MeshCompared))
	metrics.DefaultCounter("soak_novel_features_total").Add(int64(len(rec.Parents)))
	if rec.Kind == blockKindMutation {
		metrics.DefaultCounter("soak_mutation_seeds_total").Add(c.total())
	}
	if rec.MinFailing != nil && !rec.MinFailing.ReplayConfirmed {
		metrics.DefaultCounter("soak_unshrunk_failures_total").Inc()
	}
	for name, pc := range rec.PerProtocol {
		protoCounter(name).Add(pc.total())
	}
}

// protoCounter maps a protocol name onto its literal-named per-protocol
// soak counter. The protocol set is closed, so the mapping stays a
// switch over literals rather than a computed name (which would break
// the stable-snapshot contract the metriclabel analyzer guards).
func protoCounter(proto string) *metrics.Counter {
	switch proto {
	case "delta-relaxed":
		return metrics.DefaultCounter("soak_runs_delta_relaxed_total")
	case "exact":
		return metrics.DefaultCounter("soak_runs_exact_total")
	case "k-relaxed":
		return metrics.DefaultCounter("soak_runs_k_relaxed_total")
	case "scalar":
		return metrics.DefaultCounter("soak_runs_scalar_total")
	case "convex":
		return metrics.DefaultCounter("soak_runs_convex_total")
	case "iterative":
		return metrics.DefaultCounter("soak_runs_iterative_total")
	case "async":
		return metrics.DefaultCounter("soak_runs_async_total")
	case "k1-async":
		return metrics.DefaultCounter("soak_runs_k1_async_total")
	}
	return metrics.DefaultCounter("soak_runs_other_total")
}
