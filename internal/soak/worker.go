package soak

// The worker side: expand seeds with GenSpec, run them on the batch
// engine, check the invariant oracle, classify, and (for mesh soaks)
// cross-check mesh decisions against the simulation. One worker runs
// one block at a time; its verdicts are a pure function of the job.

import (
	"context"
	"errors"
	"fmt"
	"io"

	bvc "relaxedbvc"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/simtest"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Workers bounds the batch pool inside this worker process
	// (0 = 1: worker processes are the sharding unit, so the default
	// keeps each process single-threaded and lets the coordinator's
	// -shards knob own the parallelism).
	Workers int
	// Check tunes the invariant oracle.
	Check simtest.CheckOptions
}

func (o WorkerOptions) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// ServeWorker is the worker main loop: read jobs from r, run them,
// write results to w, until a bye frame or EOF. It returns nil on a
// clean shutdown.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, opt WorkerOptions) error {
	for {
		tag, data, err := readMsg(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch tag {
		case tagBye:
			return nil
		case tagJob:
			var job Job
			if err := decodeInto(tag, data, &job); err != nil {
				return err
			}
			res, err := RunBlock(ctx, &job, opt)
			if err != nil {
				return err
			}
			if err := writeMsg(w, tagResult, res); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected tag %q", ErrProto, tag)
		}
	}
}

// RunBlock executes one job: every seed is expanded, run, checked and
// classified. The result is deterministic for a given job regardless of
// the inner worker count (the batch engine returns results in input
// order and each trial is seed-deterministic).
func RunBlock(ctx context.Context, job *Job, opt WorkerOptions) (*BlockResult, error) {
	fcfg, err := job.Cfg.FuzzConfig()
	if err != nil {
		return nil, err
	}
	fcfg.Check = opt.Check

	specs := make([]bvc.Spec, len(job.Seeds))
	for i, seed := range job.Seeds {
		specs[i] = simtest.GenSpec(seed, fcfg)
	}
	batch := bvc.RunBatch(ctx, bvc.BatchOptions{Workers: opt.workers()}, specs)

	out := &BlockResult{Block: job.Block, Verdicts: make([]SeedVerdict, len(job.Seeds))}
	for i, br := range batch {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrInterrupted, job.Block, ctx.Err())
		}
		rep := &simtest.Report{Seed: job.Seeds[i], Spec: specs[i], Result: br.Result, Err: br.Err}
		if br.Err != nil {
			rep.Graceful = errors.Is(br.Err, bvc.ErrDeliveryViolated)
		} else if br.Result != nil {
			rep.Violations = simtest.Check(specs[i], br.Result, fcfg.Check)
		}
		rep.Signature = simtest.SignatureOf(rep)
		v := classify(job.Seeds[i], job.Cfg, rep)
		if v.Outcome == OutcomePass && job.Cfg.Transport == TransportMesh {
			meshCheck(ctx, specs[i], br.Result, &v)
		}
		out.Verdicts[i] = v
		if out.MinFailing == nil && failing(v, job.Cfg.Strict) {
			out.MinFailing = shrinkSeed(ctx, job, fcfg, v, opt)
		}
	}
	return out, nil
}

// classify folds a checked report into a verdict.
func classify(seed int64, cfg JobConfig, rep *simtest.Report) SeedVerdict {
	outcome := OutcomePass
	switch {
	case len(rep.Violations) > 0 || (rep.Err != nil && !rep.Graceful):
		outcome = OutcomeFailed
	case rep.Err != nil:
		outcome = OutcomeDegraded
	}
	rounds := 0
	if rep.Result != nil {
		rounds = rep.Result.Rounds
	}
	v := SeedVerdict{
		Seed:     seed,
		Outcome:  outcome,
		Protocol: rep.Spec.Protocol.String(),
		Feature:  Feature(seed, cfg, rep.Spec, outcome, rounds),
		Rounds:   rounds,
	}
	if outcome != OutcomePass {
		v.Signature = rep.Signature
	}
	return v
}

// failing applies the block's strictness: failures always count;
// degradations count only under Strict.
func failing(v SeedVerdict, strict bool) bool {
	return v.Outcome == OutcomeFailed || (strict && v.Outcome == OutcomeDegraded)
}

// shrinkSeed builds the block's shrunk reproducer from its first
// failing seed (for base blocks the seeds ascend, so "first" is also
// "minimal") and replay-confirms it: two fresh single-run replays must
// reproduce the recorded signature byte-for-byte.
func shrinkSeed(ctx context.Context, job *Job, fcfg simtest.FuzzConfig, v SeedVerdict, opt WorkerOptions) *FailingSeed {
	fs := &FailingSeed{
		Seed: v.Seed, Cfg: job.Cfg, Protocol: v.Protocol,
		Outcome: v.Outcome, Feature: v.Feature, Signature: v.Signature,
	}
	fs.ReplayConfirmed = true
	for i := 0; i < 2; i++ {
		rep := simtest.RunChecked(ctx, simtest.GenSpec(v.Seed, fcfg), opt.Check)
		if rep.Signature != v.Signature {
			fs.ReplayConfirmed = false
			break
		}
	}
	return fs
}

// meshEligible reports whether a generated spec can run on the channel
// mesh: synchronous oral-message protocol, no seeded link faults, no
// signed broadcast (both are simulation-only features).
func meshEligible(spec bvc.Spec) bool {
	switch spec.Protocol {
	case bvc.ProtocolDeltaRelaxed, bvc.ProtocolExact, bvc.ProtocolKRelaxed, bvc.ProtocolScalar:
	default:
		return false
	}
	return spec.Faults == nil && !spec.SignedBroadcast
}

// meshCheck re-runs a passing spec over the in-process channel mesh and
// compares the decisions bit-for-bit against the simulation result,
// demoting the verdict to a failure on any divergence. Exact binary
// vector encodings are compared (no tolerance): the transport parity
// contract says a cluster decides the same bytes as the simulation.
func meshCheck(ctx context.Context, spec bvc.Spec, sim *bvc.Result, v *SeedVerdict) {
	if !meshEligible(spec) || sim == nil {
		return
	}
	v.MeshCompared = true
	mesh, err := bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{Kind: bvc.TransportMesh}))
	if err != nil {
		v.Outcome = OutcomeFailed
		v.Signature = fmt.Sprintf("mesh-error: %v", err)
		return
	}
	if diff := meshDiff(sim, mesh, spec.N); diff != "" {
		v.Outcome = OutcomeFailed
		v.Signature = "mesh-divergence: " + diff
	}
}

// meshDiff returns a description of the first decision-relevant field
// where the mesh result diverges from the simulation's ("" = parity).
func meshDiff(sim, mesh *bvc.Result, n int) string {
	if mesh.Rounds != sim.Rounds {
		return fmt.Sprintf("rounds mesh=%d sim=%d", mesh.Rounds, sim.Rounds)
	}
	if len(mesh.Outputs) != len(sim.Outputs) || len(mesh.Delta) != len(sim.Delta) {
		return fmt.Sprintf("shape mesh=(%d outputs, %d deltas) sim=(%d outputs, %d deltas)",
			len(mesh.Outputs), len(mesh.Delta), len(sim.Outputs), len(sim.Delta))
	}
	for i := 0; i < n && i < len(sim.Outputs); i++ {
		if vecFingerprint(mesh.Outputs[i]) != vecFingerprint(sim.Outputs[i]) {
			return fmt.Sprintf("node %d output mesh=%v sim=%v", i, mesh.Outputs[i], sim.Outputs[i])
		}
	}
	// Delta is produced only by the delta-relaxed protocols; compare
	// exactly (no tolerance) where present.
	for i := 0; i < len(sim.Delta); i++ {
		if mesh.Delta[i] != sim.Delta[i] {
			return fmt.Sprintf("node %d delta mesh=%v sim=%v", i, mesh.Delta[i], sim.Delta[i])
		}
	}
	return ""
}

// vecFingerprint encodes a vector exactly (bit-level, no rounding).
func vecFingerprint(v bvc.Vector) string {
	if v == nil {
		return "<nil>"
	}
	return string(broadcast.EncodeVec(v))
}
