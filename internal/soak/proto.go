package soak

// The coordinator/worker wire protocol. Workers are subprocesses (or
// in-process pipe pairs in tests) speaking length-prefixed JSON over
// stdin/stdout. Rather than invent another framing, each message rides
// in an internal/transport Frame — 4-byte big-endian length prefix,
// canonical tag + data fields — so the size guards, typed decode errors
// and fuzz coverage of the real message plane apply verbatim here.
//
// Exchange:
//
//	coordinator -> worker: "soak/job"  {Job}
//	worker -> coordinator: "soak/res"  {BlockResult}   (one per job, in order)
//	coordinator -> worker: "soak/bye"  (empty)          then closes stdin
//
// A worker processes jobs strictly sequentially; concurrency comes from
// running several workers.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relaxedbvc/internal/transport"
)

// Wire tags.
const (
	tagJob    = "soak/job"
	tagResult = "soak/res"
	tagBye    = "soak/bye"
)

// maxWireFrame bounds one protocol message. Blocks carry at most a few
// thousand verdicts with short feature strings; 16 MiB leaves two
// orders of magnitude of headroom while still bounding a corrupt
// length prefix.
const maxWireFrame = 16 << 20

// writeMsg marshals v and writes it as one tagged frame.
func writeMsg(w io.Writer, tag string, v any) error {
	var data []byte
	if v != nil {
		var err error
		data, err = json.Marshal(v)
		if err != nil {
			return fmt.Errorf("%w: marshal %s: %v", ErrProto, tag, err)
		}
	}
	f := transport.Frame{To: transport.Broadcast, Tag: tag, Data: data}
	if _, err := transport.WriteFrame(w, &f, maxWireFrame); err != nil {
		return fmt.Errorf("%w: write %s: %v", ErrProto, tag, err)
	}
	return nil
}

// readMsg reads one frame and returns its tag and raw payload. A clean
// EOF before the first prefix byte is surfaced as io.EOF so loops can
// terminate on peer shutdown.
func readMsg(r io.Reader) (string, []byte, error) {
	f, err := transport.ReadFrame(r, maxWireFrame)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("%w: read frame: %v", ErrProto, err)
	}
	return f.Tag, f.Data, nil
}

// decodeInto unmarshals a payload, wrapping failures in ErrProto.
func decodeInto(tag string, data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%w: decode %s: %v", ErrProto, tag, err)
	}
	return nil
}
