package soak

// The execution plane: a pool of Workers the coordinator dispatches
// blocks to. Two implementations speak the identical wire protocol —
// an in-process pair of pipes (tests, and the default when no spawn
// function is configured) and a real subprocess (cmd/bvcsoak) — so the
// framing, size guards and shutdown discipline are exercised even by
// unit tests that never fork.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Worker runs blocks. Implementations are not safe for concurrent use;
// the coordinator gives each worker one job at a time.
type Worker interface {
	// Run executes one job and returns its result.
	Run(job *Job) (*BlockResult, error)
	// Close shuts the worker down (idempotent).
	Close() error
}

// SpawnFunc creates worker id (0-based). The coordinator spawns one
// worker per shard at soak start and closes them all at the end.
type SpawnFunc func(ctx context.Context, id int) (Worker, error)

// roundTrip implements the coordinator side of the job exchange over
// any frame-carrying byte stream.
func roundTrip(w io.Writer, r io.Reader, job *Job) (*BlockResult, error) {
	if err := writeMsg(w, tagJob, job); err != nil {
		return nil, err
	}
	tag, data, err := readMsg(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("%w: worker exited before answering block %d", ErrProto, job.Block)
		}
		return nil, err
	}
	if tag != tagResult {
		return nil, fmt.Errorf("%w: want %s, got %q", ErrProto, tagResult, tag)
	}
	var res BlockResult
	if err := decodeInto(tag, data, &res); err != nil {
		return nil, err
	}
	if res.Block != job.Block {
		return nil, fmt.Errorf("%w: result for block %d, want %d", ErrProto, res.Block, job.Block)
	}
	return &res, nil
}

// pipeWorker serves blocks over an in-process pipe pair: a goroutine
// runs ServeWorker on the far end, so the full wire protocol is
// exercised without forking.
type pipeWorker struct {
	toWorker   io.WriteCloser
	fromWorker io.ReadCloser
	done       chan error
	closeOnce  sync.Once
	closeErr   error
}

// SpawnInProc returns a SpawnFunc whose workers run in-process over
// pipes, with the given worker options.
func SpawnInProc(opt WorkerOptions) SpawnFunc {
	return func(ctx context.Context, id int) (Worker, error) {
		jobR, jobW := io.Pipe()
		resR, resW := io.Pipe()
		pw := &pipeWorker{toWorker: jobW, fromWorker: resR, done: make(chan error, 1)}
		go func() {
			err := ServeWorker(ctx, jobR, resW, opt)
			// Closing both pipe ends with the serve error unblocks a
			// coordinator mid-read or mid-write (io.Pipe is synchronous:
			// a bye written after the serve loop died would otherwise
			// block forever) and surfaces the cause.
			jobR.CloseWithError(err) //nolint:errcheck // pipe close cannot fail
			resW.CloseWithError(err) //nolint:errcheck // pipe close cannot fail
			pw.done <- err
		}()
		return pw, nil
	}
}

func (p *pipeWorker) Run(job *Job) (*BlockResult, error) {
	return roundTrip(p.toWorker, p.fromWorker, job)
}

func (p *pipeWorker) Close() error {
	p.closeOnce.Do(func() {
		writeErr := writeMsg(p.toWorker, tagBye, nil)
		p.toWorker.Close()   //nolint:errcheck // pipe close cannot fail
		p.fromWorker.Close() //nolint:errcheck // pipe close cannot fail
		serveErr := <-p.done
		if writeErr != nil {
			p.closeErr = writeErr
		} else if serveErr != nil && !errors.Is(serveErr, io.ErrClosedPipe) {
			p.closeErr = serveErr
		}
	})
	return p.closeErr
}

// procWorker drives a real subprocess over its stdin/stdout.
type procWorker struct {
	cmd       *exec.Cmd
	stdin     io.WriteCloser
	stdout    io.ReadCloser
	closeOnce sync.Once
	closeErr  error
}

// SpawnProc returns a SpawnFunc that forks bin with args for each
// worker; the subprocess must run the worker loop (bvcsoak -worker)
// speaking the soak protocol on stdin/stdout. Its stderr is inherited
// so crash diagnostics surface.
func SpawnProc(bin string, args []string) SpawnFunc {
	return func(ctx context.Context, id int) (Worker, error) {
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("%w: stdin pipe: %v", ErrSoak, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("%w: stdout pipe: %v", ErrSoak, err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("%w: start worker %d (%s): %v", ErrSoak, id, bin, err)
		}
		return &procWorker{cmd: cmd, stdin: stdin, stdout: stdout}, nil
	}
}

func (p *procWorker) Run(job *Job) (*BlockResult, error) {
	return roundTrip(p.stdin, p.stdout, job)
}

func (p *procWorker) Close() error {
	p.closeOnce.Do(func() {
		writeErr := writeMsg(p.stdin, tagBye, nil)
		p.stdin.Close() //nolint:errcheck // double-close is harmless here
		waitErr := p.cmd.Wait()
		switch {
		case waitErr != nil:
			p.closeErr = fmt.Errorf("%w: worker exit: %v", ErrSoak, waitErr)
		case writeErr != nil:
			p.closeErr = writeErr
		}
	})
	return p.closeErr
}

// spawnPool creates n workers and closes the partial pool on failure.
func spawnPool(ctx context.Context, spawn SpawnFunc, n int) ([]Worker, error) {
	pool := make([]Worker, 0, n)
	for i := 0; i < n; i++ {
		w, err := spawn(ctx, i)
		if err != nil {
			closePool(pool)
			return nil, fmt.Errorf("%w: spawn worker %d: %v", ErrSoak, i, err)
		}
		pool = append(pool, w)
	}
	return pool, nil
}

// closePool closes every worker, returning the first error.
func closePool(pool []Worker) error {
	var first error
	for _, w := range pool {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
