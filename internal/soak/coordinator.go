package soak

// The coordinator: plans blocks, dispatches them to the worker pool,
// commits results strictly in block order, and checkpoints after every
// commit. Planning is a pure function of the options and the committed
// history — blocks may execute in any order on any worker, but every
// scheduling decision (coverage novelty, mutation-parent consumption,
// corpus writes, the summary) is taken at commit time from committed
// state only. Resume therefore replays the manifest's records through
// the identical planner instead of re-running them, and continues at
// the frontier; a killed-and-resumed soak summarizes byte-identically
// to an uninterrupted one.
//
// Wall-clock deadlines (duration budgets, context cancellation) gate
// only *execution*, never planning: a phase planned but stopped before
// dispatch commits nothing, so the next run re-plans it identically
// from the same committed history and runs it then.

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"relaxedbvc/internal/simtest"
)

// Block kinds recorded in the manifest.
const (
	blockKindCorpus   = "corpus"
	blockKindBase     = "base"
	blockKindMutation = "mutation"
)

// Options configures a soak run.
type Options struct {
	// SeedBudget is the number of fresh seeds to run (corpus replays are
	// on top). Exactly this many seeds run when the soak completes.
	SeedBudget int64
	// Duration, when positive and SeedBudget is zero, runs epochs of
	// base seeds plus mutation waves until the wall-clock budget is
	// spent. When both are set, SeedBudget plans the soak and Duration
	// acts as a dispatch deadline (resume to finish the plan).
	Duration time.Duration
	// BaseSeed is folded into every generated instance
	// (simtest.FuzzConfig.BaseSeed): two soaks with different base seeds
	// explore disjoint instance populations from the same seed indices.
	BaseSeed int64
	// Shards is the worker-pool size (default 1). It also keys the
	// summary's per-shard counters: block b belongs to lane b mod Shards
	// regardless of which worker actually ran it.
	Shards int
	// BlockSize is the number of seeds per block (default 256).
	BlockSize int
	// MutFrac is the fraction of SeedBudget reserved for
	// coverage-guided mutation children (default 0.25). Unspent
	// mutation budget becomes extra base blocks, so SeedsRun always
	// equals SeedBudget.
	MutFrac float64
	// MutPerParent is the number of derived children per mutation
	// parent (default 8).
	MutPerParent int
	// MaxParentsPerWave bounds one mutation wave (default 64).
	MaxParentsPerWave int
	// MaxInteresting bounds the novel-feature corpus entries persisted
	// per soak (default 256); the cap is consumed in commit order, so it
	// is deterministic under resume.
	MaxInteresting int
	// Regime/Protocols/Strict/Transport form the base generation recipe
	// (see JobConfig). Defaults: "mixed", all protocols, false, "sim".
	Regime    string
	Protocols []string
	Strict    bool
	Transport string
	// Corpus is the corpus directory ("" disables persistence and
	// replay).
	Corpus string
	// Manifest is the checkpoint path ("" disables checkpointing, and
	// with it resume).
	Manifest string
	// Resume loads the manifest and continues from its last committed
	// block instead of starting fresh.
	Resume bool
	// Worker tunes block execution (in-proc workers and shrink replays).
	Worker WorkerOptions
	// Spawn creates workers (default: in-process pipe workers running
	// ServeWorker, so even the default path speaks the wire protocol).
	Spawn SpawnFunc
	// Log receives progress lines (nil: silent).
	Log io.Writer
	// CommitHook, when set, observes every freshly committed block
	// record after its checkpoint is durable — the test seam for
	// kill-mid-run scenarios (cancel the context from the hook).
	CommitHook func(*BlockRecord)
}

// normalize applies defaults and validates, returning the effective
// options.
func (o Options) normalize() (Options, error) {
	if o.SeedBudget <= 0 && o.Duration <= 0 {
		return o, fmt.Errorf("%w: need a seed budget or a duration", ErrConfig)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 256
	}
	if o.MutFrac == 0 {
		o.MutFrac = 0.25
	}
	if o.MutFrac < 0 || o.MutFrac >= 1 {
		return o, fmt.Errorf("%w: MutFrac %v outside [0,1)", ErrConfig, o.MutFrac)
	}
	if o.MutPerParent <= 0 {
		o.MutPerParent = 8
	}
	if o.MaxParentsPerWave <= 0 {
		o.MaxParentsPerWave = 64
	}
	if o.MaxInteresting <= 0 {
		o.MaxInteresting = 256
	}
	if o.Regime == "" {
		o.Regime = "mixed"
	}
	if _, err := ParseRegime(o.Regime); err != nil {
		return o, err
	}
	if _, err := ParseProtocols(o.Protocols); err != nil {
		return o, err
	}
	if o.Transport == "" {
		o.Transport = TransportSim
	}
	if o.Transport != TransportSim && o.Transport != TransportMesh {
		return o, fmt.Errorf("%w: unknown transport %q", ErrConfig, o.Transport)
	}
	if o.Resume && o.Manifest == "" {
		return o, fmt.Errorf("%w: -resume needs a manifest path", ErrConfig)
	}
	if o.Spawn == nil {
		o.Spawn = SpawnInProc(o.Worker)
	}
	return o, nil
}

// baseCfg is the soak's base generation recipe.
func (o Options) baseCfg() JobConfig {
	return JobConfig{
		BaseSeed:  o.BaseSeed,
		Regime:    o.Regime,
		Protocols: o.Protocols,
		Strict:    o.Strict,
		Transport: o.Transport,
	}
}

// cfgHash fingerprints every option that shapes the block plan. A
// resume under a different hash would plan a different block sequence
// against the same records, so it is refused.
func (o Options) cfgHash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%d|%d|%d|%d|%v|%d|%d|%d|%s|%v|%v|%s|dur%v",
		manifestVersion, o.SeedBudget, o.BaseSeed, o.Shards, o.BlockSize,
		o.MutFrac, o.MutPerParent, o.MaxParentsPerWave, o.MaxInteresting,
		o.Regime, o.Protocols, o.Strict, o.Transport, o.Duration > 0 && o.SeedBudget <= 0)
	return fmt.Sprintf("%016x", h.Sum64())
}

// coordinator is one soak run's mutable state.
type coordinator struct {
	opt     Options
	baseCfg JobConfig

	// state is the live manifest state; loaded holds the records read
	// from a resumed manifest, replayIdx the replay cursor into them.
	state     *manifestState
	loaded    []BlockRecord
	replayIdx int

	// Commit-derived scheduling state.
	seen            map[string]bool
	parents         []ParentRef
	parentCur       int
	interestingLeft int

	// Planning cursors.
	nextBlock    int
	nextBaseSeed int64

	// Execution plane.
	pool     []Worker
	deadline time.Time
	stopped  bool // deadline hit: plan on, execute nothing more
}

// Run executes a soak to completion (or its deadline) and returns the
// summary. On context cancellation it returns ErrInterrupted; progress
// up to the last committed block is checkpointed and a Resume run
// continues from there.
func Run(ctx context.Context, opt Options) (*Summary, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	co := &coordinator{
		opt:             opt,
		baseCfg:         opt.baseCfg(),
		seen:            map[string]bool{},
		interestingLeft: opt.MaxInteresting,
	}
	if opt.Duration > 0 {
		co.deadline = time.Now().Add(opt.Duration)
	}
	if err := co.initState(); err != nil {
		return nil, err
	}
	defer func() {
		if co.pool != nil {
			closePool(co.pool) //nolint:errcheck // best-effort shutdown on exit
		}
	}()

	if err := co.plan(ctx); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("%w: %d blocks committed", ErrInterrupted, len(co.state.Blocks))
	}
	return buildSummary(co.state, co.opt), nil
}

// initState loads (resume) or creates the manifest state and snapshots
// the corpus replay plan.
func (co *coordinator) initState() error {
	hash := co.opt.cfgHash()
	if co.opt.Resume {
		st, err := loadManifest(co.opt.Manifest)
		if err != nil {
			return err
		}
		if st != nil {
			if st.CfgHash != hash {
				return fmt.Errorf("%w: manifest was written by config %s, this soak is %s", ErrManifest, st.CfgHash, hash)
			}
			for i := range st.Blocks {
				if st.Blocks[i].Block != i {
					return fmt.Errorf("%w: record %d has block id %d (commit order broken)", ErrManifest, i, st.Blocks[i].Block)
				}
			}
			co.state = st
			co.loaded = st.Blocks
			co.logf("resuming: %d committed blocks", len(st.Blocks))
			return nil
		}
		co.logf("resume requested but no manifest found: starting fresh")
	}
	plan, err := snapshotCorpusPlan(co.opt.Corpus)
	if err != nil {
		return err
	}
	co.state = &manifestState{Version: manifestVersion, CfgHash: hash, CorpusPlan: plan}
	return nil
}

// snapshotCorpusPlan freezes the corpus into a replay plan: sorted,
// deduplicated (seed, config) pairs. The snapshot lives in the manifest
// because the corpus directory grows *during* the soak — re-scanning it
// on resume would change the plan.
func snapshotCorpusPlan(dir string) ([]ReplaySeed, error) {
	entries, err := LoadCorpus(dir)
	if err != nil {
		return nil, err
	}
	seenRun := map[string]bool{}
	var plan []ReplaySeed
	for _, e := range entries {
		key := fmt.Sprintf("%d@%s", e.Seed, e.Cfg.Key())
		if seenRun[key] {
			continue
		}
		seenRun[key] = true
		plan = append(plan, ReplaySeed{Seed: e.Seed, Cfg: e.Cfg})
	}
	sort.Slice(plan, func(i, j int) bool {
		ki, kj := plan[i].Cfg.Key(), plan[j].Cfg.Key()
		if ki != kj {
			return ki < kj
		}
		return plan[i].Seed < plan[j].Seed
	})
	return plan, nil
}

// plan runs the phase sequence.
func (co *coordinator) plan(ctx context.Context) error {
	if err := co.runJobs(ctx, blockKindCorpus, co.packCorpus()); err != nil {
		return err
	}
	if co.opt.SeedBudget > 0 {
		return co.planBudget(ctx)
	}
	return co.planDuration(ctx)
}

// planBudget: one base phase sized to (1-MutFrac) of the budget, then
// mutation waves until the mutation budget is spent or no unconsumed
// parents remain, then filler base blocks for whatever is left — the
// soak always runs exactly SeedBudget fresh seeds.
func (co *coordinator) planBudget(ctx context.Context) error {
	mutBudget := int64(float64(co.opt.SeedBudget) * co.opt.MutFrac)
	baseBudget := co.opt.SeedBudget - mutBudget
	co.logf("phase base: %d seeds", baseBudget)
	if err := co.runJobs(ctx, blockKindBase, co.baseJobs(baseBudget)); err != nil {
		return err
	}
	mutLeft := mutBudget
	for wave := 1; mutLeft > 0; wave++ {
		jobs := co.planWave(&mutLeft)
		if len(jobs) == 0 {
			break
		}
		co.logf("phase mutation wave %d: %d blocks (%d mutation seeds left)", wave, len(jobs), mutLeft)
		if err := co.runJobs(ctx, blockKindMutation, jobs); err != nil {
			return err
		}
	}
	if mutLeft > 0 {
		co.logf("phase filler: %d seeds of unspent mutation budget", mutLeft)
		if err := co.runJobs(ctx, blockKindBase, co.baseJobs(mutLeft)); err != nil {
			return err
		}
	}
	return nil
}

// planDuration: epochs of a base chunk plus one mutation wave, until
// the deadline stops dispatch (replay of a resumed manifest always runs
// to its end first — replay never consults the clock).
func (co *coordinator) planDuration(ctx context.Context) error {
	chunk := int64(co.opt.BlockSize) * int64(4*co.opt.Shards)
	for epoch := 1; ; epoch++ {
		if co.replayIdx >= len(co.loaded) && co.halted(ctx) {
			return nil
		}
		co.logf("epoch %d: %d base seeds", epoch, chunk)
		if err := co.runJobs(ctx, blockKindBase, co.baseJobs(chunk)); err != nil {
			return err
		}
		waveBudget := int64(co.opt.MutPerParent) * int64(co.opt.MaxParentsPerWave)
		jobs := co.planWave(&waveBudget)
		if len(jobs) == 0 {
			continue
		}
		co.logf("epoch %d: mutation wave, %d blocks", epoch, len(jobs))
		if err := co.runJobs(ctx, blockKindMutation, jobs); err != nil {
			return err
		}
	}
}

// halted reports that no more blocks may be dispatched.
func (co *coordinator) halted(ctx context.Context) bool {
	if ctx.Err() != nil || co.stopped {
		return true
	}
	if !co.deadline.IsZero() && time.Now().After(co.deadline) {
		co.stopped = true
	}
	return co.stopped
}

// newJob mints the next block.
func (co *coordinator) newJob(cfg JobConfig, seeds []int64) *Job {
	j := &Job{Block: co.nextBlock, Seeds: seeds, Cfg: cfg}
	co.nextBlock++
	return j
}

// packCorpus groups the replay plan into blocks (one config per block).
func (co *coordinator) packCorpus() []*Job {
	var jobs []*Job
	plan := co.state.CorpusPlan
	for i := 0; i < len(plan); {
		j := i + 1
		for j < len(plan) && plan[j].Cfg.Key() == plan[i].Cfg.Key() && j-i < co.opt.BlockSize {
			j++
		}
		seeds := make([]int64, 0, j-i)
		for _, r := range plan[i:j] {
			seeds = append(seeds, r.Seed)
		}
		jobs = append(jobs, co.newJob(plan[i].Cfg, seeds))
		i = j
	}
	if len(jobs) > 0 {
		co.logf("phase corpus: %d entries in %d blocks", len(plan), len(jobs))
	}
	return jobs
}

// baseJobs cuts the next count base seeds into blocks.
func (co *coordinator) baseJobs(count int64) []*Job {
	var jobs []*Job
	for count > 0 {
		n := int64(co.opt.BlockSize)
		if n > count {
			n = count
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = co.nextBaseSeed + int64(i)
		}
		co.nextBaseSeed += n
		count -= n
		jobs = append(jobs, co.newJob(co.baseCfg, seeds))
	}
	return jobs
}

// planWave consumes the next run of unconsumed mutation parents (up to
// MaxParentsPerWave, while budget remains) and derives their children,
// grouped into blocks by the pinned child config.
func (co *coordinator) planWave(mutLeft *int64) []*Job {
	end := co.parentCur + co.opt.MaxParentsPerWave
	if end > len(co.parents) {
		end = len(co.parents)
	}
	type group struct {
		cfg   JobConfig
		seeds []int64
	}
	groups := map[string]*group{}
	var order []string
	for ; co.parentCur < end && *mutLeft > 0; co.parentCur++ {
		p := co.parents[co.parentCur]
		k := int64(co.opt.MutPerParent)
		if k > *mutLeft {
			k = *mutLeft
		}
		*mutLeft -= k
		cfg := co.childCfg(p)
		key := cfg.Key()
		g, ok := groups[key]
		if !ok {
			g = &group{cfg: cfg}
			groups[key] = g
			order = append(order, key)
		}
		for i := 0; i < int(k); i++ {
			g.seeds = append(g.seeds, ChildSeed(p.Seed, i))
		}
	}
	var jobs []*Job
	for _, key := range order {
		g := groups[key]
		for off := 0; off < len(g.seeds); off += co.opt.BlockSize {
			hi := off + co.opt.BlockSize
			if hi > len(g.seeds) {
				hi = len(g.seeds)
			}
			jobs = append(jobs, co.newJob(g.cfg, g.seeds[off:hi]))
		}
	}
	return jobs
}

// childCfg pins a mutation child's generation to the parent's protocol
// and effective regime, so the extra budget lands on the configuration
// that produced the novelty.
func (co *coordinator) childCfg(p ParentRef) JobConfig {
	return JobConfig{
		BaseSeed:  co.opt.BaseSeed,
		Regime:    p.Regime,
		Protocols: []string{p.Protocol},
		Strict:    co.opt.Strict,
		Transport: co.opt.Transport,
	}
}

// runJobs processes one phase's block list: blocks already in the
// manifest are committed from their records (replay); the rest are
// dispatched to the pool and committed strictly in block order as
// results arrive.
func (co *coordinator) runJobs(ctx context.Context, kind string, jobs []*Job) error {
	i := 0
	for ; i < len(jobs) && co.replayIdx < len(co.loaded); i++ {
		rec := &co.loaded[co.replayIdx]
		if err := verifyRecord(jobs[i], kind, rec); err != nil {
			return err
		}
		co.applyRecord(rec)
		co.replayIdx++
	}
	rest := jobs[i:]
	if len(rest) == 0 || co.halted(ctx) {
		return nil
	}
	if err := co.ensurePool(ctx); err != nil {
		return err
	}
	return co.dispatch(ctx, kind, rest)
}

// dispatch runs blocks on the pool, committing in block order.
func (co *coordinator) dispatch(ctx context.Context, kind string, jobs []*Job) error {
	type wres struct {
		block int
		br    *BlockResult
		err   error
	}
	jobCh := make(chan *Job)
	resCh := make(chan wres, len(co.pool))
	var wg sync.WaitGroup
	for _, w := range co.pool {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			for j := range jobCh {
				br, err := w.Run(j)
				resCh <- wres{block: j.Block, br: br, err: err}
			}
		}(w)
	}

	// The feeder hands blocks to idle workers until the list, the
	// deadline or the context runs out; abort stops it early on a
	// worker failure.
	feedCtx, stopFeed := context.WithCancel(ctx)
	defer stopFeed()
	dispatchedCh := make(chan int, 1)
	go func() {
		n := 0
		for _, j := range jobs {
			if feedCtx.Err() != nil || co.deadlinePassed() {
				break
			}
			select {
			case jobCh <- j:
				n++
			case <-feedCtx.Done():
			}
		}
		close(jobCh)
		dispatchedCh <- n
	}()

	byBlock := map[int]*Job{}
	for _, j := range jobs {
		byBlock[j.Block] = j
	}
	pending := map[int]*BlockResult{}
	next := jobs[0].Block
	total, got := -1, 0
	var firstErr error
	for total < 0 || got < total {
		select {
		case n := <-dispatchedCh:
			total = n
		case r := <-resCh:
			got++
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				stopFeed()
				continue
			}
			pending[r.block] = r.br
			for {
				br, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if err := co.commitFresh(kind, byBlock[next], br); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					stopFeed()
					break
				}
				next++
			}
		}
	}
	wg.Wait()
	if total < len(jobs) && !co.stopped && firstErr == nil && ctx.Err() == nil {
		co.stopped = true // deadline stopped the feeder
	}
	if firstErr != nil && ctx.Err() != nil {
		// A cancellation tears down in-flight workers; report the
		// interruption, not the secondary worker errors.
		return nil
	}
	return firstErr
}

func (co *coordinator) deadlinePassed() bool {
	return !co.deadline.IsZero() && time.Now().After(co.deadline)
}

func (co *coordinator) ensurePool(ctx context.Context) error {
	if co.pool != nil {
		return nil
	}
	pool, err := spawnPool(ctx, co.opt.Spawn, co.opt.Shards)
	if err != nil {
		return err
	}
	co.pool = pool
	return nil
}

// commitFresh turns a block result into a durable record: build the
// record (deciding feature novelty against committed state), persist
// corpus entries, append to the manifest state, checkpoint, publish
// metrics, and fire the commit hook.
func (co *coordinator) commitFresh(kind string, job *Job, br *BlockResult) error {
	rec := co.buildRecord(kind, job, br)
	if err := co.writeCorpus(rec); err != nil {
		return err
	}
	co.state.Blocks = append(co.state.Blocks, *rec)
	if co.opt.Manifest != "" {
		if err := saveManifest(co.opt.Manifest, co.state); err != nil {
			return err
		}
	}
	publishMetrics(rec)
	if co.opt.CommitHook != nil {
		co.opt.CommitHook(rec)
	}
	return nil
}

// buildRecord folds verdicts into a BlockRecord, updating the coverage
// map and parent queue (novel features, in seed order).
func (co *coordinator) buildRecord(kind string, job *Job, br *BlockResult) *BlockRecord {
	rec := &BlockRecord{Block: job.Block, Kind: kind, Cfg: job.Cfg, MinFailing: br.MinFailing}
	rec.setSeeds(job.Seeds)
	regime, _ := ParseRegime(job.Cfg.Regime) // validated at normalize/decode time
	out := make([]byte, len(br.Verdicts))
	perProto := map[string]OutcomeCounts{}
	for i, v := range br.Verdicts {
		out[i] = outcomeByte(v.Outcome)
		pc := perProto[v.Protocol]
		pc.add(v.Outcome, 1)
		perProto[v.Protocol] = pc
		if v.MeshCompared {
			rec.MeshCompared++
		}
		if !co.seen[v.Feature] {
			co.seen[v.Feature] = true
			rec.Parents = append(rec.Parents, ParentRef{
				Seed:      v.Seed,
				Protocol:  v.Protocol,
				Regime:    simtest.EffectiveRegime(v.Seed, regime).String(),
				Feature:   v.Feature,
				Outcome:   v.Outcome,
				Signature: v.Signature,
			})
		}
	}
	rec.Outcomes = string(out)
	rec.PerProtocol = perProto
	co.parents = append(co.parents, rec.Parents...)
	return rec
}

// applyRecord replays one committed record's scheduling effects: the
// exact state updates buildRecord made when the record was fresh.
func (co *coordinator) applyRecord(rec *BlockRecord) {
	for _, p := range rec.Parents {
		co.seen[p.Feature] = true
	}
	co.parents = append(co.parents, rec.Parents...)
	co.interestingLeft -= len(rec.Parents)
	if co.interestingLeft < 0 {
		co.interestingLeft = 0
	}
}

// writeCorpus persists the block's corpus entries: the shrunk failing
// seed, and novel-feature hitters while the interesting budget lasts.
// Writes are idempotent (content-addressed), and they happen before the
// manifest checkpoint: a crash between the two re-runs the block and
// re-writes the identical files.
func (co *coordinator) writeCorpus(rec *BlockRecord) error {
	// The interesting budget is consumed per parent in commit order even
	// when persistence is off, so summaries and resumes agree.
	take := len(rec.Parents)
	if take > co.interestingLeft {
		take = co.interestingLeft
	}
	co.interestingLeft -= take
	if co.opt.Corpus == "" {
		return nil
	}
	if rec.MinFailing != nil {
		e := failingEntry(rec.MinFailing)
		if name, isNew, err := WriteEntry(co.opt.Corpus, e); err != nil {
			return err
		} else if isNew {
			co.logf("corpus: new failing entry %s (block %d, seed %d)", name, rec.Block, e.Seed)
		}
	}
	for _, p := range rec.Parents[:take] {
		if _, _, err := WriteEntry(co.opt.Corpus, interestingEntry(p, rec.Cfg)); err != nil {
			return err
		}
	}
	return nil
}

// failingEntry and interestingEntry build corpus entries from record
// parts; buildSummary derives the same entries to count unique corpus
// files without consulting the disk.
func failingEntry(fs *FailingSeed) *Entry {
	return &Entry{
		Kind: KindFailing, Seed: fs.Seed, Cfg: fs.Cfg, Protocol: fs.Protocol,
		Feature: fs.Feature, Outcome: fs.Outcome, Signature: fs.Signature,
		ReplayConfirmed: fs.ReplayConfirmed,
	}
}

func interestingEntry(p ParentRef, cfg JobConfig) *Entry {
	return &Entry{
		Kind: KindInteresting, Seed: p.Seed, Cfg: cfg, Protocol: p.Protocol,
		Feature: p.Feature, Outcome: p.Outcome, Signature: p.Signature,
	}
}

// verifyRecord checks a manifest record against the re-planned block.
// The config hash already pinned the options, so a mismatch here means
// the manifest was edited or the planner changed incompatibly.
func verifyRecord(job *Job, kind string, rec *BlockRecord) error {
	if rec.Block != job.Block || rec.Kind != kind {
		return fmt.Errorf("%w: record %d/%s does not match planned block %d/%s", ErrManifest, rec.Block, rec.Kind, job.Block, kind)
	}
	if rec.Cfg.Key() != job.Cfg.Key() {
		return fmt.Errorf("%w: block %d config drift: recorded %s, planned %s", ErrManifest, job.Block, rec.Cfg.Key(), job.Cfg.Key())
	}
	recSeeds := rec.RecordSeeds()
	if len(recSeeds) != len(job.Seeds) {
		return fmt.Errorf("%w: block %d has %d recorded seeds, planned %d", ErrManifest, job.Block, len(recSeeds), len(job.Seeds))
	}
	for i := range recSeeds {
		if recSeeds[i] != job.Seeds[i] {
			return fmt.Errorf("%w: block %d seed %d drift: recorded %d, planned %d", ErrManifest, job.Block, i, recSeeds[i], job.Seeds[i])
		}
	}
	if len(rec.Outcomes) != len(job.Seeds) {
		return fmt.Errorf("%w: block %d has %d outcomes for %d seeds", ErrManifest, job.Block, len(rec.Outcomes), len(job.Seeds))
	}
	return nil
}

func outcomeByte(o string) byte {
	switch o {
	case OutcomeDegraded:
		return 'd'
	case OutcomeFailed:
		return 'f'
	}
	return 'p'
}

func (co *coordinator) logf(format string, args ...any) {
	if co.opt.Log == nil {
		return
	}
	fmt.Fprintf(co.opt.Log, "soak: "+format+"\n", args...)
}

// buildSummary folds the committed records into the summary. It reads
// only the manifest state and the options — never the clock, the
// corpus directory, or worker scheduling — so an interrupted-and-
// resumed soak produces the byte-identical document.
func buildSummary(st *manifestState, opt Options) *Summary {
	s := &Summary{
		Version: 1,
		Config: SummaryConfig{
			BaseSeed:     opt.BaseSeed,
			SeedBudget:   opt.SeedBudget,
			DurationMode: opt.SeedBudget <= 0,
			Shards:       opt.Shards,
			BlockSize:    opt.BlockSize,
			MutFrac:      opt.MutFrac,
			MutPerParent: opt.MutPerParent,
			Regime:       opt.Regime,
			Protocols:    opt.Protocols,
			Strict:       opt.Strict,
			Transport:    opt.Transport,
		},
		PerProtocol: map[string]OutcomeCounts{},
		PerShard:    make([]OutcomeCounts, opt.Shards),
	}
	interestingLeft := opt.MaxInteresting
	failFiles := map[string]bool{}
	seedFiles := map[string]bool{}
	for i := range st.Blocks {
		rec := &st.Blocks[i]
		s.Blocks++
		switch rec.Kind {
		case blockKindCorpus:
			s.CorpusBlocks++
		case blockKindMutation:
			s.MutationBlocks++
			s.MutationSeeds += int64(len(rec.Outcomes))
		default:
			s.BaseBlocks++
		}
		shard := rec.Block % opt.Shards
		for j := 0; j < len(rec.Outcomes); j++ {
			o := outcomeName(rec.Outcomes[j])
			s.Outcomes.add(o, 1)
			s.PerShard[shard].add(o, 1)
		}
		s.SeedsRun += int64(len(rec.Outcomes))
		s.MeshCompared += int64(rec.MeshCompared)
		s.NovelFeatures += len(rec.Parents)
		for proto, pc := range rec.PerProtocol {
			agg := s.PerProtocol[proto]
			agg.addCounts(pc)
			s.PerProtocol[proto] = agg
		}
		if rec.MinFailing != nil {
			s.Failing = append(s.Failing, FailingRecord{
				Block: rec.Block, Kind: rec.Kind,
				Shrunk: rec.MinFailing.ReplayConfirmed, Seed: *rec.MinFailing,
			})
			if !rec.MinFailing.ReplayConfirmed {
				s.UnshrunkFailures++
			}
		}
		// Re-derive corpus filenames from the record so the counters are
		// resume-independent (re-writing an existing file reports "not
		// new", but the summary must not care what was on disk).
		take := len(rec.Parents)
		if take > interestingLeft {
			take = interestingLeft
		}
		interestingLeft -= take
		if opt.Corpus != "" {
			if rec.MinFailing != nil {
				if name, err := failingEntry(rec.MinFailing).Filename(); err == nil {
					failFiles[name] = true
				}
			}
			for _, p := range rec.Parents[:take] {
				if name, err := interestingEntry(p, rec.Cfg).Filename(); err == nil {
					seedFiles[name] = true
				}
			}
		}
	}
	s.CorpusFailingWritten = len(failFiles)
	s.CorpusInterestingWritten = len(seedFiles)
	return s
}

func outcomeName(b byte) string {
	switch b {
	case 'd':
		return OutcomeDegraded
	case 'f':
		return OutcomeFailed
	}
	return OutcomePass
}
