// Package soak is the fleet-scale deterministic soak engine: a sharded
// sweep coordinator that drives large numbers of simtest.GenSpec seeds
// across worker processes and checks every run against the paper's
// invariant oracle.
//
// The design leans entirely on the determinism the lower layers already
// guarantee — GenSpec expands a (seed, config) pair into a complete
// consensus instance, the fault substrate derives every link decision
// from the seed, and the batch engine returns results in input order —
// so the coordinator only has to be deterministic about *which* seeds it
// schedules. It is, by construction:
//
//   - Work is cut into fixed-size blocks (one generation config + a seed
//     list). Blocks are dispatched to whichever worker is idle, but their
//     results are committed strictly in block order, and every
//     scheduling decision (coverage map updates, mutation-parent
//     selection, corpus writes) is taken only at commit time, from
//     committed state. Two runs of the same configuration therefore
//     plan, execute and summarize the exact same seed set regardless of
//     worker timing.
//   - Coverage-guided mutation: every run is folded into a deterministic
//     feature vector (protocol, effective fault regime, n/f/d shape,
//     quantized fault-pattern signature, rounds-to-decide bucket,
//     outcome). Seeds that hit a feature never seen before become
//     mutation parents; once the base seed range is exhausted, the
//     remaining budget is spent on derived seeds (splitmix64 of the
//     parent seed) pinned to the parent's protocol and regime, so novel
//     configurations get the extra attention.
//   - Checkpoint/resume: after each commit the coordinator atomically
//     rewrites a manifest recording every committed block (seeds,
//     per-seed outcomes, discovered features, mutation parents, the
//     block's shrunk failing seed). Resuming replays the manifest
//     through the same planner instead of re-running the blocks, then
//     continues — the summary of a killed-and-resumed soak is
//     byte-identical to an uninterrupted one.
//   - Corpus: failing seeds (shrunk to the first failing seed of their
//     block and replay-confirmed) and first-hitters of novel features
//     are persisted as stable-JSON, content-addressed files. Future
//     soaks replay the corpus first, and `bvcsoak -replay-corpus` turns
//     it into a regression suite for CI.
//
// Coordinator and workers speak length-prefixed JSON over stdin/stdout,
// reusing the transport package's frame codec (4-byte big-endian length
// prefix, tag + payload), so the wire discipline — size guards, typed
// decode errors, canonical encoding — is shared with the real message
// plane.
package soak

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	bvc "relaxedbvc"
	"relaxedbvc/internal/simtest"
)

// Typed error sentinels. ErrSoak is the root: every error minted by
// this package wraps it, so errors.Is(err, ErrSoak) matches any
// soak-engine failure.
var (
	// ErrSoak is the root sentinel of all soak-engine failures.
	ErrSoak = errors.New("soak: engine failure")
	// ErrProto: a coordinator/worker wire frame was malformed or out of
	// protocol order.
	ErrProto = fmt.Errorf("%w: worker protocol violation", ErrSoak)
	// ErrManifest: the checkpoint manifest (and its backup) could not be
	// loaded, or it does not match the soak configuration.
	ErrManifest = fmt.Errorf("%w: bad checkpoint manifest", ErrSoak)
	// ErrCorpus: a corpus entry could not be read or written.
	ErrCorpus = fmt.Errorf("%w: corpus failure", ErrSoak)
	// ErrConfig: the soak options are invalid.
	ErrConfig = fmt.Errorf("%w: bad configuration", ErrSoak)
	// ErrInterrupted: the soak was canceled before the budget was spent;
	// progress up to the last committed block is checkpointed and a
	// -resume run will continue from there.
	ErrInterrupted = fmt.Errorf("%w: soak interrupted", ErrSoak)
	// ErrReplayDiverged: a corpus replay produced a different outcome or
	// signature than the entry records — the deterministic-replay
	// contract broke, or the behavior behind a known-bad seed changed.
	ErrReplayDiverged = fmt.Errorf("%w: corpus replay diverged", ErrSoak)
)

// Transport names accepted by JobConfig.Transport.
const (
	// TransportSim runs every seed on the deterministic simulation
	// backend only.
	TransportSim = "sim"
	// TransportMesh additionally runs every mesh-eligible spec
	// (synchronous oral-message protocol, no link faults, no signed
	// broadcast) over the in-process channel mesh and fails the seed if
	// the mesh decisions diverge from the simulation's — the soak
	// doubles as the load generator for the transport backends.
	TransportMesh = "mesh"
)

// JobConfig is the deterministic generation recipe shared by every seed
// of a block: together with a seed it fully determines the instance
// (via simtest.GenSpec) and its verdict. Corpus entries persist it next
// to the seed, which is what makes them replayable forever.
type JobConfig struct {
	// BaseSeed is simtest.FuzzConfig.BaseSeed (folded into GenSpec's
	// expansion, not an offset of the seed list).
	BaseSeed int64 `json:"base_seed"`
	// Regime is the fault-pattern class: "none", "within-model",
	// "out-of-model" or "mixed".
	Regime string `json:"regime"`
	// Protocols restricts generation (empty = all eight protocols).
	Protocols []string `json:"protocols,omitempty"`
	// Strict counts graceful typed-error degradations as failures
	// (simtest.FuzzConfig.StrictModelErrors) — the switch that makes
	// out-of-model soaks surface their minimal degrading seeds.
	Strict bool `json:"strict,omitempty"`
	// Transport is TransportSim or TransportMesh.
	Transport string `json:"transport"`
}

// Key returns a deterministic grouping key: blocks may only hold seeds
// sharing one JobConfig, and the mutation scheduler groups parent seeds
// by this key.
func (c JobConfig) Key() string {
	return fmt.Sprintf("b%d|r%s|p%s|s%v|t%s", c.BaseSeed, c.Regime, strings.Join(c.Protocols, ","), c.Strict, c.Transport)
}

// FuzzConfig translates the wire recipe into simtest's generator
// config.
func (c JobConfig) FuzzConfig() (simtest.FuzzConfig, error) {
	regime, err := ParseRegime(c.Regime)
	if err != nil {
		return simtest.FuzzConfig{}, err
	}
	protos, err := ParseProtocols(c.Protocols)
	if err != nil {
		return simtest.FuzzConfig{}, err
	}
	return simtest.FuzzConfig{
		BaseSeed:          c.BaseSeed,
		Regime:            regime,
		Protocols:         protos,
		StrictModelErrors: c.Strict,
	}, nil
}

// Job is one unit of work sent to a worker: expand and run every seed
// under the recipe, in order.
type Job struct {
	// Block is the block id (dense, in planning order).
	Block int `json:"block"`
	// Seeds are the GenSpec seeds to run, in verdict order.
	Seeds []int64 `json:"seeds"`
	// Cfg is the shared generation recipe.
	Cfg JobConfig `json:"cfg"`
}

// Outcome classification of one seed.
const (
	// OutcomePass: the run completed and every invariant held.
	OutcomePass = "pass"
	// OutcomeDegraded: the run ended in a typed graceful degradation
	// (an out-of-model fault pattern, reported via ErrDeliveryViolated).
	OutcomeDegraded = "degraded"
	// OutcomeFailed: an invariant violation, an untyped error, or (in a
	// mesh soak) a divergence between the mesh and sim decisions.
	OutcomeFailed = "failed"
)

// SeedVerdict is one seed's classified result.
type SeedVerdict struct {
	Seed int64 `json:"seed"`
	// Outcome is OutcomePass, OutcomeDegraded or OutcomeFailed. Strict
	// classification (degraded-counts-as-failing) is applied by the
	// coordinator from Cfg.Strict; the verdict always records the raw
	// class.
	Outcome string `json:"outcome"`
	// Protocol is the generated instance's protocol name.
	Protocol string `json:"protocol"`
	// Feature is the deterministic coverage feature vector (see
	// Feature).
	Feature string `json:"feature"`
	// Rounds is Result.Rounds (0 on errors).
	Rounds int `json:"rounds"`
	// Signature is the simtest outcome fingerprint, carried only for
	// non-passing seeds (it embeds outputs, so passing seeds would
	// bloat the wire for no consumer).
	Signature string `json:"signature,omitempty"`
	// MeshCompared reports that the seed also ran over the channel mesh
	// and was compared against the simulation (mesh soaks only).
	MeshCompared bool `json:"mesh_compared,omitempty"`
}

// FailingSeed is a shrunk, replay-confirmed reproducer: the first
// failing seed of its block, re-run twice to confirm the signature
// reproduces bit-for-bit.
type FailingSeed struct {
	Seed      int64     `json:"seed"`
	Cfg       JobConfig `json:"cfg"`
	Protocol  string    `json:"protocol"`
	Outcome   string    `json:"outcome"`
	Feature   string    `json:"feature"`
	Signature string    `json:"signature"`
	// ReplayConfirmed reports that two fresh re-runs reproduced the
	// identical signature. A false value is an "unshrunk" failure — the
	// reproducer is not trustworthy — and fails the benchguard -soak
	// gate.
	ReplayConfirmed bool `json:"replay_confirmed"`
}

// BlockResult is a worker's answer to one Job.
type BlockResult struct {
	Block int `json:"block"`
	// Verdicts are per-seed, in Job.Seeds order.
	Verdicts []SeedVerdict `json:"verdicts"`
	// MinFailing is the block's shrunk reproducer (nil when no seed
	// failed under the block's strictness).
	MinFailing *FailingSeed `json:"min_failing,omitempty"`
}

// ParseRegime maps a regime name to its simtest constant.
func ParseRegime(s string) (simtest.Regime, error) {
	switch s {
	case "none", "":
		return simtest.RegimeNone, nil
	case "within-model", "within":
		return simtest.RegimeWithinModel, nil
	case "out-of-model", "out":
		return simtest.RegimeOutOfModel, nil
	case "mixed":
		return simtest.RegimeMixed, nil
	}
	return 0, fmt.Errorf("%w: unknown regime %q", ErrConfig, s)
}

// protocolNames maps canonical protocol names to their constants, in
// the generator's order.
var protocolNames = []struct {
	name  string
	proto bvc.Protocol
}{
	{"delta-relaxed", bvc.ProtocolDeltaRelaxed},
	{"exact", bvc.ProtocolExact},
	{"k-relaxed", bvc.ProtocolKRelaxed},
	{"scalar", bvc.ProtocolScalar},
	{"convex", bvc.ProtocolConvex},
	{"iterative", bvc.ProtocolIterative},
	{"async", bvc.ProtocolAsync},
	{"k1-async", bvc.ProtocolK1Async},
	// ACS never joins the default roster (that would shift every historic
	// corpus seed); soak jobs opt in with -protocols acs.
	{"acs", bvc.ProtocolACS},
}

// ParseProtocols maps protocol names to constants (nil for an empty
// list, meaning "all").
func ParseProtocols(names []string) ([]bvc.Protocol, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]bvc.Protocol, 0, len(names))
	for _, n := range names {
		found := false
		for _, e := range protocolNames {
			if e.name == n {
				out = append(out, e.proto)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: unknown protocol %q", ErrConfig, n)
		}
	}
	return out, nil
}

// NormalizeProtocols canonicalizes a comma-separated protocol list into
// sorted unique names, validating each (empty input stays empty).
func NormalizeProtocols(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	seen := map[string]bool{}
	var out []string
	for _, raw := range strings.Split(csv, ",") {
		n := strings.TrimSpace(raw)
		if n == "" || seen[n] {
			continue
		}
		if _, err := ParseProtocols([]string{n}); err != nil {
			return nil, err
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche over 64
// bits, used to derive child seeds from a mutation parent without any
// RNG state. Deterministic and collision-free per parent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ChildSeed derives the i-th mutation child of a parent seed.
func ChildSeed(parent int64, i int) int64 {
	return int64(splitmix64(uint64(parent) + uint64(i)*0x9e3779b97f4a7c15))
}
