package soak

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// testOptions is a small but structurally complete soak: several base
// blocks per shard, at least one mutation wave, and a corpus.
func testOptions(dir string) Options {
	return Options{
		SeedBudget: 600,
		Shards:     4,
		BlockSize:  32,
		Regime:     "mixed",
		Manifest:   filepath.Join(dir, "manifest.json"),
		Corpus:     filepath.Join(dir, "corpus"),
	}
}

// verdictMap flattens a manifest into seed-order (blockID, seedIdx) →
// outcome, keyed textually so maps compare with reflect-free equality.
func verdictMap(t *testing.T, manifest string) map[string]byte {
	t.Helper()
	st, err := loadManifest(manifest)
	if err != nil {
		t.Fatalf("load manifest: %v", err)
	}
	if st == nil {
		t.Fatalf("no manifest at %s", manifest)
	}
	out := map[string]byte{}
	for _, rec := range st.Blocks {
		for i, seed := range rec.RecordSeeds() {
			key := rec.Cfg.Key() + "#" + string(rune(rec.Block)) + "#" + itoa64(seed)
			out[key] = rec.Outcomes[i]
		}
	}
	return out
}

func itoa64(v int64) string {
	b, _ := json.Marshal(v) //nolint:errcheck // int64 cannot fail to marshal
	return string(b)
}

func corpusNames(t *testing.T, dir string) []string {
	t.Helper()
	names, err := corpusFiles(dir)
	if err != nil {
		t.Fatalf("list corpus: %v", err)
	}
	return names
}

func encodeSummary(t *testing.T, s *Summary) string {
	t.Helper()
	b, err := s.Encode()
	if err != nil {
		t.Fatalf("encode summary: %v", err)
	}
	return string(b)
}

// TestKillResumeByteIdentical is the engine's core contract: a soak
// killed mid-run and resumed produces the byte-identical summary, the
// identical seed→verdict map, and the identical corpus as one that was
// never interrupted.
func TestKillResumeByteIdentical(t *testing.T) {
	ctrlDir := t.TempDir()
	ctrl, err := Run(context.Background(), testOptions(ctrlDir))
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	want := encodeSummary(t, ctrl)
	if ctrl.SeedsRun != 600 {
		t.Fatalf("control ran %d seeds, want 600", ctrl.SeedsRun)
	}
	if ctrl.MutationSeeds == 0 {
		t.Fatalf("control spent no mutation seeds; the test must cover the mutation planner")
	}

	// Kill: cancel the context from the commit hook after five durable
	// commits, mid-phase.
	killDir := t.TempDir()
	killCtx, cancel := context.WithCancel(context.Background())
	opt := testOptions(killDir)
	commits := 0
	opt.CommitHook = func(*BlockRecord) {
		commits++
		if commits == 5 {
			cancel()
		}
	}
	if _, err := Run(killCtx, opt); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got %v, want ErrInterrupted", err)
	}
	if commits < 5 {
		t.Fatalf("only %d commits before cancellation", commits)
	}

	// Resume with a fresh context and no hook.
	opt = testOptions(killDir)
	opt.Resume = true
	resumed, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := encodeSummary(t, resumed); got != want {
		t.Fatalf("resumed summary differs from uninterrupted control:\n--- control\n%s\n--- resumed\n%s", want, got)
	}

	ctrlVerdicts := verdictMap(t, testOptions(ctrlDir).Manifest)
	killVerdicts := verdictMap(t, opt.Manifest)
	if len(ctrlVerdicts) != len(killVerdicts) {
		t.Fatalf("verdict maps differ in size: %d vs %d", len(ctrlVerdicts), len(killVerdicts))
	}
	for k, v := range ctrlVerdicts {
		if killVerdicts[k] != v {
			t.Fatalf("verdict drift at %s: control %q, resumed %q", k, v, killVerdicts[k])
		}
	}

	ctrlCorpus := corpusNames(t, filepath.Join(ctrlDir, "corpus"))
	killCorpus := corpusNames(t, filepath.Join(killDir, "corpus"))
	if strings.Join(ctrlCorpus, ",") != strings.Join(killCorpus, ",") {
		t.Fatalf("corpus drift:\ncontrol: %v\nresumed: %v", ctrlCorpus, killCorpus)
	}

	// Resuming a *finished* soak replays everything and stays identical.
	again, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("resume of finished soak: %v", err)
	}
	if got := encodeSummary(t, again); got != want {
		t.Fatalf("second resume drifted:\n%s", got)
	}
}

// TestCorpusRoundTrip covers write/reload idempotence, replay of a
// recorded corpus, divergence detection, and stale pruning.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := &Entry{
		Kind: KindFailing, Seed: 42,
		Cfg:      JobConfig{Regime: "out-of-model", Strict: true, Transport: TransportSim},
		Protocol: "exact", Feature: "f", Outcome: OutcomeDegraded, Signature: "sig",
		ReplayConfirmed: true,
	}
	name, isNew, err := WriteEntry(dir, e)
	if err != nil || !isNew {
		t.Fatalf("first write: name=%s isNew=%v err=%v", name, isNew, err)
	}
	name2, isNew2, err := WriteEntry(dir, e)
	if err != nil || isNew2 || name2 != name {
		t.Fatalf("rewrite not idempotent: name=%s isNew=%v err=%v", name2, isNew2, err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil || len(loaded) != 1 {
		t.Fatalf("load: %d entries, err=%v", len(loaded), err)
	}
	got, err := loaded[0].encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("round-trip drift:\n%s\n---\n%s", got, want)
	}
}

// seedCorpus runs a tiny strict out-of-model soak, which reliably
// shrinks degrading seeds into failing corpus entries.
func seedCorpus(t *testing.T, dir string) string {
	t.Helper()
	corpus := filepath.Join(dir, "corpus")
	sum, err := Run(context.Background(), Options{
		SeedBudget: 60, Shards: 2, BlockSize: 20,
		Regime: "out-of-model", Strict: true,
		Corpus: corpus,
	})
	if err != nil {
		t.Fatalf("seeding soak: %v", err)
	}
	if sum.CorpusFailingWritten == 0 {
		t.Fatalf("strict out-of-model soak wrote no failing entries:\n%s", encodeSummary(t, sum))
	}
	return corpus
}

func TestCorpusReplayReproduces(t *testing.T) {
	corpus := seedCorpus(t, t.TempDir())
	results, err := ReplayCorpus(context.Background(), corpus, WorkerOptions{}, false)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, r := range results {
		if r.Verdict != ReplayReproduced {
			t.Fatalf("entry %s: verdict %s (%s), want reproduced", r.File, r.Verdict, r.Detail)
		}
	}
}

func TestCorpusReplayDetectsDivergence(t *testing.T) {
	corpus := seedCorpus(t, t.TempDir())
	names := corpusNames(t, corpus)
	var failName string
	for _, n := range names {
		if strings.HasPrefix(n, "fail-") {
			failName = n
			break
		}
	}
	if failName == "" {
		t.Fatalf("no failing entry in %v", names)
	}
	path := filepath.Join(corpus, failName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Signature = "tampered: " + e.Signature
	tampered, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = ReplayCorpus(context.Background(), corpus, WorkerOptions{}, false)
	if !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("tampered replay: got %v, want ErrReplayDiverged", err)
	}
}

func TestCorpusReplayPrunesStale(t *testing.T) {
	dir := t.TempDir()
	// Seed 1 under a clean regime passes; an entry claiming it degrades
	// is stale.
	stale := &Entry{
		Kind: KindFailing, Seed: 1,
		Cfg:      JobConfig{Regime: "none", Transport: TransportSim},
		Protocol: "exact", Feature: "f", Outcome: OutcomeDegraded, Signature: "gone",
	}
	name, _, err := WriteEntry(dir, stale)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ReplayCorpus(context.Background(), dir, WorkerOptions{}, true)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(results) != 1 || results[0].Verdict != ReplayStale {
		t.Fatalf("verdicts %+v, want one stale", results)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale entry not pruned: %v", err)
	}
}

// TestManifestCrashSafety truncates the manifest mid-write and checks
// the loader recovers the previous checkpoint from the rotated backup.
func TestManifestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")

	// Nothing on disk: fresh start, no error.
	st, err := loadManifest(path)
	if err != nil || st != nil {
		t.Fatalf("missing manifest: st=%v err=%v", st, err)
	}

	gen1 := &manifestState{Version: manifestVersion, CfgHash: "h", Blocks: []BlockRecord{
		{Block: 0, Kind: blockKindBase, Outcomes: "pp", SeedStart: 0, SeedCount: 2},
	}}
	if err := saveManifest(path, gen1); err != nil {
		t.Fatal(err)
	}
	gen2 := &manifestState{Version: manifestVersion, CfgHash: "h", Blocks: append(gen1.Blocks,
		BlockRecord{Block: 1, Kind: blockKindBase, Outcomes: "pd", SeedStart: 2, SeedCount: 2})}
	if err := saveManifest(path, gen2); err != nil {
		t.Fatal(err)
	}

	// Torn write: truncate the primary mid-file. The loader must fall
	// back to the rotated previous generation.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = loadManifest(path)
	if err != nil {
		t.Fatalf("recover from backup: %v", err)
	}
	if len(st.Blocks) != 1 {
		t.Fatalf("recovered %d blocks, want the 1-block previous checkpoint", len(st.Blocks))
	}

	// Corrupt primary with no backup: a hard error, not a silent fresh
	// start.
	if err := os.Remove(path + ".bak"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(path); !errors.Is(err, ErrManifest) {
		t.Fatalf("corrupt-no-backup: got %v, want ErrManifest", err)
	}

	// Checksum catches single-byte corruption too.
	if err := os.WriteFile(path, append(data[:len(data)-10], '0', '}'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(path); !errors.Is(err, ErrManifest) {
		t.Fatalf("bit-rot: got %v, want ErrManifest", err)
	}
}

func TestManifestRefusesConfigDrift(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions(dir)
	opt.SeedBudget = 64
	if _, err := Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	opt.SeedBudget = 128 // different plan
	if _, err := Run(context.Background(), opt); !errors.Is(err, ErrManifest) {
		t.Fatalf("config drift: got %v, want ErrManifest", err)
	}
}

// TestWorkerProtocol drives ServeWorker over pipes: job round-trip,
// clean bye shutdown, and protocol-violation errors.
func TestWorkerProtocol(t *testing.T) {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeWorker(context.Background(), jobR, resW, WorkerOptions{}) }()

	job := &Job{Block: 7, Seeds: []int64{1, 2, 3}, Cfg: JobConfig{Regime: "none", Transport: TransportSim}}
	res, err := roundTrip(jobW, resR, job)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if res.Block != 7 || len(res.Verdicts) != 3 {
		t.Fatalf("result block=%d verdicts=%d", res.Block, len(res.Verdicts))
	}
	for i, v := range res.Verdicts {
		if v.Seed != job.Seeds[i] || v.Feature == "" || v.Outcome == "" {
			t.Fatalf("verdict %d incomplete: %+v", i, v)
		}
	}
	if err := writeMsg(jobW, tagBye, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after bye: %v", err)
	}
}

func TestWorkerProtocolRejectsUnknownTag(t *testing.T) {
	jobR, jobW := io.Pipe()
	_, resW := io.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeWorker(context.Background(), jobR, resW, WorkerOptions{}) }()
	if err := writeMsg(jobW, "soak/bogus", map[string]int{}); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; !errors.Is(err, ErrProto) {
		t.Fatalf("bogus tag: got %v, want ErrProto", err)
	}
}

func TestSpawnInProcWorker(t *testing.T) {
	w, err := SpawnInProc(WorkerOptions{})(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(&Job{Block: 1, Seeds: []int64{5}, Cfg: JobConfig{Regime: "none", Transport: TransportSim}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Verdicts) != 1 {
		t.Fatalf("verdicts %d", len(res.Verdicts))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestChildSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		c := ChildSeed(12345, i)
		if c2 := ChildSeed(12345, i); c2 != c {
			t.Fatalf("ChildSeed(12345,%d) not deterministic: %d vs %d", i, c, c2)
		}
		if seen[c] {
			t.Fatalf("ChildSeed collision at i=%d", i)
		}
		seen[c] = true
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{},                                          // no budget
		{SeedBudget: 10, Regime: "sideways"},        // bad regime
		{SeedBudget: 10, Transport: "carrier"},      // bad transport
		{SeedBudget: 10, MutFrac: 1.5},              // bad mutation fraction
		{SeedBudget: 10, Resume: true},              // resume without manifest
		{SeedBudget: 10, Protocols: []string{"xx"}}, // bad protocol
	}
	for i, opt := range cases {
		if _, err := Run(context.Background(), opt); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: got %v, want ErrConfig", i, err)
		}
	}
}

func TestMeshSoakCrossChecks(t *testing.T) {
	sum, err := Run(context.Background(), Options{
		SeedBudget: 48, Shards: 2, BlockSize: 16,
		Regime: "none", Transport: TransportMesh,
		Protocols: []string{"delta-relaxed", "exact", "scalar"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeshCompared == 0 {
		t.Fatalf("mesh soak compared no seeds:\n%s", encodeSummary(t, sum))
	}
	if sum.Outcomes.Failed != 0 {
		t.Fatalf("mesh divergence reported:\n%s", encodeSummary(t, sum))
	}
}

// TestSummaryStableAcrossReEncode guards the stable-JSON contract the
// CI cache keys and artifact diffs rely on.
func TestSummaryStableAcrossReEncode(t *testing.T) {
	dir := t.TempDir()
	opt := testOptions(dir)
	opt.SeedBudget = 96
	sum, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	first := encodeSummary(t, sum)
	path := filepath.Join(dir, "summary.json")
	if err := os.WriteFile(path, []byte(first), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if second := encodeSummary(t, loaded); second != first {
		t.Fatalf("summary not stable across decode/encode:\n%s\n---\n%s", first, second)
	}
	names := make([]string, 0)
	for name := range sum.PerProtocol {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no per-protocol counters")
	}
}
