// Package vec provides d-dimensional real vectors, Lp norms, point
// multisets, and the combinatorial enumerators (subsets, projections,
// partitions) used throughout the relaxed Byzantine vector consensus
// library.
//
// Terminology follows the paper: inputs are column vectors in R^d viewed
// as points; a multiset may repeat points; E(S) is the set of edges
// (segments) between pairs of points of S.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// V is a point (or column vector) in R^d.
type V []float64

// New returns a zero vector of dimension d.
func New(d int) V { return make(V, d) }

// Of builds a vector from its coordinates.
func Of(xs ...float64) V {
	v := make(V, len(xs))
	copy(v, xs)
	return v
}

// Dim returns the dimension of v.
func (v V) Dim() int { return len(v) }

// Clone returns a deep copy of v.
func (v V) Clone() V {
	w := make(V, len(v))
	copy(w, v)
	return w
}

// Add returns v + w. Panics if dimensions differ.
func (v V) Add(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. Panics if dimensions differ.
func (v V) Sub(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v V) Scale(a float64) V {
	out := make(V, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v.
func (v V) AddInPlace(w V) V {
	mustSameDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// AXPY sets v = v + a*w and returns v.
func (v V) AXPY(a float64, w V) V {
	mustSameDim(v, w)
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Dot returns the inner product <v, w>.
func (v V) Dot(w V) float64 {
	mustSameDim(v, w)
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ||v||_2.
func (v V) Norm2() float64 {
	// Hypot-style scaling to avoid overflow is unnecessary at the scales
	// used here; plain sum of squares keeps it fast for the hot loops.
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormP returns the Lp norm of v for p >= 1. Use math.Inf(1) for L-infinity.
func (v V) NormP(p float64) float64 {
	if p < 1 {
		panic(fmt.Sprintf("vec: NormP requires p >= 1, got %v", p))
	}
	if math.IsInf(p, 1) {
		m := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	}
	switch p {
	case 1:
		s := 0.0
		for _, x := range v {
			s += math.Abs(x)
		}
		return s
	case 2:
		return v.Norm2()
	}
	s := 0.0
	for _, x := range v {
		s += math.Pow(math.Abs(x), p)
	}
	return math.Pow(s, 1/p)
}

// DistP returns ||v - w||_p.
func (v V) DistP(w V, p float64) float64 { return v.Sub(w).NormP(p) }

// Dist2 returns the Euclidean distance ||v - w||_2.
func (v V) Dist2(w V) float64 {
	mustSameDim(v, w)
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Equal reports whether v and w agree exactly (same dim, same coordinates).
func (v V) Equal(w V) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether ||v - w||_inf <= tol.
func (v V) ApproxEqual(w V, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// String renders v as (x1, x2, ..., xd).
func (v V) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.6g", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Mean returns the arithmetic mean of the points. Panics on empty input.
func Mean(pts []V) V {
	if len(pts) == 0 {
		panic("vec: Mean of empty point set")
	}
	m := New(pts[0].Dim())
	for _, p := range pts {
		m.AddInPlace(p)
	}
	return m.Scale(1 / float64(len(pts)))
}

// Lerp returns (1-t)*a + t*b.
func Lerp(a, b V, t float64) V {
	mustSameDim(a, b)
	out := make(V, len(a))
	for i := range a {
		out[i] = (1-t)*a[i] + t*b[i]
	}
	return out
}

// Combination returns the weighted combination sum_i w[i]*pts[i].
// It does not require the weights to be convex.
func Combination(pts []V, w []float64) V {
	if len(pts) != len(w) {
		panic("vec: Combination length mismatch")
	}
	if len(pts) == 0 {
		panic("vec: Combination of empty point set")
	}
	out := New(pts[0].Dim())
	for i, p := range pts {
		out.AXPY(w[i], p)
	}
	return out
}

func mustSameDim(v, w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
