package vec

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(Of(0, 0), Of(1, 0), Of(0, 1))
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if !s.At(1).Equal(Of(1, 0)) {
		t.Errorf("At(1) = %v", s.At(1))
	}
	s.Append(Of(2, 2))
	if s.Len() != 4 {
		t.Errorf("Len after Append = %d", s.Len())
	}
}

func TestSetMixedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed dims did not panic")
		}
	}()
	NewSet(Of(1), Of(1, 2))
}

func TestSetAllowsRepetition(t *testing.T) {
	p := Of(1, 1)
	s := NewSet(p, p, Of(0, 0))
	if s.Len() != 3 {
		t.Errorf("multiset collapsed repeats: Len = %d", s.Len())
	}
}

func TestWithoutAndSubset(t *testing.T) {
	s := NewSet(Of(0), Of(1), Of(2), Of(3))
	w := s.Without(1)
	if w.Len() != 3 || !w.At(1).Equal(Of(2)) {
		t.Errorf("Without = %v", w)
	}
	if s.Len() != 4 {
		t.Error("Without mutated receiver")
	}
	sub := s.Subset([]int{3, 0})
	if sub.Len() != 2 || !sub.At(0).Equal(Of(3)) || !sub.At(1).Equal(Of(0)) {
		t.Errorf("Subset = %v", sub)
	}
}

func TestCloneDeep(t *testing.T) {
	s := NewSet(Of(1, 2))
	c := s.Clone()
	c.At(0)[0] = 42
	if s.At(0)[0] != 1 {
		t.Error("Clone not deep")
	}
}

func TestProjection(t *testing.T) {
	// Paper example: d=4, D={1,3} (1-based) = {0,2} (0-based),
	// u = (7,-4,-2,0)^T, g_D(u) = (7,-2)^T.
	u := Of(7, -4, -2, 0)
	got := Project(u, []int{0, 2})
	if !got.Equal(Of(7, -2)) {
		t.Errorf("Project = %v, want (7, -2)", got)
	}
}

func TestProjectionValidation(t *testing.T) {
	for _, D := range [][]int{{2, 1}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Project with D=%v did not panic", D)
				}
			}()
			Project(Of(1, 2, 3), D)
		}()
	}
}

func TestSetProject(t *testing.T) {
	s := NewSet(Of(1, 2, 3), Of(4, 5, 6))
	p := s.Project([]int{0, 2})
	if p.Dim() != 2 || !p.At(1).Equal(Of(4, 6)) {
		t.Errorf("Set.Project = %v", p)
	}
}

func TestEdges(t *testing.T) {
	s := NewSet(Of(0, 0), Of(3, 4), Of(0, 1))
	es := s.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges len = %d", len(es))
	}
	if s.MinEdge(2) != 1 {
		t.Errorf("MinEdge = %v", s.MinEdge(2))
	}
	if s.MaxEdge(2) != 5 {
		t.Errorf("MaxEdge = %v", s.MaxEdge(2))
	}
}

func TestEdgeDegenerateSizes(t *testing.T) {
	one := NewSet(Of(1))
	if !math.IsInf(one.MinEdge(2), 1) {
		t.Error("MinEdge of singleton should be +Inf")
	}
	if one.MaxEdge(2) != 0 {
		t.Error("MaxEdge of singleton should be 0")
	}
}

func TestSortedCoordinate(t *testing.T) {
	s := NewSet(Of(3, 9), Of(1, 7), Of(2, 8))
	if got := s.SortedCoordinate(0); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("SortedCoordinate(0) = %v", got)
	}
}

func TestCombinationsCountAndOrder(t *testing.T) {
	var got [][]int
	Combinations(4, 2, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Combinations(4,2) = %v", got)
	}
	if len(AllCombinations(6, 3)) != CountCombinations(6, 3) {
		t.Error("AllCombinations count mismatch")
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	calls := 0
	Combinations(5, 2, func([]int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop calls = %d", calls)
	}
}

func TestCombinationsEdgeCases(t *testing.T) {
	calls := 0
	Combinations(3, 0, func(idx []int) bool {
		calls++
		if len(idx) != 0 {
			t.Errorf("k=0 gave %v", idx)
		}
		return true
	})
	if calls != 1 {
		t.Errorf("k=0 gave %d calls", calls)
	}
	Combinations(2, 5, func([]int) bool {
		t.Error("k>n should not call fn")
		return true
	})
}

func TestIndexSubsetsDroppingF(t *testing.T) {
	count := 0
	IndexSubsetsDroppingF(5, 2, func(keep []int) bool {
		if len(keep) != 3 {
			t.Errorf("keep size %d", len(keep))
		}
		count++
		return true
	})
	if count != CountCombinations(5, 3) {
		t.Errorf("count = %d", count)
	}
}

// Bell-style counts for partitions into exactly k parts (Stirling numbers
// of the second kind).
func TestPartitionsCounts(t *testing.T) {
	stirling := map[[2]int]int{
		{4, 1}: 1, {4, 2}: 7, {4, 3}: 6, {4, 4}: 1,
		{5, 2}: 15, {5, 3}: 25, {6, 3}: 90,
	}
	for nk, want := range stirling {
		n, k := nk[0], nk[1]
		count := 0
		Partitions(n, k, func(blocks [][]int) bool {
			total := 0
			for _, b := range blocks {
				if len(b) == 0 {
					t.Errorf("empty block in partition of (%d,%d)", n, k)
				}
				total += len(b)
			}
			if total != n {
				t.Errorf("partition does not cover: %v", blocks)
			}
			count++
			return true
		})
		if count != want {
			t.Errorf("Partitions(%d,%d) count = %d, want %d", n, k, count, want)
		}
	}
}

func TestPartitionsEarlyStop(t *testing.T) {
	calls := 0
	Partitions(5, 2, func([][]int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop calls = %d", calls)
	}
}

func TestPartitionsDegenerate(t *testing.T) {
	Partitions(3, 0, func([][]int) bool { t.Error("parts=0 called fn"); return true })
	Partitions(2, 3, func([][]int) bool { t.Error("parts>n called fn"); return true })
}

func TestCountCombinations(t *testing.T) {
	cases := map[[2]int]int{
		{5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120, {4, 7}: 0,
	}
	for nk, want := range cases {
		if got := CountCombinations(nk[0], nk[1]); got != want {
			t.Errorf("C(%d,%d) = %d, want %d", nk[0], nk[1], got, want)
		}
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(Of(1), Of(2))
	if got := s.String(); got != "{(1), (2)}" {
		t.Errorf("String = %q", got)
	}
}

func TestCombinationsGrayRevolvingDoor(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			seen := map[string]bool{}
			var prev []int
			CombinationsGray(n, k, func(idx []int) bool {
				if len(idx) != k {
					t.Fatalf("n=%d k=%d: subset size %d", n, k, len(idx))
				}
				for i := 1; i < k; i++ {
					if idx[i-1] >= idx[i] {
						t.Fatalf("n=%d k=%d: subset not sorted: %v", n, k, idx)
					}
				}
				key := fmt.Sprint(idx)
				if seen[key] {
					t.Fatalf("n=%d k=%d: subset %v visited twice", n, k, idx)
				}
				seen[key] = true
				if prev != nil {
					// Revolving door: exactly one element swapped.
					inPrev := map[int]bool{}
					for _, v := range prev {
						inPrev[v] = true
					}
					diff := 0
					for _, v := range idx {
						if !inPrev[v] {
							diff++
						}
					}
					if diff != 1 {
						t.Fatalf("n=%d k=%d: %v -> %v changes %d elements", n, k, prev, idx, diff)
					}
				}
				prev = append(prev[:0], idx...)
				return true
			})
			if len(seen) != CountCombinations(n, k) {
				t.Fatalf("n=%d k=%d: visited %d subsets, want %d", n, k, len(seen), CountCombinations(n, k))
			}
		}
	}
}

func TestCombinationsGraySameFamilyAsLex(t *testing.T) {
	for n := 0; n <= 7; n++ {
		for k := 0; k <= n; k++ {
			lex := map[string]bool{}
			Combinations(n, k, func(idx []int) bool {
				lex[fmt.Sprint(idx)] = true
				return true
			})
			CombinationsGray(n, k, func(idx []int) bool {
				if !lex[fmt.Sprint(idx)] {
					t.Fatalf("n=%d k=%d: gray-only subset %v", n, k, idx)
				}
				delete(lex, fmt.Sprint(idx))
				return true
			})
			if len(lex) != 0 {
				t.Fatalf("n=%d k=%d: lex-only subsets %v", n, k, lex)
			}
		}
	}
}

func TestCombinationsGrayEarlyStop(t *testing.T) {
	calls := 0
	CombinationsGray(6, 3, func([]int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop calls = %d", calls)
	}
}

func TestProjScratch(t *testing.T) {
	var ps ProjScratch
	u := Of(1, 2, 3, 4)
	s := NewSet(Of(1, 2, 3, 4), Of(5, 6, 7, 8))
	for _, D := range [][]int{{0, 2}, {1, 3}, {0, 1, 2, 3}} {
		got := ps.ProjectInto(u, D)
		want := Project(u, D)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("ProjectInto(%v) = %v, want %v", D, got, want)
		}
		gs := ps.ProjectSetInto(s, D)
		ws := s.Project(D)
		if gs.Len() != ws.Len() || gs.Dim() != ws.Dim() {
			t.Fatalf("ProjectSetInto(%v) shape mismatch", D)
		}
		for i := 0; i < gs.Len(); i++ {
			if fmt.Sprint(gs.At(i)) != fmt.Sprint(ws.At(i)) {
				t.Errorf("ProjectSetInto(%v) point %d = %v, want %v", D, i, gs.At(i), ws.At(i))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ProjectInto with invalid D did not panic")
		}
	}()
	ps.ProjectInto(u, []int{2, 1})
}
