package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndOf(t *testing.T) {
	z := New(3)
	if z.Dim() != 3 {
		t.Fatalf("New(3).Dim() = %d", z.Dim())
	}
	for i, x := range z {
		if x != 0 {
			t.Errorf("New(3)[%d] = %v, want 0", i, x)
		}
	}
	v := Of(1, 2, 3)
	if v.Dim() != 3 || v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Errorf("Of(1,2,3) = %v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Of(1, 2)
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original: v = %v", v)
	}
}

func TestAddSubScale(t *testing.T) {
	a := Of(1, 2, 3)
	b := Of(4, 5, 6)
	if got := a.Add(b); !got.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	// Inputs untouched.
	if !a.Equal(Of(1, 2, 3)) || !b.Equal(Of(4, 5, 6)) {
		t.Errorf("inputs mutated: a=%v b=%v", a, b)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := Of(1, 1)
	a.AddInPlace(Of(2, 3))
	if !a.Equal(Of(3, 4)) {
		t.Errorf("AddInPlace = %v", a)
	}
	a.AXPY(2, Of(1, 0))
	if !a.Equal(Of(5, 4)) {
		t.Errorf("AXPY = %v", a)
	}
}

func TestDotAndNorms(t *testing.T) {
	a := Of(3, 4)
	if got := a.Dot(Of(1, 2)); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := a.NormP(1); got != 7 {
		t.Errorf("NormP(1) = %v", got)
	}
	if got := a.NormP(math.Inf(1)); got != 4 {
		t.Errorf("NormP(inf) = %v", got)
	}
	// p = 3 by hand: (27+64)^(1/3)
	want := math.Pow(91, 1.0/3)
	if got := a.NormP(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormP(3) = %v, want %v", got, want)
	}
}

func TestNormPRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NormP(0.5) did not panic")
		}
	}()
	Of(1).NormP(0.5)
}

func TestDist(t *testing.T) {
	a := Of(0, 0)
	b := Of(3, 4)
	if got := a.Dist2(b); got != 5 {
		t.Errorf("Dist2 = %v", got)
	}
	if got := a.DistP(b, 1); got != 7 {
		t.Errorf("DistP(1) = %v", got)
	}
	if got := a.DistP(b, math.Inf(1)); got != 4 {
		t.Errorf("DistP(inf) = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	a := Of(1, 2)
	if !a.ApproxEqual(Of(1+1e-10, 2), 1e-9) {
		t.Error("ApproxEqual false negative")
	}
	if a.ApproxEqual(Of(1.1, 2), 1e-9) {
		t.Error("ApproxEqual false positive")
	}
	if a.ApproxEqual(Of(1, 2, 3), 1) {
		t.Error("ApproxEqual across dims")
	}
}

func TestMeanLerpCombination(t *testing.T) {
	m := Mean([]V{Of(0, 0), Of(2, 4)})
	if !m.Equal(Of(1, 2)) {
		t.Errorf("Mean = %v", m)
	}
	l := Lerp(Of(0, 0), Of(10, 10), 0.25)
	if !l.Equal(Of(2.5, 2.5)) {
		t.Errorf("Lerp = %v", l)
	}
	c := Combination([]V{Of(1, 0), Of(0, 1)}, []float64{2, 3})
	if !c.Equal(Of(2, 3)) {
		t.Errorf("Combination = %v", c)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Of(1, 2).Add(Of(1))
}

// Property: triangle inequality for every Lp norm we support.
func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		d := 1 + rng.Intn(6)
		a, b := New(d), New(d)
		for i := 0; i < d; i++ {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		for _, p := range []float64{1, 1.5, 2, 3, math.Inf(1)} {
			if a.Add(b).NormP(p) > a.NormP(p)+b.NormP(p)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: norm monotonicity ||x||_inf <= ||x||_p <= ||x||_r for r <= p
// (Theorem 13 direction used in the paper's norm-equivalence arguments).
func TestNormMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		d := 1 + rng.Intn(8)
		x := New(d)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		ps := []float64{1, 1.5, 2, 3, 6, math.Inf(1)}
		for i := 0; i+1 < len(ps); i++ {
			lo, hi := ps[i], ps[i+1]
			if x.NormP(hi) > x.NormP(lo)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHolderScalingProperty(t *testing.T) {
	// ||x||_r <= d^(1/r - 1/p) ||x||_p for r <= p (Theorem 13).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(8)
		x := New(d)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		r, p := 2.0, 4.0
		bound := math.Pow(float64(d), 1/r-1/p) * x.NormP(p)
		if x.NormP(r) > bound+1e-9 {
			t.Fatalf("Holder violated: ||x||_2=%v > %v", x.NormP(r), bound)
		}
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 2.5).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}
