package vec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is a multiset of points in R^d, in a fixed order so that index-based
// subsets are meaningful. Repeated points are allowed, as in the paper.
type Set struct {
	pts []V
	dim int
}

// NewSet builds a multiset from the given points. All points must share a
// dimension. The points are not copied deeply unless Clone is used.
func NewSet(pts ...V) *Set {
	s := &Set{pts: append([]V(nil), pts...)}
	if len(pts) > 0 {
		s.dim = pts[0].Dim()
		for _, p := range pts {
			if p.Dim() != s.dim {
				panic(fmt.Sprintf("vec: mixed dimensions in Set: %d vs %d", s.dim, p.Dim()))
			}
		}
	}
	return s
}

// Len returns |S| counting repetitions.
func (s *Set) Len() int { return len(s.pts) }

// Dim returns the ambient dimension (0 for an empty set).
func (s *Set) Dim() int { return s.dim }

// At returns the i-th point (not a copy).
func (s *Set) At(i int) V { return s.pts[i] }

// Points returns the backing slice (not a copy).
func (s *Set) Points() []V { return s.pts }

// Clone returns a deep copy of the multiset.
func (s *Set) Clone() *Set {
	pts := make([]V, len(s.pts))
	for i, p := range s.pts {
		pts[i] = p.Clone()
	}
	return &Set{pts: pts, dim: s.dim}
}

// Append adds points to the multiset.
func (s *Set) Append(pts ...V) {
	for _, p := range pts {
		if s.dim == 0 && len(s.pts) == 0 {
			s.dim = p.Dim()
		}
		if p.Dim() != s.dim {
			panic("vec: Append dimension mismatch")
		}
		s.pts = append(s.pts, p)
	}
}

// Without returns a new Set with the element at index i removed.
func (s *Set) Without(i int) *Set {
	pts := make([]V, 0, len(s.pts)-1)
	pts = append(pts, s.pts[:i]...)
	pts = append(pts, s.pts[i+1:]...)
	return &Set{pts: pts, dim: s.dim}
}

// Subset returns the sub-multiset selected by the given indices.
func (s *Set) Subset(idx []int) *Set {
	pts := make([]V, len(idx))
	for j, i := range idx {
		pts[j] = s.pts[i]
	}
	return &Set{pts: pts, dim: s.dim}
}

// SubsetInto writes the sub-multiset selected by idx into dst, reusing
// dst's backing storage, and returns dst. The selected points are shared
// with s (not copied), exactly as Subset shares them; only the slice
// header churn of Subset is avoided. Used by the scratch-buffer reuse in
// the partition-scan kernels.
func (s *Set) SubsetInto(idx []int, dst *Set) *Set {
	if cap(dst.pts) < len(idx) {
		dst.pts = make([]V, 0, len(idx))
	}
	dst.pts = dst.pts[:0]
	for _, i := range idx {
		dst.pts = append(dst.pts, s.pts[i])
	}
	dst.dim = s.dim
	return dst
}

// Project returns g_D(S): the multiset of D-projections of the points.
func (s *Set) Project(D []int) *Set {
	pts := make([]V, len(s.pts))
	for i, p := range s.pts {
		pts[i] = Project(p, D)
	}
	return &Set{pts: pts, dim: len(D)}
}

// String renders the multiset.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.pts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Project returns g_D(u): the |D|-dimensional vector retaining the
// coordinates of u whose (0-based) indices appear in D, in D's order.
// D must be strictly increasing per Definition 1; Projection panics on a
// repeated or out-of-range index.
func Project(u V, D []int) V {
	out := make(V, len(D))
	prev := -1
	for i, d := range D {
		if d <= prev || d >= len(u) {
			panic(fmt.Sprintf("vec: invalid projection index set %v for dim %d", D, len(u)))
		}
		out[i] = u[d]
		prev = d
	}
	return out
}

// Edge is an unordered pair of point indices into a Set.
type Edge struct{ I, J int }

// Edges returns all unordered index pairs of S (the edge set E in the
// paper, with endpoints identified by index so repeated points still give
// distinct edges).
func (s *Set) Edges() []Edge {
	n := len(s.pts)
	es := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			es = append(es, Edge{i, j})
		}
	}
	return es
}

// EdgeLengths returns the Lp lengths of all edges of S. An empty slice is
// returned when |S| < 2.
func (s *Set) EdgeLengths(p float64) []float64 {
	es := s.Edges()
	ls := make([]float64, len(es))
	for k, e := range es {
		ls[k] = s.pts[e.I].DistP(s.pts[e.J], p)
	}
	return ls
}

// MinEdge returns min over edges of ||e||_p, i.e. the minimum pairwise
// Lp distance. Returns +Inf when |S| < 2.
func (s *Set) MinEdge(p float64) float64 {
	m := math.Inf(1)
	for _, l := range s.EdgeLengths(p) {
		if l < m {
			m = l
		}
	}
	return m
}

// MaxEdge returns max over edges of ||e||_p (the diameter of S in Lp).
// Returns 0 when |S| < 2.
func (s *Set) MaxEdge(p float64) float64 {
	m := 0.0
	for _, l := range s.EdgeLengths(p) {
		if l > m {
			m = l
		}
	}
	return m
}

// SortedCoordinate returns the i-th coordinates of the points, sorted
// ascending. Used by scalar consensus and per-coordinate arguments.
func (s *Set) SortedCoordinate(i int) []float64 {
	xs := make([]float64, len(s.pts))
	for k, p := range s.pts {
		xs[k] = p[i]
	}
	sort.Float64s(xs)
	return xs
}

// Combinations calls fn with each size-k subset of {0,...,n-1}, in
// lexicographic order. The slice passed to fn is reused; copy it if it
// must be retained. fn returning false stops the enumeration early.
func Combinations(n, k int, fn func(idx []int) bool) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CombinationsGray calls fn with each size-k subset of {0,...,n-1} in
// revolving-door (Gray code) order: consecutive subsets differ by
// exactly one element swapped, which keeps incrementally warm-started
// work (LP bases, projection buffers) maximally reusable across a
// sweep. The slice passed to fn is sorted ascending and reused; copy it
// if it must be retained. fn returning false stops early. The subset
// family visited is exactly that of Combinations, only the order
// differs — callers whose per-subset results are order-dependent must
// keep using Combinations. (Knuth TAOCP 7.2.1.3, Algorithm R.)
func CombinationsGray(n, k int, fn func(idx []int) bool) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	if k == 0 {
		fn(idx)
		return
	}
	c := make([]int, k+2) // 1-indexed c[1..k] increasing, sentinel c[k+1]
	for j := 1; j <= k; j++ {
		c[j] = j - 1
	}
	c[k+1] = n
	for {
		for j := 1; j <= k; j++ {
			idx[j-1] = c[j]
		}
		if !fn(idx) {
			return
		}
		var j int
		if k%2 == 1 {
			if c[1]+1 < c[2] {
				c[1]++
				continue
			}
			j = 2
			goto tryDecrease
		}
		if c[1] > 0 {
			c[1]--
			continue
		}
		j = 2
		goto tryIncrease
	tryDecrease:
		if j > k {
			return
		}
		if c[j] >= j {
			c[j] = c[j-1]
			c[j-1] = j - 2
			continue
		}
		j++
	tryIncrease:
		if j > k {
			return
		}
		if c[j]+1 < c[j+1] {
			c[j-1] = c[j]
			c[j]++
			continue
		}
		j++
		if j <= k {
			goto tryDecrease
		}
		return
	}
}

// AllCombinationsGray returns every size-k subset of {0,...,n-1} in
// revolving-door order (see CombinationsGray).
func AllCombinationsGray(n, k int) [][]int {
	var out [][]int
	CombinationsGray(n, k, func(idx []int) bool {
		out = append(out, append([]int(nil), idx...))
		return true
	})
	return out
}

// ProjScratch holds reusable storage for repeated projections, so sweep
// loops that project the same set onto many coordinate subsets stop
// allocating per subset. Not safe for concurrent use; keep one per
// worker. The Set and vectors returned by its methods are valid until
// the next call on the same scratch.
type ProjScratch struct {
	flat []float64
	pts  []V
	set  Set
	q    V
}

// ProjectInto is Project(u, D) into the scratch's reusable vector.
func (ps *ProjScratch) ProjectInto(u V, D []int) V {
	if cap(ps.q) < len(D) {
		ps.q = make(V, len(D))
	}
	ps.q = ps.q[:len(D)]
	prev := -1
	for i, d := range D {
		if d <= prev || d >= len(u) {
			panic(fmt.Sprintf("vec: invalid projection index set %v for dim %d", D, len(u)))
		}
		ps.q[i] = u[d]
		prev = d
	}
	return ps.q
}

// ProjectSetInto is s.Project(D) into the scratch's reusable set.
func (ps *ProjScratch) ProjectSetInto(s *Set, D []int) *Set {
	n, dd := s.Len(), len(D)
	if cap(ps.flat) < n*dd {
		ps.flat = make([]float64, n*dd)
	}
	ps.flat = ps.flat[:n*dd]
	if cap(ps.pts) < n {
		ps.pts = make([]V, n)
	}
	ps.pts = ps.pts[:n]
	for i := 0; i < n; i++ {
		p := s.At(i)
		row := ps.flat[i*dd : (i+1)*dd]
		prev := -1
		for j, d := range D {
			if d <= prev || d >= len(p) {
				panic(fmt.Sprintf("vec: invalid projection index set %v for dim %d", D, len(p)))
			}
			row[j] = p[d]
			prev = d
		}
		ps.pts[i] = V(row)
	}
	ps.set.pts = ps.pts
	ps.set.dim = dd
	return &ps.set
}

// AllCombinations returns every size-k subset of {0,...,n-1}.
func AllCombinations(n, k int) [][]int {
	var out [][]int
	Combinations(n, k, func(idx []int) bool {
		out = append(out, append([]int(nil), idx...))
		return true
	})
	return out
}

// IndexSubsetsDroppingF calls fn with each size-(n-f) subset of indices of
// a set of size n. These are the candidate "non-faulty" index sets T with
// |T| = |Y| - f used in the definition of Gamma(Y).
func IndexSubsetsDroppingF(n, f int, fn func(keep []int) bool) {
	Combinations(n, n-f, fn)
}

// Partitions calls fn with each partition of {0,...,n-1} into exactly
// parts non-empty blocks (as a slice of index slices). Blocks and the
// partition slice are reused across calls. fn returning false stops early.
// Used by the Tverberg search.
func Partitions(n, parts int, fn func(blocks [][]int) bool) {
	if parts <= 0 || parts > n {
		return
	}
	assign := make([]int, n) // assign[i] = block of element i
	blocks := make([][]int, parts)
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == n {
			if used != parts {
				return true
			}
			for b := range blocks {
				blocks[b] = blocks[b][:0]
			}
			for e, b := range assign {
				blocks[b] = append(blocks[b], e)
			}
			return fn(blocks)
		}
		// Restricted-growth strings enumerate set partitions without
		// duplicates: element i may join blocks 0..used (used+1 means new).
		maxB := used
		if used < parts {
			maxB = used + 1
		}
		for b := 0; b < maxB; b++ {
			assign[i] = b
			nu := used
			if b == used {
				nu = used + 1
			}
			// Prune: remaining elements must be able to open the blocks
			// still missing.
			if parts-nu <= n-i-1 {
				if !rec(i+1, nu) {
					return false
				}
			}
		}
		return true
	}
	rec(0, 0)
}

// CountCombinations returns C(n, k) as an int, panicking on overflow for
// the small sizes used here.
func CountCombinations(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}
