package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 16, 100} {
		var count int64
		seen := make([]int32, 50)
		ForEach(50, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, s)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out := Map(20, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMaxFloat(t *testing.T) {
	got := MaxFloat(10, 3, func(i int) float64 { return float64((i * 7) % 10) })
	if got != 9 {
		t.Fatalf("MaxFloat = %v", got)
	}
	if MaxFloat(0, 3, func(int) float64 { return 5 }) != 0 {
		t.Fatal("empty MaxFloat should be 0")
	}
	// Negative values: the max must still be the true max, not 0.
	if MaxFloat(3, 2, func(i int) float64 { return float64(-1 - i) }) != -1 {
		t.Fatal("negative MaxFloat wrong")
	}
}

func TestKernelWorkersDefault(t *testing.T) {
	SetKernelWorkers(0)
	if got := KernelWorkers(); got < 1 {
		t.Fatalf("KernelWorkers() = %d", got)
	}
	SetKernelWorkers(3)
	if got := KernelWorkers(); got != 3 {
		t.Fatalf("KernelWorkers() = %d after SetKernelWorkers(3)", got)
	}
	SetKernelWorkers(-5)
	if got := KernelWorkers(); got < 1 {
		t.Fatalf("negative setting must restore the default, got %d", got)
	}
	SetKernelWorkers(0)
}

func TestForEachWCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		seen := make([]atomic.Int64, 100)
		ForEachW(100, workers, func(w, i int) {
			if w < 0 || w >= 7 {
				t.Errorf("worker id %d out of range", w)
			}
			seen[i].Add(1)
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestAllOf(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if !AllOf(50, workers, func(i int) bool { return true }) {
			t.Errorf("workers=%d: all-true returned false", workers)
		}
		if AllOf(50, workers, func(i int) bool { return i != 37 }) {
			t.Errorf("workers=%d: one-false returned true", workers)
		}
		if !AllOf(0, workers, func(i int) bool { return false }) {
			t.Errorf("workers=%d: empty range must be vacuously true", workers)
		}
	}
}

func TestFirstHitDeterministic(t *testing.T) {
	hits := map[int]bool{13: true, 41: true, 77: true}
	for _, workers := range []int{1, 2, 8} {
		got := FirstHit(100, workers, func(i int) bool { return hits[i] })
		if got != 13 {
			t.Errorf("workers=%d: FirstHit = %d, want 13 (lowest index wins)", workers, got)
		}
		if got := FirstHit(100, workers, func(i int) bool { return false }); got != -1 {
			t.Errorf("workers=%d: no-hit FirstHit = %d, want -1", workers, got)
		}
	}
	// The lowest hit must win even when a later hit is found first:
	// make low indexes slow by burning work.
	for trial := 0; trial < 20; trial++ {
		got := FirstHit(64, 8, func(i int) bool {
			if i < 8 {
				s := 0
				for j := 0; j < 20000; j++ {
					s += j
				}
				_ = s
			}
			return i == 2 || i == 63
		})
		if got != 2 {
			t.Fatalf("trial %d: FirstHit = %d, want 2", trial, got)
		}
	}
}
