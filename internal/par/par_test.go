package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 16, 100} {
		var count int64
		seen := make([]int32, 50)
		ForEach(50, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != 50 {
			t.Fatalf("workers=%d: ran %d of 50", workers, count)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, s)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out := Map(20, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMaxFloat(t *testing.T) {
	got := MaxFloat(10, 3, func(i int) float64 { return float64((i * 7) % 10) })
	if got != 9 {
		t.Fatalf("MaxFloat = %v", got)
	}
	if MaxFloat(0, 3, func(int) float64 { return 5 }) != 0 {
		t.Fatal("empty MaxFloat should be 0")
	}
	// Negative values: the max must still be the true max, not 0.
	if MaxFloat(3, 2, func(i int) float64 { return float64(-1 - i) }) != -1 {
		t.Fatal("negative MaxFloat wrong")
	}
}
