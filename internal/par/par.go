// Package par provides the small deterministic-parallelism helpers the
// experiment harness uses: a bounded worker pool over an index range and
// a parallel map that preserves result order. Work items must be
// independent; determinism is preserved by seeding each item's
// randomness from its index rather than from shared state.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS). It returns when all items finish.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Map runs fn(i) for i in [0, n) in parallel and returns the results in
// index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MaxFloat runs fn(i) in parallel and returns the maximum result (0 for
// n <= 0).
func MaxFloat(n, workers int, fn func(i int) float64) float64 {
	vals := Map(n, workers, fn)
	best := 0.0
	for i, v := range vals {
		if i == 0 || v > best {
			best = v
		}
	}
	return best
}
