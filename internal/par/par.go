// Package par provides the small deterministic-parallelism helpers the
// experiment harness and the combinatorial geometry kernels use: a
// bounded worker pool over an index range, a parallel map that
// preserves result order, an early-exiting parallel conjunction, and
// the process-wide kernel worker knob. Work items must be independent;
// determinism is preserved by seeding each item's randomness from its
// index rather than from shared state, and by index-ordered (never
// completion-ordered) reductions.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// kernelWorkers is the process-wide worker budget for in-kernel
// parallelism (Tverberg partition scans, subset-family sweeps, minimax
// probe evaluation). 0 means GOMAXPROCS; 1 forces the sequential scan
// the parity tests compare against.
var kernelWorkers atomic.Int32

// SetKernelWorkers sets the worker budget used inside the geometry
// kernels (0 restores the GOMAXPROCS default, 1 disables in-kernel
// parallelism). Kernel results are bit-identical for every setting;
// only wall-clock changes.
func SetKernelWorkers(w int) {
	if w < 0 {
		w = 0
	}
	kernelWorkers.Store(int32(w))
}

// KernelWorkersSetting returns the raw configured budget (0 = the
// GOMAXPROCS default), unlike KernelWorkers which resolves it. Use it
// to save and restore the knob around a scoped override.
func KernelWorkersSetting() int { return int(kernelWorkers.Load()) }

// KernelWorkers returns the current in-kernel worker budget, resolving
// the 0 default to GOMAXPROCS.
func KernelWorkers() int {
	if w := int(kernelWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 means GOMAXPROCS). It returns when all items finish.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// ForEachW is ForEach with the worker id (in [0, workers)) passed to
// fn, so callers can hand each worker its own scratch space. Worker 0
// is the calling goroutine when workers == 1.
func ForEachW(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(w, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// AllOf reports whether pred(i) holds for every i in [0, n), evaluating
// the predicates on up to `workers` goroutines. A false result cancels
// the remaining work (later predicates may be skipped). The boolean is
// deterministic — it does not depend on scheduling — but which
// predicates were evaluated after the first failure does, so pred must
// be side-effect-free up to idempotent memoization.
func AllOf(n, workers int, pred func(i int) bool) bool {
	if n <= 0 {
		return true
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if !pred(i) {
				return false
			}
		}
		return true
	}
	var failed atomic.Bool
	ForEach(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		if !pred(i) {
			failed.Store(true)
		}
	})
	return !failed.Load()
}

// FirstHit returns the lowest i in [0, n) with pred(i) true, or -1.
// Predicates run on up to `workers` goroutines; indexes above the best
// hit found so far are skipped, and every index below it is evaluated,
// so the returned index is the same as a sequential scan's first hit
// regardless of scheduling. pred must be a pure function of i (up to
// idempotent memoization).
func FirstHit(n, workers int, pred func(i int) bool) int {
	if n <= 0 {
		return -1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if pred(i) {
				return i
			}
		}
		return -1
	}
	var abest atomic.Int64
	abest.Store(int64(n))
	ForEach(n, workers, func(i int) {
		if int64(i) > abest.Load() {
			return
		}
		if pred(i) {
			for {
				cur := abest.Load()
				if int64(i) >= cur || abest.CompareAndSwap(cur, int64(i)) {
					return
				}
			}
		}
	})
	if got := abest.Load(); got < int64(n) {
		return int(got)
	}
	return -1
}

// Map runs fn(i) for i in [0, n) in parallel and returns the results in
// index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	return MapInto(nil, n, workers, fn)
}

// MapInto is Map writing into dst's backing storage when it is large
// enough (allocating otherwise), so iterative callers — the minimax
// descent loops evaluate a family map hundreds of times — reuse one
// buffer instead of allocating per iteration. Returns the filled slice.
func MapInto[T any](dst []T, n, workers int, fn func(i int) T) []T {
	if cap(dst) < n {
		dst = make([]T, n)
	}
	dst = dst[:n]
	ForEach(n, workers, func(i int) {
		dst[i] = fn(i)
	})
	return dst
}

// MaxFloat runs fn(i) in parallel and returns the maximum result (0 for
// n <= 0). Max is an order-independent reduction, so the result is
// bit-identical for every worker count; the reduction buffer is
// workers-sized (not n-sized), keeping hot probe loops allocation-light.
func MaxFloat(n, workers int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		best := fn(0)
		for i := 1; i < n; i++ {
			if v := fn(i); v > best {
				best = v
			}
		}
		return best
	}
	partial := make([]float64, workers)
	seen := make([]bool, workers)
	ForEachW(n, workers, func(w, i int) {
		if v := fn(i); !seen[w] || v > partial[w] {
			partial[w], seen[w] = v, true
		}
	})
	best, first := 0.0, true
	for w, v := range partial {
		if seen[w] && (first || v > best) {
			best, first = v, false
		}
	}
	return best
}
