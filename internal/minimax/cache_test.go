package minimax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

// TestDeltaStar2CacheBitForBit fuzzes sets and asserts the memoized
// DeltaStar2 agrees bit for bit with the uncached computation, cold and
// warm, including the Point witness.
func TestDeltaStar2CacheBitForBit(t *testing.T) {
	defer SetCaching(true)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		d := 1 + rng.Intn(2)
		n := d + 2 + rng.Intn(2)
		pts := make([]vec.V, n)
		for i := range pts {
			p := vec.New(d)
			for k := range p {
				p[k] = rng.NormFloat64() * 2
			}
			pts[i] = p
		}
		s := vec.NewSet(pts...)

		SetCaching(false)
		want := DeltaStar2(s, 1)

		SetCaching(true)
		ResetCache()
		for pass := 0; pass < 2; pass++ {
			got := DeltaStar2(s, 1)
			if math.Float64bits(got.Delta) != math.Float64bits(want.Delta) || got.Exact != want.Exact {
				t.Fatalf("trial %d pass %d: cached=%+v uncached=%+v", trial, pass, got, want)
			}
			for k := range want.Point {
				if math.Float64bits(got.Point[k]) != math.Float64bits(want.Point[k]) {
					t.Fatalf("trial %d pass %d: point coord %d cached=%v uncached=%v",
						trial, pass, k, got.Point[k], want.Point[k])
				}
			}
		}
		st := CacheStats()
		if st.Hits == 0 {
			t.Fatalf("trial %d: expected warm-pass hits, stats %+v", trial, st)
		}
	}
}
