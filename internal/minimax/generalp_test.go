package minimax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/vec"
)

func TestDeltaStarPDispatchesToL2(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	s := randSimplexSet(rng, 3)
	if got, want := DeltaStarP(s, 1, 2).Delta, DeltaStar2(s, 1).Delta; got != want {
		t.Fatalf("p=2 dispatch: %v vs %v", got, want)
	}
}

func TestDeltaStarPMatchesExactLPNorms(t *testing.T) {
	// For p = 1 and p = inf we have exact LP values; the generic solver
	// must agree to solver tolerance (and never undercut them: it is an
	// upper bound on the true minimum).
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 4; trial++ {
		d := 2 + rng.Intn(2)
		s := randSimplexSet(rng, d)
		for _, p := range []float64{1, math.Inf(1)} {
			exact, _ := relax.DeltaStarPoly(s, 1, p)
			got := DeltaStarP(s, 1, p).Delta
			if got < exact-1e-6 {
				t.Fatalf("p=%v: iterative %v below exact %v", p, got, exact)
			}
			if math.Abs(got-exact) > 2e-2*(1+exact) {
				t.Fatalf("p=%v: iterative %v vs exact %v", p, got, exact)
			}
		}
	}
}

func TestDeltaStarPNormOrdering(t *testing.T) {
	// dist_p decreases in p, so delta*_p does too:
	// delta*_inf <= delta*_4 <= delta*_2 <= delta*_1 (within tolerance).
	rng := rand.New(rand.NewSource(83))
	s := randSimplexSet(rng, 3)
	tol := 5e-3
	dInf := DeltaStarP(s, 1, math.Inf(1)).Delta
	d4 := DeltaStarP(s, 1, 4).Delta
	d2 := DeltaStarP(s, 1, 2).Delta
	d1 := DeltaStarP(s, 1, 1).Delta
	if dInf > d4+tol || d4 > d2+tol || d2 > d1+tol {
		t.Fatalf("ordering violated: inf=%v 4=%v 2=%v 1=%v", dInf, d4, d2, d1)
	}
}

func TestDeltaStarPTheorem14Bound(t *testing.T) {
	// The true delta*_p must respect the Theorem 14 transferred bound
	// d^(1/2-1/p) * kappa * maxEdge_p with kappa = 1/(n-2).
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 3; trial++ {
		d := 3
		n := d + 1
		s := randSimplexSet(rng, d)
		for _, p := range []float64{3, 4} {
			dstar := DeltaStarP(s, 1, p).Delta
			nonFaulty := s.Without(n - 1)
			bound := HolderScale(d, p) / float64(n-2) * nonFaulty.MaxEdge(p)
			if dstar >= bound {
				t.Fatalf("p=%v: delta*_p=%v >= bound=%v", p, dstar, bound)
			}
		}
	}
}

func TestLpGradient(t *testing.T) {
	g := lpGradient(vec.Of(3, -4), 2)
	if math.Abs(g[0]-0.6) > 1e-12 || math.Abs(g[1]+0.8) > 1e-12 {
		t.Errorf("L2 gradient = %v", g)
	}
	gi := lpGradient(vec.Of(1, -5, 2), math.Inf(1))
	if gi[0] != 0 || gi[1] != -1 || gi[2] != 0 {
		t.Errorf("Linf subgradient = %v", gi)
	}
	gz := lpGradient(vec.New(2), 3)
	if gz[0] != 0 || gz[1] != 0 {
		t.Errorf("zero-residual gradient = %v", gz)
	}
}

func TestDeltaStarPValidation(t *testing.T) {
	s := vec.NewSet(vec.Of(0), vec.Of(1))
	for name, fn := range map[string]func(){
		"bad f": func() { DeltaStarP(s, 0, 3) },
		"bad p": func() { DeltaStarP(s, 1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
