package minimax

import (
	"relaxedbvc/internal/memo"
	"relaxedbvc/internal/vec"
)

// DeltaStar2 is the most expensive kernel in the library: the iterative
// path runs subgradient descent plus Nelder-Mead polishing, each step
// solving a Wolfe min-norm-point per dropped subset. Every step of the
// solver is deterministic in (S, f), and consensus sweeps re-ask the
// same instance across processes and trials, so a memo table keyed on
// the exact binary encoding of the inputs returns bit-identical results
// for free. Safe for concurrent use; on by default.
var cache = memo.New(0)

func init() { cache.RegisterMetrics("minimax") }

const (
	opDeltaStar2 = 's'
	opDeltaIter  = 't'
)

// SetCaching enables or disables the minimax memo cache.
func SetCaching(on bool) { cache.SetEnabled(on) }

// CacheStats reports the minimax cache counters.
func CacheStats() memo.Stats { return cache.Stats() }

// ResetCache drops all cached minimax results.
func ResetCache() { cache.Reset() }

// setKey builds a pooled key over the exact binary encoding of (op, f,
// S). The caller must Release it.
func setKey(op byte, s *vec.Set, f int) *memo.Key {
	k := memo.GetKey(op)
	k.Int(f)
	k.Int(s.Len())
	for i := 0; i < s.Len(); i++ {
		k.Floats(s.At(i))
	}
	return k
}

func cachedDeltaStar(op byte, s *vec.Set, f int, compute func() Result) Result {
	if !cache.Enabled() {
		return compute()
	}
	k := setKey(op, s, f)
	defer k.Release()
	var r Result
	if v, ok := cache.Get(k); ok {
		r = v.(Result)
	} else {
		r = cache.Put(k, compute()).(Result)
	}
	r.Point = r.Point.Clone()
	return r
}
