package minimax

import (
	"math"
	"sort"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/vec"
)

// MaxDistP evaluates F(x) = max over the family of dist_p(x, H(set)).
// Like MaxDist2, it bypasses the geometry memo cache: solver iterates
// are unique, so caching them costs encoding without ever hitting.
// Large families run on the kernel workers (exact float max is
// order-independent, so the result is bit-identical either way).
func MaxDistP(x vec.V, sets []*vec.Set, p float64) float64 {
	if workers := par.KernelWorkers(); workers > 1 && len(sets) >= minParallelFamily {
		return par.MaxFloat(len(sets), workers, func(i int) float64 {
			d, _ := geom.DistPUncached(x, sets[i], p)
			return d
		})
	}
	m := 0.0
	for _, s := range sets {
		if d, _ := geom.DistPUncached(x, s, p); d > m {
			m = d
		}
	}
	return m
}

// familyDistsPInto is familyDistsInto for a general Lp norm.
func familyDistsPInto(dst []distHit, x vec.V, sets []*vec.Set, p float64, workers int) []distHit {
	if workers > 1 && len(sets) >= minParallelFamily {
		return par.MapInto(dst, len(sets), workers, func(i int) distHit {
			d, near := geom.DistPUncached(x, sets[i], p)
			return distHit{d: d, near: near}
		})
	}
	if cap(dst) < len(sets) {
		dst = make([]distHit, len(sets))
	}
	dst = dst[:len(sets)]
	for i, s := range sets {
		d, near := geom.DistPUncached(x, s, p)
		dst[i] = distHit{d: d, near: near}
	}
	return dst
}

// DeltaStarP computes delta*_p(S) — the smallest delta for which
// Gamma_(delta,p)(S) is non-empty — for a general Lp norm (p >= 1,
// math.Inf(1) allowed). This is the Section 9.3 quantity. p = 2 uses the
// specialized DeltaStar2 (closed forms + L2 minimax); other p run the
// generic minimax solver over the Frank-Wolfe Lp hull distances, which
// yields an upper bound on the true delta*_p accurate to roughly 1e-4
// relative at unit scale.
func DeltaStarP(s *vec.Set, f int, p float64) Result {
	if f < 1 || f >= s.Len() {
		panic("minimax: DeltaStarP requires 1 <= f < |S|")
	}
	if p == 2 {
		return DeltaStar2(s, f)
	}
	if p < 1 {
		panic("minimax: DeltaStarP requires p >= 1")
	}
	fam := droppedSubsets(s, f)
	// Seed from the L2 solution: the minimizers for different norms are
	// close, and delta*_p is Lipschitz in x.
	seed := DeltaStar2(s, f).Point
	return minMaxDistP(fam, p, seed)
}

// minMaxDistP minimizes F(x) = max_i dist_p(x, H(sets_i)) by subgradient
// descent plus Nelder-Mead polish, mirroring MinMaxDist2 for general p.
func minMaxDistP(sets []*vec.Set, p float64, seedPoints ...vec.V) Result {
	if len(sets) == 0 {
		panic("minimax: empty family")
	}
	var all []vec.V
	for _, s := range sets {
		all = append(all, s.Points()...)
	}
	scale := vec.NewSet(all...).MaxEdge(2)
	if scale == 0 {
		return Result{Delta: 0, Point: all[0].Clone()}
	}
	starts := append([]vec.V{vec.Mean(all)}, seedPoints...)
	bestX := starts[0].Clone()
	bestF := MaxDistP(bestX, sets, p)
	for _, x0 := range starts {
		x, f := subgradientDescentP(x0, sets, p, scale)
		if f < bestF {
			bestX, bestF = x, f
		}
	}
	objective := func(x vec.V) float64 { return MaxDistP(x, sets, p) }
	x, f := nelderMeadOn(objective, bestX, scale*0.02)
	if f < bestF {
		bestX, bestF = x, f
	}
	return Result{Delta: bestF, Point: bestX}
}

// subgradientDescentP follows the Lp analogue of the L2 subgradient: at
// the farthest hull, the gradient of ||r||_p in the residual r = x -
// nearest is sign(r_k) (|r_k| / ||r||_p)^(p-1) per coordinate (for
// p = inf it is the sign pattern on the max coordinates).
func subgradientDescentP(x0 vec.V, sets []*vec.Set, p float64, scale float64) (vec.V, float64) {
	x := x0.Clone()
	bestX := x.Clone()
	bestF := MaxDistP(x, sets, p)
	step := scale / 4
	workers := par.KernelWorkers()
	var hits []distHit
	const iters = 200
	for k := 0; k < iters; k++ {
		// Index-ordered first-strictly-greater reduction over the
		// parallel probes: identical to the sequential scan.
		var nearest vec.V
		maxD := -1.0
		hits = familyDistsPInto(hits, x, sets, p, workers)
		for _, h := range hits {
			if h.d > maxD {
				maxD, nearest = h.d, h.near
			}
		}
		if maxD < bestF {
			bestF = maxD
			bestX = x.Clone()
		}
		if maxD < 1e-12 {
			return x, 0
		}
		g := lpGradient(x.Sub(nearest), p)
		if g.Norm2() < 1e-14 {
			break
		}
		x = x.Sub(g.Scale(step / g.Norm2()))
		step *= 0.985
	}
	if f := MaxDistP(x, sets, p); f < bestF {
		return x, f
	}
	return bestX, bestF
}

// lpGradient returns a (sub)gradient of ||r||_p at r != 0.
func lpGradient(r vec.V, p float64) vec.V {
	g := vec.New(r.Dim())
	if math.IsInf(p, 1) {
		// Subgradient: indicator of a max-magnitude coordinate.
		best, bi := 0.0, 0
		for i, v := range r {
			if a := math.Abs(v); a > best {
				best, bi = a, i
			}
		}
		if best > 0 {
			g[bi] = math.Copysign(1, r[bi])
		}
		return g
	}
	rn := r.NormP(p)
	if rn == 0 {
		return g
	}
	for i, v := range r {
		if v != 0 {
			g[i] = math.Copysign(math.Pow(math.Abs(v)/rn, p-1), v)
		}
	}
	return g
}

// nelderMeadOn is the generic Nelder-Mead used by the Lp solver (the L2
// path keeps its specialized twin for allocation reasons).
func nelderMeadOn(f func(vec.V) float64, x0 vec.V, spread float64) (vec.V, float64) {
	d := x0.Dim()
	type vert struct {
		x vec.V
		v float64
	}
	simplex := make([]vert, d+1)
	simplex[0] = vert{x0.Clone(), f(x0)}
	for i := 1; i <= d; i++ {
		x := x0.Clone()
		x[i-1] += spread
		simplex[i] = vert{x, f(x)}
	}
	const (
		alpha = 1.0
		gamma = 2.0
		rho   = 0.5
		sigma = 0.5
	)
	evals := 0
	maxEvals := 100 * (d + 1)
	for evals < maxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		if simplex[d].v-simplex[0].v < 1e-11*(1+simplex[0].v) {
			break
		}
		c := vec.New(d)
		for i := 0; i < d; i++ {
			c.AddInPlace(simplex[i].x)
		}
		c = c.Scale(1 / float64(d))
		worst := simplex[d]
		refl := c.Add(c.Sub(worst.x).Scale(alpha))
		fr := f(refl)
		evals++
		switch {
		case fr < simplex[0].v:
			exp := c.Add(c.Sub(worst.x).Scale(gamma))
			fe := f(exp)
			evals++
			if fe < fr {
				simplex[d] = vert{exp, fe}
			} else {
				simplex[d] = vert{refl, fr}
			}
		case fr < simplex[d-1].v:
			simplex[d] = vert{refl, fr}
		default:
			con := c.Add(worst.x.Sub(c).Scale(rho))
			fc := f(con)
			evals++
			if fc < worst.v {
				simplex[d] = vert{con, fc}
			} else {
				for i := 1; i <= d; i++ {
					simplex[i].x = vec.Lerp(simplex[0].x, simplex[i].x, sigma)
					simplex[i].v = f(simplex[i].x)
					evals++
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v
}
