package minimax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/simplexgeo"
	"relaxedbvc/internal/vec"
)

func randVec(rng *rand.Rand, d int, scale float64) vec.V {
	v := vec.New(d)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}

func randSimplexSet(rng *rand.Rand, d int) *vec.Set {
	for {
		pts := make([]vec.V, d+1)
		for i := range pts {
			pts[i] = randVec(rng, d, 3)
		}
		if _, err := simplexgeo.New(pts); err == nil {
			return vec.NewSet(pts...)
		}
	}
}

func TestMaxDist2(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(4, 0))
	if got := MaxDist2(vec.Of(1, 0), []*vec.Set{a, b}); math.Abs(got-3) > 1e-12 {
		t.Errorf("MaxDist2 = %v", got)
	}
}

func TestMinMaxDist2TwoPoints(t *testing.T) {
	// Two singletons at distance 4: optimum is the midpoint, value 2.
	a := vec.NewSet(vec.Of(-2, 0))
	b := vec.NewSet(vec.Of(2, 0))
	res := MinMaxDist2([]*vec.Set{a, b})
	if math.Abs(res.Delta-2) > 1e-6 {
		t.Errorf("delta = %v, want 2", res.Delta)
	}
	if math.Abs(res.Point[0]) > 1e-5 || math.Abs(res.Point[1]) > 1e-5 {
		t.Errorf("point = %v, want origin", res.Point)
	}
}

func TestMinMaxDist2ThreePointsEquilateral(t *testing.T) {
	// Three singleton sets at the vertices of an equilateral triangle with
	// circumradius 1: optimal point is the center, value 1.
	h := math.Sqrt(3) / 2
	sets := []*vec.Set{
		vec.NewSet(vec.Of(0, 1)),
		vec.NewSet(vec.Of(-h, -0.5)),
		vec.NewSet(vec.Of(h, -0.5)),
	}
	res := MinMaxDist2(sets)
	if math.Abs(res.Delta-1) > 1e-5 {
		t.Errorf("delta = %v, want 1", res.Delta)
	}
}

func TestMinMaxDist2Identical(t *testing.T) {
	s := vec.NewSet(vec.Of(1, 2), vec.Of(1, 2))
	res := MinMaxDist2([]*vec.Set{s, s})
	if res.Delta > 1e-9 {
		t.Errorf("delta = %v, want 0", res.Delta)
	}
}

// Lemma 13: for f=1 and an affinely independent set of d+1 inputs,
// delta*_2 equals the inradius of the input simplex, attained at the
// incenter.
func TestDeltaStar2SimplexClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		s := randSimplexSet(rng, d)
		sx, err := simplexgeo.New(s.Points())
		if err != nil {
			t.Fatal(err)
		}
		res := DeltaStar2(s, 1)
		if !res.Exact {
			t.Fatal("closed form not used for simplex input")
		}
		if math.Abs(res.Delta-sx.Inradius()) > 1e-12 {
			t.Fatalf("delta = %v, inradius = %v", res.Delta, sx.Inradius())
		}
	}
}

// E7 core: the iterative solver agrees with the closed form.
func TestDeltaStar2IterativeMatchesInradius(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		d := 2 + rng.Intn(2)
		s := randSimplexSet(rng, d)
		want := DeltaStar2(s, 1).Delta
		got := DeltaStar2Iterative(s, 1).Delta
		if math.Abs(got-want) > 2e-3*(1+want) {
			t.Fatalf("d=%d: iterative %v vs closed form %v", d, got, want)
		}
		// The iterative result is an upper bound on the true minimum, so
		// it must never be meaningfully below the closed form.
		if got < want-1e-6 {
			t.Fatalf("iterative %v below exact %v", got, want)
		}
	}
}

// delta*_inf <= delta*_2 <= delta*_1 (pointwise distance ordering).
func TestDeltaStar2BracketedByPolyNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		d := 2 + rng.Intn(2)
		s := randSimplexSet(rng, d)
		d2 := DeltaStar2(s, 1).Delta
		dInf, _ := relax.DeltaStarPoly(s, 1, math.Inf(1))
		d1, _ := relax.DeltaStarPoly(s, 1, 1)
		if dInf > d2+1e-6 || d2 > d1+1e-6 {
			t.Fatalf("bracket violated: inf=%v 2=%v 1=%v", dInf, d2, d1)
		}
	}
}

// Theorem 8: affinely dependent inputs with f=1, n=d+1 give delta* = 0.
func TestDeltaStar2DegenerateInputs(t *testing.T) {
	// Four coplanar points in R^3 (n = d+1 = 4) with a genuinely
	// intersecting Gamma after projection: use points whose 2-D Gamma with
	// f=1 is non-empty, i.e. n=4 points in a 2-plane with n >= d'+2 = 4.
	base := []vec.V{vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 2), vec.Of(2, 2)}
	// Embed the plane z = x + y.
	pts := make([]vec.V, 4)
	for i, b := range base {
		pts[i] = vec.Of(b[0], b[1], b[0]+b[1])
	}
	s := vec.NewSet(pts...)
	res := DeltaStar2(s, 1)
	if res.Delta > 1e-6 {
		t.Fatalf("degenerate inputs: delta = %v, want 0", res.Delta)
	}
	if !res.Exact {
		t.Error("degenerate path should report exact")
	}
}

func TestDeltaStar2RepeatedPoint(t *testing.T) {
	// n = d+1 with a repeated point: affinely dependent, delta* = 0
	// (a subset of size n-1 containing the duplicate always includes it).
	s := vec.NewSet(vec.Of(1, 1), vec.Of(1, 1), vec.Of(3, 0))
	res := DeltaStar2(s, 1)
	if res.Delta > 1e-6 {
		t.Fatalf("delta = %v, want 0", res.Delta)
	}
}

// Theorem 9 numeric check on random simplices, treating each vertex in
// turn as the faulty input.
func TestTheorem9BoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 12; trial++ {
		d := 3 + rng.Intn(3)
		n := d + 1
		s := randSimplexSet(rng, d)
		dstar := DeltaStar2(s, 1).Delta
		for faulty := 0; faulty < n; faulty++ {
			bound := Theorem9Bound(s.Without(faulty), n)
			if dstar >= bound {
				t.Fatalf("d=%d faulty=%d: delta*=%v >= bound=%v", d, faulty, dstar, bound)
			}
		}
	}
}

// Theorem 12 numeric check: f=2, d=3, n=(d+1)f=8.
func TestTheorem12BoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	d, f := 3, 2
	n := (d + 1) * f
	for trial := 0; trial < 2; trial++ {
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		dstar := DeltaStar2(s, f).Delta
		// Worst case over which f inputs are faulty: bound must hold for
		// every choice, so check the smallest bound (fewest edges removed
		// maximizes... we simply check all choices).
		vec.Combinations(n, f, func(faulty []int) bool {
			keep := make([]int, 0, n-f)
			fm := map[int]bool{}
			for _, x := range faulty {
				fm[x] = true
			}
			for i := 0; i < n; i++ {
				if !fm[i] {
					keep = append(keep, i)
				}
			}
			bound := Theorem12Bound(s.Subset(keep), d)
			if dstar >= bound {
				t.Fatalf("delta*=%v >= Theorem12 bound=%v (faulty=%v)", dstar, bound, faulty)
			}
			return true
		})
	}
}

func TestBoundHelpers(t *testing.T) {
	s := vec.NewSet(vec.Of(0, 0, 0), vec.Of(3, 0, 0), vec.Of(0, 4, 0))
	// maxEdge = 5, minEdge = 3.
	if got := Theorem9Bound(s, 4); math.Abs(got-math.Min(1.5, 2.5)) > 1e-12 {
		t.Errorf("Theorem9Bound = %v", got)
	}
	if got := Theorem12Bound(s, 3); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Theorem12Bound = %v", got)
	}
	if got := Conjecture1Bound(s, 7, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("Conjecture1Bound = %v", got) // floor(7/2)-2 = 1
	}
}

func TestHolderScale(t *testing.T) {
	if got := HolderScale(4, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("HolderScale(4,2) = %v", got)
	}
	if got := HolderScale(4, math.Inf(1)); math.Abs(got-2) > 1e-12 {
		t.Errorf("HolderScale(4,inf) = %v", got)
	}
	if got := HolderScale(9, 4); math.Abs(got-math.Pow(9, 0.25)) > 1e-12 {
		t.Errorf("HolderScale(9,4) = %v", got)
	}
}

func TestDeltaStar2Validation(t *testing.T) {
	s := vec.NewSet(vec.Of(0), vec.Of(1))
	for _, f := range []int{0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("f=%d did not panic", f)
				}
			}()
			DeltaStar2(s, f)
		}()
	}
}

// Lemma 16 for the L2 delta*: removing an input cannot decrease delta*.
func TestLemma16MonotonicityL2(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d, f, n := 3, 2, 7
	pts := make([]vec.V, n)
	for i := range pts {
		pts[i] = randVec(rng, d, 2)
	}
	s := vec.NewSet(pts...)
	dFull := DeltaStar2Iterative(s, f).Delta
	for i := 0; i < n; i++ {
		dLess := DeltaStar2Iterative(s.Without(i), f).Delta
		if dFull > dLess+1e-4*(1+dLess) {
			t.Fatalf("Lemma 16 violated: %v > %v after removing %d", dFull, dLess, i)
		}
	}
}
