// Package minimax computes delta*_2(S): the smallest delta for which
// Gamma_(delta,2)(S) (the intersection of the (delta,2)-relaxed hulls of
// all (|S|-f)-subsets of S) is non-empty. Per Section 9 of the paper,
//
//	delta*(S) = min_{p in R^d} max_i dist_2(p, H(P_i)),
//
// a convex minimax problem. Two solvers are provided:
//
//   - the exact closed form of Lemma 13 (inscribed-sphere radius) for the
//     f = 1, n = d+1, affinely independent case, together with the
//     Theorem 8 projection shortcut (delta* = 0) for dependent inputs; and
//   - a generic iterative solver (subgradient descent with a Nelder-Mead
//     polish) valid for every n, f.
//
// The iterative solver is cross-validated against the closed form (E7)
// and against the exact LP values of delta*_1 and delta*_inf, which
// bracket delta*_2.
package minimax

import (
	"math"
	"sort"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/linalg"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/simplexgeo"
	"relaxedbvc/internal/vec"
)

// minParallelFamily is the smallest subset family for which the δ*
// probes fan the per-set hull-distance solves out over the kernel
// workers; below it the hand-off costs more than the solves. Every
// parallel path reduces in index order with the same comparisons as the
// sequential loop, so results are bit-identical for any worker count.
const minParallelFamily = 8

// distHit is one per-set distance probe result.
type distHit struct {
	d    float64
	near vec.V
}

// familyDistsInto evaluates dist_2(x, H(sets_i)) for every i, on the
// kernel workers when the family is large enough, writing into dst's
// backing storage when it is large enough. Results are index-ordered.
// The descent loops call this hundreds of times per solve; reusing one
// buffer keeps those iterations allocation-free.
func familyDistsInto(dst []distHit, x vec.V, sets []*vec.Set, workers int) []distHit {
	if workers > 1 && len(sets) >= minParallelFamily {
		return par.MapInto(dst, len(sets), workers, func(i int) distHit {
			d, near := geom.Dist2Uncached(x, sets[i])
			return distHit{d: d, near: near}
		})
	}
	if cap(dst) < len(sets) {
		dst = make([]distHit, len(sets))
	}
	dst = dst[:len(sets)]
	for i, s := range sets {
		d, near := geom.Dist2Uncached(x, s)
		dst[i] = distHit{d: d, near: near}
	}
	return dst
}

// Result is the outcome of a delta* computation.
type Result struct {
	Delta float64 // the minimax value delta*_2
	Point vec.V   // an attaining (or near-attaining) point p0
	Exact bool    // true when computed by closed form rather than iteration
}

// MaxDist2 evaluates F(x) = max over the family of dist_2(x, H(set)).
// It bypasses the geometry memo cache: every solver iterate is a fresh
// x, so those lookups would only ever pay encoding cost, never hit.
// (The solvers' end results are memoized one level up, in this
// package's own cache.)
func MaxDist2(x vec.V, sets []*vec.Set) float64 {
	if workers := par.KernelWorkers(); workers > 1 && len(sets) >= minParallelFamily {
		// Exact float max is order-independent, so the parallel
		// reduction is bit-identical to the sequential scan.
		return par.MaxFloat(len(sets), workers, func(i int) float64 {
			d, _ := geom.Dist2Uncached(x, sets[i])
			return d
		})
	}
	m := 0.0
	for _, s := range sets {
		if d, _ := geom.Dist2Uncached(x, s); d > m {
			m = d
		}
	}
	return m
}

// MinMaxDist2 minimizes F(x) = max_i dist_2(x, H(sets_i)) over x in R^d
// by subgradient descent from several warm starts followed by a
// Nelder-Mead polish. The returned value is an upper bound on the true
// minimax value, typically accurate to ~1e-6 relative at the scales used
// in this library.
func MinMaxDist2(sets []*vec.Set, seedPoints ...vec.V) Result {
	if len(sets) == 0 {
		panic("minimax: empty family")
	}
	d := sets[0].Dim()

	// Warm starts: global centroid, a deterministic sample of per-set
	// centroids (capped so the cost does not scale with the family size),
	// and caller seeds.
	var starts []vec.V
	var all []vec.V
	for _, s := range sets {
		all = append(all, s.Points()...)
	}
	starts = append(starts, vec.Mean(all))
	const maxSetStarts = 4
	stride := 1
	if len(sets) > maxSetStarts {
		stride = len(sets) / maxSetStarts
	}
	for i := 0; i < len(sets); i += stride {
		starts = append(starts, vec.Mean(sets[i].Points()))
		if len(starts) > maxSetStarts {
			break
		}
	}
	starts = append(starts, seedPoints...)

	bestX := starts[0].Clone()
	bestF := MaxDist2(bestX, sets)
	scale := vec.NewSet(all...).MaxEdge(2)
	if scale == 0 {
		// All inputs identical: that point achieves delta = 0.
		return Result{Delta: 0, Point: all[0].Clone()}
	}

	// The warm starts are independent descents; run them on the kernel
	// workers and reduce in start order — the same comparisons, in the
	// same order, as the sequential loop.
	type descent struct {
		x vec.V
		f float64
	}
	results := par.Map(len(starts), par.KernelWorkers(), func(i int) descent {
		x, f := subgradientDescent(starts[i], sets, scale)
		return descent{x: x, f: f}
	})
	for _, r := range results {
		if r.f < bestF {
			bestX, bestF = r.x, r.f
		}
	}
	x, f := nelderMead(bestX, sets, scale*0.05)
	if f < bestF {
		bestX, bestF = x, f
	}
	// Second, tighter polish around the refined point.
	x, f = nelderMead(bestX, sets, scale*0.002)
	if f < bestF {
		bestX, bestF = x, f
	}
	_ = d
	return Result{Delta: bestF, Point: bestX}
}

func subgradientDescent(x0 vec.V, sets []*vec.Set, scale float64) (vec.V, float64) {
	x := x0.Clone()
	bestX := x.Clone()
	bestF := MaxDist2(x, sets)
	step := scale / 4
	workers := par.KernelWorkers()
	var hits []distHit
	const iters = 600
	for k := 0; k < iters; k++ {
		// Subgradient of the max: gradient of the farthest hull distance.
		// The per-set probes run on the kernel workers; the first
		// strictly-greater distance wins the index-ordered reduction,
		// exactly as in the sequential scan.
		var g vec.V
		maxD := -1.0
		hits = familyDistsInto(hits, x, sets, workers)
		for _, h := range hits {
			if h.d > maxD {
				maxD = h.d
				if h.d > 1e-14 {
					g = x.Sub(h.near).Scale(1 / h.d)
				} else {
					g = vec.New(x.Dim())
				}
			}
		}
		if maxD < bestF {
			bestF = maxD
			bestX = x.Clone()
		}
		if maxD < 1e-12 {
			return x, 0
		}
		if g.Norm2() < 1e-14 {
			break
		}
		x = x.Sub(g.Scale(step))
		step *= 0.988 // geometric decay reaches ~7e-4 of scale at the end
	}
	if f := MaxDist2(x, sets); f < bestF {
		return x, f
	}
	return bestX, bestF
}

// nelderMead runs a standard Nelder-Mead simplex search on F starting
// from x0 with the given initial spread.
func nelderMead(x0 vec.V, sets []*vec.Set, spread float64) (vec.V, float64) {
	d := x0.Dim()
	type vert struct {
		x vec.V
		f float64
	}
	simplex := make([]vert, d+1)
	simplex[0] = vert{x0.Clone(), MaxDist2(x0, sets)}
	for i := 1; i <= d; i++ {
		x := x0.Clone()
		x[i-1] += spread
		simplex[i] = vert{x, MaxDist2(x, sets)}
	}
	const (
		alpha = 1.0
		gamma = 2.0
		rho   = 0.5
		sigma = 0.5
	)
	evals := 0
	maxEvals := 300 * (d + 1)
	eval := func(x vec.V) float64 { evals++; return MaxDist2(x, sets) }
	for evals < maxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if simplex[d].f-simplex[0].f < 1e-12*(1+simplex[0].f) {
			break
		}
		// Centroid of all but worst.
		c := vec.New(d)
		for i := 0; i < d; i++ {
			c.AddInPlace(simplex[i].x)
		}
		c = c.Scale(1 / float64(d))
		worst := simplex[d]
		refl := c.Add(c.Sub(worst.x).Scale(alpha))
		fr := eval(refl)
		switch {
		case fr < simplex[0].f:
			exp := c.Add(c.Sub(worst.x).Scale(gamma))
			if fe := eval(exp); fe < fr {
				simplex[d] = vert{exp, fe}
			} else {
				simplex[d] = vert{refl, fr}
			}
		case fr < simplex[d-1].f:
			simplex[d] = vert{refl, fr}
		default:
			con := c.Add(worst.x.Sub(c).Scale(rho))
			if fc := eval(con); fc < worst.f {
				simplex[d] = vert{con, fc}
			} else {
				for i := 1; i <= d; i++ {
					simplex[i].x = vec.Lerp(simplex[0].x, simplex[i].x, sigma)
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}

// DeltaStar2 computes delta*_2(S) for the Gamma family of Algorithm ALGO:
// the (|S|-f)-subsets of S. When f = 1 and |S| = d+1 it uses the closed
// forms of Lemma 13 (inradius of the input simplex) and Theorem 8
// (delta* = 0 for affinely dependent inputs); otherwise it falls back to
// the iterative minimax solver seeded with those insights.
func DeltaStar2(s *vec.Set, f int) Result {
	if f < 1 || f >= s.Len() {
		panic("minimax: DeltaStar2 requires 1 <= f < |S|")
	}
	return cachedDeltaStar(opDeltaStar2, s, f, func() Result { return deltaStar2(s, f) })
}

func deltaStar2(s *vec.Set, f int) Result {
	if f == 1 && s.Len() == s.Dim()+1 {
		if sx, err := simplexgeo.New(s.Points()); err == nil {
			return Result{Delta: sx.Inradius(), Point: sx.Incenter(), Exact: true}
		}
		// Affinely dependent: Theorem 8 gives delta* = 0; a witness point
		// lies in Gamma(S), which is non-empty after the distance-
		// preserving projection to the spanned subspace. Find it directly.
		if pt, ok := degenerateGammaPoint(s, f); ok {
			return Result{Delta: 0, Point: pt, Exact: true}
		}
	}
	return DeltaStar2Iterative(s, f)
}

// DeltaStar2Iterative always uses the generic minimax solver (useful for
// ablation against the closed forms).
func DeltaStar2Iterative(s *vec.Set, f int) Result {
	return cachedDeltaStar(opDeltaIter, s, f, func() Result { return deltaStar2Iterative(s, f) })
}

func deltaStar2Iterative(s *vec.Set, f int) Result {
	fam := droppedSubsets(s, f)
	var seeds []vec.V
	// Seed with the incenter when the inputs happen to form a simplex.
	if f == 1 && s.Len() == s.Dim()+1 {
		if sx, err := simplexgeo.New(s.Points()); err == nil {
			seeds = append(seeds, sx.Incenter())
		}
	}
	return MinMaxDist2(fam, seeds...)
}

// degenerateGammaPoint finds a point in Gamma(S) when the inputs span a
// proper subspace (Theorem 8): project distance-preservingly into the
// subspace, where n >= d'+2 makes Gamma non-empty by Tverberg/Helly, then
// lift the found point back.
func degenerateGammaPoint(s *vec.Set, f int) (vec.V, bool) {
	sp := linalg.NewSubspaceProjector(s.Points())
	proj := make([]vec.V, s.Len())
	for i, p := range s.Points() {
		proj[i] = sp.Project(p)
	}
	ps := vec.NewSet(proj...)
	fam := droppedSubsets(ps, f)
	res := MinMaxDist2(fam)
	if res.Delta > 1e-7 {
		return nil, false
	}
	return sp.Lift(res.Point), true
}

func droppedSubsets(s *vec.Set, f int) []*vec.Set {
	var fam []*vec.Set
	vec.IndexSubsetsDroppingF(s.Len(), f, func(keep []int) bool {
		fam = append(fam, s.Subset(keep))
		return true
	})
	return fam
}

// Theorem9Bound returns the two upper bounds of Theorem 9 for f = 1,
// n = |S|: min(minEdge/2, maxEdge/(n-2)), evaluated on the NON-FAULTY
// edge set E+ (pass the non-faulty inputs). The first component also
// holds over all of E (Theorem 9 states delta* < min_{e in E}/2 <=
// min_{e in E+}/2).
func Theorem9Bound(nonFaulty *vec.Set, n int) float64 {
	minE := nonFaulty.MinEdge(2)
	maxE := nonFaulty.MaxEdge(2)
	return math.Min(minE/2, maxE/float64(n-2))
}

// Theorem12Bound returns the Theorem 12 upper bound for f >= 2 and
// n = (d+1)f: maxEdge(E+)/(d-1).
func Theorem12Bound(nonFaulty *vec.Set, d int) float64 {
	return nonFaulty.MaxEdge(2) / float64(d-1)
}

// Conjecture1Bound returns the Conjecture 1 bound for
// 3f+1 <= n < (d+1)f: maxEdge(E+)/(floor(n/f)-2).
func Conjecture1Bound(nonFaulty *vec.Set, n, f int) float64 {
	return nonFaulty.MaxEdge(2) / float64(n/f-2)
}

// HolderScale returns d^(1/2 - 1/p), the Theorem 14 factor transferring a
// kappa bound from L2 to Lp (p >= 2).
func HolderScale(d int, p float64) float64 {
	if math.IsInf(p, 1) {
		return math.Sqrt(float64(d))
	}
	return math.Pow(float64(d), 0.5-1/p)
}
