package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns aligned: "value" header and the 1 below it start at the
	// same offset.
	hdrIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if hdrIdx != rowIdx {
		t.Errorf("misaligned: header value at %d, row value at %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	var buf bytes.Buffer
	tb.Render(&buf)
	if strings.HasPrefix(buf.String(), "\n") {
		t.Error("empty title produced a blank line")
	}
	if !strings.HasPrefix(buf.String(), "a\n") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:        "1",
		2.5:      "2.5",
		0.123456: "0.1235",
		1e-15:    "1e-15",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestAddRowTypeHandling(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRow("s")
	tb.AddRow(3)
	tb.AddRow(3.75)
	tb.AddRow(true)
	if tb.Rows[0][0] != "s" || tb.Rows[1][0] != "3" || tb.Rows[2][0] != "3.75" || tb.Rows[3][0] != "true" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow(1, 2)
	tb.AddRow("x", "y")
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "a,b\n1,2\nx,y\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestPassFail(t *testing.T) {
	if PassFail(true) != "PASS" || PassFail(false) != "FAIL" {
		t.Error("PassFail wrong")
	}
}
