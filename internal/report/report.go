// Package report renders the aligned-column tables the experiment
// harness prints, along with pass/fail summaries and CSV export.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (4 significant decimals, trimmed).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values (no quoting needed for
// the numeric content produced here).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// PassFail renders a boolean verdict.
func PassFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
