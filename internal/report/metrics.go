package report

import (
	"fmt"
	"sort"

	"relaxedbvc/internal/metrics"
)

// MetricsTable renders a metrics snapshot (usually a per-experiment
// delta) as a compact three-column table: nonzero counters first, then
// histograms summarized as count/sum/mean. Gauges are omitted — their
// point-in-time values (queue depth, in-flight trials) are meaningless
// once the run they described has finished. Rows are sorted by name so
// the table is stable across runs.
func MetricsTable(s *metrics.Snapshot) *Table {
	t := NewTable("", "metric", "value", "detail")
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, fmt.Sprintf("%d", s.Counters[name]), "")
	}
	names = names[:0]
	for name, h := range s.Histograms {
		if h.Count != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		t.AddRow(name,
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("sum=%s mean=%s", FormatFloat(h.Sum), FormatFloat(h.Sum/float64(h.Count))))
	}
	return t
}
