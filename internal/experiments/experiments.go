// Package experiments contains one runner per reproduced artifact of the
// paper (tables, figures and theorem-level claims), as indexed in
// DESIGN.md. Each runner returns an Outcome holding the regenerated
// table, an overall pass verdict (the paper's claim held numerically)
// and free-form notes; cmd/bvcbench prints them and bench_test.go wraps
// them as benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"relaxedbvc/internal/batch"
	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/report"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Trials is the number of random repetitions per configuration
	// (default 5; heavy experiments scale it down internally).
	Trials int
	// Quick restricts dimension/process sweeps to the small end, for use
	// in unit tests and -short benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	return o
}

func (o Options) rng() *rand.Rand { return rand.New(rand.NewSource(o.Seed)) }

// Outcome is the result of one experiment.
type Outcome struct {
	ID    string
	Title string
	Table *report.Table
	Pass  bool
	Notes []string
	// Elapsed is the experiment's wall time (set by the instrumented
	// execution paths; zero otherwise).
	Elapsed time.Duration
	// Metrics is this experiment's contribution to the process-wide
	// metrics registry — the snapshot delta across its run (set by
	// RunAllInstrumented; nil otherwise). Counters and histogram counts
	// are exact when experiments run sequentially; under concurrent
	// execution deltas attribute overlapping work to whoever snapshots
	// last, which is why the instrumented path is sequential.
	Metrics *metrics.Snapshot
	// MetricsCumulative is the full registry snapshot taken right after
	// this experiment finished (set by RunAllInstrumented; nil
	// otherwise). Unlike the delta it always carries the process-wide
	// consensus, batch and cache counters, even for experiments that
	// exercise only the geometry layer.
	MetricsCumulative *metrics.Snapshot
}

// Render writes the outcome in the harness's standard format, including
// the per-experiment metrics table when a snapshot delta is attached.
func (o *Outcome) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s [%s]\n", o.ID, o.Title, report.PassFail(o.Pass))
	if o.Table != nil {
		o.Table.Render(w)
	}
	for _, n := range o.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if o.Metrics != nil {
		fmt.Fprintf(w, "-- metrics (%s) --\n", o.Elapsed.Round(time.Millisecond))
		report.MetricsTable(o.Metrics).Render(w)
	}
	fmt.Fprintln(w)
}

// Runner is an experiment entry point.
type Runner func(Options) *Outcome

// Entry is one registered experiment.
type Entry struct {
	ID  string
	Run Runner
}

// Registry returns the experiments in DESIGN.md order.
func Registry() []Entry {
	return []Entry{
		{"E1", E1ExactBounds},
		{"E2", E2KRelaxedSync},
		{"E3", E3KRelaxedAsync},
		{"E4", E4DeltaConstSync},
		{"E5", E5DeltaConstAsync},
		{"E6", E6Table1},
		{"E7", E7InradiusAblation},
		{"E8", E8FacetRadii},
		{"E9", E9Holder},
		{"E10", E10AsyncRVA},
		{"E11", E11Impossibility},
		{"E12", E12Tverberg},
		{"E13", E13Degenerate},
		{"E14", E14Containment},
		{"E15", E15Footnote3},
		{"E16", E16ConjectureSweep},
		{"E17", E17ConvexHull},
		{"E18", E18Iterative},
		{"E19", E19CostScaling},
		{"E20", E20BoundTightness},
		{"E21", E21FaultSweep},
	}
}

// RunAll executes every registered experiment on the batch engine and
// returns the outcomes in registry order. Each experiment runs as one
// trial: a panicking runner is converted into a failed Outcome (the
// panic in its Notes) instead of taking down the harness, and canceling
// ctx skips experiments that have not started. workers bounds the pool
// (0 = GOMAXPROCS). Experiments share the process-wide geometry-kernel
// caches, so overlapping sweeps across experiments are solved once.
func RunAll(ctx context.Context, opt Options, workers int) []*Outcome {
	reg := Registry()
	results := batch.Map(ctx, batch.Options{Workers: workers}, reg,
		func(_ context.Context, e Entry) (*Outcome, error) {
			return e.Run(opt), nil
		})
	out := make([]*Outcome, len(reg))
	for i, r := range results {
		if r.Err != nil {
			out[i] = &Outcome{ID: reg[i].ID, Title: "(did not run)", Pass: false}
			note(out[i], "%v", r.Err)
			continue
		}
		out[i] = r.Value
		out[i].Elapsed = r.Elapsed
	}
	return out
}

// RunAllInstrumented executes every registered experiment sequentially,
// each as its own single-trial batch, and attaches to every Outcome the
// delta of the process-wide metrics registry across its run: what the
// experiment added to the consensus round/message counters, the batch
// trial-latency histogram, the kernel cache hit/miss counts and the LP
// statistics. Sequential execution (one worker, one experiment at a
// time) is what makes the deltas attributable; use RunAll when you want
// throughput instead of attribution.
func RunAllInstrumented(ctx context.Context, opt Options) []*Outcome {
	reg := Registry()
	out := make([]*Outcome, 0, len(reg))
	prev := metrics.Snap()
	for _, e := range reg {
		start := time.Now()
		results := batch.Map(ctx, batch.Options{Workers: 1}, []Entry{e},
			func(_ context.Context, en Entry) (*Outcome, error) {
				return en.Run(opt), nil
			})
		r := results[0]
		var o *Outcome
		if r.Err != nil {
			o = &Outcome{ID: e.ID, Title: "(did not run)", Pass: false}
			note(o, "%v", r.Err)
		} else {
			o = r.Value
		}
		cur := metrics.Snap()
		o.Elapsed = time.Since(start)
		o.Metrics = cur.Diff(prev)
		o.MetricsCumulative = cur
		prev = cur
		out = append(out, o)
	}
	return out
}

// Run looks up and runs a single experiment by id; nil if unknown.
func Run(id string, opt Options) *Outcome {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	return nil
}

func note(o *Outcome, format string, args ...any) {
	o.Notes = append(o.Notes, fmt.Sprintf(format, args...))
}
