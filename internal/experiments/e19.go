package experiments

import (
	"context"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/workload"
)

// E19CostScaling measures the communication cost of the protocol stack
// across (n, f) and broadcast substrate: rounds and point-to-point
// message counts for the all-to-all Step 1 (oral-messages EIG vs signed
// Dolev-Strong), plus the asynchronous algorithm's delivered-message
// count. Oral messages scale as n^(f+2)-ish (the EIG tree), signed
// broadcast polynomially — the classic trade against the PKI assumption.
func E19CostScaling(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E19", Title: "Protocol cost scaling: rounds and messages by substrate", Pass: true}
	t := report.NewTable("", "substrate", "n", "f", "rounds", "messages", "msgs/process")
	o.Table = t

	d := 2
	cases := []struct{ n, f int }{{4, 1}, {5, 1}, {7, 1}, {7, 2}}
	if opt.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		inputs := workload.Gaussian(rng, c.n, d, 1)
		// Oral messages (EIG).
		cfgO := &consensus.SyncConfig{N: c.n, F: c.f, D: d, Inputs: inputs}
		resO, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfgO, 2)
		if err != nil {
			o.Pass = false
			note(o, "oral n=%d f=%d: %v", c.n, c.f, err)
			continue
		}
		t.AddRow("oral (EIG)", c.n, c.f, resO.Rounds, resO.Messages, resO.Messages/c.n)
		// Signed (Dolev-Strong).
		cfgS := &consensus.SyncConfig{N: c.n, F: c.f, D: d, Inputs: inputs, SignedBroadcast: true}
		resS, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfgS, 2)
		if err != nil {
			o.Pass = false
			note(o, "signed n=%d f=%d: %v", c.n, c.f, err)
			continue
		}
		t.AddRow("signed (DS)", c.n, c.f, resS.Rounds, resS.Messages, resS.Messages/c.n)
		// Outputs must agree between substrates on honest runs (same
		// agreed multiset, same deterministic choice).
		same := true
		for i := 0; i < c.n; i++ {
			if !resO.Outputs[i].ApproxEqual(resS.Outputs[i], 1e-12) {
				same = false
			}
		}
		if !same {
			o.Pass = false
			note(o, "n=%d f=%d: substrates disagree on honest run", c.n, c.f)
		}
		// EIG messages must exceed DS messages at f >= 1 and grow faster.
		if resO.Messages < resS.Messages && c.f >= 2 {
			note(o, "n=%d f=%d: oral cheaper than signed (unexpected at this f)", c.n, c.f)
		}
	}

	// Async RVA delivered messages at fixed rounds, over n.
	for _, n := range []int{4, 5, 7} {
		if opt.Quick && n > 5 {
			break
		}
		inputs := workload.Gaussian(rng, n, d, 1)
		mode := consensus.ModeRelaxed
		if n >= d+4 {
			mode = consensus.ModeExact
		}
		cfg := &consensus.AsyncConfig{N: n, F: 1, D: d, Inputs: inputs, Rounds: 6, Mode: mode}
		res, err := consensus.RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			o.Pass = false
			note(o, "async n=%d: %v", n, err)
			continue
		}
		t.AddRow("async (Bracha RVA)", n, 1, 6, res.Messages, res.Messages/n)
	}

	// Iterative protocol message count (no broadcast primitive: the
	// cheapest substrate, n*(n-1) per round).
	nIter := 5
	cfgI := &consensus.IterConfig{N: nIter, F: 1, D: d, Inputs: workload.Gaussian(rng, nIter, d, 1), Rounds: 6}
	resI, err := consensus.RunIterativeBVC(context.Background(), cfgI)
	if err != nil {
		o.Pass = false
	} else {
		t.AddRow("iterative", nIter, 1, 6, resI.Messages, resI.Messages/nIter)
		want := nIter * (nIter - 1) * 6
		if resI.Messages != want {
			o.Pass = false
			note(o, "iterative messages %d != n(n-1)R = %d", resI.Messages, want)
		}
	}

	note(o, "oral EIG grows with the n^(f+1) relay tree; signed broadcast stays polynomial; iterative is n(n-1) per round")
	return o
}
