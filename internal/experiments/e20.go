package experiments

import (
	"math"
	"math/rand"

	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/simplexgeo"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E20BoundTightness measures how tight Theorem 9's upper bound actually
// is: a hill-climbing adversary co-optimizes the input configuration AND
// the choice of faulty process to maximize delta*(S) / bound(E+). The
// theorem guarantees the ratio stays below 1; the search reveals the
// practical gap (for the regular simplex the ratio is
// (d-1)/sqrt(2d(d+1)) against the max-edge bound, ~0.41-0.52 here, and
// the climber pushes somewhat higher by stretching the geometry).
func E20BoundTightness(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E20", Title: "Theorem 9 tightness: adversarial search for the worst delta*/bound ratio", Pass: true}
	t := report.NewTable("", "d", "n", "restarts", "steps", "regular-simplex ratio", "best ratio found", "got")
	o.Table = t

	dims := []int{3, 4, 5}
	if opt.Quick {
		dims = []int{3}
	}
	restarts := 4 * opt.Trials
	steps := 300
	if opt.Quick {
		restarts = opt.Trials
		steps = 120
	}
	for _, d := range dims {
		n := d + 1
		// Baseline: regular simplex ratio.
		base := ratioFor(regularSimplex(d))
		bestRatio := base
		rng := rand.New(rand.NewSource(opt.Seed + int64(d)))
		for r := 0; r < restarts; r++ {
			pts := workload.Gaussian(rng, n, d, 1)
			cur := ratioFor(pts)
			step := 0.5
			for it := 0; it < steps; it++ {
				i := rng.Intn(n)
				j := rng.Intn(d)
				old := pts[i][j]
				pts[i][j] += rng.NormFloat64() * step
				if nr := ratioFor(pts); nr > cur {
					cur = nr
				} else {
					pts[i][j] = old
				}
				step *= 0.99
			}
			if cur > bestRatio {
				bestRatio = cur
			}
		}
		ok := bestRatio < 1
		t.AddRow(d, n, restarts, steps, base, bestRatio, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	note(o, "the climber approaches ratio 1 (0.87-0.97): Theorem 9's strict bound is essentially tight —")
	note(o, "near-degenerate simplices with two close vertices push the inradius toward minEdge/2")
	return o
}

// ratioFor computes max over faulty choices of
// inradius(S) / Theorem9Bound(S without faulty). Returns 0 for
// degenerate configurations.
func ratioFor(pts []vec.V) float64 {
	sx, err := simplexgeo.New(pts)
	if err != nil {
		return 0
	}
	r := sx.Inradius()
	best := 0.0
	s := vec.NewSet(pts...)
	n := len(pts)
	for faulty := 0; faulty < n; faulty++ {
		b := minimax.Theorem9Bound(s.Without(faulty), n)
		if b <= 0 {
			continue
		}
		if v := r / b; v > best {
			best = v
		}
	}
	return best
}

// regularSimplex returns the vertices of a regular d-simplex in R^d with
// edge length sqrt(2): the standard basis vectors e_1..e_d plus the
// point alpha*(1,...,1) with alpha = (1 - sqrt(d+1))/d, the classical
// construction.
func regularSimplex(d int) []vec.V {
	pts := make([]vec.V, d+1)
	for i := 1; i <= d; i++ {
		e := vec.New(d)
		e[i-1] = 1
		pts[i] = e
	}
	alpha := (1 - math.Sqrt(float64(d)+1)) / float64(d)
	p0 := vec.New(d)
	for j := range p0 {
		p0[j] = alpha
	}
	pts[0] = p0
	return pts
}
