package experiments

import (
	"context"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E17ConvexHull exercises the Convex Hull Consensus generalization the
// paper cites ([15, 16]): non-faulty processes agree on an identical
// polytope (a deterministic inner approximation of Gamma(S)) contained in
// the hull of the non-faulty inputs, under the same Byzantine adversaries
// as the point-valued protocols, and the polytope collapses to a point
// exactly when Gamma does.
func E17ConvexHull(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E17", Title: "Convex hull consensus (cited generalization [15,16])", Pass: true}
	t := report.NewTable("", "d", "f", "n", "dirs", "attack", "polytope agree", "valid", "spread", "got")
	o.Table = t

	cases := []struct{ d, f int }{{2, 1}, {3, 1}}
	if !opt.Quick {
		cases = append(cases, struct{ d, f int }{2, 2})
	}
	for _, c := range cases {
		n := (c.d+1)*c.f + 1
		if n < 3*c.f+1 {
			n = 3*c.f + 1
		}
		for trial := 0; trial < opt.Trials; trial++ {
			inputs := workload.Gaussian(rng, n, c.d, 2)
			byz := map[int]broadcast.EIGBehavior{
				n - 1: adversary.Equivocator(
					workload.Gaussian(rng, 1, c.d, 8)[0],
					workload.Gaussian(rng, 1, c.d, 8)[0]),
			}
			if c.f == 2 {
				byz[0] = adversary.Silent()
			}
			cfg := &consensus.SyncConfig{N: n, F: c.f, D: c.d, Inputs: inputs, Byzantine: byz}
			dirs := 4 * c.d
			res, err := consensus.RunConvexHullConsensus(context.Background(), cfg, dirs)
			if err != nil {
				o.Pass = false
				t.AddRow(c.d, c.f, n, dirs, "equivocate", "-", "-", "-", "error: "+err.Error())
				continue
			}
			honest := cfg.HonestIDs()
			agree := true
			for _, i := range honest[1:] {
				if consensus.PolytopeAgreementError(res, honest[0], i) != 0 {
					agree = false
				}
			}
			valid := consensus.CheckConvexValidity(res.Vertices[honest[0]], cfg.NonFaultyInputs(), 1e-6)
			spread := vec.NewSet(res.Vertices[honest[0]]...).MaxEdge(2)
			ok := agree && valid
			if trial == 0 {
				t.AddRow(c.d, c.f, n, dirs, "equivocate+silent", agree, valid, spread, report.PassFail(ok))
			}
			o.Pass = o.Pass && ok
		}
	}

	// Degeneration: identical inputs collapse the polytope to a point.
	p := workload.Gaussian(rng, 1, 2, 2)[0]
	cfg := &consensus.SyncConfig{N: 4, F: 1, D: 2, Inputs: []vec.V{p.Clone(), p.Clone(), p.Clone(), p.Clone()}}
	res, err := consensus.RunConvexHullConsensus(context.Background(), cfg, 8)
	collapsed := err == nil
	if collapsed {
		for _, v := range res.Vertices[0] {
			if !v.ApproxEqual(p, 1e-7) {
				collapsed = false
			}
		}
	}
	t.AddRow(2, 1, 4, 8, "identical inputs", collapsed, collapsed, 0.0, report.PassFail(collapsed))
	o.Pass = o.Pass && collapsed

	// Cross-check: the exact-BVC Gamma point lies (nearly) inside the
	// agreed polytope when the fan is dense enough.
	inputs := workload.Gaussian(rng, 5, 2, 2)
	cfg2 := &consensus.SyncConfig{N: 5, F: 1, D: 2, Inputs: inputs}
	cres, err1 := consensus.RunConvexHullConsensus(context.Background(), cfg2, 24)
	eres, err2 := consensus.RunExactBVC(context.Background(), cfg2)
	crossOK := err1 == nil && err2 == nil
	gap := 0.0
	if crossOK {
		gap, _ = geom.Dist2(eres.Outputs[0], vec.NewSet(cres.Vertices[0]...))
		crossOK = gap < 0.1
	}
	t.AddRow(2, 1, 5, 24, "Gamma-point containment", crossOK, crossOK, gap, report.PassFail(crossOK))
	o.Pass = o.Pass && crossOK
	note(o, "the polytope is Gamma(S)'s support-point inner approximation; its hull is the agreed region")
	return o
}
