package experiments

import (
	"context"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E18Iterative exercises the iterative approximate BVC family (the [18]
// line of Related Work, complete-graph case): per-round value exchange
// with safe-area updates, no broadcast primitive. It regenerates the
// convergence series (round vs honest range) under four adversaries and
// checks validity (estimates never leave the honest input hull) and
// geometric contraction.
func E18Iterative(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E18", Title: "Iterative approximate BVC: convergence series (related work [18])", Pass: true}
	t := report.NewTable("", "adversary", "d", "n", "round", "honest range", "valid")
	o.Table = t

	d, f := 2, 1
	n := (d+2)*f + 1
	inputs := workload.Gaussian(rng, n, d, 5)
	honestInputs := vec.NewSet(inputs[:n-1]...)

	adversaries := []struct {
		name string
		mk   consensus.IterByzantine
	}{
		{"none", nil},
		{"silent", consensus.IterByzantineFunc(func(int, int, vec.V) vec.V { return nil })},
		{"fixed-far", consensus.IterByzantineFunc(func(int, int, vec.V) vec.V { return vec.Of(500, -500) })},
		{"two-faced", consensus.IterByzantineFunc(func(round, to int, _ vec.V) vec.V {
			v := vec.New(d)
			v[0] = float64((to*7+round*13)%11) * 20
			v[1] = -float64((to*3+round*5)%7) * 20
			return v
		})},
	}
	rounds := 10
	if opt.Quick {
		rounds = 6
	}
	for _, a := range adversaries {
		cfg := &consensus.IterConfig{N: n, F: f, D: d, Inputs: inputs, Rounds: rounds}
		if a.mk != nil {
			cfg.Byzantine = map[int]consensus.IterByzantine{n - 1: a.mk}
		}
		res, err := consensus.RunIterativeBVC(context.Background(), cfg)
		if err != nil {
			o.Pass = false
			note(o, "%s: %v", a.name, err)
			continue
		}
		valid := true
		for i := 0; i < n-1; i++ {
			if !consensus.CheckExactValidity(res.Outputs[i], honestInputs, 1e-6) {
				valid = false
			}
		}
		h := res.RangeHistory
		for r, v := range h {
			if r == 0 || r == len(h)-1 || r == len(h)/2 {
				t.AddRow(a.name, d, n, r, v, report.PassFail(valid))
			}
		}
		final := h[len(h)-1]
		ok := valid && final < h[0]*0.05
		if !ok {
			note(o, "%s: range %v -> %v (valid=%v)", a.name, h[0], final, valid)
		}
		o.Pass = o.Pass && ok
	}
	note(o, "the honest range contracts monotonically and geometrically; estimates never leave the honest hull")
	return o
}
