package experiments

import (
	"context"

	"math"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E15Footnote3 reproduces the paper's footnote 3: when the underlying
// network is a reliable broadcast channel (modelled here with the signed
// Dolev-Strong broadcast, which tolerates any f < n), the n >= 3f+1
// requirement on Step 1 disappears. The very configuration that E11
// breaks at n = 3 — an equivocating Byzantine commander — now yields
// identical honest views and a valid (delta,2)-relaxed decision, and
// even n = 2 with f = 1 works.
func E15Footnote3(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E15", Title: "Footnote 3: broadcast channels lift the 3f+1 requirement", Pass: true}
	t := report.NewTable("", "n", "f", "d", "broadcast", "attack", "views agree", "outputs agree", "valid", "got")
	o.Table = t

	d := 2
	one := vec.Of(1, 1)
	zero := vec.Of(0, 0)

	run := func(n int, signed bool, label string) {
		inputs := make([]vec.V, n)
		for i := range inputs {
			inputs[i] = one.Clone()
		}
		inputs[n-1] = zero // the Byzantine slot's nominal input
		cfg := &consensus.SyncConfig{
			N: n, F: 1, D: d, Inputs: inputs,
			SignedBroadcast: signed,
		}
		perRecipient := map[int]vec.V{}
		for i := 0; i < n-1; i++ {
			if i%2 == 0 {
				perRecipient[i] = one
			} else {
				perRecipient[i] = zero
			}
		}
		if signed {
			cfg.ByzantineSigned = map[int]broadcast.DSBehavior{n - 1: adversary.SignedEquivocator(perRecipient)}
		} else {
			cfg.Byzantine = map[int]broadcast.EIGBehavior{n - 1: adversary.PerRecipient(perRecipient)}
		}
		res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		if err != nil {
			t.AddRow(n, 1, d, label, "equivocate", "-", "-", "-", "error: "+err.Error())
			o.Pass = false
			return
		}
		honest := cfg.HonestIDs()
		viewsAgree := true
		for _, i := range honest[1:] {
			for c := 0; c < n; c++ {
				if !res.AgreedSet[i].At(c).Equal(res.AgreedSet[honest[0]].At(c)) {
					viewsAgree = false
				}
			}
		}
		outputsAgree := consensus.AgreementError(res.Outputs, honest) == 0
		delta := res.Delta[honest[0]]
		valid := consensus.CheckDeltaValidity(res.Outputs[honest[0]], cfg.NonFaultyInputs(), delta, 2, 1e-6)
		// Signed mode must defeat the attack; oral mode at n <= 3f must
		// fall to it (when at least two honest processes exist to split).
		wantAgree := signed || n >= 4
		got := viewsAgree == wantAgree && (wantAgree == outputsAgree || !wantAgree) && (!wantAgree || valid)
		t.AddRow(n, 1, d, label, "equivocate", viewsAgree, outputsAgree, valid, report.PassFail(got))
		o.Pass = o.Pass && got
	}

	run(3, false, "oral (OM)")
	run(3, true, "signed (DS)")
	run(4, true, "signed (DS)")
	if !opt.Quick {
		run(5, true, "signed (DS)")
	}

	// Random-input sanity at n = 3, f = 1 under signed broadcast: the
	// achieved delta still respects the generic diameter bound.
	okRand := true
	for trial := 0; trial < opt.Trials; trial++ {
		inputs := workload.Gaussian(rng, 3, d, 2)
		cfg := &consensus.SyncConfig{N: 3, F: 1, D: d, Inputs: inputs, SignedBroadcast: true}
		res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		if err != nil {
			okRand = false
			break
		}
		honest := cfg.HonestIDs()
		if consensus.AgreementError(res.Outputs, honest) != 0 {
			okRand = false
		}
		delta := res.Delta[honest[0]]
		if !consensus.CheckDeltaValidity(res.Outputs[honest[0]], cfg.NonFaultyInputs(), delta, 2, 1e-6) {
			okRand = false
		}
	}
	t.AddRow(3, 1, d, "signed (DS)", "none (random)", true, okRand, okRand, report.PassFail(okRand))
	o.Pass = o.Pass && okRand
	note(o, "the same equivocation that splits views under oral messages at n=3 is defeated by signature chains")
	return o
}

// E16ConjectureSweep hunts for counterexamples to Conjectures 1-3 over a
// randomized grid of (n, f, d) configurations in the conjectured regime
// 3f+1 <= n < (d+1)f, reporting the worst delta*/bound ratio seen. A
// ratio >= 1 would be a counterexample (none is known; none was found).
func E16ConjectureSweep(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E16", Title: "Conjectures 1-3: randomized counterexample hunt", Pass: true}
	t := report.NewTable("", "conj", "d", "f", "n", "p", "trials", "worst delta*/bound", "got")
	o.Table = t

	type cfg struct{ d, f, n int }
	grid := []cfg{{4, 2, 7}, {4, 2, 8}, {5, 2, 9}, {4, 3, 10}}
	if opt.Quick {
		grid = grid[:2]
	}
	trials := opt.Trials
	if trials > 3 {
		trials = 3 // iterative minimax is expensive at these sizes
	}
	for _, g := range grid {
		if g.n < 3*g.f+1 || g.n >= (g.d+1)*g.f {
			continue
		}
		// Conjecture 1 (p = 2).
		worst2 := 0.0
		ok2 := true
		for trial := 0; trial < trials; trial++ {
			pts := workload.Gaussian(rng, g.n, g.d, 1)
			s := vec.NewSet(pts...)
			dstar := minimax.DeltaStar2Iterative(s, g.f).Delta
			// Check against every possible faulty set of size f: the
			// conjecture must hold whichever f inputs are faulty. The
			// bound shrinks as edges are removed, so the binding check is
			// the minimum bound over faulty choices.
			minBound := math.Inf(1)
			vec.Combinations(g.n, g.f, func(faulty []int) bool {
				fm := map[int]bool{}
				for _, x := range faulty {
					fm[x] = true
				}
				keep := make([]int, 0, g.n-g.f)
				for i := 0; i < g.n; i++ {
					if !fm[i] {
						keep = append(keep, i)
					}
				}
				if b := minimax.Conjecture1Bound(s.Subset(keep), g.n, g.f); b < minBound {
					minBound = b
				}
				return true
			})
			if minBound <= 0 {
				continue
			}
			if r := dstar / minBound; r > worst2 {
				worst2 = r
			}
			if dstar >= minBound {
				ok2 = false
			}
		}
		t.AddRow("C1/C2", g.d, g.f, g.n, 2, trials, worst2, report.PassFail(ok2))
		o.Pass = o.Pass && ok2

		// Conjecture 3 surrogate (p = inf computable exactly by LP):
		// delta*_inf <= delta*_2 < bound_2 <= d^(1/2) * kappa * maxE_inf
		// ... we check the direct transferred-inf form.
		worstInf := 0.0
		okInf := true
		for trial := 0; trial < trials; trial++ {
			pts := workload.Gaussian(rng, g.n, g.d, 1)
			s := vec.NewSet(pts...)
			dstarInf, _ := relax.DeltaStarPoly(s, g.f, math.Inf(1))
			kappa := 1.0 / float64(g.n/g.f-2)
			minBound := math.Inf(1)
			vec.Combinations(g.n, g.f, func(faulty []int) bool {
				fm := map[int]bool{}
				for _, x := range faulty {
					fm[x] = true
				}
				keep := make([]int, 0, g.n-g.f)
				for i := 0; i < g.n; i++ {
					if !fm[i] {
						keep = append(keep, i)
					}
				}
				b := minimax.HolderScale(g.d, math.Inf(1)) * kappa * s.Subset(keep).MaxEdge(math.Inf(1))
				if b < minBound {
					minBound = b
				}
				return true
			})
			if minBound <= 0 {
				continue
			}
			if r := dstarInf / minBound; r > worstInf {
				worstInf = r
			}
			if dstarInf >= minBound {
				okInf = false
			}
		}
		t.AddRow("C3 (p=inf)", g.d, g.f, g.n, "inf", trials, worstInf, report.PassFail(okInf))
		o.Pass = o.Pass && okInf
	}
	note(o, "no counterexample found; every sampled configuration keeps delta* strictly below the conjectured bound")
	return o
}
