package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/workload"
)

// E21FaultSweep exercises the fault-injecting network substrate across
// both engines. Within-model patterns (duplication for the lockstep
// protocols; recoverable drops, bounded delays, duplication and healing
// partitions for the asynchronous ones) must leave every run satisfying
// the paper's guarantees; out-of-model patterns (synchrony-breaking
// drops, exhausted retransmission budgets, unhealed partitions) must
// degrade into typed errors wrapping sched.ErrDeliveryViolated. A final
// scenario replays one faulty run and requires bit-identical outputs
// and fault counters — the deterministic-replay contract.
func E21FaultSweep(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E21", Title: "Fault injection: within-model runs keep the guarantees, out-of-model runs fail typed, replay is exact", Pass: true}
	t := report.NewTable("", "scenario", "engine", "runs", "clean", "typed-err", "faults-seen", "got")
	o.Table = t
	trials := opt.Trials
	if opt.Quick && trials > 3 {
		trials = 3
	}

	type row struct {
		name, engine string
		run          func(seed int64) (clean bool, typed bool, sawFaults bool, err error)
		wantClean    bool
	}

	syncRun := func(seed int64, faults *sched.LinkFaults) (*consensus.SyncResult, *consensus.SyncConfig, error) {
		rng := rand.New(rand.NewSource(seed))
		cfg := &consensus.SyncConfig{
			N: 4, F: 1, D: 3,
			Inputs: workload.Gaussian(rng, 4, 3, 1),
			Faults: faults,
		}
		res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		return res, cfg, err
	}
	asyncRun := func(seed int64, faults *sched.LinkFaults) (*consensus.AsyncResult, *consensus.AsyncConfig, error) {
		rng := rand.New(rand.NewSource(seed))
		cfg := &consensus.AsyncConfig{
			N: 4, F: 1, D: 3,
			Inputs: workload.Gaussian(rng, 4, 3, 1),
			Rounds: 5,
			Mode:   consensus.ModeRelaxed,
			Faults: faults,
		}
		res, err := consensus.RunAsyncBVC(context.Background(), cfg)
		return res, cfg, err
	}

	rows := []row{
		{
			name: "within-model: duplication", engine: "sync", wantClean: true,
			run: func(seed int64) (bool, bool, bool, error) {
				res, cfg, err := syncRun(seed, &sched.LinkFaults{
					Seed: seed, LinkProfile: sched.LinkProfile{DupProb: 0.5},
				})
				if err != nil {
					return false, errors.Is(err, sched.ErrDeliveryViolated), false, err
				}
				ok := consensus.AgreementError(res.Outputs, cfg.HonestIDs()) == 0
				for _, i := range cfg.HonestIDs() {
					ok = ok && consensus.CheckDeltaValidity(res.Outputs[i], cfg.NonFaultyInputs(), res.Delta[i], 2, 1e-6)
				}
				return ok, false, res.Faults.Duplicated > 0, nil
			},
		},
		{
			name: "within-model: drop+delay+dup+healing partition", engine: "async", wantClean: true,
			run: func(seed int64) (bool, bool, bool, error) {
				res, cfg, err := asyncRun(seed, &sched.LinkFaults{
					Seed:        seed,
					LinkProfile: sched.LinkProfile{DropProb: 0.2, DupProb: 0.2, DelayMax: 2},
					Partitions:  []sched.Partition{{Start: 1, End: 4, Group: []int{int(seed) % 4}}},
				})
				if err != nil {
					return false, errors.Is(err, sched.ErrDeliveryViolated), false, err
				}
				ok := true
				for _, i := range cfg.HonestIDs() {
					ok = ok && res.Outputs[i] != nil
				}
				fs := res.Faults
				return ok, false, fs.Dropped+fs.Duplicated+fs.Delayed+fs.PartitionHeals > 0, nil
			},
		},
		{
			name: "out-of-model: drops break lockstep", engine: "sync", wantClean: false,
			run: func(seed int64) (bool, bool, bool, error) {
				_, _, err := syncRun(seed, &sched.LinkFaults{
					Seed: seed, LinkProfile: sched.LinkProfile{DropProb: 0.8},
				})
				return err == nil, errors.Is(err, sched.ErrDeliveryViolated), true, err
			},
		},
		{
			name: "out-of-model: retransmission budget exhausted", engine: "async", wantClean: false,
			run: func(seed int64) (bool, bool, bool, error) {
				_, _, err := asyncRun(seed, &sched.LinkFaults{
					Seed: seed, LinkProfile: sched.LinkProfile{DropProb: 1}, MaxAttempts: 2,
				})
				return err == nil, errors.Is(err, sched.ErrDeliveryViolated), true, err
			},
		},
		{
			name: "out-of-model: partition never heals", engine: "async", wantClean: false,
			run: func(seed int64) (bool, bool, bool, error) {
				_, _, err := asyncRun(seed, &sched.LinkFaults{
					Seed: seed, Partitions: []sched.Partition{{Start: 0, End: -1, Group: []int{0}}},
				})
				return err == nil, errors.Is(err, sched.ErrDeliveryViolated), true, err
			},
		},
	}

	for _, r := range rows {
		clean, typed, sawFaults := 0, 0, false
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*101
			c, ty, sf, _ := r.run(seed)
			if c {
				clean++
			}
			if ty {
				typed++
			}
			sawFaults = sawFaults || sf
		}
		var ok bool
		if r.wantClean {
			ok = clean == trials && sawFaults
		} else {
			ok = clean == 0 && typed == trials
		}
		t.AddRow(r.name, r.engine, trials, clean, typed, sawFaults, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}

	// Deterministic replay: the same seed must reproduce outputs and
	// fault counters exactly.
	replayOK := true
	fp := func() string {
		res, _, err := asyncRun(opt.Seed, &sched.LinkFaults{
			Seed:        opt.Seed,
			LinkProfile: sched.LinkProfile{DropProb: 0.3, DupProb: 0.2, DelayMax: 2},
		})
		if err != nil {
			return "err:" + err.Error()
		}
		return fmt.Sprintf("%v|%+v", res.Outputs, res.Faults)
	}
	first := fp()
	for i := 0; i < 2 && replayOK; i++ {
		replayOK = fp() == first
	}
	t.AddRow("replay: identical outputs and counters", "async", 3, 3, 0, true, report.PassFail(replayOK))
	o.Pass = o.Pass && replayOK
	note(o, "within-model fault patterns preserve the Section 9/10 guarantees; out-of-model ones fail typed (ErrDeliveryViolated)")
	return o
}
