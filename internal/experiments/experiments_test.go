package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in Quick mode
// and requires the paper's claims to hold. This is the library's
// integration test: protocols, geometry and harness all end-to-end.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	opt := Options{Seed: 7, Trials: 3, Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			o := e.Run(opt)
			if o == nil {
				t.Fatal("nil outcome")
			}
			if o.ID != e.ID {
				t.Errorf("outcome id %q != %q", o.ID, e.ID)
			}
			var buf bytes.Buffer
			o.Render(&buf)
			if !o.Pass {
				t.Errorf("experiment failed:\n%s", buf.String())
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Error("render missing id")
			}
		})
	}
}

func TestRunLookup(t *testing.T) {
	if Run("E999", Options{}) != nil {
		t.Error("unknown id returned an outcome")
	}
	o := Run("E8", Options{Seed: 3, Trials: 2, Quick: true})
	if o == nil || o.ID != "E8" {
		t.Fatalf("Run(E8) = %+v", o)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 || o.Trials != 5 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{Seed: 9, Trials: 2}.withDefaults()
	if o2.Seed != 9 || o2.Trials != 2 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}
