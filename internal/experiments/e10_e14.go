package experiments

import (
	"context"

	"math"
	"math/rand"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E10AsyncRVA reproduces Theorem 15: the Relaxed Verified Averaging
// algorithm achieves (delta,2)-relaxed approximate consensus with
// n = d+1 < (d+2)f+1 processes, with every process's round-0 delta below
// the kappa(n-f,...) transferred bound, and epsilon-agreement shrinking
// geometrically with rounds.
func E10AsyncRVA(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E10", Title: "Theorem 15: Relaxed Verified Averaging (async, n = d+1)", Pass: true}
	t := report.NewTable("", "d", "n", "rounds", "epsilon", "max delta_i", "delta bound", "validity", "got")
	o.Table = t
	d := 3
	n := d + 1
	inputs := workload.Gaussian(rng, n, d, 2)
	byz := map[int]*consensus.AsyncByzantine{
		n - 1: {Input: workload.Gaussian(rng, 1, d, 6)[0], SilentFrom: consensus.NeverMisbehave, CorruptFrom: consensus.NeverMisbehave},
	}
	roundsList := []int{2, 4, 8, 12}
	if opt.Quick {
		roundsList = []int{2, 6}
	}
	prevEps := math.Inf(1)
	for _, rounds := range roundsList {
		cfg := &consensus.AsyncConfig{
			N: n, F: 1, D: d, Inputs: inputs, Rounds: rounds,
			Mode:      consensus.ModeRelaxed,
			Byzantine: byz,
			Schedule:  &sched.RandomSchedule{Rng: rand.New(rand.NewSource(opt.Seed + int64(rounds)))},
		}
		res, err := consensus.RunAsyncBVC(context.Background(), cfg)
		if err != nil {
			o.Pass = false
			note(o, "rounds=%d: %v", rounds, err)
			continue
		}
		honest := cfg.HonestIDs()
		eps := consensus.AgreementError(res.Outputs, honest)
		maxDelta := 0.0
		for _, i := range honest {
			if res.Delta[i] > maxDelta {
				maxDelta = res.Delta[i]
			}
		}
		// Theorem 15 bound with kappa(n-f, f, d, 2): the witness set has
		// at least n-f = d points; for f=1 the applicable Theorem 9-style
		// bound at m = n-f inputs is maxEdge/(m-2) when m > 2. E+ here is
		// over honest inputs; the Byzantine round-0 value can only shrink
		// the witnessed edge set used by the theorem, so we evaluate the
		// conservative bound over all round-0 values (honest + claimed).
		all := cfg.NonFaultyInputs().Clone()
		all.Append(byz[n-1].Input)
		m := n - 1 // |X| >= n-f
		bound := all.MaxEdge(2) / float64(m-2)
		deltaOK := maxDelta < bound
		// Validity: each output within its delta of the hull of round-0
		// values (we check against honest hull + byz claimed value).
		validOK := true
		for _, i := range honest {
			dist, _ := geom.Dist2(res.Outputs[i], all)
			if dist > maxDelta+1e-6 {
				validOK = false
			}
		}
		ok := deltaOK && validOK && eps <= prevEps+1e-9
		prevEps = eps
		t.AddRow(d, n, rounds, eps, maxDelta, bound, report.PassFail(validOK), report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	// Contrast row: ModeExact needs n = (d+2)f+1 = d+3 processes for the
	// same d — the relaxation saves (d+3)-(d+1) = 2 processes at f=1.
	nExact := d + 3
	cfgE := &consensus.AsyncConfig{
		N: nExact, F: 1, D: d, Inputs: workload.Gaussian(rng, nExact, d, 2),
		Rounds: 8, Mode: consensus.ModeExact,
	}
	resE, errE := consensus.RunAsyncBVC(context.Background(), cfgE)
	okE := errE == nil
	var epsE float64
	if okE {
		epsE = consensus.AgreementError(resE.Outputs, cfgE.HonestIDs())
		okE = epsE < 0.05
	}
	t.AddRow(d, nExact, 8, epsE, 0.0, 0.0, "exact (delta=0)", report.PassFail(okE))
	o.Pass = o.Pass && okE
	note(o, "relaxed mode runs with %d processes where exact validity needs %d", n, nExact)
	return o
}

// E11Impossibility reproduces Lemma 10 / Figure 1: with n = 3 and f = 1
// (n <= 3f) the three-scenario construction forces disagreement. We run
// the actual broadcast-based algorithm in scenarios B and C; the
// Byzantine process equivocates exactly as in the figure, and the honest
// processes' agreed multisets diverge — agreement on the output becomes
// impossible for any input-respecting choice function.
func E11Impossibility(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E11", Title: "Lemma 10 / Figure 1: n <= 3f impossibility scenarios", Pass: true}
	t := report.NewTable("", "scenario", "byzantine", "honest views agree", "outputs agree", "expected", "got")
	o.Table = t
	d := 2
	zero, one := workload.RingScenarioInputs(d)

	// Scenario B: p, q honest with input 0; r Byzantine playing "r0 to q,
	// r1 to p" — it tells p it started from 1 and q it started from 0.
	runScenario := func(name string, inputs []vec.V, byzID int, toP, toQ vec.V, honestA, honestB int) {
		cfg := &consensus.SyncConfig{
			N: 3, F: 1, D: d, Inputs: inputs,
			Byzantine: map[int]broadcast.EIGBehavior{
				byzID: adversary.PerRecipient(map[int]vec.V{honestA: toP, honestB: toQ}),
			},
		}
		res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
		if err != nil {
			t.AddRow(name, byzID, "-", "-", "divergence", "run error: "+err.Error())
			return
		}
		viewsAgree := true
		for c := 0; c < 3; c++ {
			if !res.AgreedSet[honestA].At(c).Equal(res.AgreedSet[honestB].At(c)) {
				viewsAgree = false
			}
		}
		outputsAgree := res.Outputs[honestA].ApproxEqual(res.Outputs[honestB], 1e-9)
		// With n = 3 <= 3f the broadcast layer cannot guarantee identical
		// views; the equivocator is expected to split them.
		t.AddRow(name, byzID, viewsAgree, outputsAgree, "divergence", report.PassFail(!viewsAgree || !outputsAgree))
		if viewsAgree && outputsAgree {
			o.Pass = false
		}
	}

	// Scenario B: honest p, q start from the 1-vector (distinct from the
	// protocol's default vector, so the forced majority ties are visible);
	// the Byzantine r plays its scenario-A ring roles: "input 1" toward p
	// and "input 0" toward q, corrupting relays of the honest instances
	// the same way.
	runScenario("B (r two-faced)", []vec.V{one, one, zero}, 2, one, zero, 0, 1)
	// Scenario C: q (process 1) bridges p (input 0) and r (input 1).
	runScenario("C (q bridges)", []vec.V{zero, one.Scale(0.5), one}, 1, zero, one, 0, 2)

	// Control: with n = 4 >= 3f+1 the same attack fails — views agree.
	cfg := &consensus.SyncConfig{
		N: 4, F: 1, D: d,
		Inputs: []vec.V{zero, zero, zero, one},
		Byzantine: map[int]broadcast.EIGBehavior{
			3: adversary.PerRecipient(map[int]vec.V{0: one, 1: zero, 2: one}),
		},
	}
	res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	ctrlOK := err == nil
	if ctrlOK {
		ctrlOK = consensus.AgreementError(res.Outputs, cfg.HonestIDs()) == 0
	}
	t.AddRow("control n=3f+1", 3, ctrlOK, ctrlOK, "agreement", report.PassFail(ctrlOK))
	o.Pass = o.Pass && ctrlOK
	note(o, "at n=3 the equivocator splits the honest processes' agreed multisets; at n=4 the same attack is defeated")
	return o
}

// E12Tverberg reproduces the Section 8 observations: the Tverberg bound
// (d+1)f+1 is attained, its tightness at (d+1)f survives replacing H by
// H_k and H_(delta,p), and above the bound partitions always exist.
func E12Tverberg(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E12", Title: "Tverberg tightness and its relaxed variants (Section 8)", Pass: true}
	t := report.NewTable("", "d", "f", "n", "hull", "partitions found / trials", "expected", "got")
	o.Table = t
	cases := []struct{ d, f int }{{2, 1}, {2, 2}, {3, 1}, {3, 2}}
	if opt.Quick {
		cases = cases[:3]
	}
	for _, c := range cases {
		above := (c.d+1)*c.f + 1
		at := (c.d + 1) * c.f
		found := 0
		for trial := 0; trial < opt.Trials; trial++ {
			if tverberg.HasPartition(vec.NewSet(workload.Gaussian(rng, above, c.d, 2)...), c.f) {
				found++
			}
		}
		okAbove := found == opt.Trials
		t.AddRow(c.d, c.f, above, "H", joinCount(found, opt.Trials), "all", report.PassFail(okAbove))
		o.Pass = o.Pass && okAbove

		foundAt := 0
		for trial := 0; trial < opt.Trials; trial++ {
			if tverberg.HasPartition(vec.NewSet(workload.Gaussian(rng, at, c.d, 2)...), c.f) {
				foundAt++
			}
		}
		okAt := foundAt == 0
		t.AddRow(c.d, c.f, at, "H", joinCount(foundAt, opt.Trials), "none", report.PassFail(okAt))
		o.Pass = o.Pass && okAt
	}
	// Relaxed variants at d=3, f=1, n=4 (tight): H_k (k=2,3) and
	// (0.05, inf) on a scaled-up configuration remain partition-free;
	// huge delta restores partitions.
	d, f := 3, 1
	pts := workload.Gaussian(rng, (d+1)*f, d, 2)
	scaled := make([]vec.V, len(pts))
	for i, p := range pts {
		scaled[i] = p.Scale(100)
	}
	ys := vec.NewSet(scaled...)
	for _, k := range []int{2, 3} {
		_, _, okK := tverberg.PartitionK(ys, f, k)
		t.AddRow(d, f, (d+1)*f, joinK(k), boolCount(okK), "none", report.PassFail(!okK))
		o.Pass = o.Pass && !okK
	}
	_, _, okR := tverberg.PartitionRelaxed(ys, f, 0.05, math.Inf(1))
	t.AddRow(d, f, (d+1)*f, "H_(0.05,inf)", boolCount(okR), "none", report.PassFail(!okR))
	o.Pass = o.Pass && !okR
	_, _, okBig := tverberg.PartitionRelaxed(ys, f, 1e6, math.Inf(1))
	t.AddRow(d, f, (d+1)*f, "H_(1e6,inf)", boolCount(okBig), "exists", report.PassFail(okBig))
	o.Pass = o.Pass && okBig
	note(o, "tightness survives the relaxations exactly as Section 8 argues; only an unboundedly large delta defeats it")
	return o
}

func joinCount(a, b int) string {
	return report.FormatFloat(float64(a)) + "/" + report.FormatFloat(float64(b))
}
func joinK(k int) string { return "H_" + report.FormatFloat(float64(k)) }
func boolCount(b bool) string {
	if b {
		return "1/1"
	}
	return "0/1"
}

// E13Degenerate reproduces Theorem 8: affinely dependent inputs (f = 1,
// 4 <= n <= d+1) admit delta* = 0 via the distance-preserving projection.
func E13Degenerate(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E13", Title: "Theorem 8: affinely dependent inputs give delta* = 0", Pass: true}
	t := report.NewTable("", "d", "n", "subspace dim", "trials", "max delta*", "got")
	o.Table = t
	cases := []struct{ d, n, sub int }{{3, 4, 2}, {4, 4, 2}, {5, 5, 3}, {6, 4, 2}}
	if opt.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		worst := 0.0
		for trial := 0; trial < opt.Trials; trial++ {
			pts := workload.AffinelyDependent(rng, c.n, c.d, c.sub, 2)
			res := minimax.DeltaStar2(vec.NewSet(pts...), 1)
			if res.Delta > worst {
				worst = res.Delta
			}
		}
		ok := worst < 1e-6
		t.AddRow(c.d, c.n, c.sub, opt.Trials, worst, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	note(o, "subspace dim < n-1 guarantees the projected problem has n >= d'+2, so Gamma is non-empty (delta*=0)")
	return o
}

// E14Containment property-checks the structural lemmas of Section 5:
// Lemma 1 (H_i subset H_j for i >= j), Lemmas 6-9 (delta monotonicity),
// the k = d and delta = 0 degenerations, and Lemma 16 (delta*
// monotonicity under input removal).
func E14Containment(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E14", Title: "Containment lemmas (Lemmas 1, 6-9, 16; Section 5.3 degenerations)", Pass: true}
	t := report.NewTable("", "property", "checks", "violations")
	o.Table = t
	checks := opt.Trials * 20

	viol1 := 0
	for i := 0; i < checks; i++ {
		d := 3 + rng.Intn(2)
		s := vec.NewSet(workload.Gaussian(rng, d+2, d, 1)...)
		q := workload.Gaussian(rng, 1, d, 1)[0]
		prev := false
		for k := d; k >= 1; k-- {
			in := relax.InHullK(q, s, k)
			if prev && !in {
				viol1++
				break
			}
			prev = in
		}
	}
	t.AddRow("Lemma 1: H_i subset H_j (i>=j)", checks, viol1)

	viol6 := 0
	for i := 0; i < checks; i++ {
		d := 2 + rng.Intn(2)
		s := vec.NewSet(workload.Gaussian(rng, d+1, d, 1)...)
		q := workload.Gaussian(rng, 1, d, 2)[0]
		d1 := rng.Float64()
		d2 := d1 + rng.Float64()
		if geom.InRelaxedHull(q, s, d1, 2, 0) && !geom.InRelaxedHull(q, s, d2, 2, 1e-9) {
			viol6++
		}
	}
	t.AddRow("Lemmas 6-9: H_(d',p) subset H_(d,p)", checks, viol6)

	violKd := 0
	for i := 0; i < checks; i++ {
		d := 2 + rng.Intn(2)
		s := vec.NewSet(workload.Gaussian(rng, d+2, d, 1)...)
		q := workload.Gaussian(rng, 1, d, 1)[0]
		if relax.InHullK(q, s, d) != geom.InHull(q, s) {
			violKd++
		}
	}
	t.AddRow("k=d degenerates to H", checks, violKd)

	violD0 := 0
	for i := 0; i < checks; i++ {
		d := 2
		s := vec.NewSet(workload.Gaussian(rng, d+2, d, 1)...)
		q := workload.Gaussian(rng, 1, d, 1)[0]
		in0, _ := geom.DistP(q, s, 2)
		if (in0 <= 1e-9) != geom.InRelaxedHull(q, s, 0, 2, 1e-9) {
			violD0++
		}
	}
	t.AddRow("delta=0 degenerates to H", checks, violD0)

	viol16 := 0
	mono := opt.Trials
	for i := 0; i < mono; i++ {
		d, f, n := 3, 2, 7
		s := vec.NewSet(workload.Gaussian(rng, n, d, 1)...)
		full, _ := relax.DeltaStarPoly(s, f, math.Inf(1))
		for j := 0; j < n; j++ {
			less, _ := relax.DeltaStarPoly(s.Without(j), f, math.Inf(1))
			if full > less+1e-7 {
				viol16++
			}
		}
	}
	t.AddRow("Lemma 16: delta*(S) <= delta*(S')", mono*7, viol16)

	total := viol1 + viol6 + violKd + violD0 + viol16
	o.Pass = total == 0
	note(o, "all containment and monotonicity relations hold on every randomized check")
	return o
}
