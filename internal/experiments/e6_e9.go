package experiments

import (
	"math"
	"math/rand"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/simplexgeo"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E6Table1 regenerates Table 1 of the paper: for each (n, f) regime the
// measured delta*_2(S) over random and adversarially-placed inputs is
// compared against the paper's upper bound, reporting the worst observed
// ratio (which must stay below 1 — the theorems state strict
// inequalities).
func E6Table1(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E6", Title: "Table 1: upper bounds on input-dependent delta*", Pass: true}
	t := report.NewTable("", "regime", "d", "f", "n", "workload", "trials", "max delta*/bound", "bound source", "got")
	o.Table = t

	// Trials are independent, so they run on a worker pool; each trial
	// derives its own RNG from (seed, regime, d, n, trial) so the results
	// are deterministic regardless of scheduling.
	rowSeed := int64(0)
	check := func(regime string, d, f, n int, wl string, trials int, gen func(rng *rand.Rand) ([]vec.V, []int)) {
		rowSeed++
		type trialOut struct {
			ratio float64
			ok    bool
		}
		outs := par.Map(trials, 0, func(trial int) trialOut {
			rng := rand.New(rand.NewSource(opt.Seed + rowSeed*1_000_003 + int64(trial)*7919))
			pts, faulty := gen(rng)
			s := vec.NewSet(pts...)
			var dstar float64
			if f == 1 && n == d+1 {
				dstar = minimax.DeltaStar2(s, f).Delta
			} else {
				dstar = minimax.DeltaStar2Iterative(s, f).Delta
			}
			// The bound must hold for every possible choice of which f
			// processes are faulty that includes the actually faulty ones;
			// we evaluate it at the designated faulty set (the paper's E+).
			keep := make([]int, 0, n-f)
			fm := map[int]bool{}
			for _, x := range faulty {
				fm[x] = true
			}
			for i := 0; i < n; i++ {
				if !fm[i] {
					keep = append(keep, i)
				}
			}
			nonFaulty := s.Subset(keep)
			var bound float64
			var src string
			switch regime {
			case "f=1, n=d+1":
				bound = minimax.Theorem9Bound(nonFaulty, n)
				src = "Theorem 9"
			case "f>=2, n=(d+1)f":
				bound = minimax.Theorem12Bound(nonFaulty, d)
				src = "Theorem 12"
			default:
				bound = minimax.Conjecture1Bound(nonFaulty, n, f)
				src = "Conjecture 1"
			}
			if bound <= 0 {
				return trialOut{ratio: 0, ok: true}
			}
			_ = src
			return trialOut{ratio: dstar / bound, ok: dstar < bound}
		})
		worst := 0.0
		ok := true
		for _, o := range outs {
			if o.ratio > worst {
				worst = o.ratio
			}
			ok = ok && o.ok
		}
		srcName := map[string]string{
			"f=1, n=d+1":     "Theorem 9",
			"f>=2, n=(d+1)f": "Theorem 12",
			"3f+1<=n<(d+1)f": "Conjecture 1",
		}[regime]
		t.AddRow(regime, d, f, n, wl, trials, worst, srcName, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}

	// Row 1: f = 1, n = d+1 (Theorem 9), random + worst-case adversary.
	dims := []int{3, 4, 5}
	if opt.Quick {
		dims = []int{3, 4}
	}
	for _, d := range dims {
		n := d + 1
		for _, wl := range []string{"gauss", "cube"} {
			gen := workload.Generators()[wl]

			check("f=1, n=d+1", d, 1, n, wl, opt.Trials, func(rng *rand.Rand) ([]vec.V, []int) {
				pts := gen(rng, n, d)
				return pts, []int{n - 1}
			})
		}
		// Adversarial placement: the Byzantine input is hill-climbed to
		// maximize delta*/bound against the fixed honest inputs (the
		// honest E+ — and hence the bound — does not move).
		check("f=1, n=d+1", d, 1, n, "adversarial", opt.Trials, func(rng *rand.Rand) ([]vec.V, []int) {
			honest := workload.Gaussian(rng, n-1, d, 1)
			byz := adversary.WorstCasePlacement(honest, 2)
			bound := minimax.Theorem9Bound(vec.NewSet(honest...), n)
			score := func(b vec.V) float64 {
				pts := append(append([]vec.V(nil), honest...), b)
				sx, err := simplexgeo.New(pts)
				if err != nil {
					return 0
				}
				return sx.Inradius() / bound
			}
			cur := score(byz)
			step := 1.0
			for it := 0; it < 200; it++ {
				cand := byz.Clone()
				cand[rng.Intn(d)] += rng.NormFloat64() * step
				if s := score(cand); s > cur {
					cur, byz = s, cand
				}
				step *= 0.985
			}
			return append(append([]vec.V(nil), honest...), byz), []int{n - 1}
		})
	}

	// Row 2: f = 2, n = (d+1)f (Theorem 12). Heavier: fewer trials.
	heavyTrials := 2
	if opt.Trials < heavyTrials {
		heavyTrials = opt.Trials
	}
	d2 := 3
	check("f>=2, n=(d+1)f", d2, 2, (d2+1)*2, "gauss", heavyTrials, func(rng *rand.Rand) ([]vec.V, []int) {
		pts := workload.Gaussian(rng, (d2+1)*2, d2, 1)
		return pts, []int{0, (d2+1)*2 - 1}
	})

	// Row 3: 3f+1 <= n < (d+1)f (Conjecture 1): f = 2, d = 4, n in 7..9.
	if !opt.Quick {
		d3, f3 := 4, 2
		for _, n := range []int{7, 8, 9} {
			check("3f+1<=n<(d+1)f", d3, f3, n, "gauss", heavyTrials, func(rng *rand.Rand) ([]vec.V, []int) {
				pts := workload.Gaussian(rng, n, d3, 1)
				return pts, []int{0, n - 1}
			})
		}
	}
	note(o, "all ratios < 1: the strict upper bounds of Table 1 hold on every sampled configuration")
	return o
}

// E7InradiusAblation validates Lemma 13 and doubles as the solver
// ablation: the generic iterative minimax solver must agree with the
// closed-form inscribed-sphere radius on random simplices.
func E7InradiusAblation(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E7", Title: "Lemma 13: delta* = inradius; solver ablation", Pass: true}
	t := report.NewTable("", "d", "trials", "max |iter-exact|/exact", "iter >= exact - tol", "got")
	o.Table = t
	dims := []int{2, 3, 4}
	if opt.Quick {
		dims = []int{2, 3}
	}
	for _, d := range dims {
		worst := 0.0
		lowerOK := true
		for trial := 0; trial < opt.Trials; trial++ {
			pts := workload.Gaussian(rng, d+1, d, 2)
			sx, err := simplexgeo.New(pts)
			if err != nil {
				continue
			}
			exact := sx.Inradius()
			iter := minimax.DeltaStar2Iterative(vec.NewSet(pts...), 1).Delta
			rel := math.Abs(iter-exact) / exact
			if rel > worst {
				worst = rel
			}
			if iter < exact-1e-6 {
				lowerOK = false // iterative value is an upper bound; below exact would be a bug
			}
		}
		ok := worst < 5e-3 && lowerOK
		t.AddRow(d, opt.Trials, worst, report.PassFail(lowerOK), report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	note(o, "iterative solver is an upper bound on delta* and matches the closed form to <0.5%%")
	return o
}

// E8FacetRadii validates Lemmas 14 and 15 numerically: r < min_k r_k and
// r < maxEdge/d on random simplices, reporting the tightest observed
// slack.
func E8FacetRadii(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E8", Title: "Lemmas 14-15: inradius vs facet inradii and edge bound", Pass: true}
	t := report.NewTable("", "d", "trials", "max r/min_k r_k", "max r*d/maxEdge", "max 2r/minEdge", "got")
	o.Table = t
	dims := []int{2, 3, 4, 5, 6}
	if opt.Quick {
		dims = []int{2, 3, 4}
	}
	for _, d := range dims {
		w14, w15, w9 := 0.0, 0.0, 0.0
		for trial := 0; trial < opt.Trials*4; trial++ {
			pts := workload.Gaussian(rng, d+1, d, 2)
			sx, err := simplexgeo.New(pts)
			if err != nil {
				continue
			}
			r := sx.Inradius()
			if d >= 2 {
				if v := r / sx.MinFacetInradius(); v > w14 {
					w14 = v
				}
			}
			if v := r * float64(d) / sx.MaxEdge(); v > w15 {
				w15 = v
			}
			if d >= 2 {
				if v := 2 * r / sx.MinEdge(); v > w9 {
					w9 = v
				}
			}
		}
		ok := w14 < 1 && w15 < 1 && w9 < 1
		t.AddRow(d, opt.Trials*4, w14, w15, w9, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	note(o, "all three strict inequalities hold with visible slack on every sampled simplex")
	return o
}

// E9Holder validates Theorem 14: the L2 bound transfers to every Lp
// (p >= 2) with the d^(1/2-1/p) factor. Using delta*_p <= delta*_2 we
// check delta*_2 < d^(1/2-1/p) * kappa * max||e||_p directly, and also
// verify the computable delta*_inf against its own transferred bound.
func E9Holder(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E9", Title: "Theorem 14: Holder transfer of the kappa bound to Lp", Pass: true}
	t := report.NewTable("", "d", "p", "trials", "max delta*_p / bound_p", "got")
	o.Table = t
	dims := []int{3, 4}
	if opt.Quick {
		dims = []int{3}
	}
	ps := []float64{2, 3, 4, math.Inf(1)}
	for _, d := range dims {
		n := d + 1
		for _, p := range ps {
			worst := 0.0
			ok := true
			for trial := 0; trial < opt.Trials; trial++ {
				pts := workload.Gaussian(rng, n, d, 1)
				s := vec.NewSet(pts...)
				// kappa(n,1,d,2) from Theorem 9's second bound: 1/(n-2).
				faulty := n - 1
				nonFaulty := s.Without(faulty)
				kappa2 := 1.0 / float64(n-2)
				boundP := minimax.HolderScale(d, p) * kappa2 * nonFaulty.MaxEdge(p)
				var dstarP float64
				if math.IsInf(p, 1) {
					dstarP, _ = relax.DeltaStarPoly(s, 1, p)
				} else {
					// delta*_p <= delta*_2 for p >= 2 (distance ordering).
					dstarP = minimax.DeltaStar2(s, 1).Delta
				}
				if boundP <= 0 {
					continue
				}
				if r := dstarP / boundP; r > worst {
					worst = r
				}
				if dstarP >= boundP {
					ok = false
				}
			}
			pname := report.FormatFloat(p)
			if math.IsInf(p, 1) {
				pname = "inf"
			}
			t.AddRow(d, pname, opt.Trials, worst, report.PassFail(ok))
			o.Pass = o.Pass && ok
		}
	}
	// True delta*_p via the generic Lp minimax solver (expensive: small
	// sample) — tightens the surrogate rows above.
	trueTrials := 2
	if opt.Trials < trueTrials {
		trueTrials = opt.Trials
	}
	dT := 3
	nT := dT + 1
	for _, p := range []float64{3, 4} {
		worst := 0.0
		ok := true
		for trial := 0; trial < trueTrials; trial++ {
			pts := workload.Gaussian(rng, nT, dT, 1)
			s := vec.NewSet(pts...)
			nonFaulty := s.Without(nT - 1)
			bound := minimax.HolderScale(dT, p) / float64(nT-2) * nonFaulty.MaxEdge(p)
			dstar := minimax.DeltaStarP(s, 1, p).Delta
			if bound <= 0 {
				continue
			}
			if r := dstar / bound; r > worst {
				worst = r
			}
			if dstar >= bound {
				ok = false
			}
		}
		t.AddRow(dT, report.FormatFloat(p)+" (true)", trueTrials, worst, report.PassFail(ok))
		o.Pass = o.Pass && ok
	}
	note(o, "surrogate rows use delta*_2 >= delta*_p; the '(true)' rows solve the Lp minimax directly")
	return o
}
