package experiments

import (
	"context"

	"fmt"
	"math"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/report"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

// E1ExactBounds reproduces the Theorem 1/2 baselines: exact BVC succeeds
// at n = max(3f+1, (d+1)f+1) on random inputs against equivocating
// Byzantine processes, and fails (empty Gamma) at n = (d+1)f on the
// simplex witness with f = 1.
func E1ExactBounds(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E1", Title: "Exact BVC tight bound n >= max(3f+1, (d+1)f+1) (Theorem 1)", Pass: true}
	t := report.NewTable("", "d", "f", "n", "case", "runs", "agree", "valid", "expected", "got")
	o.Table = t

	dims := []int{2, 3, 4}
	if opt.Quick {
		dims = []int{2, 3}
	}
	for _, d := range dims {
		for _, f := range []int{1, 2} {
			if f == 2 && (opt.Quick || d > 2) {
				continue // EIG message volume explodes; f=2 covered at d=2
			}
			n := (d+1)*f + 1
			if n < 3*f+1 {
				n = 3*f + 1
			}
			agreeOK, validOK := true, true
			for trial := 0; trial < opt.Trials; trial++ {
				inputs := workload.Gaussian(rng, n, d, 2)
				byz := map[int]broadcast.EIGBehavior{}
				byz[n-1] = adversary.Equivocator(
					workload.Gaussian(rng, 1, d, 10)[0],
					workload.Gaussian(rng, 1, d, 10)[0])
				if f == 2 {
					byz[0] = adversary.Silent()
				}
				cfg := &consensus.SyncConfig{N: n, F: f, D: d, Inputs: inputs, Byzantine: byz}
				res, err := consensus.RunExactBVC(context.Background(), cfg)
				if err != nil {
					agreeOK, validOK = false, false
					break
				}
				if consensus.AgreementError(res.Outputs, cfg.HonestIDs()) > 0 {
					agreeOK = false
				}
				for _, i := range cfg.HonestIDs() {
					if !consensus.CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6) {
						validOK = false
					}
				}
			}
			pass := agreeOK && validOK
			t.AddRow(d, f, n, "at bound", opt.Trials, report.PassFail(agreeOK), report.PassFail(validOK), "success", report.PassFail(pass))
			o.Pass = o.Pass && pass
		}
		// Below the bound: f = 1, n = d+1 simplex vertices -> Gamma empty.
		s := vec.NewSet(workload.StandardSimplex(d)...)
		_, ok := relax.GammaPoint(s, 1)
		t.AddRow(d, 1, d+1, "below bound (simplex)", 1, "-", "-", "Gamma empty", report.PassFail(!ok))
		o.Pass = o.Pass && !ok
	}
	note(o, "at-bound runs face an equivocating Byzantine process (plus a silent one when f=2)")
	return o
}

// E2KRelaxedSync reproduces Theorem 3: k-relaxed exact BVC (2 <= k <=
// d-1) has the same tight bound n >= (d+1)f+1. Sufficiency by protocol
// runs at the bound; necessity by the paper's explicit matrix S making
// Psi_2 (hence Psi_k for k >= 2) empty at n = d+1, while k = 1 stays
// feasible.
func E2KRelaxedSync(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E2", Title: "k-relaxed exact BVC bound (Theorem 3 + proof matrix)", Pass: true}
	t := report.NewTable("", "d", "k", "n", "case", "expected", "got")
	o.Table = t

	dims := []int{3, 4, 5}
	if opt.Quick {
		dims = []int{3, 4}
	}
	for _, d := range dims {
		// Sufficiency at n = (d+1)f+1, f=1, protocol run with Byzantine.
		n := d + 2
		inputs := workload.Gaussian(rng, n, d, 2)
		cfg := &consensus.SyncConfig{
			N: n, F: 1, D: d, Inputs: inputs,
			Byzantine: map[int]broadcast.EIGBehavior{n - 1: adversary.RandomLiar(opt.Seed, d, 10)},
		}
		for _, k := range []int{2, d - 1} {
			res, err := consensus.RunKRelaxedBVC(context.Background(), cfg, k)
			ok := err == nil
			if ok {
				ok = consensus.AgreementError(res.Outputs, cfg.HonestIDs()) == 0
				for _, i := range cfg.HonestIDs() {
					ok = ok && consensus.CheckKValidity(res.Outputs[i], cfg.NonFaultyInputs(), k, 1e-6)
				}
			}
			t.AddRow(d, k, n, "protocol at bound", "success", report.PassFail(ok))
			o.Pass = o.Pass && ok
		}
		// Necessity: the Theorem 3 matrix at n = d+1.
		mat := vec.NewSet(workload.Theorem3Matrix(d, 1.0, 0.5)...)
		for k := 1; k <= d; k++ {
			_, feasible := relax.PsiKPoint(mat, 1, k)
			wantFeasible := k == 1
			t.AddRow(d, k, d+1, "proof matrix Psi_k", fmt.Sprintf("feasible=%v", wantFeasible),
				report.PassFail(feasible == wantFeasible))
			o.Pass = o.Pass && (feasible == wantFeasible)
			if k >= 3 && d >= 5 {
				break // larger k implied by Lemma 2; keep the table compact
			}
		}
	}
	note(o, "proof matrix: gamma=1, eps=0.5; Psi_k empty for all k >= 2 exactly as Theorem 3 predicts")
	return o
}

// theorem4ProcessSets builds the per-process feasible output regions of
// the Appendix B argument: process i's output must lie in
// Psi_i = intersection over j != i (1 <= j <= d+1) of H_k(S^j), where
// S^j drops input j from the first d+1 inputs.
func theorem4ProcessSets(cols []vec.V, i int) []*vec.Set {
	d := cols[0].Dim()
	var fam []*vec.Set
	for j := 0; j <= d; j++ { // inputs 1..d+1 are indices 0..d
		if j == i {
			continue
		}
		s := vec.NewSet()
		for l := 0; l <= d; l++ {
			if l != j {
				s.Append(cols[l])
			}
		}
		fam = append(fam, s)
	}
	return fam
}

// E3KRelaxedAsync reproduces Theorem 4 (Appendix B): asynchronous
// k-relaxed BVC needs n >= (d+2)f+1. Sufficiency by running the verified
// averaging protocol at the bound; necessity by the Appendix B matrix,
// whose per-process output regions are provably >= 2*eps apart in the
// first coordinate at n = d+2.
func E3KRelaxedAsync(opt Options) *Outcome {
	opt = opt.withDefaults()
	rng := opt.rng()
	o := &Outcome{ID: "E3", Title: "k-relaxed approximate BVC bound, async (Theorem 4 + App. B matrix)", Pass: true}
	t := report.NewTable("", "d", "case", "quantity", "value", "expected", "got")
	o.Table = t

	dims := []int{3, 4, 5}
	if opt.Quick {
		dims = []int{3, 4}
	}
	const eps = 0.25
	for _, d := range dims {
		// Necessity certificates on the Appendix B matrix (gamma=1).
		cols := workload.Theorem4Matrix(d, 1.0, eps)
		lo1, _, ok1 := relax.ExtremizeKCoordinate(theorem4ProcessSets(cols, 0), 2, 0)
		_, hi2, ok2 := relax.ExtremizeKCoordinate(theorem4ProcessSets(cols, 1), 2, 0)
		gapOK := ok1 && ok2 && lo1-hi2 >= 2*eps-1e-7
		t.AddRow(d, "matrix n=d+2", "min x1 over Psi_1", lo1, ">= 2eps = 0.5", report.PassFail(ok1 && lo1 >= 2*eps-1e-7))
		t.AddRow(d, "matrix n=d+2", "max x1 over Psi_2", hi2, "<= 0", report.PassFail(ok2 && hi2 <= 1e-7))
		t.AddRow(d, "matrix n=d+2", "forced disagreement", lo1-hi2, ">= 2eps", report.PassFail(gapOK))
		o.Pass = o.Pass && gapOK
	}
	// Sufficiency: async exact-validity averaging at n = (d+2)f+1 reaches
	// epsilon-agreement (k-relaxed validity is implied by exact validity).
	d := 3
	n := d + 3
	cfg := &consensus.AsyncConfig{
		N: n, F: 1, D: d,
		Inputs: workload.Gaussian(rng, n, d, 2),
		Rounds: 12, Mode: consensus.ModeExact,
	}
	res, err := consensus.RunAsyncBVC(context.Background(), cfg)
	suffOK := err == nil
	var epsGot float64
	if suffOK {
		epsGot = consensus.AgreementError(res.Outputs, cfg.HonestIDs())
		suffOK = epsGot < 1e-2
		for _, i := range cfg.HonestIDs() {
			suffOK = suffOK && consensus.CheckExactValidity(res.Outputs[i], cfg.NonFaultyInputs(), 1e-6)
		}
	}
	t.AddRow(d, "protocol n=(d+2)f+1", "epsilon after 12 rounds", epsGot, "< 0.01", report.PassFail(suffOK))
	o.Pass = o.Pass && suffOK
	// k = 1 contrast (Section 5.3): the per-coordinate reduction works at
	// n = 3f+1 even for large d, where the k >= 2 bound would demand
	// (d+2)f+1 processes.
	dBig := 6
	cfg1 := &consensus.AsyncConfig{
		N: 4, F: 1, D: dBig,
		Inputs: workload.Gaussian(rng, 4, dBig, 2),
		Rounds: 10,
	}
	res1, err1 := consensus.RunK1AsyncBVC(context.Background(), cfg1)
	k1OK := err1 == nil
	var eps1 float64
	if k1OK {
		eps1 = consensus.AgreementError(res1.Outputs, cfg1.HonestIDs())
		k1OK = eps1 < 0.01
		for _, i := range cfg1.HonestIDs() {
			k1OK = k1OK && consensus.CheckKValidity(res1.Outputs[i], cfg1.NonFaultyInputs(), 1, 1e-6)
		}
	}
	t.AddRow(dBig, "k=1 reduction n=3f+1", "epsilon after 10 rounds", eps1, "< 0.01", report.PassFail(k1OK))
	o.Pass = o.Pass && k1OK
	note(o, "Appendix B matrix uses gamma=1, eps=0.25; Observations 1-4 collapse to the x1 gap certificate")
	return o
}

// E4DeltaConstSync reproduces Theorem 5: constant-delta relaxation does
// not lower the exact bound. The Theorem 5 matrix with x > 2*d*delta
// makes Gamma_(delta,inf) empty; we sweep x to find the empirical
// feasibility threshold and confirm it is <= 2*d*delta, and confirm
// feasibility returns above the (d+1)f+1 process count.
func E4DeltaConstSync(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E4", Title: "constant-delta (delta,inf) exact bound (Theorem 5 + proof matrix)", Pass: true}
	t := report.NewTable("", "d", "delta", "x threshold (measured)", "2*d*delta (proof)", "empty at 2d*delta+", "feasible with n=d+2")
	o.Table = t
	dims := []int{2, 3, 4, 5}
	if opt.Quick {
		dims = []int{2, 3}
	}
	const delta = 0.5
	for _, d := range dims {
		// Measured threshold: delta*_inf(S(x)) is increasing in x; find x
		// where delta*_inf crosses delta by bisection.
		lo, hi := 0.0, 4*float64(d)*delta+4
		for it := 0; it < 40; it++ {
			mid := (lo + hi) / 2
			s := vec.NewSet(workload.Theorem5Matrix(d, mid)...)
			dstar, _ := relax.DeltaStarPoly(s, 1, math.Inf(1))
			if dstar > delta {
				hi = mid
			} else {
				lo = mid
			}
		}
		threshold := (lo + hi) / 2
		proofBound := 2 * float64(d) * delta
		// Emptiness strictly above the proof bound.
		sAbove := vec.NewSet(workload.Theorem5Matrix(d, proofBound+0.5)...)
		_, feasAbove := relax.GammaDeltaPoint(sAbove, 1, delta, math.Inf(1))
		// With one more process (duplicate origin) the same x is feasible:
		// n = d+2 >= (d+1)f+1.
		ptsMore := append(workload.Theorem5Matrix(d, proofBound+0.5), vec.New(d))
		_, feasMore := relax.GammaDeltaPoint(vec.NewSet(ptsMore...), 1, delta, math.Inf(1))
		ok := threshold <= proofBound+1e-6 && !feasAbove && feasMore
		t.AddRow(d, delta, threshold, proofBound, report.PassFail(!feasAbove), report.PassFail(feasMore))
		o.Pass = o.Pass && ok
	}
	note(o, "measured infeasibility threshold never exceeds the proof's 2*d*delta; adding one process restores feasibility")
	return o
}

// E5DeltaConstAsync reproduces Theorem 6 (Appendix C): the asynchronous
// constant-delta bound. On the Theorem 6 matrix with x > 2*d*delta + eps
// the per-process output regions under (delta,inf)-relaxed validity are
// more than eps apart in some coordinate.
func E5DeltaConstAsync(opt Options) *Outcome {
	opt = opt.withDefaults()
	o := &Outcome{ID: "E5", Title: "constant-delta async bound (Theorem 6 + App. C matrix)", Pass: true}
	t := report.NewTable("", "d", "x", "min x1 over Psi_1", "max x1 over Psi_2", "gap", "eps", "got")
	o.Table = t
	dims := []int{2, 3, 4}
	if opt.Quick {
		dims = []int{2, 3}
	}
	const (
		delta = 0.4
		eps   = 0.3
	)
	for _, d := range dims {
		x := 2*float64(d)*delta + eps + 0.5 // strictly above the proof bound
		cols := workload.Theorem6Matrix(d, x)
		// Process output regions: Psi_i = intersect over j != i, j in
		// 1..d+1 of H_(delta,inf)(S^j) (Appendix C uses the same S^j
		// structure as Appendix B).
		psi := func(i int) []*vec.Set {
			var fam []*vec.Set
			for j := 0; j <= d; j++ {
				if j == i {
					continue
				}
				s := vec.NewSet()
				for l := 0; l <= d; l++ {
					if l != j {
						s.Append(cols[l])
					}
				}
				fam = append(fam, s)
			}
			return fam
		}
		lo1, _, ok1 := relax.ExtremizeRelaxedCoordinate(psi(0), delta, math.Inf(1), 0)
		_, hi2, ok2 := relax.ExtremizeRelaxedCoordinate(psi(1), delta, math.Inf(1), 0)
		gap := lo1 - hi2
		ok := ok1 && ok2 && gap > eps
		t.AddRow(d, x, lo1, hi2, gap, eps, report.PassFail(ok))
		o.Pass = o.Pass && ok
		// Appendix C's explicit bounds: lo1 >= x-(2d-1)*delta... our LP
		// gives the exact region, which must respect them.
		if ok1 && lo1 < x-(2*float64(d)-1)*delta-1e-6 {
			o.Pass = false
			note(o, "d=%d: Observation 2 bound violated: %v < %v", d, lo1, x-(2*float64(d)-1)*delta)
		}
		if ok2 && hi2 > delta+1e-6 {
			o.Pass = false
			note(o, "d=%d: Observation 3 bound violated: %v > %v", d, hi2, delta)
		}
	}
	note(o, "x set to 2*d*delta + eps + 0.5; the x1 gap certifies the epsilon-agreement violation at n = d+2")
	return o
}
